#!/usr/bin/env bash
# Regenerates every table and figure of the paper (plus the ablations and
# extensions) into results/: console output per experiment, CSV series,
# gnuplot scripts, and — when gnuplot is installed — rendered PNGs.
#
# Usage: scripts/run_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"
BENCH_DIR="$(cd "$BUILD_DIR/bench" && pwd)"

cd "$RESULTS_DIR"
for bench in "$BENCH_DIR"/bench_*; do
  [[ -x "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "== $name"
  "$bench" > "$name.txt" 2>&1 || {
    echo "   FAILED (see $RESULTS_DIR/$name.txt)" >&2
    exit 1
  }
done

if command -v gnuplot > /dev/null 2>&1; then
  for script in *.gp; do
    [[ -e "$script" ]] || break
    echo "== gnuplot $script"
    gnuplot "$script"
  done
else
  echo "gnuplot not installed: CSV + .gp scripts written, PNGs skipped"
fi

echo
echo "All experiments regenerated under $RESULTS_DIR/"
