#!/usr/bin/env bash
# Regenerates every table and figure of the paper (plus the ablations and
# extensions) into results/ by driving the hecsim_benchreport runner:
# console output per experiment, CSV series, gnuplot scripts, the
# BENCH_<git-sha>.json telemetry suite, the BENCH_REPORT.md dashboard,
# and — when gnuplot is installed — rendered PNGs.
#
# When bench/baseline.json exists, the run is gated against it: the
# script exits 3 if any bench regressed beyond the noise thresholds
# (see docs/BENCHMARKING.md). Pass --no-gate to skip, or
# --write-baseline to (re)seed the baseline from this run.
#
# Usage: scripts/run_experiments.sh [build-dir] [results-dir]
#            [--filter GLOB] [--jobs N] [--repeat N] [--keep-going]
#            [--no-gate] [--write-baseline]
set -euo pipefail

BUILD_DIR="build"
RESULTS_DIR="results"
RUNNER_ARGS=()
GATE=1
positional=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --filter|--jobs|--repeat|--timeout-s)
      RUNNER_ARGS+=("$1" "$2"); shift 2 ;;
    --keep-going|--write-baseline)
      RUNNER_ARGS+=("$1"); shift ;;
    --no-gate)
      GATE=0; shift ;;
    -h|--help)
      sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    -*)
      echo "error: unknown option $1 (see --help)" >&2; exit 64 ;;
    *)
      # Back-compat positional form: [build-dir] [results-dir].
      if [[ $positional -eq 0 ]]; then BUILD_DIR="$1"
      elif [[ $positional -eq 1 ]]; then RESULTS_DIR="$1"
      else echo "error: too many positional arguments" >&2; exit 64; fi
      positional=$((positional + 1)); shift ;;
  esac
done

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi
RUNNER="$BUILD_DIR/tools/hecsim_benchreport"
if [[ ! -x "$RUNNER" ]]; then
  echo "error: $RUNNER not found — rebuild (target hecsim_benchreport)" >&2
  exit 1
fi

if [[ $GATE -eq 0 ]]; then
  # Point the runner at a baseline that cannot exist: no gate.
  RUNNER_ARGS+=(--baseline /dev/null/no-baseline)
fi

status=0
"$RUNNER" --bench-dir "$BUILD_DIR/bench" --results-dir "$RESULTS_DIR" \
  --keep-going "${RUNNER_ARGS[@]}" || status=$?
if [[ $status -ne 0 && $status -ne 3 ]]; then
  echo "error: bench suite failed (exit $status)" >&2
  exit "$status"
fi

if command -v gnuplot > /dev/null 2>&1; then
  (
    cd "$RESULTS_DIR"
    for script in *.gp; do
      [[ -e "$script" ]] || break
      echo "== gnuplot $script"
      gnuplot "$script"
    done
  )
else
  echo "gnuplot not installed: CSV + .gp scripts written, PNGs skipped"
fi

echo
echo "All experiments regenerated under $RESULTS_DIR/"
if [[ $status -eq 3 ]]; then
  echo "BENCHMARK REGRESSION vs bench/baseline.json — see" \
       "$RESULTS_DIR/BENCH_REPORT.md" >&2
fi
exit "$status"
