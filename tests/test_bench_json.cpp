// hec::bench::json — the dependency-free JSON document model under the
// benchmark telemetry pipeline. The properties that matter downstream:
// deterministic (sorted-key) serialisation, exact number round-trips,
// tolerant typed accessors, and parse errors with position context.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>

#include "hec/bench/json.h"

namespace {

using hec::bench::json::Value;

TEST(BenchJson, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.dump(false), "null");
}

TEST(BenchJson, ScalarsSerialise) {
  EXPECT_EQ(Value(true).dump(false), "true");
  EXPECT_EQ(Value(false).dump(false), "false");
  EXPECT_EQ(Value(42).dump(false), "42");
  EXPECT_EQ(Value(0.1).dump(false), "0.1");
  EXPECT_EQ(Value("hi").dump(false), "\"hi\"");
}

TEST(BenchJson, NonFiniteNumbersSerialiseAsNull) {
  EXPECT_EQ(Value(std::nan("")).dump(false), "null");
  EXPECT_EQ(Value(INFINITY).dump(false), "null");
}

TEST(BenchJson, ObjectKeysAreSorted) {
  Value v;
  v["zebra"] = 1;
  v["apple"] = 2;
  v["mango"] = 3;
  EXPECT_EQ(v.dump(false), "{\"apple\":2,\"mango\":3,\"zebra\":1}");
}

TEST(BenchJson, StringsEscape) {
  Value v(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(v.dump(false), "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(BenchJson, NumbersRoundTripExactly) {
  for (double x : {0.1, 1e-300, 12345.6789, 3.0, -2.5e17,
                   1048576.0, 1.0 / 3.0}) {
    const std::string text = Value(x).dump(false);
    const auto parsed = Value::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->as_number(), x) << text;
  }
}

TEST(BenchJson, ParseHandlesNestedDocument) {
  const auto v = Value::parse(
      R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_object().size(), 2u);
  EXPECT_EQ((*v)["a"].as_array().size(), 3u);
  EXPECT_DOUBLE_EQ((*v)["a"].as_array()[1].as_number(), 2.5);
  EXPECT_TRUE((*v)["b"]["c"].as_bool());
  EXPECT_TRUE((*v)["b"]["d"].is_null());
}

TEST(BenchJson, ParseDecodesUnicodeEscapes) {
  const auto v = Value::parse(R"("café")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "caf\xc3\xa9");
}

TEST(BenchJson, RoundTripPreservesDocument) {
  Value doc;
  doc["name"] = "suite";
  doc["n"] = 3;
  Value::Array list;
  list.reserve(2);
  list.emplace_back(1.5);
  list.emplace_back(nullptr);
  doc["list"] = Value(std::move(list));
  const std::string pretty = doc.dump(true);
  const std::string compact = doc.dump(false);
  const auto from_pretty = Value::parse(pretty);
  const auto from_compact = Value::parse(compact);
  ASSERT_TRUE(from_pretty && from_compact);
  EXPECT_EQ(from_pretty->dump(false), compact);
  EXPECT_EQ(from_compact->dump(false), compact);
}

TEST(BenchJson, ParseErrorsCarryPosition) {
  std::string error;
  EXPECT_FALSE(Value::parse("{\"a\": }", &error).has_value());
  EXPECT_NE(error.find("column"), std::string::npos);

  error.clear();
  EXPECT_FALSE(Value::parse("[1, 2\n, oops]", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(BenchJson, TrailingGarbageIsAnError) {
  std::string error;
  EXPECT_FALSE(Value::parse("{} extra", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(BenchJson, AccessorsFallBackOnTypeMismatch) {
  const Value v(3.5);
  EXPECT_EQ(v.as_string(), "");
  EXPECT_TRUE(v.as_array().empty());
  EXPECT_TRUE(v.as_object().empty());
  EXPECT_FALSE(v.as_bool());
  EXPECT_DOUBLE_EQ(Value("nope").as_number(-1.0), -1.0);
  EXPECT_EQ(v.find("key"), nullptr);
  EXPECT_TRUE(v["missing"].is_null());  // const: shared null, no insert
}

}  // namespace
