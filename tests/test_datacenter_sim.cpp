#include "hec/cluster/datacenter_sim.h"

#include <gtest/gtest.h>

#include "hec/queueing/md1.h"
#include "hec/queueing/window_analysis.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

ConfigOutcome sample_outcome() {
  ConfigOutcome o;
  o.config = {NodeConfig{4, 4, 1.4}, NodeConfig{1, 6, 2.1}};
  o.t_s = 0.05;
  o.energy_j = 3.0;
  return o;
}

DatacenterSimConfig long_window(double utilization,
                                std::uint64_t seed = 5) {
  DatacenterSimConfig sim;
  sim.window_s = 5000.0;  // long window for tight statistics
  sim.arrival_rate_per_s = utilization / sample_outcome().t_s;
  sim.seed = seed;
  return sim;
}

TEST(DatacenterSim, WaitMatchesMD1Formula) {
  for (double util : {0.25, 0.5}) {
    const DatacenterSimConfig sim = long_window(util);
    const DatacenterSimResult r =
        simulate_datacenter(sample_outcome(), 50.0, sim);
    const MD1Queue formula(sim.arrival_rate_per_s, sample_outcome().t_s);
    EXPECT_NEAR(r.mean_wait_s, formula.mean_wait_s(),
                formula.mean_wait_s() * 0.08 + 1e-4)
        << util;
    EXPECT_NEAR(r.utilization, util, 0.02) << util;
  }
}

TEST(DatacenterSim, EnergyMatchesWindowModel) {
  const ConfigOutcome outcome = sample_outcome();
  const double idle_w = 50.0;
  const double util = 0.25;
  const DatacenterSimConfig sim = long_window(util, 9);
  const DatacenterSimResult measured =
      simulate_datacenter(outcome, idle_w, sim);
  // Analytic window energy for the same setup.
  const std::vector<ConfigOutcome> outcomes{outcome};
  const std::vector<double> idles{idle_w};
  const auto analytic =
      window_points(outcomes, idles, WindowOptions{sim.window_s, util});
  EXPECT_NEAR(measured.energy_j, analytic[0].window_energy_j,
              analytic[0].window_energy_j * 0.03);
}

TEST(DatacenterSim, LowRateIsIdleDominated) {
  const ConfigOutcome outcome = sample_outcome();
  DatacenterSimConfig sim;
  sim.window_s = 100.0;
  sim.arrival_rate_per_s = 0.01;  // ~1 job per window
  const DatacenterSimResult r = simulate_datacenter(outcome, 40.0, sim);
  EXPECT_GT(40.0 * sim.window_s / r.energy_j, 0.95);
  EXPECT_LT(r.utilization, 0.05);
}

TEST(DatacenterSim, InFlightJobChargedProRata) {
  // One job arrives just before the window ends: only its in-window
  // slice of busy time may be charged.
  ConfigOutcome outcome = sample_outcome();
  outcome.t_s = 10.0;
  outcome.energy_j = 1000.0;
  DatacenterSimConfig sim;
  sim.window_s = 12.0;
  sim.arrival_rate_per_s = 0.05;
  sim.seed = 3;
  const DatacenterSimResult r = simulate_datacenter(outcome, 10.0, sim);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_LE(r.energy_j,
            10.0 * sim.window_s + (1000.0 / 10.0) * sim.window_s);
}

TEST(DatacenterSim, DeterministicPerSeed) {
  const DatacenterSimConfig sim = long_window(0.3, 77);
  const DatacenterSimResult a = simulate_datacenter(sample_outcome(), 50.0, sim);
  const DatacenterSimResult b = simulate_datacenter(sample_outcome(), 50.0, sim);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
}

TEST(DatacenterSim, ServiceNoisePreservesMeanEnergy) {
  const ConfigOutcome outcome = sample_outcome();
  DatacenterSimConfig quiet = long_window(0.3, 11);
  DatacenterSimConfig noisy = quiet;
  noisy.service_noise_sigma = 0.1;
  const DatacenterSimResult rq = simulate_datacenter(outcome, 50.0, quiet);
  const DatacenterSimResult rn = simulate_datacenter(outcome, 50.0, noisy);
  EXPECT_NEAR(rn.energy_j, rq.energy_j, rq.energy_j * 0.02);
  // Service variance adds queueing delay (P-K with cs2 > 0).
  EXPECT_GT(rn.mean_wait_s, rq.mean_wait_s * 0.95);
}

TEST(DatacenterSim, RejectsOverload) {
  DatacenterSimConfig sim;
  sim.arrival_rate_per_s = 100.0;  // rho = 5 with t_s = 0.05
  EXPECT_THROW(simulate_datacenter(sample_outcome(), 50.0, sim),
               ContractViolation);
  DatacenterSimConfig bad;
  bad.arrival_rate_per_s = 0.0;
  EXPECT_THROW(simulate_datacenter(sample_outcome(), 50.0, bad),
               ContractViolation);
}

}  // namespace
}  // namespace hec
