#include "hec/sim/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ClockAdvancesToEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(5.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double second_time = 0.0;
  q.schedule_at(2.0, [&] {
    q.schedule_in(1.5, [&] { second_time = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(second_time, 3.5);
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(2.0, [&] {
    EXPECT_THROW(q.schedule_at(1.0, [] {}), ContractViolation);
  });
  q.run();
}

TEST(EventQueue, RejectsNegativeDelayAndNullCallback) {
  EventQueue q;
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), ContractViolation);
  EXPECT_THROW(q.schedule_at(1.0, nullptr), ContractViolation);
}

TEST(EventQueue, StepRequiresPendingEvent) {
  EventQueue q;
  EXPECT_THROW(q.step(), ContractViolation);
}

TEST(EventQueue, RunawayLoopGuard) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_in(1.0, forever); };
  q.schedule_at(0.0, forever);
  EXPECT_THROW(q.run(1000), std::runtime_error);
}

TEST(EventQueue, PendingCount) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.step();
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelledEventNeverRuns) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule_at(1.0, [&] { ran = true; });
  q.schedule_at(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, CancellingTheOnlyEventEmptiesTheQueue) {
  EventQueue q;
  const auto id = q.schedule_at(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  // The empty-queue pop contract holds after lazy deletion too.
  EXPECT_THROW(q.step(), ContractViolation);
}

TEST(EventQueue, CancelIsIdempotentAndRejectsUnknownIds) {
  EventQueue q;
  const auto id = q.schedule_at(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));      // second cancel is a no-op
  EXPECT_FALSE(q.cancel(id + 1));  // never-issued id
}

TEST(EventQueue, CancelAfterExecutionReturnsFalse) {
  EventQueue q;
  const auto id = q.schedule_at(1.0, [] {});
  q.run();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CallbackMayCancelALaterEvent) {
  EventQueue q;
  bool victim_ran = false;
  const auto victim = q.schedule_at(2.0, [&] { victim_ran = true; });
  q.schedule_at(1.0, [&] { EXPECT_TRUE(q.cancel(victim)); });
  q.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

TEST(EventQueue, CancellationPreservesFifoOrderOfSurvivors) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.schedule_at(1.0, [&order, i] { order.push_back(i); }));
  }
  EXPECT_TRUE(q.cancel(ids[1]));
  EXPECT_TRUE(q.cancel(ids[4]));
  EXPECT_TRUE(q.cancel(ids[7]));
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5, 6}));
}

}  // namespace
}  // namespace hec
