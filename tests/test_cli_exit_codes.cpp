// End-to-end exit-code contract of hecsim_cli.
//
// Scripts drive the CLI (sweeps, CI, schedulers), so failures must be
// distinguishable without scraping stdout:
//   0  success            2  no feasible configuration
//   64 usage error        65 malformed input file (ParseError)
//   70 contract violation 74 file write failure (IoError)
//   75 partial result (wall-clock deadline)   1 any other error
//
// The binary path is injected by CMake as HECSIM_CLI_PATH.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace {

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(HECSIM_CLI_PATH) + " " + args + " > /dev/null 2> /dev/null";
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << "CLI did not exit normally: " << args;
  return WEXITSTATUS(status);
}

/// Like run_cli but captures stderr, for tests that pin diagnostics.
int run_cli_stderr(const std::string& args, std::string* err_out) {
  const std::string err_path = ::testing::TempDir() + "hecsim_cli_stderr.txt";
  const std::string cmd = std::string(HECSIM_CLI_PATH) + " " + args +
                          " > /dev/null 2> " + err_path;
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << "CLI did not exit normally: " << args;
  std::ifstream in(err_path);
  err_out->assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  return WEXITSTATUS(status);
}

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  EXPECT_TRUE(out.good());
  return path;
}

TEST(CliExitCodes, SuccessIsZero) {
  EXPECT_EQ(run_cli("EP 10000 --max-arm 2 --max-amd 2"), 0);
}

TEST(CliExitCodes, SuccessWithFaultFlagsIsZero) {
  EXPECT_EQ(run_cli("EP 10000 --max-arm 2 --max-amd 2 --mttf-h 100 "
                    "--straggler-prob 0.1 --checkpoint-s 5 --trials 8"),
            0);
}

TEST(CliExitCodes, InfeasibleDeadlineIsTwo) {
  EXPECT_EQ(run_cli("EP 0.001 --max-arm 1 --max-amd 1"), 2);
}

TEST(CliExitCodes, UnknownFlagIsUsageError) {
  EXPECT_EQ(run_cli("EP 120 --no-such-flag"), 64);
}

TEST(CliExitCodes, MalformedNumberIsUsageError) {
  EXPECT_EQ(run_cli("EP twelve"), 64);
}

TEST(CliExitCodes, MissingArgumentsIsUsageError) {
  EXPECT_EQ(run_cli("EP"), 64);
}

TEST(CliExitCodes, OutOfRangeFlagIsUsageError) {
  EXPECT_EQ(run_cli("EP 120 --straggler-prob 1.5"), 64);
  EXPECT_EQ(run_cli("EP 120 --mttf-h 0"), 64);
  EXPECT_EQ(run_cli("EP 120 --trials 0"), 64);
}

TEST(CliExitCodes, EqualsFormFlagsAreAccepted) {
  EXPECT_EQ(run_cli("EP 10000 --max-arm=2 --max-amd=2 --method=exhaustive"),
            0);
}

TEST(CliExitCodes, MalformedEqualsValueIsUsageError) {
  EXPECT_EQ(run_cli("EP 10000 --trials=abc"), 64);
  EXPECT_EQ(run_cli("EP 10000 --units=  --max-arm 1"), 64);
  EXPECT_EQ(run_cli("EP 10000 --seed=1e"), 64);
}

TEST(CliExitCodes, MalformedValueDiagnosticNamesTheFlag) {
  std::string err;
  EXPECT_EQ(run_cli_stderr("EP 10000 --trials=abc", &err), 64);
  EXPECT_NE(err.find("--trials"), std::string::npos) << err;
  EXPECT_NE(err.find("'abc'"), std::string::npos) << err;

  EXPECT_EQ(run_cli_stderr("EP 10000 --budget junk", &err), 64);
  EXPECT_NE(err.find("--budget"), std::string::npos) << err;
}

TEST(CliExitCodes, BadLogLevelIsUsageError) {
  EXPECT_EQ(run_cli("EP 10000 --log-level=7"), 64);
  EXPECT_EQ(run_cli("EP 10000 --log-level=x"), 64);
}

TEST(CliExitCodes, TraceAndMetricsFilesAreWritten) {
  const std::string trace = ::testing::TempDir() + "hecsim_cli_trace.json";
  const std::string metrics = ::testing::TempDir() + "hecsim_cli_metrics.txt";
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
  EXPECT_EQ(run_cli("EP 10000 --max-arm 2 --max-amd 2 --trace-out=" + trace +
                    " --metrics-out=" + metrics),
            0);

  std::ifstream trace_in(trace);
  ASSERT_TRUE(trace_in.good()) << trace;
  std::string trace_text((std::istreambuf_iterator<char>(trace_in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(trace_text.find("\"traceEvents\""), std::string::npos);
#ifndef HEC_OBS_DISABLE
  // This TU sees the same build-wide definitions as the CLI binary, so
  // the span expectation tracks whether instrumentation was compiled in.
  EXPECT_NE(trace_text.find("cli.evaluate"), std::string::npos);
#endif

  std::ifstream metrics_in(metrics);
  ASSERT_TRUE(metrics_in.good()) << metrics;
  std::string metrics_text((std::istreambuf_iterator<char>(metrics_in)),
                           std::istreambuf_iterator<char>());
  EXPECT_NE(metrics_text.find("hec_config_evaluations"), std::string::npos);
  EXPECT_NE(metrics_text.find("hec_sim_events_processed"),
            std::string::npos);
  EXPECT_NE(metrics_text.find("hec_fault_runs"), std::string::npos);
}

TEST(CliExitCodes, UnwritableTraceFileIsIoError) {
  // Observability exports commit atomically; a write failure is the
  // dedicated I/O exit code, not a generic error.
  EXPECT_EQ(run_cli("EP 10000 --max-arm 1 --max-amd 1 "
                    "--trace-out=/no/such/dir/t.json"),
            74);
}

TEST(CliExitCodes, MalformedInputsFileIsParseError) {
  const std::string path = write_temp(
      "hecsim_bad_inputs.txt",
      "format hec-workload-inputs 1\ninst_per_unit nan\nwpi 0.8\n");
  EXPECT_EQ(run_cli("EP 10000 --max-arm 1 --max-amd 1 --arm-inputs " + path),
            65);
}

TEST(CliExitCodes, UnknownKeyInInputsFileIsParseError) {
  const std::string path = write_temp(
      "hecsim_bad_key.txt",
      "format hec-workload-inputs 1\ninst_per_unit 100\nwpi 0.8\nbogus 1\n");
  EXPECT_EQ(run_cli("EP 10000 --max-arm 1 --max-amd 1 --amd-inputs " + path),
            65);
}

TEST(CliExitCodes, ContractViolationIsSeventy) {
  EXPECT_EQ(run_cli("EP 120 --max-arm -3 --max-amd 0"), 70);
}

TEST(CliExitCodes, OtherErrorsAreOne) {
  // Unknown workload and unreadable files are plain runtime errors.
  EXPECT_EQ(run_cli("nginx 120"), 1);
  EXPECT_EQ(run_cli("EP 120 --arm-inputs /no/such/file.txt"), 1);
}

TEST(CliExitCodes, HelpIsZero) {
  EXPECT_EQ(run_cli("--help"), 0);
}

TEST(CliExitCodes, VersionAndBuildInfoAreZero) {
  EXPECT_EQ(run_cli("--version"), 0);
  EXPECT_EQ(run_cli("--build-info"), 0);
}

TEST(CliExitCodes, VersionPrintsBuildProvenance) {
  const std::string out_path = ::testing::TempDir() + "cli_version_out.txt";
  const std::string cmd = std::string(HECSIM_CLI_PATH) + " --version > " +
                          out_path + " 2> /dev/null";
  const int status = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::ifstream in(out_path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("hecsim_cli"), std::string::npos) << text;
  EXPECT_NE(text.find("git "), std::string::npos) << text;
  EXPECT_NE(text.find("obs "), std::string::npos) << text;
}

TEST(CliExitCodes, ProfileOutWritesBothFormats) {
  const std::string json = ::testing::TempDir() + "cli_profile.json";
  const std::string folded = ::testing::TempDir() + "cli_profile.folded";
  std::remove(json.c_str());
  std::remove(folded.c_str());
  EXPECT_EQ(run_cli("EP 10000 --max-arm 2 --max-amd 2 --profile-out=" + json),
            0);
  EXPECT_EQ(
      run_cli("EP 10000 --max-arm 2 --max-amd 2 --profile-out=" + folded), 0);

  std::ifstream json_in(json);
  ASSERT_TRUE(json_in.good()) << json;
  std::string json_text((std::istreambuf_iterator<char>(json_in)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(json_text.find("\"schema\":\"hec-profile/v1\""),
            std::string::npos);
  std::ifstream folded_in(folded);
  ASSERT_TRUE(folded_in.good()) << folded;
#ifndef HEC_OBS_DISABLE
  EXPECT_NE(json_text.find("cli.evaluate"), std::string::npos);
#endif
}

TEST(CliExitCodes, UnwritableProfileFileIsIoError) {
  EXPECT_EQ(run_cli("EP 10000 --max-arm 1 --max-amd 1 "
                    "--profile-out=/no/such/dir/p.json"),
            74);
}

TEST(CliExitCodes, LedgerRecordsEveryInvocationWithItsExitCode) {
  const std::string ledger = ::testing::TempDir() + "cli_ledger.jsonl";
  std::remove(ledger.c_str());
  // Success, infeasible and usage-error runs must all land one record
  // each, carrying the real process exit code — the ledger is the
  // cross-run memory, so error runs matter as much as clean ones.
  EXPECT_EQ(run_cli("EP 10000 --max-arm 2 --max-amd 2 --ledger " + ledger),
            0);
  EXPECT_EQ(run_cli("EP 0.001 --max-arm 1 --max-amd 1 --ledger " + ledger),
            2);

  std::ifstream in(ledger);
  ASSERT_TRUE(in.good()) << ledger;
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"schema\":\"hec-run-ledger/v1\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"exit_code\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"tool\":\"hecsim_cli\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"git_sha\""), std::string::npos);
  // Protocol-derived counters survive even under HEC_OBS_DISABLE.
  EXPECT_NE(lines[0].find("sweep.configs_visited"), std::string::npos);
  EXPECT_NE(lines[1].find("\"exit_code\":2"), std::string::npos);
}

/// Like run_cli but with an environment assignment prefixed (the
/// command runs through the shell, so VAR=value binds to the CLI only).
int run_cli_env(const std::string& env, const std::string& args) {
  const std::string cmd = env + " " + std::string(HECSIM_CLI_PATH) + " " +
                          args + " > /dev/null 2> /dev/null";
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << "CLI did not exit normally: " << args;
  return WEXITSTATUS(status);
}

TEST(CliExitCodes, JournaledRunSucceedsAndRemovesJournal) {
  const std::string journal = ::testing::TempDir() + "cli_journal.jsonl";
  std::remove(journal.c_str());
  EXPECT_EQ(run_cli("EP 10000 --journal " + journal +
                    " --journal-interval-s 0"),
            0);
  std::ifstream left_over(journal);
  EXPECT_FALSE(left_over.good()) << "journal must be removed on completion";
}

TEST(CliExitCodes, WallDeadlineYieldsPartialExitAndJournalResumes) {
  const std::string journal = ::testing::TempDir() + "cli_partial.jsonl";
  std::remove(journal.c_str());
  // A deadline far below thread-spawn latency: the sweep stops before
  // (or just after) the first block and must report partial coverage.
  EXPECT_EQ(run_cli("EP 10000 --journal " + journal +
                    " --deadline-s 0.0000001"),
            75);
  std::ifstream saved(journal);
  EXPECT_TRUE(saved.good()) << "partial run must leave a journal";
  // The resume finishes the sweep and cleans up.
  EXPECT_EQ(run_cli("EP 10000 --journal " + journal), 0);
  std::ifstream left_over(journal);
  EXPECT_FALSE(left_over.good());
}

TEST(CliExitCodes, DeadlineEnvVariableAlsoBoundsTheSweep) {
  EXPECT_EQ(run_cli_env("HEC_DEADLINE_S=0.0000001", "EP 10000"), 75);
}

TEST(CliExitCodes, MalformedDeadlineEnvIsUsageErrorNeverIgnored) {
  // A typoed HEC_DEADLINE_S must never silently become "no deadline".
  EXPECT_EQ(run_cli_env("HEC_DEADLINE_S=-1", "EP 10000"), 64);
  EXPECT_EQ(run_cli_env("HEC_DEADLINE_S=0", "EP 10000"), 64);
  EXPECT_EQ(run_cli_env("HEC_DEADLINE_S=nan", "EP 10000"), 64);
  EXPECT_EQ(run_cli_env("HEC_DEADLINE_S=30s", "EP 10000"), 64);
  EXPECT_EQ(run_cli_env("HEC_DEADLINE_S=1.5x", "EP 10000"), 64);
  // Empty means unset — feature off, normal run.
  EXPECT_EQ(run_cli_env("HEC_DEADLINE_S=",
                        "EP 10000 --max-arm 2 --max-amd 2"),
            0);
}

TEST(CliExitCodes, MalformedDeadlineEnvDiagnosticNamesTheVariable) {
  const std::string err_path = ::testing::TempDir() + "cli_env_err.txt";
  const std::string cmd = std::string("HEC_DEADLINE_S=abc ") +
                          HECSIM_CLI_PATH +
                          " EP 10000 > /dev/null 2> " + err_path;
  const int status = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 64);
  std::ifstream in(err_path);
  std::string err((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(err.find("HEC_DEADLINE_S"), std::string::npos) << err;
}

TEST(CliExitCodes, ResilienceFlagsRequireExhaustiveMethod) {
  const std::string journal = ::testing::TempDir() + "cli_usage.jsonl";
  EXPECT_EQ(run_cli("EP 10000 --method greedy --journal " + journal), 64);
  EXPECT_EQ(run_cli("EP 10000 --budget 500 --journal " + journal), 64);
  EXPECT_EQ(run_cli("EP 10000 --deadline-s 0"), 64);
  EXPECT_EQ(run_cli("EP 10000 --deadline-s -1"), 64);
}

TEST(CliExitCodes, BadFailpointGrammarIsUsageError) {
  std::string err;
  const std::string err_path = ::testing::TempDir() + "cli_failpoint_err.txt";
  const std::string cmd = std::string("HEC_FAILPOINT=bogus ") +
                          HECSIM_CLI_PATH +
                          " EP 10000 > /dev/null 2> " + err_path;
  const int status = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 64);
  std::ifstream in(err_path);
  err.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  EXPECT_NE(err.find("failpoint"), std::string::npos) << err;
}

TEST(CliExitCodes, FailpointCrashKillsThenJournalResumes) {
  const std::string journal = ::testing::TempDir() + "cli_crash.jsonl";
  std::remove(journal.c_str());
  // The shell reports a SIGKILLed child as 128 + 9.
  EXPECT_EQ(run_cli_env("HEC_FAILPOINT=journal.commit:2:crash",
                        "EP 10000 --journal " + journal +
                            " --journal-interval-s 0"),
            137);
  std::ifstream saved(journal);
  EXPECT_TRUE(saved.good()) << "crash must leave the last durable commit";
  EXPECT_EQ(run_cli("EP 10000 --journal " + journal +
                    " --journal-interval-s 0"),
            0);
}

TEST(CliExitCodes, ShardedFlagValidation) {
  EXPECT_EQ(run_cli("EP 10000 --shards 0"), 64);
  EXPECT_EQ(run_cli("EP 10000 --shards two"), 64);
  EXPECT_EQ(run_cli("EP 10000 --shards 2.5"), 64);
  EXPECT_EQ(run_cli("EP 10000 --shards 2 --method greedy"), 64);
  EXPECT_EQ(run_cli("EP 10000 --shards 2 --budget 500"), 64);
  EXPECT_EQ(run_cli("EP 10000 --shards 2 --shard-timeout-s 0"), 64);
  EXPECT_EQ(run_cli("EP 10000 --shards 2 --max-retries -1"), 64);
}

TEST(CliExitCodes, ShardedSweepMatchesSingleProcessSweep) {
  // The sharded run prints one extra accounting line; everything else —
  // the frontier-derived recommendation — must be byte-identical to an
  // uninterrupted single-process (resumable) sweep of the same space.
  const std::string plain_out = ::testing::TempDir() + "cli_plain.txt";
  const std::string shard_out = ::testing::TempDir() + "cli_sharded.txt";
  const std::string journal = ::testing::TempDir() + "cli_single.jsonl";
  std::remove(journal.c_str());
  const std::string base = "EP 10000 --max-arm 6 --max-amd 6";
  ASSERT_EQ(std::system((std::string(HECSIM_CLI_PATH) + " " + base +
                         " --journal " + journal + " > " + plain_out +
                         " 2> /dev/null")
                            .c_str()),
            0);
  ASSERT_EQ(std::system((std::string(HECSIM_CLI_PATH) + " " + base +
                         " --shards 2 --shard-timeout-s 30 --max-retries 2 "
                         "| grep -v 'sharded sweep' > " +
                         shard_out + " 2> /dev/null")
                            .c_str()),
            0);
  std::ifstream plain_in(plain_out), shard_in(shard_out);
  const std::string plain((std::istreambuf_iterator<char>(plain_in)),
                          std::istreambuf_iterator<char>());
  const std::string sharded((std::istreambuf_iterator<char>(shard_in)),
                            std::istreambuf_iterator<char>());
  EXPECT_FALSE(plain.empty());
  EXPECT_EQ(plain, sharded);
}

TEST(CliExitCodes, ShardedSweepSurvivesAWorkerKill) {
  // SIGKILL the second spawned worker at its first progress boundary;
  // the coordinator requeues the shard and still exits 0 with a full
  // answer.
  EXPECT_EQ(run_cli_env("HEC_FAILPOINT=shard.attempt.2:1:crash",
                        "EP 10000 --shards 2 --max-arm 8 --max-amd 8"),
            0);
}

TEST(CliExitCodes, ShardedDeadlineIsPartialExit) {
  EXPECT_EQ(run_cli("EP 10000 --shards 2 --deadline-s 0.0000001"), 75);
}

TEST(CliExitCodes, CorruptJournalWarnsAndRestartsCleanly) {
  const std::string journal = ::testing::TempDir() + "cli_corrupt.jsonl";
  {
    std::ofstream out(journal);
    out << "{\"schema\":\"hec-sweep-journal/v1\"  broken\n";
  }
  std::string err;
  EXPECT_EQ(run_cli_stderr("EP 10000 --journal " + journal, &err), 0);
  EXPECT_NE(err.find("restarting sweep from scratch"), std::string::npos)
      << err;
}

}  // namespace
