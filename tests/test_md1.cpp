#include "hec/queueing/md1.h"

#include <gtest/gtest.h>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(MD1, UtilizationIsLambdaTimesService) {
  const MD1Queue q(2.0, 0.25);
  EXPECT_DOUBLE_EQ(q.utilization(), 0.5);
}

TEST(MD1, PollaczekKhinchineWait) {
  // Wq = rho * S / (2 (1 - rho)); at rho = 0.5, S = 0.25: Wq = 0.125.
  const MD1Queue q(2.0, 0.25);
  EXPECT_DOUBLE_EQ(q.mean_wait_s(), 0.125);
  EXPECT_DOUBLE_EQ(q.mean_response_s(), 0.375);
}

TEST(MD1, ZeroArrivalsMeansNoWaiting) {
  const MD1Queue q(0.0, 1.0);
  EXPECT_DOUBLE_EQ(q.mean_wait_s(), 0.0);
  EXPECT_DOUBLE_EQ(q.mean_response_s(), 1.0);
  EXPECT_DOUBLE_EQ(q.mean_jobs_in_system(), 0.0);
}

TEST(MD1, WaitGrowsWithUtilization) {
  double prev = -1.0;
  for (double u : {0.05, 0.25, 0.5, 0.8, 0.95}) {
    const MD1Queue q(u / 0.1, 0.1);
    EXPECT_GT(q.mean_wait_s(), prev);
    prev = q.mean_wait_s();
  }
}

TEST(MD1, WaitDivergesNearSaturation) {
  const MD1Queue q(9.99, 0.1);  // rho = 0.999
  EXPECT_GT(q.mean_wait_s(), 10.0 * 0.1);
}

TEST(MD1, HalfTheMM1Wait) {
  // Deterministic service halves the M/M/1 queueing delay
  // (Wq_MM1 = rho S / (1 - rho)).
  const double rho = 0.6, s = 2.0;
  const MD1Queue q(rho / s, s);
  const double mm1 = rho * s / (1.0 - rho);
  EXPECT_DOUBLE_EQ(q.mean_wait_s(), 0.5 * mm1);
}

TEST(MD1, LittlesLaw) {
  const MD1Queue q(3.0, 0.2);
  EXPECT_DOUBLE_EQ(q.mean_jobs_in_system(),
                   3.0 * q.mean_response_s());
}

TEST(MD1, RateForUtilizationRoundTrips) {
  const double rate = MD1Queue::rate_for_utilization(0.25, 0.04);
  const MD1Queue q(rate, 0.04);
  EXPECT_NEAR(q.utilization(), 0.25, 1e-12);
}

TEST(MD1, RejectsUnstableOrInvalidInput) {
  EXPECT_THROW(MD1Queue(10.0, 0.1), ContractViolation);   // rho = 1
  EXPECT_THROW(MD1Queue(11.0, 0.1), ContractViolation);   // rho > 1
  EXPECT_THROW(MD1Queue(-1.0, 0.1), ContractViolation);
  EXPECT_THROW(MD1Queue(1.0, 0.0), ContractViolation);
  EXPECT_THROW(MD1Queue::rate_for_utilization(1.0, 0.1), ContractViolation);
  EXPECT_THROW(MD1Queue::rate_for_utilization(0.5, 0.0), ContractViolation);
}

}  // namespace
}  // namespace hec
