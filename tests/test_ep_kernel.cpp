#include "hec/workloads/ep_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace hec {
namespace {

TEST(NasRandom, ProducesUnitIntervalValues) {
  NasRandom rng;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(NasRandom, MatchesKnownFirstValue) {
  // randlc with the NPB seed 271828183 and a = 5^13: the sequence is fully
  // deterministic; pin the first draw to guard against regressions.
  NasRandom rng(271828183.0);
  const double first = rng.next();
  NasRandom again(271828183.0);
  EXPECT_DOUBLE_EQ(again.next(), first);
  EXPECT_GT(first, 0.0);
  EXPECT_LT(first, 1.0);
}

TEST(NasRandom, MeanIsOneHalf) {
  NasRandom rng;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(EpGenerate, AcceptanceRateMatchesTheory) {
  // Marsaglia polar accepts with probability pi/4 ~ 0.785.
  const EpResult r = ep_generate(100000);
  const double rate = static_cast<double>(r.pairs_accepted) / 100000.0;
  EXPECT_NEAR(rate, M_PI / 4.0, 0.01);
}

TEST(EpGenerate, GaussianMomentsAreCentered) {
  const EpResult r = ep_generate(200000);
  const double n = static_cast<double>(r.pairs_accepted);
  EXPECT_NEAR(r.sum_x / n, 0.0, 0.02);
  EXPECT_NEAR(r.sum_y / n, 0.0, 0.02);
}

TEST(EpGenerate, AnnulusCountsDecay) {
  // Most Gaussian mass lies in the innermost annuli.
  const EpResult r = ep_generate(100000);
  EXPECT_GT(r.annulus_counts[0], r.annulus_counts[1]);
  EXPECT_GT(r.annulus_counts[1], r.annulus_counts[2]);
  EXPECT_EQ(r.annulus_counts[9], 0u);  // |x| >= 9 sigma is unreachable
}

TEST(EpGenerate, CountsSumToAccepted) {
  const EpResult r = ep_generate(50000);
  const std::uint64_t total = std::accumulate(
      r.annulus_counts.begin(), r.annulus_counts.end(), std::uint64_t{0});
  EXPECT_EQ(total, r.pairs_accepted);
}

TEST(EpGenerate, DeterministicPerSeed) {
  const EpResult a = ep_generate(10000, 271828183.0);
  const EpResult b = ep_generate(10000, 271828183.0);
  EXPECT_EQ(a.pairs_accepted, b.pairs_accepted);
  EXPECT_DOUBLE_EQ(a.sum_x, b.sum_x);
  const EpResult c = ep_generate(10000, 314159265.0);
  EXPECT_NE(a.sum_x, c.sum_x);
}

TEST(EpClassPairs, NpbClassSizes) {
  EXPECT_EQ(ep_class_pairs('A'), 1ULL << 28);
  EXPECT_EQ(ep_class_pairs('B'), 1ULL << 30);
  EXPECT_EQ(ep_class_pairs('C'), 1ULL << 32);
  EXPECT_THROW(ep_class_pairs('D'), std::invalid_argument);
}

}  // namespace
}  // namespace hec
