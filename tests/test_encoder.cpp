#include "hec/workloads/encoder.h"

#include <gtest/gtest.h>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(Frame, ConstructionAndAccess) {
  Frame f(32, 16);
  EXPECT_EQ(f.width(), 32);
  EXPECT_EQ(f.height(), 16);
  f.at(5, 3) = 200;
  EXPECT_EQ(f.at(5, 3), 200);
}

TEST(Frame, ConstAccessClampsToEdges) {
  Frame f(8, 8);
  f.at(0, 0) = 11;
  f.at(7, 7) = 22;
  const Frame& cf = f;
  EXPECT_EQ(cf.at(-5, -5), 11);
  EXPECT_EQ(cf.at(100, 100), 22);
}

TEST(Frame, RejectsInvalidDimensions) {
  EXPECT_THROW(Frame(0, 8), ContractViolation);
  EXPECT_THROW(Frame(8, -1), ContractViolation);
}

TEST(BlockSad, ZeroForIdenticalBlocks) {
  Frame f(32, 32);
  f.fill_synthetic(0, 0);
  EXPECT_EQ(block_sad(f, f, 8, 8, 16, 0, 0), 0u);
}

TEST(MotionSearch, RecoversKnownTranslation) {
  // cur is ref shifted by (3, 2): the search must find dx=3, dy=2 with
  // zero residual (away from frame edges).
  Frame ref(128, 128), cur(128, 128);
  ref.fill_synthetic(0, 0);
  cur.fill_synthetic(3, 2);
  const MotionVector mv = motion_search(cur, ref, 48, 48, 16, 8);
  EXPECT_EQ(mv.dx, 3);
  EXPECT_EQ(mv.dy, 2);
  EXPECT_EQ(mv.sad, 0u);
}

TEST(MotionSearch, ZeroRangeReturnsColocated) {
  Frame ref(64, 64), cur(64, 64);
  ref.fill_synthetic(0, 0);
  cur.fill_synthetic(1, 0);
  const MotionVector mv = motion_search(cur, ref, 16, 16, 16, 0);
  EXPECT_EQ(mv.dx, 0);
  EXPECT_EQ(mv.dy, 0);
}

TEST(Dct8, DcOnlyForConstantBlock) {
  Tile8x8 flat;
  for (auto& row : flat.v) {
    for (auto& x : row) x = 50;
  }
  const Tile8x8 coeffs = dct8(flat);
  EXPECT_GT(coeffs.v[0][0], 0);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      if (r == 0 && c == 0) continue;
      EXPECT_EQ(coeffs.v[r][c], 0) << "AC coefficient (" << r << "," << c
                                   << ") nonzero for a flat block";
    }
  }
}

TEST(Dct8, ZeroBlockStaysZero) {
  const Tile8x8 coeffs = dct8(Tile8x8{});
  for (const auto& row : coeffs.v) {
    for (int x : row) EXPECT_EQ(x, 0);
  }
}

TEST(Dct8, LinearInInput) {
  Tile8x8 a;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) a.v[r][c] = (r * 8 + c) % 17 - 8;
  }
  Tile8x8 doubled = a;
  for (auto& row : doubled.v) {
    for (auto& x : row) x *= 2;
  }
  const Tile8x8 ca = dct8(a);
  const Tile8x8 c2 = dct8(doubled);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      // Fixed-point truncation (>>7 per 1-D pass) bounds the deviation
      // from exact linearity by a few dozen counts on Q8-scaled outputs.
      EXPECT_NEAR(c2.v[r][c], 2 * ca.v[r][c], 32)
          << "(" << r << "," << c << ")";
    }
  }
}

TEST(Quantize8, DeadZoneZeroesSmallCoefficients) {
  Tile8x8 t;
  t.v[0][0] = 100;
  t.v[1][1] = 3;    // below dead zone for qp=8
  t.v[2][2] = -3;
  const int nonzero = quantize8(t, 8);
  EXPECT_EQ(nonzero, 1);
  EXPECT_EQ(t.v[0][0], 12);
  EXPECT_EQ(t.v[1][1], 0);
  EXPECT_EQ(t.v[2][2], 0);
}

TEST(Quantize8, RejectsInvalidQp) {
  Tile8x8 t;
  EXPECT_THROW(quantize8(t, 0), ContractViolation);
}

TEST(EncodeFrame, StillSceneCompressesToNothing) {
  Frame ref(64, 64), cur(64, 64);
  ref.fill_synthetic(0, 0);
  cur.fill_synthetic(0, 0);
  const EncodeStats stats = encode_frame(cur, ref);
  EXPECT_EQ(stats.total_sad, 0u);
  EXPECT_EQ(stats.nonzero_coeffs, 0u);
  EXPECT_EQ(stats.blocks, 16);
}

TEST(EncodeFrame, PanningSceneIsMotionCompensated) {
  Frame ref(128, 128), cur(128, 128);
  ref.fill_synthetic(0, 0);
  cur.fill_synthetic(4, 1);
  const EncodeStats stats = encode_frame(cur, ref, 8, 8);
  // Interior blocks compensate perfectly; only edge blocks leave residual.
  const EncodeStats uncompensated = encode_frame(cur, ref, 8, 0);
  EXPECT_LT(stats.total_sad, uncompensated.total_sad / 4);
}

TEST(EncodeFrame, MismatchedFramesRejected) {
  Frame a(32, 32), b(64, 64);
  EXPECT_THROW(encode_frame(a, b), ContractViolation);
}

}  // namespace
}  // namespace hec
