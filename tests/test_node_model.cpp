#include "hec/model/node_model.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"
#include "hec/util/units.h"

namespace hec {
namespace {

// Hand-built inputs with known arithmetic (no characterisation run), so
// every equation of Section II can be checked in closed form.
WorkloadInputs cpu_inputs() {
  WorkloadInputs in;
  in.inst_per_unit = 1000.0;
  in.wpi = 0.8;
  in.spi_core = 0.4;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.1, 1.0, 2},
                         LinearFit{0.0, 0.15, 1.0, 2},
                         LinearFit{0.0, 0.2, 1.0, 2},
                         LinearFit{0.0, 0.25, 1.0, 2}};
  in.ucpu = 1.0;
  return in;
}

WorkloadInputs io_inputs() {
  WorkloadInputs in = cpu_inputs();
  in.ucpu = 0.05;
  in.io_bytes_per_unit = 800.0;
  in.io_s_per_unit = 800.0 / units::mbps_to_bytes_per_s(100.0);
  return in;
}

PowerParams arm_power() {
  PowerParams p;
  p.freqs_ghz = {0.2, 0.5, 0.8, 1.1, 1.4};
  p.core_active_w = {0.05, 0.12, 0.2, 0.4, 0.7};
  p.core_stall_w = {0.03, 0.07, 0.12, 0.24, 0.4};
  p.mem_active_w = 0.45;
  p.io_active_w = 0.7;
  p.idle_w = 1.4;
  return p;
}

NodeTypeModel cpu_model(EnergyAccounting acc = EnergyAccounting::kOverlapAware) {
  return NodeTypeModel(arm_cortex_a9(), cpu_inputs(), arm_power(), acc);
}

TEST(PowerParams, InterpolatesBetweenPStates) {
  const PowerParams p = arm_power();
  EXPECT_DOUBLE_EQ(p.core_active_at(0.2), 0.05);
  EXPECT_DOUBLE_EQ(p.core_active_at(1.4), 0.7);
  EXPECT_DOUBLE_EQ(p.core_active_at(0.35), 0.5 * (0.05 + 0.12));
  // Clamped outside the measured range.
  EXPECT_DOUBLE_EQ(p.core_active_at(0.1), 0.05);
  EXPECT_DOUBLE_EQ(p.core_stall_at(2.0), 0.4);
}

TEST(WorkloadInputs, SpiMemUsesPerCoreFits) {
  const WorkloadInputs in = cpu_inputs();
  EXPECT_DOUBLE_EQ(in.spi_mem(1.0, 1), 0.1);
  EXPECT_DOUBLE_EQ(in.spi_mem(1.0, 4), 0.25);
  EXPECT_DOUBLE_EQ(in.spi_mem(2.0, 2), 0.3);
  // Core counts beyond the fit range clamp to the last fit.
  EXPECT_DOUBLE_EQ(in.spi_mem(1.0, 10), 0.25);
  // Negative extrapolation clamps at zero.
  WorkloadInputs neg = in;
  neg.spi_mem_by_cores = {LinearFit{-1.0, 0.1, 1.0, 2}};
  EXPECT_DOUBLE_EQ(neg.spi_mem(1.0, 1), 0.0);
}

TEST(NodeTypeModel, CpuBoundTimeMatchesEquations) {
  const NodeTypeModel m = cpu_model();
  const NodeConfig cfg{2, 4, 1.4};
  const double w = 1e6;
  const Prediction p = m.predict(w, cfg);
  // Eq. 6: i_core = W * IPs / (n * cact); Eqs. 7-10 with spi_mem = 0.35.
  const double i_core = w * 1000.0 / (2.0 * 4.0);
  const double spi_mem = 0.25 * 1.4;
  const double t_core = i_core * (0.8 + 0.4) / 1.4e9;
  const double t_mem = i_core * (0.8 + spi_mem) / 1.4e9;
  EXPECT_NEAR(p.t_core_s, t_core, 1e-12);
  EXPECT_NEAR(p.t_mem_s, t_mem, 1e-12);
  EXPECT_NEAR(p.t_cpu_s, std::max(t_core, t_mem), 1e-12);
  EXPECT_NEAR(p.t_s, p.t_cpu_s, 1e-12);  // no I/O demand
  EXPECT_DOUBLE_EQ(p.t_io_s, 0.0);
}

TEST(NodeTypeModel, IoBoundTimeUsesEq11) {
  const NodeTypeModel m(arm_cortex_a9(), io_inputs(), arm_power());
  const NodeConfig cfg{4, 4, 1.4};
  const double w = 50000.0;
  const Prediction p = m.predict(w, cfg);
  const double expected_io = w * io_inputs().io_s_per_unit / 4.0;
  EXPECT_NEAR(p.t_io_s, expected_io, 1e-12);
  EXPECT_NEAR(p.t_s, expected_io, expected_io * 0.05);  // I/O dominates
  EXPECT_GE(p.t_s, p.t_cpu_s);
}

TEST(NodeTypeModel, EnergyDecomposition) {
  const NodeTypeModel m = cpu_model();
  const NodeConfig cfg{1, 4, 1.4};
  const Prediction p = m.predict(1e6, cfg);
  // Idle floor: Pidle * T (Eq. 14).
  EXPECT_NEAR(p.energy.idle_j, 1.4 * p.t_s, 1e-9);
  EXPECT_GT(p.energy.core_j, 0.0);
  EXPECT_GT(p.energy.mem_j, 0.0);
  EXPECT_DOUBLE_EQ(p.energy.io_j, 0.0);
  EXPECT_GT(p.energy_j(), p.energy.idle_j);
}

TEST(NodeTypeModel, EnergyScalesWithNodes) {
  const NodeTypeModel m = cpu_model();
  const Prediction one = m.predict(1e6, NodeConfig{1, 4, 1.4});
  const Prediction two = m.predict(2e6, NodeConfig{2, 4, 1.4});
  // Double work on double nodes: same time, double energy.
  EXPECT_NEAR(two.t_s, one.t_s, 1e-9);
  EXPECT_NEAR(two.energy_j(), 2.0 * one.energy_j(), 1e-6);
}

TEST(NodeTypeModel, TimeIsLinearInWork) {
  const NodeTypeModel m = cpu_model();
  const NodeConfig cfg{3, 2, 0.8};
  const double k = m.time_per_unit(cfg);
  EXPECT_NEAR(m.predict(1e5, cfg).t_s, k * 1e5, 1e-9);
  EXPECT_NEAR(m.predict(7e5, cfg).t_s, k * 7e5, 1e-6);
}

TEST(NodeTypeModel, ZeroWorkIsFree) {
  const NodeTypeModel m = cpu_model();
  const Prediction p = m.predict(0.0, NodeConfig{1, 1, 0.2});
  EXPECT_DOUBLE_EQ(p.t_s, 0.0);
  EXPECT_DOUBLE_EQ(p.energy_j(), 0.0);
}

TEST(NodeTypeModel, PaperAccountingChargesOnlyCoreStalls) {
  const Prediction overlap =
      cpu_model(EnergyAccounting::kOverlapAware).predict(1e6, {1, 4, 1.4});
  const Prediction paper =
      cpu_model(EnergyAccounting::kPaperEq17).predict(1e6, {1, 4, 1.4});
  // Same time model; the energy accounting differs.
  EXPECT_DOUBLE_EQ(overlap.t_s, paper.t_s);
  EXPECT_NE(overlap.energy_j(), paper.energy_j());
}

TEST(NodeTypeModel, RejectsInvalidConfigs) {
  const NodeTypeModel m = cpu_model();
  EXPECT_THROW(m.predict(1.0, NodeConfig{0, 4, 1.4}), ContractViolation);
  EXPECT_THROW(m.predict(1.0, NodeConfig{1, 0, 1.4}), ContractViolation);
  EXPECT_THROW(m.predict(1.0, NodeConfig{1, 5, 1.4}), ContractViolation);
  EXPECT_THROW(m.predict(1.0, NodeConfig{1, 4, 1.0}), ContractViolation);
  EXPECT_THROW(m.predict(-1.0, NodeConfig{1, 4, 1.4}), ContractViolation);
}

TEST(NodeTypeModel, LowUtilizationShrinksActiveCores) {
  // cact = UCPU * c: an I/O-bound workload's core energy reflects the few
  // cores actually busy, not the configured count.
  WorkloadInputs busy = cpu_inputs();
  WorkloadInputs starved = cpu_inputs();
  starved.ucpu = 0.25;
  const NodeTypeModel busy_m(arm_cortex_a9(), busy, arm_power());
  const NodeTypeModel starved_m(arm_cortex_a9(), starved, arm_power());
  const NodeConfig cfg{1, 4, 1.4};
  // Same total instructions -> same aggregate core-seconds of work, but
  // the starved node takes ~4x longer (fewer cores active at once).
  EXPECT_GT(starved_m.predict(1e6, cfg).t_s,
            3.5 * busy_m.predict(1e6, cfg).t_s);
}

}  // namespace
}  // namespace hec
