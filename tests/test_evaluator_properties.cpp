// Property sweeps of the configuration evaluator across workloads:
// matched-split conservation, heterogeneous speedup bounds and energy
// composition must hold at every point of a sampled sub-space.
#include <gtest/gtest.h>

#include <cctype>

#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"

namespace hec {
namespace {

class EvaluatorProperty : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    arm_ = arm_cortex_a9();
    amd_ = amd_opteron_k10();
    CharacterizeOptions opts;
    opts.baseline_units = 4000.0;
    const Workload w = find_workload(GetParam());
    units_ = std::min(w.validation_units, 50000.0);
    arm_model_.emplace(build_node_model(arm_, w, opts));
    amd_model_.emplace(build_node_model(amd_, w, opts));
    evaluator_.emplace(*arm_model_, *amd_model_);
  }

  NodeSpec arm_, amd_;
  std::optional<NodeTypeModel> arm_model_, amd_model_;
  std::optional<ConfigEvaluator> evaluator_;
  double units_ = 0.0;
};

TEST_P(EvaluatorProperty, SharesConserveWorkEverywhere) {
  const auto configs =
      enumerate_configs(arm_, amd_, EnumerationLimits{3, 3});
  for (const auto& c : configs) {
    const ConfigOutcome o = evaluator_->evaluate(c, units_);
    EXPECT_NEAR(o.units_arm + o.units_amd, units_, units_ * 1e-9);
    EXPECT_GE(o.units_arm, 0.0);
    EXPECT_GE(o.units_amd, 0.0);
    if (!c.uses_arm()) {
      EXPECT_DOUBLE_EQ(o.units_arm, 0.0);
    }
    if (!c.uses_amd()) {
      EXPECT_DOUBLE_EQ(o.units_amd, 0.0);
    }
  }
}

TEST_P(EvaluatorProperty, HeterogeneousNeverSlowerThanEitherSideAlone) {
  for (int n_arm : {1, 4}) {
    for (int n_amd : {1, 4}) {
      const ClusterConfig mixed{
          NodeConfig{n_arm, arm_.cores, arm_.pstates.max_ghz()},
          NodeConfig{n_amd, amd_.cores, amd_.pstates.max_ghz()}};
      ClusterConfig arm_only = mixed;
      arm_only.amd.nodes = 0;
      ClusterConfig amd_only = mixed;
      amd_only.arm.nodes = 0;
      const double t_mixed = evaluator_->evaluate(mixed, units_).t_s;
      EXPECT_LE(t_mixed,
                evaluator_->evaluate(arm_only, units_).t_s * (1 + 1e-9));
      EXPECT_LE(t_mixed,
                evaluator_->evaluate(amd_only, units_).t_s * (1 + 1e-9));
    }
  }
}

TEST_P(EvaluatorProperty, HeterogeneousEnergyBetweenScaledSides) {
  // The mixed energy equals the sum of each side's share at its own
  // per-unit cost — so it sits between the all-on-cheap-side and
  // all-on-expensive-side extremes.
  const ClusterConfig mixed{
      NodeConfig{4, arm_.cores, arm_.pstates.max_ghz()},
      NodeConfig{2, amd_.cores, amd_.pstates.max_ghz()}};
  const ConfigOutcome o = evaluator_->evaluate(mixed, units_);
  const double e_arm_unit = arm_model_->energy_per_unit(mixed.arm);
  const double e_amd_unit = amd_model_->energy_per_unit(mixed.amd);
  const double lo = units_ * std::min(e_arm_unit, e_amd_unit);
  const double hi = units_ * std::max(e_arm_unit, e_amd_unit);
  EXPECT_GE(o.energy_j, lo * (1 - 1e-9));
  EXPECT_LE(o.energy_j, hi * (1 + 1e-9));
  EXPECT_NEAR(o.energy_j,
              o.units_arm * e_arm_unit + o.units_amd * e_amd_unit,
              o.energy_j * 1e-9);
}

TEST_P(EvaluatorProperty, EnergyScalesLinearlyWithJobSize) {
  const ClusterConfig mixed{
      NodeConfig{2, arm_.cores, arm_.pstates.max_ghz()},
      NodeConfig{2, amd_.cores, amd_.pstates.max_ghz()}};
  const ConfigOutcome small = evaluator_->evaluate(mixed, units_);
  const ConfigOutcome large = evaluator_->evaluate(mixed, units_ * 5.0);
  EXPECT_NEAR(large.energy_j, 5.0 * small.energy_j,
              small.energy_j * 1e-6);
  EXPECT_NEAR(large.t_s, 5.0 * small.t_s, small.t_s * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EvaluatorProperty,
                         ::testing::Values("EP", "memcached", "x264",
                                           "blackscholes", "Julius",
                                           "RSA-2048", "websearch"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace hec
