// Differential testing: the open-addressing KvStore must behave exactly
// like a reference std::unordered_map under long random operation
// sequences, including delete-heavy churn that stresses tombstone
// handling and full-table probing.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "hec/util/rng.h"
#include "hec/workloads/kvstore.h"

namespace hec {
namespace {

struct ChurnParam {
  std::uint64_t seed;
  std::size_t key_space;
  std::size_t capacity;
  double delete_fraction;
};

std::string churn_name(const ::testing::TestParamInfo<ChurnParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_keys" +
         std::to_string(info.param.key_space) + "_cap" +
         std::to_string(info.param.capacity) + "_del" +
         std::to_string(
             static_cast<int>(info.param.delete_fraction * 100));
}

class KvDifferential : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(KvDifferential, MatchesReferenceMapUnderChurn) {
  const ChurnParam p = GetParam();
  KvStore store(p.capacity);
  std::unordered_map<std::string, std::string> reference;
  Rng rng(p.seed);

  for (int op = 0; op < 20000; ++op) {
    std::string key = "key";
    key += std::to_string(rng.uniform_index(p.key_space));
    const double pick = rng.uniform();
    if (pick < p.delete_fraction) {
      const bool removed = store.remove(key);
      const bool ref_removed = reference.erase(key) > 0;
      EXPECT_EQ(removed, ref_removed) << "op " << op << " del " << key;
    } else if (pick < p.delete_fraction + 0.4) {
      std::string value = "v";
      value += std::to_string(op);
      // Insert only when the reference fits the store's capacity, so a
      // capacity-full rejection never desynchronises the two.
      if (reference.size() < store.capacity() ||
          reference.contains(key)) {
        ASSERT_TRUE(store.set(key, value)) << "op " << op;
        reference[key] = value;
      }
    } else {
      const auto got = store.get(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_FALSE(got.has_value()) << "op " << op << " get " << key;
      } else {
        ASSERT_TRUE(got.has_value()) << "op " << op << " get " << key;
        EXPECT_EQ(*got, it->second) << "op " << op;
      }
    }
    ASSERT_EQ(store.size(), reference.size()) << "op " << op;
  }

  // Final sweep: every reference key is retrievable with its value.
  for (const auto& [key, value] : reference) {
    const auto got = store.get(key);
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(*got, value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Churn, KvDifferential,
    ::testing::Values(ChurnParam{1, 100, 1024, 0.1},
                      ChurnParam{2, 1000, 2048, 0.3},
                      ChurnParam{3, 50, 64, 0.45},   // high load factor
                      ChurnParam{4, 16, 16, 0.5},    // tiny table churn
                      ChurnParam{5, 5000, 8192, 0.05}),
    churn_name);

}  // namespace
}  // namespace hec
