// Randomised property sweeps of the Pareto machinery: for many seeds and
// point-cloud shapes, the frontier must be minimal, complete, idempotent
// and consistent with the staircase query.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hec/pareto/frontier.h"
#include "hec/util/rng.h"

namespace hec {
namespace {

struct CloudParam {
  std::uint64_t seed;
  std::size_t n;
  bool clustered;  ///< clustered clouds stress tie handling
};

std::string cloud_name(const ::testing::TestParamInfo<CloudParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.n) +
         (info.param.clustered ? "_clustered" : "_uniform");
}

std::vector<TimeEnergyPoint> make_cloud(const CloudParam& p) {
  Rng rng(p.seed);
  std::vector<TimeEnergyPoint> points;
  points.reserve(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    double t, e;
    if (p.clustered) {
      // Few distinct values -> many exact ties in both axes.
      t = 0.1 * static_cast<double>(1 + rng.uniform_index(5));
      e = 10.0 * static_cast<double>(1 + rng.uniform_index(5));
    } else {
      t = rng.uniform(0.01, 10.0);
      e = rng.uniform(1.0, 500.0);
    }
    points.push_back({t, e, i});
  }
  return points;
}

class FrontierProperty : public ::testing::TestWithParam<CloudParam> {};

TEST_P(FrontierProperty, FrontierPointsComeFromTheInput) {
  const auto cloud = make_cloud(GetParam());
  for (const auto& f : pareto_frontier(cloud)) {
    ASSERT_LT(f.tag, cloud.size());
    EXPECT_EQ(cloud[f.tag].t_s, f.t_s);
    EXPECT_EQ(cloud[f.tag].energy_j, f.energy_j);
  }
}

TEST_P(FrontierProperty, NoFrontierPointIsDominated) {
  const auto cloud = make_cloud(GetParam());
  const auto frontier = pareto_frontier(cloud);
  for (const auto& f : frontier) {
    for (const auto& p : cloud) {
      EXPECT_FALSE(p.t_s <= f.t_s &&
                   p.energy_j < f.energy_j * (1.0 - 1e-9));
    }
  }
}

TEST_P(FrontierProperty, EveryInputIsDominatedByOrOnTheFrontier) {
  const auto cloud = make_cloud(GetParam());
  const auto frontier = pareto_frontier(cloud);
  for (const auto& p : cloud) {
    bool covered = false;
    for (const auto& f : frontier) {
      if (f.t_s <= p.t_s && f.energy_j <= p.energy_j * (1.0 + 1e-9)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "point (" << p.t_s << ", " << p.energy_j
                         << ") escapes the frontier";
  }
}

TEST_P(FrontierProperty, FrontierIsIdempotent) {
  const auto cloud = make_cloud(GetParam());
  const auto once = pareto_frontier(cloud);
  const auto twice = pareto_frontier(once);
  EXPECT_EQ(once, twice);
}

TEST_P(FrontierProperty, StrictlyOrdered) {
  const auto frontier = pareto_frontier(make_cloud(GetParam()));
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].t_s, frontier[i - 1].t_s);
    EXPECT_LT(frontier[i].energy_j, frontier[i - 1].energy_j);
  }
}

TEST_P(FrontierProperty, StaircaseAgreesWithDirectScan) {
  const auto cloud = make_cloud(GetParam());
  const auto frontier = pareto_frontier(cloud);
  if (frontier.empty()) return;
  const EnergyDeadlineCurve curve(frontier);
  Rng rng(GetParam().seed ^ 0xabcdef);
  for (int probe = 0; probe < 25; ++probe) {
    const double deadline = rng.uniform(0.0, 12.0);
    double direct = std::numeric_limits<double>::infinity();
    for (const auto& p : cloud) {
      if (p.t_s <= deadline) direct = std::min(direct, p.energy_j);
    }
    const double via_curve = curve.min_energy_j(deadline);
    if (std::isinf(direct)) {
      EXPECT_TRUE(std::isinf(via_curve)) << deadline;
    } else {
      EXPECT_NEAR(via_curve, direct, direct * 1e-9) << deadline;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomClouds, FrontierProperty,
    ::testing::Values(CloudParam{1, 100, false}, CloudParam{2, 100, true},
                      CloudParam{3, 2000, false},
                      CloudParam{4, 2000, true}, CloudParam{5, 1, false},
                      CloudParam{6, 50000, false},
                      CloudParam{7, 500, true}),
    cloud_name);

}  // namespace
}  // namespace hec
