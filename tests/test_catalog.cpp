#include "hec/hw/catalog.h"

#include <gtest/gtest.h>

namespace hec {
namespace {

// Table 1 of the paper, verbatim.
TEST(Catalog, ArmCortexA9MatchesTable1) {
  const NodeSpec arm = arm_cortex_a9();
  EXPECT_EQ(arm.isa, Isa::kArmV7a);
  EXPECT_EQ(arm.cores, 4);
  EXPECT_DOUBLE_EQ(arm.pstates.min_ghz(), 0.2);
  EXPECT_DOUBLE_EQ(arm.pstates.max_ghz(), 1.4);
  EXPECT_EQ(arm.pstates.size(), 5u);  // footnote 2: 5 P-states
  EXPECT_DOUBLE_EQ(arm.l1d_kib_per_core, 32.0);
  EXPECT_DOUBLE_EQ(arm.l2_kib, 1024.0);   // 1 MB per node
  EXPECT_DOUBLE_EQ(arm.l3_kib, 0.0);      // no L3
  EXPECT_DOUBLE_EQ(arm.memory_gib, 1.0);
  EXPECT_DOUBLE_EQ(arm.io_bandwidth_mbps, 100.0);
}

TEST(Catalog, AmdOpteronK10MatchesTable1) {
  const NodeSpec amd = amd_opteron_k10();
  EXPECT_EQ(amd.isa, Isa::kX86_64);
  EXPECT_EQ(amd.cores, 6);
  EXPECT_DOUBLE_EQ(amd.pstates.min_ghz(), 0.8);
  EXPECT_DOUBLE_EQ(amd.pstates.max_ghz(), 2.1);
  EXPECT_EQ(amd.pstates.size(), 3u);  // footnote 2: 3 P-states
  EXPECT_DOUBLE_EQ(amd.l1d_kib_per_core, 64.0);
  EXPECT_DOUBLE_EQ(amd.l2_kib, 3072.0);   // 512 KB per core
  EXPECT_DOUBLE_EQ(amd.l3_kib, 6144.0);   // 6 MB per node
  EXPECT_DOUBLE_EQ(amd.memory_gib, 8.0);
  EXPECT_DOUBLE_EQ(amd.io_bandwidth_mbps, 1000.0);
}

// Power calibration targets from Sections IV-C (footnote 5) and IV-E.
TEST(Catalog, ArmPowerEnvelopeMatchesPaper) {
  const NodeSpec arm = arm_cortex_a9();
  EXPECT_LT(arm.idle_node_w(), 2.0);   // "idle at less than 2 watts"
  EXPECT_NEAR(arm.peak_node_w(), 5.0, 0.3);  // "5W peak"
}

TEST(Catalog, AmdPowerEnvelopeMatchesPaper) {
  const NodeSpec amd = amd_opteron_k10();
  EXPECT_NEAR(amd.idle_node_w(), 45.0, 0.5);  // "AMD idle power is 45 watts"
  EXPECT_NEAR(amd.peak_node_w(), 60.0, 1.0);  // "60W peak"
}

TEST(Catalog, PowerCurvesOrdered) {
  for (const NodeSpec& spec : {arm_cortex_a9(), amd_opteron_k10(),
                               arm_cortex_a15(), intel_xeon_class()}) {
    for (double f : spec.pstates.frequencies_ghz()) {
      // Active > stall > idle at every P-state.
      EXPECT_GT(spec.core_active.at(f), spec.core_stall.at(f)) << spec.name;
      EXPECT_GE(spec.core_stall.at(f), spec.core_idle_w) << spec.name;
    }
    EXPECT_GT(spec.memory_power.active_w, spec.memory_power.idle_w);
    EXPECT_GT(spec.io_power.active_w, spec.io_power.idle_w);
    EXPECT_GT(spec.peak_node_w(), spec.idle_node_w());
  }
}

TEST(Catalog, SwitchSpecMatchesFootnote5) {
  const SwitchSpec sw = rack_switch();
  EXPECT_DOUBLE_EQ(sw.power_w, 20.0);
  EXPECT_GT(sw.ports, 0);
}

TEST(Catalog, SwitchesNeededCeilDivision) {
  const SwitchSpec sw{20.0, 24};
  EXPECT_EQ(switches_needed(0, sw), 0);
  EXPECT_EQ(switches_needed(1, sw), 1);
  EXPECT_EQ(switches_needed(24, sw), 1);
  EXPECT_EQ(switches_needed(25, sw), 2);
  EXPECT_EQ(switches_needed(128, sw), 6);
}

TEST(Catalog, ExtensionTypesAreDistinct) {
  const NodeSpec a15 = arm_cortex_a15();
  EXPECT_EQ(a15.isa, Isa::kArmV7a);
  EXPECT_GT(a15.pstates.max_ghz(), arm_cortex_a9().pstates.max_ghz());
  const NodeSpec xeon = intel_xeon_class();
  EXPECT_EQ(xeon.isa, Isa::kX86_64);
  EXPECT_GT(xeon.cores, amd_opteron_k10().cores);
}

}  // namespace
}  // namespace hec
