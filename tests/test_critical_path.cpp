// Critical path of a sharded sweep, reconstructed from the
// coordinator's decision markers.
//
// The invariant every test leans on: the emitted segments tile the
// coordinator window exactly, so sum(segment durations) == wall. That
// identity is what makes the obsreport attribution trustworthy — a
// chain that under- or over-counts would silently misattribute time.
#include "hec/shard/critical_path.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hec/bench/json.h"
#include "hec/obs/export.h"

namespace {

using hec::obs::InstantEvent;
using hec::shard::CriticalPath;
using hec::shard::PathSegment;
using hec::shard::SegmentKind;

InstantEvent marker(std::string name, double ts_us, std::string detail) {
  return {std::move(name), ts_us, std::move(detail)};
}

void expect_tiles_window(const CriticalPath& path) {
  ASSERT_FALSE(path.empty());
  EXPECT_DOUBLE_EQ(path.total_us(), path.wall_us());
  EXPECT_DOUBLE_EQ(path.segments.front().begin_us, path.begin_us);
  EXPECT_DOUBLE_EQ(path.segments.back().end_us, path.end_us);
  for (std::size_t i = 1; i < path.segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(path.segments[i].begin_us,
                     path.segments[i - 1].end_us);
  }
}

TEST(CriticalPath, SingleCleanAttempt) {
  const std::vector<InstantEvent> instants = {
      marker("shard.spawn", 10.0, "shard=0 attempt=1 pid=100 slice=[0,50)"),
      marker("shard.done", 60.0, "shard=0 attempt=1"),
  };
  const CriticalPath path = hec::shard::critical_path(instants, 0.0, 100.0);

  expect_tiles_window(path);
  EXPECT_EQ(path.gating_shard, 0u);
  EXPECT_TRUE(path.gating_done);
  ASSERT_EQ(path.segments.size(), 3u);
  EXPECT_EQ(path.segments[0].kind, SegmentKind::kLeadIn);
  EXPECT_DOUBLE_EQ(path.segments[0].dur_us(), 10.0);
  EXPECT_EQ(path.segments[1].kind, SegmentKind::kAttemptRun);
  EXPECT_EQ(path.segments[1].label, "shard 0 attempt 1 run");
  EXPECT_DOUBLE_EQ(path.segments[1].dur_us(), 50.0);
  EXPECT_EQ(path.segments[1].attempt, 1u);
  EXPECT_EQ(path.segments[2].kind, SegmentKind::kTail);
  EXPECT_DOUBLE_EQ(path.segments[2].dur_us(), 40.0);
}

TEST(CriticalPath, GatesOnTheLastShardToFinish) {
  const std::vector<InstantEvent> instants = {
      marker("shard.spawn", 5.0, "shard=0 attempt=1 pid=1 slice=[0,10)"),
      marker("shard.spawn", 5.0, "shard=1 attempt=2 pid=2 slice=[10,20)"),
      marker("shard.done", 40.0, "shard=0 attempt=1"),
      marker("shard.done", 90.0, "shard=1 attempt=2"),
  };
  const CriticalPath path = hec::shard::critical_path(instants, 0.0, 100.0);

  expect_tiles_window(path);
  // Shard 0 finished under shard 1's run; only shard 1's chain gates.
  EXPECT_EQ(path.gating_shard, 1u);
  for (const PathSegment& seg : path.segments) {
    if (seg.kind == SegmentKind::kAttemptRun) {
      EXPECT_EQ(seg.shard, 1u);
      EXPECT_DOUBLE_EQ(seg.dur_us(), 85.0);
    }
  }
}

TEST(CriticalPath, RetryChainShowsWasteAndBackoff) {
  const std::vector<InstantEvent> instants = {
      marker("shard.spawn", 10.0, "shard=2 attempt=1 pid=5 slice=[0,99)"),
      marker("shard.retry", 30.0, "shard=2 attempt=1 cause=no-result"),
      marker("shard.spawn", 45.0, "shard=2 attempt=2 pid=6 slice=[0,99)"),
      marker("shard.done", 80.0, "shard=2 attempt=2"),
  };
  const CriticalPath path = hec::shard::critical_path(instants, 0.0, 100.0);

  expect_tiles_window(path);
  ASSERT_EQ(path.segments.size(), 5u);
  EXPECT_EQ(path.segments[0].kind, SegmentKind::kLeadIn);
  EXPECT_EQ(path.segments[1].kind, SegmentKind::kWastedRun);
  EXPECT_EQ(path.segments[1].label, "shard 2 attempt 1 run (retried)");
  EXPECT_DOUBLE_EQ(path.segments[1].dur_us(), 20.0);
  EXPECT_EQ(path.segments[2].kind, SegmentKind::kBackoff);
  EXPECT_DOUBLE_EQ(path.segments[2].dur_us(), 15.0);
  EXPECT_EQ(path.segments[3].kind, SegmentKind::kAttemptRun);
  EXPECT_EQ(path.segments[3].label, "shard 2 attempt 2 run");
  EXPECT_EQ(path.segments[4].kind, SegmentKind::kTail);
}

TEST(CriticalPath, StolenAttemptIsWasted) {
  const std::vector<InstantEvent> instants = {
      marker("shard.spawn", 10.0, "shard=1 attempt=1 pid=5 slice=[0,9)"),
      marker("shard.steal", 50.0, "shard=1 attempt=1 idle_s=0.5"),
      marker("shard.spawn", 50.0, "shard=1 attempt=2 pid=6 slice=[0,9)"),
      marker("shard.done", 70.0, "shard=1 attempt=2"),
  };
  const CriticalPath path = hec::shard::critical_path(instants, 0.0, 80.0);

  expect_tiles_window(path);
  bool saw_stolen = false;
  for (const PathSegment& seg : path.segments) {
    if (seg.kind == SegmentKind::kWastedRun) {
      EXPECT_EQ(seg.label, "shard 1 attempt 1 run (stolen)");
      saw_stolen = true;
    }
  }
  EXPECT_TRUE(saw_stolen);
}

TEST(CriticalPath, RunThatNeverFinishedGatesOnLastActivity) {
  const std::vector<InstantEvent> instants = {
      marker("shard.spawn", 10.0, "shard=3 attempt=1 pid=9 slice=[0,9)"),
      marker("shard.deadline", 95.0, "budget exhausted"),  // no shard=: skipped
  };
  const CriticalPath path = hec::shard::critical_path(instants, 0.0, 100.0);

  expect_tiles_window(path);
  EXPECT_FALSE(path.gating_done);
  EXPECT_EQ(path.gating_shard, 3u);
  // The in-flight attempt runs to the window edge; there is no tail.
  const PathSegment& last = path.segments.back();
  EXPECT_EQ(last.kind, SegmentKind::kWastedRun);
  EXPECT_EQ(last.label, "shard 3 attempt 1 run (aborted)");
  EXPECT_DOUBLE_EQ(last.end_us, 100.0);
}

TEST(CriticalPath, NoShardMarkersYieldsEmptyPath) {
  EXPECT_TRUE(hec::shard::critical_path({}, 0.0, 100.0).empty());
  const std::vector<InstantEvent> unrelated = {
      marker("journal.checkpoint", 5.0, "seq=1")};
  EXPECT_TRUE(hec::shard::critical_path(unrelated, 0.0, 100.0).empty());
}

TEST(CriticalPath, EventsOutsideTheWindowAreClamped) {
  const std::vector<InstantEvent> instants = {
      marker("shard.spawn", -5.0, "shard=0 attempt=1 pid=1 slice=[0,9)"),
      marker("shard.done", 120.0, "shard=0 attempt=1"),
  };
  const CriticalPath path = hec::shard::critical_path(instants, 0.0, 100.0);
  expect_tiles_window(path);
  EXPECT_DOUBLE_EQ(path.segments.front().begin_us, 0.0);
  EXPECT_DOUBLE_EQ(path.segments.back().end_us, 100.0);
}

hec::bench::json::Value parse_or_die(const std::string& text) {
  std::string error;
  auto v = hec::bench::json::Value::parse(text, &error);
  EXPECT_TRUE(v.has_value()) << error;
  return std::move(*v);
}

TEST(CriticalPathChromeTrace, ExtractsWindowAndMarkers) {
  const std::string trace = R"json({"traceEvents":[
    {"name":"shard.coordinator","ph":"X","ts":100.0,"dur":900.0,"pid":1,"tid":1},
    {"name":"shard.spawn","ph":"i","ts":150.0,"pid":1,"tid":1000000,
     "args":{"detail":"shard=0 attempt=1 pid=77 slice=[0,9)"}},
    {"name":"shard.done","ph":"i","ts":700.0,"pid":1,"tid":1000000,
     "args":{"detail":"shard=0 attempt=1"}},
    {"name":"sweep.frontier","ph":"X","ts":200.0,"dur":50.0,"pid":1,"tid":2}
  ]})json";
  std::string why;
  const auto path =
      hec::shard::critical_path_from_chrome_trace(parse_or_die(trace), &why);
  ASSERT_TRUE(path.has_value()) << why;
  expect_tiles_window(*path);
  EXPECT_DOUBLE_EQ(path->begin_us, 100.0);
  EXPECT_DOUBLE_EQ(path->end_us, 1000.0);
  EXPECT_EQ(path->gating_shard, 0u);
  EXPECT_TRUE(path->gating_done);
}

TEST(CriticalPathChromeTrace, FallsBackToMarkerExtentWithoutCoordinator) {
  const std::string trace = R"json({"traceEvents":[
    {"name":"shard.spawn","ph":"i","ts":10.0,"pid":1,"tid":1000000,
     "args":{"detail":"shard=0 attempt=1 pid=77 slice=[0,9)"}},
    {"name":"shard.done","ph":"i","ts":90.0,"pid":1,"tid":1000000,
     "args":{"detail":"shard=0 attempt=1"}}
  ]})json";
  const auto path =
      hec::shard::critical_path_from_chrome_trace(parse_or_die(trace));
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->begin_us, 10.0);
  EXPECT_DOUBLE_EQ(path->end_us, 90.0);
  expect_tiles_window(*path);
}

TEST(CriticalPathChromeTrace, NonShardedTraceExplainsItself) {
  const std::string trace = R"json({"traceEvents":[
    {"name":"cli.evaluate","ph":"X","ts":0.0,"dur":10.0,"pid":1,"tid":1}
  ]})json";
  std::string why;
  const auto path =
      hec::shard::critical_path_from_chrome_trace(parse_or_die(trace), &why);
  EXPECT_FALSE(path.has_value());
  EXPECT_NE(why.find("no shard decision markers"), std::string::npos);

  why.clear();
  const auto not_a_trace =
      hec::shard::critical_path_from_chrome_trace(parse_or_die("{}"), &why);
  EXPECT_FALSE(not_a_trace.has_value());
  EXPECT_NE(why.find("traceEvents"), std::string::npos);
}

}  // namespace
