#include "hec/util/zipf.h"

#include <gtest/gtest.h>

#include <vector>

#include "hec/util/expect.h"
#include "hec/workloads/kvstore.h"

namespace hec {
namespace {

TEST(Zipf, PmfSumsToOneAndDecays) {
  const ZipfGenerator zipf(100, 1.0);
  double total = 0.0;
  double prev = 1.0;
  for (std::size_t r = 0; r < zipf.size(); ++r) {
    const double p = zipf.pmf(r);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, prev + 1e-15);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, ClassicRatios) {
  // s = 1: P(rank 0) / P(rank 1) = 2, / P(rank 3) = 4.
  const ZipfGenerator zipf(1000, 1.0);
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(3), 4.0, 1e-9);
}

TEST(Zipf, ExponentZeroIsUniform) {
  const ZipfGenerator zipf(50, 0.0);
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_NEAR(zipf.pmf(r), 1.0 / 50.0, 1e-12);
  }
}

TEST(Zipf, EmpiricalFrequenciesMatchPmf) {
  const ZipfGenerator zipf(20, 1.2);
  Rng rng(99);
  std::vector<int> counts(20, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.next(rng)];
  for (std::size_t r = 0; r < 20; ++r) {
    const double expected = zipf.pmf(r) * kDraws;
    EXPECT_NEAR(counts[r], expected, expected * 0.1 + 30.0) << "rank " << r;
  }
}

TEST(Zipf, HeadDominatesAtHighSkew) {
  const ZipfGenerator zipf(10000, 1.5);
  Rng rng(7);
  int head = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.next(rng) < 10) ++head;
  }
  // The top 10 of 10,000 keys absorb the majority of traffic.
  EXPECT_GT(head, kDraws / 2);
}

TEST(Zipf, RejectsInvalidParameters) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), ContractViolation);
  EXPECT_THROW(ZipfGenerator(10, -0.5), ContractViolation);
  const ZipfGenerator zipf(10, 1.0);
  EXPECT_THROW(zipf.pmf(10), ContractViolation);
}

TEST(Zipf, RequestGeneratorSkewsKeyTraffic) {
  RequestGenerator uniform(1000, 8, 32, 1.0, 5, 0.0);
  RequestGenerator skewed(1000, 8, 32, 1.0, 5, 1.2);
  // Count how often the single hottest key appears in each stream.
  auto hot_count = [](RequestGenerator& gen) {
    std::size_t hot = 0;
    std::string hottest;
    std::unordered_map<std::string, std::size_t> histogram;
    for (int i = 0; i < 20000; ++i) {
      const KvRequest req = gen.next();
      if (++histogram[req.key] > hot) {
        hot = histogram[req.key];
        hottest = req.key;
      }
    }
    return hot;
  };
  EXPECT_GT(hot_count(skewed), 8 * hot_count(uniform));
}

}  // namespace
}  // namespace hec
