#include "hec/workloads/rsa.h"

#include <gtest/gtest.h>

#include "hec/util/expect.h"
#include "hec/util/rng.h"

namespace hec {
namespace {

__extension__ typedef unsigned __int128 u128_t;

TEST(BigUInt, BasicConstructionAndBits) {
  const BigUInt one = BigUInt::one();
  EXPECT_FALSE(one.is_zero());
  EXPECT_TRUE(one.bit(0));
  EXPECT_FALSE(one.bit(1));
  EXPECT_TRUE(BigUInt::zero().is_zero());
  const BigUInt x = BigUInt::from_u64(0x8000000000000000ULL);
  EXPECT_TRUE(x.bit(63));
  EXPECT_FALSE(x.bit(64));
}

TEST(BigUInt, CompareOrdersCorrectly) {
  const BigUInt a = BigUInt::from_u64(5);
  const BigUInt b = BigUInt::from_u64(9);
  EXPECT_EQ(compare(a, b), -1);
  EXPECT_EQ(compare(b, a), 1);
  EXPECT_EQ(compare(a, a), 0);
  BigUInt high;
  high.limb[31] = 1;  // 2^1984 dominates any low limb
  EXPECT_EQ(compare(high, b), 1);
}

TEST(BigUInt, AddSubRoundTripWithCarries) {
  BigUInt a;
  a.limb[0] = ~0ULL;  // forces a carry chain
  a.limb[1] = ~0ULL;
  const BigUInt b = BigUInt::from_u64(1);
  BigUInt sum = a;
  EXPECT_EQ(add(sum, b), 0u);
  EXPECT_EQ(sum.limb[0], 0u);
  EXPECT_EQ(sum.limb[1], 0u);
  EXPECT_EQ(sum.limb[2], 1u);
  BigUInt back = sum;
  EXPECT_EQ(sub(back, b), 0u);
  EXPECT_EQ(back, a);
}

TEST(BigUInt, SubBorrowsBelowZero) {
  BigUInt a = BigUInt::from_u64(0);
  EXPECT_EQ(sub(a, BigUInt::one()), 1u);  // wraps with borrow out
  for (auto l : a.limb) EXPECT_EQ(l, ~0ULL);
}

TEST(ModAdd, WrapsModulus) {
  const BigUInt m = BigUInt::from_u64(7);
  BigUInt a = BigUInt::from_u64(5);
  mod_add(a, BigUInt::from_u64(4), m);
  EXPECT_EQ(a, BigUInt::from_u64(2));  // 9 mod 7
  EXPECT_THROW(mod_add(a, m, m), ContractViolation);  // b >= m
}

TEST(Montgomery, RequiresOddModulus) {
  EXPECT_THROW(MontgomeryCtx(BigUInt::from_u64(10)), ContractViolation);
  EXPECT_THROW(MontgomeryCtx(BigUInt::one()), ContractViolation);
  EXPECT_NO_THROW(MontgomeryCtx(BigUInt::from_u64(9)));
}

TEST(Montgomery, RoundTripIsIdentity) {
  const MontgomeryCtx ctx(rsa_test_modulus(3));
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    const BigUInt x = rsa_random_below(ctx.modulus(), rng);
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(x)), x);
  }
}

TEST(Montgomery, SmallModulusMatchesNativeArithmetic) {
  // A 64-bit modulus inside the 2048-bit container: cross-check modmul
  // and modexp against native __int128 arithmetic.
  const std::uint64_t n64 = 0xffffffffffffffc5ULL;  // large odd prime
  const MontgomeryCtx ctx(BigUInt::from_u64(n64));
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t a = rng() % n64;
    const std::uint64_t b = rng() % n64;
    const auto expected =
        static_cast<std::uint64_t>((static_cast<u128_t>(a) * b) % n64);
    const BigUInt prod = ctx.from_mont(
        ctx.mul(ctx.to_mont(BigUInt::from_u64(a)),
                ctx.to_mont(BigUInt::from_u64(b))));
    EXPECT_EQ(prod, BigUInt::from_u64(expected));
  }
}

TEST(Montgomery, PowMatchesNaiveSmallCases) {
  const std::uint64_t n64 = 1000003;  // odd prime
  const MontgomeryCtx ctx(BigUInt::from_u64(n64));
  auto naive_pow = [n64](std::uint64_t base, std::uint64_t e) {
    u128_t acc = 1;
    for (std::uint64_t i = 0; i < e; ++i) acc = acc * base % n64;
    return static_cast<std::uint64_t>(acc);
  };
  for (std::uint64_t base : {2ULL, 123ULL, 999999ULL}) {
    for (std::uint64_t e : {0ULL, 1ULL, 2ULL, 17ULL, 100ULL}) {
      EXPECT_EQ(ctx.pow(BigUInt::from_u64(base), BigUInt::from_u64(e)),
                BigUInt::from_u64(naive_pow(base, e)))
          << base << "^" << e;
    }
  }
}

TEST(Montgomery, Pow65537MatchesGenericPow) {
  const MontgomeryCtx ctx(rsa_test_modulus(11));
  Rng rng(12);
  const BigUInt sig = rsa_random_below(ctx.modulus(), rng);
  EXPECT_EQ(ctx.pow65537(sig),
            ctx.pow(sig, BigUInt::from_u64(65537)));
}

TEST(Montgomery, VerificationIsMultiplicative) {
  // RSA verification is a homomorphism: (ab)^e = a^e b^e mod n.
  const MontgomeryCtx ctx(rsa_test_modulus(21));
  Rng rng(22);
  const BigUInt a = rsa_random_below(ctx.modulus(), rng);
  const BigUInt b = rsa_random_below(ctx.modulus(), rng);
  const BigUInt ab =
      ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
  const BigUInt lhs = ctx.pow65537(ab);
  const BigUInt rhs = ctx.from_mont(
      ctx.mul(ctx.to_mont(ctx.pow65537(a)), ctx.to_mont(ctx.pow65537(b))));
  EXPECT_EQ(lhs, rhs);
}

TEST(RsaHelpers, TestModulusShape) {
  const BigUInt n = rsa_test_modulus(1);
  EXPECT_TRUE(n.bit(0));                         // odd
  EXPECT_TRUE(n.bit(BigUInt::kLimbs * 64 - 1));  // full width
  EXPECT_EQ(rsa_test_modulus(1), rsa_test_modulus(1));
  EXPECT_NE(rsa_test_modulus(1), rsa_test_modulus(2));
}

TEST(RsaHelpers, RandomBelowStaysBelow) {
  const BigUInt n = rsa_test_modulus(30);
  Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    EXPECT_LT(compare(rsa_random_below(n, rng), n), 0);
  }
}

}  // namespace
}  // namespace hec
