#include "hec/pareto/hypervolume.h"

#include <gtest/gtest.h>

#include <vector>

#include "hec/util/expect.h"
#include "hec/util/rng.h"

namespace hec {
namespace {

TEST(Hypervolume, SinglePointIsARectangle) {
  const std::vector<TimeEnergyPoint> frontier{{1.0, 2.0, 0}};
  // Rectangle from (1,2) to reference (3,5): 2 x 3 = 6.
  EXPECT_DOUBLE_EQ(hypervolume(frontier, 3.0, 5.0), 6.0);
}

TEST(Hypervolume, StaircaseSumsRectangles) {
  const std::vector<TimeEnergyPoint> frontier{
      {1.0, 4.0, 0}, {2.0, 2.0, 1}, {3.0, 1.0, 2}};
  // Reference (4, 5): strips of width 1 at heights 1, 3, 4.
  EXPECT_DOUBLE_EQ(hypervolume(frontier, 4.0, 5.0), 1.0 + 3.0 + 4.0);
}

TEST(Hypervolume, DominatingFrontierHasLargerVolume) {
  const std::vector<TimeEnergyPoint> weak{{1.0, 4.0, 0}, {3.0, 2.0, 1}};
  const std::vector<TimeEnergyPoint> strong{{0.5, 3.0, 0}, {2.0, 1.0, 1}};
  const ReferencePoint ref = covering_reference(weak, strong);
  EXPECT_GT(hypervolume(strong, ref.time_s, ref.energy_j),
            hypervolume(weak, ref.time_s, ref.energy_j));
}

TEST(Hypervolume, AddingAFrontierPointNeverShrinksVolume) {
  Rng rng(17);
  std::vector<TimeEnergyPoint> points;
  for (std::size_t i = 0; i < 200; ++i) {
    points.push_back({rng.uniform(0.1, 5.0), rng.uniform(1.0, 50.0), i});
  }
  auto frontier = pareto_frontier(points);
  if (frontier.size() < 2) GTEST_SKIP();
  const double full = hypervolume(frontier, 6.0, 60.0);
  // Remove a middle point: volume must not increase.
  frontier.erase(frontier.begin() +
                 static_cast<std::ptrdiff_t>(frontier.size() / 2));
  EXPECT_LE(hypervolume(frontier, 6.0, 60.0), full);
}

TEST(Hypervolume, PointsBeyondReferenceAreClipped) {
  const std::vector<TimeEnergyPoint> frontier{
      {1.0, 4.0, 0}, {10.0, 1.0, 1}};  // second point past ref time
  // Only the first strip counts, clipped at the reference time 5:
  // width (5-1) x height (5-4) = 4.
  EXPECT_DOUBLE_EQ(hypervolume(frontier, 5.0, 5.0), 4.0);
}

TEST(Hypervolume, CoveringReferenceCoversBoth) {
  const std::vector<TimeEnergyPoint> a{{1.0, 9.0, 0}, {4.0, 2.0, 1}};
  const std::vector<TimeEnergyPoint> b{{0.5, 7.0, 0}, {6.0, 1.0, 1}};
  const ReferencePoint ref = covering_reference(a, b);
  EXPECT_GE(ref.time_s, 6.0);
  EXPECT_GE(ref.energy_j, 9.0);
  // Both hypervolumes are finite and positive against it.
  EXPECT_GT(hypervolume(a, ref.time_s, ref.energy_j), 0.0);
  EXPECT_GT(hypervolume(b, ref.time_s, ref.energy_j), 0.0);
}

TEST(Hypervolume, RejectsInvalidInput) {
  const std::vector<TimeEnergyPoint> empty;
  EXPECT_THROW(hypervolume(empty, 1.0, 1.0), ContractViolation);
  const std::vector<TimeEnergyPoint> unsorted{{2.0, 1.0, 0},
                                              {1.0, 2.0, 1}};
  EXPECT_THROW(hypervolume(unsorted, 3.0, 3.0), ContractViolation);
  const std::vector<TimeEnergyPoint> ok{{1.0, 2.0, 0}};
  EXPECT_THROW(hypervolume(ok, 0.5, 5.0), ContractViolation);  // ref early
  EXPECT_THROW(hypervolume(ok, 5.0, 1.0), ContractViolation);  // ref low
}

}  // namespace
}  // namespace hec
