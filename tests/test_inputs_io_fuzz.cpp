// Fuzz-style robustness tests for the inputs text parser: random
// mutations of valid documents must either parse or throw ParseError —
// never crash, hang, or return silently corrupt structures that violate
// the types' invariants.
#include <gtest/gtest.h>

#include <string>

#include "hec/model/inputs_io.h"
#include "hec/util/rng.h"

namespace hec {
namespace {

WorkloadInputs sample_inputs() {
  WorkloadInputs in;
  in.inst_per_unit = 160.0;
  in.wpi = 0.88;
  in.spi_core = 0.52;
  in.ucpu = 1.0;
  in.spi_mem_by_cores = {LinearFit{0.8, 4.4, 0.99, 5},
                         LinearFit{0.8, 5.2, 0.99, 5}};
  return in;
}

std::string mutate(const std::string& text, Rng& rng) {
  std::string out = text;
  const int op = static_cast<int>(rng.uniform_index(5));
  if (out.empty()) return out;
  const std::size_t pos = rng.uniform_index(out.size());
  switch (op) {
    case 0:  // flip a byte
      out[pos] = static_cast<char>(rng.uniform_index(256));
      break;
    case 1:  // delete a span
      out.erase(pos, rng.uniform_index(16) + 1);
      break;
    case 2:  // duplicate a span
      out.insert(pos, out.substr(pos, rng.uniform_index(16) + 1));
      break;
    case 3:  // insert garbage
      out.insert(pos, std::string(rng.uniform_index(8) + 1,
                                  static_cast<char>(rng.uniform_index(256))));
      break;
    case 4:  // truncate
      out.resize(pos);
      break;
  }
  return out;
}

TEST(InputsIoFuzz, WorkloadParserNeverCrashes) {
  const std::string valid = serialize_workload_inputs(sample_inputs());
  Rng rng(20260704);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string doc = valid;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(4));
    for (int m = 0; m < mutations; ++m) doc = mutate(doc, rng);
    try {
      const WorkloadInputs result = parse_workload_inputs(doc);
      // Whatever parsed must uphold basic shape invariants.
      EXPECT_TRUE(result.spi_mem_by_cores.size() <= 64);
      ++parsed;
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  // Most mutations must be rejected; some survive (e.g. comment edits).
  EXPECT_GT(rejected, 1000);
  EXPECT_EQ(parsed + rejected, 3000);
}

TEST(InputsIoFuzz, PowerParserNeverCrashes) {
  PowerParams params;
  params.freqs_ghz = {0.2, 0.8, 1.4};
  params.core_active_w = {0.04, 0.23, 0.69};
  params.core_stall_w = {0.02, 0.11, 0.39};
  params.idle_w = 1.4;
  const std::string valid = serialize_power_params(params);
  Rng rng(424242);
  int rejected = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string doc = valid;
    for (int m = 0; m <= static_cast<int>(rng.uniform_index(3)); ++m) {
      doc = mutate(doc, rng);
    }
    try {
      const PowerParams result = parse_power_params(doc);
      EXPECT_EQ(result.freqs_ghz.size(), result.core_active_w.size());
      EXPECT_EQ(result.freqs_ghz.size(), result.core_stall_w.size());
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 1000);
}

// Structurally valid documents carrying NaN/Inf or out-of-range values
// must be rejected with a ParseError that names the offending key — they
// would otherwise silently poison every downstream prediction.
TEST(InputsIoFuzz, WorkloadParserRejectsNonFiniteAndOutOfRange) {
  const std::string valid = serialize_workload_inputs(sample_inputs());
  const auto expect_rejected = [&](const std::string& from,
                                   const std::string& to,
                                   const std::string& key) {
    std::string doc = valid;
    const std::size_t pos = doc.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    doc.replace(pos, from.size(), to);
    try {
      parse_workload_inputs(doc);
      FAIL() << "accepted '" << to << "'";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
          << "error '" << e.what() << "' does not name key '" << key << "'";
    }
  };
  expect_rejected("inst_per_unit 160", "inst_per_unit nan", "inst_per_unit");
  expect_rejected("inst_per_unit 160", "inst_per_unit inf", "inst_per_unit");
  expect_rejected("inst_per_unit 160", "inst_per_unit 0", "inst_per_unit");
  expect_rejected("inst_per_unit 160", "inst_per_unit -5", "inst_per_unit");
  expect_rejected("wpi 0.88", "wpi -0.1", "wpi");
  expect_rejected("wpi 0.88", "wpi -inf", "wpi");
  expect_rejected("spi_core 0.52", "spi_core nan", "spi_core");
  expect_rejected("ucpu 1", "ucpu 0", "ucpu");
  expect_rejected("ucpu 1", "ucpu 1.5", "ucpu");
  expect_rejected("ucpu 1", "ucpu nan", "ucpu");
  // r_squared lives in [0, 1]; the first fit row serializes "... 0.99 5".
  expect_rejected("0.99 5", "1.25 5", "spi_mem_fit");
  expect_rejected("0.99 5", "nan 5", "spi_mem_fit");
}

TEST(InputsIoFuzz, PowerParserRejectsNonFiniteAndOutOfRange) {
  PowerParams params;
  params.freqs_ghz = {0.2, 0.8, 1.4};
  params.core_active_w = {0.04, 0.23, 0.69};
  params.core_stall_w = {0.02, 0.11, 0.39};
  params.idle_w = 1.4;
  const std::string valid = serialize_power_params(params);
  const auto expect_rejected = [&](const std::string& from,
                                   const std::string& to,
                                   const std::string& key) {
    std::string doc = valid;
    const std::size_t pos = doc.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    doc.replace(pos, from.size(), to);
    try {
      parse_power_params(doc);
      FAIL() << "accepted '" << to << "'";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
          << "error '" << e.what() << "' does not name key '" << key << "'";
    }
  };
  expect_rejected("idle_w 1.4", "idle_w nan", "idle_w");
  expect_rejected("idle_w 1.4", "idle_w inf", "idle_w");
  expect_rejected("idle_w 1.4", "idle_w -1", "idle_w");
  expect_rejected("mem_active_w 0", "mem_active_w -0.5", "mem_active_w");
  expect_rejected("pstate 0.2", "pstate 0", "pstate");
  expect_rejected("pstate 0.2", "pstate nan", "pstate");
  expect_rejected("pstate 0.2 0.04", "pstate 0.2 inf", "pstate");
  expect_rejected("pstate 0.2 0.04 0.02", "pstate 0.2 0.04 -0.02", "pstate");
}

TEST(InputsIoFuzz, PureGarbageAlwaysRejected) {
  Rng rng(777);
  for (int i = 0; i < 500; ++i) {
    std::string garbage(rng.uniform_index(200) + 1, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform_index(256));
    EXPECT_THROW(parse_workload_inputs(garbage), ParseError) << i;
    EXPECT_THROW(parse_power_params(garbage), ParseError) << i;
  }
}

}  // namespace
}  // namespace hec
