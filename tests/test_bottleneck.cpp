#include "hec/model/bottleneck.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

Prediction fake_prediction(double core, double mem, double io) {
  Prediction p;
  p.t_core_s = core;
  p.t_mem_s = mem;
  p.t_cpu_s = std::max(core, mem);
  p.t_io_s = io;
  p.t_s = std::max(p.t_cpu_s, io);
  return p;
}

TEST(Bottleneck, ClassifiesEachResource) {
  EXPECT_EQ(classify_bottleneck(fake_prediction(1.0, 0.3, 0.1)).binding,
            Bottleneck::kCpu);
  EXPECT_EQ(classify_bottleneck(fake_prediction(0.3, 1.0, 0.1)).binding,
            Bottleneck::kMemory);
  EXPECT_EQ(classify_bottleneck(fake_prediction(0.3, 0.4, 2.0)).binding,
            Bottleneck::kIo);
}

TEST(Bottleneck, DominanceAndShare) {
  const BottleneckReport io =
      classify_bottleneck(fake_prediction(0.5, 0.4, 2.0));
  EXPECT_NEAR(io.dominance, 4.0, 1e-12);  // 2.0 / 0.5
  EXPECT_NEAR(io.share, 1.0, 1e-12);      // io defines t_s entirely

  const BottleneckReport cpu =
      classify_bottleneck(fake_prediction(1.0, 0.5, 0.25));
  EXPECT_NEAR(cpu.dominance, 2.0, 1e-12);  // core vs mem runner-up
}

TEST(Bottleneck, NearBoundaryHasLowDominance) {
  const BottleneckReport r =
      classify_bottleneck(fake_prediction(1.0, 0.99, 0.1));
  EXPECT_EQ(r.binding, Bottleneck::kCpu);
  EXPECT_LT(r.dominance, 1.05);
}

TEST(Bottleneck, RejectsEmptyPrediction) {
  Prediction p;
  EXPECT_THROW(classify_bottleneck(p), ContractViolation);
}

TEST(Bottleneck, ExplainMentionsTheResource) {
  EXPECT_NE(explain_bottleneck(fake_prediction(0.1, 0.1, 1.0)).find("I/O"),
            std::string::npos);
  EXPECT_NE(
      explain_bottleneck(fake_prediction(0.1, 1.0, 0.1)).find("memory"),
      std::string::npos);
  EXPECT_NE(explain_bottleneck(fake_prediction(1.0, 0.1, 0.1)).find("CPU"),
            std::string::npos);
}

TEST(Bottleneck, AgreesWithTable3OnRealModels) {
  // Every paper workload's classification at the full operating point
  // must match its Table 3 label on the node where the label is defined.
  CharacterizeOptions opts;
  opts.baseline_units = 5000.0;
  for (const Workload& w : all_workloads()) {
    const NodeSpec spec =
        w.bottleneck == Bottleneck::kMemory ? arm_cortex_a9()
                                            : amd_opteron_k10();
    const NodeTypeModel model = build_node_model(spec, w, opts);
    const Prediction p = model.predict(
        std::min(w.validation_units, 50000.0),
        NodeConfig{1, spec.cores, spec.pstates.max_ghz()});
    EXPECT_EQ(classify_bottleneck(p).binding, w.bottleneck) << w.name;
  }
}

}  // namespace
}  // namespace hec
