// Multi-phase traces with network phases: blending of I/O demands and
// phase-by-phase execution must compose correctly when phases differ in
// bytes and protocol floors (the memcached GET/SET asymmetry).
#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/trace/trace.h"
#include "hec/util/units.h"
#include "hec/workloads/trace_builders.h"
#include "hec/workloads/workload.h"

namespace hec {
namespace {

RunConfig quiet_config(const NodeSpec& spec) {
  RunConfig cfg;
  cfg.cores_used = spec.cores;
  cfg.f_ghz = spec.pstates.max_ghz();
  cfg.noise_sigma = 0.0;
  cfg.run_bias_sigma = 0.0;
  return cfg;
}

TEST(TraceIoPhases, BlendAveragesBytesAndFloors) {
  PhaseDemand small;
  small.instructions_per_unit = 100.0;
  small.wpi = 1.0;
  small.io_bytes_per_unit = 200.0;
  small.io_interarrival_s = 1e-6;
  PhaseDemand large = small;
  large.io_bytes_per_unit = 1000.0;
  large.io_interarrival_s = 3e-6;

  WorkloadTrace trace;
  trace.append({"small", small, 300.0});
  trace.append({"large", large, 100.0});
  const PhaseDemand blend = trace.blended_demand();
  // Unit-weighted: (300*200 + 100*1000) / 400 = 400 bytes.
  EXPECT_DOUBLE_EQ(blend.io_bytes_per_unit, 400.0);
  EXPECT_DOUBLE_EQ(blend.io_interarrival_s, 1.5e-6);
}

TEST(TraceIoPhases, IoBoundTraceTimeIsSumOfPhaseTransfers) {
  const NodeSpec arm = arm_cortex_a9();  // 100 Mbps
  PhaseDemand heavy;
  heavy.instructions_per_unit = 100.0;  // negligible compute
  heavy.wpi = 1.0;
  heavy.io_bytes_per_unit = 2000.0;
  PhaseDemand light = heavy;
  light.io_bytes_per_unit = 500.0;

  WorkloadTrace trace;
  trace.append({"heavy", heavy, 1000.0});
  trace.append({"light", light, 1000.0});
  const RunResult r = simulate_trace(arm, trace, quiet_config(arm));
  const double bandwidth = units::mbps_to_bytes_per_s(100.0);
  const double expected =
      1000.0 * 2000.0 / bandwidth + 1000.0 * 500.0 / bandwidth;
  EXPECT_NEAR(r.wall_s, expected, expected * 0.02);
  EXPECT_NEAR(r.counters.io_bytes, 2.5e6, 1.0);
}

TEST(TraceIoPhases, MemcachedTraceMatchesBlendedSingleRun) {
  // Executing the 3-phase memcached trace should land close to one run
  // of its blend — same aggregate bytes and instructions.
  const NodeSpec arm = arm_cortex_a9();
  const Workload mc = workload_memcached();
  const WorkloadTrace trace =
      make_workload_trace(mc, Isa::kArmV7a, 20000.0);
  const RunResult traced = simulate_trace(arm, trace, quiet_config(arm));
  RunConfig single = quiet_config(arm);
  single.work_units = 20000.0;
  const RunResult blended =
      simulate_node(arm, trace.blended_demand(), single);
  EXPECT_NEAR(traced.wall_s, blended.wall_s, blended.wall_s * 0.05);
  EXPECT_NEAR(traced.counters.io_bytes, blended.counters.io_bytes,
              blended.counters.io_bytes * 0.01);
  EXPECT_NEAR(traced.energy.total_j(), blended.energy.total_j(),
              blended.energy.total_j() * 0.05);
}

TEST(TraceIoPhases, MixedComputeAndIoPhasesAccumulateEnergy) {
  const NodeSpec amd = amd_opteron_k10();
  PhaseDemand compute;
  compute.instructions_per_unit = 1e5;
  compute.wpi = 0.8;
  compute.spi_core = 0.4;
  PhaseDemand network;
  network.instructions_per_unit = 100.0;
  network.wpi = 1.0;
  network.io_bytes_per_unit = 5000.0;

  WorkloadTrace trace;
  trace.append({"compute", compute, 5000.0});
  trace.append({"network", network, 5000.0});
  const RunResult r = simulate_trace(amd, trace, quiet_config(amd));
  EXPECT_GT(r.energy.core_j, 0.0);
  EXPECT_GT(r.energy.io_j, 0.0);
  EXPECT_NEAR(r.energy.idle_j, amd.idle_node_w() * r.wall_s,
              r.energy.idle_j * 1e-6);
  // Compute phase keeps cores busy; network phase starves them.
  EXPECT_GT(r.cpu_busy_s, 0.0);
  EXPECT_LT(r.ucpu(), 1.0);
}

}  // namespace
}  // namespace hec
