// Soundness of the bound-and-prune + SoA/SIMD sweep layer: for ANY
// model calibration — including non-monotone SPImem profiles and
// randomly perturbed power curves — the pruned/vectorized engines must
// return the evaluate-everything scalar engine's frontier bit for bit.
// The bounds are computed from the compiled table entries themselves
// (hec/sweep/bounds.h), never from knob monotonicity, which is exactly
// what this suite stresses: 200 random calibrations, every prune/simd
// combination, the robust and multi-type engines, seeded resumable
// sweeps, and the degenerate chunk geometries (single block,
// all-dominated, none-dominated) at the walk level.
#include "hec/sweep/bounds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <random>
#include <utility>
#include <vector>

#include "hec/config/evaluate.h"
#include "hec/config/robust_evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/model/node_model.h"
#include "hec/resilience/resumable.h"
#include "hec/sweep/sweep.h"

namespace hec {
namespace {

/// A fully synthetic calibration for `spec`: every coefficient drawn at
/// random, SPImem fits independently sampled per core count (so the
/// profile is non-monotone in both cores and frequency with high
/// probability — slopes may be negative). Values stay positive across
/// the spec's P-state range, but nothing here is monotone, smooth or
/// physical; the prune layer must not care.
NodeTypeModel perturbed_model(const NodeSpec& spec, std::mt19937& rng) {
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const auto uni = [&](double lo, double hi) {
    return lo + (hi - lo) * u01(rng);
  };

  WorkloadInputs w;
  w.inst_per_unit = uni(1e3, 1e6);
  w.wpi = uni(0.5, 3.0);
  w.spi_core = uni(0.0, 2.0);
  for (int c = 0; c < spec.cores; ++c) {
    LinearFit fit;
    fit.intercept = uni(1.2, 6.0);
    // Negative slopes allowed: SPImem decreasing in f. Bounded so the
    // value stays positive at the spec's top P-state.
    fit.slope = uni(-0.3, 0.7);
    fit.r_squared = 1.0;
    w.spi_mem_by_cores.push_back(fit);
  }
  w.ucpu = uni(0.3, 1.0);
  w.io_bytes_per_unit = uni(0.0, 1e4);
  w.io_s_per_unit = u01(rng) < 0.3 ? 0.0 : uni(1e-7, 1e-4);

  PowerParams p;
  p.freqs_ghz = spec.pstates.frequencies_ghz();
  for (std::size_t i = 0; i < p.freqs_ghz.size(); ++i) {
    p.core_active_w.push_back(uni(1.0, 12.0));
    p.core_stall_w.push_back(uni(0.2, 5.0));
  }
  p.mem_active_w = uni(0.5, 8.0);
  p.io_active_w = uni(0.2, 5.0);
  p.idle_w = uni(2.0, 40.0);

  const EnergyAccounting acct = u01(rng) < 0.5
                                    ? EnergyAccounting::kPaperEq17
                                    : EnergyAccounting::kOverlapAware;
  return NodeTypeModel(spec, std::move(w), std::move(p), acct);
}

void expect_identical(const SweepResult& got, const SweepResult& want,
                      const char* label, int seed = -1) {
  ASSERT_EQ(got.frontier.size(), want.frontier.size())
      << label << " seed " << seed;
  for (std::size_t i = 0; i < got.frontier.size(); ++i) {
    EXPECT_EQ(got.frontier[i], want.frontier[i])
        << label << " seed " << seed << " frontier point " << i;
  }
}

SweepOptions everything() {
  SweepOptions o;
  o.prune = false;
  o.simd = false;
  return o;
}

// The core property: 200 random calibrations, random limits and work
// amounts, pruned+vectorized vs evaluate-everything scalar. Bit
// identity, and the visited-point accounting must balance.
TEST(SweepPruneProperty, PerturbedCoefficientsPrunedMatchesUnpruned) {
  const NodeSpec arm_spec = arm_cortex_a9();
  const NodeSpec amd_spec = amd_opteron_k10();
  for (int seed = 0; seed < 200; ++seed) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
    const NodeTypeModel arm = perturbed_model(arm_spec, rng);
    const NodeTypeModel amd = perturbed_model(amd_spec, rng);
    std::uniform_int_distribution<int> pick_nodes(0, 4);
    EnumerationLimits limits{pick_nodes(rng), pick_nodes(rng)};
    if (limits.max_arm_nodes == 0 && limits.max_amd_nodes == 0) {
      limits.max_arm_nodes = 1;
    }
    std::uniform_real_distribution<double> pick_exp(3.5, 7.0);
    const double work_units = std::pow(10.0, pick_exp(rng));

    const SweepResult fast = sweep_frontier(arm, amd, limits, work_units);
    const SweepResult plain =
        sweep_frontier(arm, amd, limits, work_units, everything());
    expect_identical(fast, plain, "perturbed", seed);
    EXPECT_EQ(fast.stats.evaluated + fast.stats.pruned, fast.stats.configs)
        << "seed " << seed;
    EXPECT_EQ(plain.stats.pruned, 0u) << "seed " << seed;
  }
}

// Every prune/simd combination agrees with the naive legacy reference.
TEST(SweepPruneProperty, AllEngineCombosMatchReferenceBitForBit) {
  std::mt19937 rng(777);
  const NodeTypeModel arm = perturbed_model(arm_cortex_a9(), rng);
  const NodeTypeModel amd = perturbed_model(amd_opteron_k10(), rng);
  const EnumerationLimits limits{4, 3};
  const double work_units = 2e6;
  const SweepResult want =
      sweep_frontier_reference(arm, amd, limits, work_units);
  for (const bool prune : {false, true}) {
    for (const bool simd : {false, true}) {
      SweepOptions o;
      o.prune = prune;
      o.simd = simd;
      const SweepResult got =
          sweep_frontier(arm, amd, limits, work_units, o);
      expect_identical(got, want,
                       prune ? (simd ? "prune+simd" : "prune+scalar")
                             : (simd ? "simd" : "scalar"));
    }
  }
}

// Pruning decisions at any chunk granularity are invisible in the
// result (the chunk size only changes which prefilter batches fire).
TEST(SweepPruneProperty, ChunkSizingIsInvisible) {
  std::mt19937 rng(4242);
  const NodeTypeModel arm = perturbed_model(arm_cortex_a9(), rng);
  const NodeTypeModel amd = perturbed_model(amd_opteron_k10(), rng);
  const EnumerationLimits limits{3, 3};
  const double work_units = 5e5;
  const SweepResult want =
      sweep_frontier(arm, amd, limits, work_units, everything());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{32}, std::size_t{4096},
                                  std::size_t{1u << 20}}) {
    SweepOptions o;
    o.prune_chunk = chunk;
    const SweepResult got = sweep_frontier(arm, amd, limits, work_units, o);
    expect_identical(got, want, "chunk variant");
    EXPECT_EQ(got.stats.evaluated + got.stats.pruned, got.stats.configs)
        << "chunk " << chunk;
  }
}

// Inert fault model: the robust engine may prune (the gate allows it)
// and must stay bit-identical to its reference. Active faults: pruning
// silently disables (Monte Carlo outcomes are not bounded by the
// nominal analytics) — the gate, not the caller, is responsible.
TEST(SweepPruneProperty, RobustSweepPruneGate) {
  std::mt19937 rng(99);
  const NodeTypeModel arm = perturbed_model(arm_cortex_a9(), rng);
  const NodeTypeModel amd = perturbed_model(amd_opteron_k10(), rng);
  const EnumerationLimits limits{2, 2};
  const double work_units = 1e5;
  MonteCarloOptions mc;
  mc.trials = 4;

  const FaultConfig inert;  // defaults: no crashes, stragglers, caps
  ASSERT_FALSE(inert.enabled());
  const RobustConfigEvaluator calm(arm, amd, inert, mc);
  const SweepResult fast =
      sweep_robust_frontier(calm, limits, work_units, 1e6, 1.0);
  const SweepResult naive = sweep_robust_frontier_reference(
      calm, limits, work_units, 1e6, 1.0);
  expect_identical(fast, naive, "robust inert");

  FaultConfig active;
  active.mttf_s = 4000.0;
  ASSERT_TRUE(active.enabled());
  const RobustConfigEvaluator faulty(arm, amd, active, mc);
  const SweepResult guarded =
      sweep_robust_frontier(faulty, limits, work_units, 1e6, 1.0);
  EXPECT_EQ(guarded.stats.pruned, 0u)
      << "active faults must disable pruning";
  expect_identical(guarded,
                   sweep_robust_frontier_reference(faulty, limits,
                                                   work_units, 1e6, 1.0),
                   "robust active");
}

// Multi-type odometer space under a perturbed third calibration.
TEST(SweepPruneProperty, MultiTypePrunedMatchesUnpruned) {
  std::mt19937 rng(11);
  const NodeTypeModel arm = perturbed_model(arm_cortex_a9(), rng);
  const NodeTypeModel amd = perturbed_model(amd_opteron_k10(), rng);
  const NodeTypeModel third = perturbed_model(arm_cortex_a9(), rng);
  const std::vector<const NodeTypeModel*> models = {&arm, &amd, &third};
  const std::vector<int> limits = {2, 1, 2};
  const double work_units = 3e5;
  expect_identical(sweep_multi_frontier(models, limits, work_units),
                   sweep_multi_frontier(models, limits, work_units,
                                        everything()),
                   "multi");
}

// A resumable sweep seeded with incumbents — or even with the complete
// reference frontier (every seed point is a genuine point of the
// space) — finishes with the identical frontier; a full-frontier seed
// makes pruning near-maximal without changing a single output bit.
TEST(SweepPruneProperty, SeededResumableSweepIsIdentical) {
  std::mt19937 rng(5150);
  const NodeTypeModel arm = perturbed_model(arm_cortex_a9(), rng);
  const NodeTypeModel amd = perturbed_model(amd_opteron_k10(), rng);
  const EnumerationLimits limits{6, 6};
  const double work_units = 1e6;
  const SweepResult want =
      sweep_frontier(arm, amd, limits, work_units, everything());

  const MemoizedConfigEvaluator memo(arm, amd, limits);
  resilience::ResilienceOptions incumbent_seeded;
  incumbent_seeded.seed_frontier = two_type_incumbents(memo, work_units);
  const resilience::ResumableSweepResult seeded =
      resilience::resumable_sweep_frontier(arm, amd, limits, work_units, {},
                                           incumbent_seeded);
  ASSERT_TRUE(seeded.complete);
  ASSERT_EQ(seeded.frontier.size(), want.frontier.size());
  for (std::size_t i = 0; i < want.frontier.size(); ++i) {
    EXPECT_EQ(seeded.frontier[i], want.frontier[i]) << "incumbent seed " << i;
  }

  resilience::ResilienceOptions frontier_seeded;
  frontier_seeded.seed_frontier = want.frontier;
  const resilience::ResumableSweepResult maximal =
      resilience::resumable_sweep_frontier(arm, amd, limits, work_units, {},
                                           frontier_seeded);
  ASSERT_TRUE(maximal.complete);
  ASSERT_EQ(maximal.frontier.size(), want.frontier.size());
  for (std::size_t i = 0; i < want.frontier.size(); ++i) {
    EXPECT_EQ(maximal.frontier[i], want.frontier[i]) << "frontier seed " << i;
  }
  EXPECT_GT(maximal.stats.pruned, 0u)
      << "a full-frontier seed should prune aggressively";
  EXPECT_EQ(maximal.stats.evaluated + maximal.stats.pruned,
            maximal.stats.configs);
}

// ---- Degenerate chunk geometries, at the walk level ------------------

struct WalkFixture {
  WalkFixture()
      : arm([] {
          std::mt19937 rng(31337);
          return perturbed_model(arm_cortex_a9(), rng);
        }()),
        amd([] {
          std::mt19937 rng(31338);
          return perturbed_model(amd_opteron_k10(), rng);
        }()),
        memo(arm, amd, EnumerationLimits{1, 1}) {}

  NodeTypeModel arm;
  NodeTypeModel amd;
  MemoizedConfigEvaluator memo;
  const double work_units = 1e5;

  /// Evaluation stub that only counts; the walk's accounting and skip
  /// decisions are what is under test here.
  std::size_t calls = 0;
  std::size_t touched = 0;
  BoundWalkStats walk(const BlockBoundTable* bounds, ParetoAccumulator& acc) {
    return walk_with_bounds(
        bounds, 0, memo.size(), acc,
        [&](std::size_t s, std::size_t e, ParetoAccumulator&) {
          ++calls;
          touched += e - s;
        });
  }
};

TEST(SweepPruneDegenerate, SingleBlockSpace) {
  WalkFixture f;
  // Chunk larger than the whole space: exactly one bound chunk.
  const BlockBoundTable bounds =
      BlockBoundTable::for_two_type(f.memo, f.work_units, 1u << 20);
  EXPECT_EQ(bounds.chunks(), 1u);
  ParetoAccumulator acc;
  const BoundWalkStats stats = f.walk(&bounds, acc);
  // Empty frontier dominates nothing: the single chunk evaluates whole.
  EXPECT_EQ(stats.evaluated, f.memo.size());
  EXPECT_EQ(stats.pruned, 0u);
  EXPECT_EQ(stats.chunks_pruned, 0u);
  EXPECT_EQ(f.touched, f.memo.size());
}

TEST(SweepPruneDegenerate, AllChunksDominated) {
  WalkFixture f;
  const BlockBoundTable bounds =
      BlockBoundTable::for_two_type(f.memo, f.work_units, 1);
  ParetoAccumulator acc;
  // A carry point that beats every corner outright: everything prunes,
  // the evaluation callback never runs.
  acc.seed({{1e-300, 1e-300, 0}});
  const BoundWalkStats stats = f.walk(&bounds, acc);
  EXPECT_EQ(stats.evaluated, 0u);
  EXPECT_EQ(stats.pruned, f.memo.size());
  EXPECT_EQ(stats.chunks_pruned, bounds.chunks());
  EXPECT_EQ(f.calls, 0u);
}

TEST(SweepPruneDegenerate, NoChunkDominated) {
  WalkFixture f;
  const BlockBoundTable bounds =
      BlockBoundTable::for_two_type(f.memo, f.work_units, 1);
  ParetoAccumulator acc;
  // A carry point slower than every corner dominates none of them.
  acc.seed({{1e300, 1e-300, 0}});
  const BoundWalkStats stats = f.walk(&bounds, acc);
  EXPECT_EQ(stats.evaluated, f.memo.size());
  EXPECT_EQ(stats.pruned, 0u);
  EXPECT_EQ(stats.chunks_pruned, 0u);
  EXPECT_EQ(f.touched, f.memo.size());
}

TEST(SweepPruneDegenerate, NullBoundsEvaluateEverythingInOneRange) {
  WalkFixture f;
  ParetoAccumulator acc;
  acc.seed({{1e-300, 1e-300, 0}});  // would prune everything, if consulted
  const BoundWalkStats stats = f.walk(nullptr, acc);
  EXPECT_EQ(stats.evaluated, f.memo.size());
  EXPECT_EQ(stats.pruned, 0u);
  EXPECT_EQ(f.calls, 1u) << "no bounds: one contiguous eval range";
}

}  // namespace
}  // namespace hec
