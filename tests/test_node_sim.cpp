#include "hec/sim/node_sim.h"

#include <gtest/gtest.h>

#include <tuple>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"
#include "hec/util/units.h"

namespace hec {
namespace {

PhaseDemand compute_demand() {
  PhaseDemand d;
  d.instructions_per_unit = 1000.0;
  d.wpi = 0.8;
  d.spi_core = 0.5;
  d.mem_misses_per_kinst = 1.0;
  return d;
}

RunConfig quiet_config(int cores, double f, double units,
                       std::uint64_t seed = 1) {
  RunConfig cfg;
  cfg.cores_used = cores;
  cfg.f_ghz = f;
  cfg.work_units = units;
  cfg.seed = seed;
  cfg.noise_sigma = 0.0;
  cfg.run_bias_sigma = 0.0;
  return cfg;
}

TEST(NodeSim, DeterministicForSameSeed) {
  const NodeSpec arm = arm_cortex_a9();
  RunConfig cfg = quiet_config(4, 1.4, 10000.0, 99);
  cfg.noise_sigma = 0.05;
  const RunResult a = simulate_node(arm, compute_demand(), cfg);
  const RunResult b = simulate_node(arm, compute_demand(), cfg);
  EXPECT_DOUBLE_EQ(a.wall_s, b.wall_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST(NodeSim, NoiselessWallTimeMatchesCycleModel) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = compute_demand();
  const RunResult r = simulate_node(arm, d, quiet_config(1, 1.4, 5000.0));
  // Single core: stall = max(spi_core, spi_mem(1.4, 1 core)).
  const double spi_mem =
      d.mem_misses_per_kinst / 1000.0 *
      (arm.miss_fixed_cycles + arm.dram_latency_ns * 1.4);
  const double cycles =
      5000.0 * d.instructions_per_unit * (d.wpi + std::max(d.spi_core, spi_mem));
  EXPECT_NEAR(r.wall_s, cycles / units::ghz_to_hz(1.4), 1e-9);
}

TEST(NodeSim, CountersMatchDemands) {
  const NodeSpec amd = amd_opteron_k10();
  const PhaseDemand d = compute_demand();
  const RunResult r = simulate_node(amd, d, quiet_config(6, 2.1, 12000.0));
  EXPECT_NEAR(r.counters.instructions, 12000.0 * 1000.0, 1.0);
  EXPECT_NEAR(r.counters.wpi(), d.wpi, 1e-9);
  EXPECT_NEAR(r.counters.spi_core(), d.spi_core, 1e-9);
  EXPECT_NEAR(r.counters.instructions_per_unit(), 1000.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.counters.work_units, 12000.0);
}

TEST(NodeSim, MoreCoresRunFaster) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = compute_demand();
  double prev = 1e30;
  for (int c = 1; c <= arm.cores; ++c) {
    const RunResult r = simulate_node(arm, d, quiet_config(c, 1.4, 20000.0));
    EXPECT_LT(r.wall_s, prev);
    prev = r.wall_s;
  }
}

TEST(NodeSim, HigherFrequencyRunsFaster) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = compute_demand();
  double prev = 1e30;
  for (double f : arm.pstates.frequencies_ghz()) {
    const RunResult r = simulate_node(arm, d, quiet_config(4, f, 20000.0));
    EXPECT_LT(r.wall_s, prev);
    prev = r.wall_s;
  }
}

TEST(NodeSim, ComputeBoundKeepsCoresBusy) {
  const NodeSpec arm = arm_cortex_a9();
  const RunResult r =
      simulate_node(arm, compute_demand(), quiet_config(4, 1.4, 20000.0));
  EXPECT_GT(r.ucpu(), 0.95);
}

TEST(NodeSim, IoBoundRunIsNicLimited) {
  const NodeSpec arm = arm_cortex_a9();  // 100 Mbps
  PhaseDemand d = compute_demand();
  d.io_bytes_per_unit = 800.0;
  d.io_interarrival_s = 5e-6;
  const double units = 5000.0;
  const RunResult r = simulate_node(arm, d, quiet_config(4, 1.4, units));
  const double transfer_limited =
      units * 800.0 / units::mbps_to_bytes_per_s(100.0);
  EXPECT_NEAR(r.wall_s, transfer_limited, transfer_limited * 0.02);
  EXPECT_LT(r.ucpu(), 0.1);  // cores starve behind the NIC
  EXPECT_GT(r.io_busy_s, 0.9 * r.wall_s);
}

TEST(NodeSim, IoOverlapsWithCompute) {
  // A compute-heavy request-driven run: NIC delivery is much faster than
  // compute, so wall time stays compute-bound (full overlap, Eq. 2).
  const NodeSpec amd = amd_opteron_k10();  // 1 Gbps
  PhaseDemand d = compute_demand();
  d.instructions_per_unit = 1e6;
  d.io_bytes_per_unit = 100.0;
  d.io_interarrival_s = 0.0;
  const RunResult with_io = simulate_node(amd, d, quiet_config(6, 2.1, 2000.0));
  PhaseDemand no_io = d;
  no_io.io_bytes_per_unit = 0.0;
  const RunResult without_io =
      simulate_node(amd, no_io, quiet_config(6, 2.1, 2000.0));
  EXPECT_NEAR(with_io.wall_s, without_io.wall_s, without_io.wall_s * 0.05);
}

TEST(NodeSim, EnergyBreakdownPositiveAndConsistent) {
  const NodeSpec amd = amd_opteron_k10();
  const RunResult r =
      simulate_node(amd, compute_demand(), quiet_config(6, 2.1, 20000.0));
  EXPECT_GT(r.energy.idle_j, 0.0);
  EXPECT_GT(r.energy.core_j, 0.0);
  EXPECT_NEAR(r.energy.idle_j, amd.idle_node_w() * r.wall_s, 1e-6);
  EXPECT_GT(r.avg_power_w(), amd.idle_node_w());
  EXPECT_LT(r.avg_power_w(), amd.peak_node_w() * 1.05);
}

TEST(NodeSim, EnergyScalesRoughlyLinearlyWithWork) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = compute_demand();
  const RunResult small = simulate_node(arm, d, quiet_config(4, 1.4, 10000.0));
  const RunResult large = simulate_node(arm, d, quiet_config(4, 1.4, 40000.0));
  EXPECT_NEAR(large.energy.total_j() / small.energy.total_j(), 4.0, 0.05);
  EXPECT_NEAR(large.wall_s / small.wall_s, 4.0, 0.05);
}

TEST(NodeSim, NoiseProducesRunToRunVariation) {
  const NodeSpec arm = arm_cortex_a9();
  RunConfig cfg = quiet_config(4, 1.4, 10000.0, 1);
  cfg.noise_sigma = 0.03;
  cfg.run_bias_sigma = 0.02;
  const RunResult a = simulate_node(arm, compute_demand(), cfg);
  cfg.seed = 2;
  const RunResult b = simulate_node(arm, compute_demand(), cfg);
  EXPECT_NE(a.wall_s, b.wall_s);
  // But within a few percent - the paper's "irregularities among runs".
  EXPECT_NEAR(a.wall_s / b.wall_s, 1.0, 0.15);
}

TEST(NodeSim, RejectsInvalidConfigs) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = compute_demand();
  EXPECT_THROW(simulate_node(arm, d, quiet_config(0, 1.4, 1.0)),
               ContractViolation);
  EXPECT_THROW(simulate_node(arm, d, quiet_config(5, 1.4, 1.0)),
               ContractViolation);
  EXPECT_THROW(simulate_node(arm, d, quiet_config(4, 1.0, 1.0)),
               ContractViolation);  // unsupported P-state
  EXPECT_THROW(simulate_node(arm, d, quiet_config(4, 1.4, 0.0)),
               ContractViolation);
}

TEST(NodeSim, MemStallsGrowWithActiveCores) {
  // Shared memory controller: per-instruction memory stalls are higher
  // when more cores contend (Section II-B2).
  const NodeSpec arm = arm_cortex_a9();
  PhaseDemand d = compute_demand();
  d.mem_misses_per_kinst = 20.0;
  const RunResult one = simulate_node(arm, d, quiet_config(1, 1.4, 20000.0));
  const RunResult four = simulate_node(arm, d, quiet_config(4, 1.4, 20000.0));
  EXPECT_GT(four.counters.spi_mem(), one.counters.spi_mem());
}

TEST(MicroBenchmarks, CpuMaxIsPureWork) {
  const PhaseDemand d = cpu_max_demand();
  EXPECT_GT(d.instructions_per_unit, 0.0);
  EXPECT_DOUBLE_EQ(d.spi_core, 0.0);
  EXPECT_DOUBLE_EQ(d.mem_misses_per_kinst, 0.0);
}

TEST(MicroBenchmarks, StallStreamIsMissHeavy) {
  const PhaseDemand d = stall_stream_demand();
  EXPECT_GT(d.mem_misses_per_kinst, 10.0);
  EXPECT_LT(d.wpi, 0.5);
}

}  // namespace
}  // namespace hec
