#include "hec/io/gnuplot.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "hec/util/expect.h"

namespace hec {
namespace {

GnuplotFigure sample_figure() {
  GnuplotFigure fig;
  fig.output_png = "fig4.png";
  fig.title = "Pareto frontier for EP";
  fig.x_label = "Deadline [ms]";
  fig.y_label = "Energy [J]";
  return fig;
}

TEST(Gnuplot, ScriptContainsTheEssentials) {
  const std::string script = gnuplot_script(
      "fig4.csv", sample_figure(),
      {GnuplotSeries{"all configs", 1, 2, "", "points"},
       GnuplotSeries{"frontier", 1, 2, "$9 == 1", "linespoints"}});
  EXPECT_NE(script.find("set datafile separator ','"), std::string::npos);
  EXPECT_NE(script.find("set output 'fig4.png'"), std::string::npos);
  EXPECT_NE(script.find("'fig4.csv' skip 1 using 1:2"), std::string::npos);
  EXPECT_NE(script.find("($9 == 1 ? $1 : 1/0):2"), std::string::npos);
  EXPECT_NE(script.find("title 'frontier'"), std::string::npos);
  EXPECT_EQ(script.find("logscale"), std::string::npos);
}

TEST(Gnuplot, LogAxesAndRanges) {
  GnuplotFigure fig = sample_figure();
  fig.log_x = true;
  fig.y_min = 15.0;
  fig.y_max = 30.0;
  const std::string script =
      gnuplot_script("f.csv", fig, {GnuplotSeries{"s", 1, 2, "", "linespoints"}});
  EXPECT_NE(script.find("set logscale x"), std::string::npos);
  EXPECT_NE(script.find("set yrange [15.000000:30.000000]"),
            std::string::npos);
}

TEST(Gnuplot, QuotesAreEscaped) {
  GnuplotFigure fig = sample_figure();
  fig.title = "EP's frontier";
  const std::string script =
      gnuplot_script("f.csv", fig, {GnuplotSeries{"s", 1, 2, "", "linespoints"}});
  EXPECT_NE(script.find("'EP''s frontier'"), std::string::npos);
}

TEST(Gnuplot, MultipleSeriesJoinedWithContinuations) {
  const std::string script = gnuplot_script(
      "f.csv", sample_figure(),
      {GnuplotSeries{"a", 1, 2, "", "lines"}, GnuplotSeries{"b", 1, 3, "", "lines"},
       GnuplotSeries{"c", 1, 4, "", "lines"}});
  // One plot statement (the header comment also says "gnuplot"), two
  // continuations.
  EXPECT_EQ(script.find("\nplot "), script.rfind("\nplot "));
  std::size_t continuations = 0;
  for (std::size_t pos = script.find(", \\"); pos != std::string::npos;
       pos = script.find(", \\", pos + 1)) {
    ++continuations;
  }
  EXPECT_EQ(continuations, 2u);
}

TEST(Gnuplot, RejectsInvalidInput) {
  EXPECT_THROW(gnuplot_script("f.csv", sample_figure(), {}),
               ContractViolation);
  GnuplotSeries bad;
  bad.x_column = 0;
  EXPECT_THROW(gnuplot_script("f.csv", sample_figure(), {bad}),
               ContractViolation);
}

TEST(Gnuplot, WriteCreatesSiblingScript) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "hec_gnuplot_test";
  fs::create_directories(dir);
  const std::string csv = (dir / "figX.csv").string();
  {
    std::ofstream out(csv);
    out << "a,b\n1,2\n";
  }
  const std::string path =
      write_gnuplot_script(csv, sample_figure(), {GnuplotSeries{"s", 1, 2, "", "linespoints"}});
  EXPECT_TRUE(path.ends_with("figX.gp"));
  EXPECT_TRUE(fs::exists(path));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hec
