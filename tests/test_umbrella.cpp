// Compilation/link smoke test of the umbrella header: every public type
// is reachable through one include, and the main pipeline composes.
#include "hec.h"

#include <gtest/gtest.h>

namespace hec {
namespace {

TEST(Umbrella, PipelineComposesThroughOneHeader) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const Workload ep = workload_ep();
  CharacterizeOptions opts;
  opts.baseline_units = 2000.0;
  const NodeTypeModel arm_model = build_node_model(arm, ep, opts);
  const NodeTypeModel amd_model = build_node_model(amd, ep, opts);
  const ConfigEvaluator evaluator(arm_model, amd_model);
  const auto configs = enumerate_configs(arm, amd, EnumerationLimits{2, 2});
  const auto outcomes = evaluator.evaluate_all(configs, 1e6);
  std::vector<TimeEnergyPoint> points;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  const EnergyDeadlineCurve curve(pareto_frontier(points));
  EXPECT_GT(curve.points().size(), 0u);
  EXPECT_GT(curve.min_time_s(), 0.0);
}

TEST(Umbrella, AllSubsystemTypesVisible) {
  // One declaration per subsystem proves the header exports them.
  [[maybe_unused]] MD1Queue md1(1.0, 0.1);
  [[maybe_unused]] MM1Queue mm1(1.0, 0.1);
  [[maybe_unused]] Rng rng(1);
  [[maybe_unused]] Summary summary;
  [[maybe_unused]] WorkloadTrace trace;
  [[maybe_unused]] TablePrinter table({"x"});
  [[maybe_unused]] EqualSplitScheduler equal;
  SUCCEED();
}

}  // namespace
}  // namespace hec
