#include "hec/pareto/sweet_region.h"

#include <gtest/gtest.h>

#include <vector>

#include "hec/util/expect.h"

namespace hec {
namespace {

// Synthetic frontier shaped like Fig. 4: a heterogeneous prefix with
// linearly falling energy, then a homogeneous (overlap) tail. Tags below
// 100 mark heterogeneous configurations.
std::vector<TimeEnergyPoint> fig4_like_frontier() {
  std::vector<TimeEnergyPoint> frontier;
  for (std::size_t i = 0; i < 10; ++i) {
    const double t = 0.05 + 0.01 * static_cast<double>(i);
    frontier.push_back({t, 30.0 - 1.5 * static_cast<double>(i), i});
  }
  frontier.push_back({0.20, 14.0, 100});  // ARM-only overlap region
  frontier.push_back({0.25, 13.0, 101});
  return frontier;
}

bool is_hetero(std::size_t tag) { return tag < 100; }

TEST(SweetRegion, FindsHeterogeneousPrefix) {
  const auto frontier = fig4_like_frontier();
  const auto region = find_sweet_region(frontier, is_hetero);
  ASSERT_TRUE(region.has_value());
  EXPECT_EQ(region->begin, 0u);
  EXPECT_EQ(region->end, 10u);
  EXPECT_EQ(region->size(), 10u);
}

TEST(SweetRegion, LinearEnergyGivesPerfectFit) {
  const auto frontier = fig4_like_frontier();
  const auto region = find_sweet_region(frontier, is_hetero);
  ASSERT_TRUE(region.has_value());
  EXPECT_GT(region->energy_vs_time.r_squared, 0.999);
  EXPECT_LT(region->energy_vs_time.slope, 0.0);  // relaxing saves energy
  EXPECT_DOUBLE_EQ(region->energy_upper_j, 30.0);
  EXPECT_DOUBLE_EQ(region->energy_lower_j, 16.5);
}

TEST(SweetRegion, RequiresMinimumPoints) {
  std::vector<TimeEnergyPoint> frontier{
      {1.0, 10.0, 0}, {2.0, 9.0, 1}, {3.0, 8.0, 200}};
  EXPECT_FALSE(find_sweet_region(frontier, is_hetero, 3).has_value());
  EXPECT_TRUE(find_sweet_region(frontier, is_hetero, 2).has_value());
  EXPECT_THROW(find_sweet_region(frontier, is_hetero, 1),
               ContractViolation);
}

TEST(SweetRegion, AbsentWhenFrontierStartsHomogeneous) {
  std::vector<TimeEnergyPoint> frontier{
      {1.0, 10.0, 300}, {2.0, 9.0, 0}, {3.0, 8.0, 1}, {4.0, 7.0, 2}};
  EXPECT_FALSE(find_sweet_region(frontier, is_hetero).has_value());
}

TEST(OverlapRegion, HomogeneousSuffixLocated) {
  const auto frontier = fig4_like_frontier();
  const OverlapRegion overlap = find_overlap_region(frontier, is_hetero);
  EXPECT_EQ(overlap.begin, 10u);
  EXPECT_EQ(overlap.end, 12u);
  EXPECT_EQ(overlap.size(), 2u);
}

TEST(OverlapRegion, EmptyForFullyHeterogeneousFrontier) {
  // The paper's I/O-bound case (Fig. 5): no overlap region.
  std::vector<TimeEnergyPoint> frontier;
  for (std::size_t i = 0; i < 5; ++i) {
    frontier.push_back(
        {1.0 + static_cast<double>(i), 10.0 - static_cast<double>(i), i});
  }
  const OverlapRegion overlap = find_overlap_region(frontier, is_hetero);
  EXPECT_EQ(overlap.size(), 0u);
  EXPECT_EQ(overlap.begin, frontier.size());
}

TEST(OverlapRegion, WholeFrontierWhenAllHomogeneous) {
  std::vector<TimeEnergyPoint> frontier{{1.0, 5.0, 100}, {2.0, 4.0, 101}};
  const OverlapRegion overlap = find_overlap_region(frontier, is_hetero);
  EXPECT_EQ(overlap.begin, 0u);
  EXPECT_EQ(overlap.size(), 2u);
}

}  // namespace
}  // namespace hec
