#include "hec/workloads/kvstore.h"

#include <gtest/gtest.h>

#include <set>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(KvStore, SetThenGet) {
  KvStore store(64);
  EXPECT_TRUE(store.set("alpha", "1"));
  EXPECT_TRUE(store.set("beta", "2"));
  EXPECT_EQ(store.get("alpha").value(), "1");
  EXPECT_EQ(store.get("beta").value(), "2");
  EXPECT_FALSE(store.get("gamma").has_value());
  EXPECT_EQ(store.size(), 2u);
}

TEST(KvStore, SetOverwrites) {
  KvStore store(16);
  store.set("k", "old");
  store.set("k", "new");
  EXPECT_EQ(store.get("k").value(), "new");
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStore, RemoveAndTombstoneReuse) {
  KvStore store(16);
  store.set("a", "1");
  EXPECT_TRUE(store.remove("a"));
  EXPECT_FALSE(store.remove("a"));
  EXPECT_FALSE(store.get("a").has_value());
  EXPECT_EQ(store.size(), 0u);
  // Insert again: the tombstone slot is reusable.
  EXPECT_TRUE(store.set("a", "2"));
  EXPECT_EQ(store.get("a").value(), "2");
}

TEST(KvStore, ProbeChainsSurviveDeletes) {
  // Force collisions with a tiny table, delete a middle element and make
  // sure later chain members stay reachable.
  KvStore store(4);
  store.set("k1", "1");
  store.set("k2", "2");
  store.set("k3", "3");
  store.remove("k2");
  EXPECT_EQ(store.get("k1").value(), "1");
  EXPECT_EQ(store.get("k3").value(), "3");
}

TEST(KvStore, FillsToCapacity) {
  KvStore store(8);
  const std::size_t cap = store.capacity();
  for (std::size_t i = 0; i < cap; ++i) {
    EXPECT_TRUE(store.set("key" + std::to_string(i), "v"));
  }
  EXPECT_EQ(store.size(), cap);
  EXPECT_FALSE(store.set("overflow", "v"));
  // Every inserted key is still retrievable at 100% load.
  for (std::size_t i = 0; i < cap; ++i) {
    EXPECT_TRUE(store.get("key" + std::to_string(i)).has_value());
  }
}

TEST(KvStore, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(KvStore(100).capacity(), 128u);
  EXPECT_EQ(KvStore(64).capacity(), 64u);
  EXPECT_THROW(KvStore(1), ContractViolation);
}

TEST(KvStore, ServeReturnsHitSizes) {
  KvStore store(16);
  store.set("k", "12345");
  KvRequest get{KvOp::kGet, "k", ""};
  EXPECT_EQ(store.serve(get), 5u);
  KvRequest miss{KvOp::kGet, "nope", ""};
  EXPECT_EQ(store.serve(miss), 0u);
  KvRequest set{KvOp::kSet, "k2", "vvv"};
  EXPECT_EQ(store.serve(set), 0u);
  EXPECT_EQ(store.get("k2").value(), "vvv");
  KvRequest del{KvOp::kDelete, "k", ""};
  store.serve(del);
  EXPECT_FALSE(store.get("k").has_value());
}

TEST(Fnv1a, KnownVectorsAndDispersion) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  // Nearby keys should not collide.
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.insert(fnv1a("key" + std::to_string(i)));
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(RequestGenerator, RespectsShapeParameters) {
  RequestGenerator gen(1000, 16, 32, 0.9, 42);
  int gets = 0, sets = 0, dels = 0;
  for (int i = 0; i < 10000; ++i) {
    const KvRequest req = gen.next();
    EXPECT_EQ(req.key.size(), 16u);
    switch (req.op) {
      case KvOp::kGet:
        ++gets;
        EXPECT_TRUE(req.value.empty());
        break;
      case KvOp::kSet:
        ++sets;
        EXPECT_EQ(req.value.size(), 32u);
        break;
      case KvOp::kDelete:
        ++dels;
        break;
    }
  }
  EXPECT_NEAR(gets / 10000.0, 0.9, 0.02);
  EXPECT_GT(sets, dels);  // 9:1 split of the remainder
}

TEST(RequestGenerator, DrivesStoreEndToEnd) {
  // memslap-style closed loop: the store absorbs a mixed request stream.
  KvStore store(4096);
  RequestGenerator gen(500, 12, 64, 0.8, 7);
  for (int i = 0; i < 20000; ++i) {
    store.serve(gen.next());
  }
  EXPECT_GT(store.size(), 0u);
  EXPECT_LE(store.size(), 500u);  // bounded by the key space
}

}  // namespace
}  // namespace hec
