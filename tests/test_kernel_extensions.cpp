// Tests of the kernel extensions: NPB jump-ahead + parallel EP, the
// encoder's entropy-coding stage, and Julius-style beam pruning.
#include <gtest/gtest.h>

#include <cmath>

#include "hec/util/expect.h"
#include "hec/workloads/encoder.h"
#include "hec/workloads/ep_kernel.h"
#include "hec/workloads/julius_decoder.h"

namespace hec {
namespace {

// ---------------------------------------------------------------- EP --

TEST(EpJumpAhead, SkipMatchesSequentialDraws) {
  NasRandom sequential;
  for (int i = 0; i < 1000; ++i) sequential.next();
  NasRandom jumped;
  jumped.skip(1000);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(jumped.next(), sequential.next());
  }
}

TEST(EpJumpAhead, SkipZeroIsIdentity) {
  NasRandom a, b;
  b.skip(0);
  EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(EpJumpAhead, SkipsCompose) {
  NasRandom once, twice;
  once.skip(12345);
  twice.skip(12000);
  twice.skip(345);
  EXPECT_DOUBLE_EQ(once.next(), twice.next());
}

TEST(EpParallel, MatchesSerialExactlyOnCounts) {
  const std::uint64_t pairs = 200000;
  const EpResult serial = ep_generate(pairs);
  const EpResult parallel = ep_generate_parallel(pairs);
  EXPECT_EQ(serial.pairs_accepted, parallel.pairs_accepted);
  for (std::size_t bin = 0; bin < serial.annulus_counts.size(); ++bin) {
    EXPECT_EQ(serial.annulus_counts[bin], parallel.annulus_counts[bin])
        << "bin " << bin;
  }
  // Sums may differ only by floating-point addition order.
  EXPECT_NEAR(parallel.sum_x, serial.sum_x,
              1e-9 * std::abs(serial.sum_x) + 1e-6);
  EXPECT_NEAR(parallel.sum_y, serial.sum_y,
              1e-9 * std::abs(serial.sum_y) + 1e-6);
}

TEST(EpParallel, HandlesDegenerateSizes) {
  EXPECT_EQ(ep_generate_parallel(0).pairs_accepted, 0u);
  const EpResult one = ep_generate_parallel(1);
  EXPECT_EQ(one.pairs_accepted, ep_generate(1).pairs_accepted);
}

// ----------------------------------------------------------- encoder --

TEST(Zigzag, VisitsEveryCellOnce) {
  const auto order = zigzag_order();
  bool seen[8][8] = {};
  for (const auto& [r, c] : order) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 8);
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 8);
    EXPECT_FALSE(seen[r][c]) << r << "," << c;
    seen[r][c] = true;
  }
  // The classic scan prefix: (0,0), (0,1), (1,0), (2,0), (1,1), (0,2).
  EXPECT_EQ(order[0], (std::pair{0, 0}));
  EXPECT_EQ(order[1], (std::pair{0, 1}));
  EXPECT_EQ(order[2], (std::pair{1, 0}));
  EXPECT_EQ(order[3], (std::pair{2, 0}));
  EXPECT_EQ(order[4], (std::pair{1, 1}));
  EXPECT_EQ(order[5], (std::pair{0, 2}));
  EXPECT_EQ(order[63], (std::pair{7, 7}));
}

TEST(Entropy, RoundTripsArbitraryTiles) {
  Tile8x8 tile;
  tile.v[0][0] = 120;
  tile.v[0][1] = -3;
  tile.v[3][4] = 1;
  tile.v[7][7] = -2048;
  const auto bytes = entropy_encode(tile);
  const Tile8x8 decoded = entropy_decode(bytes);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(decoded.v[r][c], tile.v[r][c]) << r << "," << c;
    }
  }
}

TEST(Entropy, EmptyTileIsOneMarker) {
  const auto bytes = entropy_encode(Tile8x8{});
  EXPECT_EQ(bytes.size(), 1u);  // just the end-of-block varint (64)
  const Tile8x8 decoded = entropy_decode(bytes);
  for (const auto& row : decoded.v) {
    for (int v : row) EXPECT_EQ(v, 0);
  }
}

TEST(Entropy, SparseTilesCompress) {
  Tile8x8 sparse;
  sparse.v[0][0] = 500;
  EXPECT_LT(entropy_encode(sparse).size(), 8u);
  Tile8x8 dense;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) dense.v[r][c] = (r + 1) * (c + 7);
  }
  EXPECT_GT(entropy_encode(dense).size(), 64u);
}

TEST(Entropy, RejectsMalformedStreams) {
  EXPECT_THROW(entropy_decode({}), std::invalid_argument);
  EXPECT_THROW(entropy_decode({0x80}), std::invalid_argument);  // cut varint
  // run=70 > end-of-block marker.
  EXPECT_THROW(entropy_decode({70}), std::invalid_argument);
  // Valid block followed by junk.
  auto bytes = entropy_encode(Tile8x8{});
  bytes.push_back(0x01);
  EXPECT_THROW(entropy_decode(bytes), std::invalid_argument);
}

TEST(Entropy, FrameStatsIncludePayloadSize) {
  Frame ref(64, 64), cur(64, 64);
  ref.fill_synthetic(0, 0);
  cur.fill_synthetic(3, 1);
  const EncodeStats stats = encode_frame(cur, ref);
  EXPECT_GT(stats.encoded_bytes, 0u);
  // A still scene encodes to bare end-of-block markers: 1 byte per tile.
  const EncodeStats still = encode_frame(ref, ref);
  EXPECT_EQ(still.encoded_bytes,
            static_cast<std::uint64_t>(still.blocks) * 4u);
}

// ------------------------------------------------------------ Julius --

TEST(Beam, WideBeamMatchesExactViterbi) {
  const Hmm hmm = make_test_hmm(8, 10, 7);
  const auto frames = make_test_frames(hmm, 300, 8);
  const DecodeResult exact = viterbi_decode(hmm, frames);
  const BeamDecodeResult wide = viterbi_decode_beam(hmm, frames, 1e9);
  EXPECT_DOUBLE_EQ(wide.result.log_likelihood, exact.log_likelihood);
  EXPECT_EQ(wide.result.state_path, exact.state_path);
  // An infinite beam only skips genuinely unreachable states (score
  // -inf in the left-to-right model's early frames) — never real work.
  EXPECT_LT(wide.pruned_evaluations, hmm.states.size() * 4);
}

TEST(Beam, NarrowBeamPrunesWork) {
  const Hmm hmm = make_test_hmm(16, 10, 17);
  const auto frames = make_test_frames(hmm, 400, 18);
  const BeamDecodeResult narrow = viterbi_decode_beam(hmm, frames, 30.0);
  EXPECT_GT(narrow.pruned_evaluations, 0u);
  // Pruning may only lose likelihood, never gain it.
  const DecodeResult exact = viterbi_decode(hmm, frames);
  EXPECT_LE(narrow.result.log_likelihood,
            exact.log_likelihood + 1e-9);
}

TEST(Beam, ReasonableBeamStaysNearExact) {
  const Hmm hmm = make_test_hmm(10, 8, 27);
  const auto frames = make_test_frames(hmm, 300, 28);
  const DecodeResult exact = viterbi_decode(hmm, frames);
  const BeamDecodeResult pruned = viterbi_decode_beam(hmm, frames, 200.0);
  // A generous beam keeps the best path intact.
  EXPECT_NEAR(pruned.result.log_likelihood, exact.log_likelihood,
              std::abs(exact.log_likelihood) * 0.01);
}

TEST(Beam, RejectsNonPositiveBeam) {
  const Hmm hmm = make_test_hmm(3, 4, 1);
  const auto frames = make_test_frames(hmm, 10, 2);
  EXPECT_THROW(viterbi_decode_beam(hmm, frames, 0.0), ContractViolation);
  EXPECT_THROW(viterbi_decode_beam(hmm, frames, -5.0), ContractViolation);
}

}  // namespace
}  // namespace hec
