#include "hec/model/matching.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

WorkloadInputs make_inputs(double inst_per_unit, double wpi) {
  WorkloadInputs in;
  in.inst_per_unit = inst_per_unit;
  in.wpi = wpi;
  in.spi_core = 0.5;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.05, 1.0, 2}};
  in.ucpu = 1.0;
  return in;
}

PowerParams make_power(std::vector<double> freqs, double idle) {
  PowerParams p;
  p.core_active_w.assign(freqs.size(), 1.0);
  p.core_stall_w.assign(freqs.size(), 0.6);
  p.freqs_ghz = std::move(freqs);
  p.mem_active_w = 0.5;
  p.io_active_w = 0.5;
  p.idle_w = idle;
  return p;
}

NodeTypeModel arm_model() {
  return NodeTypeModel(arm_cortex_a9(), make_inputs(160.0, 0.9),
                       make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4));
}

NodeTypeModel amd_model() {
  return NodeTypeModel(amd_opteron_k10(), make_inputs(120.0, 0.75),
                       make_power({0.8, 1.5, 2.1}, 45.0));
}

TEST(MatchSplit, SharesSumToTotal) {
  const NodeTypeModel a = arm_model(), b = amd_model();
  const MatchedSplit split =
      match_split(a, {4, 4, 1.4}, b, {2, 6, 2.1}, 1e6);
  EXPECT_NEAR(split.units_a + split.units_b, 1e6, 1e-6);
  EXPECT_GT(split.units_a, 0.0);
  EXPECT_GT(split.units_b, 0.0);
}

TEST(MatchSplit, BothSidesFinishTogether) {
  // Eq. 1: T_ARM == T_AMD under the matched split.
  const NodeTypeModel a = arm_model(), b = amd_model();
  const NodeConfig ca{4, 4, 1.4}, cb{2, 6, 2.1};
  const MatchedSplit split = match_split(a, ca, b, cb, 1e6);
  const double t_a = a.predict(split.units_a, ca).t_s;
  const double t_b = b.predict(split.units_b, cb).t_s;
  EXPECT_NEAR(t_a, t_b, 1e-9 * std::max(t_a, t_b));
  EXPECT_NEAR(split.t_s, t_a, 1e-9 * t_a);
}

TEST(MatchSplit, FasterSideGetsMoreWork) {
  const NodeTypeModel a = arm_model(), b = amd_model();
  // 2 AMD nodes at full tilt out-rate 1 ARM node at minimum frequency.
  const MatchedSplit split =
      match_split(a, {1, 1, 0.2}, b, {2, 6, 2.1}, 1e6);
  EXPECT_GT(split.units_b, split.units_a * 10.0);
}

TEST(MatchSplit, AgreesWithBisection) {
  const NodeTypeModel a = arm_model(), b = amd_model();
  const NodeConfig ca{7, 3, 0.8}, cb{3, 4, 1.5};
  const MatchedSplit closed = match_split(a, ca, b, cb, 5e5);
  const MatchedSplit bisect = match_split_bisect(a, ca, b, cb, 5e5);
  EXPECT_NEAR(closed.units_a, bisect.units_a, 5e5 * 1e-6);
  EXPECT_NEAR(closed.t_s, bisect.t_s, closed.t_s * 1e-6);
}

TEST(MatchSplit, ScalesLinearlyWithWork) {
  const NodeTypeModel a = arm_model(), b = amd_model();
  const NodeConfig ca{4, 4, 1.4}, cb{2, 6, 2.1};
  const MatchedSplit small = match_split(a, ca, b, cb, 1e5);
  const MatchedSplit large = match_split(a, ca, b, cb, 1e6);
  EXPECT_NEAR(large.units_a, 10.0 * small.units_a, 1e-3);
  EXPECT_NEAR(large.t_s, 10.0 * small.t_s, large.t_s * 1e-9);
}

TEST(MatchSplit, RejectsNonPositiveWork) {
  const NodeTypeModel a = arm_model(), b = amd_model();
  EXPECT_THROW(match_split(a, {1, 1, 0.2}, b, {1, 1, 0.8}, 0.0),
               ContractViolation);
}

TEST(PredictMixed, CombinesEnergiesPerEq12) {
  const NodeTypeModel a = arm_model(), b = amd_model();
  const NodeConfig ca{4, 4, 1.4}, cb{2, 6, 2.1};
  const MixedPrediction mixed = predict_mixed(a, ca, b, cb, 1e6);
  EXPECT_NEAR(mixed.energy_j,
              mixed.a.energy_j() + mixed.b.energy_j(), 1e-9);
  EXPECT_NEAR(mixed.t_s, mixed.a.t_s, mixed.t_s * 1e-9);
  EXPECT_NEAR(mixed.t_s, mixed.b.t_s, mixed.t_s * 1e-9);
}

TEST(PredictMixed, MatchingBeatsNaiveSplitOnEnergyTime) {
  // The matched split minimises completion time among all splits for the
  // same configuration: any other split makes one side slower.
  const NodeTypeModel a = arm_model(), b = amd_model();
  const NodeConfig ca{4, 4, 1.4}, cb{2, 6, 2.1};
  const double w = 1e6;
  const MixedPrediction matched = predict_mixed(a, ca, b, cb, w);
  for (double frac : {0.1, 0.3, 0.7, 0.9}) {
    const double t_a = a.predict(w * frac, ca).t_s;
    const double t_b = b.predict(w * (1.0 - frac), cb).t_s;
    EXPECT_GE(std::max(t_a, t_b), matched.t_s * (1.0 - 1e-9));
  }
}

}  // namespace
}  // namespace hec
