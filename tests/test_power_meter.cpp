#include "hec/sim/power_meter.h"

#include <gtest/gtest.h>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(PowerMeter, IdleFloorIntegratesOverTime) {
  PowerMeter meter(10.0, 2);
  const EnergyBreakdown e = meter.finish(5.0);
  EXPECT_DOUBLE_EQ(e.idle_j, 50.0);
  EXPECT_DOUBLE_EQ(e.core_j, 0.0);
  EXPECT_DOUBLE_EQ(e.total_j(), 50.0);
}

TEST(PowerMeter, CoreIncrementWindows) {
  PowerMeter meter(0.0, 2);
  meter.set_core_power(0, 3.0, 1.0);   // core 0 on at t=1
  meter.set_core_power(0, 0.0, 4.0);   // off at t=4
  const EnergyBreakdown e = meter.finish(10.0);
  EXPECT_DOUBLE_EQ(e.core_j, 9.0);  // 3 W x 3 s
}

TEST(PowerMeter, MultipleCoresSum) {
  PowerMeter meter(0.0, 3);
  meter.set_core_power(0, 1.0, 0.0);
  meter.set_core_power(1, 2.0, 0.0);
  meter.set_core_power(2, 4.0, 0.0);
  const EnergyBreakdown e = meter.finish(2.0);
  EXPECT_DOUBLE_EQ(e.core_j, 14.0);
}

TEST(PowerMeter, MemAndIoChannels) {
  PowerMeter meter(1.0, 1);
  meter.set_mem_power(0.5, 0.0);
  meter.set_io_power(0.25, 2.0);
  const EnergyBreakdown e = meter.finish(4.0);
  EXPECT_DOUBLE_EQ(e.idle_j, 4.0);
  EXPECT_DOUBLE_EQ(e.mem_j, 2.0);   // 0.5 W x 4 s
  EXPECT_DOUBLE_EQ(e.io_j, 0.5);    // 0.25 W x 2 s
}

TEST(PowerMeter, CurrentPowerReflectsChannels) {
  PowerMeter meter(2.0, 2);
  EXPECT_DOUBLE_EQ(meter.current_power_w(), 2.0);
  meter.set_core_power(1, 1.5, 0.0);
  meter.set_mem_power(0.5, 0.0);
  EXPECT_DOUBLE_EQ(meter.current_power_w(), 4.0);
}

TEST(PowerMeter, TimeMustNotGoBackwards) {
  PowerMeter meter(1.0, 1);
  meter.set_core_power(0, 1.0, 5.0);
  EXPECT_THROW(meter.set_core_power(0, 0.0, 4.0), ContractViolation);
}

TEST(PowerMeter, RejectsInvalidChannelAndNegativePower) {
  PowerMeter meter(1.0, 2);
  EXPECT_THROW(meter.set_core_power(2, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(meter.set_core_power(-1, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(meter.set_core_power(0, -1.0, 0.0), ContractViolation);
  EXPECT_THROW(meter.set_mem_power(-0.1, 0.0), ContractViolation);
}

TEST(EnergyBreakdown, AccumulatesComponentwise) {
  EnergyBreakdown a{1.0, 2.0, 3.0, 4.0};
  const EnergyBreakdown b{10.0, 20.0, 30.0, 40.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.core_j, 11.0);
  EXPECT_DOUBLE_EQ(a.mem_j, 22.0);
  EXPECT_DOUBLE_EQ(a.io_j, 33.0);
  EXPECT_DOUBLE_EQ(a.idle_j, 44.0);
  EXPECT_DOUBLE_EQ(a.total_j(), 110.0);
}

TEST(PowerMeter, FinishIsIdempotentOnTime) {
  PowerMeter meter(2.0, 1);
  const EnergyBreakdown first = meter.finish(3.0);
  const EnergyBreakdown again = meter.finish(3.0);  // no extra time
  EXPECT_DOUBLE_EQ(first.total_j(), again.total_j());
}

}  // namespace
}  // namespace hec
