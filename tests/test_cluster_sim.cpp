#include "hec/cluster/cluster_sim.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

ClusterRunOptions quiet() {
  ClusterRunOptions opts;
  opts.noise_sigma = 0.0;
  opts.run_bias_sigma = 0.0;
  return opts;
}

TEST(ClusterSim, HomogeneousArmRun) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const Workload ep = workload_ep();
  ClusterConfig cfg{NodeConfig{4, 4, 1.4}, NodeConfig{0, 1, 0.8}};
  const ClusterRunResult r =
      simulate_cluster(arm, amd, ep, cfg, 100000.0, 0.0, quiet());
  EXPECT_GT(r.t_s, 0.0);
  EXPECT_DOUBLE_EQ(r.t_amd_s, 0.0);
  EXPECT_DOUBLE_EQ(r.energy_amd_j, 0.0);
  EXPECT_GT(r.energy_arm_j, 0.0);
  EXPECT_DOUBLE_EQ(r.energy_j, r.energy_arm_j);
}

TEST(ClusterSim, WorkSplitsEvenlyAcrossNodesOfAType) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const Workload ep = workload_ep();
  // Noiseless: n nodes each with W/n finish exactly when 1 node with W/n.
  ClusterConfig one{NodeConfig{1, 4, 1.4}, NodeConfig{0, 1, 0.8}};
  ClusterConfig four{NodeConfig{4, 4, 1.4}, NodeConfig{0, 1, 0.8}};
  const ClusterRunResult r1 =
      simulate_cluster(arm, amd, ep, one, 25000.0, 0.0, quiet());
  const ClusterRunResult r4 =
      simulate_cluster(arm, amd, ep, four, 100000.0, 0.0, quiet());
  EXPECT_NEAR(r4.t_s, r1.t_s, r1.t_s * 1e-9);
  EXPECT_NEAR(r4.energy_j, 4.0 * r1.energy_j, r4.energy_j * 1e-9);
}

TEST(ClusterSim, MatchedSplitLeavesNoIdleTail) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const Workload ep = workload_ep();
  ClusterConfig cfg{NodeConfig{8, 4, 1.4}, NodeConfig{1, 6, 2.1}};
  // Compute a near-matched split by rate (noiseless -> exact rates).
  const double w = 1e6;
  ClusterRunResult probe_arm =
      simulate_cluster(arm, amd, ep, cfg, w, 1.0, quiet());
  // Rates from the probe: units/s per side.
  const double rate_arm = w / probe_arm.t_arm_s;
  const double rate_amd = 1.0 / probe_arm.t_amd_s;
  const double w_arm = w * rate_arm / (rate_arm + rate_amd);
  const ClusterRunResult matched =
      simulate_cluster(arm, amd, ep, cfg, w_arm, w - w_arm, quiet());
  // Matched completion: both sides within 1%; idle tail a sliver.
  EXPECT_NEAR(matched.t_arm_s, matched.t_amd_s, matched.t_s * 0.01);
  EXPECT_LT(matched.idle_tail_j, matched.energy_j * 0.02);
}

TEST(ClusterSim, UnmatchedSplitWastesIdleEnergy) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const Workload ep = workload_ep();
  ClusterConfig cfg{NodeConfig{8, 4, 1.4}, NodeConfig{1, 6, 2.1}};
  // Give the slow side almost everything: the AMD node idles.
  const ClusterRunResult skewed =
      simulate_cluster(arm, amd, ep, cfg, 0.95e6, 0.05e6, quiet());
  EXPECT_GT(skewed.idle_tail_j, 0.0);
  EXPECT_GT(skewed.t_arm_s, skewed.t_amd_s);
}

TEST(ClusterSim, DeterministicPerSeed) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const Workload ep = workload_ep();
  ClusterConfig cfg{NodeConfig{2, 4, 1.4}, NodeConfig{1, 6, 2.1}};
  ClusterRunOptions opts;  // default noise on
  const ClusterRunResult a =
      simulate_cluster(arm, amd, ep, cfg, 5e5, 5e5, opts);
  const ClusterRunResult b =
      simulate_cluster(arm, amd, ep, cfg, 5e5, 5e5, opts);
  EXPECT_DOUBLE_EQ(a.t_s, b.t_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  opts.seed = 99;
  const ClusterRunResult c =
      simulate_cluster(arm, amd, ep, cfg, 5e5, 5e5, opts);
  EXPECT_NE(a.t_s, c.t_s);
}

TEST(ClusterSim, RejectsInconsistentAssignments) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const Workload ep = workload_ep();
  ClusterConfig arm_only{NodeConfig{2, 4, 1.4}, NodeConfig{0, 1, 0.8}};
  // Units assigned to a side with no nodes.
  EXPECT_THROW(
      simulate_cluster(arm, amd, ep, arm_only, 1e5, 1e5, quiet()),
      ContractViolation);
  EXPECT_THROW(simulate_cluster(arm, amd, ep, arm_only, 0.0, 0.0, quiet()),
               ContractViolation);
}

}  // namespace
}  // namespace hec
