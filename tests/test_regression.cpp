#include "hec/stats/regression.h"

#include <gtest/gtest.h>

#include <vector>

#include "hec/util/expect.h"
#include "hec/util/rng.h"

namespace hec {
namespace {

TEST(FitLine, RecoversExactLine) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0};  // y = 1 + 2x
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 4u);
}

TEST(FitLine, AtEvaluatesTheLine) {
  const std::vector<double> xs{0.0, 2.0};
  const std::vector<double> ys{4.0, 8.0};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.at(1.0), 6.0, 1e-12);
  EXPECT_NEAR(fit.at(10.0), 24.0, 1e-12);
}

TEST(FitLine, FlatDataIsPerfectFit) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(FitLine, NoisyLineHasHighButImperfectR2) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(3.0 + 1.5 * x + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 0.05);
  EXPECT_NEAR(fit.intercept, 3.0, 0.3);
  EXPECT_GT(fit.r_squared, 0.95);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(FitLine, RejectsDegenerateInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(fit_line(one, one), ContractViolation);
  const std::vector<double> xs{2.0, 2.0};
  const std::vector<double> ys{1.0, 3.0};
  EXPECT_THROW(fit_line(xs, ys), ContractViolation);  // zero x variance
  const std::vector<double> mismatched{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_line(mismatched, ys), ContractViolation);
}

TEST(Pearson, PerfectCorrelationIsOne) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelationIsMinusOne) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{9.0, 6.0, 3.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceReturnsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Pearson, MatchesR2OfFit) {
  Rng rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(2.0 * i + rng.normal(0.0, 10.0));
  }
  const double r = pearson(xs, ys);
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(r * r, fit.r_squared, 1e-12);
}

}  // namespace
}  // namespace hec
