// Compile-time no-op contract of the HEC_OBS_DISABLE macro layer.
//
// This TU is compiled with HEC_OBS_DISABLE defined (a target-local
// definition in tests/CMakeLists.txt — the hec::obs library itself is
// unchanged), so every instrumentation macro must expand to nothing:
// no registry entries, no recorded spans, and — critically — argument
// expressions must NOT be evaluated, so instrumentation can never carry
// side effects that a disabled build would silently drop.
#include <gtest/gtest.h>

#include <sstream>

#include "hec/obs/export.h"
#include "hec/obs/obs.h"

#ifndef HEC_OBS_DISABLE
#error "this test must be compiled with HEC_OBS_DISABLE"
#endif

namespace {

TEST(ObsDisabled, MacrosLeaveRegistryEmpty) {
  ASSERT_TRUE(hec::obs::registry().empty());
  HEC_COUNTER_INC("disabled.counter");
  HEC_COUNTER_ADD("disabled.counter", 5.0);
  HEC_GAUGE_SET("disabled.gauge", 1.0);
  HEC_HISTOGRAM_OBSERVE("disabled.hist", 2.0);
  { HEC_SCOPED_TIMER("disabled.timer"); }
  EXPECT_TRUE(hec::obs::registry().empty());
}

TEST(ObsDisabled, SpanMacrosRecordNothing) {
  {
    HEC_SPAN("disabled.outer");
    HEC_SPAN_NAMED(span, "disabled.named");
    span.sim_window(0.0, 1.0);  // NoopSpan keeps the interface
  }
  EXPECT_TRUE(hec::obs::tracer().snapshot().empty());
  EXPECT_EQ(hec::obs::tracer().open_spans(), 0);
}

TEST(ObsDisabled, ArgumentExpressionsAreNotEvaluated) {
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return 1.0;
  };
  HEC_COUNTER_ADD("disabled.side_effect", count());
  HEC_GAUGE_SET("disabled.side_effect", count());
  HEC_HISTOGRAM_OBSERVE("disabled.side_effect", count());
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsDisabled, ExportersStillLinkAndWriteEmptyDocuments) {
  // The library API stays available in a disabled build; only the macro
  // layer is compiled out. A trace written now is valid and empty.
  std::ostringstream trace;
  hec::obs::write_chrome_trace(trace, hec::obs::tracer(),
                               &hec::obs::registry());
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);

  std::ostringstream prom;
  hec::obs::write_prometheus(prom, hec::obs::registry());
  EXPECT_TRUE(prom.str().empty());
}

}  // namespace
