#include "hec/config/budget.h"

#include <gtest/gtest.h>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(Budget, SubstitutionRatioIsEightForPaperPair) {
  // Footnote 5: (60 W - 20 W switch) / 5 W = 8 ARM per AMD.
  EXPECT_EQ(substitution_ratio(arm_cortex_a9(), amd_opteron_k10()), 8);
}

TEST(Budget, SubstitutionSeriesMatchesFigures6And7) {
  const auto mixes = substitution_series(16, 8);
  ASSERT_EQ(mixes.size(), 17u);
  // The figures' named mixes all appear with nARM = 8 * (16 - nAMD).
  auto expect_mix = [&](int arm, int amd) {
    const auto& m = mixes[static_cast<std::size_t>(16 - amd)];
    EXPECT_EQ(m.arm_nodes, arm);
    EXPECT_EQ(m.amd_nodes, amd);
  };
  expect_mix(0, 16);
  expect_mix(16, 14);
  expect_mix(32, 12);
  expect_mix(48, 10);
  expect_mix(88, 5);
  expect_mix(112, 2);
  expect_mix(128, 0);
}

TEST(Budget, AllSeriesMixesFitThe1kWBudget) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  for (const MixPlan& mix : substitution_series(16, 8)) {
    EXPECT_TRUE(within_budget(arm, amd, mix, 1000.0))
        << "ARM " << mix.arm_nodes << ":AMD " << mix.amd_nodes << " draws "
        << mix_peak_power_w(arm, amd, mix);
  }
}

TEST(Budget, PeakPowerComposition) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  // AMD-only: no switch charged.
  const double amd_only = mix_peak_power_w(arm, amd, MixPlan{0, 16});
  EXPECT_NEAR(amd_only, 16.0 * amd.peak_node_w(), 1e-9);
  // ARM-only: nodes plus ceil(128/24) = 6 switches.
  const double arm_only = mix_peak_power_w(arm, amd, MixPlan{128, 0});
  EXPECT_NEAR(arm_only, 128.0 * arm.peak_node_w() + 6.0 * 20.0, 1e-9);
  EXPECT_LT(arm_only, amd_only);  // the low-power side is cheaper
}

TEST(Budget, SubstitutionPreservesOrIncreasesHeadroom) {
  // Replacing AMD with ratio ARM nodes never increases peak power.
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const auto mixes = substitution_series(16, 8);
  const double baseline = mix_peak_power_w(arm, amd, mixes.front());
  for (const auto& mix : mixes) {
    EXPECT_LE(mix_peak_power_w(arm, amd, mix), baseline + 1e-9);
  }
}

TEST(Budget, RatioZeroWhenSwitchDominates) {
  NodeSpec arm = arm_cortex_a9();
  NodeSpec amd = amd_opteron_k10();
  const SwitchSpec heavy{100.0, 24};  // switch alone exceeds AMD peak
  EXPECT_EQ(substitution_ratio(arm, amd, heavy), 0);
}

TEST(Budget, ConfigPeakPowerAtOperatingPoint) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  // Full-tilt configuration approaches the mix peak.
  ClusterConfig full{NodeConfig{16, arm.cores, arm.pstates.max_ghz()},
                     NodeConfig{2, amd.cores, amd.pstates.max_ghz()}};
  const double full_w = config_peak_power_w(arm, amd, full);
  const double mix_w = mix_peak_power_w(arm, amd, MixPlan{16, 2});
  EXPECT_LE(full_w, mix_w + 1e-9);
  EXPECT_GT(full_w, 0.9 * mix_w);
  // Throttled configuration draws much less.
  ClusterConfig throttled{NodeConfig{16, 1, arm.pstates.min_ghz()},
                          NodeConfig{2, 1, amd.pstates.min_ghz()}};
  EXPECT_LT(config_peak_power_w(arm, amd, throttled), 0.8 * full_w);
  // Homogeneous sides only count what they use.
  ClusterConfig amd_only{NodeConfig{0, 1, arm.pstates.min_ghz()},
                         NodeConfig{2, amd.cores, amd.pstates.max_ghz()}};
  const double amd_only_w = config_peak_power_w(arm, amd, amd_only);
  EXPECT_LT(amd_only_w, full_w);
  EXPECT_GT(amd_only_w, 2.0 * amd.idle_node_w());
}

TEST(Budget, RejectsNegativeCounts) {
  EXPECT_THROW(mix_peak_power_w(arm_cortex_a9(), amd_opteron_k10(),
                                MixPlan{-1, 2}),
               ContractViolation);
  EXPECT_THROW(substitution_series(0, 8), ContractViolation);
  EXPECT_THROW(substitution_series(16, 0), ContractViolation);
}

}  // namespace
}  // namespace hec
