#include "hec/workloads/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace hec {
namespace {

TEST(Registry, HasAllSixPaperWorkloads) {
  const auto workloads = all_workloads();
  ASSERT_EQ(workloads.size(), 6u);
  std::set<std::string> names;
  for (const auto& w : workloads) names.insert(w.name);
  for (const char* expected : {"EP", "memcached", "x264", "blackscholes",
                               "Julius", "RSA-2048"}) {
    EXPECT_TRUE(names.contains(expected)) << expected;
  }
}

TEST(Registry, Table3BottleneckClasses) {
  EXPECT_EQ(workload_ep().bottleneck, Bottleneck::kCpu);
  EXPECT_EQ(workload_memcached().bottleneck, Bottleneck::kIo);
  EXPECT_EQ(workload_x264().bottleneck, Bottleneck::kMemory);
  EXPECT_EQ(workload_blackscholes().bottleneck, Bottleneck::kCpu);
  EXPECT_EQ(workload_julius().bottleneck, Bottleneck::kCpu);
  EXPECT_EQ(workload_rsa2048().bottleneck, Bottleneck::kCpu);
}

TEST(Registry, Table3ProblemSizes) {
  EXPECT_DOUBLE_EQ(workload_ep().validation_units, 2147483648.0);
  EXPECT_DOUBLE_EQ(workload_memcached().validation_units, 600000.0);
  EXPECT_DOUBLE_EQ(workload_x264().validation_units, 600.0);
  EXPECT_DOUBLE_EQ(workload_blackscholes().validation_units, 500000.0);
  EXPECT_DOUBLE_EQ(workload_julius().validation_units, 2310559.0);
  EXPECT_DOUBLE_EQ(workload_rsa2048().validation_units, 5000.0);
}

TEST(Registry, AnalysisJobSizesMatchSectionIVB) {
  EXPECT_DOUBLE_EQ(workload_ep().analysis_units, 50e6);
  EXPECT_DOUBLE_EQ(workload_memcached().analysis_units, 50000.0);
}

TEST(Registry, DemandsArePerIsa) {
  for (const auto& w : all_workloads()) {
    EXPECT_GT(w.demand_arm.instructions_per_unit, 0.0) << w.name;
    EXPECT_GT(w.demand_amd.instructions_per_unit, 0.0) << w.name;
    EXPECT_GT(w.demand_arm.wpi, 0.0) << w.name;
    EXPECT_GT(w.demand_amd.wpi, 0.0) << w.name;
    EXPECT_EQ(&w.demand_for(Isa::kArmV7a), &w.demand_arm) << w.name;
    EXPECT_EQ(&w.demand_for(Isa::kX86_64), &w.demand_amd) << w.name;
  }
}

TEST(Registry, IsaInstructionRatiosReflectAccelerators) {
  // ARMv7 RISC generally needs more instructions than x86-64...
  for (const auto& w : all_workloads()) {
    EXPECT_GE(w.demand_arm.instructions_per_unit,
              w.demand_amd.instructions_per_unit)
        << w.name;
  }
  // ...with the crypto gap largest (AMD's wide multipliers, Table 5).
  const Workload rsa = workload_rsa2048();
  EXPECT_GT(rsa.demand_arm.instructions_per_unit /
                rsa.demand_amd.instructions_per_unit,
            3.0);
}

TEST(Registry, MemcachedIsTheOnlyNetworkWorkload) {
  for (const auto& w : all_workloads()) {
    if (w.name == "memcached") {
      EXPECT_GT(w.demand_arm.io_bytes_per_unit, 0.0);
      EXPECT_GT(w.demand_amd.io_bytes_per_unit, 0.0);
      EXPECT_GT(w.demand_arm.io_interarrival_s, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(w.demand_arm.io_bytes_per_unit, 0.0) << w.name;
    }
  }
}

TEST(Registry, X264IsMissHeaviest) {
  // Memory-bound per Table 3: x264's miss rate dominates all others, and
  // the L3-less ARM side misses far more than AMD.
  const Workload x264 = workload_x264();
  for (const auto& w : all_workloads()) {
    if (w.name == "x264") continue;
    EXPECT_GT(x264.demand_arm.mem_misses_per_kinst,
              w.demand_arm.mem_misses_per_kinst)
        << w.name;
  }
  EXPECT_GT(x264.demand_arm.mem_misses_per_kinst,
            2.0 * x264.demand_amd.mem_misses_per_kinst);
}

TEST(Registry, WpiBandsMatchFig2) {
  // Fig. 2: AMD WPI ~0.75, ARM WPI ~0.9 (both in [0.5, 1.0]).
  for (const auto& w : all_workloads()) {
    EXPECT_GE(w.demand_arm.wpi, 0.5) << w.name;
    EXPECT_LE(w.demand_arm.wpi, 1.0) << w.name;
    EXPECT_GE(w.demand_amd.wpi, 0.5) << w.name;
    EXPECT_LE(w.demand_amd.wpi, 1.0) << w.name;
    EXPECT_GE(w.demand_arm.wpi, w.demand_amd.wpi) << w.name;
  }
}

TEST(Registry, FindByNameAndUnknown) {
  EXPECT_EQ(find_workload("EP").name, "EP");
  EXPECT_EQ(find_workload("RSA-2048").domain, "Web security");
  EXPECT_THROW(find_workload("nginx"), std::out_of_range);
}

TEST(Registry, BottleneckToString) {
  EXPECT_EQ(to_string(Bottleneck::kCpu), "CPU");
  EXPECT_EQ(to_string(Bottleneck::kMemory), "Memory");
  EXPECT_EQ(to_string(Bottleneck::kIo), "I/O");
}

}  // namespace
}  // namespace hec
