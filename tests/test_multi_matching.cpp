#include "hec/model/multi_matching.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/model/matching.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

WorkloadInputs make_inputs(double inst_per_unit) {
  WorkloadInputs in;
  in.inst_per_unit = inst_per_unit;
  in.wpi = 0.8;
  in.spi_core = 0.5;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.05, 1.0, 2}};
  in.ucpu = 1.0;
  return in;
}

PowerParams make_power(std::vector<double> freqs, double idle) {
  PowerParams p;
  p.core_active_w.assign(freqs.size(), 1.0);
  p.core_stall_w.assign(freqs.size(), 0.6);
  p.freqs_ghz = std::move(freqs);
  p.mem_active_w = 0.5;
  p.io_active_w = 0.5;
  p.idle_w = idle;
  return p;
}

struct ThreeModels {
  NodeTypeModel a9{arm_cortex_a9(), make_inputs(160.0),
                   make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4)};
  NodeTypeModel a15{arm_cortex_a15(), make_inputs(150.0),
                    make_power({0.6, 1.0, 1.4, 1.8}, 2.0)};
  NodeTypeModel k10{amd_opteron_k10(), make_inputs(120.0),
                    make_power({0.8, 1.5, 2.1}, 45.0)};
};

TEST(MultiMatch, SharesSumToTotal) {
  const ThreeModels m;
  const std::vector<TypedDeployment> deps{
      {&m.a9, NodeConfig{4, 4, 1.4}},
      {&m.a15, NodeConfig{2, 4, 1.8}},
      {&m.k10, NodeConfig{1, 6, 2.1}}};
  const auto shares = match_split_multi(deps, 1e6);
  ASSERT_EQ(shares.size(), 3u);
  double total = 0.0;
  for (double s : shares) {
    EXPECT_GT(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1e6, 1e-6);
}

TEST(MultiMatch, AllDeploymentsFinishTogether) {
  const ThreeModels m;
  const std::vector<TypedDeployment> deps{
      {&m.a9, NodeConfig{4, 4, 1.4}},
      {&m.a15, NodeConfig{2, 4, 1.8}},
      {&m.k10, NodeConfig{1, 6, 2.1}}};
  const MultiPrediction pred = predict_multi(deps, 1e6);
  ASSERT_EQ(pred.parts.size(), 3u);
  for (const Prediction& p : pred.parts) {
    EXPECT_NEAR(p.t_s, pred.t_s, pred.t_s * 1e-9);
  }
}

TEST(MultiMatch, TwoTypesReduceToPairwiseMatching) {
  const ThreeModels m;
  const NodeConfig ca{4, 4, 1.4}, cb{2, 6, 2.1};
  const std::vector<TypedDeployment> deps{{&m.a9, ca}, {&m.k10, cb}};
  const auto shares = match_split_multi(deps, 5e5);
  const MatchedSplit pairwise = match_split(m.a9, ca, m.k10, cb, 5e5);
  EXPECT_NEAR(shares[0], pairwise.units_a, 1e-6);
  EXPECT_NEAR(shares[1], pairwise.units_b, 1e-6);
}

TEST(MultiMatch, SingleTypeGetsEverything) {
  const ThreeModels m;
  const std::vector<TypedDeployment> deps{{&m.k10, NodeConfig{2, 6, 2.1}}};
  const auto shares = match_split_multi(deps, 1000.0);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_DOUBLE_EQ(shares[0], 1000.0);
}

TEST(MultiMatch, EnergyIsSumOfParts) {
  const ThreeModels m;
  const std::vector<TypedDeployment> deps{
      {&m.a9, NodeConfig{4, 4, 1.4}}, {&m.a15, NodeConfig{2, 4, 1.8}}};
  const MultiPrediction pred = predict_multi(deps, 1e5);
  EXPECT_NEAR(pred.energy_j,
              pred.parts[0].energy_j() + pred.parts[1].energy_j(), 1e-9);
}

TEST(MultiMatch, FasterTierCarriesMoreWork) {
  const ThreeModels m;
  const std::vector<TypedDeployment> deps{
      {&m.a9, NodeConfig{1, 1, 0.2}},   // slowest tier
      {&m.a15, NodeConfig{1, 4, 1.8}},  // middle tier
      {&m.k10, NodeConfig{4, 6, 2.1}}};  // fastest tier
  const auto shares = match_split_multi(deps, 1e6);
  EXPECT_LT(shares[0], shares[1]);
  EXPECT_LT(shares[1], shares[2]);
}

TEST(MultiMatch, RejectsInvalidInput) {
  const ThreeModels m;
  EXPECT_THROW(match_split_multi(std::vector<TypedDeployment>{}, 1.0),
               ContractViolation);
  const std::vector<TypedDeployment> deps{{&m.a9, NodeConfig{1, 1, 0.2}}};
  EXPECT_THROW(match_split_multi(deps, 0.0), ContractViolation);
  const std::vector<TypedDeployment> null_model{
      {nullptr, NodeConfig{1, 1, 0.2}}};
  EXPECT_THROW(match_split_multi(null_model, 1.0), ContractViolation);
}

}  // namespace
}  // namespace hec
