// hec::obs unit tests: histogram bin boundaries, counter exactness under
// the thread pool, span nesting and unbalanced-scope detection, and
// golden-file validation of the three exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hec/obs/export.h"
#include "hec/obs/obs.h"
#include "hec/parallel/thread_pool.h"

namespace {

using hec::obs::Counter;
using hec::obs::Gauge;
using hec::obs::Histogram;
using hec::obs::MetricsRegistry;
using hec::obs::SpanEvent;
using hec::obs::Tracer;

// ---------------------------------------------------------------- counters

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
  Counter c("test");
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.reset();
  EXPECT_EQ(c.value(), 0.0);
}

TEST(ObsCounter, ConcurrentIncrementsFromThreadPoolAreExact) {
  Counter c("concurrent");
  constexpr std::size_t kIncrements = 100000;
  hec::parallel_for(0, kIncrements, [&](std::size_t) { c.inc(); });
  EXPECT_DOUBLE_EQ(c.value(), static_cast<double>(kIncrements));
}

TEST(ObsCounter, ConcurrentIncrementsFromRawThreadsAreExact) {
  Counter c("raw");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(c.value(), static_cast<double>(kThreads * kPerThread));
}

TEST(ObsCounter, RuntimeDisableDropsWrites) {
  Counter c("gated");
  hec::obs::set_enabled(false);
  c.inc();
  hec::obs::set_enabled(true);
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  EXPECT_EQ(c.value(), 1.0);
}

// ------------------------------------------------------------------ gauges

TEST(ObsGauge, LastWriteWins) {
  Gauge g("depth");
  g.set(4.0);
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

// -------------------------------------------------------------- histograms

TEST(ObsHistogram, BinBoundariesArePowersOfTwo) {
  // Bin i covers [2^(kMinExp2 + i), 2^(kMinExp2 + i + 1)).
  for (std::size_t i = 0; i < Histogram::kBins; ++i) {
    const double lower = std::ldexp(1.0, Histogram::kMinExp2 +
                                             static_cast<int>(i));
    const double upper = Histogram::bin_upper_bound(i);
    EXPECT_DOUBLE_EQ(upper, 2.0 * lower);
    EXPECT_EQ(Histogram::bin_index(lower), i) << "lower edge of bin " << i;
    // Just below the upper edge stays in the bin; the edge itself
    // belongs to the next bin (half-open intervals).
    EXPECT_EQ(Histogram::bin_index(std::nextafter(upper, 0.0)), i);
    if (i + 1 < Histogram::kBins) {
      EXPECT_EQ(Histogram::bin_index(upper), i + 1);
    }
  }
}

TEST(ObsHistogram, UnderflowAndOverflowClampToEdgeBins) {
  EXPECT_EQ(Histogram::bin_index(0.0), 0u);
  EXPECT_EQ(Histogram::bin_index(-1.0), 0u);
  EXPECT_EQ(Histogram::bin_index(std::nan("")), 0u);
  EXPECT_EQ(Histogram::bin_index(1e-300), 0u);
  EXPECT_EQ(Histogram::bin_index(1e300), Histogram::kBins - 1);
}

TEST(ObsHistogram, ObserveCountsSumAndBins) {
  Histogram h("t");
  h.observe(1.5);   // [1, 2)
  h.observe(1.75);  // [1, 2)
  h.observe(3.0);   // [2, 4)
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.25);
  EXPECT_EQ(h.bin_count(Histogram::bin_index(1.5)), 2u);
  EXPECT_EQ(h.bin_count(Histogram::bin_index(3.0)), 1u);
}

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, FindOrCreateReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  const auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "x");
  EXPECT_DOUBLE_EQ(counters[0].second, 1.0);
}

TEST(ObsRegistry, SnapshotsAreSortedByName) {
  MetricsRegistry reg;
  reg.counter("b.two");
  reg.counter("a.one");
  reg.counter("c.three");
  const auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "a.one");
  EXPECT_EQ(counters[1].first, "b.two");
  EXPECT_EQ(counters[2].first, "c.three");
}

TEST(ObsRegistry, SnapshotBundlesAllMetricFamilies) {
  MetricsRegistry r;
  r.counter("sim.events").add(2.0);
  r.gauge("queue.depth").set(5.0);
  r.histogram("eval.wall_s").observe(3.0);
  const MetricsRegistry::Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "sim.events");
  EXPECT_DOUBLE_EQ(snap.counters[0].second, 2.0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 5.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 3.0);
}

TEST(ObsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("n");
  c.add(5.0);
  reg.gauge("g").set(2.0);
  reg.histogram("h").observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0.0);
  EXPECT_EQ(reg.gauges()[0].second, 0.0);
  EXPECT_EQ(reg.histograms()[0].count, 0u);
  EXPECT_FALSE(reg.empty());
}

// ------------------------------------------------------------------- spans

TEST(ObsTracer, NestedSpansRecordDepths) {
  Tracer t;
  {
    const auto d0 = t.begin_span();
    EXPECT_EQ(d0, 0u);
    {
      const auto d1 = t.begin_span();
      EXPECT_EQ(d1, 1u);
      SpanEvent inner;
      inner.name = "inner";
      inner.depth = d1;
      t.end_span(inner);
    }
    SpanEvent outer;
    outer.name = "outer";
    outer.depth = d0;
    t.end_span(outer);
  }
  EXPECT_EQ(t.open_spans(), 0);
  EXPECT_EQ(t.unbalanced(), 0u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
}

TEST(ObsTracer, UnbalancedCloseIsDetected) {
  Tracer t;
  SpanEvent ev;
  ev.name = "stray";
  t.end_span(ev);  // close without open
  EXPECT_EQ(t.unbalanced(), 1u);
  EXPECT_EQ(t.open_spans(), 0);  // clamped, not negative
}

TEST(ObsTracer, OpenSpansReportsUnclosedScopes) {
  Tracer t;
  t.begin_span();
  t.begin_span();
  EXPECT_EQ(t.open_spans(), 2);
}

TEST(ObsTracer, RingWrapsAndCountsDropped) {
  Tracer t;
  SpanEvent ev;
  ev.name = "x";
  for (std::size_t i = 0; i < Tracer::kRingCapacity + 10; ++i) {
    ev.start_us = static_cast<double>(i);
    t.record(ev);
  }
  EXPECT_EQ(t.dropped(), 10u);
  EXPECT_EQ(t.snapshot().size(), Tracer::kRingCapacity);
}

TEST(ObsTracer, ThreadDropStatsAccountPerRing) {
  Tracer t;
  SpanEvent ev;
  ev.name = "x";
  for (std::size_t i = 0; i < Tracer::kRingCapacity + 7; ++i) {
    ev.start_us = static_cast<double>(i);
    t.record(ev);
  }
  const auto stats = t.thread_drop_stats();
  ASSERT_EQ(stats.size(), 1u);  // single-threaded: one ring
  EXPECT_EQ(stats[0].recorded, Tracer::kRingCapacity + 7);
  EXPECT_EQ(stats[0].dropped, 7u);
  // Per-ring drops sum to the tracer-wide total.
  std::uint64_t total = 0;
  for (const auto& s : stats) total += s.dropped;
  EXPECT_EQ(total, t.dropped());
}

TEST(ObsTracer, ThreadDropStatsCoverEveryThread) {
  Tracer t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&t] {
      SpanEvent ev;
      ev.name = "t";
      for (std::size_t j = 0; j < Tracer::kRingCapacity + 5; ++j) {
        t.record(ev);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = t.thread_drop_stats();
  ASSERT_EQ(stats.size(), 3u);
  std::uint64_t recorded = 0, dropped = 0;
  for (const auto& s : stats) {
    recorded += s.recorded;
    dropped += s.dropped;
  }
  EXPECT_EQ(recorded, 3 * (Tracer::kRingCapacity + 5));
  EXPECT_EQ(dropped, 3 * 5u);
  EXPECT_EQ(dropped, t.dropped());
}

TEST(ObsTracer, SnapshotSortsByStartTime) {
  Tracer t;
  for (const double start : {30.0, 10.0, 20.0}) {
    SpanEvent ev;
    ev.name = "s";
    ev.start_us = start;
    t.record(ev);
  }
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].start_us, 10.0);
  EXPECT_DOUBLE_EQ(events[1].start_us, 20.0);
  EXPECT_DOUBLE_EQ(events[2].start_us, 30.0);
}

// The macro-layer tests only apply when instrumentation is compiled in
// (a -DHEC_OBS_DISABLE=ON build turns the macros into no-ops build-wide;
// that contract is covered by test_obs_disabled).
#ifndef HEC_OBS_DISABLE

TEST(ObsSpanGuard, MacroRecordsIntoGlobalTracer) {
  hec::obs::tracer().clear();
  {
    HEC_SPAN_NAMED(span, "test.outer");
    span.sim_window(0.0, 1.5);
    { HEC_SPAN("test.inner"); }
  }
  const auto events = hec::obs::tracer().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first but starts later; snapshot sorts by start.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_TRUE(events[0].has_sim_window());
  EXPECT_DOUBLE_EQ(events[0].sim_end_s, 1.5);
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_FALSE(events[1].has_sim_window());
  hec::obs::tracer().clear();
}

#endif  // HEC_OBS_DISABLE

// --------------------------------------------------------------- exporters

/// Deterministic fixture: two spans and a small registry.
class ObsExportTest : public ::testing::Test {
 protected:
  ObsExportTest() {
    SpanEvent outer;
    outer.name = "phase.outer";
    outer.start_us = 100.0;
    outer.dur_us = 50.0;
    outer.depth = 0;
    outer.sim_begin_s = 0.0;
    outer.sim_end_s = 0.25;
    tracer_.record(outer);

    SpanEvent inner;
    inner.name = "phase.inner";
    inner.start_us = 110.0;
    inner.dur_us = 20.0;
    inner.depth = 1;
    tracer_.record(inner);

    registry_.counter("sim.events").add(42.0);
    registry_.gauge("queue.depth").set(3.0);
    registry_.histogram("eval.wall_s").observe(1.5);
  }

  Tracer tracer_;
  MetricsRegistry registry_;
};

TEST_F(ObsExportTest, ChromeTraceMatchesGolden) {
  std::ostringstream out;
  hec::obs::write_chrome_trace(out, tracer_, &registry_);
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"phase.outer\",\"cat\":\"hec\",\"ph\":\"X\","
      "\"ts\":100.000,\"dur\":50.000,\"pid\":1,\"tid\":0,"
      "\"args\":{\"depth\":0,\"sim_begin_s\":0,\"sim_end_s\":0.25}},\n"
      "{\"name\":\"phase.inner\",\"cat\":\"hec\",\"ph\":\"X\","
      "\"ts\":110.000,\"dur\":20.000,\"pid\":1,\"tid\":0,"
      "\"args\":{\"depth\":1}}\n"
      "],\"displayTimeUnit\":\"ms\","
      "\"otherData\":{\"obs.spans_dropped_total\":0,"
      "\"sim.events\":42,\"queue.depth\":3}}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST_F(ObsExportTest, JsonlContainsOneObjectPerLine) {
  std::ostringstream out;
  hec::obs::write_jsonl(out, tracer_, registry_);
  const std::string text = out.str();
  std::istringstream lines(text);
  std::string line;
  std::size_t spans = 0, counters = 0, gauges = 0, histograms = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"type\":\"span\"") != std::string::npos) ++spans;
    if (line.find("\"type\":\"counter\"") != std::string::npos) ++counters;
    if (line.find("\"type\":\"gauge\"") != std::string::npos) ++gauges;
    if (line.find("\"type\":\"histogram\"") != std::string::npos) {
      ++histograms;
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(counters, 1u);
  EXPECT_EQ(gauges, 1u);
  EXPECT_EQ(histograms, 1u);
}

TEST_F(ObsExportTest, PrometheusDumpMatchesGolden) {
  std::ostringstream out;
  hec::obs::write_prometheus(out, registry_);
  const std::string expected =
      "# TYPE hec_sim_events counter\n"
      "hec_sim_events 42\n"
      "# TYPE hec_queue_depth gauge\n"
      "hec_queue_depth 3\n"
      "# TYPE hec_eval_wall_s histogram\n"
      "hec_eval_wall_s_bucket{le=\"2\"} 1\n"
      "hec_eval_wall_s_bucket{le=\"+Inf\"} 1\n"
      "hec_eval_wall_s_sum 1.5\n"
      "hec_eval_wall_s_count 1\n"
      // Quantiles interpolate geometrically inside the [1,2) bucket:
      // p50 = 2^0.5, p95 = 2^0.95, p99 = 2^0.99.
      "# TYPE hec_eval_wall_s_p50 gauge\n"
      "hec_eval_wall_s_p50 1.4142135623730951\n"
      "# TYPE hec_eval_wall_s_p95 gauge\n"
      "hec_eval_wall_s_p95 1.931872657849691\n"
      "# TYPE hec_eval_wall_s_p99 gauge\n"
      "hec_eval_wall_s_p99 1.9861849908740719\n";
  EXPECT_EQ(out.str(), expected);
}

TEST_F(ObsExportTest, PrometheusExportsTracerDropAccounting) {
  std::ostringstream out;
  hec::obs::write_prometheus(out, registry_, &tracer_);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE hec_obs_spans_dropped_total counter\n"
                      "hec_obs_spans_dropped_total 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("hec_obs_spans_dropped{tid=\""), std::string::npos);
}

TEST_F(ObsExportTest, JsonlReportsTracerDropsAndQuantiles) {
  std::ostringstream out;
  hec::obs::write_jsonl(out, tracer_, registry_);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"type\":\"tracer\",\"spans_dropped_total\":0"),
            std::string::npos);
  EXPECT_NE(text.find("\"p50\":"), std::string::npos);
  EXPECT_NE(text.find("\"p99\":"), std::string::npos);
}

TEST_F(ObsExportTest, ChromeTraceReportsPerThreadDrops) {
  Tracer t;
  SpanEvent ev;
  ev.name = "x";
  for (std::size_t i = 0; i < Tracer::kRingCapacity + 3; ++i) t.record(ev);
  std::ostringstream out;
  hec::obs::write_chrome_trace(out, t);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"obs.spans_dropped_total\":3"), std::string::npos);
  EXPECT_NE(text.find("\"obs.spans_dropped_tid"), std::string::npos);
}

TEST(ObsExportDrops, PerThreadDropsSurfaceIdenticallyInAllExporters) {
  // Three threads each overflow their ring by a distinct margin; every
  // exporter must attribute the same per-thread drop counts, so an
  // operator reading any one artifact sees the same accounting.
  Tracer t;
  std::vector<std::thread> threads;
  for (int i = 1; i <= 3; ++i) {
    threads.emplace_back([&t, i] {
      SpanEvent ev;
      ev.name = "spin";
      for (std::size_t j = 0; j < Tracer::kRingCapacity + 10 * i; ++j) {
        t.record(ev);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto stats = t.thread_drop_stats();
  ASSERT_EQ(stats.size(), 3u);
  MetricsRegistry empty;
  std::ostringstream chrome, jsonl, prom;
  hec::obs::write_chrome_trace(chrome, t);
  hec::obs::write_jsonl(jsonl, t, empty);
  hec::obs::write_prometheus(prom, empty, &t);

  std::uint64_t total = 0;
  for (const auto& s : stats) {
    ASSERT_GT(s.dropped, 0u);
    total += s.dropped;
    EXPECT_NE(chrome.str().find("\"obs.spans_dropped_tid" +
                                std::to_string(s.tid) +
                                "\":" + std::to_string(s.dropped)),
              std::string::npos)
        << "chrome trace misses tid " << s.tid;
    EXPECT_NE(jsonl.str().find("{\"tid\":" + std::to_string(s.tid) +
                               ",\"recorded\":" + std::to_string(s.recorded) +
                               ",\"dropped\":" + std::to_string(s.dropped) +
                               "}"),
              std::string::npos)
        << "jsonl misses tid " << s.tid;
    EXPECT_NE(prom.str().find("hec_obs_spans_dropped{tid=\"" +
                              std::to_string(s.tid) +
                              "\"} " + std::to_string(s.dropped)),
              std::string::npos)
        << "prometheus misses tid " << s.tid;
  }
  EXPECT_EQ(total, t.dropped());
  EXPECT_NE(chrome.str().find("\"obs.spans_dropped_total\":" +
                              std::to_string(total)),
            std::string::npos);
  EXPECT_NE(prom.str().find("hec_obs_spans_dropped_total " +
                            std::to_string(total)),
            std::string::npos);
}

TEST(ObsExportQuantiles, ZeroSampleHistogramEmitsNoQuantileLines) {
  // A registered-but-never-observed histogram has undefined quantiles;
  // emitting them would put NaN into the scrape and poison ingestion.
  MetricsRegistry reg;
  reg.histogram("never.observed");
  std::ostringstream out;
  hec::obs::write_prometheus(out, reg);
  const std::string text = out.str();
  EXPECT_NE(text.find("hec_never_observed_count 0\n"), std::string::npos);
  EXPECT_EQ(text.find("_p50"), std::string::npos);
  EXPECT_EQ(text.find("_p95"), std::string::npos);
  EXPECT_EQ(text.find("_p99"), std::string::npos);
  EXPECT_EQ(text.find("NaN"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);

  // One observation brings the quantile gauges back.
  reg.histogram("never.observed").observe(1.5);
  std::ostringstream after;
  hec::obs::write_prometheus(after, reg);
  EXPECT_NE(after.str().find("hec_never_observed_p50 "), std::string::npos);
  EXPECT_EQ(after.str().find("NaN"), std::string::npos);
}

TEST(ObsPrometheusEscape, LabelValuesAreEscaped) {
  EXPECT_EQ(hec::obs::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(hec::obs::prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(hec::obs::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(hec::obs::prometheus_escape_label("a\nb"), "a\\nb");
  EXPECT_EQ(hec::obs::prometheus_escape_label(""), "");
}

TEST_F(ObsExportTest, ChromeTraceEscapesJsonSpecials) {
  Tracer t;
  SpanEvent ev;
  ev.name = "quote\"back\\slash";
  t.record(ev);
  std::ostringstream out;
  hec::obs::write_chrome_trace(out, t);
  EXPECT_NE(out.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

// ------------------------------------------------------------------ macros
#ifndef HEC_OBS_DISABLE

TEST(ObsMacros, CounterMacroCachesRegistryLookup) {
  const double before =
      hec::obs::registry().counter("test.macro_counter").value();
  for (int i = 0; i < 10; ++i) HEC_COUNTER_INC("test.macro_counter");
  HEC_COUNTER_ADD("test.macro_counter", 5.0);
  const double after =
      hec::obs::registry().counter("test.macro_counter").value();
  EXPECT_DOUBLE_EQ(after - before, 15.0);
}

TEST(ObsMacros, GaugeAndHistogramMacros) {
  HEC_GAUGE_SET("test.macro_gauge", 9.0);
  EXPECT_DOUBLE_EQ(hec::obs::registry().gauge("test.macro_gauge").value(),
                   9.0);
  const auto count_before =
      hec::obs::registry().histogram("test.macro_hist").count();
  HEC_HISTOGRAM_OBSERVE("test.macro_hist", 0.125);
  EXPECT_EQ(hec::obs::registry().histogram("test.macro_hist").count(),
            count_before + 1);
}

TEST(ObsMacros, ScopedTimerObservesOnExit) {
  auto& h = hec::obs::registry().histogram("test.macro_timer");
  const auto before = h.count();
  { HEC_SCOPED_TIMER("test.macro_timer"); }
  EXPECT_EQ(h.count(), before + 1);
}

#endif  // HEC_OBS_DISABLE

}  // namespace
