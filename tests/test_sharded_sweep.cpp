// Sharded-sweep contract (hec/shard/shard.h): with any worker count,
// and under worker crashes, steals and retries, the merged frontier is
// bit-identical to one uninterrupted single-process sweep. Failures are
// injected deterministically (HEC_FAILPOINT attempt sites, poisoned
// bodies, stalled bodies), so every robustness path is exercised
// without flaky timing: crash recovery, work stealing, retry-budget
// exhaustion, deadline partials, durable result reuse, and the
// cross-shard journal firewall.
#include "hec/shard/shard.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hec/bench/json.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/obs/metrics.h"
#include "hec/pareto/streaming.h"
#include "hec/shard/result_file.h"
#include "hec/shard/telemetry.h"
#include "hec/util/atomic_file.h"
#include "hec/util/failpoint.h"
#include "hec/workloads/workload.h"

namespace hec::shard {
namespace {

constexpr std::size_t kTotal = 20000;

/// The synthetic index space every process-level test sweeps: pure
/// arithmetic, so parent and forked workers agree bit for bit.
void eval_points(std::size_t first, std::size_t count,
                 ParetoAccumulator& acc) {
  for (std::size_t i = first; i < first + count; ++i) {
    const double t = 1.0 + static_cast<double>((i * 7919 + 13) % 613) * 0.01;
    const double e =
        1.0 + static_cast<double>((i * 2654435761ULL + 7) % 997) * 0.01;
    acc.add({t, e, i});
  }
}

ShardedSweepSpec synthetic_spec() {
  ShardedSweepSpec spec;
  spec.signature = "synthetic-points v1";
  spec.total = kTotal;
  spec.claim = 256;
  spec.body = eval_points;
  return spec;
}

/// Uninterrupted single-accumulator reference for a slice.
std::vector<TimeEnergyPoint> reference_frontier(const IndexRange& range) {
  ParetoAccumulator acc;
  eval_points(range.first, range.size(), acc);
  return acc.take();
}

/// A fresh per-test state dir; stale shard files from an earlier run of
/// the same test are removed so reuse counts start from zero.
std::string fresh_state_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "shard_" + name;
  for (std::size_t id = 0; id < 64; ++id) {
    std::remove(shard_result_path(dir, id).c_str());
    std::remove(shard_journal_path(dir, id).c_str());
  }
  // Telemetry sidecars are keyed by attempt ordinal (1-based).
  for (std::uint64_t a = 1; a <= 64; ++a) {
    std::remove(shard_telemetry_path(dir, a).c_str());
  }
  return dir;
}

void expect_identical_frontiers(const std::vector<TimeEnergyPoint>& got,
                                const std::vector<TimeEnergyPoint>& want,
                                const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " frontier point " << i;
  }
}

class ShardedSweep : public ::testing::Test {
 protected:
  void TearDown() override { util::set_failpoints({}); }
};

// ---------------------------------------------------------------------
// Durable result files.

TEST_F(ShardedSweep, ResultFileRoundTrips) {
  const std::string dir = fresh_state_dir("result_file");
  const std::string path = shard_result_path(dir, 0);
  ::mkdir(dir.c_str(), 0775);
  const IndexRange range{100, 400};
  const ShardResult result{range, reference_frontier(range)};
  write_shard_result(path, "sig v1", result);

  std::string why = "unset";
  const std::optional<ShardResult> back =
      load_shard_result(path, "sig v1", range, &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(back->range, range);
  expect_identical_frontiers(back->frontier, result.frontier, "roundtrip");
}

TEST_F(ShardedSweep, ResultFileRejectsForeignArtifacts) {
  const std::string dir = fresh_state_dir("result_reject");
  const std::string path = shard_result_path(dir, 0);
  ::mkdir(dir.c_str(), 0775);
  const IndexRange range{0, 256};
  write_shard_result(path, "sig v1", {range, reference_frontier(range)});

  std::string why;
  // Another sweep's fingerprint: never merged.
  EXPECT_FALSE(load_shard_result(path, "sig v2", range, &why).has_value());
  EXPECT_FALSE(why.empty());
  // Another shard's slice of the same sweep: never merged.
  EXPECT_FALSE(
      load_shard_result(path, "sig v1", IndexRange{256, 512}, &why)
          .has_value());
  // Bit rot: the CRC catches it.
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage";
  }
  why.clear();
  EXPECT_FALSE(load_shard_result(path, "sig v1", range, &why).has_value());
  EXPECT_FALSE(why.empty());
  // Absent file: nullopt with no complaint (the caller just computes).
  why.clear();
  EXPECT_FALSE(load_shard_result(shard_result_path(dir, 9), "sig v1", range,
                                 &why)
                   .has_value());
  EXPECT_TRUE(why.empty());
}

// ---------------------------------------------------------------------
// The happy path: any worker count, bit-identical frontiers.

TEST_F(ShardedSweep, IdentityAcrossWorkerCounts) {
  const std::vector<TimeEnergyPoint> want =
      reference_frontier({0, kTotal});
  ASSERT_GE(want.size(), 2u) << "degenerate reference frontier";
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ShardedSweepOptions opts;
    opts.workers = workers;
    opts.shards = 4;
    opts.state_dir =
        fresh_state_dir("identity_w" + std::to_string(workers));
    const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
    EXPECT_TRUE(result.complete);
    EXPECT_FALSE(result.deadline_hit);
    EXPECT_EQ(result.shards_complete, 4u);
    EXPECT_EQ(result.configs_visited, kTotal);
    EXPECT_EQ(result.spawns, 4u);
    EXPECT_EQ(result.reassignments, 0u);
    EXPECT_EQ(result.steals, 0u);
    EXPECT_TRUE(result.failed_shards.empty());
    expect_identical_frontiers(result.frontier, want, "identity");
  }
}

TEST_F(ShardedSweep, ModelSweepMatchesPlainSweep) {
  // The paper space end to end: sharded_sweep_frontier forks workers
  // that share the memoized evaluator; the merge must equal the plain
  // in-process sweep bit for bit.
  CharacterizeOptions copts;
  copts.baseline_units = 8000.0;
  const Workload w = workload_ep();
  const NodeTypeModel arm = build_node_model(arm_cortex_a9(), w, copts);
  const NodeTypeModel amd = build_node_model(amd_opteron_k10(), w, copts);
  const EnumerationLimits limits{10, 10};
  const double units = 5e5;

  const SweepResult plain = sweep_frontier(arm, amd, limits, units);
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.state_dir = fresh_state_dir("model");
  const ShardedSweepResult sharded =
      sharded_sweep_frontier(arm, amd, limits, units, opts);
  EXPECT_TRUE(sharded.complete);
  expect_identical_frontiers(sharded.frontier, plain.frontier, "model");
}

TEST_F(ShardedSweep, EmptySpaceCompletesTrivially) {
  ShardedSweepSpec spec = synthetic_spec();
  spec.total = 0;
  ShardedSweepOptions opts;
  opts.workers = 1;
  opts.state_dir = fresh_state_dir("empty");
  const ShardedSweepResult result = run_sharded(spec, opts);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.shards_total, 0u);
  EXPECT_TRUE(result.frontier.empty());
}

// ---------------------------------------------------------------------
// Crash recovery: SIGKILL k of n workers mid-shard.

TEST_F(ShardedSweep, KillTwoOfFourWorkersMidShardIsBitIdentical) {
  // Spawn ordinals 2 and 3 (shards 1 and 2 of the initial wave) are
  // SIGKILLed at their third progress boundary — mid-shard, after the
  // journal has committed epochs. The respawned attempts resume from
  // the journals and the final frontier must not show a trace of it.
  util::set_failpoints({{"shard.attempt.2", 3, util::FailpointMode::kCrash},
                        {"shard.attempt.3", 3, util::FailpointMode::kCrash}});
  ShardedSweepOptions opts;
  opts.workers = 4;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("kill2of4");
  opts.heartbeat_interval_s = 0.01;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.reassignments, 2u);
  EXPECT_EQ(result.spawns, 6u);
  EXPECT_TRUE(result.failed_shards.empty());
  EXPECT_EQ(result.configs_visited, kTotal);
  expect_identical_frontiers(result.frontier,
                             reference_frontier({0, kTotal}), "kill 2-of-4");
}

TEST_F(ShardedSweep, SurvivesACrashStormWithinTheRetryBudget) {
  // Three consecutive attempts die (whatever shards they carry); the
  // budget (3 retries per shard) absorbs it.
  util::set_failpoints({{"shard.attempt.1", 1, util::FailpointMode::kCrash},
                        {"shard.attempt.2", 2, util::FailpointMode::kCrash},
                        {"shard.attempt.3", 3, util::FailpointMode::kCrash}});
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("storm");
  opts.heartbeat_interval_s = 0.01;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.reassignments, 3u);
  expect_identical_frontiers(result.frontier,
                             reference_frontier({0, kTotal}), "crash storm");
}

// ---------------------------------------------------------------------
// Work stealing.

TEST_F(ShardedSweep, StealsAStragglerWithoutLosingTheSweep) {
  // The first attempt at shard 0 stalls (sleeps) at its first block —
  // heartbeats keep flowing but the cursor freezes, so the progress
  // timeout must steal the shard. The marker file makes the stall
  // one-shot: the replacement attempt runs clean.
  const std::string marker =
      ::testing::TempDir() + "shard_steal_marker";
  std::remove(marker.c_str());

  ShardedSweepSpec spec = synthetic_spec();
  spec.body = [&marker](std::size_t first, std::size_t count,
                        ParetoAccumulator& acc) {
    if (first == 0) {
      std::ifstream probe(marker);
      if (!probe.good()) {
        std::ofstream(marker) << "stalled once\n";
        std::this_thread::sleep_for(std::chrono::seconds(5));
      }
    }
    eval_points(first, count, acc);
  };

  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("steal");
  opts.heartbeat_interval_s = 0.02;
  opts.heartbeat_timeout_s = 30.0;  // only the progress clock may trip
  opts.progress_timeout_s = 0.2;
  const ShardedSweepResult result = run_sharded(spec, opts);
  EXPECT_TRUE(result.complete);
  EXPECT_GE(result.steals, 1u);
  EXPECT_EQ(result.reassignments, 0u);
  EXPECT_TRUE(result.failed_shards.empty());
  expect_identical_frontiers(result.frontier,
                             reference_frontier({0, kTotal}), "steal");
  std::remove(marker.c_str());
}

// ---------------------------------------------------------------------
// Retry budget exhaustion: report, don't retry forever.

TEST_F(ShardedSweep, ExhaustedRetryBudgetMarksTheShardFailed) {
  // Shard 1's slice [5000, 10000) poisons every attempt; the rest of
  // the space must still complete and merge exactly.
  ShardedSweepSpec spec = synthetic_spec();
  spec.body = [](std::size_t first, std::size_t count,
                 ParetoAccumulator& acc) {
    if (first >= 5000 && first < 10000) {
      throw std::runtime_error("poisoned slice");
    }
    eval_points(first, count, acc);
  };

  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("poison");
  opts.max_retries = 1;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(spec, opts);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.deadline_hit);
  ASSERT_EQ(result.failed_shards.size(), 1u);
  EXPECT_EQ(result.failed_shards[0], 1u);
  EXPECT_EQ(result.shards_complete, 3u);
  EXPECT_EQ(result.retries, 2u) << "first attempt + one retry";
  EXPECT_EQ(result.configs_visited, kTotal - 5000);

  const std::vector<std::vector<TimeEnergyPoint>> partials = {
      reference_frontier({0, 5000}), reference_frontier({10000, 15000}),
      reference_frontier({15000, 20000})};
  expect_identical_frontiers(result.frontier, merge_frontiers(partials),
                             "survivors");
}

// ---------------------------------------------------------------------
// Graceful degradation: the global deadline.

TEST_F(ShardedSweep, DeadlineEmitsExactlyTheCompletedShards) {
  // One worker, four slow shards, a deadline sized for roughly one or
  // two of them. However many complete, the partial frontier must be
  // exactly their merge — with one worker shards finish in order, so
  // the completed set is a prefix.
  ShardedSweepSpec spec = synthetic_spec();
  spec.claim = 5000;  // one block per shard
  spec.body = [](std::size_t first, std::size_t count,
                 ParetoAccumulator& acc) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    eval_points(first, count, acc);
  };

  ShardedSweepOptions opts;
  opts.workers = 1;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("deadline");
  opts.deadline_s = 0.15;
  const ShardedSweepResult result = run_sharded(spec, opts);
  EXPECT_TRUE(result.deadline_hit);
  EXPECT_FALSE(result.complete);
  EXPECT_LT(result.shards_complete, 4u);
  EXPECT_EQ(result.configs_visited, result.shards_complete * 5000);
  EXPECT_TRUE(result.failed_shards.empty()) << "deadline is not failure";

  std::vector<std::vector<TimeEnergyPoint>> partials;
  for (std::size_t s = 0; s < result.shards_complete; ++s) {
    partials.push_back(reference_frontier({s * 5000, (s + 1) * 5000}));
  }
  expect_identical_frontiers(result.frontier, merge_frontiers(partials),
                             "deadline partial");
}

// ---------------------------------------------------------------------
// Durability: results survive the coordinator.

TEST_F(ShardedSweep, DurableResultsAreReusedAcrossCoordinatorRuns) {
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("reuse");
  const ShardedSweepResult first = run_sharded(synthetic_spec(), opts);
  ASSERT_TRUE(first.complete);
  EXPECT_EQ(first.results_reused, 0u);

  // A "restarted coordinator": same spec, same state dir. Every shard
  // is salvaged from disk; no worker is ever spawned.
  const ShardedSweepResult second = run_sharded(synthetic_spec(), opts);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.results_reused, 4u);
  EXPECT_EQ(second.spawns, 0u);
  expect_identical_frontiers(second.frontier, first.frontier, "reuse");
}

TEST_F(ShardedSweep, DamagedResultFileIsRecomputedNotMerged) {
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("damage");
  const ShardedSweepResult first = run_sharded(synthetic_spec(), opts);
  ASSERT_TRUE(first.complete);

  {
    std::ofstream out(shard_result_path(opts.state_dir, 2), std::ios::app);
    out << "bit rot";
  }
  const ShardedSweepResult second = run_sharded(synthetic_spec(), opts);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.results_reused, 3u);
  EXPECT_EQ(second.spawns, 1u) << "only the damaged shard recomputes";
  expect_identical_frontiers(second.frontier, first.frontier, "damage");
}

// ---------------------------------------------------------------------
// The journal firewall: a worker handed another shard's journal must
// restart from scratch with a warning, never silently merge.

TEST_F(ShardedSweep, ForeignShardJournalRestartsFromScratchWithWarning) {
  const std::string dir = fresh_state_dir("firewall");
  ::mkdir(dir.c_str(), 0775);
  const std::string journal = shard_journal_path(dir, 0);
  const ShardedSweepSpec spec = synthetic_spec();

  // Leave a genuine mid-shard checkpoint for slice [0, 10000): the
  // immediate deadline stops the sweep at the first boundary and
  // commits the partial cursor.
  resilience::ResilienceOptions res;
  res.journal_path = journal;
  res.checkpoint_interval_s = 0.0;
  res.deadline_s = 1e-9;
  res.range = IndexRange{0, 10000};
  const resilience::ResumableSweepResult partial =
      resilience::resumable_sweep_indexed(spec.signature, spec.total,
                                          spec.claim, spec.work_units,
                                          spec.body, {}, res);
  ASSERT_FALSE(partial.complete);
  ASSERT_TRUE(std::ifstream(journal).good()) << "partial must journal";

  // The same journal offered to the *other* shard: the slice bound in
  // the fingerprint mismatches, so the sweep warns and restarts — and
  // the result is the clean slice frontier, not a hybrid.
  res.deadline_s = std::numeric_limits<double>::infinity();
  res.range = IndexRange{10000, 20000};
  ::testing::internal::CaptureStderr();
  const resilience::ResumableSweepResult clean =
      resilience::resumable_sweep_indexed(spec.signature, spec.total,
                                          spec.claim, spec.work_units,
                                          spec.body, {}, res);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("restarting sweep from scratch"), std::string::npos)
      << err;
  EXPECT_FALSE(clean.resumed);
  EXPECT_TRUE(clean.complete);
  expect_identical_frontiers(clean.frontier,
                             reference_frontier({10000, 20000}), "firewall");
}

// ---------------------------------------------------------------------
// Cross-process telemetry: merged counters stay exact under kills, the
// status surface reports full coverage, and stale sidecars from a
// previous run never pollute the merge.

#ifndef HEC_OBS_DISABLE
double counter_delta(const obs::MetricsRegistry::Snapshot& delta,
                     std::string_view name) {
  for (const auto& [counter, value] : delta.counters) {
    if (counter == name) return value;
  }
  return 0.0;
}

TEST_F(ShardedSweep, MergedCountersAreExactUnderKills) {
  // Two attempts die mid-shard after flushing partial telemetry. Their
  // sidecars are superseded (dropped from counter merges) and the
  // respawned attempts' final flushes cover each whole slice including
  // the journal-resumed prefix — so the merged `sweep.configs` delta in
  // *this* process must equal the space size exactly, kills and all.
  util::set_failpoints({{"shard.attempt.2", 3, util::FailpointMode::kCrash},
                        {"shard.attempt.3", 3, util::FailpointMode::kCrash}});
  ShardedSweepOptions opts;
  opts.workers = 4;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("telemetry_kill");
  opts.heartbeat_interval_s = 0.01;
  opts.retry_backoff_s = 0.01;
  opts.telemetry_interval_s = 0.0;  // flush at every commit: deterministic

  const obs::MetricsRegistry::Snapshot base = obs::registry().snapshot();
  const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.reassignments, 2u);
  EXPECT_NE(result.run_id, 0u);

  const obs::MetricsRegistry::Snapshot delta =
      obs::snapshot_delta(obs::registry().snapshot(), base);
  EXPECT_EQ(counter_delta(delta, "sweep.configs"),
            static_cast<double>(kTotal));

  // One track per spawned attempt, the two killed ones tagged; each
  // dead attempt shipped at least one epoch span before dying (the
  // failpoint fires at the third progress boundary).
  ASSERT_EQ(result.trace.tracks.size(), result.spawns);
  std::size_t superseded = 0;
  for (const obs::ExternalTrack& track : result.trace.tracks) {
    if (!track.superseded) continue;
    ++superseded;
    EXPECT_FALSE(track.spans.empty()) << track.label;
  }
  EXPECT_EQ(superseded, 2u);
  EXPECT_FALSE(result.trace.instants.empty()) << "spawn/reassign markers";

  ASSERT_EQ(result.worker_rates.size(), result.spawns);
  std::size_t rates_superseded = 0;
  for (const ShardedSweepResult::WorkerRate& rate : result.worker_rates) {
    if (rate.superseded) ++rates_superseded;
  }
  EXPECT_EQ(rates_superseded, 2u);
}

TEST_F(ShardedSweep, StaleSidecarFromAPreviousRunNeverMerges) {
  // A forged sidecar carrying an absurd counter under a previous run's
  // fingerprint sits where attempt 1 will write. Whether the
  // coordinator reads it before the live worker overwrites it or not,
  // the run-id firewall keeps it out of the merge: the counter delta is
  // exactly the space size.
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("stale_sidecar");
  opts.telemetry_interval_s = 0.0;
  ::mkdir(opts.state_dir.c_str(), 0775);

  TelemetryRecord forged;
  forged.shard = 0;
  forged.attempt = 1;
  forged.seq = 999;  // rejected records must not advance the held seq
  forged.metrics.counters = {{"sweep.configs", 1e9}};
  util::atomic_write_file(
      shard_telemetry_path(opts.state_dir, 1),
      encode_telemetry(forged,
                       telemetry_fingerprint("synthetic-points v1", 1)));

  const obs::MetricsRegistry::Snapshot base = obs::registry().snapshot();
  const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
  ASSERT_TRUE(result.complete);
  const obs::MetricsRegistry::Snapshot delta =
      obs::snapshot_delta(obs::registry().snapshot(), base);
  EXPECT_EQ(counter_delta(delta, "sweep.configs"),
            static_cast<double>(kTotal));
}
#endif  // HEC_OBS_DISABLE

TEST_F(ShardedSweep, StatusFileReportsTheFinishedRun) {
  // The status surface is protocol-derived, so this holds even under
  // HEC_OBS_DISABLE builds. The final pass must report exact coverage:
  // 100.0 by construction when every shard completed, not a rounded
  // ratio.
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("status");
  opts.status_path = ::testing::TempDir() + "shard_status.json";
  std::remove(opts.status_path.c_str());

  const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
  ASSERT_TRUE(result.complete);

  std::ifstream in(opts.status_path);
  ASSERT_TRUE(in.good()) << "final status pass must write the file";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const std::optional<bench::json::Value> parsed =
      bench::json::Value::parse(buffer.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const bench::json::Value& doc = *parsed;

  EXPECT_EQ(doc["schema"].as_string(), "hec-sweep-status/v1");
  EXPECT_EQ(doc["run_id"].as_string(), std::to_string(result.run_id));
  EXPECT_TRUE(doc["complete"].as_bool());
  EXPECT_FALSE(doc["deadline_hit"].as_bool(true));
  EXPECT_EQ(doc["coverage_pct"].as_number(), 100.0);
  EXPECT_EQ(doc["configs"]["total"].as_number(),
            static_cast<double>(kTotal));
  EXPECT_EQ(doc["configs"]["visited"].as_number(),
            static_cast<double>(kTotal));
  EXPECT_EQ(doc["shards"]["complete"].as_number(), 4.0);
  EXPECT_EQ(doc["shards"]["running"].as_number(), 0.0);
  EXPECT_TRUE(doc["eta_s"].is_null()) << "no ETA once the sweep is done";
  EXPECT_EQ(doc["frontier_size"].as_number(),
            static_cast<double>(result.frontier.size()));
  EXPECT_TRUE(doc["workers"].as_array().empty()) << "no live workers";
  const bench::json::Value::Array& rates = doc["worker_rates"].as_array();
  ASSERT_EQ(rates.size(), result.spawns);
  for (const bench::json::Value& entry : rates) {
    EXPECT_TRUE(entry["completed"].as_bool());
    EXPECT_FALSE(entry["superseded"].as_bool(true));
  }
  std::remove(opts.status_path.c_str());
}

// ---------------------------------------------------------------------
// Option validation.

TEST_F(ShardedSweep, RejectsNonsenseOptions) {
  const ShardedSweepSpec spec = synthetic_spec();
  ShardedSweepOptions opts;
  opts.state_dir = fresh_state_dir("validate");

  ShardedSweepOptions no_workers = opts;
  no_workers.workers = 0;
  EXPECT_THROW(run_sharded(spec, no_workers), std::invalid_argument);

  ShardedSweepSpec no_body = spec;
  no_body.body = nullptr;
  EXPECT_THROW(run_sharded(no_body, opts), std::invalid_argument);

  ShardedSweepSpec no_claim = spec;
  no_claim.claim = 0;
  EXPECT_THROW(run_sharded(no_claim, opts), std::invalid_argument);

  ShardedSweepOptions no_dir = opts;
  no_dir.state_dir.clear();
  EXPECT_THROW(run_sharded(spec, no_dir), std::invalid_argument);

  ShardedSweepOptions bad_dir = opts;
  bad_dir.state_dir = "/nonexistent-hec-parent/state";
  EXPECT_THROW(run_sharded(spec, bad_dir), IoError);
}

TEST_F(ShardedSweep, ShardPathsAreStable) {
  // The state-dir layout is a durability contract (operators and the
  // kill-matrix CI inspect these files).
  EXPECT_EQ(shard_journal_path("/tmp/s", 7), "/tmp/s/shard-7.journal");
  EXPECT_EQ(shard_result_path("/tmp/s", 7), "/tmp/s/shard-7.result");
}

}  // namespace
}  // namespace hec::shard
