// Sharded-sweep contract (hec/shard/shard.h): with any worker count,
// and under worker crashes, steals and retries, the merged frontier is
// bit-identical to one uninterrupted single-process sweep. Failures are
// injected deterministically (HEC_FAILPOINT attempt sites, poisoned
// bodies, stalled bodies), so every robustness path is exercised
// without flaky timing: crash recovery, work stealing, retry-budget
// exhaustion, deadline partials, durable result reuse, and the
// cross-shard journal firewall.
#include "hec/shard/shard.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/pareto/streaming.h"
#include "hec/shard/result_file.h"
#include "hec/util/atomic_file.h"
#include "hec/util/failpoint.h"
#include "hec/workloads/workload.h"

namespace hec::shard {
namespace {

constexpr std::size_t kTotal = 20000;

/// The synthetic index space every process-level test sweeps: pure
/// arithmetic, so parent and forked workers agree bit for bit.
void eval_points(std::size_t first, std::size_t count,
                 ParetoAccumulator& acc) {
  for (std::size_t i = first; i < first + count; ++i) {
    const double t = 1.0 + static_cast<double>((i * 7919 + 13) % 613) * 0.01;
    const double e =
        1.0 + static_cast<double>((i * 2654435761ULL + 7) % 997) * 0.01;
    acc.add({t, e, i});
  }
}

ShardedSweepSpec synthetic_spec() {
  ShardedSweepSpec spec;
  spec.signature = "synthetic-points v1";
  spec.total = kTotal;
  spec.claim = 256;
  spec.body = eval_points;
  return spec;
}

/// Uninterrupted single-accumulator reference for a slice.
std::vector<TimeEnergyPoint> reference_frontier(const IndexRange& range) {
  ParetoAccumulator acc;
  eval_points(range.first, range.size(), acc);
  return acc.take();
}

/// A fresh per-test state dir; stale shard files from an earlier run of
/// the same test are removed so reuse counts start from zero.
std::string fresh_state_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "shard_" + name;
  for (std::size_t id = 0; id < 64; ++id) {
    std::remove(shard_result_path(dir, id).c_str());
    std::remove(shard_journal_path(dir, id).c_str());
  }
  return dir;
}

void expect_identical_frontiers(const std::vector<TimeEnergyPoint>& got,
                                const std::vector<TimeEnergyPoint>& want,
                                const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " frontier point " << i;
  }
}

class ShardedSweep : public ::testing::Test {
 protected:
  void TearDown() override { util::set_failpoints({}); }
};

// ---------------------------------------------------------------------
// Durable result files.

TEST_F(ShardedSweep, ResultFileRoundTrips) {
  const std::string dir = fresh_state_dir("result_file");
  const std::string path = shard_result_path(dir, 0);
  ::mkdir(dir.c_str(), 0775);
  const IndexRange range{100, 400};
  const ShardResult result{range, reference_frontier(range)};
  write_shard_result(path, "sig v1", result);

  std::string why = "unset";
  const std::optional<ShardResult> back =
      load_shard_result(path, "sig v1", range, &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(back->range, range);
  expect_identical_frontiers(back->frontier, result.frontier, "roundtrip");
}

TEST_F(ShardedSweep, ResultFileRejectsForeignArtifacts) {
  const std::string dir = fresh_state_dir("result_reject");
  const std::string path = shard_result_path(dir, 0);
  ::mkdir(dir.c_str(), 0775);
  const IndexRange range{0, 256};
  write_shard_result(path, "sig v1", {range, reference_frontier(range)});

  std::string why;
  // Another sweep's fingerprint: never merged.
  EXPECT_FALSE(load_shard_result(path, "sig v2", range, &why).has_value());
  EXPECT_FALSE(why.empty());
  // Another shard's slice of the same sweep: never merged.
  EXPECT_FALSE(
      load_shard_result(path, "sig v1", IndexRange{256, 512}, &why)
          .has_value());
  // Bit rot: the CRC catches it.
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage";
  }
  why.clear();
  EXPECT_FALSE(load_shard_result(path, "sig v1", range, &why).has_value());
  EXPECT_FALSE(why.empty());
  // Absent file: nullopt with no complaint (the caller just computes).
  why.clear();
  EXPECT_FALSE(load_shard_result(shard_result_path(dir, 9), "sig v1", range,
                                 &why)
                   .has_value());
  EXPECT_TRUE(why.empty());
}

// ---------------------------------------------------------------------
// The happy path: any worker count, bit-identical frontiers.

TEST_F(ShardedSweep, IdentityAcrossWorkerCounts) {
  const std::vector<TimeEnergyPoint> want =
      reference_frontier({0, kTotal});
  ASSERT_GE(want.size(), 2u) << "degenerate reference frontier";
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ShardedSweepOptions opts;
    opts.workers = workers;
    opts.shards = 4;
    opts.state_dir =
        fresh_state_dir("identity_w" + std::to_string(workers));
    const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
    EXPECT_TRUE(result.complete);
    EXPECT_FALSE(result.deadline_hit);
    EXPECT_EQ(result.shards_complete, 4u);
    EXPECT_EQ(result.configs_visited, kTotal);
    EXPECT_EQ(result.spawns, 4u);
    EXPECT_EQ(result.reassignments, 0u);
    EXPECT_EQ(result.steals, 0u);
    EXPECT_TRUE(result.failed_shards.empty());
    expect_identical_frontiers(result.frontier, want, "identity");
  }
}

TEST_F(ShardedSweep, ModelSweepMatchesPlainSweep) {
  // The paper space end to end: sharded_sweep_frontier forks workers
  // that share the memoized evaluator; the merge must equal the plain
  // in-process sweep bit for bit.
  CharacterizeOptions copts;
  copts.baseline_units = 8000.0;
  const Workload w = workload_ep();
  const NodeTypeModel arm = build_node_model(arm_cortex_a9(), w, copts);
  const NodeTypeModel amd = build_node_model(amd_opteron_k10(), w, copts);
  const EnumerationLimits limits{10, 10};
  const double units = 5e5;

  const SweepResult plain = sweep_frontier(arm, amd, limits, units);
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.state_dir = fresh_state_dir("model");
  const ShardedSweepResult sharded =
      sharded_sweep_frontier(arm, amd, limits, units, opts);
  EXPECT_TRUE(sharded.complete);
  expect_identical_frontiers(sharded.frontier, plain.frontier, "model");
}

TEST_F(ShardedSweep, EmptySpaceCompletesTrivially) {
  ShardedSweepSpec spec = synthetic_spec();
  spec.total = 0;
  ShardedSweepOptions opts;
  opts.workers = 1;
  opts.state_dir = fresh_state_dir("empty");
  const ShardedSweepResult result = run_sharded(spec, opts);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.shards_total, 0u);
  EXPECT_TRUE(result.frontier.empty());
}

// ---------------------------------------------------------------------
// Crash recovery: SIGKILL k of n workers mid-shard.

TEST_F(ShardedSweep, KillTwoOfFourWorkersMidShardIsBitIdentical) {
  // Spawn ordinals 2 and 3 (shards 1 and 2 of the initial wave) are
  // SIGKILLed at their third progress boundary — mid-shard, after the
  // journal has committed epochs. The respawned attempts resume from
  // the journals and the final frontier must not show a trace of it.
  util::set_failpoints({{"shard.attempt.2", 3, util::FailpointMode::kCrash},
                        {"shard.attempt.3", 3, util::FailpointMode::kCrash}});
  ShardedSweepOptions opts;
  opts.workers = 4;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("kill2of4");
  opts.heartbeat_interval_s = 0.01;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.reassignments, 2u);
  EXPECT_EQ(result.spawns, 6u);
  EXPECT_TRUE(result.failed_shards.empty());
  EXPECT_EQ(result.configs_visited, kTotal);
  expect_identical_frontiers(result.frontier,
                             reference_frontier({0, kTotal}), "kill 2-of-4");
}

TEST_F(ShardedSweep, SurvivesACrashStormWithinTheRetryBudget) {
  // Three consecutive attempts die (whatever shards they carry); the
  // budget (3 retries per shard) absorbs it.
  util::set_failpoints({{"shard.attempt.1", 1, util::FailpointMode::kCrash},
                        {"shard.attempt.2", 2, util::FailpointMode::kCrash},
                        {"shard.attempt.3", 3, util::FailpointMode::kCrash}});
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("storm");
  opts.heartbeat_interval_s = 0.01;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.reassignments, 3u);
  expect_identical_frontiers(result.frontier,
                             reference_frontier({0, kTotal}), "crash storm");
}

// ---------------------------------------------------------------------
// Work stealing.

TEST_F(ShardedSweep, StealsAStragglerWithoutLosingTheSweep) {
  // The first attempt at shard 0 stalls (sleeps) at its first block —
  // heartbeats keep flowing but the cursor freezes, so the progress
  // timeout must steal the shard. The marker file makes the stall
  // one-shot: the replacement attempt runs clean.
  const std::string marker =
      ::testing::TempDir() + "shard_steal_marker";
  std::remove(marker.c_str());

  ShardedSweepSpec spec = synthetic_spec();
  spec.body = [&marker](std::size_t first, std::size_t count,
                        ParetoAccumulator& acc) {
    if (first == 0) {
      std::ifstream probe(marker);
      if (!probe.good()) {
        std::ofstream(marker) << "stalled once\n";
        std::this_thread::sleep_for(std::chrono::seconds(5));
      }
    }
    eval_points(first, count, acc);
  };

  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("steal");
  opts.heartbeat_interval_s = 0.02;
  opts.heartbeat_timeout_s = 30.0;  // only the progress clock may trip
  opts.progress_timeout_s = 0.2;
  const ShardedSweepResult result = run_sharded(spec, opts);
  EXPECT_TRUE(result.complete);
  EXPECT_GE(result.steals, 1u);
  EXPECT_EQ(result.reassignments, 0u);
  EXPECT_TRUE(result.failed_shards.empty());
  expect_identical_frontiers(result.frontier,
                             reference_frontier({0, kTotal}), "steal");
  std::remove(marker.c_str());
}

// ---------------------------------------------------------------------
// Retry budget exhaustion: report, don't retry forever.

TEST_F(ShardedSweep, ExhaustedRetryBudgetMarksTheShardFailed) {
  // Shard 1's slice [5000, 10000) poisons every attempt; the rest of
  // the space must still complete and merge exactly.
  ShardedSweepSpec spec = synthetic_spec();
  spec.body = [](std::size_t first, std::size_t count,
                 ParetoAccumulator& acc) {
    if (first >= 5000 && first < 10000) {
      throw std::runtime_error("poisoned slice");
    }
    eval_points(first, count, acc);
  };

  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("poison");
  opts.max_retries = 1;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(spec, opts);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.deadline_hit);
  ASSERT_EQ(result.failed_shards.size(), 1u);
  EXPECT_EQ(result.failed_shards[0], 1u);
  EXPECT_EQ(result.shards_complete, 3u);
  EXPECT_EQ(result.retries, 2u) << "first attempt + one retry";
  EXPECT_EQ(result.configs_visited, kTotal - 5000);

  const std::vector<std::vector<TimeEnergyPoint>> partials = {
      reference_frontier({0, 5000}), reference_frontier({10000, 15000}),
      reference_frontier({15000, 20000})};
  expect_identical_frontiers(result.frontier, merge_frontiers(partials),
                             "survivors");
}

// ---------------------------------------------------------------------
// Graceful degradation: the global deadline.

TEST_F(ShardedSweep, DeadlineEmitsExactlyTheCompletedShards) {
  // One worker, four slow shards, a deadline sized for roughly one or
  // two of them. However many complete, the partial frontier must be
  // exactly their merge — with one worker shards finish in order, so
  // the completed set is a prefix.
  ShardedSweepSpec spec = synthetic_spec();
  spec.claim = 5000;  // one block per shard
  spec.body = [](std::size_t first, std::size_t count,
                 ParetoAccumulator& acc) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    eval_points(first, count, acc);
  };

  ShardedSweepOptions opts;
  opts.workers = 1;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("deadline");
  opts.deadline_s = 0.15;
  const ShardedSweepResult result = run_sharded(spec, opts);
  EXPECT_TRUE(result.deadline_hit);
  EXPECT_FALSE(result.complete);
  EXPECT_LT(result.shards_complete, 4u);
  EXPECT_EQ(result.configs_visited, result.shards_complete * 5000);
  EXPECT_TRUE(result.failed_shards.empty()) << "deadline is not failure";

  std::vector<std::vector<TimeEnergyPoint>> partials;
  for (std::size_t s = 0; s < result.shards_complete; ++s) {
    partials.push_back(reference_frontier({s * 5000, (s + 1) * 5000}));
  }
  expect_identical_frontiers(result.frontier, merge_frontiers(partials),
                             "deadline partial");
}

// ---------------------------------------------------------------------
// Durability: results survive the coordinator.

TEST_F(ShardedSweep, DurableResultsAreReusedAcrossCoordinatorRuns) {
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("reuse");
  const ShardedSweepResult first = run_sharded(synthetic_spec(), opts);
  ASSERT_TRUE(first.complete);
  EXPECT_EQ(first.results_reused, 0u);

  // A "restarted coordinator": same spec, same state dir. Every shard
  // is salvaged from disk; no worker is ever spawned.
  const ShardedSweepResult second = run_sharded(synthetic_spec(), opts);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.results_reused, 4u);
  EXPECT_EQ(second.spawns, 0u);
  expect_identical_frontiers(second.frontier, first.frontier, "reuse");
}

TEST_F(ShardedSweep, DamagedResultFileIsRecomputedNotMerged) {
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("damage");
  const ShardedSweepResult first = run_sharded(synthetic_spec(), opts);
  ASSERT_TRUE(first.complete);

  {
    std::ofstream out(shard_result_path(opts.state_dir, 2), std::ios::app);
    out << "bit rot";
  }
  const ShardedSweepResult second = run_sharded(synthetic_spec(), opts);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.results_reused, 3u);
  EXPECT_EQ(second.spawns, 1u) << "only the damaged shard recomputes";
  expect_identical_frontiers(second.frontier, first.frontier, "damage");
}

// ---------------------------------------------------------------------
// The journal firewall: a worker handed another shard's journal must
// restart from scratch with a warning, never silently merge.

TEST_F(ShardedSweep, ForeignShardJournalRestartsFromScratchWithWarning) {
  const std::string dir = fresh_state_dir("firewall");
  ::mkdir(dir.c_str(), 0775);
  const std::string journal = shard_journal_path(dir, 0);
  const ShardedSweepSpec spec = synthetic_spec();

  // Leave a genuine mid-shard checkpoint for slice [0, 10000): the
  // immediate deadline stops the sweep at the first boundary and
  // commits the partial cursor.
  resilience::ResilienceOptions res;
  res.journal_path = journal;
  res.checkpoint_interval_s = 0.0;
  res.deadline_s = 1e-9;
  res.range = IndexRange{0, 10000};
  const resilience::ResumableSweepResult partial =
      resilience::resumable_sweep_indexed(spec.signature, spec.total,
                                          spec.claim, spec.work_units,
                                          spec.body, {}, res);
  ASSERT_FALSE(partial.complete);
  ASSERT_TRUE(std::ifstream(journal).good()) << "partial must journal";

  // The same journal offered to the *other* shard: the slice bound in
  // the fingerprint mismatches, so the sweep warns and restarts — and
  // the result is the clean slice frontier, not a hybrid.
  res.deadline_s = std::numeric_limits<double>::infinity();
  res.range = IndexRange{10000, 20000};
  ::testing::internal::CaptureStderr();
  const resilience::ResumableSweepResult clean =
      resilience::resumable_sweep_indexed(spec.signature, spec.total,
                                          spec.claim, spec.work_units,
                                          spec.body, {}, res);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("restarting sweep from scratch"), std::string::npos)
      << err;
  EXPECT_FALSE(clean.resumed);
  EXPECT_TRUE(clean.complete);
  expect_identical_frontiers(clean.frontier,
                             reference_frontier({10000, 20000}), "firewall");
}

// ---------------------------------------------------------------------
// Option validation.

TEST_F(ShardedSweep, RejectsNonsenseOptions) {
  const ShardedSweepSpec spec = synthetic_spec();
  ShardedSweepOptions opts;
  opts.state_dir = fresh_state_dir("validate");

  ShardedSweepOptions no_workers = opts;
  no_workers.workers = 0;
  EXPECT_THROW(run_sharded(spec, no_workers), std::invalid_argument);

  ShardedSweepSpec no_body = spec;
  no_body.body = nullptr;
  EXPECT_THROW(run_sharded(no_body, opts), std::invalid_argument);

  ShardedSweepSpec no_claim = spec;
  no_claim.claim = 0;
  EXPECT_THROW(run_sharded(no_claim, opts), std::invalid_argument);

  ShardedSweepOptions no_dir = opts;
  no_dir.state_dir.clear();
  EXPECT_THROW(run_sharded(spec, no_dir), std::invalid_argument);

  ShardedSweepOptions bad_dir = opts;
  bad_dir.state_dir = "/nonexistent-hec-parent/state";
  EXPECT_THROW(run_sharded(spec, bad_dir), IoError);
}

TEST_F(ShardedSweep, ShardPathsAreStable) {
  // The state-dir layout is a durability contract (operators and the
  // kill-matrix CI inspect these files).
  EXPECT_EQ(shard_journal_path("/tmp/s", 7), "/tmp/s/shard-7.journal");
  EXPECT_EQ(shard_result_path("/tmp/s", 7), "/tmp/s/shard-7.result");
}

}  // namespace
}  // namespace hec::shard
