#include "hec/queueing/variants.h"

#include <gtest/gtest.h>

#include "hec/queueing/md1.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(MM1, ClassicWaitFormula) {
  // Wq = rho S / (1 - rho); rho = 0.5, S = 0.2 -> 0.2.
  const MM1Queue q(2.5, 0.2);
  EXPECT_DOUBLE_EQ(q.utilization(), 0.5);
  EXPECT_DOUBLE_EQ(q.mean_wait_s(), 0.2);
  EXPECT_DOUBLE_EQ(q.mean_response_s(), 0.4);
}

TEST(MM1, WaitsTwiceTheMD1Wait) {
  // Deterministic service halves the delay at the same rho.
  for (double rho : {0.1, 0.5, 0.9}) {
    const double s = 0.05;
    const MM1Queue mm1(rho / s, s);
    const MD1Queue md1(rho / s, s);
    EXPECT_NEAR(mm1.mean_wait_s(), 2.0 * md1.mean_wait_s(), 1e-12) << rho;
  }
}

TEST(MM1, RejectsUnstable) {
  EXPECT_THROW(MM1Queue(10.0, 0.1), ContractViolation);
  EXPECT_THROW(MM1Queue(-1.0, 0.1), ContractViolation);
  EXPECT_THROW(MM1Queue(1.0, 0.0), ContractViolation);
}

TEST(Kingman, ReducesToMD1) {
  // (ca2, cs2) = (1, 0) is exactly the M/D/1 P-K formula.
  for (double rho : {0.05, 0.25, 0.5, 0.8}) {
    const double s = 0.1;
    const GG1Kingman gg1(rho / s, s, 1.0, 0.0);
    const MD1Queue md1(rho / s, s);
    EXPECT_NEAR(gg1.mean_wait_s(), md1.mean_wait_s(), 1e-12) << rho;
  }
}

TEST(Kingman, ReducesToMM1) {
  for (double rho : {0.1, 0.6}) {
    const double s = 0.2;
    const GG1Kingman gg1(rho / s, s, 1.0, 1.0);
    const MM1Queue mm1(rho / s, s);
    EXPECT_NEAR(gg1.mean_wait_s(), mm1.mean_wait_s(), 1e-12) << rho;
  }
}

TEST(Kingman, BurstierArrivalsWaitLonger) {
  const double s = 0.1, lambda = 5.0;
  const GG1Kingman calm(lambda, s, 0.5, 0.0);
  const GG1Kingman poisson(lambda, s, 1.0, 0.0);
  const GG1Kingman bursty(lambda, s, 4.0, 0.0);
  EXPECT_LT(calm.mean_wait_s(), poisson.mean_wait_s());
  EXPECT_LT(poisson.mean_wait_s(), bursty.mean_wait_s());
}

TEST(Kingman, DeterministicEverythingNeverWaits) {
  const GG1Kingman d_d_1(5.0, 0.1, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(d_d_1.mean_wait_s(), 0.0);
}

TEST(Kingman, RejectsBadParameters) {
  EXPECT_THROW(GG1Kingman(10.0, 0.1, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(GG1Kingman(1.0, 0.1, -0.5, 0.0), ContractViolation);
  EXPECT_THROW(GG1Kingman(1.0, 0.1, 1.0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace hec
