#include "hec/workloads/julius_decoder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(DiagGaussian, DensityPeaksAtMean) {
  DiagGaussian g;
  g.mean = {1.0, 2.0};
  g.inv_var = {1.0, 1.0};
  g.log_norm = -std::log(2.0 * M_PI);
  const double at_mean = g.log_density({1.0, 2.0});
  const double off_mean = g.log_density({2.0, 3.0});
  EXPECT_GT(at_mean, off_mean);
  EXPECT_NEAR(at_mean, -std::log(2.0 * M_PI), 1e-12);
}

TEST(DiagGaussian, DimensionMismatchThrows) {
  DiagGaussian g;
  g.mean = {0.0};
  g.inv_var = {1.0};
  EXPECT_THROW(g.log_density({0.0, 1.0}), ContractViolation);
}

TEST(MakeTestHmm, WellFormed) {
  const Hmm hmm = make_test_hmm(8, 13, 5);
  EXPECT_EQ(hmm.states.size(), 8u);
  EXPECT_EQ(hmm.log_self.size(), 8u);
  EXPECT_EQ(hmm.log_next.size(), 8u);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(hmm.states[s].mean.size(), 13u);
    // Transition probabilities sum to one.
    EXPECT_NEAR(std::exp(hmm.log_self[s]) + std::exp(hmm.log_next[s]), 1.0,
                1e-12);
  }
  EXPECT_THROW(make_test_hmm(1, 13, 5), ContractViolation);
}

TEST(Viterbi, PathIsMonotoneLeftToRight) {
  const Hmm hmm = make_test_hmm(6, 8, 11);
  const auto frames = make_test_frames(hmm, 200, 12);
  const DecodeResult r = viterbi_decode(hmm, frames);
  ASSERT_EQ(r.state_path.size(), 200u);
  EXPECT_EQ(r.state_path.front(), 0u);
  for (std::size_t t = 1; t < r.state_path.size(); ++t) {
    const auto step = r.state_path[t] - r.state_path[t - 1];
    EXPECT_TRUE(step == 0 || step == 1)
        << "non left-to-right transition at t=" << t;
  }
}

TEST(Viterbi, RecoversTheGeneratingStateSequence) {
  // Frames generated to follow the model: decoding should visit most
  // states in order and finish near the last state.
  const Hmm hmm = make_test_hmm(5, 10, 3);
  const auto frames = make_test_frames(hmm, 500, 4);
  const DecodeResult r = viterbi_decode(hmm, frames);
  EXPECT_GE(r.state_path.back(), 3u);  // advanced through the chain
  // Agreement with the generating schedule (t * S / T) should be high.
  std::size_t agree = 0;
  for (std::size_t t = 0; t < frames.size(); ++t) {
    const std::size_t truth = t * hmm.states.size() / frames.size();
    if (r.state_path[t] == truth) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(frames.size()),
            0.6);
}

TEST(Viterbi, LikelihoodIsFiniteAndDeterministic) {
  const Hmm hmm = make_test_hmm(4, 6, 21);
  const auto frames = make_test_frames(hmm, 100, 22);
  const DecodeResult a = viterbi_decode(hmm, frames);
  const DecodeResult b = viterbi_decode(hmm, frames);
  EXPECT_TRUE(std::isfinite(a.log_likelihood));
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
  EXPECT_EQ(a.state_path, b.state_path);
}

TEST(Viterbi, BetterMatchedFramesScoreHigher) {
  const Hmm hmm = make_test_hmm(4, 6, 31);
  const auto matched = make_test_frames(hmm, 100, 32);
  // Mismatched frames: generated from a different model.
  const Hmm other = make_test_hmm(4, 6, 99);
  auto mismatched = make_test_frames(other, 100, 32);
  for (auto& frame : mismatched) {
    for (auto& x : frame) x += 10.0;  // push far from hmm's means
  }
  EXPECT_GT(viterbi_decode(hmm, matched).log_likelihood,
            viterbi_decode(hmm, mismatched).log_likelihood);
}

TEST(Viterbi, EmptyFramesRejected) {
  const Hmm hmm = make_test_hmm(3, 4, 1);
  EXPECT_THROW(viterbi_decode(hmm, {}), ContractViolation);
}

}  // namespace
}  // namespace hec
