#include "hec/search/optimizer.h"

#include <gtest/gtest.h>

#include <limits>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

WorkloadInputs make_inputs(double inst_per_unit, double ucpu = 1.0,
                           double io_s = 0.0) {
  WorkloadInputs in;
  in.inst_per_unit = inst_per_unit;
  in.wpi = 0.8;
  in.spi_core = 0.5;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.05, 1.0, 2}};
  in.ucpu = ucpu;
  in.io_s_per_unit = io_s;
  if (io_s > 0.0) in.io_bytes_per_unit = 500.0;
  return in;
}

PowerParams make_power(std::vector<double> freqs, double idle) {
  PowerParams p;
  for (double f : freqs) {
    p.core_active_w.push_back(0.2 + 0.5 * f);
    p.core_stall_w.push_back(0.1 + 0.3 * f);
  }
  p.freqs_ghz = std::move(freqs);
  p.mem_active_w = 0.5;
  p.io_active_w = 0.5;
  p.idle_w = idle;
  return p;
}

struct Fixture {
  NodeSpec arm = arm_cortex_a9();
  NodeSpec amd = amd_opteron_k10();
  NodeTypeModel arm_model{arm, make_inputs(160.0),
                          make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4)};
  NodeTypeModel amd_model{amd, make_inputs(120.0),
                          make_power({0.8, 1.5, 2.1}, 45.0)};
  ConfigEvaluator evaluator{arm_model, amd_model};
  EnumerationLimits limits{6, 6};

  /// Ground truth by exhaustive sweep.
  std::optional<ConfigOutcome> exhaustive(double work, double deadline) const {
    const auto configs = enumerate_configs(arm, amd, limits);
    std::optional<ConfigOutcome> best;
    for (const auto& c : configs) {
      const ConfigOutcome o = evaluator.evaluate(c, work);
      if (o.t_s <= deadline && (!best || o.energy_j < best->energy_j)) {
        best = o;
      }
    }
    return best;
  }
};

TEST(BranchAndBound, MatchesExhaustiveAcrossDeadlines) {
  const Fixture f;
  const double w = 1e7;
  for (double deadline_ms : {50.0, 100.0, 200.0, 400.0, 1000.0}) {
    const auto truth = f.exhaustive(w, deadline_ms * 1e-3);
    const auto found = branch_and_bound_search(
        f.evaluator, f.arm, f.amd, f.limits, w, deadline_ms * 1e-3);
    ASSERT_EQ(truth.has_value(), found.has_value()) << deadline_ms;
    if (truth) {
      EXPECT_NEAR(found->best.energy_j, truth->energy_j,
                  truth->energy_j * 1e-9)
          << deadline_ms;
      EXPECT_LE(found->best.t_s, deadline_ms * 1e-3);
    }
  }
}

TEST(BranchAndBound, PrunesMostOfTheSpace) {
  const Fixture f;
  const std::size_t space =
      expected_config_count(f.arm, f.amd, f.limits);
  const auto found = branch_and_bound_search(f.evaluator, f.arm, f.amd,
                                             f.limits, 1e7, 0.4);
  ASSERT_TRUE(found.has_value());
  EXPECT_LT(found->evaluations, space / 3)
      << "pruning saved too little: " << found->evaluations << " of "
      << space;
}

TEST(BranchAndBound, UnmeetableDeadlineReturnsNothing) {
  const Fixture f;
  const auto found = branch_and_bound_search(f.evaluator, f.arm, f.amd,
                                             f.limits, 1e9, 1e-6);
  EXPECT_FALSE(found.has_value());
}

TEST(BranchAndBound, RejectsBadArguments) {
  const Fixture f;
  EXPECT_THROW(branch_and_bound_search(f.evaluator, f.arm, f.amd, f.limits,
                                       0.0, 1.0),
               ContractViolation);
  EXPECT_THROW(branch_and_bound_search(f.evaluator, f.arm, f.amd, f.limits,
                                       1.0, 0.0),
               ContractViolation);
}

TEST(Greedy, FindsFeasibleNearOptimal) {
  const Fixture f;
  const double w = 1e7;
  for (double deadline_ms : {100.0, 200.0, 500.0}) {
    const auto truth = f.exhaustive(w, deadline_ms * 1e-3);
    const auto found = greedy_search(f.evaluator, f.arm, f.amd, f.limits, w,
                                     deadline_ms * 1e-3);
    ASSERT_TRUE(truth.has_value());
    ASSERT_TRUE(found.has_value()) << deadline_ms;
    EXPECT_LE(found->best.t_s, deadline_ms * 1e-3);
    // Approximate: within 20% of optimal energy on this landscape.
    EXPECT_LE(found->best.energy_j, truth->energy_j * 1.20) << deadline_ms;
  }
}

TEST(Greedy, UsesFarFewerEvaluationsThanTheSpace) {
  const Fixture f;
  const std::size_t space =
      expected_config_count(f.arm, f.amd, f.limits);
  const auto found =
      greedy_search(f.evaluator, f.arm, f.amd, f.limits, 1e7, 0.3);
  ASSERT_TRUE(found.has_value());
  EXPECT_LT(found->evaluations, space / 10);
}

TEST(Greedy, UnmeetableDeadlineReturnsNothing) {
  const Fixture f;
  EXPECT_FALSE(
      greedy_search(f.evaluator, f.arm, f.amd, f.limits, 1e9, 1e-6)
          .has_value());
}

TEST(Search, IoBoundLandscape) {
  // I/O-bound models: energy flat in (c, f); search must still agree.
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  NodeTypeModel arm_model(arm, make_inputs(3000.0, 0.05, 6.4e-5),
                          make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4));
  NodeTypeModel amd_model(amd, make_inputs(2200.0, 0.05, 6.4e-6),
                          make_power({0.8, 1.5, 2.1}, 45.0));
  const ConfigEvaluator evaluator(arm_model, amd_model);
  const EnumerationLimits limits{5, 5};
  const double w = 50000.0;
  const double deadline = 0.2;
  const auto bnb = branch_and_bound_search(evaluator, arm, amd, limits, w,
                                           deadline);
  ASSERT_TRUE(bnb.has_value());
  // Cross-check against exhaustive.
  const auto configs = enumerate_configs(arm, amd, limits);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& c : configs) {
    const ConfigOutcome o = evaluator.evaluate(c, w);
    if (o.t_s <= deadline) best = std::min(best, o.energy_j);
  }
  EXPECT_NEAR(bnb->best.energy_j, best, best * 1e-9);
}

}  // namespace
}  // namespace hec
