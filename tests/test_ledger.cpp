// Run ledger: durable append, CRC framing, and the trend comparator.
//
// The ledger is the provenance layer's long-term memory, so the tests
// focus on what makes history trustworthy: round-tripping records
// byte-exactly, rejecting corrupt or torn lines instead of poisoning
// the read, and flagging a genuinely slower run while staying quiet
// within the noise model.
#include "hec/bench/ledger.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hec/util/build_info.h"

namespace {

namespace ledger = hec::bench::ledger;
using hec::bench::telemetry::Outcome;

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "ledger_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_file() const {
    std::ifstream in(path_);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  void write_file(const std::string& text) const {
    std::ofstream out(path_, std::ios::trunc);
    out << text;
  }

  std::string path_;
};

ledger::Record sample_record(double wall_s, int exit_code = 0) {
  ledger::Record r = ledger::make_record("hecsim_cli", {"hecsim_cli", "EP"});
  r.run_id = "00000000deadbeef";
  r.exit_code = exit_code;
  r.wall_s = wall_s;
  r.peak_rss_mb = 42.0;
  r.counters["sweep.configs_total"] = 36380.0;
  r.counters["shard.spawns"] = 4.0;
  return r;
}

TEST_F(LedgerTest, AppendReadRoundTrip) {
  ledger::append(path_, sample_record(1.5));
  ledger::append(path_, sample_record(2.5, 75));

  const ledger::ReadResult got = ledger::read(path_);
  EXPECT_EQ(got.rejected, 0u);
  ASSERT_EQ(got.records.size(), 2u);

  const ledger::Record& r = got.records[0];
  EXPECT_EQ(r.run_id, "00000000deadbeef");
  EXPECT_EQ(r.tool, "hecsim_cli");
  EXPECT_EQ(r.argv, (std::vector<std::string>{"hecsim_cli", "EP"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_DOUBLE_EQ(r.wall_s, 1.5);
  EXPECT_DOUBLE_EQ(r.peak_rss_mb, 42.0);
  EXPECT_DOUBLE_EQ(r.counters.at("sweep.configs_total"), 36380.0);
  EXPECT_EQ(got.records[1].exit_code, 75);

  // make_record stamps the build that produced the run.
  const hec::util::BuildInfo& build = hec::util::build_info();
  EXPECT_EQ(r.git_sha, build.git_sha);
  EXPECT_EQ(r.build_type, build.build_type);
  EXPECT_EQ(r.version, build.version);
  EXPECT_EQ(r.obs_enabled, build.obs_enabled);
  EXPECT_FALSE(r.ts_utc.empty());
  EXPECT_EQ(r.ts_utc.back(), 'Z');
}

TEST_F(LedgerTest, MissingFileIsAnEmptyLedger) {
  const ledger::ReadResult got = ledger::read(path_ + ".does-not-exist");
  EXPECT_TRUE(got.records.empty());
  EXPECT_EQ(got.rejected, 0u);
}

TEST_F(LedgerTest, CorruptedPayloadIsRejectedNotReturned) {
  ledger::append(path_, sample_record(1.0));
  ledger::append(path_, sample_record(2.0));

  // Flip the wall time inside the *first* line's payload: the CRC no
  // longer matches, so that record must be dropped while the second
  // survives untouched.
  std::string text = read_file();
  const std::size_t pos = text.find("\"wall_s\":1");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 9] = '9';
  write_file(text);

  const ledger::ReadResult got = ledger::read(path_);
  EXPECT_EQ(got.rejected, 1u);
  ASSERT_EQ(got.records.size(), 1u);
  EXPECT_DOUBLE_EQ(got.records[0].wall_s, 2.0);
}

TEST_F(LedgerTest, TornFinalLineIsSkipped) {
  ledger::append(path_, sample_record(1.0));
  ledger::append(path_, sample_record(2.0));

  // A crash mid-append leaves a truncated last line.
  std::string text = read_file();
  write_file(text.substr(0, text.size() - 25));

  const ledger::ReadResult got = ledger::read(path_);
  EXPECT_EQ(got.rejected, 1u);
  ASSERT_EQ(got.records.size(), 1u);
  EXPECT_DOUBLE_EQ(got.records[0].wall_s, 1.0);
}

TEST_F(LedgerTest, ForeignSchemaLinesAreCounted) {
  write_file("{\"schema\":\"someone-elses/v7\",\"x\":1}\nnot json at all\n");
  const ledger::ReadResult got = ledger::read(path_);
  EXPECT_TRUE(got.records.empty());
  EXPECT_EQ(got.rejected, 2u);
}

TEST(LedgerTrend, QuietWithinNoiseAndFlagsRealSlowdowns) {
  std::vector<ledger::Record> history;
  for (int i = 0; i < 4; ++i) history.push_back(sample_record(1.0));

  // Newest within noise: identical run.
  history.push_back(sample_record(1.0));
  ledger::Trend quiet = ledger::trend(history);
  EXPECT_EQ(quiet.baseline_runs, 4u);
  EXPECT_TRUE(quiet.ok());
  for (const ledger::TrendDelta& d : quiet.deltas) {
    EXPECT_EQ(d.outcome, Outcome::kWithinNoise) << d.metric;
  }

  // Newest 10x slower: far beyond the wall tolerance (75% rel, 0.5 abs).
  history.back() = sample_record(10.0);
  ledger::Trend slow = ledger::trend(history);
  EXPECT_FALSE(slow.ok());
  bool wall_flagged = false;
  for (const ledger::TrendDelta& d : slow.deltas) {
    if (d.metric == "wall_s") {
      wall_flagged = d.outcome == Outcome::kRegression;
      EXPECT_DOUBLE_EQ(d.baseline, 1.0);
      EXPECT_DOUBLE_EQ(d.current, 10.0);
    }
  }
  EXPECT_TRUE(wall_flagged);
}

TEST(LedgerTrend, CounterDriftFlagsEitherDirection) {
  std::vector<ledger::Record> history;
  for (int i = 0; i < 3; ++i) history.push_back(sample_record(1.0));
  history.push_back(sample_record(1.0));
  history.back().counters["sweep.configs_total"] = 36000.0;  // fewer configs

  const ledger::Trend trend = ledger::trend(history);
  bool flagged = false;
  for (const ledger::TrendDelta& d : trend.deltas) {
    if (d.metric == "counter:sweep.configs_total") {
      flagged = d.outcome == Outcome::kRegression;
    }
  }
  // Deterministic counts drifting *down* still flags: the sweep visited
  // a different space, which is a correctness signal, not an improvement.
  EXPECT_TRUE(flagged);
  EXPECT_FALSE(trend.ok());
}

TEST(LedgerTrend, DifferentInvocationsDoNotCompare) {
  std::vector<ledger::Record> history;
  history.push_back(sample_record(1.0));
  ledger::Record other = sample_record(50.0);
  other.argv = {"hecsim_cli", "EP", "--shards", "8"};
  history.push_back(other);

  // A 10-shard sweep vs a plain one would only ever report that the
  // flags changed; argv must match for a record to join the baseline.
  const ledger::Trend trend = ledger::trend(history);
  EXPECT_EQ(trend.baseline_runs, 0u);
  EXPECT_TRUE(trend.deltas.empty());
}

TEST(LedgerTrend, SingleRecordHasNothingToCompare) {
  const ledger::Trend trend = ledger::trend({sample_record(1.0)});
  EXPECT_EQ(trend.baseline_runs, 0u);
  EXPECT_TRUE(trend.ok());
}

TEST(LedgerJson, RecordJsonRoundTripsThroughParser) {
  const ledger::Record r = sample_record(3.25, 75);
  const std::string text = ledger::to_json(r).dump(false);
  std::string error;
  const auto parsed = hec::bench::json::Value::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  std::string convert_error;
  const auto back = ledger::record_from_json(*parsed, &convert_error);
  ASSERT_TRUE(back.has_value()) << convert_error;
  EXPECT_EQ(back->wall_s, r.wall_s);
  EXPECT_EQ(back->exit_code, 75);
  EXPECT_EQ(back->counters, r.counters);
  // Same-library round trip is byte-exact (shortest round-trip numbers,
  // sorted keys) — the property the CRC framing relies on.
  EXPECT_EQ(ledger::to_json(*back).dump(false), text);
}

}  // namespace
