// ParetoAccumulator / merge_frontiers exactness: any partitioning of a
// point stream across accumulators, any compaction limit and any merge
// order must reproduce pareto_frontier over the concatenation bit for
// bit (see the compaction identity in streaming.h).
#include "hec/pareto/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>
#include <vector>

#include "hec/pareto/frontier.h"

namespace hec {
namespace {

/// Random points with deliberate ties: times and energies snap to a
/// coarse grid so duplicate (t, e) pairs and equal-time runs are common,
/// exercising the tag tiebreak and the eps guard.
std::vector<TimeEnergyPoint> random_points(std::mt19937& rng,
                                           std::size_t count) {
  std::uniform_int_distribution<int> grid(1, 40);
  std::vector<TimeEnergyPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back({0.25 * grid(rng), 0.5 * grid(rng), i});
  }
  return points;
}

void expect_identical(const std::vector<TimeEnergyPoint>& got,
                      const std::vector<TimeEnergyPoint>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "frontier point " << i;
  }
}

TEST(ParetoAccumulator, MatchesParetoFrontierAcrossCompactLimits) {
  std::mt19937 rng(42);
  const auto points = random_points(rng, 2000);
  const auto want = pareto_frontier(points);
  for (std::size_t limit : {1u, 2u, 3u, 17u, 256u, 100000u}) {
    ParetoAccumulator acc(limit);
    for (const auto& p : points) acc.add(p);
    EXPECT_EQ(acc.points_seen(), points.size());
    expect_identical(acc.take(), want);
  }
}

TEST(ParetoAccumulator, TakeResetsForReuse) {
  std::mt19937 rng(7);
  const auto first = random_points(rng, 300);
  auto second = random_points(rng, 300);
  // Distinct tags so the two batches cannot produce identical frontiers
  // by accident.
  for (auto& p : second) p.tag += first.size();
  ParetoAccumulator acc(16);
  for (const auto& p : first) acc.add(p);
  expect_identical(acc.take(), pareto_frontier(first));
  EXPECT_EQ(acc.points_seen(), 0u);
  for (const auto& p : second) acc.add(p);
  expect_identical(acc.take(), pareto_frontier(second));
}

TEST(ParetoAccumulator, EmptyTakeIsEmpty) {
  ParetoAccumulator acc;
  EXPECT_TRUE(acc.take().empty());
}

TEST(ParetoAccumulator, SeedThenAddEqualsOnePassAccumulation) {
  // The checkpoint-resume identity: seeding an accumulator with the
  // frontier of a prefix, then adding the suffix, must equal one
  // uninterrupted accumulation over the whole stream — bit for bit, for
  // any split point and any compaction limit.
  std::mt19937 rng(99);
  const auto points = random_points(rng, 1500);
  const auto want = pareto_frontier(points);
  for (const std::size_t split : {0u, 1u, 200u, 750u, 1499u, 1500u}) {
    for (const std::size_t limit : {1u, 16u, 100000u}) {
      ParetoAccumulator prefix(limit);
      for (std::size_t i = 0; i < split; ++i) prefix.add(points[i]);
      ParetoAccumulator resumed(limit);
      resumed.seed(prefix.take());
      for (std::size_t i = split; i < points.size(); ++i) {
        resumed.add(points[i]);
      }
      expect_identical(resumed.take(), want);
    }
  }
}

TEST(ParetoAccumulator, SeedWithEmptyFrontierIsNoOp) {
  ParetoAccumulator acc;
  acc.seed({});
  acc.add({1.0, 2.0, 0});
  EXPECT_EQ(acc.take().size(), 1u);
}

TEST(MergeFrontiers, PartitionInvariance) {
  std::mt19937 rng(1234);
  const auto points = random_points(rng, 3000);
  const auto want = pareto_frontier(points);
  std::uniform_int_distribution<std::size_t> pick_parts(1, 7);
  std::uniform_int_distribution<std::size_t> pick_limit(1, 64);
  for (int round = 0; round < 20; ++round) {
    const std::size_t parts = pick_parts(rng);
    std::vector<ParetoAccumulator> accs;
    for (std::size_t i = 0; i < parts; ++i) {
      accs.emplace_back(pick_limit(rng));
    }
    std::uniform_int_distribution<std::size_t> pick_acc(0, parts - 1);
    for (const auto& p : points) accs[pick_acc(rng)].add(p);
    std::vector<std::vector<TimeEnergyPoint>> partials;
    partials.reserve(parts);
    for (auto& acc : accs) partials.push_back(acc.take());
    expect_identical(merge_frontiers(partials), want);
  }
}

TEST(MergeFrontiers, BitIdenticalUnderAllShardPermutations) {
  // The sharded-sweep coordinator merges per-shard frontiers in
  // whatever order shards happen to finish; every permutation of the
  // four shard frontiers must reproduce the whole-space frontier bit
  // for bit, or retries/steals would change the answer.
  std::mt19937 rng(99);
  const auto points = random_points(rng, 4000);
  const auto want = pareto_frontier(points);
  std::vector<std::vector<TimeEnergyPoint>> shards;
  for (std::size_t s = 0; s < 4; ++s) {
    const std::vector<TimeEnergyPoint> slice(
        points.begin() + static_cast<std::ptrdiff_t>(s * 1000),
        points.begin() + static_cast<std::ptrdiff_t>((s + 1) * 1000));
    shards.push_back(pareto_frontier(slice));
  }
  std::array<std::size_t, 4> order = {0, 1, 2, 3};
  do {
    std::vector<std::vector<TimeEnergyPoint>> partials;
    for (const std::size_t i : order) partials.push_back(shards[i]);
    expect_identical(merge_frontiers(partials), want);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(MergeFrontiers, DuplicateShardDeliveryChangesNothing) {
  // At-least-once delivery: a shard frontier showing up twice (a retry
  // racing its original, or a reused result file plus a late D) must
  // not perturb the merge — duplicates are exact copies and the
  // dominance scan keeps strict improvements only.
  std::mt19937 rng(101);
  const auto points = random_points(rng, 4000);
  const auto want = pareto_frontier(points);
  std::vector<std::vector<TimeEnergyPoint>> shards;
  for (std::size_t s = 0; s < 4; ++s) {
    const std::vector<TimeEnergyPoint> slice(
        points.begin() + static_cast<std::ptrdiff_t>(s * 1000),
        points.begin() + static_cast<std::ptrdiff_t>((s + 1) * 1000));
    shards.push_back(pareto_frontier(slice));
  }
  for (std::size_t dup = 0; dup < 4; ++dup) {
    std::vector<std::vector<TimeEnergyPoint>> partials = shards;
    partials.push_back(shards[dup]);
    expect_identical(merge_frontiers(partials), want);
  }
  // Every shard delivered twice at once.
  std::vector<std::vector<TimeEnergyPoint>> doubled = shards;
  doubled.insert(doubled.end(), shards.begin(), shards.end());
  expect_identical(merge_frontiers(doubled), want);
}

TEST(MergeFrontiers, EmptyAndSingletonInputs) {
  EXPECT_TRUE(merge_frontiers({}).empty());
  std::vector<std::vector<TimeEnergyPoint>> empties(3);
  EXPECT_TRUE(merge_frontiers(empties).empty());
  const std::vector<TimeEnergyPoint> one = {{1.0, 2.0, 9}};
  std::vector<std::vector<TimeEnergyPoint>> partials = {
      pareto_frontier(one), {}, {}};
  expect_identical(merge_frontiers(partials), pareto_frontier(one));
}

}  // namespace
}  // namespace hec
