// DeploymentTable: one compiled entry per (nodes, cores, P-state), in
// the exact order type_sweep enumerates deployments, each bit-identical
// to a fresh NodeTypeModel::predict on the same configuration.
#include "hec/config/deployment_table.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

WorkloadInputs make_inputs() {
  WorkloadInputs in;
  in.inst_per_unit = 160.0;
  in.wpi = 0.8;
  in.spi_core = 0.5;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.05, 1.0, 2}};
  in.ucpu = 1.0;
  return in;
}

PowerParams make_power(std::vector<double> freqs, double idle) {
  PowerParams p;
  p.core_active_w.assign(freqs.size(), 1.0);
  p.core_stall_w.assign(freqs.size(), 0.6);
  p.freqs_ghz = std::move(freqs);
  p.mem_active_w = 0.5;
  p.io_active_w = 0.5;
  p.idle_w = 1.4;
  return p;
}

NodeTypeModel make_model() {
  return NodeTypeModel(arm_cortex_a9(), make_inputs(),
                       make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4));
}

TEST(DeploymentTable, SizeAndIndexRoundTrip) {
  const NodeTypeModel model = make_model();
  const NodeSpec& spec = model.spec();
  const DeploymentTable table(model, 3);
  const std::size_t freqs = spec.pstates.size();
  ASSERT_EQ(table.size(),
            3u * static_cast<std::size_t>(spec.cores) * freqs);
  EXPECT_EQ(table.max_nodes(), 3);
  EXPECT_EQ(table.cores(), spec.cores);
  EXPECT_EQ(table.pstates(), freqs);
  const auto& freq_list = spec.pstates.frequencies_ghz();
  for (int n = 1; n <= 3; ++n) {
    for (int c = 1; c <= spec.cores; ++c) {
      for (std::size_t f = 0; f < freqs; ++f) {
        const DeploymentEntry& e = table.entry(n, c, f);
        EXPECT_EQ(e.config.nodes, n);
        EXPECT_EQ(e.config.cores, c);
        EXPECT_EQ(e.config.f_ghz, freq_list[f]);
      }
    }
  }
}

TEST(DeploymentTable, EntriesBitIdenticalToModelPredict) {
  const NodeTypeModel model = make_model();
  const DeploymentTable table(model, 2);
  for (double work_units : {1.0, 1e3, 5e6}) {
    for (std::size_t i = 0; i < table.size(); ++i) {
      const DeploymentEntry& e = table.entry(i);
      const Prediction cached = e.op.predict(work_units);
      const Prediction fresh = model.predict(work_units, e.config);
      EXPECT_EQ(cached.t_s, fresh.t_s);
      EXPECT_EQ(cached.energy_j(), fresh.energy_j());
    }
  }
}

TEST(DeploymentTable, TimePerUnitMatchesCompiledOperatingPoint) {
  const NodeTypeModel model = make_model();
  const DeploymentTable table(model, 2);
  for (std::size_t i = 0; i < table.size(); ++i) {
    const DeploymentEntry& e = table.entry(i);
    EXPECT_EQ(e.time_per_unit, e.op.time_per_unit());
    EXPECT_EQ(e.time_per_unit, model.compile(e.config).time_per_unit());
  }
}

TEST(DeploymentTable, EntriesForNodesIsTheContiguousSlice) {
  const NodeTypeModel model = make_model();
  const NodeSpec& spec = model.spec();
  const DeploymentTable table(model, 4);
  const std::size_t per_node =
      static_cast<std::size_t>(spec.cores) * spec.pstates.size();
  for (int n = 1; n <= 4; ++n) {
    const auto slice = table.entries_for_nodes(n);
    ASSERT_EQ(slice.size(), per_node);
    for (const DeploymentEntry& e : slice) {
      EXPECT_EQ(e.config.nodes, n);
    }
    EXPECT_EQ(slice.data(),
              &table.entry(static_cast<std::size_t>(n - 1) * per_node));
  }
}

TEST(DeploymentTable, ZeroNodesYieldsEmptyTable) {
  const NodeTypeModel model = make_model();
  const DeploymentTable table(model, 0);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace hec
