// Resumable-sweep contract (hec/resilience/resumable.h):
//   * run to completion == plain sweep, bit for bit, all workloads;
//   * an interrupted run resumed from its journal == uninterrupted run;
//   * a deadline stops cleanly at a block boundary and the partial
//     frontier is exactly the frontier of the visited prefix;
//   * corrupt/mismatched journals restart from scratch, never poisoning
//     the result.
#include "hec/resilience/resumable.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "hec/config/evaluate.h"
#include "hec/config/robust_evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/pareto/frontier.h"
#include "hec/resilience/journal.h"
#include "hec/util/env.h"
#include "hec/util/failpoint.h"
#include "hec/workloads/workload.h"

namespace hec::resilience {
namespace {

CharacterizeOptions characterize_opts() {
  CharacterizeOptions o;
  o.baseline_units = 8000.0;
  return o;
}

std::string temp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

void expect_identical_frontiers(const std::vector<TimeEnergyPoint>& got,
                                const std::vector<TimeEnergyPoint>& want,
                                const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " frontier point " << i;
  }
}

struct WorkloadCase {
  const char* name;
  NodeTypeModel arm;
  NodeTypeModel amd;
};

class ResumableSweep : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const NodeSpec arm = arm_cortex_a9();
    const NodeSpec amd = amd_opteron_k10();
    cases_ = new std::vector<WorkloadCase>();
    const std::pair<const char*, Workload> workloads[] = {
        {"ep", workload_ep()},
        {"memcached", workload_memcached()},
        {"x264", workload_x264()},
        {"blackscholes", workload_blackscholes()},
        {"julius", workload_julius()},
        {"rsa2048", workload_rsa2048()},
    };
    for (const auto& [name, w] : workloads) {
      cases_->push_back({name,
                         build_node_model(arm, w, characterize_opts()),
                         build_node_model(amd, w, characterize_opts())});
    }
  }
  static void TearDownTestSuite() {
    delete cases_;
    cases_ = nullptr;
  }
  void TearDown() override { util::set_failpoints({}); }

  static const WorkloadCase& ep() { return cases_->front(); }
  static std::vector<WorkloadCase>* cases_;
};

std::vector<WorkloadCase>* ResumableSweep::cases_ = nullptr;

TEST_F(ResumableSweep, CompleteRunMatchesPlainSweepAllWorkloads) {
  const EnumerationLimits limits{3, 2};
  const double units = 5e5;
  for (const WorkloadCase& c : *cases_) {
    const SweepResult plain = sweep_frontier(c.arm, c.amd, limits, units);
    const ResumableSweepResult resumable =
        resumable_sweep_frontier(c.arm, c.amd, limits, units);
    EXPECT_TRUE(resumable.complete) << c.name;
    EXPECT_FALSE(resumable.resumed) << c.name;
    EXPECT_EQ(resumable.configs_visited, resumable.configs_total) << c.name;
    expect_identical_frontiers(resumable.frontier, plain.frontier, c.name);
  }
}

TEST_F(ResumableSweep, CompletedRunRemovesItsJournal) {
  // Big enough for several epochs, so checkpoints actually commit.
  const EnumerationLimits limits{40, 40};
  ResilienceOptions res;
  res.journal_path = temp_journal("resumable_done.jsonl");
  res.checkpoint_interval_s = 0.0;  // commit at every epoch boundary
  const ResumableSweepResult result =
      resumable_sweep_frontier(ep().arm, ep().amd, limits, 1e5, {}, res);
  EXPECT_TRUE(result.complete);
  EXPECT_GE(result.checkpoints, 1u) << "epoch cadence should commit";
  std::ifstream left_over(res.journal_path);
  EXPECT_FALSE(left_over.good()) << "journal must be removed on completion";
}

TEST_F(ResumableSweep, InjectedFaultThenResumeIsBitIdentical) {
  // Large space (~577k configs) with tight 4-block epochs, so the fault
  // at block 40 lands in epoch 10 with nine checkpoints already durable.
  const EnumerationLimits limits{40, 40};
  const double units = 5e5;
  const ResumableSweepResult uninterrupted =
      resumable_sweep_frontier(ep().arm, ep().amd, limits, units);

  ResilienceOptions res;
  res.journal_path = temp_journal("resumable_fault.jsonl");
  res.checkpoint_interval_s = 0.0;
  res.checkpoint_blocks = 4;
  SweepOptions serial;
  serial.parallel = false;
  serial.block = 256;

  // First run dies to an injected EIO-style fault mid-sweep...
  util::set_failpoints({{"sweep.block", 40, util::FailpointMode::kError}});
  EXPECT_THROW(resumable_sweep_frontier(ep().arm, ep().amd, limits, units,
                                        serial, res),
               util::InjectedFault);
  util::set_failpoints({});

  // ...and the restart resumes from the last durable checkpoint.
  const ResumableSweepResult resumed = resumable_sweep_frontier(
      ep().arm, ep().amd, limits, units, serial, res);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_GT(resumed.resume_cursor, 0u);
  expect_identical_frontiers(resumed.frontier, uninterrupted.frontier,
                             "fault+resume");
}

TEST_F(ResumableSweep, DeadlineYieldsPartialPrefixFrontier) {
  const EnumerationLimits limits{40, 40};
  const double units = 5e5;
  ResilienceOptions res;
  res.journal_path = temp_journal("resumable_deadline.jsonl");
  // A delay failpoint stretches the first block past the deadline, so
  // the stop is deterministic: at least one block completes (claimed
  // blocks always finish), then the next claim sees the deadline.
  res.deadline_s = 0.05;
  util::set_failpoints({{"sweep.block", 1, util::FailpointMode::kDelay}});
  SweepOptions serial;
  serial.parallel = false;
  serial.block = 64;
  const ResumableSweepResult partial = resumable_sweep_frontier(
      ep().arm, ep().amd, limits, units, serial, res);
  util::set_failpoints({});
  EXPECT_FALSE(partial.complete);
  EXPECT_GE(partial.configs_visited, serial.block);
  EXPECT_LT(partial.configs_visited, partial.configs_total);

  // The partial frontier must be exactly the frontier of the visited
  // prefix [0, configs_visited) — recompute it the naive way.
  const MemoizedConfigEvaluator memo(ep().arm, ep().amd, limits);
  std::vector<TimeEnergyPoint> prefix;
  prefix.reserve(partial.configs_visited);
  for (std::size_t i = 0; i < partial.configs_visited; ++i) {
    const ConfigOutcome o = memo.evaluate_at(i, units);
    prefix.push_back({o.t_s, o.energy_j, i});
  }
  expect_identical_frontiers(partial.frontier,
                             pareto_frontier(std::move(prefix)),
                             "partial prefix");

  // The final checkpoint persists the stop boundary...
  const SweepJournal journal(res.journal_path, memo.layout().describe(),
                             memo.size(), units);
  const JournalLoadResult loaded = journal.load();
  ASSERT_EQ(loaded.status, JournalLoadStatus::kOk) << loaded.detail;
  EXPECT_EQ(loaded.checkpoint.cursor, partial.configs_visited);

  // ...and a deadline-free rerun picks up there and finishes, equal to
  // an uninterrupted run.
  ResilienceOptions finish = res;
  finish.deadline_s = std::numeric_limits<double>::infinity();
  const ResumableSweepResult full = resumable_sweep_frontier(
      ep().arm, ep().amd, limits, units, serial, finish);
  EXPECT_TRUE(full.complete);
  const ResumableSweepResult reference =
      resumable_sweep_frontier(ep().arm, ep().amd, limits, units);
  expect_identical_frontiers(full.frontier, reference.frontier,
                             "deadline resume");
}

TEST_F(ResumableSweep, CorruptJournalRestartsFromScratch) {
  const EnumerationLimits limits{2, 2};
  ResilienceOptions res;
  res.journal_path = temp_journal("resumable_corrupt.jsonl");
  {
    std::ofstream out(res.journal_path);
    out << "{\"schema\":\"hec-sweep-journal/v1\"\nGARBAGE";
  }
  const ResumableSweepResult result =
      resumable_sweep_frontier(ep().arm, ep().amd, limits, 1e5, {}, res);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.resumed) << "corrupt journals must not seed a resume";
  const ResumableSweepResult reference =
      resumable_sweep_frontier(ep().arm, ep().amd, limits, 1e5);
  expect_identical_frontiers(result.frontier, reference.frontier,
                             "corrupt restart");
}

TEST_F(ResumableSweep, MismatchedJournalRestartsFromScratch) {
  // Journal a small sweep, then run a *different* space against the
  // same path: the fingerprint must block the resume.
  ResilienceOptions res;
  res.journal_path = temp_journal("resumable_mismatch.jsonl");
  res.deadline_s = 1e-9;
  SweepOptions serial;
  serial.parallel = false;
  const ResumableSweepResult partial = resumable_sweep_frontier(
      ep().arm, ep().amd, EnumerationLimits{40, 40}, 5e5, serial, res);
  EXPECT_FALSE(partial.complete);

  ResilienceOptions fresh;
  fresh.journal_path = res.journal_path;
  const ResumableSweepResult other = resumable_sweep_frontier(
      ep().arm, ep().amd, EnumerationLimits{2, 1}, 1e5, {}, fresh);
  EXPECT_TRUE(other.complete);
  EXPECT_FALSE(other.resumed);
  const ResumableSweepResult reference = resumable_sweep_frontier(
      ep().arm, ep().amd, EnumerationLimits{2, 1}, 1e5);
  expect_identical_frontiers(other.frontier, reference.frontier,
                             "mismatch restart");
}

TEST_F(ResumableSweep, ResumeFalseIgnoresExistingJournal) {
  ResilienceOptions res;
  res.journal_path = temp_journal("resumable_noresume.jsonl");
  res.deadline_s = 1e-9;
  SweepOptions serial;
  serial.parallel = false;
  const ResumableSweepResult partial = resumable_sweep_frontier(
      ep().arm, ep().amd, EnumerationLimits{40, 40}, 5e5, serial, res);
  EXPECT_FALSE(partial.complete);

  ResilienceOptions scratch = res;
  scratch.deadline_s = std::numeric_limits<double>::infinity();
  scratch.resume = false;
  const ResumableSweepResult result = resumable_sweep_frontier(
      ep().arm, ep().amd, EnumerationLimits{40, 40}, 5e5, serial, scratch);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.resumed);
  EXPECT_EQ(result.configs_visited, result.configs_total);
}

TEST_F(ResumableSweep, RobustTwinMatchesPlainRobustSweep) {
  FaultConfig faults;
  faults.mttf_s = 4000.0;
  faults.straggler_prob = 0.2;
  faults.straggler_window_s = 30.0;
  faults.checkpoint_interval_s = 500.0;
  faults.checkpoint_cost_s = 5.0;
  MonteCarloOptions mc;
  mc.trials = 6;
  const RobustConfigEvaluator evaluator(ep().arm, ep().amd, faults, mc);
  const EnumerationLimits limits{2, 1};
  const SweepResult plain =
      sweep_robust_frontier(evaluator, limits, 1e5, 50.0, 0.5);
  const ResumableSweepResult resumable =
      resumable_sweep_robust_frontier(evaluator, limits, 1e5, 50.0, 0.5);
  EXPECT_TRUE(resumable.complete);
  expect_identical_frontiers(resumable.frontier, plain.frontier, "robust");
}

TEST_F(ResumableSweep, RobustInterruptResumeIsBitIdentical) {
  FaultConfig faults;
  faults.mttf_s = 3000.0;
  faults.checkpoint_interval_s = 400.0;
  faults.checkpoint_cost_s = 2.0;
  MonteCarloOptions mc;
  mc.trials = 4;
  const RobustConfigEvaluator evaluator(ep().arm, ep().amd, faults, mc);
  const EnumerationLimits limits{2, 2};
  const ResumableSweepResult uninterrupted =
      resumable_sweep_robust_frontier(evaluator, limits, 1e5, 100.0, 0.8);

  ResilienceOptions res;
  res.journal_path = temp_journal("resumable_robust.jsonl");
  res.checkpoint_interval_s = 0.0;
  res.checkpoint_blocks = 4;  // 4-block epochs: a commit lands before nth=5
  SweepOptions serial;
  serial.parallel = false;
  serial.robust_block = 4;
  util::set_failpoints({{"sweep.block", 5, util::FailpointMode::kError}});
  EXPECT_THROW(resumable_sweep_robust_frontier(evaluator, limits, 1e5, 100.0,
                                               0.8, serial, res),
               util::InjectedFault);
  util::set_failpoints({});
  const ResumableSweepResult resumed = resumable_sweep_robust_frontier(
      evaluator, limits, 1e5, 100.0, 0.8, serial, res);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.resumed);
  expect_identical_frontiers(resumed.frontier, uninterrupted.frontier,
                             "robust fault+resume");
}

TEST_F(ResumableSweep, MultiTwinMatchesPlainMultiSweep) {
  const NodeTypeModel third = build_node_model(
      arm_cortex_a9(), workload_memcached(), characterize_opts());
  const std::vector<const NodeTypeModel*> models = {&ep().arm, &ep().amd,
                                                    &third};
  const std::vector<int> limits = {2, 1, 2};
  const SweepResult plain = sweep_multi_frontier(models, limits, 2e5);
  const ResumableSweepResult resumable =
      resumable_sweep_multi_frontier(models, limits, 2e5);
  EXPECT_TRUE(resumable.complete);
  expect_identical_frontiers(resumable.frontier, plain.frontier, "multi");
}

TEST_F(ResumableSweep, MultiInterruptResumeIsBitIdentical) {
  const NodeTypeModel third = build_node_model(
      arm_cortex_a9(), workload_memcached(), characterize_opts());
  const std::vector<const NodeTypeModel*> models = {&ep().arm, &ep().amd,
                                                    &third};
  const std::vector<int> limits = {2, 2, 2};
  const ResumableSweepResult uninterrupted =
      resumable_sweep_multi_frontier(models, limits, 2e5);

  ResilienceOptions res;
  res.journal_path = temp_journal("resumable_multi.jsonl");
  res.checkpoint_interval_s = 0.0;
  res.checkpoint_blocks = 4;
  SweepOptions serial;
  serial.parallel = false;
  serial.block = 8;
  // With 4-block epochs, nth 20 lands in epoch 5, past four durable
  // checkpoints.
  util::set_failpoints({{"sweep.block", 20, util::FailpointMode::kError}});
  EXPECT_THROW(
      resumable_sweep_multi_frontier(models, limits, 2e5, serial, res),
      util::InjectedFault);
  util::set_failpoints({});
  const ResumableSweepResult resumed =
      resumable_sweep_multi_frontier(models, limits, 2e5, serial, res);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.resumed);
  expect_identical_frontiers(resumed.frontier, uninterrupted.frontier,
                             "multi fault+resume");
}

TEST(DeadlineFromEnv, ParsesPositiveSeconds) {
  setenv("HEC_DEADLINE_S", "2.5", 1);
  EXPECT_DOUBLE_EQ(deadline_from_env(), 2.5);
  unsetenv("HEC_DEADLINE_S");
  EXPECT_EQ(deadline_from_env(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineFromEnv, RejectsNonPositiveAndGarbage) {
  // A typoed deadline must never silently become "no deadline": every
  // malformed value is a loud EnvParseError (the CLI maps it to exit
  // 64). Only unset/empty mean the feature is off.
  for (const char* bad : {"0", "-3", "abc", "1.5x", "nan", "inf", "1e999"}) {
    setenv("HEC_DEADLINE_S", bad, 1);
    EXPECT_THROW(deadline_from_env(), hec::util::EnvParseError)
        << "HEC_DEADLINE_S='" << bad << "'";
  }
  setenv("HEC_DEADLINE_S", "", 1);
  EXPECT_EQ(deadline_from_env(), std::numeric_limits<double>::infinity());
  unsetenv("HEC_DEADLINE_S");
}

}  // namespace
}  // namespace hec::resilience
