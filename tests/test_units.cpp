#include "hec/util/units.h"

#include <gtest/gtest.h>

namespace hec::units {
namespace {

TEST(Units, GhzRoundTrip) {
  EXPECT_DOUBLE_EQ(ghz_to_hz(1.4), 1.4e9);
  EXPECT_DOUBLE_EQ(hz_to_ghz(ghz_to_hz(2.1)), 2.1);
}

TEST(Units, MbpsToBytes) {
  // 100 Mbit/s = 12.5 MB/s.
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_s(100.0), 12.5e6);
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_s(1000.0), 125e6);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(ms_to_s(250.0), 0.25);
  EXPECT_DOUBLE_EQ(s_to_ms(0.165), 165.0);
  EXPECT_DOUBLE_EQ(s_to_ms(ms_to_s(41.0)), 41.0);
}

TEST(Units, CacheSizes) {
  EXPECT_DOUBLE_EQ(kib_to_bytes(32.0), 32768.0);
}

TEST(Units, ConstexprUsable) {
  static_assert(ghz_to_hz(1.0) == 1e9);
  static_assert(ms_to_s(1000.0) == 1.0);
  SUCCEED();
}

}  // namespace
}  // namespace hec::units
