#include "hec/config/multi_space.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/model/matching.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

WorkloadInputs make_inputs(double inst_per_unit) {
  WorkloadInputs in;
  in.inst_per_unit = inst_per_unit;
  in.wpi = 0.8;
  in.spi_core = 0.5;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.05, 1.0, 2}};
  in.ucpu = 1.0;
  return in;
}

PowerParams make_power(std::vector<double> freqs, double idle) {
  PowerParams p;
  p.core_active_w.assign(freqs.size(), 1.0);
  p.core_stall_w.assign(freqs.size(), 0.6);
  p.freqs_ghz = std::move(freqs);
  p.mem_active_w = 0.5;
  p.io_active_w = 0.5;
  p.idle_w = idle;
  return p;
}

TEST(MultiSpace, CountMatchesClosedForm) {
  const std::vector<NodeSpec> specs{arm_cortex_a9(), amd_opteron_k10()};
  const std::vector<int> limits{2, 1};
  // Per type: 1 + n*c*f -> ARM: 1 + 2*4*5 = 41; AMD: 1 + 1*6*3 = 19.
  EXPECT_EQ(expected_multi_count(specs, limits), 41u * 19u - 1u);
  const auto configs = enumerate_multi(specs, limits);
  EXPECT_EQ(configs.size(), 41u * 19u - 1u);
}

TEST(MultiSpace, TwoTypeCountMatchesFootnote2Structure) {
  // The 2-type multi enumeration contains exactly the paper's 36,380
  // points when limits are 10+10 (heterogeneous + both homogeneous).
  const std::vector<NodeSpec> specs{arm_cortex_a9(), amd_opteron_k10()};
  const std::vector<int> limits{10, 10};
  EXPECT_EQ(expected_multi_count(specs, limits),
            201u * 181u - 1u);  // = 36,380
  EXPECT_EQ(expected_multi_count(specs, limits), 36380u);
}

TEST(MultiSpace, ThreeTypesEnumerate) {
  const std::vector<NodeSpec> specs{arm_cortex_a9(), arm_cortex_a15(),
                                    amd_opteron_k10()};
  const std::vector<int> limits{1, 1, 1};
  const auto configs = enumerate_multi(specs, limits);
  // 21 * 17 * 19 - 1 (A15: 4 cores x 4 P-states).
  EXPECT_EQ(configs.size(), 21u * 17u * 19u - 1u);
  for (const auto& c : configs) {
    EXPECT_GE(c.types_used(), 1);
    EXPECT_EQ(c.per_type.size(), 3u);
  }
}

TEST(MultiSpace, CapGuardsExplosion) {
  const std::vector<NodeSpec> specs{arm_cortex_a9(), amd_opteron_k10()};
  const std::vector<int> limits{100, 100};
  EXPECT_THROW(enumerate_multi(specs, limits, 1000), std::length_error);
}

TEST(MultiEvaluator, MatchesTwoTypeEvaluator) {
  NodeTypeModel a9(arm_cortex_a9(), make_inputs(160.0),
                   make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4));
  NodeTypeModel k10(amd_opteron_k10(), make_inputs(120.0),
                    make_power({0.8, 1.5, 2.1}, 45.0));
  const MultiEvaluator multi({&a9, &k10});
  MultiClusterConfig config;
  config.per_type = {NodeConfig{4, 4, 1.4}, NodeConfig{2, 6, 2.1}};
  const MultiOutcome out = multi.evaluate(config, 1e6);
  const MixedPrediction pairwise = predict_mixed(
      a9, config.per_type[0], k10, config.per_type[1], 1e6);
  EXPECT_NEAR(out.t_s, pairwise.t_s, pairwise.t_s * 1e-9);
  EXPECT_NEAR(out.energy_j, pairwise.energy_j, pairwise.energy_j * 1e-9);
  EXPECT_NEAR(out.shares[0], pairwise.split.units_a, 1e-6);
}

TEST(MultiEvaluator, AbsentTypesGetZeroShare) {
  NodeTypeModel a9(arm_cortex_a9(), make_inputs(160.0),
                   make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4));
  NodeTypeModel k10(amd_opteron_k10(), make_inputs(120.0),
                    make_power({0.8, 1.5, 2.1}, 45.0));
  const MultiEvaluator multi({&a9, &k10});
  MultiClusterConfig config;
  config.per_type = {NodeConfig{4, 4, 1.4}, NodeConfig{0, 1, 0.8}};
  const MultiOutcome out = multi.evaluate(config, 1000.0);
  EXPECT_DOUBLE_EQ(out.shares[0], 1000.0);
  EXPECT_DOUBLE_EQ(out.shares[1], 0.0);
}

TEST(MultiEvaluator, ParallelMatchesSerial) {
  NodeTypeModel a9(arm_cortex_a9(), make_inputs(160.0),
                   make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4));
  NodeTypeModel k10(amd_opteron_k10(), make_inputs(120.0),
                    make_power({0.8, 1.5, 2.1}, 45.0));
  const MultiEvaluator multi({&a9, &k10});
  const std::vector<NodeSpec> specs{arm_cortex_a9(), amd_opteron_k10()};
  const std::vector<int> limits{2, 2};
  const auto configs = enumerate_multi(specs, limits);
  const auto serial = multi.evaluate_all(configs, 1e5, false);
  const auto parallel = multi.evaluate_all(configs, 1e5, true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].t_s, parallel[i].t_s);
    EXPECT_DOUBLE_EQ(serial[i].energy_j, parallel[i].energy_j);
  }
}

TEST(MultiEvaluator, RejectsMismatchedConfig) {
  NodeTypeModel a9(arm_cortex_a9(), make_inputs(160.0),
                   make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4));
  const MultiEvaluator multi({&a9});
  MultiClusterConfig two_types;
  two_types.per_type = {NodeConfig{1, 1, 0.2}, NodeConfig{1, 1, 0.8}};
  EXPECT_THROW(multi.evaluate(two_types, 1.0), ContractViolation);
  MultiClusterConfig all_absent;
  all_absent.per_type = {NodeConfig{0, 1, 0.2}};
  EXPECT_THROW(multi.evaluate(all_absent, 1.0), ContractViolation);
}

}  // namespace
}  // namespace hec
