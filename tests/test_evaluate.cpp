#include "hec/config/evaluate.h"

#include <gtest/gtest.h>

#include "hec/config/enumerate.h"
#include "hec/hw/catalog.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

WorkloadInputs make_inputs(double inst_per_unit) {
  WorkloadInputs in;
  in.inst_per_unit = inst_per_unit;
  in.wpi = 0.8;
  in.spi_core = 0.5;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.05, 1.0, 2}};
  in.ucpu = 1.0;
  return in;
}

PowerParams make_power(std::vector<double> freqs, double idle) {
  PowerParams p;
  p.core_active_w.assign(freqs.size(), 1.0);
  p.core_stall_w.assign(freqs.size(), 0.6);
  p.freqs_ghz = std::move(freqs);
  p.mem_active_w = 0.5;
  p.io_active_w = 0.5;
  p.idle_w = idle;
  return p;
}

struct Models {
  NodeTypeModel arm{arm_cortex_a9(), make_inputs(160.0),
                    make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4)};
  NodeTypeModel amd{amd_opteron_k10(), make_inputs(120.0),
                    make_power({0.8, 1.5, 2.1}, 45.0)};
};

TEST(ConfigEvaluator, HomogeneousAssignsAllWorkToOneSide) {
  const Models m;
  const ConfigEvaluator eval(m.arm, m.amd);
  ClusterConfig arm_only{NodeConfig{4, 4, 1.4}, NodeConfig{0, 1, 0.8}};
  const ConfigOutcome a = eval.evaluate(arm_only, 1e6);
  EXPECT_DOUBLE_EQ(a.units_arm, 1e6);
  EXPECT_DOUBLE_EQ(a.units_amd, 0.0);
  EXPECT_GT(a.t_s, 0.0);
  ClusterConfig amd_only{NodeConfig{0, 1, 0.2}, NodeConfig{2, 6, 2.1}};
  const ConfigOutcome d = eval.evaluate(amd_only, 1e6);
  EXPECT_DOUBLE_EQ(d.units_amd, 1e6);
}

TEST(ConfigEvaluator, HeterogeneousSplitsAndIsFasterThanEitherSide) {
  const Models m;
  const ConfigEvaluator eval(m.arm, m.amd);
  ClusterConfig mixed{NodeConfig{4, 4, 1.4}, NodeConfig{2, 6, 2.1}};
  const ConfigOutcome mix = eval.evaluate(mixed, 1e6);
  EXPECT_NEAR(mix.units_arm + mix.units_amd, 1e6, 1e-6);
  ClusterConfig arm_only = mixed;
  arm_only.amd.nodes = 0;
  ClusterConfig amd_only = mixed;
  amd_only.arm.nodes = 0;
  EXPECT_LT(mix.t_s, eval.evaluate(arm_only, 1e6).t_s);
  EXPECT_LT(mix.t_s, eval.evaluate(amd_only, 1e6).t_s);
}

TEST(ConfigEvaluator, ParallelMatchesSerial) {
  const Models m;
  const ConfigEvaluator eval(m.arm, m.amd);
  const auto configs = enumerate_configs(arm_cortex_a9(), amd_opteron_k10(),
                                         EnumerationLimits{2, 2});
  const auto serial = eval.evaluate_all(configs, 1e5, /*parallel=*/false);
  const auto parallel = eval.evaluate_all(configs, 1e5, /*parallel=*/true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].t_s, parallel[i].t_s);
    EXPECT_DOUBLE_EQ(serial[i].energy_j, parallel[i].energy_j);
  }
}

TEST(ConfigEvaluator, PoweredIdleCountsOnlyUsedSides) {
  const Models m;
  const ConfigEvaluator eval(m.arm, m.amd);
  ClusterConfig mixed{NodeConfig{4, 4, 1.4}, NodeConfig{2, 6, 2.1}};
  EXPECT_NEAR(eval.powered_idle_w(mixed), 4 * 1.4 + 2 * 45.0, 1e-9);
  mixed.amd.nodes = 0;
  EXPECT_NEAR(eval.powered_idle_w(mixed), 4 * 1.4, 1e-9);
}

TEST(ConfigEvaluator, RejectsEmptyConfigAndZeroWork) {
  const Models m;
  const ConfigEvaluator eval(m.arm, m.amd);
  ClusterConfig empty{NodeConfig{0, 1, 0.2}, NodeConfig{0, 1, 0.8}};
  EXPECT_THROW(eval.evaluate(empty, 1.0), ContractViolation);
  ClusterConfig ok{NodeConfig{1, 1, 0.2}, NodeConfig{0, 1, 0.8}};
  EXPECT_THROW(eval.evaluate(ok, 0.0), ContractViolation);
}

TEST(ConfigEvaluator, MoreNodesNeverSlower) {
  const Models m;
  const ConfigEvaluator eval(m.arm, m.amd);
  double prev = 1e300;
  for (int n = 1; n <= 8; ++n) {
    ClusterConfig c{NodeConfig{n, 4, 1.4}, NodeConfig{0, 1, 0.8}};
    const double t = eval.evaluate(c, 1e6).t_s;
    EXPECT_LT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace hec
