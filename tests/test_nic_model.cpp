#include "hec/sim/nic_model.h"

#include <gtest/gtest.h>

namespace hec {
namespace {

TEST(NicModel, SingleTransferTiming) {
  NicModel nic(1000.0);  // 1000 B/s
  const double done = nic.admit(0.0, 500.0);
  EXPECT_DOUBLE_EQ(done, 0.5);
  EXPECT_DOUBLE_EQ(nic.busy_s(), 0.5);
  EXPECT_DOUBLE_EQ(nic.total_bytes(), 500.0);
}

TEST(NicModel, BackToBackTransfersSerialize) {
  NicModel nic(100.0);
  EXPECT_DOUBLE_EQ(nic.admit(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(nic.admit(0.0, 100.0), 2.0);  // waits for the link
  EXPECT_DOUBLE_EQ(nic.busy_s(), 2.0);
}

TEST(NicModel, ArrivalLimitedTransfersLeaveGaps) {
  NicModel nic(100.0);
  EXPECT_DOUBLE_EQ(nic.admit(0.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(nic.admit(5.0, 10.0), 5.1);  // idle 0.1 .. 5.0
  EXPECT_DOUBLE_EQ(nic.busy_s(), 0.2);          // only wire time counts
}

TEST(NicModel, SteadyStateRateIsMaxOfTransferAndArrival) {
  // Eq. 11's structure: spacing converges to max(transfer, inter-arrival).
  NicModel fast_link(1e6);
  double arrival = 0.0;
  double completion = 0.0;
  for (int i = 0; i < 100; ++i) {
    arrival += 0.01;  // inter-arrival 10 ms
    completion = fast_link.admit(arrival, 100.0);  // transfer 0.1 ms
  }
  EXPECT_NEAR(completion, 100 * 0.01 + 1e-4, 1e-9);  // arrival-limited

  NicModel slow_link(1000.0);
  arrival = 0.0;
  for (int i = 0; i < 100; ++i) {
    arrival += 0.01;
    completion = slow_link.admit(arrival, 100.0);  // transfer 100 ms
  }
  EXPECT_NEAR(completion, 0.01 + 100 * 0.1, 1e-9);  // bandwidth-limited
}

TEST(NicModel, ZeroByteTransferIsInstant) {
  NicModel nic(100.0);
  EXPECT_DOUBLE_EQ(nic.admit(1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(nic.busy_s(), 0.0);
}

TEST(NicModel, RejectsInvalidArguments) {
  EXPECT_THROW(NicModel(0.0), ContractViolation);
  EXPECT_THROW(NicModel(-5.0), ContractViolation);
  NicModel nic(10.0);
  EXPECT_THROW(nic.admit(-1.0, 5.0), ContractViolation);
  EXPECT_THROW(nic.admit(0.0, -5.0), ContractViolation);
}

TEST(NicModel, LastCompletionTracksTail) {
  NicModel nic(10.0);
  EXPECT_DOUBLE_EQ(nic.last_completion_s(), 0.0);
  nic.admit(0.0, 10.0);
  EXPECT_DOUBLE_EQ(nic.last_completion_s(), 1.0);
  nic.admit(10.0, 10.0);
  EXPECT_DOUBLE_EQ(nic.last_completion_s(), 11.0);
}

}  // namespace
}  // namespace hec
