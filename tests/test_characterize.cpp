#include "hec/model/characterize.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"

namespace hec {
namespace {

CharacterizeOptions fast_opts() {
  CharacterizeOptions opts;
  opts.baseline_units = 5000.0;
  opts.noise_sigma = 0.0;  // noiseless: measured == demand parameters
  opts.run_bias_sigma = 0.0;
  return opts;
}

TEST(CharacterizeWorkload, RecoversDemandParameters) {
  const NodeSpec arm = arm_cortex_a9();
  const Workload ep = workload_ep();
  const WorkloadInputs in =
      characterize_workload(arm, ep.demand_arm, fast_opts());
  EXPECT_NEAR(in.inst_per_unit, ep.demand_arm.instructions_per_unit, 1e-6);
  EXPECT_NEAR(in.wpi, ep.demand_arm.wpi, 1e-9);
  EXPECT_NEAR(in.spi_core, ep.demand_arm.spi_core, 1e-9);
  EXPECT_NEAR(in.ucpu, 1.0, 0.02);  // compute-bound keeps cores busy
  EXPECT_DOUBLE_EQ(in.io_bytes_per_unit, 0.0);
}

TEST(CharacterizeWorkload, SpiMemFitsAreLinearWithHighR2) {
  // The paper's Fig. 3 claim: r^2 >= 0.94 for SPImem over frequency.
  const NodeSpec amd = amd_opteron_k10();
  const Workload x264 = workload_x264();
  CharacterizeOptions opts = fast_opts();
  opts.noise_sigma = 0.03;  // even with measurement noise
  opts.run_bias_sigma = 0.02;
  const WorkloadInputs in =
      characterize_workload(amd, x264.demand_amd, opts);
  ASSERT_EQ(in.spi_mem_by_cores.size(), static_cast<std::size_t>(amd.cores));
  for (const LinearFit& fit : in.spi_mem_by_cores) {
    EXPECT_GE(fit.r_squared, 0.94);
    EXPECT_GT(fit.slope, 0.0);
  }
}

TEST(CharacterizeWorkload, ContentionRaisesSpiMemSlope) {
  const NodeSpec arm = arm_cortex_a9();
  const WorkloadInputs in =
      characterize_workload(arm, workload_x264().demand_arm, fast_opts());
  // More contending cores -> steeper SPImem growth with frequency.
  EXPECT_GT(in.spi_mem_by_cores.back().slope,
            in.spi_mem_by_cores.front().slope);
}

TEST(CharacterizeWorkload, IoBoundWorkloadMeasured) {
  const NodeSpec arm = arm_cortex_a9();
  const Workload mc = workload_memcached();
  const WorkloadInputs in =
      characterize_workload(arm, mc.demand_arm, fast_opts());
  EXPECT_NEAR(in.io_bytes_per_unit, 800.0, 1.0);
  // Effective per-unit I/O time = max(transfer, floor) = 64 us at 100 Mbps.
  EXPECT_NEAR(in.io_s_per_unit, 800.0 / 12.5e6, 800.0 / 12.5e6 * 0.05);
  EXPECT_LT(in.ucpu, 0.2);  // cores starve behind the NIC
}

TEST(CharacterizePower, MatchesSpecCurves) {
  const NodeSpec arm = arm_cortex_a9();
  const PowerParams p = characterize_power(arm, fast_opts());
  ASSERT_EQ(p.freqs_ghz.size(), arm.pstates.size());
  EXPECT_NEAR(p.idle_w, arm.idle_node_w(), 1e-9);
  for (std::size_t i = 0; i < p.freqs_ghz.size(); ++i) {
    const double f = p.freqs_ghz[i];
    EXPECT_NEAR(p.core_active_w[i],
                arm.core_active.at(f) - arm.core_idle_w, 0.02)
        << "f=" << f;
    EXPECT_NEAR(p.core_stall_w[i],
                arm.core_stall.at(f) - arm.core_idle_w, 0.05)
        << "f=" << f;
  }
  EXPECT_NEAR(p.mem_active_w,
              arm.memory_power.active_w - arm.memory_power.idle_w, 0.05);
  // I/O increment includes the DMA-driven memory activity.
  EXPECT_GT(p.io_active_w, arm.io_power.active_w - arm.io_power.idle_w);
}

TEST(CharacterizePower, ActiveExceedsStallAtEveryPState) {
  const PowerParams p = characterize_power(amd_opteron_k10(), fast_opts());
  for (std::size_t i = 0; i < p.freqs_ghz.size(); ++i) {
    EXPECT_GT(p.core_active_w[i], p.core_stall_w[i]);
    if (i > 0) {
      EXPECT_GT(p.core_active_w[i], p.core_active_w[i - 1]);
    }
  }
}

TEST(BuildNodeModel, EndToEndPipeline) {
  const NodeTypeModel m =
      build_node_model(arm_cortex_a9(), workload_ep(), fast_opts());
  const Prediction p = m.predict(1e6, NodeConfig{1, 4, 1.4});
  EXPECT_GT(p.t_s, 0.0);
  EXPECT_GT(p.energy_j(), 0.0);
  // Sanity: within the node's power envelope.
  const double avg_w = p.energy_j() / p.t_s;
  EXPECT_GT(avg_w, m.power().idle_w * 0.99);
  EXPECT_LT(avg_w, arm_cortex_a9().peak_node_w() * 1.1);
}

}  // namespace
}  // namespace hec
