#include "hec/cluster/schedulers.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

WorkloadInputs make_inputs(double inst_per_unit) {
  WorkloadInputs in;
  in.inst_per_unit = inst_per_unit;
  in.wpi = 0.8;
  in.spi_core = 0.5;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.05, 1.0, 2}};
  in.ucpu = 1.0;
  return in;
}

PowerParams make_power(std::vector<double> freqs, double idle) {
  PowerParams p;
  p.core_active_w.assign(freqs.size(), 1.0);
  p.core_stall_w.assign(freqs.size(), 0.6);
  p.freqs_ghz = std::move(freqs);
  p.mem_active_w = 0.5;
  p.io_active_w = 0.5;
  p.idle_w = idle;
  return p;
}

struct Fixture {
  NodeTypeModel arm{arm_cortex_a9(), make_inputs(160.0),
                    make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4)};
  NodeTypeModel amd{amd_opteron_k10(), make_inputs(120.0),
                    make_power({0.8, 1.5, 2.1}, 45.0)};
  ClusterConfig mixed{NodeConfig{8, 4, 1.4}, NodeConfig{2, 6, 2.1}};
};

TEST(MatchingScheduler, SharesSumAndFinishTogether) {
  const Fixture f;
  const MatchingScheduler sched(f.arm, f.amd);
  const SplitAssignment split = sched.assign(1e6, f.mixed);
  EXPECT_NEAR(split.units_arm + split.units_amd, 1e6, 1e-6);
  const double t_arm = f.arm.predict(split.units_arm, f.mixed.arm).t_s;
  const double t_amd = f.amd.predict(split.units_amd, f.mixed.amd).t_s;
  EXPECT_NEAR(t_arm, t_amd, std::max(t_arm, t_amd) * 1e-9);
  EXPECT_EQ(sched.name(), "mix-and-match");
}

TEST(MatchingScheduler, HomogeneousGetsEverything) {
  const Fixture f;
  const MatchingScheduler sched(f.arm, f.amd);
  ClusterConfig arm_only = f.mixed;
  arm_only.amd.nodes = 0;
  const SplitAssignment split = sched.assign(1e5, arm_only);
  EXPECT_DOUBLE_EQ(split.units_arm, 1e5);
  EXPECT_DOUBLE_EQ(split.units_amd, 0.0);
}

TEST(EqualSplitScheduler, SplitsByNodeCount) {
  const Fixture f;
  const EqualSplitScheduler sched;
  const SplitAssignment split = sched.assign(1000.0, f.mixed);
  EXPECT_DOUBLE_EQ(split.units_arm, 800.0);  // 8 of 10 nodes
  EXPECT_DOUBLE_EQ(split.units_amd, 200.0);
}

TEST(EqualSplitScheduler, LeavesFasterSideIdle) {
  // Equal split ignores per-node speed: completion is worse than matched.
  const Fixture f;
  const MatchingScheduler matched(f.arm, f.amd);
  const EqualSplitScheduler equal;
  const double w = 1e6;
  auto completion = [&](const SplitAssignment& s) {
    return std::max(f.arm.predict(s.units_arm, f.mixed.arm).t_s,
                    f.amd.predict(s.units_amd, f.mixed.amd).t_s);
  };
  EXPECT_GT(completion(equal.assign(w, f.mixed)),
            completion(matched.assign(w, f.mixed)) * 1.05);
}

TEST(CoreProportionalScheduler, UsesAggregateGhz) {
  const Fixture f;
  const CoreProportionalScheduler sched;
  const SplitAssignment split = sched.assign(1000.0, f.mixed);
  // ARM: 8 x 4 x 1.4 = 44.8 GHz; AMD: 2 x 6 x 2.1 = 25.2 GHz.
  EXPECT_NEAR(split.units_arm, 1000.0 * 44.8 / 70.0, 1e-9);
  EXPECT_NEAR(split.units_amd, 1000.0 * 25.2 / 70.0, 1e-9);
}

TEST(Schedulers, RejectNonPositiveWork) {
  const Fixture f;
  const EqualSplitScheduler sched;
  EXPECT_THROW(sched.assign(0.0, f.mixed), ContractViolation);
}

TEST(ThresholdSwitch, PrefersLowPowerWhenFeasible) {
  std::vector<ConfigOutcome> outcomes(3);
  // ARM-only: slow but cheap.
  outcomes[0].config = {NodeConfig{8, 4, 1.4}, NodeConfig{0, 1, 0.8}};
  outcomes[0].t_s = 0.5;
  outcomes[0].energy_j = 2.0;
  // AMD-only: fast but costly.
  outcomes[1].config = {NodeConfig{0, 1, 0.2}, NodeConfig{4, 6, 2.1}};
  outcomes[1].t_s = 0.05;
  outcomes[1].energy_j = 10.0;
  // Heterogeneous: must be ignored by the switching baseline.
  outcomes[2].config = {NodeConfig{8, 4, 1.4}, NodeConfig{4, 6, 2.1}};
  outcomes[2].t_s = 0.04;
  outcomes[2].energy_j = 5.0;

  // Relaxed deadline: low-power side wins.
  auto relaxed = threshold_switch_choice(outcomes, 1.0);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_FALSE(relaxed->config.uses_amd());
  // Tight deadline: switch to high-performance.
  auto tight = threshold_switch_choice(outcomes, 0.1);
  ASSERT_TRUE(tight.has_value());
  EXPECT_FALSE(tight->config.uses_arm());
  // Impossible deadline: nothing (heterogeneous point excluded).
  EXPECT_FALSE(threshold_switch_choice(outcomes, 0.045).has_value());
}

TEST(ThresholdSwitch, PicksCheapestWithinSide) {
  std::vector<ConfigOutcome> outcomes(2);
  outcomes[0].config = {NodeConfig{8, 4, 1.4}, NodeConfig{0, 1, 0.8}};
  outcomes[0].t_s = 0.5;
  outcomes[0].energy_j = 3.0;
  outcomes[1].config = {NodeConfig{8, 4, 1.1}, NodeConfig{0, 1, 0.8}};
  outcomes[1].t_s = 0.6;
  outcomes[1].energy_j = 2.5;
  const auto choice = threshold_switch_choice(outcomes, 1.0);
  ASSERT_TRUE(choice.has_value());
  EXPECT_DOUBLE_EQ(choice->energy_j, 2.5);
}

}  // namespace
}  // namespace hec
