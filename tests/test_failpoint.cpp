// Deterministic failpoint framework (hec/util/failpoint.h): the
// HEC_FAILPOINT grammar, nth-hit triggering, the three modes, and the
// armed/disarmed fast path. Crash mode is validated in a forked child
// (death test) because it SIGKILLs the process.
#include "hec/util/failpoint.h"

#include <gtest/gtest.h>
#include <signal.h>

#include <chrono>
#include <cstdlib>

namespace hec::util {
namespace {

// Every test leaves the process disarmed, so tests can run in any order.
class Failpoints : public ::testing::Test {
 protected:
  void TearDown() override { set_failpoints({}); }
};

TEST_F(Failpoints, ParsesSingleEntryWithDefaults) {
  const auto specs = parse_failpoints("journal.commit:3");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].site, "journal.commit");
  EXPECT_EQ(specs[0].nth, 3u);
  EXPECT_EQ(specs[0].mode, FailpointMode::kCrash);
}

TEST_F(Failpoints, ParsesModeAndMultipleEntries) {
  const auto specs =
      parse_failpoints("sweep.block:2:error,io.atomic_write.fsync:1:delay");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].site, "sweep.block");
  EXPECT_EQ(specs[0].nth, 2u);
  EXPECT_EQ(specs[0].mode, FailpointMode::kError);
  EXPECT_EQ(specs[1].site, "io.atomic_write.fsync");
  EXPECT_EQ(specs[1].mode, FailpointMode::kDelay);
}

TEST_F(Failpoints, EmptyTextArmsNothing) {
  EXPECT_TRUE(parse_failpoints("").empty());
}

TEST_F(Failpoints, RejectsMalformedGrammar) {
  EXPECT_THROW(parse_failpoints("siteonly"), FailpointParseError);
  EXPECT_THROW(parse_failpoints(":1"), FailpointParseError);
  EXPECT_THROW(parse_failpoints("site:0"), FailpointParseError);
  EXPECT_THROW(parse_failpoints("site:abc"), FailpointParseError);
  EXPECT_THROW(parse_failpoints("site:1:explode"), FailpointParseError);
  EXPECT_THROW(parse_failpoints("a:1,,b:1"), FailpointParseError);
}

TEST_F(Failpoints, UnarmedProcessIgnoresHits) {
  EXPECT_FALSE(failpoints_armed());
  HEC_FAILPOINT_HIT("anything");  // must be a free no-op
  EXPECT_EQ(failpoint_hits("anything"), 0u);
}

TEST_F(Failpoints, ErrorModeFiresOnNthHitOnly) {
  set_failpoints({{"fp.test", 3, FailpointMode::kError}});
  EXPECT_TRUE(failpoints_armed());
  HEC_FAILPOINT_HIT("fp.test");
  HEC_FAILPOINT_HIT("fp.test");
  EXPECT_EQ(failpoint_hits("fp.test"), 2u);
  EXPECT_THROW(HEC_FAILPOINT_HIT("fp.test"), InjectedFault);
  // Past the nth hit the site is spent: the run can continue.
  HEC_FAILPOINT_HIT("fp.test");
  EXPECT_EQ(failpoint_hits("fp.test"), 4u);
}

TEST_F(Failpoints, OtherSitesDoNotTrigger) {
  set_failpoints({{"fp.armed", 1, FailpointMode::kError}});
  HEC_FAILPOINT_HIT("fp.other");  // unarmed site: no effect, no count
  EXPECT_EQ(failpoint_hits("fp.other"), 0u);
  EXPECT_THROW(HEC_FAILPOINT_HIT("fp.armed"), InjectedFault);
}

TEST_F(Failpoints, SetFailpointsResetsCounters) {
  set_failpoints({{"fp.reset", 10, FailpointMode::kError}});
  HEC_FAILPOINT_HIT("fp.reset");
  set_failpoints({{"fp.reset", 10, FailpointMode::kError}});
  EXPECT_EQ(failpoint_hits("fp.reset"), 0u);
}

TEST_F(Failpoints, SameSiteSpecsShareOneCounterAndFireIndependently) {
  // Two specs for one site (the kill-two-workers grammar, e.g.
  // "shard.heartbeat:2:crash,shard.heartbeat:4:crash") count hits on a
  // single shared counter and each fires at its own nth.
  set_failpoints({{"fp.multi", 2, FailpointMode::kError},
                  {"fp.multi", 4, FailpointMode::kError}});
  HEC_FAILPOINT_HIT("fp.multi");                       // hit 1: quiet
  EXPECT_THROW(HEC_FAILPOINT_HIT("fp.multi"), InjectedFault);  // hit 2
  HEC_FAILPOINT_HIT("fp.multi");                       // hit 3: quiet
  EXPECT_THROW(HEC_FAILPOINT_HIT("fp.multi"), InjectedFault);  // hit 4
  HEC_FAILPOINT_HIT("fp.multi");                       // hit 5: spent
  EXPECT_EQ(failpoint_hits("fp.multi"), 5u)
      << "one counter for the site, not one per spec";
}

TEST_F(Failpoints, ParsesRepeatedSitesAsSeparateSpecs) {
  const auto specs = parse_failpoints("fp.dup:1:error,fp.dup:3:delay");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].site, specs[1].site);
  EXPECT_EQ(specs[0].nth, 1u);
  EXPECT_EQ(specs[1].nth, 3u);
  EXPECT_EQ(specs[1].mode, FailpointMode::kDelay);
}

TEST_F(Failpoints, SameNthTwiceFiresOnceNotTwice) {
  // Degenerate but legal: two specs naming the same hit. The first
  // match wins; the hit still advances the shared counter once.
  set_failpoints({{"fp.same", 2, FailpointMode::kError},
                  {"fp.same", 2, FailpointMode::kDelay}});
  HEC_FAILPOINT_HIT("fp.same");
  EXPECT_THROW(HEC_FAILPOINT_HIT("fp.same"), InjectedFault);
  EXPECT_EQ(failpoint_hits("fp.same"), 2u);
}

TEST_F(Failpoints, DelayModeContinues) {
  set_failpoints({{"fp.delay", 1, FailpointMode::kDelay}});
  const auto start = std::chrono::steady_clock::now();
  HEC_FAILPOINT_HIT("fp.delay");
  const std::chrono::duration<double> dur =
      std::chrono::steady_clock::now() - start;
  EXPECT_GE(dur.count(), 0.05) << "delay mode should stall ~100 ms";
  EXPECT_EQ(failpoint_hits("fp.delay"), 1u);
}

TEST_F(Failpoints, CrashModeKillsTheProcess) {
  // SIGKILL means no destructors and no flushes — exactly the crash the
  // journal's durability story is built against.
  EXPECT_EXIT(
      {
        set_failpoints({{"fp.crash", 1, FailpointMode::kCrash}});
        HEC_FAILPOINT_HIT("fp.crash");
      },
      ::testing::KilledBySignal(SIGKILL), "");
}

TEST_F(Failpoints, ArmsFromEnvironment) {
  setenv("HEC_FAILPOINT", "fp.env:2:error", 1);
  EXPECT_EQ(arm_failpoints_from_env(), 1u);
  HEC_FAILPOINT_HIT("fp.env");
  EXPECT_THROW(HEC_FAILPOINT_HIT("fp.env"), InjectedFault);
  unsetenv("HEC_FAILPOINT");
  EXPECT_EQ(arm_failpoints_from_env(), 0u);  // unset env arms nothing new
}

TEST_F(Failpoints, BadEnvironmentGrammarThrowsParseError) {
  setenv("HEC_FAILPOINT", "nonsense", 1);
  EXPECT_THROW(arm_failpoints_from_env(), FailpointParseError);
  unsetenv("HEC_FAILPOINT");
}

}  // namespace
}  // namespace hec::util
