// Socket transport for sharded sweeps (hec/shard/transport.h +
// worker_loop.h): the frame codec rejects every corruption it can see,
// endpoints parse strictly, and a coordinator listening on loopback
// merges frontiers bit-identical to the single-process sweep — under
// clean runs, k-of-n worker SIGKILLs, injected write faults forcing
// reconnects, corrupted frames (quarantine + requeue), a blackholed
// "partition" healed by lease expiry, garbage clients, and handshake
// rejection of a worker built for a different space. Faults are
// deterministic (HEC_FAILPOINT sites armed per forked process), so
// every path runs without flaky timing.
#include "hec/shard/transport.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "hec/obs/metrics.h"
#include "hec/pareto/streaming.h"
#include "hec/shard/result_file.h"
#include "hec/shard/shard.h"
#include "hec/shard/telemetry.h"
#include "hec/shard/worker_loop.h"
#include "hec/util/atomic_file.h"
#include "hec/util/env.h"
#include "hec/util/failpoint.h"

namespace hec::shard {
namespace {

constexpr std::size_t kTotal = 20000;

/// Same synthetic space as test_sharded_sweep.cpp: pure arithmetic, so
/// the coordinator and every forked worker agree bit for bit.
void eval_points(std::size_t first, std::size_t count,
                 ParetoAccumulator& acc) {
  for (std::size_t i = first; i < first + count; ++i) {
    const double t = 1.0 + static_cast<double>((i * 7919 + 13) % 613) * 0.01;
    const double e =
        1.0 + static_cast<double>((i * 2654435761ULL + 7) % 997) * 0.01;
    acc.add({t, e, i});
  }
}

ShardedSweepSpec synthetic_spec() {
  ShardedSweepSpec spec;
  spec.signature = "synthetic-points v1";
  spec.total = kTotal;
  spec.claim = 256;
  spec.body = eval_points;
  return spec;
}

std::vector<TimeEnergyPoint> reference_frontier(const IndexRange& range) {
  ParetoAccumulator acc;
  eval_points(range.first, range.size(), acc);
  return acc.take();
}

std::string fresh_state_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "transport_" + name;
  for (std::size_t id = 0; id < 64; ++id) {
    std::remove(shard_result_path(dir, id).c_str());
    std::remove(shard_journal_path(dir, id).c_str());
  }
  for (std::uint64_t a = 1; a <= 64; ++a) {
    std::remove(shard_telemetry_path(dir, a).c_str());
  }
  return dir;
}

void expect_identical_frontiers(const std::vector<TimeEnergyPoint>& got,
                                const std::vector<TimeEnergyPoint>& want,
                                const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " frontier point " << i;
  }
}

double net_counter(const char* name) {
  return obs::registry().counter(name).value();
}

/// Forks a child that serves `spec` to the loopback coordinator and
/// exits 0 (served), 1 (never served) or 2 (threw). Failpoints are
/// armed inside the child AFTER the fork, so each worker process gets
/// its own fault script while the coordinator process stays clean.
pid_t fork_worker(const ShardedSweepSpec& spec, std::uint16_t port,
                  const std::string& state_dir,
                  std::vector<util::FailpointSpec> faults = {},
                  double net_timeout_s = 1.0, std::size_t max_redials = 60,
                  double dial_delay_s = 0.0) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  util::set_failpoints(std::move(faults));
  if (dial_delay_s > 0.0) {
    ::usleep(static_cast<unsigned>(dial_delay_s * 1e6));
  }
  WorkerLoopOptions wop;
  wop.connect = {"127.0.0.1", port};
  wop.state_dir = state_dir;
  wop.net_timeout_s = net_timeout_s;
  wop.heartbeat_interval_s = 0.01;
  wop.redial_backoff_s = 0.02;
  wop.redial_backoff_max_s = 0.2;
  wop.max_redials = max_redials;
  try {
    const WorkerLoopResult r = run_worker_loop(spec, wop);
    ::_exit(r.served ? 0 : 1);
  } catch (...) {
    ::_exit(2);
  }
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
}

class ShardTransport : public ::testing::Test {
 protected:
  void TearDown() override { util::set_failpoints({}); }
};

// ---------------------------------------------------------------------
// Frame codec.

TEST_F(ShardTransport, FrameRoundTripsArbitraryLines) {
  const std::string cases[] = {
      "", "D 1 2", "A 3 7 100 200 9",
      "F 1 2 injected fault at 'shard.heartbeat' (hit 2)",
      std::string(4096, 'x'), "line with  double  spaces"};
  for (const std::string& line : cases) {
    const std::string frame = frame_line(line);
    EXPECT_EQ(frame.back(), '\n');
    std::string why;
    const std::optional<std::string> back = unframe_line(frame, &why);
    ASSERT_TRUE(back.has_value()) << why << " for '" << line << "'";
    EXPECT_EQ(*back, line);
    // Newline optional on the way in, like a LineBuffer-split line.
    EXPECT_EQ(unframe_line(frame.substr(0, frame.size() - 1), &why), line);
  }
}

TEST_F(ShardTransport, FrameCatchesEverySingleByteFlip) {
  const std::string frame = frame_line("D 12 34");
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    for (const int bit : {0x01, 0x10, 0x80}) {
      std::string bent = frame;
      bent[i] = static_cast<char>(bent[i] ^ bit);
      if (bent[i] == '\n') continue;  // would split, not corrupt, the line
      std::string why;
      const auto got = unframe_line(bent, &why);
      // Any surviving parse must at least not silently change payload.
      if (got.has_value()) {
        EXPECT_EQ(*got, "D 12 34") << "flip at " << i;
      } else {
        EXPECT_FALSE(why.empty()) << "flip at " << i;
      }
    }
  }
  // A flipped payload byte specifically must never verify.
  std::string bent = frame;
  bent[bent.size() - 3] ^= 0x04;
  std::string why;
  EXPECT_FALSE(unframe_line(bent, &why).has_value());
  EXPECT_FALSE(why.empty());
}

TEST_F(ShardTransport, FrameRejectsStructuralGarbage) {
  std::string why;
  const std::string bad[] = {
      "",                       // empty
      "D 1 2",                  // bare line, no frame marker
      "#",                      // marker alone
      "#zz:00000000 x",         // unparseable length
      "#5 D 1 2",               // missing crc field
      "#400001:00000000 x",     // length over kMaxFramePayload
      "#3:00000000 D 1 2",      // length does not match payload
      "#7:deadbeef D 1 2",      // wrong crc
  };
  for (const std::string& frame : bad) {
    why.clear();
    EXPECT_FALSE(unframe_line(frame, &why).has_value()) << frame;
    EXPECT_FALSE(why.empty()) << frame;
  }
}

TEST_F(ShardTransport, FrameLengthIsBoundedByDesign) {
  // A peer claiming a giant length must be rejected before any caller
  // tries to buffer that much.
  char header[64];
  std::snprintf(header, sizeof(header), "#%zx:%08x x",
                kMaxFramePayload + 1, frame_crc("x"));
  std::string why;
  EXPECT_FALSE(unframe_line(header, &why).has_value());
  EXPECT_FALSE(why.empty());
}

// ---------------------------------------------------------------------
// Space fingerprints (the handshake's authentication token).

TEST_F(ShardTransport, SpaceFingerprintIsStableAndDiscriminating) {
  const ShardedSweepSpec a = synthetic_spec();
  ShardedSweepSpec b = synthetic_spec();
  EXPECT_EQ(space_fingerprint(a), space_fingerprint(b));

  b.signature = "synthetic-points v2";
  EXPECT_NE(space_fingerprint(a), space_fingerprint(b));
  b = synthetic_spec();
  b.total = kTotal + 1;
  EXPECT_NE(space_fingerprint(a), space_fingerprint(b));
  b = synthetic_spec();
  b.work_units = 2.0;
  EXPECT_NE(space_fingerprint(a), space_fingerprint(b));
  // The seed frontier is per-assignment state, not part of the space.
  b = synthetic_spec();
  b.seed_frontier = {{1.0, 2.0, 3}};
  EXPECT_EQ(space_fingerprint(a), space_fingerprint(b));
}

// ---------------------------------------------------------------------
// Endpoint grammar.

TEST_F(ShardTransport, EndpointParsesHostPortForms) {
  const util::Endpoint a = util::parse_endpoint("example.org:8080", "test");
  EXPECT_EQ(a.host, "example.org");
  EXPECT_EQ(a.port, 8080);
  const util::Endpoint b = util::parse_endpoint(":39471", "test");
  EXPECT_TRUE(b.host.empty());
  EXPECT_EQ(b.port, 39471);
  const util::Endpoint c = util::parse_endpoint("39471", "test");
  EXPECT_TRUE(c.host.empty());
  EXPECT_EQ(c.port, 39471);
}

TEST_F(ShardTransport, EndpointRejectsMalformedAndEphemeralDials) {
  for (const char* bad : {"", "host:", "host:port", "host:70000",
                          "host:-1", "host:80x"}) {
    EXPECT_THROW(util::parse_endpoint(bad, "test"), util::EnvParseError)
        << "'" << bad << "'";
  }
  // Port 0 only makes sense on the listen side.
  EXPECT_THROW(util::parse_endpoint("host:0", "test"), util::EnvParseError);
  EXPECT_EQ(util::parse_endpoint(":0", "test", /*allow_port_zero=*/true).port,
            0);
}

// ---------------------------------------------------------------------
// Listener.

TEST_F(ShardTransport, ListenerBindsEphemeralLoopbackPort) {
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  EXPECT_GE(listener.fd(), 0);
  EXPECT_GT(listener.port(), 0);
  // A second listener cannot take the same port while the first holds it
  // ... but CAN after close().
  const std::uint16_t port = listener.port();
  EXPECT_THROW(Listener(util::Endpoint{"127.0.0.1", port}), hec::IoError);
  listener.close();
  EXPECT_NO_THROW(Listener(util::Endpoint{"127.0.0.1", port}));
}

// ---------------------------------------------------------------------
// End-to-end over loopback TCP.

TEST_F(ShardTransport, SocketSweepIsBitIdenticalToReference) {
  const double accepts_before = net_counter("shard.net.accepts");
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  const ShardedSweepSpec spec = synthetic_spec();
  const std::string wdir = fresh_state_dir("identity_worker");
  const std::vector<pid_t> workers = {
      fork_worker(spec, listener.port(), wdir + "_a"),
      fork_worker(spec, listener.port(), wdir + "_b")};

  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("identity_coord");
  opts.listener = &listener;
  opts.net_timeout_s = 2.0;
  const ShardedSweepResult result = run_sharded(spec, opts);

  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.shards_complete, 4u);
  EXPECT_EQ(result.configs_visited, kTotal);
  EXPECT_TRUE(result.failed_shards.empty());
  expect_identical_frontiers(result.frontier, reference_frontier({0, kTotal}),
                             "socket identity");
  EXPECT_GE(net_counter("shard.net.accepts"), accepts_before + 2);
  for (const pid_t pid : workers) {
    EXPECT_EQ(wait_exit(pid), 0) << "worker should exit clean on bye";
  }
}

TEST_F(ShardTransport, KillTwoOfFourSocketWorkersIsBitIdentical) {
  // Two workers dial in first and SIGKILL themselves at the third
  // progress boundary of whatever attempt they are handed (every
  // plausible spawn ordinal's site is armed; only their own fires).
  // Two clean workers dial in late and absorb the requeued shards. The
  // socket closing is what reports the death — no lease timeout needed.
  std::vector<util::FailpointSpec> crash;
  for (int ordinal = 1; ordinal <= 16; ++ordinal) {
    crash.push_back({"shard.attempt." + std::to_string(ordinal), 3,
                     util::FailpointMode::kCrash});
  }
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  const ShardedSweepSpec spec = synthetic_spec();
  const std::string wdir = fresh_state_dir("kill_worker");
  const pid_t doomed_a =
      fork_worker(spec, listener.port(), wdir + "_a", crash);
  const pid_t doomed_b =
      fork_worker(spec, listener.port(), wdir + "_b", crash);
  const pid_t clean_a = fork_worker(spec, listener.port(), wdir + "_c", {},
                                    1.0, 60, /*dial_delay_s=*/0.25);
  const pid_t clean_b = fork_worker(spec, listener.port(), wdir + "_d", {},
                                    1.0, 60, /*dial_delay_s=*/0.25);

  ShardedSweepOptions opts;
  opts.workers = 4;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("kill_coord");
  opts.listener = &listener;
  opts.net_timeout_s = 2.0;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(spec, opts);

  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.reassignments, 2u);
  EXPECT_TRUE(result.failed_shards.empty());
  EXPECT_EQ(result.configs_visited, kTotal);
  expect_identical_frontiers(result.frontier, reference_frontier({0, kTotal}),
                             "kill 2-of-4 over TCP");
  // SIGKILLed mid-attempt: report the signal, not a clean exit.
  EXPECT_GT(wait_exit(doomed_a), 128);
  EXPECT_GT(wait_exit(doomed_b), 128);
  EXPECT_EQ(wait_exit(clean_a), 0);
  EXPECT_EQ(wait_exit(clean_b), 0);
}

TEST_F(ShardTransport, InjectedWriteFaultForcesAReconnect) {
  // The worker's third send dies (send 1 is the hello, so the fault
  // lands after the handshake): the link drops mid-run, the worker
  // redials with the live run id, and the coordinator counts a
  // reconnect. The merge must not show a trace of it.
  const double reconnects_before = net_counter("shard.net.reconnects");
  const double disconnects_before = net_counter("shard.net.disconnects");
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  const ShardedSweepSpec spec = synthetic_spec();
  const pid_t worker = fork_worker(
      spec, listener.port(), fresh_state_dir("reconnect_worker"),
      {{"net.write", 3, util::FailpointMode::kError}});

  ShardedSweepOptions opts;
  opts.workers = 1;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("reconnect_coord");
  opts.listener = &listener;
  opts.net_timeout_s = 2.0;
  opts.heartbeat_timeout_s = 1.0;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(spec, opts);

  EXPECT_TRUE(result.complete);
  expect_identical_frontiers(result.frontier, reference_frontier({0, kTotal}),
                             "reconnect");
  EXPECT_GE(net_counter("shard.net.reconnects"), reconnects_before + 1);
  EXPECT_GE(net_counter("shard.net.disconnects"), disconnects_before + 1);
  EXPECT_EQ(wait_exit(worker), 0);
}

TEST_F(ShardTransport, CorruptFrameIsQuarantinedAndRequeued) {
  // The worker's third outgoing frame has a byte flipped in flight. The
  // coordinator must reject the frame, quarantine the connection and
  // requeue the shard — and the worker, seeing its link die, redials
  // and finishes the run. Nothing crashes, nothing wedges, the merge is
  // exact.
  const double rejected_before = net_counter("shard.net.frames_rejected");
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  const ShardedSweepSpec spec = synthetic_spec();
  const pid_t worker = fork_worker(
      spec, listener.port(), fresh_state_dir("corrupt_worker"),
      {{"net.frame.corrupt", 3, util::FailpointMode::kError}});

  ShardedSweepOptions opts;
  opts.workers = 1;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("corrupt_coord");
  opts.listener = &listener;
  opts.net_timeout_s = 2.0;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(spec, opts);

  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.failed_shards.empty());
  expect_identical_frontiers(result.frontier, reference_frontier({0, kTotal}),
                             "corrupt frame");
  EXPECT_GE(net_counter("shard.net.frames_rejected"), rejected_before + 1);
  EXPECT_EQ(wait_exit(worker), 0);
}

TEST_F(ShardTransport, PartitionHealsThroughLeaseExpiryAndRedial) {
  // The first assignment is handed to a blackholed link: writes pretend
  // to succeed, reads discard, neither side sees a FIN — a real
  // partition. Recovery needs BOTH unilateral clocks: the coordinator's
  // lease expires (heartbeat silence) and requeues; the worker's idle
  // read window expires and it redials. The failpoint is armed in the
  // coordinator process AFTER the workers forked, so only the
  // coordinator-side site fires.
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  const ShardedSweepSpec spec = synthetic_spec();
  const std::string wdir = fresh_state_dir("partition_worker");
  // Short redial budgets: a worker caught mid-redial when the run ends
  // should drain out in tenths of a second, not keep the test waiting.
  const std::vector<pid_t> workers = {
      fork_worker(spec, listener.port(), wdir + "_a", {},
                  /*net_timeout_s=*/0.5, /*max_redials=*/10),
      fork_worker(spec, listener.port(), wdir + "_b", {},
                  /*net_timeout_s=*/0.5, /*max_redials=*/10)};
  const double partitions_before = net_counter("shard.net.partitions");
  util::set_failpoints({{"net.partition", 1, util::FailpointMode::kError}});

  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("partition_coord");
  opts.listener = &listener;
  opts.net_timeout_s = 0.5;
  opts.heartbeat_timeout_s = 0.4;
  opts.retry_backoff_s = 0.01;
  const ShardedSweepResult result = run_sharded(spec, opts);
  util::set_failpoints({});

  EXPECT_TRUE(result.complete);
  EXPECT_GE(result.reassignments, 1u);
  EXPECT_TRUE(result.failed_shards.empty());
  expect_identical_frontiers(result.frontier, reference_frontier({0, kTotal}),
                             "partition");
  EXPECT_GE(net_counter("shard.net.partitions"), partitions_before + 1);
  for (const pid_t pid : workers) {
    EXPECT_EQ(wait_exit(pid), 0);
  }
}

TEST_F(ShardTransport, GarbageClientCannotDerailTheRun) {
  // One peer speaks raw garbage (no frames, no handshake), another
  // sends a well-framed line that is not a hello. Both must be dropped
  // at the door while a real worker completes the sweep exactly.
  const double rejected_before = net_counter("shard.net.frames_rejected");
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  const std::uint16_t port = listener.port();
  const auto fork_garbage = [port](const std::string& bytes) {
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      (void)!::write(fd, bytes.data(), bytes.size());
      ::usleep(200000);  // linger so the drop is a decision, not a race
    }
    ::close(fd);
    ::_exit(0);
  };
  std::string raw_bytes = "MAIL FROM: mallory\r\n";
  raw_bytes.push_back('\0');
  raw_bytes += "\xff\n";
  const pid_t raw_garbage = fork_garbage(raw_bytes);
  const pid_t framed_nonsense = fork_garbage(frame_line("Z not a hello"));

  const ShardedSweepSpec spec = synthetic_spec();
  const pid_t worker =
      fork_worker(spec, listener.port(), fresh_state_dir("garbage_worker"));
  ShardedSweepOptions opts;
  opts.workers = 1;
  opts.shards = 2;
  opts.state_dir = fresh_state_dir("garbage_coord");
  opts.listener = &listener;
  opts.net_timeout_s = 1.0;
  const ShardedSweepResult result = run_sharded(spec, opts);

  EXPECT_TRUE(result.complete);
  expect_identical_frontiers(result.frontier, reference_frontier({0, kTotal}),
                             "garbage client");
  EXPECT_GE(net_counter("shard.net.frames_rejected"), rejected_before + 1);
  EXPECT_EQ(wait_exit(raw_garbage), 0);
  EXPECT_EQ(wait_exit(framed_nonsense), 0);
  EXPECT_EQ(wait_exit(worker), 0);
}

TEST_F(ShardTransport, HandshakeRejectsAWorkerBuiltForAnotherSpace) {
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  const ShardedSweepSpec spec = synthetic_spec();
  ShardedSweepSpec alien = synthetic_spec();
  alien.signature = "some other sweep entirely";
  // The alien worker gets a short redial budget so it gives up quickly;
  // exit 1 = "never served" is the contract under test.
  const pid_t imposter = fork_worker(
      alien, listener.port(), fresh_state_dir("alien_worker"), {},
      /*net_timeout_s=*/0.3, /*max_redials=*/2);
  const pid_t worker =
      fork_worker(spec, listener.port(), fresh_state_dir("honest_worker"));

  ShardedSweepOptions opts;
  opts.workers = 1;
  opts.shards = 2;
  opts.state_dir = fresh_state_dir("alien_coord");
  opts.listener = &listener;
  opts.net_timeout_s = 1.0;
  const ShardedSweepResult result = run_sharded(spec, opts);

  EXPECT_TRUE(result.complete);
  expect_identical_frontiers(result.frontier, reference_frontier({0, kTotal}),
                             "alien handshake");
  EXPECT_EQ(wait_exit(imposter), 1) << "mismatched space must never serve";
  EXPECT_EQ(wait_exit(worker), 0);
}

TEST_F(ShardTransport, DeadlineWithNoWorkersReportsAnEmptyPartial) {
  // Nobody ever dials in: the run must stop at its deadline with a
  // partial (empty) merge instead of waiting forever on the listener.
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  ShardedSweepOptions opts;
  opts.workers = 2;
  opts.shards = 4;
  opts.state_dir = fresh_state_dir("deadline_coord");
  opts.listener = &listener;
  opts.deadline_s = 0.4;
  const ShardedSweepResult result = run_sharded(synthetic_spec(), opts);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.deadline_hit);
  EXPECT_EQ(result.configs_visited, 0u);
  EXPECT_TRUE(result.frontier.empty());
}

TEST_F(ShardTransport, ListenerIsClosedAtEndOfRunEvenWhenBorrowed) {
  Listener listener(util::Endpoint{"127.0.0.1", 0});
  const std::uint16_t port = listener.port();
  ShardedSweepOptions opts;
  opts.workers = 1;
  opts.shards = 1;
  opts.state_dir = fresh_state_dir("close_coord");
  opts.listener = &listener;
  opts.deadline_s = 0.2;
  (void)run_sharded(synthetic_spec(), opts);
  // The port must be rebindable: orphaned workers drain out via
  // ECONNREFUSED instead of handshaking with a dead run.
  EXPECT_NO_THROW(Listener(util::Endpoint{"127.0.0.1", port}));
}

}  // namespace
}  // namespace hec::shard
