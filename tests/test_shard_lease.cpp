// LeaseTable (hec/shard/lease.h): the two timeouts and their remedies.
// Time is injected, so expiry is tested without sleeping; the final
// test hammers the table from several threads because the coordinator's
// monitor thread and main loop use it concurrently (and the TSan CI job
// runs this binary).
#include "hec/shard/lease.h"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

namespace hec::shard {
namespace {

TEST(LeaseTable, GrantHeartbeatRelease) {
  LeaseTable table(/*heartbeat_timeout_s=*/1.0, /*progress_timeout_s=*/10.0);
  EXPECT_EQ(table.active(), 0u);
  table.grant(/*shard=*/0, /*attempt=*/1, /*cursor=*/0, /*now_s=*/0.0);
  EXPECT_EQ(table.active(), 1u);
  EXPECT_TRUE(table.heartbeat(0, 1, 10, 0.5));
  ASSERT_TRUE(table.heartbeat_gap_s(0, 0.7).has_value());
  EXPECT_DOUBLE_EQ(*table.heartbeat_gap_s(0, 0.7), 0.2);
  EXPECT_TRUE(table.release(0, 1));
  EXPECT_EQ(table.active(), 0u);
  EXPECT_FALSE(table.heartbeat_gap_s(0, 1.0).has_value());
}

TEST(LeaseTable, RejectsReportsFromSupersededAttempts) {
  LeaseTable table(1.0, 10.0);
  table.grant(3, 7, 0, 0.0);
  // A killed straggler (attempt 6) racing its replacement must neither
  // renew the lease nor release it.
  EXPECT_FALSE(table.heartbeat(3, 6, 999, 0.1));
  EXPECT_FALSE(table.release(3, 6));
  EXPECT_EQ(table.active(), 1u);
  EXPECT_TRUE(table.heartbeat(3, 7, 1, 0.1));
  // A shard that was never granted reports nothing.
  EXPECT_FALSE(table.heartbeat(99, 1, 0, 0.1));
}

TEST(LeaseTable, HeartbeatSilenceExpiresAsReassign) {
  LeaseTable table(/*heartbeat_timeout_s=*/1.0, /*progress_timeout_s=*/10.0);
  table.grant(0, 1, 0, 0.0);
  EXPECT_TRUE(table.expired(0.99).empty());
  const std::vector<LeaseRevocation> expired = table.expired(1.5);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].shard, 0u);
  EXPECT_EQ(expired[0].attempt, 1u);
  EXPECT_EQ(expired[0].action, LeaseAction::kReassign);
  EXPECT_DOUBLE_EQ(expired[0].idle_s, 1.5);
}

TEST(LeaseTable, StalledCursorExpiresAsSteal) {
  LeaseTable table(/*heartbeat_timeout_s=*/1.0, /*progress_timeout_s=*/2.0);
  table.grant(4, 2, 100, 0.0);
  // Heartbeats keep arriving (never a 1s gap) but the cursor is stuck:
  // at t=2.4 the progress clock has run 2.4s without movement.
  for (double t : {0.5, 1.0, 1.5, 2.0, 2.4}) {
    EXPECT_TRUE(table.heartbeat(4, 2, 100, t));
  }
  const std::vector<LeaseRevocation> expired = table.expired(2.4);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].action, LeaseAction::kSteal);
  EXPECT_DOUBLE_EQ(expired[0].idle_s, 2.4);
}

TEST(LeaseTable, CursorAdvanceResetsTheProgressClock) {
  LeaseTable table(10.0, /*progress_timeout_s=*/2.0);
  table.grant(4, 2, 100, 0.0);
  EXPECT_TRUE(table.heartbeat(4, 2, 100, 1.5));
  EXPECT_TRUE(table.heartbeat(4, 2, 164, 1.9));  // moved: clock restarts
  EXPECT_TRUE(table.expired(3.8).empty());
  EXPECT_EQ(table.expired(4.0).size(), 1u);
}

TEST(LeaseTable, StaleReorderedHeartbeatCannotRewindTheProgressClock) {
  // TCP (or a slow pipe) can deliver heartbeats out of order relative
  // to when the worker stamped them. A late-arriving report whose
  // cursor is BEHIND the recorded progress must still count as
  // liveness, but must neither rewind the cursor nor reset the
  // progress clock — otherwise a straggler replaying stale cursors
  // would dodge the steal forever.
  LeaseTable table(/*heartbeat_timeout_s=*/10.0, /*progress_timeout_s=*/2.0);
  table.grant(4, 2, 100, 0.0);
  EXPECT_TRUE(table.heartbeat(4, 2, 164, 0.5));  // real progress at 0.5
  // Reordered heartbeats carrying the superseded cursor, and even the
  // same cursor again, keep arriving. Liveness refreshes...
  EXPECT_TRUE(table.heartbeat(4, 2, 100, 1.0));
  EXPECT_TRUE(table.heartbeat(4, 2, 164, 1.8));
  EXPECT_TRUE(table.heartbeat(4, 2, 128, 2.4));
  ASSERT_TRUE(table.heartbeat_gap_s(4, 2.4).has_value());
  EXPECT_DOUBLE_EQ(*table.heartbeat_gap_s(4, 2.4), 0.0);
  // ...but the progress clock still dates from 0.5: the steal fires at
  // 2.5, exactly as if the stale replays had never arrived.
  EXPECT_TRUE(table.expired(2.45).empty());
  const std::vector<LeaseRevocation> expired = table.expired(2.5);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].action, LeaseAction::kSteal);
  EXPECT_DOUBLE_EQ(expired[0].idle_s, 2.0);
}

TEST(LeaseTable, StaleHeartbeatAfterRegrantIsIgnoredEntirely) {
  // A reconnected worker re-running shard 4 as attempt 3 must not have
  // its fresh lease touched by the old attempt's delayed reports.
  LeaseTable table(10.0, 2.0);
  table.grant(4, 2, 0, 0.0);
  EXPECT_TRUE(table.heartbeat(4, 2, 500, 0.5));
  table.grant(4, 3, 0, 1.0);  // requeue after the socket died
  EXPECT_FALSE(table.heartbeat(4, 2, 900, 1.2)) << "old attempt's ghost";
  // The new attempt's progress clock starts at its grant, untouched by
  // the ghost: no steal before 3.0.
  EXPECT_TRUE(table.expired(2.9).empty());
  EXPECT_EQ(table.expired(3.0).size(), 1u);
}

TEST(LeaseTable, DeadWorkerBeatsStragglerWhenBothTimeoutsTrip) {
  // Total silence longer than both timeouts is worker death, not a
  // straggler: the remedy must be reassignment (no journal to protect —
  // nothing was happening at all).
  LeaseTable table(/*heartbeat_timeout_s=*/1.0, /*progress_timeout_s=*/0.5);
  table.grant(0, 1, 0, 0.0);
  const std::vector<LeaseRevocation> expired = table.expired(2.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].action, LeaseAction::kReassign);
}

TEST(LeaseTable, ExpiredLeavesTheLeaseForTheCallerToRelease) {
  // The monitor only detects; the main loop kills, reaps, then
  // releases. Until then repeated scans must re-report, not lose track.
  LeaseTable table(1.0, 10.0);
  table.grant(0, 1, 0, 0.0);
  EXPECT_EQ(table.expired(2.0).size(), 1u);
  EXPECT_EQ(table.expired(2.1).size(), 1u);
  EXPECT_EQ(table.active(), 1u);
  EXPECT_TRUE(table.release(0, 1));
  EXPECT_TRUE(table.expired(2.2).empty());
}

TEST(LeaseTable, InfiniteProgressTimeoutDisablesStealing) {
  LeaseTable table(1.0,
                   std::numeric_limits<double>::infinity());
  table.grant(0, 1, 0, 0.0);
  table.heartbeat(0, 1, 0, 1e6);  // cursor never moves, heartbeats fresh
  EXPECT_TRUE(table.expired(1e6 + 0.5).empty());
}

TEST(LeaseTable, ConcurrentHeartbeatsAndScansAreRaceFree) {
  // The coordinator main loop heartbeats/grants/releases while the
  // monitor thread scans. No assertion beyond "no crash, no race":
  // ThreadSanitizer is the judge (CI runs this test under TSan).
  LeaseTable table(0.5, 1.0);
  constexpr std::size_t kShards = 8;
  for (std::size_t s = 0; s < kShards; ++s) table.grant(s, s + 1, 0, 0.0);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&table, t] {
      for (std::size_t i = 0; i < 2000; ++i) {
        const std::size_t shard = (t * 2003 + i) % kShards;
        table.heartbeat(shard, shard + 1, i,
                        0.001 * static_cast<double>(i));
        if (i % 64 == 0) {
          table.heartbeat_gap_s(shard, 0.001 * static_cast<double>(i));
        }
      }
    });
  }
  threads.emplace_back([&table] {
    for (int i = 0; i < 2000; ++i) {
      table.expired(0.001 * i);
      table.active();
    }
  });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(table.active(), kShards);
}

}  // namespace
}  // namespace hec::shard
