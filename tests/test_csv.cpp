#include "hec/io/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(CsvEscape, PlainCellsUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("12.5"), "12.5");
}

TEST(CsvEscape, QuotesCommasAndNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(FormatDouble, RoundTrips) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(std::stod(format_double(0.1)), 0.1);
  EXPECT_EQ(std::stod(format_double(1e-9)), 1e-9);
}

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"deadline_ms", "energy_j"});
  csv.row({"10", "21.5"});
  csv.row_values({100.0, 19.25});
  EXPECT_EQ(out.str(), "deadline_ms,energy_j\n10,21.5\n100,19.25\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriter, EnforcesColumnCount) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), ContractViolation);
}

TEST(CsvWriter, HeaderOnlyOnceAndFirst) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"b"}), ContractViolation);

  std::ostringstream out2;
  CsvWriter csv2(out2);
  csv2.row({"data"});
  EXPECT_THROW(csv2.header({"late"}), ContractViolation);
}

TEST(CsvWriter, HeaderlessRowsAllowed) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"1", "2"});
  csv.row({"3"});  // no header -> no column enforcement
  EXPECT_EQ(out.str(), "1,2\n3\n");
}

}  // namespace
}  // namespace hec
