// Integration validation mirroring Section III: the analytical model's
// predictions are checked against independent measurement runs of the
// simulator substrate (fresh seeds, noise on). The paper reports model
// errors below ~15%; the same bound must hold here.
#include <gtest/gtest.h>

#include "hec/cluster/cluster_sim.h"
#include "hec/cluster/schedulers.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/stats/summary.h"

namespace hec {
namespace {

CharacterizeOptions baseline_opts() {
  CharacterizeOptions opts;
  opts.baseline_units = 10000.0;
  opts.seed = 42;
  return opts;  // default noise: the paper's measurement irregularities
}

class ValidationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    arm_spec_ = new NodeSpec(arm_cortex_a9());
    amd_spec_ = new NodeSpec(amd_opteron_k10());
  }
  static void TearDownTestSuite() {
    delete arm_spec_;
    delete amd_spec_;
  }

  static const NodeSpec* arm_spec_;
  static const NodeSpec* amd_spec_;
};

const NodeSpec* ValidationTest::arm_spec_ = nullptr;
const NodeSpec* ValidationTest::amd_spec_ = nullptr;

/// Runs the Table 3 procedure for one workload on one node type: predict
/// across (cores, frequency) combinations, measure with fresh seeds, and
/// return the mean relative errors for time and energy.
std::pair<double, double> single_node_errors(const NodeSpec& spec,
                                             const Workload& workload,
                                             double units) {
  const NodeTypeModel model =
      build_node_model(spec, workload, baseline_opts());
  RelativeError time_err, energy_err;
  std::uint64_t seed = 12345;
  for (int c = 1; c <= spec.cores; c += (spec.cores > 4 ? 2 : 1)) {
    for (double f : spec.pstates.frequencies_ghz()) {
      const Prediction pred = model.predict(units, NodeConfig{1, c, f});
      RunConfig rc;
      rc.cores_used = c;
      rc.f_ghz = f;
      rc.work_units = units;
      rc.seed = seed++;
      const RunResult meas =
          simulate_node(spec, workload.demand_for(spec.isa), rc);
      time_err.add(pred.t_s, meas.wall_s);
      energy_err.add(pred.energy_j(), meas.energy.total_j());
    }
  }
  return {time_err.mean_pct(), energy_err.mean_pct()};
}

TEST_F(ValidationTest, EpSingleNodeWithinPaperBounds) {
  for (const NodeSpec* spec : {arm_spec_, amd_spec_}) {
    const auto [t_err, e_err] =
        single_node_errors(*spec, workload_ep(), 50000.0);
    EXPECT_LT(t_err, 15.0) << spec->name;
    EXPECT_LT(e_err, 15.0) << spec->name;
  }
}

TEST_F(ValidationTest, MemcachedSingleNodeWithinPaperBounds) {
  for (const NodeSpec* spec : {arm_spec_, amd_spec_}) {
    const auto [t_err, e_err] =
        single_node_errors(*spec, workload_memcached(), 20000.0);
    EXPECT_LT(t_err, 15.0) << spec->name;
    EXPECT_LT(e_err, 15.0) << spec->name;
  }
}

TEST_F(ValidationTest, X264SingleNodeWithinPaperBounds) {
  // Memory-bound: exercises the SPImem regression path end to end.
  for (const NodeSpec* spec : {arm_spec_, amd_spec_}) {
    const auto [t_err, e_err] =
        single_node_errors(*spec, workload_x264(), 60.0);
    EXPECT_LT(t_err, 15.0) << spec->name;
    EXPECT_LT(e_err, 15.0) << spec->name;
  }
}

TEST_F(ValidationTest, ClusterValidationEightArmPlusOneAmd) {
  // Table 4's configuration: 8 ARM + 1 AMD with the matched split.
  const Workload ep = workload_ep();
  const NodeTypeModel arm_model =
      build_node_model(*arm_spec_, ep, baseline_opts());
  const NodeTypeModel amd_model =
      build_node_model(*amd_spec_, ep, baseline_opts());
  const ClusterConfig cfg{NodeConfig{8, 4, 1.4}, NodeConfig{1, 6, 2.1}};
  const double w = 2e6;

  const MatchingScheduler sched(arm_model, amd_model);
  const SplitAssignment split = sched.assign(w, cfg);
  const double t_pred =
      arm_model.predict(split.units_arm, cfg.arm).t_s;
  const double e_pred =
      arm_model.predict(split.units_arm, cfg.arm).energy_j() +
      amd_model.predict(split.units_amd, cfg.amd).energy_j();

  ClusterRunOptions opts;
  opts.seed = 777;
  const ClusterRunResult meas = simulate_cluster(
      *arm_spec_, *amd_spec_, ep, cfg, split.units_arm, split.units_amd,
      opts);
  EXPECT_NEAR(t_pred, meas.t_s, meas.t_s * 0.15);
  EXPECT_NEAR(e_pred, meas.energy_j, meas.energy_j * 0.15);
  // The matched split really does balance completion across types.
  EXPECT_NEAR(meas.t_arm_s, meas.t_amd_s, meas.t_s * 0.1);
}

TEST_F(ValidationTest, ExtensionNodeTypesValidateToo) {
  // The three-tier study leans on the Cortex-A15 and Xeon-class models;
  // their predictions must track the substrate as well as the paper
  // pair's do.
  for (const NodeSpec& spec : {arm_cortex_a15(), intel_xeon_class()}) {
    const auto [t_err, e_err] =
        single_node_errors(spec, workload_ep(), 50000.0);
    EXPECT_LT(t_err, 15.0) << spec.name;
    EXPECT_LT(e_err, 15.0) << spec.name;
  }
}

TEST_F(ValidationTest, PredictionsTrackMeasurementAcrossScales) {
  // Constant-WPI hypothesis in action: a model characterised at 10k units
  // stays accurate when the job is 20x larger.
  const NodeTypeModel model =
      build_node_model(*arm_spec_, workload_blackscholes(), baseline_opts());
  for (double units : {50000.0, 200000.0}) {
    const Prediction pred = model.predict(units, NodeConfig{1, 4, 1.4});
    RunConfig rc;
    rc.cores_used = 4;
    rc.f_ghz = 1.4;
    rc.work_units = units;
    rc.seed = 5150 + static_cast<std::uint64_t>(units);
    const RunResult meas = simulate_node(
        *arm_spec_, workload_blackscholes().demand_arm, rc);
    EXPECT_NEAR(pred.t_s, meas.wall_s, meas.wall_s * 0.12) << units;
    EXPECT_NEAR(pred.energy_j(), meas.energy.total_j(),
                meas.energy.total_j() * 0.12)
        << units;
  }
}

}  // namespace
}  // namespace hec
