#include "hec/parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hec {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ThreadCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), ContractViolation);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(),
               [&](std::size_t i) { ++hits[i]; }, pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HonoursBeginOffset) {
  ThreadPool pool(2);
  std::vector<int> touched(10, 0);
  parallel_for(3, 7, [&](std::size_t i) { touched[i] = 1; }, pool);
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i], (i >= 3 && i < 7) ? 1 : 0);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; }, pool);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, RejectsInvertedRange) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(5, 3, [](std::size_t) {}, pool),
               ContractViolation);
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("bad index");
                   },
                   pool),
      std::runtime_error);
}

TEST(ParallelMap, ComputesAllValues) {
  ThreadPool pool(4);
  const auto squares = parallel_map<std::size_t>(
      100, [](std::size_t i) { return i * i; }, pool);
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelFor, MatchesSerialReduction) {
  ThreadPool pool(4);
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 0.0);
  std::vector<double> doubled(values.size());
  parallel_for(0, values.size(),
               [&](std::size_t i) { doubled[i] = 2.0 * values[i]; }, pool);
  const double total = std::accumulate(doubled.begin(), doubled.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 9999.0 * 10000.0);
}

TEST(ParallelFor, TinyRangeRunsInlineOnCallingThread) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(kParallelInlineGrain);
  parallel_for(0, ran_on.size(),
               [&](std::size_t i) { ran_on[i] = std::this_thread::get_id(); },
               pool);
  for (const auto& id : ran_on) EXPECT_EQ(id, caller);
}

TEST(ParallelForDynamic, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_dynamic(0, hits.size(), 7,
                       [&](std::size_t i) { ++hits[i]; }, pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForDynamic, HonoursBeginOffsetAndGrainLargerThanRange) {
  ThreadPool pool(4);
  std::vector<int> touched(10, 0);
  parallel_for_dynamic(3, 7, 64, [&](std::size_t i) { touched[i] = 1; },
                       pool);
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i], (i >= 3 && i < 7) ? 1 : 0);
  }
}

TEST(ParallelForDynamic, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_dynamic(5, 5, 4, [&](std::size_t) { called = true; }, pool);
  EXPECT_FALSE(called);
}

TEST(ParallelForDynamic, RejectsInvertedRangeAndZeroGrain) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for_dynamic(5, 3, 1, [](std::size_t) {}, pool),
               ContractViolation);
  EXPECT_THROW(parallel_for_dynamic(0, 5, 0, [](std::size_t) {}, pool),
               ContractViolation);
}

TEST(ParallelForDynamic, RethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_dynamic(0, 500, 3,
                           [](std::size_t i) {
                             if (i == 457) throw std::runtime_error("bad");
                           },
                           pool),
      std::runtime_error);
}

TEST(ParallelForDynamic, MatchesSerialReduction) {
  ThreadPool pool(4);
  std::vector<double> doubled(10000);
  parallel_for_dynamic(0, doubled.size(), 11,
                       [&](std::size_t i) { doubled[i] = 2.0 * double(i); },
                       pool);
  const double total = std::accumulate(doubled.begin(), doubled.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 9999.0 * 10000.0);
}

TEST(ThreadCountFromEnv, ParsesCountsAndFallsBack) {
  EXPECT_EQ(thread_count_from_env(nullptr, 8), 8u);
  EXPECT_EQ(thread_count_from_env("", 8), 8u);
  EXPECT_EQ(thread_count_from_env("4", 8), 4u);
  EXPECT_EQ(thread_count_from_env(" 16 ", 8), 16u);
  // 0 requests serial execution: a single worker.
  EXPECT_EQ(thread_count_from_env("0", 8), 1u);
  // Garbage falls back.
  EXPECT_EQ(thread_count_from_env("4x", 8), 8u);
  EXPECT_EQ(thread_count_from_env("auto", 8), 8u);
  EXPECT_EQ(thread_count_from_env("-2", 8), 8u);
  EXPECT_EQ(thread_count_from_env("+2", 8), 8u);
  // Absurd requests are capped.
  EXPECT_EQ(thread_count_from_env("999999999", 8), 1024u);
}

TEST(GlobalPool, IsUsableAndStable) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

}  // namespace
}  // namespace hec
