// hec-telemetry/v1 sidecar contract (hec/shard/telemetry.h): encode and
// decode are exact inverses, every damaged document — truncated, torn,
// bit-flipped, appended-to — parses to nullopt with a reason, a foreign
// fingerprint never merges, and the merger keeps exactly the highest
// flush per attempt while dropping superseded attempts' deltas. All
// in-process (no fork), so the suite runs under TSan where the
// fork-based sharded tests cannot.
#include "hec/shard/telemetry.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "hec/obs/export.h"
#include "hec/obs/metrics.h"
#include "hec/util/atomic_file.h"

namespace hec::shard {
namespace {

constexpr const char* kFingerprint = "synthetic space v1 run=42";

/// A record exercising every field: counters, gauges, a sparse
/// histogram, spans with and without sim windows, and names containing
/// the characters the JSON layer must escape.
TelemetryRecord sample_record() {
  TelemetryRecord record;
  record.shard = 3;
  record.attempt = 7;
  record.pid = 4242;
  record.seq = 5;
  record.final_flush = true;
  record.metrics.counters = {{"config.evaluations", 1250.0},
                             {"sweep.configs", 1250.0},
                             {R"(weird"name)", 1.0}};
  record.metrics.gauges = {{"resilience.configs_visited", 1250.0}};
  obs::MetricsRegistry::HistogramSnapshot h;
  h.name = "shard.heartbeat_gap_s";
  h.bins[4] = 9;
  h.bins[obs::Histogram::kBins - 1] = 2;
  h.count = 11;
  h.sum = 0.75;
  record.metrics.histograms.push_back(h);
  obs::ExternalSpan plain;
  plain.name = "resilience.epoch\nwith newline";
  plain.start_us = 10.5;
  plain.dur_us = 2000.25;
  plain.tid = 3;
  plain.depth = 1;
  record.spans.push_back(plain);
  obs::ExternalSpan windowed;
  windowed.name = "sim.run";
  windowed.start_us = 5000.0;
  windowed.dur_us = 1.0;
  windowed.sim_begin_s = 0.0;
  windowed.sim_end_s = 12.5;
  record.spans.push_back(windowed);
  return record;
}

void expect_equal(const TelemetryRecord& got, const TelemetryRecord& want) {
  EXPECT_EQ(got.shard, want.shard);
  EXPECT_EQ(got.attempt, want.attempt);
  EXPECT_EQ(got.pid, want.pid);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.final_flush, want.final_flush);
  EXPECT_EQ(got.metrics.counters, want.metrics.counters);
  EXPECT_EQ(got.metrics.gauges, want.metrics.gauges);
  ASSERT_EQ(got.metrics.histograms.size(), want.metrics.histograms.size());
  for (std::size_t i = 0; i < got.metrics.histograms.size(); ++i) {
    const auto& gh = got.metrics.histograms[i];
    const auto& wh = want.metrics.histograms[i];
    EXPECT_EQ(gh.name, wh.name);
    EXPECT_EQ(gh.bins, wh.bins);
    EXPECT_EQ(gh.count, wh.count);
    EXPECT_EQ(gh.sum, wh.sum);
  }
  ASSERT_EQ(got.spans.size(), want.spans.size());
  for (std::size_t i = 0; i < got.spans.size(); ++i) {
    const obs::ExternalSpan& gs = got.spans[i];
    const obs::ExternalSpan& ws = want.spans[i];
    EXPECT_EQ(gs.name, ws.name);
    EXPECT_EQ(gs.start_us, ws.start_us);
    EXPECT_EQ(gs.dur_us, ws.dur_us);
    EXPECT_EQ(gs.tid, ws.tid);
    EXPECT_EQ(gs.depth, ws.depth);
    EXPECT_EQ(gs.has_sim_window(), ws.has_sim_window());
    if (gs.has_sim_window() && ws.has_sim_window()) {
      EXPECT_EQ(gs.sim_begin_s, ws.sim_begin_s);
      EXPECT_EQ(gs.sim_end_s, ws.sim_end_s);
    }
  }
}

// ---------------------------------------------------------------------
// Codec.

TEST(TelemetryCodec, RoundTripsEveryField) {
  const TelemetryRecord record = sample_record();
  const std::string text = encode_telemetry(record, kFingerprint);
  EXPECT_EQ(text.find('\n'), text.size() - 1) << "one line plus newline";

  std::string why = "unset";
  const auto back = decode_telemetry(text, kFingerprint, &why);
  ASSERT_TRUE(back.has_value()) << why;
  expect_equal(*back, record);
}

TEST(TelemetryCodec, EncodeIsDeterministic) {
  // Sorted-key JSON: the same record always serialises to the same
  // bytes, so sidecar diffs across runs are meaningful.
  EXPECT_EQ(encode_telemetry(sample_record(), kFingerprint),
            encode_telemetry(sample_record(), kFingerprint));
}

TEST(TelemetryCodec, RejectsTruncationAtEveryLength) {
  // A torn write (simulated: atomic_write_file makes real ones
  // impossible) must read as damage, never as a shorter valid record.
  const std::string text = encode_telemetry(sample_record(), kFingerprint);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, text.size() / 4, text.size() / 2,
        text.size() - 2}) {
    std::string why;
    EXPECT_FALSE(
        decode_telemetry(text.substr(0, keep), kFingerprint, &why)
            .has_value())
        << "kept " << keep << " bytes";
    EXPECT_FALSE(why.empty());
  }
}

TEST(TelemetryCodec, RejectsBitFlipsViaCrc) {
  const std::string text = encode_telemetry(sample_record(), kFingerprint);
  // Flip a digit inside the payload (a counter value) so the document
  // still parses as JSON but the CRC no longer matches.
  const std::size_t pos = text.find("1250");
  ASSERT_NE(pos, std::string::npos);
  std::string bent = text;
  bent[pos] = '9';
  std::string why;
  EXPECT_FALSE(decode_telemetry(bent, kFingerprint, &why).has_value());
  EXPECT_NE(why.find("CRC"), std::string::npos) << why;
}

TEST(TelemetryCodec, RejectsAppendedGarbageAndWrongSchema) {
  const std::string text = encode_telemetry(sample_record(), kFingerprint);
  std::string why;
  EXPECT_FALSE(
      decode_telemetry(text + "trailing garbage", kFingerprint, &why)
          .has_value());
  EXPECT_FALSE(decode_telemetry("{}", kFingerprint, &why).has_value());
  EXPECT_NE(why.find("schema"), std::string::npos) << why;
  EXPECT_FALSE(decode_telemetry("not json at all", kFingerprint, &why)
                   .has_value());
}

TEST(TelemetryCodec, ForeignFingerprintIsFirewalled) {
  const std::string text = encode_telemetry(sample_record(), kFingerprint);
  // Same sweep, previous run id: a stale sidecar in a reused state dir.
  std::string why;
  EXPECT_FALSE(
      decode_telemetry(text, "synthetic space v1 run=41", &why).has_value());
  EXPECT_NE(why.find("run=41"), std::string::npos) << why;
  // An empty expected fingerprint skips the check (inspection tools).
  EXPECT_TRUE(decode_telemetry(text, "", &why).has_value());
}

TEST(TelemetryCodec, PathsAndFingerprintsAreStable) {
  // The sidecar layout and fingerprint derivation are cross-process
  // contracts: worker encode and coordinator decode build them
  // independently and must agree byte for byte.
  EXPECT_EQ(shard_telemetry_path("/tmp/s", 7), "/tmp/s/attempt-7.telemetry");
  EXPECT_EQ(telemetry_fingerprint("sig total=10", 42),
            "sig total=10 run=42");
}

// ---------------------------------------------------------------------
// Merger.

class TelemetryMergerTest : public ::testing::Test {
 protected:
  // ctest runs each case as its own process, possibly in parallel, so
  // every test gets a private sidecar directory.
  void SetUp() override {
    dir_ = ::testing::TempDir() + "telemetry_merger_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0775);
  }

  std::string write_sidecar(std::uint64_t attempt, std::uint64_t seq,
                            double configs,
                            const std::string& fingerprint = kFingerprint) {
    TelemetryRecord record;
    record.shard = attempt;  // one shard per attempt keeps labels simple
    record.attempt = attempt;
    record.pid = 1000 + static_cast<std::int64_t>(attempt);
    record.seq = seq;
    record.metrics.counters = {{"sweep.configs", configs}};
    obs::ExternalSpan span;
    span.name = "resilience.epoch";
    span.dur_us = configs;
    record.spans.push_back(span);
    const std::string path =
        shard_telemetry_path(dir_, attempt);
    util::atomic_write_file(path, encode_telemetry(record, fingerprint));
    return path;
  }

  void TearDown() override {
    for (std::uint64_t a = 1; a <= 8; ++a) {
      std::remove(shard_telemetry_path(dir_, a).c_str());
    }
  }

  std::string dir_;
};

TEST_F(TelemetryMergerTest, LatestSeqWinsAndReingestIsIdempotent) {
  TelemetryMerger merger(kFingerprint);
  const std::string path = write_sidecar(1, 1, 100.0);
  EXPECT_TRUE(merger.ingest_file(path));
  EXPECT_FALSE(merger.ingest_file(path)) << "same seq must not replace";
  write_sidecar(1, 2, 250.0);
  EXPECT_TRUE(merger.ingest_file(path));
  EXPECT_EQ(merger.records(), 1u);
  EXPECT_EQ(merger.counter_total("sweep.configs"), 250.0)
      << "the newer flush replaces, never adds to, the older one";
}

TEST_F(TelemetryMergerTest, AbsentFileIsSilentDamageIsRejected) {
  TelemetryMerger merger(kFingerprint);
  std::string why = "unset";
  EXPECT_FALSE(merger.ingest_file(
      shard_telemetry_path(dir_, 8), &why));
  EXPECT_EQ(why, "unset") << "not flushed yet is not an error";
  EXPECT_EQ(merger.rejected(), 0u);

  const std::string path = write_sidecar(2, 1, 50.0);
  {
    std::string text;
    {
      std::ifstream in(path);
      std::getline(in, text);
    }
    util::atomic_write_file(path, text.substr(0, text.size() / 2));
  }
  EXPECT_FALSE(merger.ingest_file(path, &why));
  EXPECT_FALSE(why.empty());
  EXPECT_EQ(merger.rejected(), 1u);

  // A sidecar from a previous run in the same state dir: firewalled.
  write_sidecar(3, 1, 75.0, "synthetic space v1 run=41");
  EXPECT_FALSE(merger.ingest_file(
      shard_telemetry_path(dir_, 3), &why));
  EXPECT_EQ(merger.rejected(), 2u);
  EXPECT_EQ(merger.records(), 0u);
}

TEST_F(TelemetryMergerTest, SupersededDeltasAreDroppedSpansAreTagged) {
  TelemetryMerger merger(kFingerprint);
  ASSERT_TRUE(merger.ingest_file(write_sidecar(1, 1, 100.0)));
  ASSERT_TRUE(merger.ingest_file(write_sidecar(2, 1, 40.0)));
  ASSERT_TRUE(merger.ingest_file(write_sidecar(3, 1, 60.0)));
  merger.mark_superseded(2);  // attempt 2 was killed and requeued

  EXPECT_EQ(merger.counter_total("sweep.configs"), 160.0)
      << "the superseded attempt's work is redone elsewhere";
  EXPECT_EQ(merger.superseded(), 1u);

  obs::MetricsRegistry registry;
  merger.apply(registry);
  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "sweep.configs");
  EXPECT_EQ(counters[0].second, 160.0);

  const obs::ExternalTrace trace = merger.build_trace(
      {{"shard.reassign", 123.0, "shard=2 attempt=2 cause=exit"}});
  ASSERT_EQ(trace.tracks.size(), 3u) << "superseded spans stay visible";
  EXPECT_EQ(trace.tracks[0].label, "worker shard=1 attempt=1 pid=1001");
  EXPECT_EQ(trace.tracks[0].pid, 2u) << "trace-local pid = attempt + 1";
  EXPECT_FALSE(trace.tracks[0].superseded);
  EXPECT_TRUE(trace.tracks[1].superseded);
  ASSERT_EQ(trace.tracks[1].spans.size(), 1u);
  EXPECT_EQ(trace.tracks[1].spans[0].name, "resilience.epoch");
  ASSERT_EQ(trace.instants.size(), 1u);
  EXPECT_EQ(trace.instants[0].name, "shard.reassign");
}

}  // namespace
}  // namespace hec::shard
