// Property-style sweeps of the analytical model across every
// (workload, node type) pair: monotonicity, linearity, envelope and
// validation invariants that must hold regardless of calibration.
#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/sim/node_sim.h"
#include "hec/stats/summary.h"

namespace hec {
namespace {

struct Case {
  std::string workload;
  bool arm;  ///< true: ARM Cortex-A9, false: AMD Opteron K10
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.workload + (info.param.arm ? "_arm" : "_amd");
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class ModelProperty : public ::testing::TestWithParam<Case> {
 protected:
  static CharacterizeOptions opts() {
    CharacterizeOptions o;
    o.baseline_units = 6000.0;
    return o;
  }

  NodeSpec spec() const {
    return GetParam().arm ? arm_cortex_a9() : amd_opteron_k10();
  }
  Workload workload() const { return find_workload(GetParam().workload); }
  NodeTypeModel model() const {
    return build_node_model(spec(), workload(), opts());
  }
  double probe_units() const {
    return std::min(workload().validation_units, 100000.0);
  }
};

TEST_P(ModelProperty, TimeNonIncreasingInNodes) {
  const NodeTypeModel m = model();
  const NodeSpec s = spec();
  double prev = 1e300;
  for (int n = 1; n <= 16; n *= 2) {
    const double t =
        m.predict(probe_units(),
                  NodeConfig{n, s.cores, s.pstates.max_ghz()})
            .t_s;
    EXPECT_LE(t, prev * (1.0 + 1e-12)) << "n=" << n;
    prev = t;
  }
}

TEST_P(ModelProperty, TimeNonIncreasingInFrequency) {
  const NodeTypeModel m = model();
  const NodeSpec s = spec();
  double prev = 1e300;
  for (double f : s.pstates.frequencies_ghz()) {
    const double t =
        m.predict(probe_units(), NodeConfig{1, s.cores, f}).t_s;
    EXPECT_LE(t, prev * (1.0 + 1e-12)) << "f=" << f;
    prev = t;
  }
}

TEST_P(ModelProperty, TimeNonIncreasingInCores) {
  const NodeTypeModel m = model();
  const NodeSpec s = spec();
  double prev = 1e300;
  for (int c = 1; c <= s.cores; ++c) {
    const double t =
        m.predict(probe_units(), NodeConfig{1, c, s.pstates.max_ghz()}).t_s;
    EXPECT_LE(t, prev * (1.0 + 1e-12)) << "c=" << c;
    prev = t;
  }
}

TEST_P(ModelProperty, EnergyWithinPowerEnvelope) {
  const NodeTypeModel m = model();
  const NodeSpec s = spec();
  for (int c : {1, s.cores}) {
    for (double f : s.pstates.frequencies_ghz()) {
      const Prediction p = m.predict(probe_units(), NodeConfig{2, c, f});
      const double avg_w = p.energy_j() / p.t_s / 2.0;  // per node
      EXPECT_GE(avg_w, m.power().idle_w * 0.98) << c << "@" << f;
      EXPECT_LE(avg_w, s.peak_node_w() * 1.10) << c << "@" << f;
    }
  }
}

TEST_P(ModelProperty, TimeAndEnergyLinearInWork) {
  const NodeTypeModel m = model();
  const NodeSpec s = spec();
  const NodeConfig cfg{2, s.cores, s.pstates.max_ghz()};
  const Prediction small = m.predict(probe_units(), cfg);
  const Prediction large = m.predict(probe_units() * 7.0, cfg);
  EXPECT_NEAR(large.t_s, 7.0 * small.t_s, small.t_s * 1e-9);
  EXPECT_NEAR(large.energy_j(), 7.0 * small.energy_j(),
              small.energy_j() * 1e-9);
}

TEST_P(ModelProperty, ValidationErrorWithinPaperBound) {
  const NodeTypeModel m = model();
  const NodeSpec s = spec();
  const Workload w = workload();
  RelativeError t_err, e_err;
  std::uint64_t seed = 2024;
  for (int c : {1, s.cores}) {
    for (double f : {s.pstates.min_ghz(), s.pstates.max_ghz()}) {
      const Prediction pred =
          m.predict(probe_units(), NodeConfig{1, c, f});
      RunConfig rc;
      rc.cores_used = c;
      rc.f_ghz = f;
      rc.work_units = probe_units();
      rc.seed = seed++;
      const RunResult meas = simulate_node(s, w.demand_for(s.isa), rc);
      t_err.add(pred.t_s, meas.wall_s);
      e_err.add(pred.energy_j(), meas.energy.total_j());
    }
  }
  EXPECT_LT(t_err.mean_pct(), 15.0);
  EXPECT_LT(e_err.mean_pct(), 15.0);
}

TEST_P(ModelProperty, SpiMemRegressionIsStrong) {
  const NodeTypeModel m = model();
  for (const LinearFit& fit : m.workload().spi_mem_by_cores) {
    if (m.workload().spi_mem_by_cores.front().slope == 0.0) break;
    EXPECT_GE(fit.r_squared, 0.94);  // paper Fig. 3 bound
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsBothNodes, ModelProperty,
    ::testing::Values(Case{"EP", true}, Case{"EP", false},
                      Case{"memcached", true}, Case{"memcached", false},
                      Case{"x264", true}, Case{"x264", false},
                      Case{"blackscholes", true},
                      Case{"blackscholes", false}, Case{"Julius", true},
                      Case{"Julius", false}, Case{"RSA-2048", true},
                      Case{"RSA-2048", false}),
    case_name);

}  // namespace
}  // namespace hec
