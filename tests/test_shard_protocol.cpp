// hecshard/v1 wire grammar (hec/shard/protocol.h): encode/parse are
// exact inverses, every malformed record parses to nullopt (a protocol
// error must read as worker death, never crash the coordinator), and
// LineBuffer reassembles records torn across arbitrary read() chunks.
#include "hec/shard/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hec::shard {
namespace {

TEST(ShardProtocol, EncodesEveryKindAsOneTerminatedLine) {
  EXPECT_EQ(encode({MessageKind::kAssign, 3, 7, 100, 200, 0, {}, 9}),
            "A 3 7 100 200 9\n");
  EXPECT_EQ(encode({MessageKind::kProgress, 3, 7, 0, 0, 150, {}}),
            "R 3 7 150\n");
  EXPECT_EQ(encode({MessageKind::kDone, 3, 7, 0, 0, 0, {}}), "D 3 7\n");
  EXPECT_EQ(encode({MessageKind::kFailed, 3, 7, 0, 0, 0, "disk full"}),
            "F 3 7 disk full\n");
}

TEST(ShardProtocol, RoundTripsEveryKind) {
  const Message messages[] = {
      {MessageKind::kAssign, 0, 1, 0, 1013254, 0, {}, 0x9e3779b97f4a7c15},
      {MessageKind::kProgress, 12, 99, 0, 0, 4096, {}},
      {MessageKind::kDone, 5, 6, 0, 0, 0, {}},
      {MessageKind::kFailed, 2, 3, 0, 0, 0, "std::bad_alloc"},
      {MessageKind::kFailed, 2, 3, 0, 0, 0, ""},  // empty detail is legal
  };
  for (const Message& m : messages) {
    const std::optional<Message> back = parse(encode(m));
    ASSERT_TRUE(back.has_value()) << encode(m);
    EXPECT_EQ(*back, m) << encode(m);
  }
}

TEST(ShardProtocol, AssignSeedFrontierRoundTripsExactDoubleBits) {
  Message m;
  m.kind = MessageKind::kAssign;
  m.shard = 3;
  m.attempt = 7;
  m.first = 100;
  m.last = 200;
  m.run = 9;
  // Exact-representation stress: a repeating fraction, a denormal, a
  // huge magnitude and a negative zero must all survive the wire with
  // their double bits intact (%a hex floats).
  m.seed = {{0.1, 12345.6789, 42},
            {5e-324, 1.7976931348623157e308, 0},
            {-0.0, 1.0 / 3.0, 1013253}};
  const std::string line = encode(m);
  EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
  const std::optional<Message> back = parse(line);
  ASSERT_TRUE(back.has_value()) << line;
  EXPECT_EQ(*back, m) << line;
}

TEST(ShardProtocol, AssignShortFormParsesAsEmptySeed) {
  // v1 peers never send the seed tail; the long-form parser must accept
  // their records unchanged.
  const std::optional<Message> m = parse("A 3 7 100 200 9");
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->seed.empty());
}

TEST(ShardProtocol, DoneStatsTailRoundTrips) {
  Message m;
  m.kind = MessageKind::kDone;
  m.shard = 5;
  m.attempt = 6;
  m.has_stats = true;
  m.evaluated = 51040;
  m.pruned = 962214;
  EXPECT_EQ(encode(m), "D 5 6 51040 962214\n");
  const std::optional<Message> back = parse(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
  // The v1 short form stays the v1 short form.
  const std::optional<Message> short_form = parse("D 5 6");
  ASSERT_TRUE(short_form.has_value());
  EXPECT_FALSE(short_form->has_stats);
}

TEST(ShardProtocol, RejectsMalformedSeedAndStatsTails) {
  const char* bad[] = {
      "A 1 2 3 4 5 2 0x1p+0:0x1p+1:7",  // n=2 but one triple
      "A 1 2 3 4 5 1 0x1p+0:0x1p+1",    // triple missing its tag
      "A 1 2 3 4 5 1 nope",             // not a triple at all
      "A 1 2 3 4 5 x",                  // count is not a number
      "D 1 2 3",                        // evaluated without pruned
      "D 1 2 3 4 5",                    // trailing field after stats
      "D 1 2 x 4",                      // non-numeric evaluated
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse(line).has_value()) << "'" << line << "'";
  }
}

TEST(ShardProtocol, ParsesWithOrWithoutTrailingNewline) {
  EXPECT_TRUE(parse("R 1 2 3\n").has_value());
  EXPECT_TRUE(parse("R 1 2 3").has_value());
  EXPECT_TRUE(parse("R 1 2 3\r\n").has_value());
}

TEST(ShardProtocol, FailureDetailKeepsInternalSpaces) {
  const std::optional<Message> m =
      parse("F 4 9 injected fault at failpoint 'shard.heartbeat' (hit 2)");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, MessageKind::kFailed);
  EXPECT_EQ(m->detail,
            "injected fault at failpoint 'shard.heartbeat' (hit 2)");
}

TEST(ShardProtocol, EncodeFlattensNewlinesInFailureDetail) {
  // A multi-line exception message must not forge extra protocol lines.
  const std::string line =
      encode({MessageKind::kFailed, 1, 1, 0, 0, 0, "line one\nline two"});
  EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
  const std::optional<Message> back = parse(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->detail.find('\n'), std::string::npos);
}

TEST(ShardProtocol, RejectsMalformedRecords) {
  const char* bad[] = {
      "",                  // empty line
      "Z 1 2",             // unknown kind
      "R 1 2",             // progress wants a cursor
      "R 1 2 3 4",         // trailing field
      "A 1 2 3",           // assign wants first, last and run id
      "A 1 2 3 4",         // assign without the run id
      "A 1 2 3 4 5 6",     // assign with a trailing field
      "D 1",               // done wants shard and attempt
      "D 1 2 3",           // done takes nothing else
      "R one 2 3",         // non-numeric shard
      "R 1 2 3x",          // trailing garbage inside a number
      "R -1 2 3",          // negative
      "R 99999999999999999999 1 0",  // overflow
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse(line).has_value()) << "'" << line << "'";
  }
}

TEST(ShardProtocol, LineBufferSplitsCompleteLines) {
  LineBuffer buffer;
  buffer.feed("D 1 2\nR 3 4 5\n");
  const std::vector<std::string> lines = buffer.take();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "D 1 2");
  EXPECT_EQ(lines[1], "R 3 4 5");
  EXPECT_EQ(buffer.pending(), 0u);
  EXPECT_TRUE(buffer.take().empty()) << "take() must clear the queue";
}

TEST(ShardProtocol, LineBufferReassemblesTornRecords) {
  // A heartbeat split across three read() chunks, byte by byte where it
  // matters, must come out whole.
  LineBuffer buffer;
  buffer.feed("R 7 ");
  EXPECT_TRUE(buffer.take().empty());
  EXPECT_GT(buffer.pending(), 0u);
  buffer.feed("12 40");
  EXPECT_TRUE(buffer.take().empty());
  buffer.feed("96\nD 7 12\nF 1 2 bo");
  const std::vector<std::string> lines = buffer.take();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "R 7 12 4096");
  EXPECT_EQ(lines[1], "D 7 12");
  buffer.feed("om\n");
  const std::vector<std::string> rest = buffer.take();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], "F 1 2 boom");
  EXPECT_EQ(buffer.pending(), 0u);
}

TEST(ShardProtocol, LineBufferFeedsOfOneByteEach) {
  LineBuffer buffer;
  const std::string stream = "R 1 2 3\nD 1 2\n";
  for (char c : stream) buffer.feed({&c, 1});
  const std::vector<std::string> lines = buffer.take();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(parse(lines[0])->kind, MessageKind::kProgress);
  EXPECT_EQ(parse(lines[1])->kind, MessageKind::kDone);
}

}  // namespace
}  // namespace hec::shard
