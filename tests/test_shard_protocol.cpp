// hecshard/v1 wire grammar (hec/shard/protocol.h): encode/parse are
// exact inverses, every malformed record parses to nullopt (a protocol
// error must read as worker death, never crash the coordinator), and
// LineBuffer reassembles records torn across arbitrary read() chunks.
#include "hec/shard/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace hec::shard {
namespace {

// Named builders instead of positional aggregates: the Message struct
// grew socket-era fields (run, space, result payloads), and these keep
// every test immune to field order.
Message assign_msg(std::size_t shard, std::uint64_t attempt,
                   std::size_t first, std::size_t last, std::uint64_t run) {
  Message m;
  m.kind = MessageKind::kAssign;
  m.shard = shard;
  m.attempt = attempt;
  m.first = first;
  m.last = last;
  m.run = run;
  return m;
}

Message progress_msg(std::size_t shard, std::uint64_t attempt,
                     std::size_t cursor) {
  Message m;
  m.kind = MessageKind::kProgress;
  m.shard = shard;
  m.attempt = attempt;
  m.cursor = cursor;
  return m;
}

Message done_msg(std::size_t shard, std::uint64_t attempt) {
  Message m;
  m.kind = MessageKind::kDone;
  m.shard = shard;
  m.attempt = attempt;
  return m;
}

Message failed_msg(std::size_t shard, std::uint64_t attempt,
                   std::string detail) {
  Message m;
  m.kind = MessageKind::kFailed;
  m.shard = shard;
  m.attempt = attempt;
  m.detail = std::move(detail);
  return m;
}

Message hello_msg(std::uint64_t space, std::uint64_t prev_run) {
  Message m;
  m.kind = MessageKind::kHello;
  m.space = space;
  m.run = prev_run;
  return m;
}

Message result_msg(std::size_t shard, std::uint64_t attempt,
                   std::vector<TimeEnergyPoint> frontier) {
  Message m;
  m.kind = MessageKind::kResult;
  m.shard = shard;
  m.attempt = attempt;
  m.seed = std::move(frontier);
  return m;
}

TEST(ShardProtocol, EncodesEveryKindAsOneTerminatedLine) {
  EXPECT_EQ(encode(assign_msg(3, 7, 100, 200, 9)), "A 3 7 100 200 9\n");
  EXPECT_EQ(encode(progress_msg(3, 7, 150)), "R 3 7 150\n");
  EXPECT_EQ(encode(done_msg(3, 7)), "D 3 7\n");
  EXPECT_EQ(encode(failed_msg(3, 7, "disk full")), "F 3 7 disk full\n");
}

TEST(ShardProtocol, RoundTripsEveryKind) {
  const Message messages[] = {
      assign_msg(0, 1, 0, 1013254, 0x9e3779b97f4a7c15),
      progress_msg(12, 99, 4096),
      done_msg(5, 6),
      failed_msg(2, 3, "std::bad_alloc"),
      failed_msg(2, 3, ""),  // empty detail is legal
  };
  for (const Message& m : messages) {
    const std::optional<Message> back = parse(encode(m));
    ASSERT_TRUE(back.has_value()) << encode(m);
    EXPECT_EQ(*back, m) << encode(m);
  }
}

TEST(ShardProtocol, EncodesSocketExtensionKinds) {
  EXPECT_EQ(encode(hello_msg(123456789, 7)), "H 123456789 7\n");
  Message welcome;
  welcome.kind = MessageKind::kWelcome;
  welcome.run = 42;
  EXPECT_EQ(encode(welcome), "W 42\n");
  // The payload count is mandatory even when empty — a truncated P line
  // must never parse as "no points".
  EXPECT_EQ(encode(result_msg(3, 9, {})), "P 3 9 0\n");
  Message ping;
  ping.kind = MessageKind::kPing;
  EXPECT_EQ(encode(ping), "N\n");
  Message bye;
  bye.kind = MessageKind::kBye;
  EXPECT_EQ(encode(bye), "B\n");
}

TEST(ShardProtocol, RoundTripsSocketExtensionKinds) {
  Message ping;
  ping.kind = MessageKind::kPing;
  Message bye;
  bye.kind = MessageKind::kBye;
  Message welcome;
  welcome.kind = MessageKind::kWelcome;
  welcome.run = 0xffffffffffffffff;
  const Message messages[] = {
      hello_msg(0xabad1dea, 0),
      hello_msg(0xffffffffffffffff, 0x123456789abcdef0),
      welcome,
      result_msg(2, 5, {}),
      // Exact double bits must survive the result payload, like the
      // A-line seed: denormal, huge, negative zero, repeating fraction.
      result_msg(7, 11,
                 {{0.1, 12345.6789, 42},
                  {5e-324, 1.7976931348623157e308, 0},
                  {-0.0, 1.0 / 3.0, 1013253}}),
      ping,
      bye,
  };
  for (const Message& m : messages) {
    const std::optional<Message> back = parse(encode(m));
    ASSERT_TRUE(back.has_value()) << encode(m);
    EXPECT_EQ(*back, m) << encode(m);
  }
}

TEST(ShardProtocol, RejectsMalformedSocketExtensionRecords) {
  const char* bad[] = {
      "H 1",             // hello wants space fp AND prev run
      "H 1 2 3",         // trailing field
      "H x 2",           // non-numeric fingerprint
      "W",               // welcome wants the run id
      "W 1 2",           // trailing field
      "P 1 2",           // result count is mandatory (no short form)
      "P 1 2 1",         // count promises a point that never comes
      "P 1 2 0 extra",   // trailing garbage after an empty payload
      "P 1 2 1 0x1p+0:0x1p+1",  // point missing its tag
      "N 1",             // ping takes nothing
      "B now",           // bye takes nothing
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse(line).has_value()) << "'" << line << "'";
  }
}

TEST(ShardProtocol, RejectsFrontierCountsBeyondTheWireCapOrTheBytesPresent) {
  // Above the hard cap: rejected outright.
  const std::string over_cap =
      "P 1 2 " + std::to_string(kMaxWireFrontier + 1);
  EXPECT_FALSE(parse(over_cap).has_value());
  // Under the cap but wildly beyond the bytes actually present: the
  // parser must reject from the length alone — a hostile peer cannot
  // make the coordinator allocate 64Ki points off an 11-byte line.
  EXPECT_FALSE(parse("P 1 2 60000").has_value());
  EXPECT_FALSE(
      parse("A 1 2 3 4 5 " + std::to_string(kMaxWireFrontier)).has_value());
}

TEST(ShardProtocol, RejectsNonFiniteSeedValues) {
  // strtod happily reads "nan" and "inf"; the parser must not — no
  // sweep produces them, and a NaN point would poison every Pareto
  // dominance comparison downstream of the merge.
  const char* bad[] = {
      "A 1 2 3 4 5 1 nan:0x1p+0:7",
      "A 1 2 3 4 5 1 0x1p+0:inf:7",
      "P 1 2 1 -inf:0x1p+0:7",
      "P 1 2 1 0x1p+0:nan(0x5):7",
      "P 1 2 1 0x1p+1024:0x1p+0:7",  // overflows to inf
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse(line).has_value()) << "'" << line << "'";
  }
}

TEST(ShardProtocol, AssignSeedFrontierRoundTripsExactDoubleBits) {
  Message m;
  m.kind = MessageKind::kAssign;
  m.shard = 3;
  m.attempt = 7;
  m.first = 100;
  m.last = 200;
  m.run = 9;
  // Exact-representation stress: a repeating fraction, a denormal, a
  // huge magnitude and a negative zero must all survive the wire with
  // their double bits intact (%a hex floats).
  m.seed = {{0.1, 12345.6789, 42},
            {5e-324, 1.7976931348623157e308, 0},
            {-0.0, 1.0 / 3.0, 1013253}};
  const std::string line = encode(m);
  EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
  const std::optional<Message> back = parse(line);
  ASSERT_TRUE(back.has_value()) << line;
  EXPECT_EQ(*back, m) << line;
}

TEST(ShardProtocol, AssignShortFormParsesAsEmptySeed) {
  // v1 peers never send the seed tail; the long-form parser must accept
  // their records unchanged.
  const std::optional<Message> m = parse("A 3 7 100 200 9");
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->seed.empty());
}

TEST(ShardProtocol, DoneStatsTailRoundTrips) {
  Message m;
  m.kind = MessageKind::kDone;
  m.shard = 5;
  m.attempt = 6;
  m.has_stats = true;
  m.evaluated = 51040;
  m.pruned = 962214;
  EXPECT_EQ(encode(m), "D 5 6 51040 962214\n");
  const std::optional<Message> back = parse(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
  // The v1 short form stays the v1 short form.
  const std::optional<Message> short_form = parse("D 5 6");
  ASSERT_TRUE(short_form.has_value());
  EXPECT_FALSE(short_form->has_stats);
}

TEST(ShardProtocol, RejectsMalformedSeedAndStatsTails) {
  const char* bad[] = {
      "A 1 2 3 4 5 2 0x1p+0:0x1p+1:7",  // n=2 but one triple
      "A 1 2 3 4 5 1 0x1p+0:0x1p+1",    // triple missing its tag
      "A 1 2 3 4 5 1 nope",             // not a triple at all
      "A 1 2 3 4 5 x",                  // count is not a number
      "D 1 2 3",                        // evaluated without pruned
      "D 1 2 3 4 5",                    // trailing field after stats
      "D 1 2 x 4",                      // non-numeric evaluated
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse(line).has_value()) << "'" << line << "'";
  }
}

TEST(ShardProtocol, ParsesWithOrWithoutTrailingNewline) {
  EXPECT_TRUE(parse("R 1 2 3\n").has_value());
  EXPECT_TRUE(parse("R 1 2 3").has_value());
  EXPECT_TRUE(parse("R 1 2 3\r\n").has_value());
}

TEST(ShardProtocol, FailureDetailKeepsInternalSpaces) {
  const std::optional<Message> m =
      parse("F 4 9 injected fault at failpoint 'shard.heartbeat' (hit 2)");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, MessageKind::kFailed);
  EXPECT_EQ(m->detail,
            "injected fault at failpoint 'shard.heartbeat' (hit 2)");
}

TEST(ShardProtocol, EncodeFlattensNewlinesInFailureDetail) {
  // A multi-line exception message must not forge extra protocol lines.
  const std::string line = encode(failed_msg(1, 1, "line one\nline two"));
  EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
  const std::optional<Message> back = parse(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->detail.find('\n'), std::string::npos);
}

TEST(ShardProtocol, RejectsMalformedRecords) {
  const char* bad[] = {
      "",                  // empty line
      "Z 1 2",             // unknown kind
      "R 1 2",             // progress wants a cursor
      "R 1 2 3 4",         // trailing field
      "A 1 2 3",           // assign wants first, last and run id
      "A 1 2 3 4",         // assign without the run id
      "A 1 2 3 4 5 6",     // assign with a trailing field
      "D 1",               // done wants shard and attempt
      "D 1 2 3",           // done takes nothing else
      "R one 2 3",         // non-numeric shard
      "R 1 2 3x",          // trailing garbage inside a number
      "R -1 2 3",          // negative
      "R 99999999999999999999 1 0",  // overflow
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse(line).has_value()) << "'" << line << "'";
  }
}

TEST(ShardProtocol, LineBufferSplitsCompleteLines) {
  LineBuffer buffer;
  buffer.feed("D 1 2\nR 3 4 5\n");
  const std::vector<std::string> lines = buffer.take();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "D 1 2");
  EXPECT_EQ(lines[1], "R 3 4 5");
  EXPECT_EQ(buffer.pending(), 0u);
  EXPECT_TRUE(buffer.take().empty()) << "take() must clear the queue";
}

TEST(ShardProtocol, LineBufferReassemblesTornRecords) {
  // A heartbeat split across three read() chunks, byte by byte where it
  // matters, must come out whole.
  LineBuffer buffer;
  buffer.feed("R 7 ");
  EXPECT_TRUE(buffer.take().empty());
  EXPECT_GT(buffer.pending(), 0u);
  buffer.feed("12 40");
  EXPECT_TRUE(buffer.take().empty());
  buffer.feed("96\nD 7 12\nF 1 2 bo");
  const std::vector<std::string> lines = buffer.take();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "R 7 12 4096");
  EXPECT_EQ(lines[1], "D 7 12");
  buffer.feed("om\n");
  const std::vector<std::string> rest = buffer.take();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], "F 1 2 boom");
  EXPECT_EQ(buffer.pending(), 0u);
}

TEST(ShardProtocol, LineBufferFeedsOfOneByteEach) {
  LineBuffer buffer;
  const std::string stream = "R 1 2 3\nD 1 2\n";
  for (char c : stream) buffer.feed({&c, 1});
  const std::vector<std::string> lines = buffer.take();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(parse(lines[0])->kind, MessageKind::kProgress);
  EXPECT_EQ(parse(lines[1])->kind, MessageKind::kDone);
}

// ---------------------------------------------------------------------
// Property/fuzz coverage: whatever a hostile or corrupted peer sends,
// parse() returns a typed nullopt or a message that survives its own
// re-encode — it never crashes, never over-allocates, never misreads.

/// Every line the corpus mutates: one well-formed encoding per kind,
/// tails included.
std::vector<std::string> corpus_lines() {
  Message welcome;
  welcome.kind = MessageKind::kWelcome;
  welcome.run = 7;
  Message ping;
  ping.kind = MessageKind::kPing;
  Message bye;
  bye.kind = MessageKind::kBye;
  Message assign_seeded = assign_msg(3, 7, 100, 200, 9);
  assign_seeded.seed = {{0.1, 2.5, 42}, {5e-324, 1e308, 9}};
  Message done_stats = done_msg(5, 6);
  done_stats.has_stats = true;
  done_stats.evaluated = 51040;
  done_stats.pruned = 962214;
  std::vector<std::string> lines;
  for (const Message& m :
       {assign_msg(1, 2, 3, 4, 5), assign_seeded, progress_msg(12, 99, 4096),
        done_msg(5, 6), done_stats, failed_msg(2, 3, "std::bad_alloc"),
        hello_msg(0xabad1dea, 3), welcome,
        result_msg(7, 11, {{1.5, 2.5, 3}, {0.25, 8.0, 9}}), ping, bye}) {
    lines.push_back(encode(m));
  }
  return lines;
}

/// The invariant every surviving parse must satisfy: its re-encode
/// parses back to the identical message.
void expect_self_consistent(const std::string& line) {
  const std::size_t nl = line.find('\n');
  if (nl != std::string::npos && nl + 1 < line.size()) {
    // A mutation spliced in an interior newline: the transport's
    // LineBuffer would split here, so each piece is its own line.
    expect_self_consistent(line.substr(0, nl));
    expect_self_consistent(line.substr(nl + 1));
    return;
  }
  const std::optional<Message> m = parse(line);
  if (!m.has_value()) return;
  const std::optional<Message> again = parse(encode(*m));
  ASSERT_TRUE(again.has_value()) << "re-encode unparseable for '" << line
                                 << "' -> '" << encode(*m) << "'";
  EXPECT_EQ(*again, *m) << "'" << line << "'";
}

TEST(ShardProtocol, TruncationAtEveryPrefixNeverCrashes) {
  for (const std::string& line : corpus_lines()) {
    for (std::size_t len = 0; len <= line.size(); ++len) {
      expect_self_consistent(line.substr(0, len));
    }
  }
}

TEST(ShardProtocol, EmbeddedNulsNeverCorruptAParse) {
  // A NUL spliced into any numeric position must read as malformed,
  // not as a terminator that hides trailing bytes from validation.
  for (const std::string& line : corpus_lines()) {
    for (std::size_t pos = 0; pos < line.size(); ++pos) {
      std::string bent = line;
      bent[pos] = '\0';
      expect_self_consistent(bent);
    }
  }
  std::string sneaky = "R 1 2 3";
  sneaky += '\0';
  sneaky += "4";
  EXPECT_FALSE(parse(sneaky).has_value())
      << "NUL must not hide trailing garbage";
}

TEST(ShardProtocol, DeterministicFuzzNeverCrashesTheParser) {
  // 20k mutated lines from a fixed seed: byte flips, splices of hostile
  // tokens (huge counts, sign flips, hex floats, NULs), duplications
  // and shuffles. The parser must stay total and self-consistent.
  std::mt19937 rng(0x5eed5eed);
  const std::vector<std::string> corpus = corpus_lines();
  const std::string hostile[] = {
      "99999999999999999999", "18446744073709551615", "-1", "+5",
      "65537",  "0x1p+1024", "nan", "inf", " ", "::", ":", "\t",
      std::string(1, '\0'), std::string(300, '9'), std::string(300, ' ')};
  std::uniform_int_distribution<std::size_t> pick_line(0, corpus.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_hostile(
      0, std::size(hostile) - 1);
  std::uniform_int_distribution<int> pick_op(0, 3);
  std::uniform_int_distribution<int> pick_byte(0, 255);
  for (int iter = 0; iter < 20000; ++iter) {
    std::string line = corpus[pick_line(rng)];
    const int mutations = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < mutations; ++i) {
      if (line.empty()) break;
      std::uniform_int_distribution<std::size_t> pick_pos(0,
                                                          line.size() - 1);
      const std::size_t pos = pick_pos(rng);
      switch (pick_op(rng)) {
        case 0:  // flip a byte
          line[pos] = static_cast<char>(pick_byte(rng));
          break;
        case 1:  // splice in a hostile token
          line.insert(pos, hostile[pick_hostile(rng)]);
          break;
        case 2:  // delete a span
          line.erase(pos, 1 + rng() % 7);
          break;
        case 3:  // duplicate a span
          line.insert(pos, line.substr(pos, 1 + rng() % 9));
          break;
      }
    }
    expect_self_consistent(line);
  }
}

}  // namespace
}  // namespace hec::shard
