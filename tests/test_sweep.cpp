// Sweep-engine equivalence: the memoized + streaming sweeps must return
// the naive materialize-sort-scan reference's frontier bit for bit —
// same sizes, times, energies and enumeration tags — for every
// workload, any enumeration limits, any block/compaction sizing and any
// worker count.
#include "hec/sweep/sweep.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <utility>
#include <vector>

#include "hec/config/robust_evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/parallel/thread_pool.h"
#include "hec/workloads/workload.h"

namespace hec {
namespace {

CharacterizeOptions opts() {
  CharacterizeOptions o;
  o.baseline_units = 8000.0;
  return o;
}

struct WorkloadCase {
  const char* name;
  NodeTypeModel arm;
  NodeTypeModel amd;
};

void expect_identical(const SweepResult& got, const SweepResult& want,
                      const char* label) {
  EXPECT_EQ(got.stats.configs, want.stats.configs) << label;
  ASSERT_EQ(got.frontier.size(), want.frontier.size()) << label;
  for (std::size_t i = 0; i < got.frontier.size(); ++i) {
    EXPECT_EQ(got.frontier[i], want.frontier[i])
        << label << " frontier point " << i;
  }
}

// Characterisation is the expensive step: do it once per workload for
// the whole suite.
class SweepEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const NodeSpec arm = arm_cortex_a9();
    const NodeSpec amd = amd_opteron_k10();
    cases_ = new std::vector<WorkloadCase>();
    const std::pair<const char*, Workload> workloads[] = {
        {"ep", workload_ep()},
        {"memcached", workload_memcached()},
        {"x264", workload_x264()},
        {"blackscholes", workload_blackscholes()},
        {"julius", workload_julius()},
        {"rsa2048", workload_rsa2048()},
    };
    for (const auto& [name, w] : workloads) {
      cases_->push_back({name, build_node_model(arm, w, opts()),
                         build_node_model(amd, w, opts())});
    }
  }
  static void TearDownTestSuite() {
    delete cases_;
    cases_ = nullptr;
  }

  static const WorkloadCase& ep() { return cases_->front(); }

  static std::vector<WorkloadCase>* cases_;
};

std::vector<WorkloadCase>* SweepEquivalence::cases_ = nullptr;

TEST_F(SweepEquivalence, AllWorkloadsMatchReferenceBitForBit) {
  const EnumerationLimits limits{3, 2};
  const double work_units = 5e5;
  for (const WorkloadCase& c : *cases_) {
    const SweepResult fast =
        sweep_frontier(c.arm, c.amd, limits, work_units);
    const SweepResult naive =
        sweep_frontier_reference(c.arm, c.amd, limits, work_units);
    expect_identical(fast, naive, c.name);
    EXPECT_FALSE(fast.frontier.empty()) << c.name;
  }
}

TEST_F(SweepEquivalence, RandomLimitsAndWorkProperty) {
  std::mt19937 rng(2024);
  std::uniform_int_distribution<int> pick_nodes(0, 5);
  std::uniform_real_distribution<double> pick_exp(4.0, 7.0);
  for (int round = 0; round < 10; ++round) {
    EnumerationLimits limits{pick_nodes(rng), pick_nodes(rng)};
    if (limits.max_arm_nodes == 0 && limits.max_amd_nodes == 0) {
      limits.max_arm_nodes = 1;  // empty spaces are rejected upstream
    }
    const double work_units = std::pow(10.0, pick_exp(rng));
    const SweepResult fast =
        sweep_frontier(ep().arm, ep().amd, limits, work_units);
    const SweepResult naive =
        sweep_frontier_reference(ep().arm, ep().amd, limits, work_units);
    expect_identical(fast, naive, "random round");
  }
}

TEST_F(SweepEquivalence, BlockAndCompactionSizingIsInvisible) {
  const EnumerationLimits limits{4, 3};
  const double work_units = 1e6;
  const SweepResult want =
      sweep_frontier_reference(ep().arm, ep().amd, limits, work_units);
  for (const auto [block, compact] :
       {std::pair<std::size_t, std::size_t>{1, 1},
        {7, 1},
        {97, 3},
        {4096, 16384}}) {
    SweepOptions o;
    o.block = block;
    o.compact_limit = compact;
    expect_identical(
        sweep_frontier(ep().arm, ep().amd, limits, work_units, o), want,
        "block/compact variant");
  }
}

TEST_F(SweepEquivalence, ExplicitPoolMatchesSerial) {
  const EnumerationLimits limits{5, 4};
  const double work_units = 2e6;
  SweepOptions serial;
  serial.parallel = false;
  const SweepResult want =
      sweep_frontier(ep().arm, ep().amd, limits, work_units, serial);
  EXPECT_EQ(want.stats.workers, 1u);

  ThreadPool pool(4);
  SweepOptions parallel;
  parallel.pool = &pool;
  parallel.block = 64;  // many claims so all workers engage
  parallel.compact_limit = 32;
  const SweepResult got =
      sweep_frontier(ep().arm, ep().amd, limits, work_units, parallel);
  EXPECT_GT(got.stats.workers, 1u);
  expect_identical(got, want, "pool(4)");
  expect_identical(
      got, sweep_frontier_reference(ep().arm, ep().amd, limits, work_units),
      "pool(4) vs reference");
}

TEST_F(SweepEquivalence, RobustSweepMatchesReference) {
  FaultConfig faults;
  faults.mttf_s = 4000.0;
  faults.straggler_prob = 0.2;
  faults.straggler_window_s = 30.0;
  faults.checkpoint_interval_s = 500.0;
  faults.checkpoint_cost_s = 5.0;
  MonteCarloOptions mc;
  mc.trials = 6;
  const RobustConfigEvaluator evaluator(ep().arm, ep().amd, faults, mc);
  const EnumerationLimits limits{2, 1};
  const double work_units = 1e5;
  for (const double deadline_s : {50.0, 1e6}) {
    for (const double max_miss : {0.0, 0.5, 1.0}) {
      const SweepResult fast = sweep_robust_frontier(
          evaluator, limits, work_units, deadline_s, max_miss);
      const SweepResult naive = sweep_robust_frontier_reference(
          evaluator, limits, work_units, deadline_s, max_miss);
      expect_identical(fast, naive, "robust");
    }
  }
}

TEST_F(SweepEquivalence, RobustSweepOnExplicitPoolMatchesSerial) {
  FaultConfig faults;
  faults.mttf_s = 3000.0;
  faults.checkpoint_interval_s = 400.0;
  faults.checkpoint_cost_s = 2.0;
  MonteCarloOptions mc;
  mc.trials = 4;
  const RobustConfigEvaluator evaluator(ep().arm, ep().amd, faults, mc);
  const EnumerationLimits limits{2, 2};
  SweepOptions serial;
  serial.parallel = false;
  const SweepResult want = sweep_robust_frontier(evaluator, limits, 1e5,
                                                 100.0, 0.8, serial);
  ThreadPool pool(3);
  SweepOptions parallel;
  parallel.pool = &pool;
  parallel.robust_block = 8;
  const SweepResult got = sweep_robust_frontier(evaluator, limits, 1e5,
                                                100.0, 0.8, parallel);
  expect_identical(got, want, "robust pool(3)");
}

TEST_F(SweepEquivalence, MultiTypeSweepMatchesReference) {
  // Three-type space: both paper types plus a second ARM deployment
  // running the memcached characterisation.
  const NodeTypeModel third =
      build_node_model(arm_cortex_a9(), workload_memcached(), opts());
  const std::vector<const NodeTypeModel*> models = {&ep().arm, &ep().amd,
                                                    &third};
  const std::vector<int> limits = {2, 1, 2};
  const double work_units = 2e5;
  const SweepResult fast =
      sweep_multi_frontier(models, limits, work_units);
  const SweepResult naive =
      sweep_multi_frontier_reference(models, limits, work_units);
  expect_identical(fast, naive, "multi");

  ThreadPool pool(4);
  SweepOptions parallel;
  parallel.pool = &pool;
  parallel.block = 16;
  parallel.compact_limit = 8;
  expect_identical(
      sweep_multi_frontier(models, limits, work_units, parallel), naive,
      "multi pool(4)");
}

}  // namespace
}  // namespace hec
