#include "hec/queueing/window_analysis.h"

#include <gtest/gtest.h>

#include <vector>

#include "hec/util/expect.h"

namespace hec {
namespace {

// Two synthetic configurations: a fast power-hungry one and a slow
// frugal one (the AMD-ish vs ARM-ish poles of Fig. 10).
std::vector<ConfigOutcome> two_outcomes() {
  std::vector<ConfigOutcome> outcomes(2);
  outcomes[0].t_s = 0.05;     // fast
  outcomes[0].energy_j = 3.0;
  outcomes[1].t_s = 0.5;      // slow
  outcomes[1].energy_j = 1.0;
  return outcomes;
}

TEST(WindowAnalysis, EnergyAndResponseComposition) {
  const auto outcomes = two_outcomes();
  const std::vector<double> idle_w{45.0, 1.4};
  WindowOptions opts;
  opts.window_s = 20.0;
  opts.utilization = 0.25;
  const auto points = window_points(outcomes, idle_w, opts);
  ASSERT_EQ(points.size(), 2u);

  // Config 0: lambda = 0.25/0.05 = 5 jobs/s -> 100 jobs in 20 s.
  EXPECT_NEAR(points[0].jobs_served, 100.0, 1e-9);
  // Busy 5 s, idle 15 s at 45 W.
  EXPECT_NEAR(points[0].window_energy_j, 100.0 * 3.0 + 15.0 * 45.0, 1e-6);
  // M/D/1 response at rho=0.25: S (1 + rho/(2(1-rho))) = S * 7/6.
  EXPECT_NEAR(points[0].response_s, 0.05 * (1.0 + 0.25 / 1.5), 1e-12);

  // Config 1: lambda = 0.5 -> 10 jobs; busy 5 s, idle 15 s at 1.4 W.
  EXPECT_NEAR(points[1].jobs_served, 10.0, 1e-9);
  EXPECT_NEAR(points[1].window_energy_j, 10.0 * 1.0 + 15.0 * 1.4, 1e-6);
}

TEST(WindowAnalysis, HigherUtilizationServesMoreJobsAndWaitsLonger) {
  const auto outcomes = two_outcomes();
  const std::vector<double> idle_w{45.0, 1.4};
  WindowOptions low{20.0, 0.05}, high{20.0, 0.5};
  const auto lo = window_points(outcomes, idle_w, low);
  const auto hi = window_points(outcomes, idle_w, high);
  for (std::size_t i = 0; i < lo.size(); ++i) {
    EXPECT_GT(hi[i].jobs_served, lo[i].jobs_served);
    EXPECT_GT(hi[i].response_s, lo[i].response_s);
  }
}

TEST(WindowAnalysis, IdleDrawDominatesAtLowUtilization) {
  // At 5% utilisation the powered-on idle floor is most of the window
  // energy for the high-idle configuration — the Fig. 10 effect that
  // makes ARM-only configurations an order of magnitude cheaper.
  const auto outcomes = two_outcomes();
  const std::vector<double> idle_w{45.0, 1.4};
  const auto points = window_points(outcomes, idle_w, WindowOptions{20.0, 0.05});
  const double idle_energy_0 = (20.0 - points[0].jobs_served * 0.05) * 45.0;
  EXPECT_GT(idle_energy_0 / points[0].window_energy_j, 0.7);
  EXPECT_GT(points[0].window_energy_j, 10.0 * points[1].window_energy_j);
}

TEST(WindowAnalysis, FrontierPrefersBothPoles) {
  const auto outcomes = two_outcomes();
  const std::vector<double> idle_w{45.0, 1.4};
  const auto points =
      window_points(outcomes, idle_w, WindowOptions{20.0, 0.25});
  const auto frontier = window_frontier(points);
  // Fast-but-costly and slow-but-frugal are both Pareto optimal.
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier.front().tag, 0u);
  EXPECT_EQ(frontier.back().tag, 1u);
}

TEST(WindowAnalysis, RejectsBadArguments) {
  const auto outcomes = two_outcomes();
  const std::vector<double> wrong_size{1.0};
  EXPECT_THROW(window_points(outcomes, wrong_size, WindowOptions{}),
               ContractViolation);
  const std::vector<double> idle_w{45.0, 1.4};
  EXPECT_THROW(window_points(outcomes, idle_w, WindowOptions{0.0, 0.25}),
               ContractViolation);
  EXPECT_THROW(window_points(outcomes, idle_w, WindowOptions{20.0, 0.0}),
               ContractViolation);
  EXPECT_THROW(window_points(outcomes, idle_w, WindowOptions{20.0, 1.0}),
               ContractViolation);
}

}  // namespace
}  // namespace hec
