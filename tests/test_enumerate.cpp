#include "hec/config/enumerate.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(Enumerate, Footnote2CountFor10Plus10) {
  // The paper: 10 ARM x 5 freq x 4 cores x 10 AMD x 3 freq x 6 cores
  // = 36,000 heterogeneous + 200 ARM-only + 180 AMD-only = 36,380.
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const EnumerationLimits limits{10, 10};
  EXPECT_EQ(expected_config_count(arm, amd, limits), 36380u);
  const auto configs = enumerate_configs(arm, amd, limits);
  EXPECT_EQ(configs.size(), 36380u);
}

TEST(Enumerate, PartitionBySidesMatchesFootnote2) {
  const auto configs = enumerate_configs(arm_cortex_a9(), amd_opteron_k10(),
                                         EnumerationLimits{10, 10});
  std::size_t hetero = 0, arm_only = 0, amd_only = 0;
  for (const auto& c : configs) {
    if (c.heterogeneous()) {
      ++hetero;
    } else if (c.uses_arm()) {
      ++arm_only;
    } else {
      ++amd_only;
    }
  }
  EXPECT_EQ(hetero, 36000u);
  EXPECT_EQ(arm_only, 200u);
  EXPECT_EQ(amd_only, 180u);
}

TEST(Enumerate, AllConfigsAreValidAndUnique) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const auto configs =
      enumerate_configs(arm, amd, EnumerationLimits{3, 2});
  std::set<std::tuple<int, int, double, int, int, double>> seen;
  for (const auto& c : configs) {
    EXPECT_TRUE(c.uses_arm() || c.uses_amd());
    if (c.uses_arm()) {
      EXPECT_GE(c.arm.cores, 1);
      EXPECT_LE(c.arm.cores, arm.cores);
      EXPECT_TRUE(arm.pstates.supports(c.arm.f_ghz));
      EXPECT_LE(c.arm.nodes, 3);
    }
    if (c.uses_amd()) {
      EXPECT_GE(c.amd.cores, 1);
      EXPECT_LE(c.amd.cores, amd.cores);
      EXPECT_TRUE(amd.pstates.supports(c.amd.f_ghz));
      EXPECT_LE(c.amd.nodes, 2);
    }
    seen.insert({c.arm.nodes, c.arm.cores, c.arm.f_ghz, c.amd.nodes,
                 c.amd.cores, c.amd.f_ghz});
  }
  EXPECT_EQ(seen.size(), configs.size());
}

TEST(Enumerate, SmallLimitsClosedForm) {
  const NodeSpec arm = arm_cortex_a9();  // 4 cores x 5 freqs = 20/node
  const NodeSpec amd = amd_opteron_k10();  // 6 x 3 = 18/node
  const EnumerationLimits limits{1, 1};
  EXPECT_EQ(expected_config_count(arm, amd, limits), 20u * 18u + 20u + 18u);
}

TEST(Enumerate, ZeroLimitRemovesOneSide) {
  const auto amd_only = enumerate_configs(arm_cortex_a9(), amd_opteron_k10(),
                                          EnumerationLimits{0, 1});
  EXPECT_EQ(amd_only.size(), 18u);  // 1 node x 6 cores x 3 P-states
  for (const auto& c : amd_only) EXPECT_FALSE(c.uses_arm());
  EXPECT_THROW(enumerate_configs(arm_cortex_a9(), amd_opteron_k10(),
                                 EnumerationLimits{0, 0}),
               ContractViolation);
}

TEST(EnumerateOperatingPoints, FixedMixSweepsPStatesAndCores) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const auto points = enumerate_operating_points(arm, 16, amd, 14);
  EXPECT_EQ(points.size(), 20u * 18u);
  for (const auto& c : points) {
    EXPECT_EQ(c.arm.nodes, 16);
    EXPECT_EQ(c.amd.nodes, 14);
  }
}

void expect_same_config(const ClusterConfig& a, const ClusterConfig& b,
                        std::size_t index) {
  EXPECT_EQ(a.arm.nodes, b.arm.nodes) << "index " << index;
  EXPECT_EQ(a.arm.cores, b.arm.cores) << "index " << index;
  EXPECT_EQ(a.arm.f_ghz, b.arm.f_ghz) << "index " << index;
  EXPECT_EQ(a.amd.nodes, b.amd.nodes) << "index " << index;
  EXPECT_EQ(a.amd.cores, b.amd.cores) << "index " << index;
  EXPECT_EQ(a.amd.f_ghz, b.amd.f_ghz) << "index " << index;
}

TEST(ConfigSpaceLayout, DecodesEveryIndexLikeEnumerateConfigs) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  for (const EnumerationLimits limits :
       {EnumerationLimits{3, 2}, EnumerationLimits{1, 0},
        EnumerationLimits{0, 2}}) {
    const auto configs = enumerate_configs(arm, amd, limits);
    const ConfigSpaceLayout layout(arm, amd, limits);
    ASSERT_EQ(layout.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      expect_same_config(layout.config(i), configs[i], i);
      const ConfigSpaceLayout::Slot s = layout.slot(i);
      if (configs[i].heterogeneous()) {
        EXPECT_NE(s.arm, ConfigSpaceLayout::npos);
        EXPECT_NE(s.amd, ConfigSpaceLayout::npos);
      } else if (configs[i].uses_arm()) {
        EXPECT_EQ(s.amd, ConfigSpaceLayout::npos);
      } else {
        EXPECT_EQ(s.arm, ConfigSpaceLayout::npos);
      }
    }
  }
}

TEST(ForEachConfig, ConcatenationOfBlocksIsEnumerateConfigs) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const EnumerationLimits limits{3, 2};
  const auto want = enumerate_configs(arm, amd, limits);
  for (const std::size_t block : {1u, 7u, 64u, 100000u}) {
    std::vector<ClusterConfig> got;
    std::size_t expected_first = 0;
    for_each_config(arm, amd, limits, block,
                    [&](std::size_t first, std::span<const ClusterConfig> b) {
                      EXPECT_EQ(first, expected_first);
                      EXPECT_LE(b.size(), block);
                      expected_first += b.size();
                      got.insert(got.end(), b.begin(), b.end());
                    });
    ASSERT_EQ(got.size(), want.size()) << "block " << block;
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_same_config(got[i], want[i], i);
    }
  }
}

TEST(EnumerateOperatingPoints, HomogeneousSides) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeSpec amd = amd_opteron_k10();
  const auto arm_only = enumerate_operating_points(arm, 128, amd, 0);
  EXPECT_EQ(arm_only.size(), 20u);
  for (const auto& c : arm_only) {
    EXPECT_EQ(c.arm.nodes, 128);
    EXPECT_FALSE(c.uses_amd());
  }
  const auto amd_only = enumerate_operating_points(arm, 0, amd, 16);
  EXPECT_EQ(amd_only.size(), 18u);
  EXPECT_THROW(enumerate_operating_points(arm, 0, amd, 0),
               ContractViolation);
}

}  // namespace
}  // namespace hec
