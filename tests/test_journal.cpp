// SweepJournal durability contract (hec/resilience/journal.h):
// commit → load round-trips checkpoints bit for bit, and every flavour
// of damage — truncation, garbling, CRC mismatch, wrong space — is a
// load *status* (restart from scratch), never an exception and never a
// wrong checkpoint.
#include "hec/resilience/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace hec::resilience {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

/// Awkward doubles (non-terminating binary fractions, tiny and large
/// magnitudes) so the round-trip test actually exercises shortest-
/// round-trip number rendering.
std::vector<TimeEnergyPoint> awkward_frontier() {
  return {{0.1, 1.0 / 3.0, 7},
          {12.75, 0.2, 40},
          {1234.5678901234567, 1e-9, 999}};
}

TEST(SweepJournal, MissingFileLoadsAsNone) {
  const SweepJournal journal(temp_path("journal_none.jsonl"), "space A",
                             100, 1e5);
  EXPECT_EQ(journal.load().status, JournalLoadStatus::kNone);
}

TEST(SweepJournal, CommitLoadRoundTripsBitForBit) {
  SweepJournal journal(temp_path("journal_roundtrip.jsonl"), "space A", 1000,
                       1e5);
  const JournalCheckpoint committed{512, 3, awkward_frontier()};
  journal.commit(committed);

  const JournalLoadResult loaded = journal.load();
  ASSERT_EQ(loaded.status, JournalLoadStatus::kOk) << loaded.detail;
  EXPECT_EQ(loaded.checkpoint.cursor, committed.cursor);
  EXPECT_EQ(loaded.checkpoint.seq, committed.seq);
  ASSERT_EQ(loaded.checkpoint.frontier.size(), committed.frontier.size());
  for (std::size_t i = 0; i < committed.frontier.size(); ++i) {
    EXPECT_EQ(loaded.checkpoint.frontier[i], committed.frontier[i])
        << "frontier point " << i;
  }
}

TEST(SweepJournal, LaterCommitReplacesEarlier) {
  SweepJournal journal(temp_path("journal_replace.jsonl"), "space A", 1000,
                       1e5);
  journal.commit({100, 1, awkward_frontier()});
  journal.commit({700, 2, {{1.0, 2.0, 5}}});
  const JournalLoadResult loaded = journal.load();
  ASSERT_EQ(loaded.status, JournalLoadStatus::kOk);
  EXPECT_EQ(loaded.checkpoint.cursor, 700u);
  EXPECT_EQ(loaded.checkpoint.seq, 2u);
  EXPECT_EQ(loaded.checkpoint.frontier.size(), 1u);
}

TEST(SweepJournal, RemoveDeletesTheFile) {
  SweepJournal journal(temp_path("journal_remove.jsonl"), "space A", 10,
                       1e5);
  journal.commit({5, 1, {}});
  journal.remove();
  EXPECT_EQ(journal.load().status, JournalLoadStatus::kNone);
}

TEST(SweepJournal, EmptyFileIsCorrupt) {
  const std::string path = temp_path("journal_empty.jsonl");
  write_file(path, "");
  const SweepJournal journal(path, "space A", 10, 1e5);
  EXPECT_EQ(journal.load().status, JournalLoadStatus::kCorrupt);
}

TEST(SweepJournal, TruncatedHeaderIsCorrupt) {
  SweepJournal journal(temp_path("journal_truncated.jsonl"), "space A", 1000,
                       1e5);
  journal.commit({512, 1, awkward_frontier()});
  const std::string text = read_file(journal.path());
  write_file(journal.path(), text.substr(0, text.size() / 3));
  EXPECT_EQ(journal.load().status, JournalLoadStatus::kCorrupt);
}

TEST(SweepJournal, GarbledByteFailsCrc) {
  SweepJournal journal(temp_path("journal_garbled.jsonl"), "space A", 1000,
                       1e5);
  journal.commit({512, 1, awkward_frontier()});
  std::string text = read_file(journal.path());
  // Flip one digit inside the checkpoint payload (cursor 512 → 513):
  // the CRC must catch silent bit rot, not just truncation.
  const std::size_t pos = text.find("512");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 2] = '3';
  write_file(journal.path(), text);
  const JournalLoadResult loaded = journal.load();
  EXPECT_EQ(loaded.status, JournalLoadStatus::kCorrupt);
  EXPECT_NE(loaded.detail.find("CRC"), std::string::npos) << loaded.detail;
}

TEST(SweepJournal, NotJsonIsCorrupt) {
  const std::string path = temp_path("journal_notjson.jsonl");
  write_file(path, "this is not a journal\nat all\n");
  const SweepJournal journal(path, "space A", 10, 1e5);
  EXPECT_EQ(journal.load().status, JournalLoadStatus::kCorrupt);
}

TEST(SweepJournal, DifferentSpaceIsMismatch) {
  const std::string path = temp_path("journal_space.jsonl");
  SweepJournal writer(path, "space A", 1000, 1e5);
  writer.commit({512, 1, awkward_frontier()});
  const SweepJournal other_space(path, "space B", 1000, 1e5);
  EXPECT_EQ(other_space.load().status, JournalLoadStatus::kMismatch);
  const SweepJournal other_total(path, "space A", 2000, 1e5);
  EXPECT_EQ(other_total.load().status, JournalLoadStatus::kMismatch);
  const SweepJournal other_work(path, "space A", 1000, 2e5);
  EXPECT_EQ(other_work.load().status, JournalLoadStatus::kMismatch);
}

TEST(SweepJournal, CursorBeyondTotalIsCorrupt) {
  const std::string path = temp_path("journal_cursor.jsonl");
  // Commit against a large space, reload claiming a smaller one with
  // the header rewritten to match: cursor > total must be rejected.
  SweepJournal writer(path, "space A", 1000, 1e5);
  writer.commit({900, 1, {{1.0, 2.0, 3}}});
  std::string text = read_file(path);
  const std::size_t pos = text.find("1000");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "800");
  write_file(path, text);
  const SweepJournal reader(path, "space A", 800, 1e5);
  const JournalLoadResult loaded = reader.load();
  EXPECT_NE(loaded.status, JournalLoadStatus::kOk) << loaded.detail;
}

TEST(SweepJournal, UnsortedFrontierIsCorrupt) {
  // A checkpoint frontier that is not strictly time-sorted cannot have
  // been produced by the accumulator; treat it as damage.
  const std::string path = temp_path("journal_unsorted.jsonl");
  SweepJournal writer(path, "space A", 1000, 1e5);
  writer.commit({512, 1, {{2.0, 1.0, 0}, {1.0, 3.0, 1}}});
  // commit() is trusted input, so the damage has to be injected at the
  // file level — but building that requires re-deriving the CRC. The
  // cheap equivalent: verify load() rejects it if it somehow landed.
  const JournalLoadResult loaded = writer.load();
  EXPECT_EQ(loaded.status, JournalLoadStatus::kCorrupt) << loaded.detail;
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Standard FNV-1a 64-bit test vectors; the CRC's stability is part of
  // the on-disk format.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace hec::resilience
