// ProfileTree: folding flat span streams into an aggregated call tree.
//
// The load-bearing property is determinism: sidecar telemetry arrives
// in completion order, so the fold must yield a byte-identical profile
// for any permutation of the same spans. The rest pins the self-time
// arithmetic, the "(unknown)" stand-in for parents lost to ring wrap,
// and the external-track container frames.
#include "hec/obs/profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "hec/obs/export.h"
#include "hec/obs/obs.h"

namespace {

using hec::obs::ProfileNode;
using hec::obs::ProfileSpan;
using hec::obs::ProfileTree;

ProfileSpan span(std::uint32_t tid, std::uint32_t depth, std::string name,
                 double start_us, double dur_us) {
  ProfileSpan s;
  s.tid = tid;
  s.depth = depth;
  s.name = std::move(name);
  s.start_us = start_us;
  s.dur_us = dur_us;
  return s;
}

/// A two-thread workload: nested frames on tid 1, a repeated leaf on
/// tid 2 sharing the same call path as tid 1's.
std::vector<ProfileSpan> nested_batch() {
  return {
      span(1, 0, "root", 0.0, 100.0),      span(1, 1, "child_a", 5.0, 30.0),
      span(1, 2, "leaf", 10.0, 10.0),      span(1, 1, "child_b", 40.0, 20.0),
      span(2, 0, "root", 0.0, 50.0),       span(2, 1, "child_a", 5.0, 25.0),
      span(2, 2, "leaf", 6.0, 5.0),        span(2, 2, "leaf", 15.0, 5.0),
  };
}

std::string json_of(const ProfileTree& tree) {
  std::ostringstream out;
  tree.write_json(out);
  return out.str();
}

TEST(ProfileTree, FoldsNestingByDepthAndMergesThreads) {
  ProfileTree tree;
  tree.add(nested_batch());

  ASSERT_EQ(tree.roots().size(), 1u);
  const ProfileNode& root = tree.roots().at("root");
  EXPECT_EQ(root.count, 2u);  // one root frame per thread
  EXPECT_DOUBLE_EQ(root.total_us, 150.0);

  const ProfileNode& child_a = root.children.at("child_a");
  EXPECT_EQ(child_a.count, 2u);
  EXPECT_DOUBLE_EQ(child_a.total_us, 55.0);
  const ProfileNode& leaf = child_a.children.at("leaf");
  EXPECT_EQ(leaf.count, 3u);  // 1 on tid 1, 2 on tid 2
  EXPECT_DOUBLE_EQ(leaf.total_us, 20.0);

  // Self = total minus direct children: root 150 - (55 + 20) = 75.
  EXPECT_DOUBLE_EQ(root.self_us(), 75.0);
  EXPECT_DOUBLE_EQ(child_a.self_us(), 35.0);
  EXPECT_DOUBLE_EQ(leaf.self_us(), 20.0);  // leaves keep everything
}

TEST(ProfileTree, FoldIsOrderIndependent) {
  const std::vector<ProfileSpan> batch = nested_batch();
  ProfileTree reference;
  reference.add(batch);
  const std::string want = json_of(reference);

  std::mt19937 rng(7);
  for (int round = 0; round < 20; ++round) {
    std::vector<ProfileSpan> shuffled = batch;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    ProfileTree tree;
    tree.add(std::move(shuffled));
    EXPECT_EQ(json_of(tree), want) << "round " << round;
  }
}

TEST(ProfileTree, IncrementalAddMatchesOneBatch) {
  const std::vector<ProfileSpan> batch = nested_batch();
  ProfileTree whole;
  whole.add(batch);

  // Feeding per-thread slices (how merged sidecars arrive) must agree.
  std::vector<ProfileSpan> tid1;
  std::vector<ProfileSpan> tid2;
  for (const ProfileSpan& s : batch) (s.tid == 1 ? tid1 : tid2).push_back(s);
  ProfileTree sliced;
  sliced.add(std::move(tid2));
  sliced.add(std::move(tid1));
  EXPECT_EQ(json_of(sliced), json_of(whole));
}

TEST(ProfileTree, LostParentsNestUnderUnknownFrames) {
  // Ring wrap ate the depth-0/1 parents: the surviving depth-2 span must
  // land under synthetic "(unknown)" frames, not get promoted to a root.
  ProfileTree tree;
  tree.add({span(1, 2, "leaf", 10.0, 5.0)});

  const ProfileNode& u0 = tree.roots().at("(unknown)");
  EXPECT_EQ(u0.count, 0u);  // synthetic: never measured
  const ProfileNode& u1 = u0.children.at("(unknown)");
  const ProfileNode& leaf = u1.children.at("leaf");
  EXPECT_EQ(leaf.count, 1u);
  EXPECT_DOUBLE_EQ(leaf.total_us, 5.0);
  EXPECT_DOUBLE_EQ(u0.self_us(), 0.0);
  EXPECT_DOUBLE_EQ(u1.self_us(), 0.0);
}

TEST(ProfileTree, ExternalTracksFoldUnderLabelledContainers) {
  hec::obs::ExternalTrace external;
  hec::obs::ExternalTrack worker;
  worker.label = "worker shard=0";
  worker.pid = 2;
  worker.spans.push_back({"shard.worker_sweep", 0.0, 80.0, 1, 0, 0.0, -1.0});
  worker.spans.push_back({"sweep.block", 10.0, 30.0, 1, 1, 0.0, -1.0});
  external.tracks.push_back(worker);

  hec::obs::ExternalTrack dead = worker;
  dead.superseded = true;
  dead.pid = 3;
  external.tracks.push_back(dead);

  ProfileTree tree;
  tree.add(external);

  const ProfileNode& container = tree.roots().at("worker shard=0");
  EXPECT_EQ(container.count, 0u);  // container frame, not a measured span
  EXPECT_DOUBLE_EQ(container.total_us, 80.0);
  EXPECT_DOUBLE_EQ(container.self_us(), 0.0);
  const ProfileNode& sweep = container.children.at("shard.worker_sweep");
  EXPECT_EQ(sweep.count, 1u);
  EXPECT_DOUBLE_EQ(sweep.children.at("sweep.block").total_us, 30.0);

  // Superseded attempts keep the Chrome exporter's suffix so wasted work
  // is attributed separately from the run that counted.
  EXPECT_TRUE(tree.roots().count("worker shard=0 [superseded]"));
}

TEST(ProfileTree, SimWindowsMergeToTheUnion) {
  ProfileSpan a = span(1, 0, "sim.node_run", 0.0, 10.0);
  a.has_sim = true;
  a.sim_begin_s = 5.0;
  a.sim_end_s = 9.0;
  ProfileSpan b = span(1, 0, "sim.node_run", 20.0, 10.0);
  b.has_sim = true;
  b.sim_begin_s = 1.0;
  b.sim_end_s = 7.0;
  ProfileTree tree;
  tree.add({a, b});

  const ProfileNode& node = tree.roots().at("sim.node_run");
  EXPECT_TRUE(node.has_sim);
  EXPECT_DOUBLE_EQ(node.sim_begin_s, 1.0);
  EXPECT_DOUBLE_EQ(node.sim_end_s, 9.0);
}

TEST(ProfileTree, RowsAreLexicographicPreOrder) {
  ProfileTree tree;
  tree.add(nested_batch());
  const std::vector<ProfileTree::Row> rows = tree.rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].path, "root");
  EXPECT_EQ(rows[1].path, "root;child_a");
  EXPECT_EQ(rows[2].path, "root;child_a;leaf");
  EXPECT_EQ(rows[3].path, "root;child_b");
  EXPECT_EQ(rows[2].depth, 2u);
}

TEST(ProfileTree, CollapsedOutputWeighsSelfTime) {
  ProfileTree tree;
  tree.add(nested_batch());
  std::ostringstream out;
  tree.write_collapsed(out);
  EXPECT_EQ(out.str(),
            "root 75\n"
            "root;child_a 35\n"
            "root;child_a;leaf 20\n"
            "root;child_b 20\n");
}

TEST(ProfileTree, JsonDocumentShapeAndDeterminism) {
  ProfileTree tree;
  tree.add({span(1, 0, "only", 0.0, 1.5)});
  const std::string text = json_of(tree);
  EXPECT_NE(text.find("\"schema\":\"hec-profile/v1\""), std::string::npos);
  EXPECT_NE(text.find("\"only\""), std::string::npos);
  EXPECT_EQ(text, json_of(tree));  // serialisation itself is stable
}

TEST(ProfileTree, EmptyTreeExportsAreWellFormed) {
  ProfileTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_DOUBLE_EQ(tree.total_us(), 0.0);
  std::ostringstream folded;
  tree.write_collapsed(folded);
  EXPECT_EQ(folded.str(), "");
  EXPECT_NE(json_of(tree).find("hec-profile/v1"), std::string::npos);
}

}  // namespace
