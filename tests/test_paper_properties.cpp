// End-to-end checks of the paper's qualitative claims: constant WPI
// across problem scale (Fig. 2), sweet/overlap region structure
// (Figs. 4-5), heterogeneity beating homogeneity (Observation 1), the
// substitution-series behaviour (Observation 2) and the queueing
// amplification (Observation 4).
#include <gtest/gtest.h>

#include <algorithm>

#include "hec/config/budget.h"
#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/pareto/sweet_region.h"
#include "hec/queueing/window_analysis.h"
#include "hec/sim/node_sim.h"

namespace hec {
namespace {

CharacterizeOptions opts() {
  CharacterizeOptions o;
  o.baseline_units = 8000.0;
  return o;
}

// Shared models: characterisation is the expensive step, do it once.
class PaperProperties : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    arm_ = new NodeSpec(arm_cortex_a9());
    amd_ = new NodeSpec(amd_opteron_k10());
    ep_arm_ = new NodeTypeModel(build_node_model(*arm_, workload_ep(), opts()));
    ep_amd_ = new NodeTypeModel(build_node_model(*amd_, workload_ep(), opts()));
    mc_arm_ = new NodeTypeModel(
        build_node_model(*arm_, workload_memcached(), opts()));
    mc_amd_ = new NodeTypeModel(
        build_node_model(*amd_, workload_memcached(), opts()));
  }
  static void TearDownTestSuite() {
    delete arm_;
    delete amd_;
    delete ep_arm_;
    delete ep_amd_;
    delete mc_arm_;
    delete mc_amd_;
  }

  static std::vector<ConfigOutcome> evaluate_space(
      const NodeTypeModel& arm_model, const NodeTypeModel& amd_model,
      double work_units) {
    const auto configs =
        enumerate_configs(*arm_, *amd_, EnumerationLimits{10, 10});
    const ConfigEvaluator eval(arm_model, amd_model);
    return eval.evaluate_all(configs, work_units);
  }

  static std::vector<TimeEnergyPoint> to_points(
      const std::vector<ConfigOutcome>& outcomes) {
    std::vector<TimeEnergyPoint> pts;
    pts.reserve(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      pts.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
    }
    return pts;
  }

  static NodeSpec* arm_;
  static NodeSpec* amd_;
  static NodeTypeModel* ep_arm_;
  static NodeTypeModel* ep_amd_;
  static NodeTypeModel* mc_arm_;
  static NodeTypeModel* mc_amd_;
};

NodeSpec* PaperProperties::arm_ = nullptr;
NodeSpec* PaperProperties::amd_ = nullptr;
NodeTypeModel* PaperProperties::ep_arm_ = nullptr;
NodeTypeModel* PaperProperties::ep_amd_ = nullptr;
NodeTypeModel* PaperProperties::mc_arm_ = nullptr;
NodeTypeModel* PaperProperties::mc_amd_ = nullptr;

TEST_F(PaperProperties, Fig2WpiConstantAcrossProblemScale) {
  // Measure WPI and SPIcore at three problem sizes on both ISAs: the
  // ratios stay constant within measurement noise.
  const Workload ep_workload = workload_ep();
  for (const NodeSpec* spec : {arm_, amd_}) {
    const PhaseDemand& d = ep_workload.demand_for(spec->isa);
    std::vector<double> wpis, spis;
    std::uint64_t seed = 31;
    for (double units : {4000.0, 16000.0, 64000.0}) {
      RunConfig rc;
      rc.cores_used = spec->cores;
      rc.f_ghz = spec->pstates.max_ghz();
      rc.work_units = units;
      rc.seed = seed++;
      const RunResult r = simulate_node(*spec, d, rc);
      wpis.push_back(r.counters.wpi());
      spis.push_back(r.counters.spi_core());
    }
    for (std::size_t i = 1; i < wpis.size(); ++i) {
      EXPECT_NEAR(wpis[i], wpis[0], wpis[0] * 0.02) << spec->name;
      EXPECT_NEAR(spis[i], spis[0], spis[0] * 0.02) << spec->name;
    }
  }
}

TEST_F(PaperProperties, Observation1HeterogeneityBeatsHomogeneity) {
  const auto outcomes = evaluate_space(*ep_arm_, *ep_amd_, 50e6);
  const auto frontier = pareto_frontier(to_points(outcomes));
  const EnergyDeadlineCurve curve(frontier);
  // At deadlines tighter than ARM-only can reach, heterogeneous mixes
  // beat the best AMD-only configuration on energy.
  double best_arm_only_time = 1e300;
  for (const auto& o : outcomes) {
    if (o.config.uses_arm() && !o.config.uses_amd()) {
      best_arm_only_time = std::min(best_arm_only_time, o.t_s);
    }
  }
  const double tight_deadline = best_arm_only_time * 0.8;
  double best_amd_only = 1e300;
  for (const auto& o : outcomes) {
    if (!o.config.uses_arm() && o.t_s <= tight_deadline) {
      best_amd_only = std::min(best_amd_only, o.energy_j);
    }
  }
  const auto best = curve.best_for_deadline(tight_deadline);
  ASSERT_TRUE(best.has_value());
  ASSERT_LT(best_amd_only, 1e300) << "AMD-only cannot meet the deadline";
  EXPECT_LT(best->energy_j, best_amd_only);
  EXPECT_TRUE(outcomes[best->tag].config.heterogeneous());
}

TEST_F(PaperProperties, Fig4EpHasSweetAndOverlapRegions) {
  const auto outcomes = evaluate_space(*ep_arm_, *ep_amd_, 50e6);
  const auto frontier = pareto_frontier(to_points(outcomes));
  auto hetero = [&](std::size_t tag) {
    return outcomes[tag].config.heterogeneous();
  };
  const auto sweet = find_sweet_region(frontier, hetero);
  ASSERT_TRUE(sweet.has_value());
  EXPECT_GT(sweet->size(), 5u);
  EXPECT_LT(sweet->energy_vs_time.slope, 0.0);
  // Compute-bound: an overlap region of homogeneous configs follows.
  const auto overlap = find_overlap_region(frontier, hetero);
  EXPECT_GT(overlap.size(), 0u);
  for (std::size_t i = overlap.begin; i < overlap.end; ++i) {
    EXPECT_FALSE(outcomes[frontier[i].tag].config.uses_amd())
        << "overlap region must be low-power only";
  }
}

TEST_F(PaperProperties, Fig5MemcachedHomogeneousEnergyIsFlat) {
  // The paper's I/O-bound observation: "the energy incurred by memcached
  // on homogeneous systems is constant even as deadline is relaxed" —
  // any homogeneous tail on the frontier spans a negligible energy range
  // (unlike EP's compute-bound overlap region, Fig. 4).
  const auto outcomes = evaluate_space(*mc_arm_, *mc_amd_, 50000.0);
  const auto frontier = pareto_frontier(to_points(outcomes));
  auto hetero = [&](std::size_t tag) {
    return outcomes[tag].config.heterogeneous();
  };
  const auto overlap = find_overlap_region(frontier, hetero);
  if (overlap.size() >= 2) {
    const double span = (frontier[overlap.begin].energy_j -
                         frontier[overlap.end - 1].energy_j) /
                        frontier[overlap.begin].energy_j;
    EXPECT_LT(span, 0.02);
  }
  // Contrast: ARM-only minimum energy is flat across deadlines.
  std::vector<double> arm_only_energies;
  for (const auto& o : outcomes) {
    if (o.config.uses_arm() && !o.config.uses_amd() &&
        o.config.arm.nodes == 10) {
      arm_only_energies.push_back(o.energy_j);
    }
  }
  ASSERT_FALSE(arm_only_energies.empty());
  const auto [lo, hi] = std::minmax_element(arm_only_energies.begin(),
                                            arm_only_energies.end());
  EXPECT_LT((*hi - *lo) / *lo, 0.25);  // no deep energy-time trade
}

TEST_F(PaperProperties, Observation2SubstitutionIntroducesSweetRegion) {
  // Budget mixes: ARM 16:AMD 14 reaches lower energy than AMD-only at
  // relaxed deadlines while AMD 0:16 covers the tightest deadlines.
  const ConfigEvaluator eval(*mc_arm_, *mc_amd_);
  const auto amd_only = enumerate_operating_points(*arm_, 0, *amd_, 16);
  const auto mixed = enumerate_operating_points(*arm_, 16, *amd_, 14);
  const auto amd_out = eval.evaluate_all(amd_only, 50000.0);
  const auto mix_out = eval.evaluate_all(mixed, 50000.0);
  double best_amd = 1e300, best_mix = 1e300;
  for (const auto& o : amd_out) best_amd = std::min(best_amd, o.energy_j);
  for (const auto& o : mix_out) best_mix = std::min(best_mix, o.energy_j);
  EXPECT_LT(best_mix, best_amd);
}

TEST_F(PaperProperties, Observation4QueueingAmplifiesSavings) {
  // With idle energy and waiting time in the picture, higher utilisation
  // raises the energy needed for the same response time.
  const auto points = enumerate_operating_points(*arm_, 16, *amd_, 14);
  const ConfigEvaluator eval(*mc_arm_, *mc_amd_);
  const auto outcomes = eval.evaluate_all(points, 50000.0);
  std::vector<double> idle_w(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    idle_w[i] = eval.powered_idle_w(outcomes[i].config);
  }
  const auto low =
      window_frontier(window_points(outcomes, idle_w, {20.0, 0.05}));
  const auto high =
      window_frontier(window_points(outcomes, idle_w, {20.0, 0.5}));
  const EnergyDeadlineCurve low_curve(low), high_curve(high);
  // Compare at a response time both can hit.
  const double probe =
      std::max(low_curve.min_time_s(), high_curve.min_time_s()) * 2.0;
  EXPECT_GT(high_curve.min_energy_j(probe), low_curve.min_energy_j(probe));
}

TEST_F(PaperProperties, Table5ArmWinsPprOnEp) {
  // PPR at each type's most efficient configuration (Section IV-A).
  auto best_ppr = [](const NodeTypeModel& m, const NodeSpec& spec) {
    double best = 0.0;
    for (int c = 1; c <= spec.cores; ++c) {
      for (double f : spec.pstates.frequencies_ghz()) {
        const Prediction p = m.predict(1e6, NodeConfig{1, c, f});
        best = std::max(best, 1e6 / p.energy_j());
      }
    }
    return best;
  };
  const double arm_ppr = best_ppr(*ep_arm_, *arm_);
  const double amd_ppr = best_ppr(*ep_amd_, *amd_);
  EXPECT_GT(arm_ppr, 3.0 * amd_ppr);  // paper: ~4.3x on EP
}

}  // namespace
}  // namespace hec
