#include "hec/cluster/coscheduler.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

WorkloadInputs make_inputs(double inst_per_unit) {
  WorkloadInputs in;
  in.inst_per_unit = inst_per_unit;
  in.wpi = 0.8;
  in.spi_core = 0.5;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.05, 1.0, 2}};
  in.ucpu = 1.0;
  return in;
}

PowerParams make_power(std::vector<double> freqs, double idle) {
  PowerParams p;
  for (double f : freqs) {
    p.core_active_w.push_back(0.2 + 0.5 * f);
    p.core_stall_w.push_back(0.1 + 0.3 * f);
  }
  p.freqs_ghz = std::move(freqs);
  p.mem_active_w = 0.5;
  p.io_active_w = 0.5;
  p.idle_w = idle;
  return p;
}

struct Fixture {
  NodeSpec arm = arm_cortex_a9();
  NodeSpec amd = amd_opteron_k10();
  NodeTypeModel arm_model{arm, make_inputs(160.0),
                          make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4)};
  NodeTypeModel amd_model{amd, make_inputs(120.0),
                          make_power({0.8, 1.5, 2.1}, 45.0)};

  CoscheduleJob job(double units, double deadline_s,
                    const std::string& name) const {
    return CoscheduleJob{&arm_model, &amd_model, units, deadline_s, name};
  }
};

TEST(Coscheduler, PartitionsAreDisjointAndWithinPool) {
  const Fixture f;
  const auto plan = coschedule_two(f.job(1e7, 0.3, "A"),
                                   f.job(5e6, 0.5, "B"), f.arm, f.amd, 8, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->arm_a + plan->arm_b, 8);
  EXPECT_EQ(plan->amd_a + plan->amd_b, 4);
  // Each job's configuration fits inside its sub-pool.
  EXPECT_LE(plan->outcome_a.config.arm.nodes, plan->arm_a);
  EXPECT_LE(plan->outcome_a.config.amd.nodes, plan->amd_a);
  EXPECT_LE(plan->outcome_b.config.arm.nodes, plan->arm_b);
  EXPECT_LE(plan->outcome_b.config.amd.nodes, plan->amd_b);
  // Both deadlines hold.
  EXPECT_LE(plan->outcome_a.t_s, 0.3);
  EXPECT_LE(plan->outcome_b.t_s, 0.5);
  EXPECT_NEAR(plan->total_energy_j,
              plan->outcome_a.energy_j + plan->outcome_b.energy_j, 1e-9);
}

TEST(Coscheduler, SymmetricJobsSplitSymmetrically) {
  const Fixture f;
  const CoscheduleJob a = f.job(5e6, 0.4, "A");
  const CoscheduleJob b = f.job(5e6, 0.4, "B");
  const auto plan = coschedule_two(a, b, f.arm, f.amd, 8, 4);
  ASSERT_TRUE(plan.has_value());
  // Identical jobs: their energies must match (partition may mirror).
  EXPECT_NEAR(plan->outcome_a.energy_j, plan->outcome_b.energy_j,
              plan->outcome_a.energy_j * 0.05);
}

TEST(Coscheduler, BeatsNaiveHalfSplitWhenJobsDiffer) {
  const Fixture f;
  // Job A is tight (needs AMD muscle); job B is relaxed (happy on ARM).
  const CoscheduleJob a = f.job(2e7, 0.25, "tight");
  const CoscheduleJob b = f.job(2e6, 2.0, "relaxed");
  const auto optimal = coschedule_two(a, b, f.arm, f.amd, 8, 4);
  ASSERT_TRUE(optimal.has_value());
  // Naive: half the pool each.
  const ConfigEvaluator eval(f.arm_model, f.amd_model);
  const auto naive_a = branch_and_bound_search(
      eval, f.arm, f.amd, EnumerationLimits{4, 2}, a.work_units,
      a.deadline_s);
  const auto naive_b = branch_and_bound_search(
      eval, f.arm, f.amd, EnumerationLimits{4, 2}, b.work_units,
      b.deadline_s);
  if (naive_a && naive_b) {
    EXPECT_LE(optimal->total_energy_j,
              naive_a->best.energy_j + naive_b->best.energy_j + 1e-9);
  } else {
    // The naive split cannot even hold both deadlines; the optimiser can.
    SUCCEED();
  }
}

TEST(Coscheduler, InfeasibleWhenPoolTooSmall) {
  const Fixture f;
  // Two jobs that each need nearly the whole pool to meet the deadline.
  const auto plan = coschedule_two(f.job(5e7, 0.1, "A"),
                                   f.job(5e7, 0.1, "B"), f.arm, f.amd, 2, 1);
  EXPECT_FALSE(plan.has_value());
}

TEST(Coscheduler, RejectsInvalidJobs) {
  const Fixture f;
  CoscheduleJob bad = f.job(1e6, 0.5, "bad");
  bad.arm_model = nullptr;
  EXPECT_THROW(
      coschedule_two(bad, f.job(1e6, 0.5, "B"), f.arm, f.amd, 4, 2),
      ContractViolation);
  EXPECT_THROW(coschedule_two(f.job(0.0, 0.5, "A"), f.job(1e6, 0.5, "B"),
                              f.arm, f.amd, 4, 2),
               ContractViolation);
}

}  // namespace
}  // namespace hec
