#include "hec/report/markdown_report.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/io/table.h"
#include "hec/model/characterize.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CharacterizeOptions opts;
    opts.baseline_units = 4000.0;
    workload_ = new Workload(workload_memcached());
    arm_ = new NodeTypeModel(
        build_node_model(arm_cortex_a9(), *workload_, opts));
    amd_ = new NodeTypeModel(
        build_node_model(amd_opteron_k10(), *workload_, opts));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete arm_;
    delete amd_;
  }

  static std::string generate(ReportOptions options = {}) {
    if (options.max_arm_nodes == 10 && options.max_amd_nodes == 10) {
      options.max_arm_nodes = 4;  // keep the test fast
      options.max_amd_nodes = 4;
    }
    return markdown_report(*workload_, *arm_, *amd_, options);
  }

  static Workload* workload_;
  static NodeTypeModel* arm_;
  static NodeTypeModel* amd_;
};

Workload* ReportTest::workload_ = nullptr;
NodeTypeModel* ReportTest::arm_ = nullptr;
NodeTypeModel* ReportTest::amd_ = nullptr;

TEST_F(ReportTest, ContainsEverySection) {
  const std::string md = generate();
  for (const char* heading :
       {"# memcached — heterogeneous cluster analysis",
        "## Node characterisation", "### ARM Cortex-A9",
        "### AMD Opteron K10", "## Energy-deadline Pareto frontier",
        "**Sweet region**", "**Overlap region**", "## Recommendations"}) {
    EXPECT_NE(md.find(heading), std::string::npos) << heading;
  }
}

TEST_F(ReportTest, TablesAreWellFormedMarkdown) {
  const std::string md = generate();
  // Every table header row is followed by a separator row.
  std::istringstream lines(md);
  std::string line, prev;
  int separators = 0;
  while (std::getline(lines, line)) {
    if (line.starts_with("|---") ||
        (line.starts_with("|") && line.find("---") != std::string::npos &&
         line.find_first_not_of("|-: ") == std::string::npos)) {
      EXPECT_TRUE(prev.starts_with("|")) << "separator without header";
      ++separators;
    }
    prev = line;
  }
  EXPECT_GE(separators, 4);  // two characterisations, frontier, recs
}

TEST_F(ReportTest, ReportsIoBoundClassificationForMemcached) {
  const std::string md = generate();
  EXPECT_NE(md.find("I/O-bound"), std::string::npos);
}

TEST_F(ReportTest, RecommendationsIncludeOperatingCost) {
  const std::string md = generate();
  EXPECT_NE(md.find("Cost per 1M jobs"), std::string::npos);
}

TEST_F(ReportTest, WorkUnitsOverrideIsApplied) {
  ReportOptions options;
  options.work_units = 12345.0;
  const std::string md = generate(options);
  EXPECT_NE(md.find("Job: 12345"), std::string::npos);
}

TEST_F(ReportTest, RejectsInvalidOptions) {
  ReportOptions bad;
  bad.max_arm_nodes = 0;
  bad.max_amd_nodes = 0;
  EXPECT_THROW(markdown_report(*workload_, *arm_, *amd_, bad),
               ContractViolation);
  ReportOptions bad_factor;
  bad_factor.deadline_factors = {0.5};
  EXPECT_THROW(markdown_report(*workload_, *arm_, *amd_, bad_factor),
               ContractViolation);
}

TEST(MarkdownTable, PipesEscapedAndAlignmentEmitted) {
  TablePrinter table({"name", "value"});
  table.set_alignment({Align::kLeft, Align::kRight});
  table.add_row({"a|b", "1"});
  std::ostringstream out;
  table.print_markdown(out);
  const std::string md = out.str();
  EXPECT_NE(md.find("a\\|b"), std::string::npos);
  EXPECT_NE(md.find("|---|---:|"), std::string::npos);
}

}  // namespace
}  // namespace hec
