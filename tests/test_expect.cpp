#include "hec/util/expect.h"

#include <gtest/gtest.h>

#include <string>

namespace hec {
namespace {

TEST(Expect, PassingConditionIsSilent) {
  EXPECT_NO_THROW(HEC_EXPECTS(1 + 1 == 2));
  EXPECT_NO_THROW(HEC_ENSURES(true));
}

TEST(Expect, FailingPreconditionThrowsContractViolation) {
  EXPECT_THROW(HEC_EXPECTS(false), ContractViolation);
}

TEST(Expect, FailingPostconditionThrowsContractViolation) {
  EXPECT_THROW(HEC_ENSURES(false), ContractViolation);
}

TEST(Expect, MessageNamesTheExpressionAndLocation) {
  try {
    HEC_EXPECTS(2 < 1);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_expect.cpp"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Expect, ContractViolationIsALogicError) {
  EXPECT_THROW(HEC_EXPECTS(false), std::logic_error);
}

}  // namespace
}  // namespace hec
