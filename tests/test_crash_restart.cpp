// Kill/restart property matrix for the crash-safe sweeps: a child
// process runs a journaled sweep with a deterministic failpoint armed
// (SIGKILL crash or injected error, at randomized hit counts across
// every instrumented site), the parent reaps it and resumes from the
// journal, and the final frontier must be bit-identical to an
// uninterrupted run — across repeated kills, and with a corruption
// canary that garbles the journal between crash and resume.
//
// Everything in this TU runs single-threaded (SweepOptions.parallel =
// false, serial characterisation) so fork() never duplicates a process
// that holds thread-pool or allocator locks.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "hec/config/robust_evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/resilience/resumable.h"
#include "hec/util/failpoint.h"
#include "hec/workloads/workload.h"

namespace hec::resilience {
namespace {

CharacterizeOptions characterize_opts() {
  CharacterizeOptions o;
  o.baseline_units = 8000.0;
  return o;
}

std::string temp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

SweepOptions serial_opts(std::size_t block) {
  SweepOptions o;
  o.parallel = false;
  o.block = block;
  o.robust_block = block;
  return o;
}

ResilienceOptions journaled(const std::string& path) {
  ResilienceOptions res;
  res.journal_path = path;
  res.checkpoint_interval_s = 0.0;  // commit every epoch: many targets
  res.checkpoint_blocks = 4;
  return res;
}

void expect_identical_frontiers(const std::vector<TimeEnergyPoint>& got,
                                const std::vector<TimeEnergyPoint>& want,
                                const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " frontier point " << i;
  }
}

/// Forks a child that arms `spec` and runs `sweep`. Child exit protocol:
/// 0 = sweep completed (failpoint never fired), 42 = InjectedFault,
/// SIGKILL = crash mode fired. Returns the raw wait status.
template <typename SweepFn>
int run_interrupted_child(const util::FailpointSpec& spec,
                          const SweepFn& sweep) {
  fflush(nullptr);  // don't let the child double-flush inherited buffers
  const pid_t pid = fork();
  if (pid == 0) {
    util::set_failpoints({spec});
    try {
      sweep();
    } catch (const util::InjectedFault&) {
      _exit(42);
    } catch (...) {
      _exit(43);
    }
    _exit(0);
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

void expect_interrupted(int status, const util::FailpointSpec& spec,
                        const std::string& label) {
  if (spec.mode == util::FailpointMode::kCrash) {
    ASSERT_TRUE(WIFSIGNALED(status))
        << label << ": crash-mode child should die to a signal";
    EXPECT_EQ(WTERMSIG(status), SIGKILL) << label;
  } else {
    ASSERT_TRUE(WIFEXITED(status)) << label;
    EXPECT_EQ(WEXITSTATUS(status), 42)
        << label << ": error-mode child should see InjectedFault";
  }
}

class CrashRestart : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Workload w = workload_ep();
    arm_ = new NodeTypeModel(
        build_node_model(arm_cortex_a9(), w, characterize_opts()));
    amd_ = new NodeTypeModel(
        build_node_model(amd_opteron_k10(), w, characterize_opts()));
  }
  static void TearDownTestSuite() {
    delete arm_;
    delete amd_;
    arm_ = nullptr;
    amd_ = nullptr;
  }
  void TearDown() override { util::set_failpoints({}); }

  static const NodeTypeModel& arm() { return *arm_; }
  static const NodeTypeModel& amd() { return *amd_; }

  static NodeTypeModel* arm_;
  static NodeTypeModel* amd_;
};

NodeTypeModel* CrashRestart::arm_ = nullptr;
NodeTypeModel* CrashRestart::amd_ = nullptr;

TEST_F(CrashRestart, SiteByModeMatrixResumesBitIdentical) {
  // ~577k configs; block 128 => ~4.5k blocks in 4-block epochs, so
  // every nth range below lands well past the first durable checkpoint.
  const EnumerationLimits limits{40, 40};
  const double units = 5e5;
  const SweepOptions opts = serial_opts(128);
  const ResumableSweepResult reference =
      resumable_sweep_frontier(arm(), amd(), limits, units, opts);

  // Fixed-seed randomized hit counts: deterministic across runs, but
  // checkpoints land at arbitrary (not hand-picked) boundaries.
  std::mt19937 rng(20260806);
  struct Site {
    const char* name;
    std::uint64_t min_nth, max_nth;  // range guaranteed to fire mid-sweep
  };
  const Site sites[] = {
      {"sweep.worker_start", 2, 20},  // once per epoch on the serial path
      {"sweep.block", 6, 150},
      {"journal.commit", 2, 20},
  };
  for (const Site& site : sites) {
    for (const util::FailpointMode mode :
         {util::FailpointMode::kCrash, util::FailpointMode::kError}) {
      for (int draw = 0; draw < 2; ++draw) {
        std::uniform_int_distribution<std::uint64_t> nth(site.min_nth,
                                                         site.max_nth);
        const util::FailpointSpec spec{site.name, nth(rng), mode};
        const std::string label =
            std::string(site.name) + ":" + std::to_string(spec.nth) +
            (mode == util::FailpointMode::kCrash ? ":crash" : ":error");
        const std::string journal = temp_journal("crash_matrix.jsonl");
        const ResilienceOptions res = journaled(journal);

        const int status = run_interrupted_child(spec, [&] {
          resumable_sweep_frontier(arm(), amd(), limits, units, opts, res);
        });
        expect_interrupted(status, spec, label);

        const ResumableSweepResult resumed = resumable_sweep_frontier(
            arm(), amd(), limits, units, opts, res);
        EXPECT_TRUE(resumed.complete) << label;
        expect_identical_frontiers(resumed.frontier, reference.frontier,
                                   label);
        std::remove(journal.c_str());
      }
    }
  }
}

TEST_F(CrashRestart, RepeatedKillsThenResumeIsBitIdentical) {
  const EnumerationLimits limits{40, 40};
  const double units = 5e5;
  const SweepOptions opts = serial_opts(128);
  const ResumableSweepResult reference =
      resumable_sweep_frontier(arm(), amd(), limits, units, opts);

  const std::string journal = temp_journal("crash_repeat.jsonl");
  const ResilienceOptions res = journaled(journal);
  std::mt19937 rng(4242);
  std::uniform_int_distribution<std::uint64_t> nth(5, 60);
  for (int round = 0; round < 3; ++round) {
    const util::FailpointSpec spec{"sweep.block", nth(rng),
                                   util::FailpointMode::kCrash};
    const int status = run_interrupted_child(spec, [&] {
      resumable_sweep_frontier(arm(), amd(), limits, units, opts, res);
    });
    expect_interrupted(status, spec, "round " + std::to_string(round));
  }
  const ResumableSweepResult resumed =
      resumable_sweep_frontier(arm(), amd(), limits, units, opts, res);
  EXPECT_TRUE(resumed.complete);
  expect_identical_frontiers(resumed.frontier, reference.frontier,
                             "triple kill");
}

TEST_F(CrashRestart, GarbledJournalAfterCrashStillYieldsCorrectFrontier) {
  const EnumerationLimits limits{40, 40};
  const double units = 5e5;
  const SweepOptions opts = serial_opts(128);
  const ResumableSweepResult reference =
      resumable_sweep_frontier(arm(), amd(), limits, units, opts);

  const std::string journal = temp_journal("crash_corrupt.jsonl");
  const ResilienceOptions res = journaled(journal);
  const util::FailpointSpec spec{"sweep.block", 60,
                                 util::FailpointMode::kCrash};
  const int status = run_interrupted_child(spec, [&] {
    resumable_sweep_frontier(arm(), amd(), limits, units, opts, res);
  });
  expect_interrupted(status, spec, "corrupt canary");

  // Bit-rot the journal the crash left behind: the resume must detect
  // it, restart from scratch, and still produce the exact frontier.
  {
    std::ifstream in(journal);
    ASSERT_TRUE(in.good()) << "crash should leave a journal";
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(text.size(), 10u);
    text[text.size() / 2] ^= 0x20;
    std::ofstream out(journal);
    out << text;
  }
  const ResumableSweepResult resumed =
      resumable_sweep_frontier(arm(), amd(), limits, units, opts, res);
  EXPECT_TRUE(resumed.complete);
  EXPECT_FALSE(resumed.resumed) << "garbled journal must not seed a resume";
  expect_identical_frontiers(resumed.frontier, reference.frontier,
                             "corrupt canary");
}

TEST_F(CrashRestart, RobustSweepSurvivesCrashAndResume) {
  FaultConfig faults;
  faults.mttf_s = 4000.0;
  faults.straggler_prob = 0.2;
  faults.straggler_window_s = 30.0;
  faults.checkpoint_interval_s = 500.0;
  faults.checkpoint_cost_s = 5.0;
  MonteCarloOptions mc;
  mc.trials = 6;
  const RobustConfigEvaluator evaluator(arm(), amd(), faults, mc);
  const EnumerationLimits limits{2, 2};
  const SweepOptions opts = serial_opts(4);
  const ResumableSweepResult reference = resumable_sweep_robust_frontier(
      evaluator, limits, 1e5, 100.0, 0.8, opts);

  const std::string journal = temp_journal("crash_robust.jsonl");
  const ResilienceOptions res = journaled(journal);
  const util::FailpointSpec spec{"journal.commit", 3,
                                 util::FailpointMode::kCrash};
  const int status = run_interrupted_child(spec, [&] {
    resumable_sweep_robust_frontier(evaluator, limits, 1e5, 100.0, 0.8,
                                    opts, res);
  });
  expect_interrupted(status, spec, "robust crash");

  const ResumableSweepResult resumed = resumable_sweep_robust_frontier(
      evaluator, limits, 1e5, 100.0, 0.8, opts, res);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.resumed);
  expect_identical_frontiers(resumed.frontier, reference.frontier,
                             "robust crash+resume");
}

TEST_F(CrashRestart, MultiSweepSurvivesCrashAndResume) {
  const NodeTypeModel third = build_node_model(
      arm_cortex_a9(), workload_memcached(), characterize_opts());
  const std::vector<const NodeTypeModel*> models = {&arm(), &amd(), &third};
  const std::vector<int> limits = {2, 2, 2};
  const SweepOptions opts = serial_opts(8);
  const ResumableSweepResult reference =
      resumable_sweep_multi_frontier(models, limits, 2e5, opts);

  const std::string journal = temp_journal("crash_multi.jsonl");
  const ResilienceOptions res = journaled(journal);
  const util::FailpointSpec spec{"sweep.block", 25,
                                 util::FailpointMode::kCrash};
  const int status = run_interrupted_child(spec, [&] {
    resumable_sweep_multi_frontier(models, limits, 2e5, opts, res);
  });
  expect_interrupted(status, spec, "multi crash");

  const ResumableSweepResult resumed =
      resumable_sweep_multi_frontier(models, limits, 2e5, opts, res);
  EXPECT_TRUE(resumed.complete);
  expect_identical_frontiers(resumed.frontier, reference.frontier,
                             "multi crash+resume");
}

}  // namespace
}  // namespace hec::resilience
