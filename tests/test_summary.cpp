#include "hec/stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hec/util/expect.h"
#include "hec/util/rng.h"

namespace hec {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Summary, EmptyQueriesThrow) {
  Summary s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
  EXPECT_THROW(s.max(), ContractViolation);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // defined as 0 below two samples
}

TEST(Summary, WelfordIsNumericallyStable) {
  Summary s;
  // Large offset exposes the naive sum-of-squares formulation.
  for (int i = 0; i < 10000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-3);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(data, 25.0), 1.75);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> data{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(data, 50.0), 5.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> data{7.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(data, 99.0), 7.0);
}

TEST(Percentile, RejectsBadArguments) {
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 50.0), ContractViolation);
  const std::vector<double> data{1.0};
  EXPECT_THROW(percentile(data, -1.0), ContractViolation);
  EXPECT_THROW(percentile(data, 101.0), ContractViolation);
}

TEST(RelativeError, PaperMetricInPercent) {
  RelativeError err;
  err.add(110.0, 100.0);  // 10 %
  err.add(95.0, 100.0);   // 5 %
  EXPECT_EQ(err.count(), 2u);
  EXPECT_NEAR(err.mean_pct(), 7.5, 1e-12);
  EXPECT_NEAR(err.max_pct(), 10.0, 1e-12);
  EXPECT_NEAR(err.stddev_pct(), std::sqrt(12.5), 1e-12);
}

TEST(RelativeError, SymmetricInSign) {
  RelativeError err;
  err.add(90.0, 100.0);
  err.add(110.0, 100.0);
  EXPECT_NEAR(err.mean_pct(), 10.0, 1e-12);
}

TEST(RelativeError, RejectsZeroMeasured) {
  RelativeError err;
  EXPECT_THROW(err.add(1.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace hec
