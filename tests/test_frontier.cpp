#include "hec/pareto/frontier.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hec/util/expect.h"
#include "hec/util/rng.h"

namespace hec {
namespace {

TEST(ParetoFrontier, KeepsOnlyNonDominatedPoints) {
  const std::vector<TimeEnergyPoint> pts{
      {1.0, 10.0, 0},  // fast, expensive: frontier
      {2.0, 5.0, 1},   // frontier
      {2.5, 7.0, 2},   // dominated by tag 1
      {3.0, 4.0, 3},   // frontier
      {4.0, 4.5, 4},   // dominated by tag 3
  };
  const auto frontier = pareto_frontier(pts);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0].tag, 0u);
  EXPECT_EQ(frontier[1].tag, 1u);
  EXPECT_EQ(frontier[2].tag, 3u);
}

TEST(ParetoFrontier, StrictlyMonotone) {
  Rng rng(3);
  std::vector<TimeEnergyPoint> pts;
  for (std::size_t i = 0; i < 5000; ++i) {
    pts.push_back({rng.uniform(0.01, 10.0), rng.uniform(1.0, 100.0), i});
  }
  const auto frontier = pareto_frontier(pts);
  ASSERT_GE(frontier.size(), 2u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].t_s, frontier[i - 1].t_s);
    EXPECT_LT(frontier[i].energy_j, frontier[i - 1].energy_j);
  }
}

TEST(ParetoFrontier, NoInputPointDominatesAFrontierPoint) {
  Rng rng(5);
  std::vector<TimeEnergyPoint> pts;
  for (std::size_t i = 0; i < 2000; ++i) {
    pts.push_back({rng.uniform(0.1, 5.0), rng.uniform(1.0, 50.0), i});
  }
  const auto frontier = pareto_frontier(pts);
  for (const auto& f : frontier) {
    for (const auto& p : pts) {
      const bool dominates = p.t_s <= f.t_s && p.energy_j < f.energy_j;
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(ParetoFrontier, TiesInTimeKeepCheapest) {
  const std::vector<TimeEnergyPoint> pts{
      {1.0, 10.0, 0}, {1.0, 8.0, 1}, {1.0, 9.0, 2}};
  const auto frontier = pareto_frontier(pts);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0].tag, 1u);
}

TEST(ParetoFrontier, EmptyAndSingleton) {
  EXPECT_TRUE(pareto_frontier(std::vector<TimeEnergyPoint>{}).empty());
  const std::vector<TimeEnergyPoint> one{{1.0, 1.0, 7}};
  const auto frontier = pareto_frontier(one);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0].tag, 7u);
}

TEST(EnergyDeadlineCurve, BestForDeadlinePicksSlowestFeasible) {
  const std::vector<TimeEnergyPoint> frontier{
      {1.0, 10.0, 0}, {2.0, 6.0, 1}, {4.0, 3.0, 2}};
  const EnergyDeadlineCurve curve(frontier);
  EXPECT_FALSE(curve.best_for_deadline(0.5).has_value());
  EXPECT_EQ(curve.best_for_deadline(1.0)->tag, 0u);
  EXPECT_EQ(curve.best_for_deadline(1.5)->tag, 0u);
  EXPECT_EQ(curve.best_for_deadline(2.0)->tag, 1u);
  EXPECT_EQ(curve.best_for_deadline(3.9)->tag, 1u);
  EXPECT_EQ(curve.best_for_deadline(100.0)->tag, 2u);
}

TEST(EnergyDeadlineCurve, MinEnergyIsMonotoneNonIncreasing) {
  const std::vector<TimeEnergyPoint> frontier{
      {1.0, 10.0, 0}, {2.0, 6.0, 1}, {4.0, 3.0, 2}};
  const EnergyDeadlineCurve curve(frontier);
  EXPECT_TRUE(std::isinf(curve.min_energy_j(0.1)));
  double prev = curve.min_energy_j(1.0);
  for (double d = 1.1; d < 6.0; d += 0.1) {
    const double e = curve.min_energy_j(d);
    EXPECT_LE(e, prev);
    prev = e;
  }
  EXPECT_DOUBLE_EQ(curve.min_time_s(), 1.0);
}

TEST(EnergyDeadlineCurve, RejectsNonFrontierInput) {
  // Not strictly decreasing in energy.
  const std::vector<TimeEnergyPoint> bad{{1.0, 5.0, 0}, {2.0, 6.0, 1}};
  EXPECT_THROW(EnergyDeadlineCurve{bad}, ContractViolation);
  EXPECT_THROW(EnergyDeadlineCurve{std::vector<TimeEnergyPoint>{}},
               ContractViolation);
}

}  // namespace
}  // namespace hec
