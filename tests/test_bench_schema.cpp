// The BENCH_*.json schemas: a golden serialisation of a fully-populated
// hec-bench-run/v1 record (any unintentional field rename or reorder
// breaks this test — rename deliberately means bumping /v1), lossless
// round-trips through the parser, schema-version rejection, and the
// median aggregation the suite document applies across repeats.
#include <gtest/gtest.h>

#include <string>

#include "hec/bench/json.h"
#include "hec/bench/telemetry.h"

namespace {

using namespace hec::bench::telemetry;  // NOLINT: test-local convenience
namespace json = hec::bench::json;

RunRecord sample_record() {
  RunRecord rec;
  rec.experiment = "table3_single_node_validation";
  rec.kind = ExperimentKind::kTable;
  rec.paper_ref = "Table 3";
  rec.wall_s = 0.25;
  rec.peak_rss_mb = 12.5;
  rec.metrics.push_back(
      Metric{"table3.worst_mape_pct", 9.5, MetricKind::kAccuracy, "%"});
  rec.metrics.push_back(Metric{"table3.runs", 288.0, MetricKind::kCount, ""});
  rec.counters.emplace_back("sim.events_processed", 1024.0);
  rec.gauges.emplace_back("queue.depth", 3.0);
  rec.histograms.push_back(
      HistogramSummary{"eval.wall_s", 10, 1.5, 0.1, 0.2, 0.3});
  rec.phases.push_back(PhaseStat{"model.characterize", 12, 0.125});
  rec.spans_dropped_total = 2;
  rec.span_drops.push_back(ThreadDrops{7, 100, 2});
  return rec;
}

TEST(BenchSchema, RunRecordMatchesGolden) {
  const std::string golden =
      "{\"counters\":{\"sim.events_processed\":1024},"
      "\"experiment\":{\"kind\":\"table\","
      "\"name\":\"table3_single_node_validation\","
      "\"paper_ref\":\"Table 3\"},"
      "\"gauges\":{\"queue.depth\":3},"
      "\"histograms\":{\"eval.wall_s\":{\"count\":10,\"p50\":0.1,"
      "\"p95\":0.2,\"p99\":0.3,\"sum\":1.5}},"
      "\"metrics\":{"
      "\"table3.runs\":{\"kind\":\"count\",\"value\":288},"
      "\"table3.worst_mape_pct\":{\"kind\":\"accuracy\",\"unit\":\"%\","
      "\"value\":9.5}},"
      "\"peak_rss_mb\":12.5,"
      "\"phases\":{\"model.characterize\":{\"count\":12,"
      "\"total_s\":0.125}},"
      "\"schema\":\"hec-bench-run/v1\","
      "\"span_drops\":[{\"dropped\":2,\"recorded\":100,\"tid\":7}],"
      "\"spans_dropped_total\":2,"
      "\"wall_s\":0.25}";
  EXPECT_EQ(to_json(sample_record()).dump(false), golden);
}

TEST(BenchSchema, RunRecordRoundTripsThroughText) {
  const RunRecord rec = sample_record();
  const std::string text = to_json(rec).dump();
  const auto doc = json::Value::parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto back = run_record_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->experiment, rec.experiment);
  EXPECT_EQ(back->kind, rec.kind);
  EXPECT_EQ(back->paper_ref, rec.paper_ref);
  EXPECT_DOUBLE_EQ(back->wall_s, rec.wall_s);
  EXPECT_DOUBLE_EQ(back->peak_rss_mb, rec.peak_rss_mb);
  ASSERT_EQ(back->metrics.size(), rec.metrics.size());
  // Parsing sorts by name; "table3.runs" < "table3.worst_mape_pct".
  EXPECT_EQ(back->metrics[0].name, "table3.runs");
  EXPECT_EQ(back->metrics[0].kind, MetricKind::kCount);
  EXPECT_EQ(back->metrics[1].kind, MetricKind::kAccuracy);
  EXPECT_DOUBLE_EQ(back->metrics[1].value, 9.5);
  ASSERT_EQ(back->histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(back->histograms[0].p95, 0.2);
  ASSERT_EQ(back->span_drops.size(), 1u);
  EXPECT_EQ(back->span_drops[0].recorded, 100u);
  EXPECT_EQ(back->spans_dropped_total, 2u);
  ASSERT_EQ(back->phases.size(), 1u);
  EXPECT_EQ(back->phases[0].count, 12u);
}

TEST(BenchSchema, UnknownSchemaVersionIsRejected) {
  json::Value doc = to_json(sample_record());
  doc["schema"] = "hec-bench-run/v999";
  std::string error;
  EXPECT_FALSE(run_record_from_json(doc, &error).has_value());
  EXPECT_NE(error.find("v999"), std::string::npos);
}

TEST(BenchSchema, KindEnumsRoundTripAsStrings) {
  for (ExperimentKind k : {ExperimentKind::kFigure, ExperimentKind::kTable,
                           ExperimentKind::kAblation,
                           ExperimentKind::kExtension, ExperimentKind::kMicro,
                           ExperimentKind::kUnknown}) {
    EXPECT_EQ(experiment_kind_from_string(to_string(k)), k);
  }
  for (MetricKind k : {MetricKind::kAccuracy, MetricKind::kPerf,
                       MetricKind::kCount, MetricKind::kInfo}) {
    EXPECT_EQ(metric_kind_from_string(to_string(k)), k);
  }
  EXPECT_FALSE(experiment_kind_from_string("nonsense").has_value());
  EXPECT_FALSE(metric_kind_from_string("nonsense").has_value());
}

TEST(BenchSchema, SuiteAggregatesMediansAcrossRepeats) {
  BenchAggregate agg;
  agg.bench = "bench_sample";
  for (double wall : {3.0, 1.0, 2.0}) {
    RunRecord rec = sample_record();
    rec.wall_s = wall;
    rec.peak_rss_mb = wall * 10.0;
    rec.metrics[0].value = wall * 100.0;
    agg.runs.push_back(std::move(rec));
  }
  const json::Value suite =
      make_suite({agg}, "abc123", 3, "2026-01-01T00:00:00Z");
  EXPECT_EQ(suite["schema"].as_string(), "hec-bench-suite/v1");
  EXPECT_EQ(suite["git_sha"].as_string(), "abc123");
  const json::Value& b = suite["benches"]["bench_sample"];
  EXPECT_DOUBLE_EQ(b["wall_s"]["median"].as_number(), 2.0);
  EXPECT_DOUBLE_EQ(b["wall_s"]["min"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(b["wall_s"]["max"].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(b["peak_rss_mb"]["median"].as_number(), 20.0);
  EXPECT_DOUBLE_EQ(
      b["metrics"]["table3.worst_mape_pct"]["value"].as_number(), 200.0);
  EXPECT_EQ(b["experiment"]["kind"].as_string(), "table");
}

TEST(BenchSchema, CrashedBenchStillAppearsInSuite) {
  BenchAggregate agg;
  agg.bench = "bench_crashy";
  agg.exit_code = 139;
  agg.runner_wall_s.push_back(0.5);  // no record: runner wall fallback
  const json::Value suite =
      make_suite({agg}, "abc123", 1, "2026-01-01T00:00:00Z");
  const json::Value& b = suite["benches"]["bench_crashy"];
  EXPECT_DOUBLE_EQ(b["exit_code"].as_number(), 139.0);
  EXPECT_DOUBLE_EQ(b["wall_s"]["median"].as_number(), 0.5);
  EXPECT_DOUBLE_EQ(b["runs"].as_number(), 0.0);
}

TEST(BenchSchema, CollectCurrentRunCarriesReportedMetrics) {
  register_experiment("schema_test", ExperimentKind::kExtension, "none");
  report_metric("schema.metric", 1.25, MetricKind::kAccuracy, "%");
  const RunRecord rec = collect_current_run(2.5);
  EXPECT_EQ(rec.experiment, "schema_test");
  EXPECT_EQ(rec.kind, ExperimentKind::kExtension);
  EXPECT_DOUBLE_EQ(rec.wall_s, 2.5);
  EXPECT_GT(rec.peak_rss_mb, 0.0);
  bool found = false;
  for (const Metric& m : rec.metrics) {
    if (m.name == "schema.metric") {
      found = true;
      EXPECT_DOUBLE_EQ(m.value, 1.25);
      EXPECT_EQ(m.kind, MetricKind::kAccuracy);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
