// The extension workload's defining property: its bottleneck crosses
// over between CPU and I/O as the clock scales — a regime the paper's
// six workloads never enter (each stays in one bottleneck class).
#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/sim/node_sim.h"

namespace hec {
namespace {

CharacterizeOptions opts() {
  CharacterizeOptions o;
  o.baseline_units = 6000.0;
  return o;
}

TEST(WebsearchExt, RegisteredAsExtensionOnly) {
  for (const Workload& w : all_workloads()) {
    EXPECT_NE(w.name, "websearch");  // paper set stays intact
  }
  const auto exts = extension_workloads();
  ASSERT_FALSE(exts.empty());
  EXPECT_EQ(exts.front().name, "websearch");
  EXPECT_EQ(find_workload("websearch").unit, "queries");
}

TEST(WebsearchExt, BottleneckCrossesOverWithFrequencyOnArm) {
  const NodeSpec arm = arm_cortex_a9();
  const NodeTypeModel model =
      build_node_model(arm, workload_websearch_ext(), opts());
  const double units = 10000.0;
  // At the lowest clock, cores are the bottleneck...
  const Prediction slow =
      model.predict(units, NodeConfig{1, arm.cores, arm.pstates.min_ghz()});
  EXPECT_GT(slow.t_cpu_s, slow.t_io_s);
  // ...at the highest clock, the NIC is.
  const Prediction fast =
      model.predict(units, NodeConfig{1, arm.cores, arm.pstates.max_ghz()});
  EXPECT_LT(fast.t_cpu_s, fast.t_io_s * 1.05);
  EXPECT_NEAR(fast.t_s, fast.t_io_s, fast.t_s * 0.05);
}

TEST(WebsearchExt, RaisingClockStopsPayingOnceIoBound) {
  // Once the NIC binds, further DVFS only burns power: time flattens.
  const NodeSpec amd = amd_opteron_k10();
  const NodeTypeModel model =
      build_node_model(amd, workload_websearch_ext(), opts());
  const double units = 10000.0;
  const auto& freqs = amd.pstates.frequencies_ghz();
  const Prediction mid =
      model.predict(units, NodeConfig{1, amd.cores, freqs[1]});
  const Prediction top =
      model.predict(units, NodeConfig{1, amd.cores, freqs.back()});
  // Both already I/O-bound: same service time...
  EXPECT_NEAR(top.t_s, mid.t_s, mid.t_s * 0.05);
  // ...so the higher clock must not be more energy-efficient.
  EXPECT_GE(top.energy_j(), mid.energy_j() * 0.98);
}

TEST(WebsearchExt, SimulatorAgreesWithModelAcrossTheCrossover) {
  const NodeSpec arm = arm_cortex_a9();
  const Workload w = workload_websearch_ext();
  const NodeTypeModel model = build_node_model(arm, w, opts());
  std::uint64_t seed = 404;
  for (double f : arm.pstates.frequencies_ghz()) {
    const Prediction pred =
        model.predict(20000.0, NodeConfig{1, arm.cores, f});
    RunConfig rc;
    rc.cores_used = arm.cores;
    rc.f_ghz = f;
    rc.work_units = 20000.0;
    rc.seed = seed++;
    const RunResult meas = simulate_node(arm, w.demand_arm, rc);
    EXPECT_NEAR(pred.t_s, meas.wall_s, meas.wall_s * 0.15) << "f=" << f;
    EXPECT_NEAR(pred.energy_j(), meas.energy.total_j(),
                meas.energy.total_j() * 0.15)
        << "f=" << f;
  }
}

}  // namespace
}  // namespace hec
