#include "hec/hw/node_spec.h"

#include <gtest/gtest.h>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(PStateTable, RequiresAscendingPositive) {
  EXPECT_NO_THROW(PStateTable({0.2, 0.8, 1.4}));
  EXPECT_THROW(PStateTable(std::vector<double>{}), ContractViolation);
  EXPECT_THROW(PStateTable({0.8, 0.8}), ContractViolation);
  EXPECT_THROW(PStateTable({1.4, 0.8}), ContractViolation);
  EXPECT_THROW(PStateTable({-0.5, 0.8}), ContractViolation);
}

TEST(PStateTable, MinMaxAndSize) {
  const PStateTable t({0.2, 0.5, 0.8, 1.1, 1.4});
  EXPECT_DOUBLE_EQ(t.min_ghz(), 0.2);
  EXPECT_DOUBLE_EQ(t.max_ghz(), 1.4);
  EXPECT_EQ(t.size(), 5u);
}

TEST(PStateTable, SupportsExactFrequenciesOnly) {
  const PStateTable t({0.8, 1.5, 2.1});
  EXPECT_TRUE(t.supports(1.5));
  EXPECT_TRUE(t.supports(1.5 + 1e-12));  // within tolerance
  EXPECT_FALSE(t.supports(1.0));
  EXPECT_FALSE(t.supports(2.2));
}

TEST(PStateTable, CeilPicksNextState) {
  const PStateTable t({0.8, 1.5, 2.1});
  EXPECT_DOUBLE_EQ(t.ceil(0.1), 0.8);
  EXPECT_DOUBLE_EQ(t.ceil(0.9), 1.5);
  EXPECT_DOUBLE_EQ(t.ceil(2.1), 2.1);
  EXPECT_THROW(t.ceil(2.2), std::out_of_range);
}

TEST(CorePowerCurve, EvaluatesCubicForm) {
  const CorePowerCurve curve{1.0, 2.0, 0.5};
  EXPECT_DOUBLE_EQ(curve.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.at(2.0), 1.0 + 4.0 + 0.5 * 8.0);
}

TEST(CorePowerCurve, MonotoneInFrequencyForPositiveCoeffs) {
  const CorePowerCurve curve{0.05, 0.2, 0.15};
  double prev = 0.0;
  for (double f = 0.2; f <= 2.2; f += 0.1) {
    const double p = curve.at(f);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(NodeSpec, IdleAndPeakComposition) {
  NodeSpec s;
  s.cores = 2;
  s.pstates = PStateTable({1.0, 2.0});
  s.core_active = {1.0, 1.0, 0.0};  // 3 W at 2 GHz
  s.core_idle_w = 0.5;
  s.memory_power = {1.0, 2.0};
  s.io_power = {0.5, 1.0};
  s.rest_of_system_w = 10.0;
  EXPECT_DOUBLE_EQ(s.idle_node_w(), 10.0 + 1.0 + 0.5 + 2 * 0.5);
  EXPECT_DOUBLE_EQ(s.peak_node_w(), 10.0 + 2.0 + 1.0 + 2 * 3.0);
}

TEST(Isa, ToString) {
  EXPECT_EQ(to_string(Isa::kArmV7a), "armv7-a");
  EXPECT_EQ(to_string(Isa::kX86_64), "x86_64");
}

}  // namespace
}  // namespace hec
