#include "hec/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(15);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, NormalNegativeSigmaThrows) {
  Rng rng(21);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, LognormalUnitHasUnitMean) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.lognormal_unit(0.1);
  EXPECT_NEAR(sum / kN, 1.0, 0.01);
}

TEST(Rng, LognormalZeroSigmaIsExactlyOne) {
  Rng rng(25);
  EXPECT_DOUBLE_EQ(rng.lognormal_unit(0.0), 1.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(27);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(29);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child_a = parent.split(1);
  Rng child_b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a() == child_b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitMix64IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace hec
