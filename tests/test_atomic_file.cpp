// Crash-safe file output contract (hec/util/atomic_file.h): readers see
// the old complete file or the new complete file, never a truncation,
// and every failure surfaces as hec::IoError.
#include "hec/util/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "hec/util/failpoint.h"

namespace hec::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

bool exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(AtomicWriteFile, CreatesFileWithExactContents) {
  const std::string path = temp_path("atomic_create.txt");
  atomic_write_file(path, "hello\nworld\n");
  EXPECT_EQ(read_file(path), "hello\nworld\n");
}

TEST(AtomicWriteFile, ReplacesExistingContents) {
  const std::string path = temp_path("atomic_replace.txt");
  atomic_write_file(path, "old contents, longer than the new ones");
  atomic_write_file(path, "new");
  EXPECT_EQ(read_file(path), "new");
}

TEST(AtomicWriteFile, EmptyContentsYieldEmptyFile) {
  const std::string path = temp_path("atomic_empty.txt");
  atomic_write_file(path, "");
  EXPECT_EQ(read_file(path), "");
}

TEST(AtomicWriteFile, MissingDirectoryThrowsIoError) {
  EXPECT_THROW(atomic_write_file("/no/such/dir/file.txt", "x"), IoError);
}

TEST(AtomicWriteFile, FailedWriteLeavesTargetUntouched) {
  const std::string path = temp_path("atomic_preserved.txt");
  atomic_write_file(path, "survivor");
  // An injected fault at the write step must behave like a real EIO:
  // the error propagates and the previous file stays complete.
  set_failpoints({{"io.atomic_write.write", 1, FailpointMode::kError}});
  EXPECT_THROW(atomic_write_file(path, "replacement"), InjectedFault);
  set_failpoints({});
  EXPECT_EQ(read_file(path), "survivor");
}

TEST(AtomicWriteFile, SpecialTargetIsWrittenDirectly) {
  // /dev/null exists and is not a regular file; the rename path is
  // impossible there, so the write-through path must succeed.
  EXPECT_NO_THROW(atomic_write_file("/dev/null", "discarded"));
}

TEST(AtomicFileWriter, CommitPublishesStreamedOutput) {
  const std::string path = temp_path("atomic_writer.txt");
  AtomicFileWriter writer(path);
  EXPECT_EQ(writer.path(), path);
  writer.stream() << "line " << 1 << "\n";
  writer.stream() << "line " << 2 << "\n";
  EXPECT_FALSE(exists(path)) << "nothing durable before commit";
  writer.commit();
  EXPECT_EQ(read_file(path), "line 1\nline 2\n");
}

TEST(AtomicFileWriter, DestructionWithoutCommitWritesNothing) {
  const std::string path = temp_path("atomic_discard.txt");
  {
    AtomicFileWriter writer(path);
    writer.stream() << "never published";
  }
  EXPECT_FALSE(exists(path));
}

TEST(AtomicFileWriter, SecondCommitThrows) {
  const std::string path = temp_path("atomic_double_commit.txt");
  AtomicFileWriter writer(path);
  writer.stream() << "once";
  writer.commit();
  EXPECT_THROW(writer.commit(), IoError);
}

TEST(AtomicFileWriter, CommitToMissingDirectoryThrowsIoError) {
  AtomicFileWriter writer("/no/such/dir/report.md");
  writer.stream() << "contents";
  EXPECT_THROW(writer.commit(), IoError);
}

}  // namespace
}  // namespace hec::util
