#include "hec/workloads/blackscholes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(Cndf, KnownValues) {
  EXPECT_NEAR(cndf(0.0), 0.5, 1e-7);
  EXPECT_NEAR(cndf(1.0), 0.8413447, 1e-5);
  EXPECT_NEAR(cndf(-1.0), 0.1586553, 1e-5);
  EXPECT_NEAR(cndf(3.0), 0.9986501, 1e-5);
}

TEST(Cndf, SymmetryAndMonotonicity) {
  // The A&S 26.2.17 polynomial is accurate to ~7.5e-8; the symmetry
  // identity holds to that approximation error (exactly at x = 0, where
  // both branches evaluate the polynomial rather than its reflection).
  for (double x = -4.0; x <= 4.0; x += 0.25) {
    EXPECT_NEAR(cndf(x) + cndf(-x), 1.0, 2e-7);
  }
  double prev = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.1) {
    const double c = cndf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(BlackScholes, KnownCallPrice) {
  // Classic textbook case: S=100, K=100, r=5%, sigma=20%, T=1y.
  OptionData o{100.0, 100.0, 0.05, 0.2, 1.0, true};
  EXPECT_NEAR(black_scholes_price(o), 10.4506, 0.01);
}

TEST(BlackScholes, KnownPutPrice) {
  OptionData o{100.0, 100.0, 0.05, 0.2, 1.0, false};
  EXPECT_NEAR(black_scholes_price(o), 5.5735, 0.01);
}

TEST(BlackScholes, PutCallParity) {
  // C - P = S - K e^{-rT}, a strong identity test of both branches.
  OptionData call{120.0, 95.0, 0.03, 0.35, 0.75, true};
  OptionData put = call;
  put.is_call = false;
  const double lhs = black_scholes_price(call) - black_scholes_price(put);
  const double rhs = call.spot - call.strike * std::exp(-call.rate * call.time);
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(BlackScholes, DeepInTheMoneyCallNearsIntrinsic) {
  OptionData o{200.0, 50.0, 0.02, 0.2, 0.5, true};
  const double intrinsic = 200.0 - 50.0 * std::exp(-0.02 * 0.5);
  EXPECT_NEAR(black_scholes_price(o), intrinsic, 0.05);
}

TEST(BlackScholes, PriceIncreasesWithVolatility) {
  OptionData o{100.0, 100.0, 0.05, 0.1, 1.0, true};
  double prev = 0.0;
  for (double vol = 0.1; vol <= 0.8; vol += 0.1) {
    o.volatility = vol;
    const double p = black_scholes_price(o);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(BlackScholes, RejectsInvalidContracts) {
  OptionData o{0.0, 100.0, 0.05, 0.2, 1.0, true};
  EXPECT_THROW(black_scholes_price(o), ContractViolation);
  o = {100.0, 100.0, 0.05, 0.0, 1.0, true};
  EXPECT_THROW(black_scholes_price(o), ContractViolation);
}

TEST(Portfolio, DeterministicAndBounded) {
  const auto options = make_portfolio(1000, 42);
  ASSERT_EQ(options.size(), 1000u);
  for (const auto& o : options) {
    EXPECT_GT(o.spot, 0.0);
    EXPECT_GT(o.strike, 0.0);
    EXPECT_GT(o.volatility, 0.0);
    EXPECT_GT(o.time, 0.0);
    // Price is nonnegative and below the spot (calls) / strike (puts).
    const double p = black_scholes_price(o);
    EXPECT_GE(p, -1e-9);
    EXPECT_LT(p, std::max(o.spot, o.strike));
  }
  const auto again = make_portfolio(1000, 42);
  EXPECT_DOUBLE_EQ(price_portfolio(options), price_portfolio(again));
}

TEST(Portfolio, DifferentSeedsDiffer) {
  const auto a = make_portfolio(100, 1);
  const auto b = make_portfolio(100, 2);
  EXPECT_NE(price_portfolio(a), price_portfolio(b));
}

}  // namespace
}  // namespace hec
