// Baseline comparator for benchmark telemetry suites: per-kind noise
// tolerances, direction-aware gating, counter drift detection, and the
// micro-bench counter exemption. Suites are built by hand so every case
// controls its numbers exactly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "hec/bench/compare.h"
#include "hec/bench/json.h"

namespace {

using hec::bench::json::Value;
using namespace hec::bench::telemetry;  // NOLINT: test-local convenience

Value bench_entry(double wall_s, double rss_mb = 10.0,
                  const std::string& kind = "table") {
  Value b;
  b["exit_code"] = 0;
  b["timed_out"] = Value(false);
  b["runs"] = 1;
  b["wall_s"]["median"] = wall_s;
  b["peak_rss_mb"]["median"] = rss_mb;
  b["experiment"]["kind"] = kind;
  b["metrics"].object();
  b["counters"].object();
  return b;
}

void add_metric(Value& bench, const std::string& name, double value,
                const std::string& kind, const std::string& unit = "%") {
  Value& m = bench["metrics"][name];
  m["value"] = value;
  m["kind"] = kind;
  m["unit"] = unit;
}

Value suite_of(const std::string& bench, Value entry) {
  Value s;
  s["schema"] = "hec-bench-suite/v1";
  s["git_sha"] = "test";
  s["repeat"] = 1;
  s["benches"][bench] = std::move(entry);
  return s;
}

const Delta* find_delta(const Comparison& cmp, const std::string& metric) {
  for (const Delta& d : cmp.deltas) {
    if (d.metric == metric) return &d;
  }
  return nullptr;
}

TEST(BenchCompare, IdenticalSuitesPass) {
  Value entry = bench_entry(1.0);
  add_metric(entry, "t.err", 5.0, "accuracy");
  entry["counters"]["sim.events"] = 1000.0;
  const Value suite = suite_of("bench_x", entry);
  const Comparison cmp = compare_suites(suite, suite);
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.regressions, 0);
  EXPECT_GT(cmp.within_noise, 0);
}

TEST(BenchCompare, WallRegressionBeyondToleranceFlags) {
  // threshold = max(0.75 * 1.0, 0.5) = 0.75; +1.0 s clears it.
  const Value base = suite_of("bench_x", bench_entry(1.0));
  const Value cur = suite_of("bench_x", bench_entry(2.0));
  const Comparison cmp = compare_suites(base, cur);
  EXPECT_FALSE(cmp.ok());
  EXPECT_EQ(cmp.regressions, 1);
  const Delta* d = find_delta(cmp, "wall_s");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->outcome, Outcome::kRegression);
  EXPECT_TRUE(d->gated);
}

TEST(BenchCompare, WallJitterInsideAbsoluteFloorPasses) {
  // Tiny bench: 20 ms -> 300 ms is huge relatively but under the 0.5 s
  // absolute floor — exactly the cross-machine jitter the floor absorbs.
  const Value base = suite_of("bench_x", bench_entry(0.02));
  const Value cur = suite_of("bench_x", bench_entry(0.30));
  const Comparison cmp = compare_suites(base, cur);
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(find_delta(cmp, "wall_s")->outcome, Outcome::kWithinNoise);
}

TEST(BenchCompare, WallImprovementReportedButPasses) {
  // threshold = max(0.75 * 4.0, 0.5) = 3.0; -3.5 s clears it downward.
  const Value base = suite_of("bench_x", bench_entry(4.0));
  const Value cur = suite_of("bench_x", bench_entry(0.5));
  const Comparison cmp = compare_suites(base, cur);
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.improvements, 1);
  EXPECT_EQ(find_delta(cmp, "wall_s")->outcome, Outcome::kImprovement);
}

TEST(BenchCompare, AccuracyMetricRegressionFlags) {
  // accuracy tolerance = max(0.05 * 5.0, 0.25) = 0.25; +1.0 pp flags.
  Value base_entry = bench_entry(1.0);
  add_metric(base_entry, "table3.worst", 5.0, "accuracy");
  Value cur_entry = bench_entry(1.0);
  add_metric(cur_entry, "table3.worst", 6.0, "accuracy");
  const Comparison cmp = compare_suites(suite_of("bench_x", base_entry),
                                        suite_of("bench_x", cur_entry));
  EXPECT_FALSE(cmp.ok());
  const Delta* d = find_delta(cmp, "metric:table3.worst");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->outcome, Outcome::kRegression);
}

TEST(BenchCompare, MissingGatedMetricFailsTheGate) {
  Value base_entry = bench_entry(1.0);
  add_metric(base_entry, "table3.worst", 5.0, "accuracy");
  const Comparison cmp = compare_suites(suite_of("bench_x", base_entry),
                                        suite_of("bench_x", bench_entry(1.0)));
  EXPECT_FALSE(cmp.ok());
  EXPECT_EQ(cmp.missing, 1);
  EXPECT_EQ(find_delta(cmp, "metric:table3.worst")->outcome,
            Outcome::kMissingInCurrent);
}

TEST(BenchCompare, InfoMetricDriftIsNotGated) {
  Value base_entry = bench_entry(1.0);
  add_metric(base_entry, "fig6.fastest_ms", 100.0, "info", "ms");
  Value cur_entry = bench_entry(1.0);
  add_metric(cur_entry, "fig6.fastest_ms", 500.0, "info", "ms");
  const Comparison cmp = compare_suites(suite_of("bench_x", base_entry),
                                        suite_of("bench_x", cur_entry));
  EXPECT_TRUE(cmp.ok());
  const Delta* d = find_delta(cmp, "metric:fig6.fastest_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->gated);
}

TEST(BenchCompare, NewMetricIsInformational) {
  Value cur_entry = bench_entry(1.0);
  add_metric(cur_entry, "brand.new", 1.0, "accuracy");
  const Comparison cmp = compare_suites(suite_of("bench_x", bench_entry(1.0)),
                                        suite_of("bench_x", cur_entry));
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.added, 1);
}

TEST(BenchCompare, CounterDriftBeyondRoundingFlags) {
  // count tolerance = max(0.001 * 1000, 0.5) = 1.0; drift of 2 flags —
  // in either direction (fewer events is also a behaviour change).
  Value base_entry = bench_entry(1.0);
  base_entry["counters"]["sim.events"] = 1000.0;
  Value cur_entry = bench_entry(1.0);
  cur_entry["counters"]["sim.events"] = 998.0;
  const Comparison cmp = compare_suites(suite_of("bench_x", base_entry),
                                        suite_of("bench_x", cur_entry));
  EXPECT_FALSE(cmp.ok());
  EXPECT_EQ(find_delta(cmp, "counter:sim.events")->outcome,
            Outcome::kRegression);
}

TEST(BenchCompare, CounterWithinRoundingPasses) {
  Value base_entry = bench_entry(1.0);
  base_entry["counters"]["sim.events"] = 1000.0;
  Value cur_entry = bench_entry(1.0);
  cur_entry["counters"]["sim.events"] = 1000.4;
  const Comparison cmp = compare_suites(suite_of("bench_x", base_entry),
                                        suite_of("bench_x", cur_entry));
  EXPECT_TRUE(cmp.ok());
}

TEST(BenchCompare, MicroBenchSkipsCounterGating) {
  // google-benchmark tunes iteration counts to wall time; their counters
  // are not deterministic and must not gate.
  Value base_entry = bench_entry(1.0, 10.0, "micro");
  base_entry["counters"]["sim.events"] = 1000.0;
  Value cur_entry = bench_entry(1.0, 10.0, "micro");
  cur_entry["counters"]["sim.events"] = 5000.0;
  const Comparison cmp = compare_suites(suite_of("bench_x", base_entry),
                                        suite_of("bench_x", cur_entry));
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(find_delta(cmp, "counter:sim.events"), nullptr);
}

TEST(BenchCompare, MissingBenchFailsUnlessFiltered) {
  const Value base = suite_of("bench_gone", bench_entry(1.0));
  Value cur;
  cur["benches"].object();
  EXPECT_FALSE(compare_suites(base, cur).ok());

  CompareOptions opts;
  opts.fail_on_missing_bench = false;  // the runner's --filter mode
  EXPECT_TRUE(compare_suites(base, cur, opts).ok());
}

TEST(BenchCompare, NewBenchIsInformational) {
  Value base;
  base["benches"].object();
  const Value cur = suite_of("bench_new", bench_entry(1.0));
  const Comparison cmp = compare_suites(base, cur);
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.added, 1);
}

TEST(BenchCompare, ToleranceThresholdIsMaxOfRelAndAbs) {
  const Tolerance tol{0.10, 0.5};
  EXPECT_DOUBLE_EQ(tol.threshold(100.0), 10.0);  // rel arm
  EXPECT_DOUBLE_EQ(tol.threshold(1.0), 0.5);     // abs floor
  EXPECT_DOUBLE_EQ(tol.threshold(-100.0), 10.0); // |baseline|
}

TEST(BenchCompare, MarkdownReportStatesVerdict) {
  const Value base = suite_of("bench_x", bench_entry(1.0));
  const Value cur = suite_of("bench_x", bench_entry(2.0));
  const Comparison cmp = compare_suites(base, cur);
  std::ostringstream out;
  write_markdown_report(out, cur, &cmp, "bench/baseline.json");
  const std::string text = out.str();
  EXPECT_NE(text.find("FAIL — regression"), std::string::npos);
  EXPECT_NE(text.find("| bench_x | wall_s |"), std::string::npos);

  std::ostringstream ok_out;
  const Comparison ok_cmp = compare_suites(base, base);
  write_markdown_report(ok_out, base, &ok_cmp, "bench/baseline.json");
  EXPECT_NE(ok_out.str().find("**Verdict: PASS**"), std::string::npos);
}

}  // namespace
