#include "hec/trace/trace.h"

#include <gtest/gtest.h>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"
#include "hec/workloads/trace_builders.h"
#include "hec/workloads/workload.h"

namespace hec {
namespace {

PhaseDemand simple_demand(double inst, double mpki = 1.0) {
  PhaseDemand d;
  d.instructions_per_unit = inst;
  d.wpi = 0.8;
  d.spi_core = 0.5;
  d.mem_misses_per_kinst = mpki;
  return d;
}

TEST(WorkloadTrace, TotalsAndAppend) {
  WorkloadTrace trace;
  EXPECT_TRUE(trace.empty());
  trace.append({"a", simple_demand(100.0), 10.0});
  trace.append({"b", simple_demand(200.0), 30.0});
  EXPECT_EQ(trace.phase_count(), 2u);
  EXPECT_DOUBLE_EQ(trace.total_units(), 40.0);
  PhaseRecord bad{"bad", simple_demand(1.0), 0.0};
  EXPECT_THROW(trace.append(bad), ContractViolation);
}

TEST(WorkloadTrace, BlendIsUnitWeightedForInstructions) {
  WorkloadTrace trace;
  trace.append({"light", simple_demand(100.0), 30.0});
  trace.append({"heavy", simple_demand(300.0), 10.0});
  const PhaseDemand blend = trace.blended_demand();
  // (30*100 + 10*300) / 40 = 150 instructions per unit.
  EXPECT_DOUBLE_EQ(blend.instructions_per_unit, 150.0);
  EXPECT_DOUBLE_EQ(blend.wpi, 0.8);
  EXPECT_DOUBLE_EQ(blend.spi_core, 0.5);
}

TEST(WorkloadTrace, BlendIsInstructionWeightedForRates) {
  WorkloadTrace trace;
  PhaseDemand hot = simple_demand(100.0, 10.0);
  hot.wpi = 1.0;
  PhaseDemand cold = simple_demand(300.0, 2.0);
  cold.wpi = 0.6;
  trace.append({"hot", hot, 10.0});    // 1000 instructions
  trace.append({"cold", cold, 10.0});  // 3000 instructions
  const PhaseDemand blend = trace.blended_demand();
  EXPECT_NEAR(blend.wpi, (1000.0 * 1.0 + 3000.0 * 0.6) / 4000.0, 1e-12);
  EXPECT_NEAR(blend.mem_misses_per_kinst,
              (1000.0 * 10.0 + 3000.0 * 2.0) / 4000.0, 1e-12);
}

TEST(WorkloadTrace, BlendRejectsEmpty) {
  WorkloadTrace trace;
  EXPECT_THROW(trace.blended_demand(), ContractViolation);
}

TEST(SimulateTrace, SinglePhaseMatchesNodeSim) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = simple_demand(1000.0);
  WorkloadTrace trace;
  trace.append({"only", d, 5000.0});
  RunConfig cfg;
  cfg.cores_used = 4;
  cfg.f_ghz = 1.4;
  cfg.seed = 3;
  cfg.noise_sigma = 0.0;
  cfg.run_bias_sigma = 0.0;
  const RunResult via_trace = simulate_trace(arm, trace, cfg);
  RunConfig direct_cfg = cfg;
  direct_cfg.work_units = 5000.0;
  direct_cfg.seed = cfg.seed ^ 0x9e3779b97f4a7c15ULL;  // trace phase seed
  const RunResult direct = simulate_node(arm, d, direct_cfg);
  EXPECT_DOUBLE_EQ(via_trace.wall_s, direct.wall_s);
  EXPECT_DOUBLE_EQ(via_trace.energy.total_j(), direct.energy.total_j());
}

TEST(SimulateTrace, PhasesAddUp) {
  const NodeSpec amd = amd_opteron_k10();
  WorkloadTrace trace;
  trace.append({"a", simple_demand(500.0), 4000.0});
  trace.append({"b", simple_demand(2000.0), 1000.0});
  RunConfig cfg;
  cfg.cores_used = 6;
  cfg.f_ghz = 2.1;
  cfg.noise_sigma = 0.0;
  cfg.run_bias_sigma = 0.0;
  const RunResult r = simulate_trace(amd, trace, cfg);
  // Instructions: 4000*500 + 1000*2000 = 4e6.
  EXPECT_NEAR(r.counters.instructions, 4e6, 1.0);
  EXPECT_DOUBLE_EQ(r.counters.work_units, 5000.0);
  EXPECT_GT(r.wall_s, 0.0);
  // Energy equals the sum of both phases' energies (>= idle * wall).
  EXPECT_GE(r.energy.total_j(), amd.idle_node_w() * r.wall_s * 0.999);
}

TEST(TraceBuilders, BlendsReproduceRegisteredDemand) {
  // The phase decomposition must not change the workload's aggregate
  // characterisation (instructions and I/O exactly; per-instruction
  // rates within the mixing approximation).
  for (const Workload& w : all_workloads()) {
    for (Isa isa : {Isa::kArmV7a, Isa::kX86_64}) {
      const PhaseDemand& base = w.demand_for(isa);
      const WorkloadTrace trace = make_workload_trace(w, isa, 12000.0);
      EXPECT_NEAR(trace.total_units(), 12000.0, 1e-6) << w.name;
      const PhaseDemand blend = trace.blended_demand();
      EXPECT_NEAR(blend.instructions_per_unit, base.instructions_per_unit,
                  base.instructions_per_unit * 1e-9)
          << w.name;
      EXPECT_NEAR(blend.io_bytes_per_unit, base.io_bytes_per_unit,
                  base.io_bytes_per_unit * 1e-9 + 1e-12)
          << w.name;
      EXPECT_NEAR(blend.wpi, base.wpi, base.wpi * 1e-9) << w.name;
      EXPECT_NEAR(blend.mem_misses_per_kinst, base.mem_misses_per_kinst,
                  base.mem_misses_per_kinst * 0.08 + 1e-12)
          << w.name;
    }
  }
}

TEST(TraceBuilders, PhaseStructureMatchesPrograms) {
  const Workload mc = workload_memcached();
  const WorkloadTrace mc_trace =
      make_workload_trace(mc, Isa::kArmV7a, 1000.0);
  ASSERT_EQ(mc_trace.phase_count(), 3u);
  EXPECT_EQ(mc_trace.phases()[0].label, "GET");
  EXPECT_NEAR(mc_trace.phases()[0].units, 900.0, 1e-9);

  const WorkloadTrace x264_trace =
      make_workload_trace(workload_x264(), Isa::kX86_64, 120.0);
  ASSERT_EQ(x264_trace.phase_count(), 2u);
  EXPECT_NEAR(x264_trace.phases()[0].units, 10.0, 1e-9);  // 1 I per GOP
  // I-frames execute more instructions than P-frames per unit.
  EXPECT_GT(x264_trace.phases()[0].demand.instructions_per_unit,
            x264_trace.phases()[1].demand.instructions_per_unit);

  const WorkloadTrace ep_trace =
      make_workload_trace(workload_ep(), Isa::kArmV7a, 500.0);
  EXPECT_EQ(ep_trace.phase_count(), 1u);
}

TEST(TraceBuilders, RejectsNonPositiveUnits) {
  EXPECT_THROW(make_workload_trace(workload_ep(), Isa::kArmV7a, 0.0),
               ContractViolation);
}

}  // namespace
}  // namespace hec
