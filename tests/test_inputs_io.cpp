#include "hec/model/inputs_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"

namespace hec {
namespace {

WorkloadInputs sample_inputs() {
  WorkloadInputs in;
  in.inst_per_unit = 160.25;
  in.wpi = 0.881;
  in.spi_core = 0.52;
  in.ucpu = 0.97;
  in.io_bytes_per_unit = 800.0;
  in.io_s_per_unit = 6.4e-5;
  in.spi_mem_by_cores = {LinearFit{0.8, 4.4, 0.999, 5},
                         LinearFit{0.81, 5.5, 0.998, 5}};
  return in;
}

PowerParams sample_power() {
  PowerParams p;
  p.freqs_ghz = {0.2, 0.8, 1.4};
  p.core_active_w = {0.04, 0.23, 0.69};
  p.core_stall_w = {0.02, 0.11, 0.39};
  p.mem_active_w = 0.45;
  p.io_active_w = 0.72;
  p.idle_w = 1.38;
  return p;
}

TEST(InputsIo, WorkloadInputsRoundTrip) {
  const WorkloadInputs original = sample_inputs();
  const WorkloadInputs parsed =
      parse_workload_inputs(serialize_workload_inputs(original));
  EXPECT_DOUBLE_EQ(parsed.inst_per_unit, original.inst_per_unit);
  EXPECT_DOUBLE_EQ(parsed.wpi, original.wpi);
  EXPECT_DOUBLE_EQ(parsed.spi_core, original.spi_core);
  EXPECT_DOUBLE_EQ(parsed.ucpu, original.ucpu);
  EXPECT_DOUBLE_EQ(parsed.io_bytes_per_unit, original.io_bytes_per_unit);
  EXPECT_DOUBLE_EQ(parsed.io_s_per_unit, original.io_s_per_unit);
  ASSERT_EQ(parsed.spi_mem_by_cores.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(parsed.spi_mem_by_cores[i].intercept,
                     original.spi_mem_by_cores[i].intercept);
    EXPECT_DOUBLE_EQ(parsed.spi_mem_by_cores[i].slope,
                     original.spi_mem_by_cores[i].slope);
  }
}

TEST(InputsIo, PowerParamsRoundTrip) {
  const PowerParams original = sample_power();
  const PowerParams parsed =
      parse_power_params(serialize_power_params(original));
  EXPECT_EQ(parsed.freqs_ghz, original.freqs_ghz);
  EXPECT_EQ(parsed.core_active_w, original.core_active_w);
  EXPECT_EQ(parsed.core_stall_w, original.core_stall_w);
  EXPECT_DOUBLE_EQ(parsed.idle_w, original.idle_w);
  EXPECT_DOUBLE_EQ(parsed.mem_active_w, original.mem_active_w);
  EXPECT_DOUBLE_EQ(parsed.io_active_w, original.io_active_w);
}

TEST(InputsIo, CharacterisedInputsRoundTripExactly) {
  // End to end: a real characterisation survives the text format.
  CharacterizeOptions opts;
  opts.baseline_units = 3000.0;
  const WorkloadInputs original = characterize_workload(
      arm_cortex_a9(), workload_ep().demand_arm, opts);
  const WorkloadInputs parsed =
      parse_workload_inputs(serialize_workload_inputs(original));
  EXPECT_DOUBLE_EQ(parsed.inst_per_unit, original.inst_per_unit);
  EXPECT_DOUBLE_EQ(parsed.wpi, original.wpi);
  ASSERT_EQ(parsed.spi_mem_by_cores.size(),
            original.spi_mem_by_cores.size());
  for (std::size_t i = 0; i < parsed.spi_mem_by_cores.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.spi_mem_by_cores[i].slope,
                     original.spi_mem_by_cores[i].slope);
  }
}

TEST(InputsIo, CommentsAndBlankLinesIgnored) {
  std::string text = serialize_workload_inputs(sample_inputs());
  text = "# characterised 2026-07-04 on testbed A\n\n" + text + "\n# end\n";
  EXPECT_NO_THROW(parse_workload_inputs(text));
}

TEST(InputsIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_workload_inputs(""), ParseError);
  EXPECT_THROW(parse_workload_inputs("format hec-power-params 1\n"),
               ParseError);  // wrong format tag
  EXPECT_THROW(
      parse_workload_inputs("format hec-workload-inputs 1\nwpi 0.8\n"),
      ParseError);  // missing inst_per_unit
  EXPECT_THROW(parse_workload_inputs(
                   "format hec-workload-inputs 1\ninst_per_unit abc\n"),
               ParseError);  // bad number
  EXPECT_THROW(parse_workload_inputs(
                   "format hec-workload-inputs 1\nbogus_key 1\n"),
               ParseError);
  std::string out_of_order = serialize_workload_inputs(sample_inputs());
  out_of_order += "spi_mem_fit 7 0 1 1 5\n";  // non-consecutive core row
  EXPECT_THROW(parse_workload_inputs(out_of_order), ParseError);
}

TEST(InputsIo, RejectsMalformedPowerParams) {
  EXPECT_THROW(parse_power_params("format hec-power-params 1\n"),
               ParseError);  // no pstates
  EXPECT_THROW(parse_power_params("format hec-power-params 1\n"
                                  "pstate 1.0 0.5 0.3\n"
                                  "pstate 0.5 0.2 0.1\n"),
               ParseError);  // descending frequency
}

TEST(InputsIo, FileRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "hec_inputs_io_test";
  fs::create_directories(dir);
  const std::string wpath = (dir / "workload.hec").string();
  const std::string ppath = (dir / "power.hec").string();

  save_workload_inputs(sample_inputs(), wpath);
  save_power_params(sample_power(), ppath);
  const WorkloadInputs w = load_workload_inputs(wpath);
  const PowerParams p = load_power_params(ppath);
  EXPECT_DOUBLE_EQ(w.inst_per_unit, sample_inputs().inst_per_unit);
  EXPECT_DOUBLE_EQ(p.idle_w, sample_power().idle_w);

  EXPECT_THROW(load_workload_inputs((dir / "missing.hec").string()),
               std::runtime_error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hec
