// Fault-injection subsystem tests: sampling, degraded node-sim runs,
// failure-aware re-matching, and the Monte Carlo robust evaluator.
//
// The acceptance properties of the reliability extension:
//   (a) a crash at time t kills exactly the work scheduled after t, and
//       the energy breakdown stays consistent with the truncated run;
//   (b) re-matching over survivors restores the "everyone finishes
//       simultaneously" property of the mix-and-match split;
//   (c) the deadline-miss probability is monotonically non-increasing in
//       checkpoint frequency (more frequent checkpoints never hurt, at
//       zero checkpoint cost).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hec/config/robust_evaluate.h"
#include "hec/fault/fault_model.h"
#include "hec/fault/recovery.h"
#include "hec/hw/catalog.h"
#include "hec/pareto/robust_frontier.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

// ---------------------------------------------------------------- sampling

TEST(FaultModel, DefaultConfigIsInert) {
  const FaultConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_FALSE(config.crashes_enabled());
  Rng rng(7);
  const NodeFaultSample s = sample_node_faults(config, rng, 100.0);
  EXPECT_FALSE(s.crashes());
  EXPECT_DOUBLE_EQ(s.rate_multiplier(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_multiplier(1e9), 1.0);
}

TEST(FaultModel, CrashTimesFollowTheConfiguredMttf) {
  FaultConfig config;
  config.mttf_s = 250.0;
  Rng rng(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const NodeFaultSample s = sample_node_faults(config, rng, 100.0);
    ASSERT_TRUE(s.crashes());
    ASSERT_GE(s.crash_time_s, 0.0);
    sum += s.crash_time_s;
  }
  // Sample mean of Exp(1/250) over 20k draws: within a few percent.
  EXPECT_NEAR(sum / n, 250.0, 250.0 * 0.05);
}

TEST(FaultModel, StragglerWindowBoundsTheSlowdown) {
  FaultConfig config;
  config.straggler_prob = 1.0;
  config.straggler_slowdown = 3.0;
  config.straggler_window_s = 10.0;
  Rng rng(5);
  const NodeFaultSample s = sample_node_faults(config, rng, 50.0);
  ASSERT_LT(s.straggler_start_s, 50.0);
  EXPECT_DOUBLE_EQ(s.straggler_end_s, s.straggler_start_s + 10.0);
  EXPECT_DOUBLE_EQ(s.rate_multiplier(s.straggler_start_s), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.rate_multiplier(s.straggler_end_s), 1.0);
}

TEST(FaultModel, ToNodeFaultPlanMapsThermalFactorToAbsoluteFrequency) {
  NodeFaultSample s;
  s.thermal_onset_s = 4.0;
  s.thermal_factor = 0.5;
  const NodeFaultPlan plan = to_node_fault_plan(s, 1.4);
  ASSERT_TRUE(plan.has_thermal_cap());
  EXPECT_DOUBLE_EQ(plan.thermal_cap_f_ghz, 0.7);
  EXPECT_DOUBLE_EQ(plan.thermal_cap_time_s, 4.0);
}

// ------------------------------------------------------- node_sim faults

PhaseDemand compute_demand() {
  PhaseDemand d;
  d.instructions_per_unit = 1000.0;
  d.wpi = 0.8;
  d.spi_core = 0.5;
  d.mem_misses_per_kinst = 1.0;
  return d;
}

RunConfig quiet_config(int cores, double f, double units,
                       std::uint64_t seed = 1) {
  RunConfig cfg;
  cfg.cores_used = cores;
  cfg.f_ghz = f;
  cfg.work_units = units;
  cfg.seed = seed;
  cfg.noise_sigma = 0.0;
  cfg.run_bias_sigma = 0.0;
  return cfg;
}

TEST(NodeSimFaults, DisabledPlanIsBitIdenticalToPlainRun) {
  const NodeSpec arm = arm_cortex_a9();
  RunConfig cfg = quiet_config(4, 1.4, 10000.0, 99);
  cfg.noise_sigma = 0.05;  // exercise the RNG-dependent path too
  cfg.run_bias_sigma = 0.02;
  PhaseDemand d = compute_demand();
  d.io_bytes_per_unit = 200.0;  // exercise the NIC path
  const RunResult plain = simulate_node(arm, d, cfg);
  const RunResult with_plan = simulate_node(arm, d, cfg, NodeFaultPlan{});
  EXPECT_EQ(plain.wall_s, with_plan.wall_s);
  EXPECT_EQ(plain.cpu_busy_s, with_plan.cpu_busy_s);
  EXPECT_EQ(plain.io_busy_s, with_plan.io_busy_s);
  EXPECT_EQ(plain.energy.core_j, with_plan.energy.core_j);
  EXPECT_EQ(plain.energy.mem_j, with_plan.energy.mem_j);
  EXPECT_EQ(plain.energy.io_j, with_plan.energy.io_j);
  EXPECT_EQ(plain.energy.idle_j, with_plan.energy.idle_j);
  EXPECT_EQ(plain.counters.instructions, with_plan.counters.instructions);
  EXPECT_EQ(plain.counters.work_units, with_plan.counters.work_units);
  EXPECT_FALSE(with_plan.crashed);
}

TEST(NodeSimFaults, CrashKillsExactlyTheWorkAfterT) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = compute_demand();
  const RunConfig cfg = quiet_config(4, 1.4, 20000.0);
  const RunResult nominal = simulate_node(arm, d, cfg);

  NodeFaultPlan plan;
  plan.crash_time_s = nominal.wall_s * 0.5;
  const RunResult crashed = simulate_node(arm, d, cfg, plan);

  ASSERT_TRUE(crashed.crashed);
  EXPECT_DOUBLE_EQ(crashed.wall_s, plan.crash_time_s);
  EXPECT_DOUBLE_EQ(crashed.crash_time_s, plan.crash_time_s);
  // (a) exactly the work completed before t survives; everything after
  // dies. Completed units are whole chunks, so allow chunk granularity.
  EXPECT_GT(crashed.completed_units, 0.0);
  EXPECT_LT(crashed.completed_units, cfg.work_units);
  const double chunk = cfg.work_units / (4.0 * cfg.chunks_per_core);
  EXPECT_NEAR(crashed.completed_units, cfg.work_units * 0.5,
              chunk * (4.0 + 1.0));
  EXPECT_DOUBLE_EQ(crashed.counters.work_units, crashed.completed_units);
  // Energy: the idle floor runs exactly until the crash, the breakdown
  // stays internally consistent, and a half run costs less than a full one.
  EXPECT_NEAR(crashed.energy.idle_j, arm.idle_node_w() * crashed.wall_s,
              1e-9);
  EXPECT_NEAR(crashed.energy.total_j(),
              crashed.energy.core_j + crashed.energy.mem_j +
                  crashed.energy.io_j + crashed.energy.idle_j,
              1e-12);
  EXPECT_LT(crashed.energy.total_j(), nominal.energy.total_j());
  EXPECT_GT(crashed.energy.total_j(), 0.0);
}

TEST(NodeSimFaults, CrashAfterCompletionChangesNothing) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = compute_demand();
  const RunConfig cfg = quiet_config(4, 1.4, 5000.0);
  const RunResult nominal = simulate_node(arm, d, cfg);
  NodeFaultPlan plan;
  plan.crash_time_s = nominal.wall_s * 2.0;
  const RunResult r = simulate_node(arm, d, cfg, plan);
  EXPECT_FALSE(r.crashed);
  EXPECT_DOUBLE_EQ(r.wall_s, nominal.wall_s);
  EXPECT_DOUBLE_EQ(r.completed_units, cfg.work_units);
}

TEST(NodeSimFaults, StragglerWindowStretchesTheRun) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = compute_demand();
  const RunConfig cfg = quiet_config(4, 1.4, 10000.0);
  const RunResult nominal = simulate_node(arm, d, cfg);

  NodeFaultPlan plan;
  plan.straggler_start_s = 0.0;
  plan.straggler_end_s = nominal.wall_s * 10.0;  // covers the whole run
  plan.straggler_slowdown = 2.0;
  const RunResult slow = simulate_node(arm, d, cfg, plan);
  EXPECT_FALSE(slow.crashed);
  EXPECT_NEAR(slow.wall_s, nominal.wall_s * 2.0, nominal.wall_s * 0.01);
  EXPECT_DOUBLE_EQ(slow.completed_units, cfg.work_units);

  // A window covering only the first half degrades less than 2x.
  plan.straggler_end_s = nominal.wall_s * 0.5;
  const RunResult half = simulate_node(arm, d, cfg, plan);
  EXPECT_GT(half.wall_s, nominal.wall_s);
  EXPECT_LT(half.wall_s, slow.wall_s);
}

TEST(NodeSimFaults, ThermalCapMatchesRunningAtTheCappedClock) {
  const NodeSpec arm = arm_cortex_a9();
  const PhaseDemand d = compute_demand();
  const RunResult nominal = simulate_node(arm, d, quiet_config(4, 1.4, 10000.0));
  const RunResult at_cap = simulate_node(arm, d, quiet_config(4, 0.8, 10000.0));

  NodeFaultPlan plan;
  plan.thermal_cap_time_s = 0.0;  // capped from the start
  plan.thermal_cap_f_ghz = 0.8;
  const RunResult capped =
      simulate_node(arm, d, quiet_config(4, 1.4, 10000.0), plan);
  EXPECT_GT(capped.wall_s, nominal.wall_s);
  EXPECT_NEAR(capped.wall_s, at_cap.wall_s, at_cap.wall_s * 0.02);
  // Capping never lowers the clock below the cap... or raises it: a cap
  // above the configured clock is a no-op.
  NodeFaultPlan loose;
  loose.thermal_cap_time_s = 0.0;
  loose.thermal_cap_f_ghz = 2.0;
  const RunResult uncapped =
      simulate_node(arm, d, quiet_config(4, 1.4, 10000.0), loose);
  EXPECT_DOUBLE_EQ(uncapped.wall_s, nominal.wall_s);
}

// ----------------------------------------------------- analytical recovery

WorkloadInputs make_inputs(double inst_per_unit) {
  WorkloadInputs in;
  in.inst_per_unit = inst_per_unit;
  in.wpi = 0.8;
  in.spi_core = 0.5;
  in.spi_mem_by_cores = {LinearFit{0.0, 0.05, 1.0, 2}};
  in.ucpu = 1.0;
  return in;
}

PowerParams make_power(std::vector<double> freqs, double idle) {
  PowerParams p;
  p.core_active_w.assign(freqs.size(), 1.0);
  p.core_stall_w.assign(freqs.size(), 0.6);
  p.freqs_ghz = std::move(freqs);
  p.mem_active_w = 0.5;
  p.io_active_w = 0.5;
  p.idle_w = idle;
  return p;
}

struct TwoModels {
  NodeTypeModel a9{arm_cortex_a9(), make_inputs(160.0),
                   make_power({0.2, 0.5, 0.8, 1.1, 1.4}, 1.4)};
  NodeTypeModel k10{amd_opteron_k10(), make_inputs(120.0),
                    make_power({0.8, 1.5, 2.1}, 45.0)};
};

std::vector<TypedDeployment> mixed_deps(const TwoModels& m) {
  return {{&m.a9, NodeConfig{4, 4, 1.4}}, {&m.k10, NodeConfig{2, 6, 2.1}}};
}

TEST(Recovery, DisabledFaultsReproduceTheNominalPredictionExactly) {
  const TwoModels m;
  const auto deps = mixed_deps(m);
  const MultiPrediction nominal = predict_multi(deps, 1e5);
  const FaultyRunResult r = simulate_faulty_run(deps, 1e5, FaultConfig{}, 1);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.t_s, nominal.t_s);
  EXPECT_DOUBLE_EQ(r.energy.total_j(), nominal.energy_j);
  EXPECT_EQ(r.crashes, 0);
  EXPECT_EQ(r.rematches, 0);
  EXPECT_DOUBLE_EQ(r.wasted_units, 0.0);
  ASSERT_EQ(r.survivors.size(), 2u);
  EXPECT_EQ(r.survivors[0], 4);
  EXPECT_EQ(r.survivors[1], 2);
}

TEST(Recovery, RematchedSurvivorsFinishSimultaneously) {
  const TwoModels m;
  const auto deps = mixed_deps(m);
  const std::vector<int> survivors{3, 1};  // one crash on each side
  const double remaining = 4.2e4;
  const auto shares = rematch_survivors(deps, survivors, remaining);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_NEAR(shares[0] + shares[1], remaining, remaining * 1e-12);
  // (b) the rate-proportional split over the surviving sub-cluster gives
  // every deployment the same finish time.
  NodeConfig cfg_a = deps[0].config;
  cfg_a.nodes = survivors[0];
  NodeConfig cfg_b = deps[1].config;
  cfg_b.nodes = survivors[1];
  const double t_a = m.a9.predict(shares[0], cfg_a).t_s;
  const double t_b = m.k10.predict(shares[1], cfg_b).t_s;
  EXPECT_NEAR(t_a, t_b, t_a * 1e-9);
}

TEST(Recovery, DeadDeploymentGetsZeroShare) {
  const TwoModels m;
  const auto deps = mixed_deps(m);
  const auto shares = rematch_survivors(deps, std::vector<int>{0, 2}, 1e4);
  EXPECT_DOUBLE_EQ(shares[0], 0.0);
  EXPECT_DOUBLE_EQ(shares[1], 1e4);
}

TEST(Recovery, CrashesDelayTheJobAndWasteWork) {
  const TwoModels m;
  const auto deps = mixed_deps(m);
  const MultiPrediction nominal = predict_multi(deps, 1e5);
  FaultConfig faults;
  faults.mttf_s = nominal.t_s;  // crashes almost surely during the job
  int crashed_runs = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const FaultyRunResult r = simulate_faulty_run(deps, 1e5, faults, seed);
    EXPECT_NEAR(r.energy.total_j(),
                r.energy.core_j + r.energy.mem_j + r.energy.io_j +
                    r.energy.idle_j,
                1e-9);
    if (r.crashes > 0) {
      ++crashed_runs;
      EXPECT_GE(r.rematches, 1);
      if (r.completed) {
        // Lost work must be redone: never faster than the nominal run.
        EXPECT_GE(r.t_s, nominal.t_s * (1.0 - 1e-9));
      }
    } else if (r.completed) {
      EXPECT_NEAR(r.t_s, nominal.t_s, nominal.t_s * 1e-6);
    }
  }
  EXPECT_GT(crashed_runs, 16);  // MTTF == job length: most runs see crashes
}

TEST(Recovery, CheckpointsReduceWastedWork) {
  const TwoModels m;
  const auto deps = mixed_deps(m);
  const MultiPrediction nominal = predict_multi(deps, 1e5);
  FaultConfig faults;
  faults.mttf_s = nominal.t_s;
  FaultConfig with_cp = faults;
  with_cp.checkpoint_interval_s = nominal.t_s / 8.0;
  double wasted_plain = 0.0, wasted_cp = 0.0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    wasted_plain += simulate_faulty_run(deps, 1e5, faults, seed).wasted_units;
    wasted_cp += simulate_faulty_run(deps, 1e5, with_cp, seed).wasted_units;
  }
  EXPECT_LT(wasted_cp, wasted_plain);
}

// ------------------------------------------------------- robust evaluator

TEST(RobustEvaluate, DisabledFaultsEqualNominal) {
  const TwoModels m;
  const RobustConfigEvaluator robust(m.a9, m.k10, FaultConfig{});
  const ConfigEvaluator nominal(m.a9, m.k10);
  ClusterConfig config;
  config.arm = NodeConfig{4, 4, 1.4};
  config.amd = NodeConfig{2, 6, 2.1};
  const RobustOutcome ro = robust.evaluate(config, 1e5);
  const ConfigOutcome co = nominal.evaluate(config, 1e5);
  EXPECT_DOUBLE_EQ(ro.mean_t_s, co.t_s);
  EXPECT_NEAR(ro.mean_energy_j, co.energy_j, co.energy_j * 1e-12);
  EXPECT_DOUBLE_EQ(ro.miss_prob, 0.0);
  EXPECT_DOUBLE_EQ(ro.completion_prob, 1.0);
}

TEST(RobustEvaluate, MissProbabilityMonotoneInCheckpointFrequency) {
  const TwoModels m;
  ClusterConfig config;
  config.arm = NodeConfig{4, 4, 1.4};
  config.amd = NodeConfig{2, 6, 2.1};
  const ConfigEvaluator nominal(m.a9, m.k10);
  const double t_nom = nominal.evaluate(config, 1e5).t_s;
  const double deadline = t_nom * 1.5;

  FaultConfig faults;
  faults.mttf_s = t_nom * 2.0;  // frequent crashes relative to the job
  MonteCarloOptions mc;
  mc.trials = 96;

  // (c) with zero checkpoint cost and crash times sampled independently
  // of the recovery policy, checkpointing more often can only help.
  const std::vector<double> intervals = {
      FaultConfig::kNever, t_nom / 2.0, t_nom / 4.0, t_nom / 8.0};
  double prev_miss = 1.0 + 1e-12;
  for (const double interval : intervals) {
    FaultConfig f = faults;
    f.checkpoint_interval_s = interval;
    const RobustConfigEvaluator robust(m.a9, m.k10, f, mc);
    const RobustOutcome ro = robust.evaluate(config, 1e5, deadline);
    EXPECT_LE(ro.miss_prob, prev_miss)
        << "interval " << interval << " raised the miss probability";
    prev_miss = ro.miss_prob;
  }
  // Sanity: the fault rate is high enough that the unprotected
  // configuration actually misses sometimes.
  FaultConfig unprotected = faults;
  const RobustConfigEvaluator robust(m.a9, m.k10, unprotected, mc);
  EXPECT_GT(robust.evaluate(config, 1e5, deadline).miss_prob, 0.0);
}

TEST(RobustEvaluate, EvaluateAllMatchesSingleEvaluations) {
  const TwoModels m;
  FaultConfig faults;
  faults.mttf_s = 500.0;
  MonteCarloOptions mc;
  mc.trials = 16;
  const RobustConfigEvaluator robust(m.a9, m.k10, faults, mc);
  std::vector<ClusterConfig> configs(2);
  configs[0].arm = NodeConfig{4, 4, 1.4};
  configs[0].amd = NodeConfig{2, 6, 2.1};
  configs[1].arm = NodeConfig{0, 4, 1.4};
  configs[1].amd = NodeConfig{3, 6, 2.1};
  const auto all = robust.evaluate_all(configs, 1e5, 1e9);
  ASSERT_EQ(all.size(), 2u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const RobustOutcome single = robust.evaluate(configs[i], 1e5, 1e9);
    EXPECT_DOUBLE_EQ(all[i].mean_t_s, single.mean_t_s);
    EXPECT_DOUBLE_EQ(all[i].mean_energy_j, single.mean_energy_j);
    EXPECT_DOUBLE_EQ(all[i].miss_prob, single.miss_prob);
  }
}

// --------------------------------------------------------- robust frontier

TEST(RobustFrontier, FiltersByMissProbabilityThenTakesTheFrontier) {
  const std::vector<RobustPoint> points = {
      {1.0, 100.0, 0.00, 0},  // fast, expensive, reliable
      {2.0, 50.0, 0.05, 1},   // mid, reliable-ish
      {3.0, 20.0, 0.50, 2},   // cheap but fragile
      {4.0, 10.0, 0.01, 3},   // slow, cheap, reliable
      {5.0, 60.0, 0.00, 4},   // dominated
  };
  const auto strict = robust_pareto_frontier(points, 0.01);
  ASSERT_EQ(strict.size(), 2u);
  EXPECT_EQ(strict[0].tag, 0u);
  EXPECT_EQ(strict[1].tag, 3u);

  const auto loose = robust_pareto_frontier(points, 1.0);
  ASSERT_EQ(loose.size(), 4u);  // the fragile point re-enters
  EXPECT_EQ(loose[2].tag, 2u);

  EXPECT_TRUE(robust_pareto_frontier(points, 0.0).size() == 2u);
  EXPECT_THROW(robust_pareto_frontier(points, -0.1), ContractViolation);
}

}  // namespace
}  // namespace hec
