#include "hec/sim/memory_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "hec/hw/catalog.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(MemoryModel, MissCostGrowsWithFrequency) {
  const NodeSpec arm = arm_cortex_a9();
  const MemoryModel model(arm);
  double prev = 0.0;
  for (double f : arm.pstates.frequencies_ghz()) {
    const double cost = model.miss_cycles(f, 1);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(MemoryModel, MissCostIsAffineInFrequency) {
  // The DRAM portion is fixed wall-clock, so in cycles it is exactly
  // linear in f with intercept = on-chip fixed cycles (paper Fig. 3).
  const NodeSpec amd = amd_opteron_k10();
  const MemoryModel model(amd);
  const double c1 = model.miss_cycles(1.0, 1);
  // miss_cycles(f) interpolated between two measured points must land
  // exactly on the line through them.
  const double at_08 = model.miss_cycles(0.8, 1);
  const double at_21 = model.miss_cycles(2.1, 1);
  const double slope = (at_21 - at_08) / (2.1 - 0.8);
  EXPECT_NEAR(c1, at_08 + slope * (1.0 - 0.8), 1e-9);
  EXPECT_NEAR(at_08 - slope * 0.8, amd.miss_fixed_cycles, 1e-9);
}

TEST(MemoryModel, ContentionGrowsWithActiveCores) {
  const NodeSpec arm = arm_cortex_a9();
  const MemoryModel model(arm);
  double prev = 0.0;
  for (int c = 1; c <= arm.cores; ++c) {
    const double cost = model.miss_cycles(1.4, c);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(MemoryModel, SingleCoreHasNoContentionPenalty) {
  const NodeSpec arm = arm_cortex_a9();
  const MemoryModel model(arm);
  EXPECT_NEAR(model.miss_cycles(1.0, 1),
              arm.miss_fixed_cycles + arm.dram_latency_ns * 1.0, 1e-9);
}

TEST(MemoryModel, SpiMemScalesWithMissRate) {
  const NodeSpec amd = amd_opteron_k10();
  const MemoryModel model(amd);
  PhaseDemand light;
  light.mem_misses_per_kinst = 1.0;
  PhaseDemand heavy = light;
  heavy.mem_misses_per_kinst = 10.0;
  const double s_light = model.spi_mem(light, 2.1, 6);
  const double s_heavy = model.spi_mem(heavy, 2.1, 6);
  EXPECT_NEAR(s_heavy, 10.0 * s_light, 1e-9);
}

TEST(MemoryModel, ZeroMissesMeansZeroStalls) {
  const MemoryModel model(arm_cortex_a9());
  PhaseDemand none;
  none.mem_misses_per_kinst = 0.0;
  EXPECT_DOUBLE_EQ(model.spi_mem(none, 1.4, 4), 0.0);
}

TEST(MemoryModel, RejectsInvalidArguments) {
  const NodeSpec arm = arm_cortex_a9();
  const MemoryModel model(arm);
  EXPECT_THROW(model.miss_cycles(0.0, 1), ContractViolation);
  EXPECT_THROW(model.miss_cycles(1.0, 0), ContractViolation);
  EXPECT_THROW(model.miss_cycles(1.0, arm.cores + 1), ContractViolation);
}

TEST(MemoryModel, ArmMissesCostMoreCyclesPerNsThanAmdAtSameFreq) {
  // LP-DDR2 latency exceeds DDR3 latency; at equal frequency an ARM miss
  // stalls longer (one driver of the x264 PPR gap in Table 5).
  const MemoryModel arm_model(arm_cortex_a9());
  const MemoryModel amd_model(amd_opteron_k10());
  EXPECT_GT(arm_model.miss_cycles(1.0, 1) - arm_cortex_a9().miss_fixed_cycles,
            amd_model.miss_cycles(1.0, 1) - amd_opteron_k10().miss_fixed_cycles);
}

}  // namespace
}  // namespace hec
