#include "hec/queueing/queue_sim.h"

#include <gtest/gtest.h>

#include "hec/queueing/md1.h"
#include "hec/queueing/variants.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

QueueSimConfig base_config(double rho) {
  QueueSimConfig cfg;
  cfg.mean_service_s = 0.1;
  cfg.arrival_rate_per_s = rho / cfg.mean_service_s;
  cfg.jobs = 200000;
  cfg.seed = 99;
  return cfg;
}

TEST(QueueSim, MD1WaitMatchesPollaczekKhinchine) {
  for (double rho : {0.25, 0.5, 0.75}) {
    QueueSimConfig cfg = base_config(rho);
    cfg.arrivals = QueueDistribution::kExponential;
    cfg.service = QueueDistribution::kDeterministic;
    const QueueSimResult sim = simulate_queue(cfg);
    const MD1Queue formula(cfg.arrival_rate_per_s, cfg.mean_service_s);
    EXPECT_NEAR(sim.mean_wait_s, formula.mean_wait_s(),
                formula.mean_wait_s() * 0.05)
        << "rho=" << rho;
    EXPECT_NEAR(sim.utilization, rho, 0.02) << rho;
  }
}

TEST(QueueSim, MM1WaitMatchesFormula) {
  for (double rho : {0.3, 0.6}) {
    QueueSimConfig cfg = base_config(rho);
    cfg.service = QueueDistribution::kExponential;
    const QueueSimResult sim = simulate_queue(cfg);
    const MM1Queue formula(cfg.arrival_rate_per_s, cfg.mean_service_s);
    EXPECT_NEAR(sim.mean_wait_s, formula.mean_wait_s(),
                formula.mean_wait_s() * 0.06)
        << rho;
  }
}

TEST(QueueSim, KingmanApproximatesBurstyTraffic) {
  // Kingman is a heavy-traffic approximation: test it at rho = 0.85,
  // where it is known to tighten (at moderate load it overestimates
  // waits for bursty GI arrivals).
  QueueSimConfig cfg = base_config(0.85);
  cfg.arrivals = QueueDistribution::kHyperExp;
  cfg.service = QueueDistribution::kDeterministic;
  cfg.jobs = 400000;
  const QueueSimResult sim = simulate_queue(cfg);
  const GG1Kingman approx(cfg.arrival_rate_per_s, cfg.mean_service_s,
                          squared_cv(QueueDistribution::kHyperExp), 0.0);
  EXPECT_NEAR(sim.mean_wait_s, approx.mean_wait_s(),
              approx.mean_wait_s() * 0.30);
  // And burstiness must cost more than Poisson arrivals would.
  const MD1Queue poisson(cfg.arrival_rate_per_s, cfg.mean_service_s);
  EXPECT_GT(sim.mean_wait_s, 2.0 * poisson.mean_wait_s());
}

TEST(QueueSim, DeterministicArrivalsNeverQueueUnderload) {
  QueueSimConfig cfg = base_config(0.8);
  cfg.arrivals = QueueDistribution::kDeterministic;
  cfg.service = QueueDistribution::kDeterministic;
  const QueueSimResult sim = simulate_queue(cfg);
  EXPECT_DOUBLE_EQ(sim.mean_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(sim.max_wait_s, 0.0);
  EXPECT_NEAR(sim.mean_response_s, cfg.mean_service_s, 1e-12);
}

TEST(QueueSim, WaitGrowsWithUtilization) {
  double prev = -1.0;
  for (double rho : {0.2, 0.5, 0.8, 0.92}) {
    const QueueSimResult sim = simulate_queue(base_config(rho));
    EXPECT_GT(sim.mean_wait_s, prev) << rho;
    prev = sim.mean_wait_s;
  }
}

TEST(QueueSim, DeterministicPerSeed) {
  const QueueSimResult a = simulate_queue(base_config(0.5));
  const QueueSimResult b = simulate_queue(base_config(0.5));
  EXPECT_DOUBLE_EQ(a.mean_wait_s, b.mean_wait_s);
  QueueSimConfig other = base_config(0.5);
  other.seed = 123;
  EXPECT_NE(simulate_queue(other).mean_wait_s, a.mean_wait_s);
}

TEST(QueueSim, SquaredCvValues) {
  EXPECT_DOUBLE_EQ(squared_cv(QueueDistribution::kDeterministic), 0.0);
  EXPECT_DOUBLE_EQ(squared_cv(QueueDistribution::kExponential), 1.0);
  EXPECT_NEAR(squared_cv(QueueDistribution::kUniform), 1.0 / 12.0, 1e-12);
  EXPECT_GT(squared_cv(QueueDistribution::kHyperExp), 3.0);
}

TEST(QueueSim, RejectsInvalidConfig) {
  QueueSimConfig cfg = base_config(0.5);
  cfg.arrival_rate_per_s = 20.0;  // rho = 2
  EXPECT_THROW(simulate_queue(cfg), ContractViolation);
  cfg = base_config(0.5);
  cfg.jobs = cfg.warmup_jobs;
  EXPECT_THROW(simulate_queue(cfg), ContractViolation);
}

}  // namespace
}  // namespace hec
