#include "hec/io/table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "hec/util/expect.h"

namespace hec {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"Program", "Energy"});
  table.add_row({"EP", "19.2"});
  table.add_row({"memcached", "21.75"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // Right-aligned numeric column: both values end at the same offset.
  std::istringstream lines(text);
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(row1.size(), row2.size());
  EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only"}), ContractViolation);
}

TEST(TablePrinter, RejectsEmptyColumns) {
  EXPECT_THROW(TablePrinter({}), ContractViolation);
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(10.0, 0), "10");
  EXPECT_EQ(TablePrinter::num(-1.5, 1), "-1.5");
}

TEST(TablePrinter, RowCount) {
  TablePrinter table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinter, CustomAlignment) {
  TablePrinter table({"left", "alsoleft"});
  table.set_alignment({Align::kLeft, Align::kLeft});
  table.add_row({"a", "b"});
  std::ostringstream out;
  table.print(out);
  // Left-aligned first column: row starts with the cell then padding.
  EXPECT_NE(out.str().find("a    "), std::string::npos);
}

TEST(TablePrinter, AlignmentSizeMustMatch) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.set_alignment({Align::kLeft}), ContractViolation);
}

}  // namespace
}  // namespace hec
