// Property sweeps of the simulator substrate across every (workload,
// node, operating point): observables must stay inside physical
// envelopes, respect determinism, and react to knobs in the right
// direction.
#include <gtest/gtest.h>

#include <cctype>

#include "hec/hw/catalog.h"
#include "hec/sim/node_sim.h"
#include "hec/workloads/workload.h"

namespace hec {
namespace {

struct SimCase {
  std::string workload;
  bool arm;
  int cores;
  double f_ghz;
};

std::string sim_case_name(const ::testing::TestParamInfo<SimCase>& info) {
  std::string name = info.param.workload + (info.param.arm ? "_arm" : "_amd") +
                     "_c" + std::to_string(info.param.cores) + "_f" +
                     std::to_string(static_cast<int>(info.param.f_ghz * 10));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class SimProperty : public ::testing::TestWithParam<SimCase> {
 protected:
  NodeSpec spec() const {
    return GetParam().arm ? arm_cortex_a9() : amd_opteron_k10();
  }
  RunResult run(std::uint64_t seed = 11) const {
    const SimCase& p = GetParam();
    const NodeSpec s = spec();
    // Keep the workload alive: demand_for returns a reference into it.
    const Workload workload = find_workload(p.workload);
    RunConfig cfg;
    cfg.cores_used = p.cores;
    cfg.f_ghz = p.f_ghz;
    cfg.work_units = 5000.0;
    cfg.seed = seed;
    return simulate_node(s, workload.demand_for(s.isa), cfg);
  }
};

TEST_P(SimProperty, PowerStaysInsideTheEnvelope) {
  const NodeSpec s = spec();
  const RunResult r = run();
  EXPECT_GE(r.avg_power_w(), s.idle_node_w() * 0.95);
  EXPECT_LE(r.avg_power_w(), s.peak_node_w() * 1.10);
}

TEST_P(SimProperty, UtilisationIsAFraction) {
  const RunResult r = run();
  EXPECT_GT(r.ucpu(), 0.0);
  EXPECT_LE(r.ucpu(), 1.0 + 1e-9);
}

TEST_P(SimProperty, CountersAreConsistent) {
  const NodeSpec s = spec();
  const Workload workload = find_workload(GetParam().workload);
  const PhaseDemand& d = workload.demand_for(s.isa);
  const RunResult r = run();
  EXPECT_NEAR(r.counters.instructions_per_unit(), d.instructions_per_unit,
              d.instructions_per_unit * 0.02);
  EXPECT_NEAR(r.counters.wpi(), d.wpi, d.wpi * 0.05);
  EXPECT_GE(r.counters.mem_stall_cycles, 0.0);
  EXPECT_DOUBLE_EQ(r.counters.work_units, 5000.0);
}

TEST_P(SimProperty, DeterministicPerSeedAndSensitiveToIt) {
  const RunResult a = run(42);
  const RunResult b = run(42);
  EXPECT_DOUBLE_EQ(a.wall_s, b.wall_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
  const RunResult c = run(43);
  EXPECT_NE(a.wall_s, c.wall_s);
  EXPECT_NEAR(a.wall_s / c.wall_s, 1.0, 0.2);  // but close
}

TEST_P(SimProperty, EnergyComponentsNonNegativeAndIdleMatchesWall) {
  const NodeSpec s = spec();
  const RunResult r = run();
  EXPECT_GE(r.energy.core_j, 0.0);
  EXPECT_GE(r.energy.mem_j, 0.0);
  EXPECT_GE(r.energy.io_j, 0.0);
  EXPECT_NEAR(r.energy.idle_j, s.idle_node_w() * r.wall_s,
              r.energy.idle_j * 1e-9);
}

TEST_P(SimProperty, WallCoversBusyTimePerCore) {
  const RunResult r = run();
  // No core can be busy longer than the run (some slack for rounding).
  EXPECT_LE(r.cpu_busy_s,
            r.wall_s * static_cast<double>(r.cores_used) * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimProperty,
    ::testing::Values(
        SimCase{"EP", true, 1, 0.2}, SimCase{"EP", true, 4, 1.4},
        SimCase{"EP", false, 6, 2.1}, SimCase{"memcached", true, 4, 1.4},
        SimCase{"memcached", false, 1, 0.8}, SimCase{"x264", true, 4, 0.8},
        SimCase{"x264", false, 6, 2.1},
        SimCase{"blackscholes", true, 2, 1.1},
        SimCase{"blackscholes", false, 3, 1.5},
        SimCase{"Julius", true, 4, 0.5}, SimCase{"Julius", false, 6, 0.8},
        SimCase{"RSA-2048", true, 1, 1.4},
        SimCase{"RSA-2048", false, 2, 2.1}),
    sim_case_name);

}  // namespace
}  // namespace hec
