// Quantile estimation from hec::obs log2 histograms.
//
// The estimator can only be as sharp as the buckets: each log2 bucket
// spans a factor of two, so any estimate is within [exact/2, exact*2].
// These tests pin that accuracy contract, the exactness at bucket
// edges, monotonicity in q, and the NaN-on-empty edge case.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "hec/obs/metrics.h"

namespace {

using hec::obs::MetricsRegistry;

MetricsRegistry::HistogramSnapshot snapshot_of(
    const std::vector<double>& values) {
  MetricsRegistry registry;
  auto& h = registry.histogram("h");
  for (double v : values) h.observe(v);
  return registry.histograms().front();
}

double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

TEST(ObsQuantile, EmptyHistogramIsNaN) {
  MetricsRegistry registry;
  registry.histogram("h");
  const auto snap = registry.histograms().front();
  EXPECT_TRUE(std::isnan(snap.quantile(0.5)));
}

TEST(ObsQuantile, SingleObservationStaysInItsBucket) {
  const auto snap = snapshot_of({1.5});
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    const double est = snap.quantile(q);
    EXPECT_GE(est, 1.0) << "q=" << q;
    EXPECT_LE(est, 2.0) << "q=" << q;
  }
}

TEST(ObsQuantile, UniformPowerOfTwoValuesHitBucketEdges) {
  // 4 observations, one per bucket [1,2) [2,4) [4,8) [8,16). The p100
  // estimate is the top bucket's upper edge; p50 lands at bucket 2's
  // upper edge (rank 2 of 4 = all of bucket [2,4)).
  const auto snap = snapshot_of({1.0, 2.0, 4.0, 8.0});
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 16.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.25), 2.0);
}

TEST(ObsQuantile, WithinFactorTwoOfExactOnSyntheticData) {
  std::mt19937_64 rng(12345);
  std::lognormal_distribution<double> dist(0.0, 2.0);
  std::vector<double> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) values.push_back(dist(rng));
  const auto snap = snapshot_of(values);
  for (double q : {0.50, 0.95, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double est = snap.quantile(q);
    EXPECT_GE(est, exact / 2.0) << "q=" << q;
    EXPECT_LE(est, exact * 2.0) << "q=" << q;
  }
}

TEST(ObsQuantile, MonotonicInQ) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(0.001, 1000.0);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(dist(rng));
  const auto snap = snapshot_of(values);
  double prev = snap.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = snap.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(ObsQuantile, OutOfRangeQClamps) {
  const auto snap = snapshot_of({1.5, 3.0, 6.0});
  EXPECT_DOUBLE_EQ(snap.quantile(-0.5), snap.quantile(0.0));
  EXPECT_DOUBLE_EQ(snap.quantile(1.5), snap.quantile(1.0));
}

}  // namespace
