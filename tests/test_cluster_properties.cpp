// Property sweeps of the cluster-level simulation across workloads and
// configurations: energy floors, completion semantics, idle-tail
// accounting and matched-split balance must hold for every case.
#include <gtest/gtest.h>

#include <cctype>

#include "hec/cluster/cluster_sim.h"
#include "hec/cluster/schedulers.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"

namespace hec {
namespace {

struct ClusterCase {
  std::string workload;
  int arm_nodes, amd_nodes;
};

std::string cluster_case_name(
    const ::testing::TestParamInfo<ClusterCase>& info) {
  std::string name = info.param.workload + "_a" +
                     std::to_string(info.param.arm_nodes) + "_d" +
                     std::to_string(info.param.amd_nodes);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class ClusterProperty : public ::testing::TestWithParam<ClusterCase> {
 protected:
  void SetUp() override {
    arm_ = arm_cortex_a9();
    amd_ = amd_opteron_k10();
    workload_ = find_workload(GetParam().workload);
    config_ = ClusterConfig{
        NodeConfig{GetParam().arm_nodes, arm_.cores,
                   arm_.pstates.max_ghz()},
        NodeConfig{GetParam().amd_nodes, amd_.cores,
                   amd_.pstates.max_ghz()}};
    units_ = std::min(workload_.validation_units, 100000.0);
  }

  SplitAssignment matched_split() const {
    CharacterizeOptions opts;
    opts.baseline_units = 4000.0;
    const NodeTypeModel arm_model =
        build_node_model(arm_, workload_, opts);
    const NodeTypeModel amd_model =
        build_node_model(amd_, workload_, opts);
    const MatchingScheduler sched(arm_model, amd_model);
    return sched.assign(units_, config_);
  }

  NodeSpec arm_, amd_;
  Workload workload_{};
  ClusterConfig config_{};
  double units_ = 0.0;
};

TEST_P(ClusterProperty, EnergyNeverBelowIdleFloor) {
  const SplitAssignment split = matched_split();
  const ClusterRunResult r = simulate_cluster(
      arm_, amd_, workload_, config_, split.units_arm, split.units_amd);
  const double idle_floor =
      (config_.arm.nodes * arm_.idle_node_w() +
       config_.amd.nodes * amd_.idle_node_w()) *
      r.t_s;
  EXPECT_GE(r.energy_j, idle_floor * 0.999);
}

TEST_P(ClusterProperty, CompletionIsTheSlowerSide) {
  const SplitAssignment split = matched_split();
  const ClusterRunResult r = simulate_cluster(
      arm_, amd_, workload_, config_, split.units_arm, split.units_amd);
  EXPECT_DOUBLE_EQ(r.t_s, std::max(r.t_arm_s, r.t_amd_s));
  EXPECT_GT(r.t_s, 0.0);
}

TEST_P(ClusterProperty, MatchedSplitBalancesWithinNoise) {
  if (GetParam().arm_nodes == 0 || GetParam().amd_nodes == 0) {
    GTEST_SKIP() << "homogeneous case has nothing to balance";
  }
  const SplitAssignment split = matched_split();
  const ClusterRunResult r = simulate_cluster(
      arm_, amd_, workload_, config_, split.units_arm, split.units_amd);
  EXPECT_NEAR(r.t_arm_s, r.t_amd_s, r.t_s * 0.15);
  // Matching keeps the idle tail to a small fraction of total energy.
  EXPECT_LT(r.idle_tail_j, r.energy_j * 0.10);
}

TEST_P(ClusterProperty, EnergySplitsAddUp) {
  const SplitAssignment split = matched_split();
  const ClusterRunResult r = simulate_cluster(
      arm_, amd_, workload_, config_, split.units_arm, split.units_amd);
  EXPECT_NEAR(r.energy_j, r.energy_arm_j + r.energy_amd_j,
              r.energy_j * 1e-12);
  if (GetParam().arm_nodes == 0) {
    EXPECT_DOUBLE_EQ(r.energy_arm_j, 0.0);
  }
  if (GetParam().amd_nodes == 0) {
    EXPECT_DOUBLE_EQ(r.energy_amd_j, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterProperty,
    ::testing::Values(ClusterCase{"EP", 8, 1}, ClusterCase{"EP", 4, 4},
                      ClusterCase{"EP", 8, 0}, ClusterCase{"EP", 0, 4},
                      ClusterCase{"memcached", 8, 1},
                      ClusterCase{"memcached", 0, 2},
                      ClusterCase{"x264", 4, 2},
                      ClusterCase{"blackscholes", 6, 2},
                      ClusterCase{"Julius", 8, 1},
                      ClusterCase{"RSA-2048", 2, 6}),
    cluster_case_name);

}  // namespace
}  // namespace hec
