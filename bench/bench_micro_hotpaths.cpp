// google-benchmark microbenchmarks of the library's hot paths: node
// simulation, configuration-space evaluation, Pareto-frontier
// derivation and the matched split. These bound the cost of the
// full-space analyses (36,380+ evaluations per figure).
//
// main() first runs an observability overhead check: the evaluator hot
// loop with hec::obs instrumentation active vs. runtime-disabled should
// differ by less than 5%; the binary exits non-zero at twice that budget
// and the telemetry baseline gates the measured value.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "hec/obs/obs.h"
#include "hec/obs/profile.h"
#include "hec/sim/node_sim.h"
#include "hec/util/rng.h"

namespace {

const hec::bench::WorkloadModels& ep_models() {
  static const hec::bench::WorkloadModels models =
      hec::bench::build_models(hec::workload_ep());
  return models;
}

void BM_SimulateNode(benchmark::State& state) {
  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::PhaseDemand demand = hec::workload_ep().demand_arm;
  hec::RunConfig cfg;
  cfg.cores_used = arm.cores;
  cfg.f_ghz = arm.pstates.max_ghz();
  cfg.work_units = 10000.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(simulate_node(arm, demand, cfg));
  }
}
BENCHMARK(BM_SimulateNode);

void BM_PredictOneConfig(benchmark::State& state) {
  const auto& models = ep_models();
  const hec::ConfigEvaluator eval(models.arm, models.amd);
  const hec::ClusterConfig cfg{hec::NodeConfig{8, 4, 1.4},
                               hec::NodeConfig{4, 6, 2.1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(cfg, 50e6));
  }
}
BENCHMARK(BM_PredictOneConfig);

void BM_EvaluateFullSpace(benchmark::State& state) {
  const auto& models = ep_models();
  const auto configs =
      enumerate_configs(models.arm_spec, models.amd_spec,
                        hec::EnumerationLimits{10, 10});
  const hec::ConfigEvaluator eval(models.arm, models.amd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate_all(configs, 50e6));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_EvaluateFullSpace)->Unit(benchmark::kMillisecond);

void BM_ParetoFrontier(benchmark::State& state) {
  hec::Rng rng(11);
  std::vector<hec::TimeEnergyPoint> points;
  const auto n = static_cast<std::size_t>(state.range(0));
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.01, 1.0), rng.uniform(1.0, 300.0), i});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hec::pareto_frontier(points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParetoFrontier)->Arg(1000)->Arg(36380)->Arg(500000)
    ->Unit(benchmark::kMillisecond);

void BM_MatchSplit(benchmark::State& state) {
  const auto& models = ep_models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        match_split(models.arm, hec::NodeConfig{8, 4, 1.4}, models.amd,
                    hec::NodeConfig{4, 6, 2.1}, 50e6));
  }
}
BENCHMARK(BM_MatchSplit);

void BM_CharacterizeWorkload(benchmark::State& state) {
  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::PhaseDemand demand = hec::workload_ep().demand_arm;
  const hec::CharacterizeOptions opts =
      hec::bench::bench_characterize_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterize_workload(arm, demand, opts));
  }
}
BENCHMARK(BM_CharacterizeWorkload)->Unit(benchmark::kMillisecond);

/// Seconds for `iters` evaluator calls, minimum over `trials` repeats
/// (min-of-N discards scheduler noise, the standard microbench estimator).
double eval_loop_seconds(const hec::ConfigEvaluator& eval,
                         const hec::ClusterConfig& cfg, int iters,
                         int trials) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(eval.evaluate(cfg, 50e6));
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

/// Compares the evaluator hot loop with instrumentation enabled against
/// the runtime kill switch (obs::set_enabled(false)) — the in-binary
/// stand-in for an HEC_OBS_DISABLE build, which cannot coexist with the
/// instrumented code in one executable. Under HEC_OBS_DISABLE both
/// variants compile to the same uninstrumented loop and the check is
/// trivially satisfied.
int obs_overhead_check() {
  const auto& models = ep_models();
  const hec::ConfigEvaluator eval(models.arm, models.amd);
  const hec::ClusterConfig cfg{hec::NodeConfig{8, 4, 1.4},
                               hec::NodeConfig{4, 6, 2.1}};
  constexpr int kIters = 20000;
  constexpr int kTrials = 7;

  eval_loop_seconds(eval, cfg, kIters, 1);  // warm up caches + registry

  hec::obs::set_enabled(false);
  const double off_s = eval_loop_seconds(eval, cfg, kIters, kTrials);
  hec::obs::set_enabled(true);
  const double on_s = eval_loop_seconds(eval, cfg, kIters, kTrials);

  const double overhead_pct = (on_s / off_s - 1.0) * 100.0;
  std::printf(
      "[obs-overhead] evaluator loop: disabled %.3f ms, instrumented "
      "%.3f ms, overhead %+.2f%% (budget 5%%)\n",
      off_s * 1e3, on_s * 1e3, overhead_pct);
  hec::bench::telemetry::report_metric(
      "micro_hotpaths.obs_overhead_pct", overhead_pct,
      hec::bench::telemetry::MetricKind::kPerf, "%");
  // The budget is 5%, but a loaded CI box wobbles a measurement that
  // normally sits at 2-3% right across it; the in-binary gate fails only
  // at twice the budget (a structural regression) and the telemetry
  // baseline tracks the precise value.
  if (overhead_pct >= 10.0) {
    std::fprintf(stderr,
                 "[obs-overhead] FAIL: instrumentation overhead %.2f%% "
                 "exceeds twice the 5%% budget\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}

/// Bounds what `--profile-out` adds to a real run: sweep the 1M-config
/// EP space (53x53 limits => 1,013,254 points), then measure folding the
/// tracer's spans into a ProfileTree and serialising the hec-profile/v1
/// document — exactly the work the CLI does at exit when the flag is
/// given. The budget is 5% of sweep wall; as with the obs check, the
/// in-binary gate only fails at twice that (a structural regression) and
/// the telemetry baseline tracks the precise value. Under
/// HEC_OBS_DISABLE the tracer holds no spans and the fold is trivially
/// cheap, which is the honest answer: the flag costs nothing there.
int profile_overhead_check() {
  const auto& models = ep_models();
  const hec::EnumerationLimits limits{53, 53};

  hec::obs::tracer().clear();
  const auto t0 = std::chrono::steady_clock::now();
  const hec::SweepResult sweep =
      hec::sweep_frontier(models.arm, models.amd, limits, 50e6);
  const std::chrono::duration<double> sweep_dt =
      std::chrono::steady_clock::now() - t0;
  benchmark::DoNotOptimize(sweep.frontier.data());

  // Min-of-N on the fold+serialise side only: it is microseconds-cheap,
  // so repeating it is free, while re-running the 1M-point sweep is not.
  constexpr int kTrials = 5;
  double profile_s = 1e300;
  std::size_t json_bytes = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto p0 = std::chrono::steady_clock::now();
    hec::obs::ProfileTree tree;
    tree.add(hec::obs::tracer());
    std::ostringstream json;
    tree.write_json(json);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - p0;
    profile_s = std::min(profile_s, dt.count());
    json_bytes = json.str().size();
  }

  const double overhead_pct = 100.0 * profile_s / sweep_dt.count();
  std::printf(
      "[profile-overhead] sweep %zu configs in %.3f s; profile fold + "
      "serialise %.3f ms (%zu bytes), overhead %.3f%% (budget 5%%)\n",
      sweep.stats.configs, sweep_dt.count(), profile_s * 1e3, json_bytes,
      overhead_pct);
  hec::bench::telemetry::report_metric(
      "micro_hotpaths.profile_overhead_pct", overhead_pct,
      hec::bench::telemetry::MetricKind::kPerf, "%");
  if (overhead_pct >= 10.0) {
    std::fprintf(stderr,
                 "[profile-overhead] FAIL: --profile-out overhead %.3f%% "
                 "exceeds twice the 5%% budget\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  HEC_BENCH_EXPERIMENT("micro_hotpaths", kMicro, "hot-path microbenchmarks");
  int rc = obs_overhead_check();
  rc |= profile_overhead_check();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
