// google-benchmark microbenchmarks of the library's hot paths: node
// simulation, configuration-space evaluation, Pareto-frontier
// derivation and the matched split. These bound the cost of the
// full-space analyses (36,380+ evaluations per figure).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "hec/sim/node_sim.h"
#include "hec/util/rng.h"

namespace {

const hec::bench::WorkloadModels& ep_models() {
  static const hec::bench::WorkloadModels models =
      hec::bench::build_models(hec::workload_ep());
  return models;
}

void BM_SimulateNode(benchmark::State& state) {
  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::PhaseDemand demand = hec::workload_ep().demand_arm;
  hec::RunConfig cfg;
  cfg.cores_used = arm.cores;
  cfg.f_ghz = arm.pstates.max_ghz();
  cfg.work_units = 10000.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(simulate_node(arm, demand, cfg));
  }
}
BENCHMARK(BM_SimulateNode);

void BM_PredictOneConfig(benchmark::State& state) {
  const auto& models = ep_models();
  const hec::ConfigEvaluator eval(models.arm, models.amd);
  const hec::ClusterConfig cfg{hec::NodeConfig{8, 4, 1.4},
                               hec::NodeConfig{4, 6, 2.1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(cfg, 50e6));
  }
}
BENCHMARK(BM_PredictOneConfig);

void BM_EvaluateFullSpace(benchmark::State& state) {
  const auto& models = ep_models();
  const auto configs =
      enumerate_configs(models.arm_spec, models.amd_spec,
                        hec::EnumerationLimits{10, 10});
  const hec::ConfigEvaluator eval(models.arm, models.amd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate_all(configs, 50e6));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_EvaluateFullSpace)->Unit(benchmark::kMillisecond);

void BM_ParetoFrontier(benchmark::State& state) {
  hec::Rng rng(11);
  std::vector<hec::TimeEnergyPoint> points;
  const auto n = static_cast<std::size_t>(state.range(0));
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.01, 1.0), rng.uniform(1.0, 300.0), i});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hec::pareto_frontier(points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParetoFrontier)->Arg(1000)->Arg(36380)->Arg(500000)
    ->Unit(benchmark::kMillisecond);

void BM_MatchSplit(benchmark::State& state) {
  const auto& models = ep_models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        match_split(models.arm, hec::NodeConfig{8, 4, 1.4}, models.amd,
                    hec::NodeConfig{4, 6, 2.1}, 50e6));
  }
}
BENCHMARK(BM_MatchSplit);

void BM_CharacterizeWorkload(benchmark::State& state) {
  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::PhaseDemand demand = hec::workload_ep().demand_arm;
  const hec::CharacterizeOptions opts =
      hec::bench::bench_characterize_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterize_workload(arm, demand, opts));
  }
}
BENCHMARK(BM_CharacterizeWorkload)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
