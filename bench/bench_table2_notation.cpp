// Table 2: model notations. The paper's notation table maps one-to-one
// onto this library's identifiers; printing the mapping makes the
// correspondence auditable (and completes literal coverage of every
// table in the paper). '*' marks model-predicted quantities, '+'
// measured ones, exactly as in the paper.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_common.h"

int main() {
  HEC_BENCH_EXPERIMENT("table2_notation", kTable, "Table 2");
  // Synthetic-slowdown hook for the telemetry regression gate: the
  // benchreport gate test and the CI canary set this to prove that an
  // injected slowdown is flagged against bench/baseline.json.
  if (const char* ms = std::getenv("HEC_BENCH_SYNTHETIC_SLEEP_MS")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(std::atol(ms)));
  }
  using hec::TablePrinter;
  hec::bench::banner("Model notations -> library identifiers", "Table 2");

  TablePrinter table({"Symbol", "Description", "Library identifier"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kLeft,
                       hec::Align::kLeft});
  table.add_row({"P", "program", "Workload"});
  table.add_row({"Ps", "representative subset of P",
                 "PhaseDemand / WorkloadTrace phase"});
  table.add_row({"W", "total work units of P",
                 "work_units (predict/evaluate argument)"});
  table.add_row({"n", "number of nodes", "NodeConfig::nodes"});
  table.add_row({"c", "cores per node", "NodeConfig::cores"});
  table.add_row({"f", "clock frequency", "NodeConfig::f_ghz"});
  table.add_row({"T *", "total execution time", "Prediction::t_s"});
  table.add_row({"T_CPU *", "CPU response time", "Prediction::t_cpu_s"});
  table.add_row({"T_I/O *", "I/O response time", "Prediction::t_io_s"});
  table.add_row({"T_core *", "core response time", "Prediction::t_core_s"});
  table.add_row({"T_mem *", "memory response time", "Prediction::t_mem_s"});
  table.add_row({"I_P *", "total instructions for P",
                 "work_units x WorkloadInputs::inst_per_unit"});
  table.add_row({"I_Ps +", "instructions for Ps",
                 "WorkloadInputs::inst_per_unit (measured)"});
  table.add_row({"U_CPU +", "CPU utilisation per node",
                 "WorkloadInputs::ucpu / RunResult::ucpu()"});
  table.add_row({"c_act +", "active cores per node",
                 "cact (derived in NodeTypeModel::predict)"});
  table.add_row({"I_core *", "instructions per core",
                 "i_core (Eq. 6, in predict)"});
  table.add_row({"WPI +", "work cycles per instruction",
                 "WorkloadInputs::wpi / CounterSet::wpi()"});
  table.add_row({"SPI_mem +", "memory stall CPI",
                 "WorkloadInputs::spi_mem(f, c) / CounterSet::spi_mem()"});
  table.add_row({"SPI_core +", "non-memory stall CPI",
                 "WorkloadInputs::spi_core / CounterSet::spi_core()"});
  table.add_row({"T_I/OT *", "I/O transfers time",
                 "RunResult::io_busy_s / transfer_s in predict"});
  table.add_row({"lambda_I/O +", "I/O request inter-arrival rate",
                 "1 / PhaseDemand::io_interarrival_s"});
  table.add_row({"T_act *", "CPU work-cycle time", "t_act (Eq. 16)"});
  table.add_row({"T_stall *", "CPU stall-cycle time", "t_stall (Eq. 17)"});
  table.add_row({"P_CPU,act +", "power of CPU work cycles",
                 "PowerParams::core_active_w / core_active_at(f)"});
  table.add_row({"P_CPU,stall +", "power of CPU stall cycles",
                 "PowerParams::core_stall_w / core_stall_at(f)"});
  table.add_row({"P_mem +", "power of memory active",
                 "PowerParams::mem_active_w"});
  table.add_row({"P_I/O +", "power of I/O", "PowerParams::io_active_w"});
  table.add_row({"P_idle +", "system idle power", "PowerParams::idle_w"});
  table.add_row({"E *", "energy consumed by P",
                 "Prediction::energy_j() / EnergyBreakdown::total_j()"});
  table.add_row({"E_CPU *", "CPU energy", "EnergyBreakdown::core_j"});
  table.add_row({"E_mem *", "memory energy", "EnergyBreakdown::mem_j"});
  table.add_row({"E_I/O *", "I/O energy", "EnergyBreakdown::io_j"});
  table.add_row({"E_idle *", "idle energy", "EnergyBreakdown::idle_j"});
  table.print(std::cout);
  std::cout << "\n(*) model-predicted, (+) measured — the paper's own "
               "marking. Every '+' quantity is produced only by the "
               "simulator substrate's counters/meter, never assumed.\n";
  return 0;
}
