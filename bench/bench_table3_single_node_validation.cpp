// Table 3: single-node validation. For every workload and both node
// types, the analytical model (characterised from baseline runs) is
// validated against independent measurement runs across all
// (cores, frequency) combinations. The paper reports mean errors of
// 1-10% with standard deviations up to 9%; errors must stay below ~15%.
#include <iostream>

#include "bench_common.h"
#include "hec/sim/node_sim.h"
#include "hec/stats/summary.h"

namespace {

struct ErrorStats {
  double time_mean, time_std, energy_mean, energy_std;
};

ErrorStats validate(const hec::NodeSpec& spec, const hec::Workload& workload,
                    const hec::NodeTypeModel& model, double units,
                    std::uint64_t seed_base) {
  hec::RelativeError time_err, energy_err;
  std::uint64_t seed = seed_base;
  for (int c = 1; c <= spec.cores; ++c) {
    for (double f : spec.pstates.frequencies_ghz()) {
      const hec::Prediction pred =
          model.predict(units, hec::NodeConfig{1, c, f});
      hec::RunConfig rc;
      rc.cores_used = c;
      rc.f_ghz = f;
      rc.work_units = units;
      rc.seed = seed++;
      const hec::RunResult meas =
          simulate_node(spec, workload.demand_for(spec.isa), rc);
      time_err.add(pred.t_s, meas.wall_s);
      energy_err.add(pred.energy_j(), meas.energy.total_j());
    }
  }
  return {time_err.mean_pct(), time_err.stddev_pct(), energy_err.mean_pct(),
          energy_err.stddev_pct()};
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("table3_single_node_validation", kTable, "Table 3");
  using hec::TablePrinter;
  hec::bench::banner("Single-node validation", "Table 3");

  TablePrinter table({"Domain", "Program", "Bottleneck",
                      "AMD T err[%]", "AMD T sd", "ARM T err[%]", "ARM T sd",
                      "AMD E err[%]", "AMD E sd", "ARM E err[%]",
                      "ARM E sd"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kLeft,
                       hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  double worst = 0.0;
  std::uint64_t seed_base = 50000;
  for (const hec::Workload& w : hec::all_workloads()) {
    const hec::bench::WorkloadModels models = hec::bench::build_models(w);
    const ErrorStats amd = validate(models.amd_spec, w, models.amd,
                                    w.validation_units, seed_base += 100);
    const ErrorStats arm = validate(models.arm_spec, w, models.arm,
                                    w.validation_units, seed_base += 100);
    for (double e : {amd.time_mean, arm.time_mean, amd.energy_mean,
                     arm.energy_mean}) {
      worst = std::max(worst, e);
    }
    using hec::bench::telemetry::MetricKind;
    using hec::bench::telemetry::report_metric;
    const std::string key = "table3." + std::string(w.name);
    report_metric(key + ".amd.time_mape_pct", amd.time_mean,
                  MetricKind::kAccuracy, "%");
    report_metric(key + ".arm.time_mape_pct", arm.time_mean,
                  MetricKind::kAccuracy, "%");
    report_metric(key + ".amd.energy_mape_pct", amd.energy_mean,
                  MetricKind::kAccuracy, "%");
    report_metric(key + ".arm.energy_mape_pct", arm.energy_mean,
                  MetricKind::kAccuracy, "%");
    table.add_row({w.domain, w.name, to_string(w.bottleneck),
                   TablePrinter::num(amd.time_mean, 1),
                   TablePrinter::num(amd.time_std, 1),
                   TablePrinter::num(arm.time_mean, 1),
                   TablePrinter::num(arm.time_std, 1),
                   TablePrinter::num(amd.energy_mean, 1),
                   TablePrinter::num(amd.energy_std, 1),
                   TablePrinter::num(arm.energy_mean, 1),
                   TablePrinter::num(arm.energy_std, 1)});
  }
  hec::bench::telemetry::report_metric(
      "table3.worst_mape_pct", worst,
      hec::bench::telemetry::MetricKind::kAccuracy, "%");
  table.print(std::cout);
  std::cout << "\nWorst mean error: " << TablePrinter::num(worst, 1)
            << "% (paper bound: <15%) -> "
            << (worst < 15.0 ? "REPRODUCED" : "NOT reproduced") << "\n";
  return 0;
}
