// Ablation: energy proportionality of the high-performance node. The
// paper's heterogeneity advantage is driven by the AMD node's 45 W idle
// floor (75% of peak). Related work (KnightShift [42]) attacks the same
// waste by making servers energy-proportional instead. This bench scales
// the AMD idle draw down and recomputes the EP Pareto analysis: as the
// high-performance node approaches proportionality, the sweet region's
// savings shrink — quantifying when mix-and-match stops paying.
#include <iostream>

#include "bench_common.h"

namespace {

/// Returns the AMD spec with its idle components scaled so the node
/// idles at `target_idle_w` (active increments untouched).
hec::NodeSpec amd_with_idle(double target_idle_w) {
  hec::NodeSpec amd = hec::amd_opteron_k10();
  const double factor = target_idle_w / amd.idle_node_w();
  amd.rest_of_system_w *= factor;
  amd.core_idle_w *= factor;
  // Keep device *increments* intact while scaling the idle floors.
  const double mem_inc = amd.memory_power.active_w - amd.memory_power.idle_w;
  const double io_inc = amd.io_power.active_w - amd.io_power.idle_w;
  amd.memory_power.idle_w *= factor;
  amd.memory_power.active_w = amd.memory_power.idle_w + mem_inc;
  amd.io_power.idle_w *= factor;
  amd.io_power.active_w = amd.io_power.idle_w + io_inc;
  // Core active/stall curves keep their dynamic terms but their base
  // (leakage) term scales with the idle reduction.
  amd.core_active.base_w *= factor;
  amd.core_stall.base_w *= factor;
  return amd;
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("ablation_idle_power", kAblation, "idle-power model");
  using hec::TablePrinter;
  hec::bench::banner("Idle-power ablation: energy-proportional AMD",
                     "Section IV's driving assumption");

  const hec::Workload ep = hec::workload_ep();
  const hec::CharacterizeOptions opts =
      hec::bench::bench_characterize_options();
  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::NodeTypeModel arm_model = build_node_model(arm, ep, opts);
  const double w = ep.analysis_units;

  TablePrinter table({"AMD idle [W]", "AMD-only best [J]",
                      "ARM-only best [J]", "Frontier best [J]",
                      "Het saving vs AMD-only"});
  for (double idle_w : {45.0, 30.0, 15.0, 5.0}) {
    const hec::NodeSpec amd = amd_with_idle(idle_w);
    const hec::NodeTypeModel amd_model = build_node_model(amd, ep, opts);
    const auto configs =
        enumerate_configs(arm, amd, hec::EnumerationLimits{10, 10});
    const hec::ConfigEvaluator eval(arm_model, amd_model);
    const auto outcomes = eval.evaluate_all(configs, w);

    double amd_best = 1e300, arm_best = 1e300, all_best = 1e300;
    for (const auto& o : outcomes) {
      all_best = std::min(all_best, o.energy_j);
      if (!o.config.uses_arm()) amd_best = std::min(amd_best, o.energy_j);
      if (!o.config.uses_amd()) arm_best = std::min(arm_best, o.energy_j);
    }
    table.add_row({TablePrinter::num(idle_w, 0),
                   TablePrinter::num(amd_best, 2),
                   TablePrinter::num(arm_best, 2),
                   TablePrinter::num(all_best, 2),
                   TablePrinter::num((1.0 - all_best / amd_best) * 100.0,
                                     1) +
                       "%"});
  }
  table.print(std::cout);
  std::cout << "\nThe heterogeneity dividend is a function of the "
               "high-performance node's idle waste: with a 5 W-idle AMD "
               "the gap closes, confirming that mix-and-match and "
               "energy-proportional hardware attack the same inefficiency "
               "from opposite ends.\n";
  return 0;
}
