// Micro-benchmark: sweep-engine scaling on a ≥1M-configuration space.
//
// Runs the memoized + streaming sweep, its crash-safe resumable twin
// (journalling a checkpoint at every epoch boundary), and the naive
// materialize-everything reference over the same EP configuration space;
// reports wall time, peak-RSS deltas, checkpoint overhead and exact
// frontier identity. The fast path runs FIRST: ru_maxrss is monotone, so
// ordering fast-before-naive attributes the naive path's large
// allocations to its own delta instead of hiding them under an earlier
// high-water mark.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "hec/resilience/resumable.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("micro_sweep", kMicro, "sweep-engine scaling");
  using namespace hec;
  using namespace hec::bench;

  // 53+53 nodes: 1060 ARM x 954 AMD deployments = 1,011,240 heterogeneous
  // mixes plus 2,014 homogeneous points — a >1M-configuration space.
  const EnumerationLimits limits{53, 53};
  const double work_units = 50e6;
  const WorkloadModels models = build_models(workload_ep());
  banner("micro sweep: memoized/streaming vs naive reference",
         "sweep-engine scaling");

  const double rss_start_mib = peak_rss_mib();

  const auto fast_start = std::chrono::steady_clock::now();
  const SweepResult fast =
      sweep_frontier(models.arm, models.amd, limits, work_units);
  const double fast_wall_s = seconds_since(fast_start);
  const double rss_after_fast_mib = peak_rss_mib();

  // Resumable twin at a 20 ms commit cadence — 50x more aggressive than
  // the 1 s production default, so a handful of durable (fsynced)
  // checkpoints land inside this sub-100ms sweep and the overhead metric
  // prices real commits, not just the epoch machinery.
  hec::resilience::ResilienceOptions journaled;
  journaled.journal_path = "bench_micro_sweep_journal.jsonl";
  journaled.checkpoint_interval_s = 0.02;
  const auto resumable_start = std::chrono::steady_clock::now();
  const hec::resilience::ResumableSweepResult resumable =
      hec::resilience::resumable_sweep_frontier(models.arm, models.amd,
                                                limits, work_units, {},
                                                journaled);
  const double resumable_wall_s = seconds_since(resumable_start);

  const auto naive_start = std::chrono::steady_clock::now();
  const SweepResult naive =
      sweep_frontier_reference(models.arm, models.amd, limits, work_units);
  const double naive_wall_s = seconds_since(naive_start);
  const double rss_after_naive_mib = peak_rss_mib();

  // Exact bit-identity: same frontier size, and every point's time,
  // energy and enumeration tag match to the last bit.
  bool identical = fast.frontier.size() == naive.frontier.size();
  for (std::size_t i = 0; identical && i < fast.frontier.size(); ++i) {
    identical = fast.frontier[i].t_s == naive.frontier[i].t_s &&
                fast.frontier[i].energy_j == naive.frontier[i].energy_j &&
                fast.frontier[i].tag == naive.frontier[i].tag;
  }
  bool resumable_identical =
      resumable.complete &&
      resumable.frontier.size() == fast.frontier.size();
  for (std::size_t i = 0; resumable_identical && i < fast.frontier.size();
       ++i) {
    resumable_identical = resumable.frontier[i] == fast.frontier[i];
  }

  // RSS deltas from the monotone high-water mark. The fast path's
  // footprint is block-sized and can vanish under startup noise, so floor
  // it at 1 MiB to keep the reduction ratio finite and honest.
  const double fast_rss_mib =
      std::max(rss_after_fast_mib - rss_start_mib, 1.0);
  const double naive_rss_mib =
      std::max(rss_after_naive_mib - rss_after_fast_mib, 1.0);
  const double speedup = naive_wall_s / fast_wall_s;
  const double rss_reduction = naive_rss_mib / fast_rss_mib;

  std::printf("configs          %zu (%zu blocks, %zu worker(s))\n",
              fast.stats.configs, fast.stats.blocks, fast.stats.workers);
  std::printf("frontier points  %zu\n", fast.frontier.size());
  const double checkpoint_overhead_frac =
      resumable_wall_s / fast_wall_s - 1.0;
  std::printf("fast             %.3f s, +%.1f MiB peak RSS\n", fast_wall_s,
              fast_rss_mib);
  std::printf("resumable        %.3f s, %zu checkpoints (%+.1f%% wall)\n",
              resumable_wall_s, resumable.checkpoints,
              100.0 * checkpoint_overhead_frac);
  std::printf("naive            %.3f s, +%.1f MiB peak RSS\n", naive_wall_s,
              naive_rss_mib);
  std::printf("speedup          %.1fx\n", speedup);
  std::printf("rss reduction    %.1fx\n", rss_reduction);
  std::printf("frontier match   %s\n", identical ? "exact" : "MISMATCH");
  std::printf("resumable match  %s\n",
              resumable_identical ? "exact" : "MISMATCH");

  namespace tel = hec::bench::telemetry;
  tel::report_metric("micro_sweep.configs",
                     static_cast<double>(fast.stats.configs),
                     tel::MetricKind::kCount, "configs");
  tel::report_metric("micro_sweep.frontier_identity", identical ? 1.0 : 0.0,
                     tel::MetricKind::kAccuracy, "fraction");
  tel::report_metric("micro_sweep.speedup_x", speedup,
                     tel::MetricKind::kPerf, "x");
  tel::report_metric("micro_sweep.rss_reduction_x", rss_reduction,
                     tel::MetricKind::kPerf, "x");
  tel::report_metric("micro_sweep.fast_wall_s", fast_wall_s,
                     tel::MetricKind::kPerf, "s");
  tel::report_metric("micro_sweep.naive_wall_s", naive_wall_s,
                     tel::MetricKind::kPerf, "s");
  tel::report_metric("micro_sweep.resumable_identity",
                     resumable_identical ? 1.0 : 0.0,
                     tel::MetricKind::kAccuracy, "fraction");
  tel::report_metric("micro_sweep.checkpoint_overhead_frac",
                     checkpoint_overhead_frac, tel::MetricKind::kPerf,
                     "fraction");
  tel::report_metric("micro_sweep.checkpoints",
                     static_cast<double>(resumable.checkpoints),
                     tel::MetricKind::kCount, "commits");

  if (!identical || !resumable_identical) {
    std::fprintf(stderr, "FAIL: frontiers differ\n");
    return 1;
  }
  // The acceptance ceiling is 5%; a single loaded-machine run can wobble,
  // so the in-binary gate sits at 3x that and the telemetry baseline
  // tracks the precise value.
  if (checkpoint_overhead_frac > 0.15) {
    std::fprintf(stderr, "FAIL: checkpoint overhead %.1f%% (ceiling 15%%)\n",
                 100.0 * checkpoint_overhead_frac);
    return 1;
  }
  // Soft floors well under the expected 5x/10x: catch structural
  // regressions without flaking on loaded CI machines. The telemetry
  // baseline gates the precise values.
  if (speedup < 2.0 || rss_reduction < 3.0) {
    std::fprintf(stderr, "FAIL: speedup %.2fx (floor 2x), rss %.2fx (floor 3x)\n",
                 speedup, rss_reduction);
    return 1;
  }
  return 0;
}
