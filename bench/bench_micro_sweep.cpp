// Micro-benchmark: sweep-engine scaling on a ≥1M-configuration space.
//
// Runs four engines over the same EP configuration space and reports
// wall time, peak-RSS deltas, checkpoint overhead and exact frontier
// identity:
//   fast      — bound-and-prune + SoA/SIMD kernel (the default engine)
//   legacy    — the same streaming reduction with pruning and the SIMD
//               kernel disabled (the pre-kernel engine, for the
//               engine_speedup_x gate)
//   resumable — crash-safe journaled twin of the default engine
//   naive     — materialize-everything reference
// The fast path runs FIRST: ru_maxrss is monotone, so ordering
// fast-before-naive attributes the naive path's large allocations to its
// own delta instead of hiding them under an earlier high-water mark.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "hec/resilience/resumable.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("micro_sweep", kMicro, "sweep-engine scaling");
  using namespace hec;
  using namespace hec::bench;

  // 53+53 nodes: 1060 ARM x 954 AMD deployments = 1,011,240 heterogeneous
  // mixes plus 2,014 homogeneous points — a >1M-configuration space.
  const EnumerationLimits limits{53, 53};
  const double work_units = 50e6;
  const WorkloadModels models = build_models(workload_ep());
  banner("micro sweep: bound-and-prune/SIMD vs legacy vs naive",
         "sweep-engine scaling");

  const double rss_start_mib = peak_rss_mib();

  const auto fast_start = std::chrono::steady_clock::now();
  const SweepResult fast =
      sweep_frontier(models.arm, models.amd, limits, work_units);
  const double fast_wall_s = seconds_since(fast_start);
  const double rss_after_fast_mib = peak_rss_mib();

  // The pre-kernel engine: same streaming reduction, every config
  // evaluated through the scalar memoized path. This is what the default
  // engine replaced, so legacy/fast is the engine speedup the kernel
  // actually delivers.
  SweepOptions legacy_opts;
  legacy_opts.prune = false;
  legacy_opts.simd = false;
  const auto legacy_start = std::chrono::steady_clock::now();
  const SweepResult legacy =
      sweep_frontier(models.arm, models.amd, limits, work_units, legacy_opts);
  const double legacy_wall_s = seconds_since(legacy_start);

  // Resumable twin, journaled with a durable (fsynced) commit at EVERY
  // epoch boundary — the most aggressive cadence the engine supports,
  // and a deterministic commit count (the epoch structure depends only
  // on the space, never on machine speed, so the checkpoints metric
  // gates as an exact count). Its overhead baseline is the SAME engine
  // without a journal (the resumable path cannot seed itself with
  // incumbents — a partial frontier must cover exactly the visited
  // prefix — so comparing it against the seeded fast path would price
  // the missing seed, not the journal).
  const auto unjournaled_start = std::chrono::steady_clock::now();
  const hec::resilience::ResumableSweepResult unjournaled =
      hec::resilience::resumable_sweep_frontier(models.arm, models.amd,
                                                limits, work_units, {}, {});
  const double unjournaled_wall_s = seconds_since(unjournaled_start);

  hec::resilience::ResilienceOptions journaled_opts;
  journaled_opts.journal_path = "bench_micro_sweep_journal.jsonl";
  journaled_opts.checkpoint_interval_s = 0.0;
  const auto resumable_start = std::chrono::steady_clock::now();
  const hec::resilience::ResumableSweepResult resumable =
      hec::resilience::resumable_sweep_frontier(models.arm, models.amd,
                                                limits, work_units, {},
                                                journaled_opts);
  const double resumable_wall_s = seconds_since(resumable_start);

  const auto naive_start = std::chrono::steady_clock::now();
  const SweepResult naive =
      sweep_frontier_reference(models.arm, models.amd, limits, work_units);
  const double naive_wall_s = seconds_since(naive_start);
  const double rss_after_naive_mib = peak_rss_mib();

  // Exact bit-identity: same frontier size, and every point's time,
  // energy and enumeration tag match to the last bit.
  const auto matches = [&](const std::vector<TimeEnergyPoint>& frontier) {
    bool same = frontier.size() == naive.frontier.size();
    for (std::size_t i = 0; same && i < frontier.size(); ++i) {
      same = frontier[i].t_s == naive.frontier[i].t_s &&
             frontier[i].energy_j == naive.frontier[i].energy_j &&
             frontier[i].tag == naive.frontier[i].tag;
    }
    return same;
  };
  const bool identical = matches(fast.frontier);
  const bool legacy_identical = matches(legacy.frontier);
  const bool resumable_identical =
      resumable.complete && unjournaled.complete &&
      matches(resumable.frontier) && matches(unjournaled.frontier);

  // RSS deltas from the monotone high-water mark. The fast path's
  // footprint is block-sized and can vanish under startup noise, so floor
  // it at 1 MiB to keep the reduction ratio finite and honest.
  const double fast_rss_mib =
      std::max(rss_after_fast_mib - rss_start_mib, 1.0);
  const double naive_rss_mib =
      std::max(rss_after_naive_mib - rss_after_fast_mib, 1.0);
  const double speedup = naive_wall_s / fast_wall_s;
  const double engine_speedup = legacy_wall_s / fast_wall_s;
  const double rss_reduction = naive_rss_mib / fast_rss_mib;
  const double pruned_frac =
      fast.stats.configs > 0
          ? static_cast<double>(fast.stats.pruned) /
                static_cast<double>(fast.stats.configs)
          : 0.0;
  const double configs_per_s =
      fast_wall_s > 0.0 ? static_cast<double>(fast.stats.configs) /
                              fast_wall_s
                        : 0.0;
  const double checkpoint_overhead_frac =
      resumable_wall_s / unjournaled_wall_s - 1.0;
  const double checkpoint_cost_ms =
      resumable.checkpoints > 0
          ? 1e3 * (resumable_wall_s - unjournaled_wall_s) /
                static_cast<double>(resumable.checkpoints)
          : 0.0;

  std::printf("configs          %zu (%zu blocks, %zu worker(s))\n",
              fast.stats.configs, fast.stats.blocks, fast.stats.workers);
  std::printf("frontier points  %zu\n", fast.frontier.size());
  std::printf("fast             %.3f s, +%.1f MiB peak RSS, "
              "%zu evaluated + %zu pruned (%.1f%%, %zu chunks)\n",
              fast_wall_s, fast_rss_mib, fast.stats.evaluated,
              fast.stats.pruned, 100.0 * pruned_frac,
              fast.stats.blocks_pruned);
  std::printf("legacy           %.3f s (engine speedup %.1fx)\n",
              legacy_wall_s, engine_speedup);
  std::printf("resumable        %.3f s, %zu checkpoints at %.2f ms each "
              "(%+.1f%% wall over unjournaled %.3f s)\n",
              resumable_wall_s, resumable.checkpoints, checkpoint_cost_ms,
              100.0 * checkpoint_overhead_frac, unjournaled_wall_s);
  std::printf("naive            %.3f s, +%.1f MiB peak RSS\n", naive_wall_s,
              naive_rss_mib);
  std::printf("speedup          %.1fx vs naive\n", speedup);
  std::printf("throughput       %.1f Mconfigs/s\n", configs_per_s / 1e6);
  std::printf("rss reduction    %.1fx\n", rss_reduction);
  std::printf("frontier match   %s\n", identical ? "exact" : "MISMATCH");
  std::printf("legacy match     %s\n",
              legacy_identical ? "exact" : "MISMATCH");
  std::printf("resumable match  %s\n",
              resumable_identical ? "exact" : "MISMATCH");

  namespace tel = hec::bench::telemetry;
  tel::report_metric("micro_sweep.configs",
                     static_cast<double>(fast.stats.configs),
                     tel::MetricKind::kCount, "configs");
  tel::report_metric("micro_sweep.frontier_identity", identical ? 1.0 : 0.0,
                     tel::MetricKind::kAccuracy, "fraction");
  tel::report_metric("micro_sweep.speedup_x", speedup,
                     tel::MetricKind::kPerf, "x");
  tel::report_metric("micro_sweep.engine_speedup_x", engine_speedup,
                     tel::MetricKind::kPerf, "x");
  tel::report_metric("micro_sweep.pruned_frac", pruned_frac,
                     tel::MetricKind::kPerf, "fraction");
  tel::report_metric("micro_sweep.configs_per_s", configs_per_s,
                     tel::MetricKind::kPerf, "configs/s");
  tel::report_metric("micro_sweep.rss_reduction_x", rss_reduction,
                     tel::MetricKind::kPerf, "x");
  tel::report_metric("micro_sweep.fast_wall_s", fast_wall_s,
                     tel::MetricKind::kPerf, "s");
  tel::report_metric("micro_sweep.legacy_wall_s", legacy_wall_s,
                     tel::MetricKind::kPerf, "s");
  tel::report_metric("micro_sweep.naive_wall_s", naive_wall_s,
                     tel::MetricKind::kPerf, "s");
  tel::report_metric("micro_sweep.resumable_identity",
                     resumable_identical ? 1.0 : 0.0,
                     tel::MetricKind::kAccuracy, "fraction");
  // Both checkpoint costs are fsync-bound, so their values track the CI
  // host's filesystem rather than this codebase — record them ungated;
  // the 10 ms in-binary ceiling below still fails structural
  // regressions.
  tel::report_metric("micro_sweep.checkpoint_overhead_frac",
                     checkpoint_overhead_frac, tel::MetricKind::kInfo,
                     "fraction");
  tel::report_metric("micro_sweep.checkpoint_cost_ms", checkpoint_cost_ms,
                     tel::MetricKind::kInfo, "ms");
  tel::report_metric("micro_sweep.checkpoints",
                     static_cast<double>(resumable.checkpoints),
                     tel::MetricKind::kCount, "commits");

  if (!identical || !legacy_identical || !resumable_identical) {
    std::fprintf(stderr, "FAIL: frontiers differ\n");
    return 1;
  }
  // The engine is now so fast that one fsync is comparable to the whole
  // sweep, so a fractional overhead ceiling would gate the filesystem,
  // not the journal. Gate the durable commit's unit cost instead: a
  // structural regression (double fsync, full-frontier rewrite per
  // epoch) multiplies it; machine-speed variance does not move it past
  // a generous 10 ms ceiling. The telemetry baseline tracks the precise
  // fraction and per-commit cost.
  if (checkpoint_cost_ms > 10.0) {
    std::fprintf(stderr,
                 "FAIL: checkpoint cost %.2f ms/commit (ceiling 10 ms)\n",
                 checkpoint_cost_ms);
    return 1;
  }
  // Soft floors well under the expected values (engine target is 5x, the
  // naive gap is larger still): catch structural regressions without
  // flaking on loaded CI machines. The telemetry baseline gates the
  // precise values.
  if (speedup < 2.0 || rss_reduction < 3.0) {
    std::fprintf(stderr,
                 "FAIL: speedup %.2fx (floor 2x), rss %.2fx (floor 3x)\n",
                 speedup, rss_reduction);
    return 1;
  }
  if (engine_speedup < 3.0) {
    std::fprintf(stderr, "FAIL: engine speedup %.2fx (floor 3x)\n",
                 engine_speedup);
    return 1;
  }
  return 0;
}
