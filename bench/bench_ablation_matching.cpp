// Ablation: the value of the mix-and-match split. Compares, on the
// cluster simulator, the matching scheduler against the equal-split and
// core-proportional heuristics (idle-tail energy wasted by unbalanced
// completion) and against the related-work threshold-switching baseline
// (which never mixes node types and therefore forfeits the sweet region).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "hec/cluster/cluster_sim.h"
#include "hec/cluster/schedulers.h"

int main() {
  HEC_BENCH_EXPERIMENT("ablation_matching", kAblation, "Sec. 3.2 matching");
  using hec::TablePrinter;
  hec::bench::banner("Scheduler ablation: matching vs static splits",
                     "Section I / Observation 1");

  TablePrinter table({"Workload", "Scheduler", "Time [ms]", "Energy [J]",
                      "Idle tail [J]", "vs matching"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kLeft,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight});

  for (const hec::Workload& w :
       {hec::workload_ep(), hec::workload_memcached()}) {
    const hec::bench::WorkloadModels models = hec::bench::build_models(w);
    const hec::ClusterConfig cfg{
        hec::NodeConfig{16, models.arm_spec.cores,
                        models.arm_spec.pstates.max_ghz()},
        hec::NodeConfig{4, models.amd_spec.cores,
                        models.amd_spec.pstates.max_ghz()}};
    const double units = w.analysis_units;

    const hec::MatchingScheduler matching(models.arm, models.amd);
    const hec::EqualSplitScheduler equal;
    const hec::CoreProportionalScheduler cores;

    double matching_energy = 0.0;
    std::uint64_t seed = 4242;
    for (const hec::Scheduler* sched :
         std::initializer_list<const hec::Scheduler*>{&matching, &equal,
                                                      &cores}) {
      const hec::SplitAssignment split = sched->assign(units, cfg);
      hec::ClusterRunOptions opts;
      opts.seed = seed++;
      const hec::ClusterRunResult r =
          simulate_cluster(models.arm_spec, models.amd_spec, w, cfg,
                           split.units_arm, split.units_amd, opts);
      if (sched == &matching) matching_energy = r.energy_j;
      table.add_row(
          {w.name, sched->name(), TablePrinter::num(r.t_s * 1e3, 1),
           TablePrinter::num(r.energy_j, 2),
           TablePrinter::num(r.idle_tail_j, 2),
           TablePrinter::num((r.energy_j / matching_energy - 1.0) * 100.0,
                             1) +
               "%"});
    }
  }
  table.print(std::cout);

  // Threshold switching forfeits the sweet region: across deadlines it
  // can only jump between the homogeneous poles.
  hec::bench::banner("Mix-and-match vs threshold switching",
                     "Section I (KnightShift-style baseline)");
  const hec::Workload ep = hec::workload_ep();
  const hec::bench::WorkloadModels models = hec::bench::build_models(ep);
  const auto outcomes =
      hec::bench::evaluate_space(models, 10, 10, ep.analysis_units);
  const hec::EnergyDeadlineCurve mix_curve(
      pareto_frontier(hec::bench::to_points(outcomes)));

  TablePrinter cmp({"Deadline [ms]", "Mix-and-match [J]",
                    "Threshold switch [J]", "Savings"});
  for (double d_ms : {60.0, 80.0, 100.0, 150.0, 250.0, 500.0}) {
    const double mix_e = mix_curve.min_energy_j(d_ms * 1e-3);
    const auto sw = threshold_switch_choice(outcomes, d_ms * 1e-3);
    std::string sw_cell = "-", savings = "-";
    if (sw && std::isfinite(mix_e)) {
      sw_cell = TablePrinter::num(sw->energy_j, 2);
      savings =
          TablePrinter::num((1.0 - mix_e / sw->energy_j) * 100.0, 1) + "%";
    }
    cmp.add_row({TablePrinter::num(d_ms, 0),
                 std::isfinite(mix_e) ? TablePrinter::num(mix_e, 2)
                                      : std::string("-"),
                 sw_cell, savings});
  }
  cmp.print(std::cout);
  std::cout << "\nThe switching baseline matches mix-and-match only where "
               "a homogeneous pole is itself Pareto-optimal; inside the "
               "sweet region the mix wins.\n";
  return 0;
}
