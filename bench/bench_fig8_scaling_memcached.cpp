// Fig. 8: increasing cluster size for memcached at the fixed 8:1 ratio
// ({8:1} ... {128:16}), including the paper's shared-cluster example
// (four jobs on one 64:8 cluster vs four 16:2 clusters).
#include <iostream>

#include "bench_common.h"

int main() {
  HEC_BENCH_EXPERIMENT("fig8_scaling_memcached", kFigure, "Fig. 8");
  hec::bench::scaling_experiment(hec::workload_memcached(),
                                 hec::workload_memcached().analysis_units,
                                 "fig8_scaling_memcached", "Fig. 8");

  // The paper's consolidation example: a 4x larger cluster meeting a 4x
  // tighter per-job deadline costs about the same energy per job.
  const hec::bench::WorkloadModels models =
      hec::bench::build_models(hec::workload_memcached());
  const double w = hec::workload_memcached().analysis_units;
  const auto small = hec::bench::evaluate_space(models, 16, 2, w);
  const auto large = hec::bench::evaluate_space(models, 64, 8, w);
  const hec::EnergyDeadlineCurve small_curve(
      pareto_frontier(hec::bench::to_points(small)));
  const hec::EnergyDeadlineCurve large_curve(
      pareto_frontier(hec::bench::to_points(large)));
  const double relaxed_ms = 165.0, tight_ms = relaxed_ms / 4.0;
  std::cout << "\nConsolidation example (Section IV-D):\n"
            << "  16:2 cluster, deadline " << relaxed_ms << " ms -> "
            << hec::TablePrinter::num(
                   small_curve.min_energy_j(relaxed_ms * 1e-3), 2)
            << " J/job\n"
            << "  64:8 cluster, deadline " << tight_ms << " ms -> "
            << hec::TablePrinter::num(
                   large_curve.min_energy_j(tight_ms * 1e-3), 2)
            << " J/job (paper: 19.6 vs 19.8 J -- consolidated wins)\n";
  return 0;
}
