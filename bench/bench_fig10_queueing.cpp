// Fig. 10: effect of job queueing delay. A 16 ARM + 14 AMD pool services
// memcached jobs (50,000 requests each) arriving M/D/1 over a 20-second
// window at utilisations 5%, 25% and 50%. Unused nodes are off; powered
// nodes draw idle power between jobs. The paper observes (a) the sweet
// region survives at all utilisations, (b) a sharp drop where the
// frontier switches from AMD-bearing to ARM-only configurations, and
// (c) an order-of-magnitude energy increase from 5% to 50% utilisation
// at the same response time.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "hec/io/gnuplot.h"
#include "hec/queueing/window_analysis.h"

int main() {
  HEC_BENCH_EXPERIMENT("fig10_queueing", kFigure, "Fig. 10");
  using hec::TablePrinter;
  hec::bench::banner("Job queueing delay vs cluster utilisation", "Fig. 10");

  const hec::bench::WorkloadModels models =
      hec::bench::build_models(hec::workload_memcached());
  const double w = hec::workload_memcached().analysis_units;
  // Configurations may use any subset of the 16 ARM + 14 AMD pool.
  const auto outcomes = hec::bench::evaluate_space(models, 16, 14, w);
  const hec::ConfigEvaluator eval(models.arm, models.amd);
  std::vector<double> idle_w(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    idle_w[i] = eval.powered_idle_w(outcomes[i].config);
  }

  hec::bench::CsvFile csv("fig10_queueing");
  csv.writer().header(
      {"utilization", "response_ms", "energy_20s_j", "uses_amd"});

  std::vector<hec::EnergyDeadlineCurve> curves;
  for (double util : {0.05, 0.25, 0.50}) {
    const auto points =
        window_points(outcomes, idle_w, hec::WindowOptions{20.0, util});
    const auto frontier = window_frontier(points);
    for (const auto& p : frontier) {
      csv.writer().row({hec::format_double(util),
                        hec::format_double(p.t_s * 1e3),
                        hec::format_double(p.energy_j),
                        outcomes[p.tag].config.uses_amd() ? "1" : "0"});
    }
    std::cout << "Utilization " << util * 100 << "%: frontier "
              << frontier.size() << " points, response "
              << TablePrinter::num(frontier.front().t_s * 1e3, 1) << ".."
              << TablePrinter::num(frontier.back().t_s * 1e3, 1)
              << " ms, energy "
              << TablePrinter::num(frontier.back().energy_j, 1) << ".."
              << TablePrinter::num(frontier.front().energy_j, 1)
              << " J per 20 s window\n";
    // The sharp-drop structure: AMD-bearing prefix, ARM-only tail.
    std::size_t first_arm_only = frontier.size();
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (!outcomes[frontier[i].tag].config.uses_amd()) {
        first_arm_only = i;
        break;
      }
    }
    if (first_arm_only > 0 && first_arm_only < frontier.size()) {
      const double drop = frontier[first_arm_only - 1].energy_j /
                          frontier[first_arm_only].energy_j;
      std::cout << "  AMD->ARM-only switch at "
                << TablePrinter::num(
                       frontier[first_arm_only].t_s * 1e3, 1)
                << " ms with a " << TablePrinter::num(drop, 1)
                << "x energy drop (the paper's 'sharp drop')\n";
    }
    curves.emplace_back(frontier);
  }

  // Observation 4: across response times both utilisations can meet, the
  // 50% curve costs up to ~an order of magnitude more than the 5% curve
  // (the gap peaks where 5% already runs ARM-only but 50% still needs
  // high-performance nodes to absorb the queueing delay).
  double start = 0.0;
  for (const auto& c : curves) start = std::max(start, c.min_time_s());
  double max_ratio = 0.0, at_ms = 0.0;
  for (double t = start; t < start * 100.0; t *= 1.05) {
    const double e5 = curves[0].min_energy_j(t);
    const double e50 = curves[2].min_energy_j(t);
    if (!std::isfinite(e5) || !std::isfinite(e50)) continue;
    if (e50 / e5 > max_ratio) {
      max_ratio = e50 / e5;
      at_ms = t * 1e3;
    }
  }
  std::cout << "\nMax 50%-vs-5% utilisation energy ratio: "
            << TablePrinter::num(max_ratio, 1) << "x at response "
            << TablePrinter::num(at_ms, 1)
            << " ms (paper: 'almost by an order of magnitude')\n";

  hec::GnuplotFigure fig;
  fig.output_png = "fig10_queueing.png";
  fig.title = "Effect of job queueing delay on cluster utilisation (Fig. 10)";
  fig.x_label = "Response time per job [ms]";
  fig.y_label = "Energy for 20 s [J]";
  fig.log_x = true;
  fig.log_y = true;
  const std::string gp = write_gnuplot_script(
      "fig10_queueing.csv", fig,
      {hec::GnuplotSeries{"Utilization=5%", 2, 3, "$1 == 0.05",
                          "linespoints"},
       hec::GnuplotSeries{"Utilization=25%", 2, 3, "$1 == 0.25",
                          "linespoints"},
       hec::GnuplotSeries{"Utilization=50%", 2, 3, "$1 == 0.5",
                          "linespoints"}});
  std::cout << "[gnuplot] wrote " << gp << "\n";
  return 0;
}
