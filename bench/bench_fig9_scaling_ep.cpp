// Fig. 9: increasing cluster size for EP at the fixed 8:1 ratio.
#include "bench_common.h"

int main() {
  HEC_BENCH_EXPERIMENT("fig9_scaling_ep", kFigure, "Fig. 9");
  hec::bench::scaling_experiment(hec::workload_ep(),
                                 hec::workload_ep().analysis_units,
                                 "fig9_scaling_ep", "Fig. 9");
  return 0;
}
