// Fig. 7: heterogeneous mixes for EP under a 1 kW peak-power budget,
// substitution ratio 8:1.
#include "bench_common.h"

int main() {
  HEC_BENCH_EXPERIMENT("fig7_mixes_ep", kFigure, "Fig. 7");
  hec::bench::mixes_experiment(hec::workload_ep(),
                               hec::workload_ep().analysis_units,
                               "fig7_mixes_ep", "Fig. 7");
  return 0;
}
