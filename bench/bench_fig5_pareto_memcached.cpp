// Fig. 5: Pareto frontier for memcached (50,000 requests) over all
// 36,380 configurations. I/O-bound, so homogeneous energy is flat in the
// deadline and no overlap region appears.
#include "bench_common.h"

int main() {
  HEC_BENCH_EXPERIMENT("fig5_pareto_memcached", kFigure, "Fig. 5");
  hec::bench::pareto_experiment(hec::workload_memcached(),
                                hec::workload_memcached().analysis_units,
                                "fig5_pareto_memcached", "Fig. 5");
  return 0;
}
