// Table 4: cluster validation on 8 ARM + {1, 0} AMD nodes. Each workload
// is split with the matching scheduler, predicted analytically and
// measured by simulating every node of the cluster; the paper's errors
// are 1-13%.
#include <iostream>

#include "bench_common.h"
#include "hec/cluster/cluster_sim.h"
#include "hec/cluster/schedulers.h"

int main() {
  HEC_BENCH_EXPERIMENT("table4_cluster_validation", kTable, "Table 4");
  using hec::TablePrinter;
  hec::bench::banner("Cluster validation (8 ARM + {1,0} AMD)", "Table 4");

  TablePrinter table({"Program", "ARM nodes", "AMD nodes",
                      "Exec time error[%]", "Energy error[%]"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  double worst = 0.0;
  std::uint64_t seed = 90000;
  for (const hec::Workload& w : hec::all_workloads()) {
    const hec::bench::WorkloadModels models = hec::bench::build_models(w);
    const hec::MatchingScheduler sched(models.arm, models.amd);
    // Validation problem sizes scaled to a cluster-sized job.
    const double units = w.validation_units;
    for (int amd_nodes : {1, 0}) {
      hec::ClusterConfig cfg{
          hec::NodeConfig{8, models.arm_spec.cores,
                          models.arm_spec.pstates.max_ghz()},
          hec::NodeConfig{amd_nodes, models.amd_spec.cores,
                          models.amd_spec.pstates.max_ghz()}};
      const hec::SplitAssignment split = sched.assign(units, cfg);
      double t_pred = 0.0, e_pred = 0.0;
      if (split.units_arm > 0.0) {
        const hec::Prediction p =
            models.arm.predict(split.units_arm, cfg.arm);
        t_pred = std::max(t_pred, p.t_s);
        e_pred += p.energy_j();
      }
      if (split.units_amd > 0.0) {
        const hec::Prediction p =
            models.amd.predict(split.units_amd, cfg.amd);
        t_pred = std::max(t_pred, p.t_s);
        e_pred += p.energy_j();
      }
      hec::ClusterRunOptions opts;
      opts.seed = seed++;
      const hec::ClusterRunResult meas =
          simulate_cluster(models.arm_spec, models.amd_spec, w, cfg,
                           split.units_arm, split.units_amd, opts);
      const double t_err =
          std::abs(t_pred - meas.t_s) / meas.t_s * 100.0;
      const double e_err =
          std::abs(e_pred - meas.energy_j) / meas.energy_j * 100.0;
      worst = std::max({worst, t_err, e_err});
      const std::string key =
          std::string(w.name) + ".amd" + std::to_string(amd_nodes);
      hec::bench::telemetry::report_metric(
          "table4." + key + ".time_err_pct", t_err,
          hec::bench::telemetry::MetricKind::kAccuracy, "%");
      hec::bench::telemetry::report_metric(
          "table4." + key + ".energy_err_pct", e_err,
          hec::bench::telemetry::MetricKind::kAccuracy, "%");
      table.add_row({w.name, "8", std::to_string(amd_nodes),
                     TablePrinter::num(t_err, 1),
                     TablePrinter::num(e_err, 1)});
    }
  }
  hec::bench::telemetry::report_metric(
      "table4.worst_err_pct", worst,
      hec::bench::telemetry::MetricKind::kAccuracy, "%");
  table.print(std::cout);
  std::cout << "\nWorst error: " << TablePrinter::num(worst, 1)
            << "% (paper: <=13%) -> "
            << (worst < 15.0 ? "REPRODUCED" : "NOT reproduced") << "\n";
  return 0;
}
