// Extension: calibration sensitivity. Our substrate's absolute numbers
// are calibrated, not measured on the authors' testbed, so the
// reproduction's value rests on the paper's *qualitative* conclusions
// being robust to calibration error. This bench perturbs the EP demand
// vectors and node power curves by +/-20% in adversarial directions and
// checks, for each perturbation, whether the three structural claims
// still hold: (1) a heterogeneous sweet region exists, (2) ARM's PPR
// stays ahead on EP, (3) heterogeneity beats AMD-only at matched
// deadlines.
#include <iostream>

#include "bench_common.h"
#include "hec/pareto/sweet_region.h"

namespace {

struct Perturbation {
  const char* name;
  double arm_inst = 1.0;   ///< ARM instructions-per-unit factor
  double amd_inst = 1.0;
  double arm_power = 1.0;  ///< ARM core power curve factor
  double amd_power = 1.0;
  double arm_idle = 1.0;   ///< ARM idle floor factor
};

hec::NodeSpec scale_power(hec::NodeSpec spec, double core_factor,
                          double idle_factor) {
  spec.core_active.base_w *= core_factor;
  spec.core_active.lin_w_per_ghz *= core_factor;
  spec.core_active.cub_w_per_ghz3 *= core_factor;
  spec.core_stall.base_w *= core_factor;
  spec.core_stall.lin_w_per_ghz *= core_factor;
  spec.core_stall.cub_w_per_ghz3 *= core_factor;
  spec.rest_of_system_w *= idle_factor;
  spec.core_idle_w *= idle_factor;
  return spec;
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("ext_sensitivity", kExtension, "calibration sensitivity");
  using hec::TablePrinter;
  hec::bench::banner("Calibration sensitivity (extension)",
                     "robustness of the paper's conclusions");

  const Perturbation perturbations[] = {
      {"baseline"},
      {"ARM 20% more instructions", 1.2, 1.0, 1.0, 1.0, 1.0},
      {"AMD 20% fewer instructions", 1.0, 0.8, 1.0, 1.0, 1.0},
      {"ARM cores 20% hungrier", 1.0, 1.0, 1.2, 1.0, 1.0},
      {"AMD cores 20% leaner", 1.0, 1.0, 1.0, 0.8, 1.0},
      {"ARM idle doubled", 1.0, 1.0, 1.0, 1.0, 2.0},
      {"everything against ARM", 1.2, 0.8, 1.2, 0.8, 2.0},
  };

  TablePrinter table({"Perturbation", "Sweet region", "ARM PPR lead",
                      "Het beats AMD-only", "Verdict"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kLeft});
  const hec::CharacterizeOptions opts =
      hec::bench::bench_characterize_options();
  int robust = 0;
  for (const Perturbation& p : perturbations) {
    hec::Workload ep = hec::workload_ep();
    ep.demand_arm.instructions_per_unit *= p.arm_inst;
    ep.demand_amd.instructions_per_unit *= p.amd_inst;
    const hec::NodeSpec arm =
        scale_power(hec::arm_cortex_a9(), p.arm_power, p.arm_idle);
    const hec::NodeSpec amd =
        scale_power(hec::amd_opteron_k10(), p.amd_power, 1.0);

    const hec::NodeTypeModel arm_model = build_node_model(arm, ep, opts);
    const hec::NodeTypeModel amd_model = build_node_model(amd, ep, opts);
    const auto configs =
        enumerate_configs(arm, amd, hec::EnumerationLimits{10, 10});
    const hec::ConfigEvaluator eval(arm_model, amd_model);
    const auto outcomes = eval.evaluate_all(configs, ep.analysis_units);
    const auto frontier =
        pareto_frontier(hec::bench::to_points(outcomes));

    // (1) Sweet region of heterogeneous points leads the frontier.
    const auto sweet = find_sweet_region(
        frontier,
        [&](std::size_t tag) { return outcomes[tag].config.heterogeneous(); });
    // (2) ARM PPR lead: best energy-per-unit on one node of each type.
    double arm_best = 1e300, amd_best = 1e300;
    for (const auto& o : outcomes) {
      if (o.config.uses_arm() && !o.config.uses_amd() &&
          o.config.arm.nodes == 1) {
        arm_best = std::min(arm_best, o.energy_j);
      }
      if (o.config.uses_amd() && !o.config.uses_arm() &&
          o.config.amd.nodes == 1) {
        amd_best = std::min(amd_best, o.energy_j);
      }
    }
    const bool arm_lead = arm_best < amd_best;
    // (3) Heterogeneous frontier beats AMD-only at the AMD's fastest
    // deadline neighbourhood.
    double amd_only_best = 1e300, het_best_same_deadline = 1e300;
    double amd_fastest = 1e300;
    for (const auto& o : outcomes) {
      if (!o.config.uses_arm()) amd_fastest = std::min(amd_fastest, o.t_s);
    }
    for (const auto& o : outcomes) {
      if (o.t_s <= amd_fastest * 1.5) {
        if (!o.config.uses_arm()) {
          amd_only_best = std::min(amd_only_best, o.energy_j);
        } else if (o.config.heterogeneous()) {
          het_best_same_deadline =
              std::min(het_best_same_deadline, o.energy_j);
        }
      }
    }
    const bool het_wins = het_best_same_deadline < amd_only_best;
    const bool all_hold = sweet.has_value() && arm_lead && het_wins;
    if (all_hold) ++robust;
    table.add_row({p.name, sweet ? "yes" : "NO", arm_lead ? "yes" : "NO",
                   het_wins ? "yes" : "NO",
                   all_hold ? "conclusions hold" : "conclusions BREAK"});
  }
  table.print(std::cout);
  std::cout << "\n" << robust << "/" << std::size(perturbations)
            << " perturbations preserve all three structural claims; the "
               "reproduction does not hinge on exact calibration.\n";
  return 0;
}
