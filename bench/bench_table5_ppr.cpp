// Table 5: performance-to-power ratios at each node type's most
// energy-efficient single-node configuration. The paper's structure: ARM
// wins everywhere except RSA-2048 (AMD's crypto-friendly instructions)
// and x264 (AMD's memory bandwidth + L3).
#include <iostream>

#include "bench_common.h"

namespace {

struct PaperRow {
  const char* name;
  double amd, arm;
};
// The paper's published Table 5 values, for side-by-side comparison.
constexpr PaperRow kPaper[] = {
    {"EP", 1414922.0, 6048057.0},     {"memcached", 2628.0, 5220.0},
    {"x264", 1.0, 0.7},               {"blackscholes", 2902.0, 11413.0},
    {"Julius", 21390.0, 69654.0},     {"RSA-2048", 9346.0, 6877.0},
};

double paper_value(const std::string& name, bool amd) {
  for (const PaperRow& row : kPaper) {
    if (name == row.name) return amd ? row.amd : row.arm;
  }
  return 0.0;
}

/// PPR at the most energy-efficient (cores, frequency) point of one node.
double best_ppr(const hec::NodeTypeModel& model, const hec::NodeSpec& spec,
                double ppr_scale) {
  double best = 0.0;
  const double probe_units = 1e6;
  for (int c = 1; c <= spec.cores; ++c) {
    for (double f : spec.pstates.frequencies_ghz()) {
      const hec::Prediction p =
          model.predict(probe_units, hec::NodeConfig{1, c, f});
      // Work per joule == (work/s) / watt.
      best = std::max(best, probe_units * ppr_scale / p.energy_j());
    }
  }
  return best;
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("table5_ppr", kTable, "Table 5");
  using hec::TablePrinter;
  hec::bench::banner("Performance-to-power ratios", "Table 5");

  TablePrinter table({"Program", "PPR unit", "AMD (ours)", "AMD (paper)",
                      "ARM (ours)", "ARM (paper)", "Winner"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kLeft,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kLeft});
  bool structure_ok = true;
  for (const hec::Workload& w : hec::all_workloads()) {
    const hec::bench::WorkloadModels models = hec::bench::build_models(w);
    const double amd_ppr = best_ppr(models.amd, models.amd_spec, w.ppr_scale);
    const double arm_ppr = best_ppr(models.arm, models.arm_spec, w.ppr_scale);
    const bool arm_wins = arm_ppr > amd_ppr;
    const bool paper_arm_wins =
        paper_value(w.name, false) > paper_value(w.name, true);
    structure_ok = structure_ok && (arm_wins == paper_arm_wins);
    const int digits = amd_ppr < 100.0 ? 2 : 0;
    table.add_row({w.name, w.ppr_unit, TablePrinter::num(amd_ppr, digits),
                   TablePrinter::num(paper_value(w.name, true), digits),
                   TablePrinter::num(arm_ppr, digits),
                   TablePrinter::num(paper_value(w.name, false), digits),
                   arm_wins ? "ARM" : "AMD"});
  }
  table.print(std::cout);
  std::cout << "\nPaper structure (ARM wins except RSA-2048 and x264): "
            << (structure_ok ? "REPRODUCED" : "NOT reproduced") << "\n";
  return 0;
}
