// Extension: configuration-space reduction. The paper notes that
// searching its 36,380-point space for the optimum "is a complex task"
// and defers space-reduction techniques to future work (Section IV-B).
// This bench runs both of our searchers against the exhaustive sweep for
// the minimum-energy-under-deadline query on EP and memcached, reporting
// evaluations spent and optimality.
#include <iostream>
#include <cmath>
#include <limits>

#include "bench_common.h"
#include "hec/search/optimizer.h"

int main() {
  HEC_BENCH_EXPERIMENT("ext_search", kExtension, "search strategies");
  using hec::TablePrinter;
  hec::bench::banner("Configuration-space search (extension)",
                     "Section IV-B's deferred future work");

  for (const hec::Workload& w :
       {hec::workload_ep(), hec::workload_memcached()}) {
    const hec::bench::WorkloadModels models = hec::bench::build_models(w);
    const hec::ConfigEvaluator evaluator(models.arm, models.amd);
    const hec::EnumerationLimits limits{10, 10};
    const std::size_t space = expected_config_count(
        models.arm_spec, models.amd_spec, limits);
    const double units = w.analysis_units;

    // Exhaustive ground truth (once; reused across deadlines).
    const auto configs =
        enumerate_configs(models.arm_spec, models.amd_spec, limits);
    const auto outcomes = evaluator.evaluate_all(configs, units);

    std::cout << w.name << " (space: " << space << " configurations)\n";
    TablePrinter table({"Deadline [ms]", "Optimal [J]", "B&B [J]",
                        "B&B evals", "Greedy [J]", "Greedy evals"});
    for (double d_ms : {60.0, 100.0, 200.0, 500.0}) {
      double optimal = std::numeric_limits<double>::infinity();
      for (const auto& o : outcomes) {
        if (o.t_s <= d_ms * 1e-3) optimal = std::min(optimal, o.energy_j);
      }
      const auto bnb = branch_and_bound_search(
          evaluator, models.arm_spec, models.amd_spec, limits, units,
          d_ms * 1e-3);
      const auto greedy = greedy_search(evaluator, models.arm_spec,
                                        models.amd_spec, limits, units,
                                        d_ms * 1e-3);
      auto cell = [](const std::optional<hec::SearchResult>& r) {
        return r ? TablePrinter::num(r->best.energy_j, 2)
                 : std::string("-");
      };
      auto evals = [](const std::optional<hec::SearchResult>& r) {
        return r ? std::to_string(r->evaluations) : std::string("-");
      };
      table.add_row({TablePrinter::num(d_ms, 0),
                     std::isfinite(optimal)
                         ? TablePrinter::num(optimal, 2)
                         : std::string("-"),
                     cell(bnb), evals(bnb), cell(greedy), evals(greedy)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Branch-and-bound is exact with a fraction of the "
               "evaluations; greedy descent is near-optimal with two "
               "orders of magnitude fewer.\n";
  return 0;
}
