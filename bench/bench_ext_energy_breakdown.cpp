// Extension: per-component energy breakdown. The paper's model splits
// node energy into cores, memory, I/O and the idle floor (Eq. 13) but
// never reports the split; this bench prints it per workload and node
// type at the full operating point — making visible *why* each workload
// lands in its Table 3 class and why AMD's idle floor dominates its
// energy story.
#include <iostream>

#include "bench_common.h"

int main() {
  HEC_BENCH_EXPERIMENT("ext_energy_breakdown", kExtension, "energy breakdown");
  using hec::TablePrinter;
  hec::bench::banner("Per-component energy breakdown (extension)",
                     "Eq. 13's decomposition, reported");

  TablePrinter table({"Workload", "Node", "Idle %", "Cores %", "Memory %",
                      "I/O %", "Avg power [W]"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kLeft,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  for (const hec::Workload& w : hec::all_workloads()) {
    const hec::bench::WorkloadModels models = hec::bench::build_models(w);
    for (const hec::NodeSpec* spec : {&models.amd_spec, &models.arm_spec}) {
      const hec::NodeTypeModel& model =
          spec->isa == hec::Isa::kArmV7a ? models.arm : models.amd;
      const double units = std::min(w.validation_units, 100000.0);
      const hec::Prediction p = model.predict(
          units,
          hec::NodeConfig{1, spec->cores, spec->pstates.max_ghz()});
      const double total = p.energy_j();
      auto pct = [&](double j) {
        return TablePrinter::num(j / total * 100.0, 1);
      };
      table.add_row({w.name, spec->name, pct(p.energy.idle_j),
                     pct(p.energy.core_j), pct(p.energy.mem_j),
                     pct(p.energy.io_j),
                     TablePrinter::num(total / p.t_s, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe AMD idle floor is the dominant energy component for "
               "every workload — the inefficiency the mix-and-match "
               "technique exists to avoid — while the L3-less ARM shows "
               "the memory share x264's class predicts.\n";
  return 0;
}
