# End-to-end check of the benchmark regression gate, run as a ctest:
#
#   1. seed a baseline from bench_table2_notation (--write-baseline);
#   2. a clean rerun must pass the gate (exit 0) — wall-time jitter
#      between two back-to-back runs sits far inside the noise floor;
#   3. a rerun with HEC_BENCH_SYNTHETIC_SLEEP_MS=1500 (the bench's
#      injected-slowdown hook) must be flagged as a regression (exit 3):
#      +1.5 s decisively clears the wall tolerance max(75%, 0.5 s).
#
# Invoked by tools/CMakeLists.txt with -DBENCHREPORT=... -DBENCH_DIR=...
# -DWORK_DIR=... -P bench/benchreport_gate.cmake.
cmake_minimum_required(VERSION 3.16)

foreach(var BENCHREPORT BENCH_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common_args
    --bench-dir "${BENCH_DIR}"
    --filter bench_table2_notation
    --baseline "${WORK_DIR}/baseline.json"
    --repeat 1 --jobs 1 --timeout-s 60)

function(run_benchreport label expected_code results_subdir)
  execute_process(
      COMMAND ${ARGN}
      RESULT_VARIABLE code
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
  if(NOT code EQUAL expected_code)
    message(FATAL_ERROR
        "${label}: expected exit ${expected_code}, got ${code}\n"
        "stdout:\n${out}\nstderr:\n${err}")
  endif()
  message(STATUS "${label}: exit ${code} (expected ${expected_code})")
endfunction()

# 1. Seed the baseline.
run_benchreport("seed baseline" 0 seed
    "${BENCHREPORT}" ${common_args}
    --results-dir "${WORK_DIR}/seed"
    --out "${WORK_DIR}/seed/BENCH_seed.json"
    --write-baseline)

if(NOT EXISTS "${WORK_DIR}/baseline.json")
  message(FATAL_ERROR "baseline.json was not written")
endif()

# 2. Clean rerun passes the gate.
run_benchreport("clean rerun" 0 clean
    "${BENCHREPORT}" ${common_args}
    --results-dir "${WORK_DIR}/clean"
    --out "${WORK_DIR}/clean/BENCH_clean.json")

# 3. Synthetic slowdown is flagged as a regression.
run_benchreport("synthetic slowdown" 3 slow
    "${CMAKE_COMMAND}" -E env HEC_BENCH_SYNTHETIC_SLEEP_MS=1500
    "${BENCHREPORT}" ${common_args}
    --results-dir "${WORK_DIR}/slow"
    --out "${WORK_DIR}/slow/BENCH_slow.json")

# The regression run must still have produced a suite doc and report.
foreach(artefact
        "${WORK_DIR}/slow/BENCH_slow.json"
        "${WORK_DIR}/slow/BENCH_REPORT.md")
  if(NOT EXISTS "${artefact}")
    message(FATAL_ERROR "missing artefact after gated run: ${artefact}")
  endif()
endforeach()

message(STATUS "benchreport gate: all three phases behaved as expected")
