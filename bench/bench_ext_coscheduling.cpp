// Extension: two-job co-scheduling. Section IV-D's consolidation example
// shows one shared cluster beating fixed slices; this bench runs the
// optimal-partition coscheduler for a tight job + a relaxed job and
// compares it against the naive half-split across several pool sizes.
#include <iostream>

#include "bench_common.h"
#include "hec/cluster/coscheduler.h"

int main() {
  HEC_BENCH_EXPERIMENT("ext_coscheduling", kExtension, "two-job co-scheduling");
  using hec::TablePrinter;
  hec::bench::banner("Two-job co-scheduling (extension)",
                     "Section IV-D, operationalised");

  const hec::bench::WorkloadModels ep = hec::bench::build_models(
      hec::workload_ep());
  const hec::bench::WorkloadModels mc = hec::bench::build_models(
      hec::workload_memcached());

  // Job A: a latency-tight memcached batch. Job B: a relaxed EP batch.
  const hec::CoscheduleJob job_a{&mc.arm, &mc.amd, 50000.0, 0.08,
                                 "memcached@80ms"};
  const hec::CoscheduleJob job_b{&ep.arm, &ep.amd, 50e6, 0.6, "EP@600ms"};

  TablePrinter table({"Pool (ARM,AMD)", "Optimal split (A|B)",
                      "Optimal [J]", "Half-split [J]", "Savings"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kLeft,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  for (const auto& [pool_arm, pool_amd] :
       std::initializer_list<std::pair<int, int>>{{8, 4}, {12, 6},
                                                  {16, 8}}) {
    const auto plan = coschedule_two(job_a, job_b, ep.arm_spec,
                                     ep.amd_spec, pool_arm, pool_amd);
    std::string split = "-", optimal = "-", naive_cell = "-",
                savings = "-";
    if (plan) {
      split = std::to_string(plan->arm_a) + "+" +
              std::to_string(plan->amd_a) + " | " +
              std::to_string(plan->arm_b) + "+" +
              std::to_string(plan->amd_b);
      optimal = TablePrinter::num(plan->total_energy_j, 2);
      // Naive: each job gets half the pool.
      const hec::ConfigEvaluator eval_a(mc.arm, mc.amd);
      const hec::ConfigEvaluator eval_b(ep.arm, ep.amd);
      const auto na = branch_and_bound_search(
          eval_a, ep.arm_spec, ep.amd_spec,
          hec::EnumerationLimits{pool_arm / 2, pool_amd / 2},
          job_a.work_units, job_a.deadline_s);
      const auto nb = branch_and_bound_search(
          eval_b, ep.arm_spec, ep.amd_spec,
          hec::EnumerationLimits{pool_arm - pool_arm / 2,
                                 pool_amd - pool_amd / 2},
          job_b.work_units, job_b.deadline_s);
      if (na && nb) {
        const double naive = na->best.energy_j + nb->best.energy_j;
        naive_cell = TablePrinter::num(naive, 2);
        savings = TablePrinter::num(
                      (1.0 - plan->total_energy_j / naive) * 100.0, 1) +
                  "%";
      } else {
        naive_cell = "(infeasible)";
      }
    }
    table.add_row({"(" + std::to_string(pool_arm) + "," +
                       std::to_string(pool_amd) + ")",
                   split, optimal, naive_cell, savings});
  }
  table.print(std::cout);
  std::cout << "\nThe optimal partition hands the latency-tight job the "
               "high-performance nodes it needs and lets the relaxed job "
               "run on the efficient low-power remainder.\n";
  return 0;
}
