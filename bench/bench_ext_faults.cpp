// Extension experiment: how faults reshape the energy-deadline frontier.
//
// The paper's Pareto analysis assumes nothing fails. This experiment
// re-evaluates the configuration space under a fault regime (fail-stop
// crashes, stragglers, thermal capping) with checkpoint + re-matching
// recovery, Monte Carlo over fault seeds, and compares:
//   * the nominal frontier (fault-free model predictions), vs
//   * the robust frontier (expected time, expected energy, abandonment
//     probability below a reliability budget).
// Expected-energy inflation from wasted work and idle tails shifts the
// sweet region up and to the right; the CSV holds both frontiers for
// plotting.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "hec/config/robust_evaluate.h"
#include "hec/pareto/robust_frontier.h"

namespace {

using namespace hec;
using namespace hec::bench;

double percent(double now, double base) {
  return base > 0.0 ? (now / base - 1.0) * 100.0 : 0.0;
}

void describe_sweet(const char* label,
                    const std::vector<TimeEnergyPoint>& frontier,
                    const HeterogeneousPredicate& het) {
  const auto sweet = find_sweet_region(frontier, het);
  if (!sweet) {
    std::cout << label << ": no sweet region (fewer than 3 leading "
              << "heterogeneous points)\n";
    return;
  }
  const auto& lo = frontier[sweet->begin];
  const auto& hi = frontier[sweet->end - 1];
  std::cout << label << ": " << sweet->size() << " heterogeneous points, "
            << "t in [" << TablePrinter::num(lo.t_s * 1e3, 1) << ", "
            << TablePrinter::num(hi.t_s * 1e3, 1) << "] ms, energy in ["
            << TablePrinter::num(sweet->energy_lower_j, 1) << ", "
            << TablePrinter::num(sweet->energy_upper_j, 1) << "] J, slope "
            << TablePrinter::num(sweet->energy_vs_time.slope, 2) << " J/s\n";
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("ext_faults", kExtension, "robust Pareto under faults");
  banner("Robust vs nominal energy-deadline Pareto under faults",
         "reliability extension (fault-injection subsystem)");

  const Workload workload = find_workload("EP");
  const WorkloadModels models = build_models(workload);
  const double units = workload.analysis_units;
  const int kMaxArm = 6, kMaxAmd = 6;

  const std::vector<ConfigOutcome> outcomes =
      evaluate_space(models, kMaxArm, kMaxAmd, units);
  const std::vector<TimeEnergyPoint> nominal_frontier =
      pareto_frontier(to_points(outcomes));
  std::cout << outcomes.size() << " configurations (up to " << kMaxArm
            << " ARM + " << kMaxAmd << " AMD nodes), nominal frontier "
            << nominal_frontier.size() << " points\n";

  // Fault regime scaled to the workload. MTTF is per node, so with up to
  // 12 nodes a run sees roughly n * t / MTTF crashes; 25x a typical
  // frontier job puts large configurations around half a crash per run —
  // frequent enough to separate robust from fragile mixes without
  // drowning every configuration.
  const double t_ref =
      nominal_frontier[nominal_frontier.size() / 2].t_s;
  FaultConfig faults;
  faults.mttf_s = 25.0 * t_ref;
  faults.straggler_prob = 0.15;
  faults.straggler_slowdown = 2.0;
  faults.straggler_window_s = t_ref;
  faults.thermal_cap_prob = 0.10;
  faults.thermal_cap_factor = 0.75;
  faults.checkpoint_interval_s = t_ref / 5.0;
  faults.checkpoint_cost_s = 0.01 * t_ref;
  faults.restart_overhead_s = 0.02 * t_ref;
  std::cout << "fault regime: MTTF " << TablePrinter::num(faults.mttf_s, 3)
            << " s, straggler p=" << faults.straggler_prob
            << " (2x for " << TablePrinter::num(t_ref, 3)
            << " s), thermal p=" << faults.thermal_cap_prob
            << " (cap 0.75f), checkpoint every "
            << TablePrinter::num(faults.checkpoint_interval_s, 3) << " s\n";

  MonteCarloOptions mc;
  mc.trials = 16;
  const RobustConfigEvaluator robust(models.arm, models.amd, faults, mc);
  std::vector<ClusterConfig> configs;
  configs.reserve(outcomes.size());
  for (const ConfigOutcome& o : outcomes) configs.push_back(o.config);
  const std::vector<RobustOutcome> robust_outcomes =
      robust.evaluate_all(configs, units);

  std::vector<RobustPoint> robust_points;
  robust_points.reserve(robust_outcomes.size());
  for (std::size_t i = 0; i < robust_outcomes.size(); ++i) {
    const RobustOutcome& r = robust_outcomes[i];
    robust_points.push_back({r.mean_t_s, r.mean_energy_j, r.miss_prob, i});
  }
  constexpr double kMaxAbandonProb = 0.05;
  const std::vector<TimeEnergyPoint> robust_frontier =
      robust_pareto_frontier(robust_points, kMaxAbandonProb);
  std::cout << "robust frontier (" << mc.trials
            << " trials/config, abandonment <= " << kMaxAbandonProb
            << "): " << robust_frontier.size() << " points\n\n";

  const auto het = [&](std::size_t tag) {
    return outcomes[tag].config.heterogeneous();
  };
  describe_sweet("nominal sweet region", nominal_frontier, het);
  describe_sweet("robust  sweet region", robust_frontier, het);

  // Minimum energy to meet log-spaced deadlines, nominal vs expected.
  const EnergyDeadlineCurve nominal_curve(nominal_frontier);
  const EnergyDeadlineCurve robust_curve(robust_frontier);
  const double t_lo = robust_curve.min_time_s();
  const double t_hi = robust_frontier.back().t_s;
  std::cout << "\nMinimum energy per deadline (nominal prediction vs "
            << "expected under faults):\n";
  TablePrinter table({"Deadline [ms]", "Nominal [J]", "Nominal config",
                      "Robust E[J]", "Robust config", "Penalty"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kLeft,
                       Align::kRight, Align::kLeft, Align::kRight});
  const int kDeadlines = 6;
  for (int k = 0; k < kDeadlines; ++k) {
    const double frac = static_cast<double>(k) / (kDeadlines - 1);
    const double deadline = t_lo * std::pow(t_hi / t_lo, frac);
    const auto nom = nominal_curve.best_for_deadline(deadline);
    const auto rob = robust_curve.best_for_deadline(deadline);
    if (!nom || !rob) continue;
    table.add_row({TablePrinter::num(deadline * 1e3, 1),
                   TablePrinter::num(nom->energy_j, 1),
                   describe(outcomes[nom->tag].config),
                   TablePrinter::num(rob->energy_j, 1),
                   describe(outcomes[rob->tag].config),
                   TablePrinter::num(percent(rob->energy_j, nom->energy_j),
                                     1) + " %"});
  }
  table.print(std::cout);

  // How fragile is the nominal winner? Robust-evaluate the nominal
  // frontier's knee point against its own nominal time as the deadline.
  const TimeEnergyPoint knee =
      nominal_frontier[nominal_frontier.size() / 2];
  const RobustOutcome knee_robust = robust.evaluate(
      outcomes[knee.tag].config, units, knee.t_s * 1.1);
  std::cout << "\nnominal knee " << describe(outcomes[knee.tag].config)
            << ": predicted " << TablePrinter::num(knee.t_s * 1e3, 1)
            << " ms / " << TablePrinter::num(knee.energy_j, 1)
            << " J; under faults E[t] "
            << TablePrinter::num(knee_robust.mean_t_s * 1e3, 1)
            << " ms, E[energy] "
            << TablePrinter::num(knee_robust.mean_energy_j, 1) << " J ("
            << TablePrinter::num(knee_robust.mean_wasted_j, 1)
            << " J wasted), misses a 10%-padded deadline "
            << TablePrinter::num(knee_robust.miss_prob * 100.0, 1)
            << " % of runs\n";

  CsvFile csv("fig_faults_robust_pareto");
  csv.writer().header({"series", "t_s", "energy_j", "miss_prob",
                       "heterogeneous", "config"});
  for (const TimeEnergyPoint& p : nominal_frontier) {
    csv.writer().row({"nominal", format_double(p.t_s),
                      format_double(p.energy_j), "0",
                      het(p.tag) ? "1" : "0",
                      describe(outcomes[p.tag].config)});
  }
  for (const TimeEnergyPoint& p : robust_frontier) {
    csv.writer().row({"robust", format_double(p.t_s),
                      format_double(p.energy_j),
                      format_double(robust_points[p.tag].miss_prob),
                      het(p.tag) ? "1" : "0",
                      describe(outcomes[p.tag].config)});
  }
  return 0;
}
