// Ablation: energy-accounting variants. The paper's Eq. 17 charges stall
// power only for non-memory stalls (and memory energy for the whole
// memory response time); the overlap-aware variant charges the full
// stalled share of T_CPU and caps device busy time by the run length.
// This bench quantifies the validation-error difference per workload —
// the design choice DESIGN.md calls out.
#include <iostream>

#include "bench_common.h"
#include "hec/sim/node_sim.h"
#include "hec/stats/summary.h"

namespace {

double energy_error_pct(const hec::NodeSpec& spec,
                        const hec::Workload& workload,
                        hec::EnergyAccounting accounting, double units) {
  const hec::NodeTypeModel model = build_node_model(
      spec, workload, hec::bench::bench_characterize_options(), accounting);
  hec::RelativeError err;
  std::uint64_t seed = 777;
  for (int c = 1; c <= spec.cores; ++c) {
    for (double f : spec.pstates.frequencies_ghz()) {
      const hec::Prediction pred =
          model.predict(units, hec::NodeConfig{1, c, f});
      hec::RunConfig rc;
      rc.cores_used = c;
      rc.f_ghz = f;
      rc.work_units = units;
      rc.seed = seed++;
      const hec::RunResult meas =
          simulate_node(spec, workload.demand_for(spec.isa), rc);
      err.add(pred.energy_j(), meas.energy.total_j());
    }
  }
  return err.mean_pct();
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("ablation_accounting", kAblation, "Eq. 17 accounting");
  using hec::TablePrinter;
  hec::bench::banner("Energy-accounting ablation: Eq. 17 vs overlap-aware",
                     "Section II-C design choice");

  TablePrinter table({"Workload", "Node", "Eq.17 err[%]",
                      "Overlap-aware err[%]", "Winner"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kLeft,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kLeft});
  for (const hec::Workload& w : hec::all_workloads()) {
    for (const hec::NodeSpec& spec :
         {hec::amd_opteron_k10(), hec::arm_cortex_a9()}) {
      const double units = std::min(w.validation_units, 100000.0);
      const double paper = energy_error_pct(
          spec, w, hec::EnergyAccounting::kPaperEq17, units);
      const double overlap = energy_error_pct(
          spec, w, hec::EnergyAccounting::kOverlapAware, units);
      table.add_row({w.name, spec.name, TablePrinter::num(paper, 1),
                     TablePrinter::num(overlap, 1),
                     overlap <= paper ? "overlap-aware" : "Eq.17"});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe gap is largest for memory-bound x264, where Eq. 17 "
               "misses the core power burned during memory stalls.\n";
  return 0;
}
