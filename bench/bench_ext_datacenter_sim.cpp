// Extension: empirical check of Fig. 10. The figure's curves come from a
// closed-form window model (M/D/1 wait + idle-gap accounting). This bench
// replays three representative configurations from the Fig. 10 frontier
// through the event-driven datacenter simulator and compares measured
// response time and window energy against the analytic values.
#include <iostream>

#include "bench_common.h"
#include "hec/cluster/datacenter_sim.h"
#include "hec/queueing/md1.h"
#include "hec/queueing/window_analysis.h"

int main() {
  HEC_BENCH_EXPERIMENT("ext_datacenter_sim", kExtension, "datacenter event sim");
  using hec::TablePrinter;
  hec::bench::banner("Event-driven check of the Fig. 10 window model",
                     "Fig. 10, measured");

  const hec::bench::WorkloadModels models =
      hec::bench::build_models(hec::workload_memcached());
  const double w = hec::workload_memcached().analysis_units;
  const auto outcomes = hec::bench::evaluate_space(models, 16, 14, w);
  const hec::ConfigEvaluator eval(models.arm, models.amd);

  // Pick three frontier-ish configurations of very different character.
  std::vector<std::size_t> picks;
  {
    std::size_t fastest = 0, arm_only = 0, mixed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const auto& o = outcomes[i];
      if (o.t_s < outcomes[fastest].t_s) fastest = i;
      if (!o.config.uses_amd() &&
          (outcomes[arm_only].config.uses_amd() ||
           o.energy_j < outcomes[arm_only].energy_j)) {
        arm_only = i;
      }
      if (o.config.heterogeneous() &&
          (!outcomes[mixed].config.heterogeneous() ||
           std::abs(o.t_s - 0.1) < std::abs(outcomes[mixed].t_s - 0.1))) {
        mixed = i;
      }
    }
    picks = {fastest, mixed, arm_only};
  }

  TablePrinter table({"Configuration", "Util", "Resp model [ms]",
                      "Resp sim [ms]", "E model [J]", "E sim [J]",
                      "E err"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  double worst_err = 0.0;
  for (double util : {0.25, 0.5}) {
    for (std::size_t idx : picks) {
      const hec::ConfigOutcome& o = outcomes[idx];
      const double idle_w = eval.powered_idle_w(o.config);
      const double window_s = 2000.0;  // long window: tight statistics
      const std::vector<hec::ConfigOutcome> one{o};
      const std::vector<double> idles{idle_w};
      const auto analytic = window_points(
          one, idles, hec::WindowOptions{window_s, util});

      hec::DatacenterSimConfig sim;
      sim.window_s = window_s;
      sim.arrival_rate_per_s =
          hec::MD1Queue::rate_for_utilization(util, o.t_s);
      sim.seed = 1000 + idx;
      const hec::DatacenterSimResult measured =
          simulate_datacenter(o, idle_w, sim);

      const double err = std::abs(measured.energy_j -
                                  analytic[0].window_energy_j) /
                         analytic[0].window_energy_j * 100.0;
      worst_err = std::max(worst_err, err);
      table.add_row(
          {hec::bench::describe(o.config),
           TablePrinter::num(util * 100.0, 0) + "%",
           TablePrinter::num(analytic[0].response_s * 1e3, 1),
           TablePrinter::num(measured.mean_response_s * 1e3, 1),
           TablePrinter::num(analytic[0].window_energy_j, 0),
           TablePrinter::num(measured.energy_j, 0),
           TablePrinter::num(err, 1) + "%"});
    }
  }
  table.print(std::cout);
  std::cout << "\nWorst window-energy error: "
            << TablePrinter::num(worst_err, 1)
            << "% -> the Fig. 10 closed form is "
            << (worst_err < 5.0 ? "CONFIRMED" : "NOT confirmed")
            << " by event-driven measurement.\n";
  return 0;
}
