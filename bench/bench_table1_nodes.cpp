// Table 1: types of heterogeneous nodes — printed from the hardware
// catalogue, plus the derived power figures the analysis relies on
// (peak/idle envelopes and the 8:1 substitution ratio of footnote 5).
#include <iostream>

#include "bench_common.h"
#include "hec/config/budget.h"

namespace {

std::string fmt_range(const hec::PStateTable& pstates) {
  return hec::TablePrinter::num(pstates.min_ghz(), 1) + "-" +
         hec::TablePrinter::num(pstates.max_ghz(), 1) + " GHz (" +
         std::to_string(pstates.size()) + " P-states)";
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("table1_nodes", kTable, "Table 1");
  using hec::TablePrinter;
  hec::bench::banner("Node types", "Table 1");

  const hec::NodeSpec amd = hec::amd_opteron_k10();
  const hec::NodeSpec arm = hec::arm_cortex_a9();

  TablePrinter table({"Attribute", "AMD K10", "ARM Cortex-A9"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight});
  table.add_row({"ISA", to_string(amd.isa), to_string(arm.isa)});
  table.add_row({"Cores/node", std::to_string(amd.cores),
                 std::to_string(arm.cores)});
  table.add_row({"Clock Freq", fmt_range(amd.pstates), fmt_range(arm.pstates)});
  table.add_row({"L1 data cache [KiB/core]",
                 TablePrinter::num(amd.l1d_kib_per_core, 0),
                 TablePrinter::num(arm.l1d_kib_per_core, 0)});
  table.add_row({"L2 cache [KiB]", TablePrinter::num(amd.l2_kib, 0),
                 TablePrinter::num(arm.l2_kib, 0)});
  table.add_row({"L3 cache [KiB]", TablePrinter::num(amd.l3_kib, 0),
                 arm.l3_kib == 0.0 ? "NA" : TablePrinter::num(arm.l3_kib, 0)});
  table.add_row({"Memory [GiB]", TablePrinter::num(amd.memory_gib, 0),
                 TablePrinter::num(arm.memory_gib, 0)});
  table.add_row({"I/O bandwidth [Mbps]",
                 TablePrinter::num(amd.io_bandwidth_mbps, 0),
                 TablePrinter::num(arm.io_bandwidth_mbps, 0)});
  table.add_row({"Peak power [W]", TablePrinter::num(amd.peak_node_w(), 1),
                 TablePrinter::num(arm.peak_node_w(), 1)});
  table.add_row({"Idle power [W]", TablePrinter::num(amd.idle_node_w(), 1),
                 TablePrinter::num(arm.idle_node_w(), 1)});
  table.print(std::cout);

  const hec::SwitchSpec sw = hec::rack_switch();
  std::cout << "\nRack switch: " << sw.power_w << " W, " << sw.ports
            << " ports\nPower substitution ratio (footnote 5): "
            << hec::substitution_ratio(arm, amd)
            << " ARM per AMD (paper: 8)\n";
  return 0;
}
