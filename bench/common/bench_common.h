// Shared plumbing for the experiment binaries.
//
// Every table/figure bench follows the same pipeline: characterise both
// node types for a workload (trace-driven model inputs), evaluate a
// configuration space, derive Pareto structure and print/dump the series
// the paper reports. This header centralises that pipeline so each bench
// stays focused on its experiment.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "hec/bench/telemetry.h"  // IWYU pragma: export — HEC_BENCH_EXPERIMENT
#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/io/csv.h"
#include "hec/io/table.h"
#include "hec/model/characterize.h"
#include "hec/pareto/sweet_region.h"
#include "hec/sweep/sweep.h"
#include "hec/workloads/workload.h"

namespace hec::bench {

/// Both node types' characterised models for one workload.
struct WorkloadModels {
  Workload workload;
  NodeSpec arm_spec;
  NodeSpec amd_spec;
  NodeTypeModel arm;
  NodeTypeModel amd;
};

/// Fixed-seed characterisation so every bench run prints the same tables.
CharacterizeOptions bench_characterize_options();

/// Builds characterised models for `workload` on the paper's node pair.
WorkloadModels build_models(
    const Workload& workload,
    EnergyAccounting accounting = EnergyAccounting::kOverlapAware);

/// Maps evaluated outcomes to frontier points (tag = outcome index).
std::vector<TimeEnergyPoint> to_points(
    const std::vector<ConfigOutcome>& outcomes);

/// Evaluates the full configuration space with up to (max_arm, max_amd)
/// nodes for `work_units` of the models' workload.
std::vector<ConfigOutcome> evaluate_space(const WorkloadModels& models,
                                          int max_arm, int max_amd,
                                          double work_units);

/// Minimum-energy curves restricted to one homogeneity class.
enum class SideFilter { kAll, kHeterogeneous, kArmOnly, kAmdOnly };
std::vector<TimeEnergyPoint> filtered_frontier(
    const std::vector<ConfigOutcome>& outcomes, SideFilter filter);

/// Short "ARM n(c@f) + AMD n(c@f)" description of a configuration.
std::string describe(const ClusterConfig& config);

/// Buffers CSV rows for <name>.csv in the working directory and commits
/// them atomically (temp + fsync + rename) on destruction, so a crash or
/// full disk never leaves a truncated dump; prints "wrote <path>" on
/// success and exits with code 74 (EX_IOERR) on write failure.
class CsvFile {
 public:
  explicit CsvFile(const std::string& name);
  ~CsvFile();
  CsvFile(const CsvFile&) = delete;
  CsvFile& operator=(const CsvFile&) = delete;
  CsvWriter& writer() { return writer_; }

 private:
  std::string path_;
  std::ostringstream out_;
  CsvWriter writer_;
};

/// Prints a section banner for a table/figure.
void banner(const std::string& title, const std::string& paper_ref);

/// Peak resident set size of the process so far, in MiB.
double peak_rss_mib();

// Every bench binary links bench_common.cpp, whose file-scope harness
// reporter prints per-run wall time and peak RSS to stderr on exit:
//
//   [bench-harness] wall_s=12.345 peak_rss_mb=87.4
//
// and honours HEC_TRACE_OUT / HEC_METRICS_OUT / HEC_PROFILE_OUT
// environment variables by dumping the hec::obs trace (Chrome JSON),
// metrics (Prometheus text) and aggregated span-tree profile
// (hec-profile/v1) collected over the whole run — the bench-side
// analogue of the CLI's --trace-out/--metrics-out/--profile-out flags.
//
// Additionally, every bench registers its experiment via
// HEC_BENCH_EXPERIMENT(name, kind, paper_ref) as the first statement of
// main, and reports paper-accuracy numbers with
// hec::bench::telemetry::report_metric. When HEC_BENCH_JSON is set (as
// hecsim_benchreport does for its children), a hec-bench-run/v1 record
// with wall time, peak RSS, metrics, obs counters/histograms and span
// phases is written to that path at process exit.

/// Figs. 4-5 driver: evaluates the full 10+10 configuration space
/// (36,380 points), prints the Pareto frontier with sweet/overlap region
/// analysis and the homogeneous minimum-energy curves, and dumps CSV.
void pareto_experiment(const Workload& workload, double work_units,
                       const std::string& fig_name,
                       const std::string& paper_ref);

/// Figs. 6-7 driver: the 1 kW budget substitution series (ARM 0:AMD 16
/// ... ARM 128:AMD 0). For each mix, evaluates all configurations using
/// up to that many nodes (unused nodes off) and prints minimum energy at
/// the paper's log-scale deadlines.
void mixes_experiment(const Workload& workload, double work_units,
                      const std::string& fig_name,
                      const std::string& paper_ref);

/// Figs. 8-9 driver: cluster-size scaling at a fixed 8:1 mix ratio
/// ({8:1} ... {128:16}); shows the invariant energy bounds and the
/// leftward shift of the sweet region.
void scaling_experiment(const Workload& workload, double work_units,
                        const std::string& fig_name,
                        const std::string& paper_ref);

}  // namespace hec::bench
