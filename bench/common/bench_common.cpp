#include "bench_common.h"

#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <utility>

#include "hec/io/gnuplot.h"
#include "hec/obs/export.h"
#include "hec/obs/obs.h"
#include "hec/obs/profile.h"
#include "hec/util/atomic_file.h"

namespace hec::bench {

double peak_rss_mib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

namespace {

void export_to_env_path(const char* env, void (*write)(std::ostream&)) {
  const char* path = std::getenv(env);
  if (path == nullptr || *path == '\0') return;
  std::ostringstream out;
  write(out);
  try {
    hec::util::atomic_write_file(path, out.str());
  } catch (const std::exception& e) {
    // Exit-time export: report, don't abort the process's real exit code.
    std::cerr << "[bench-harness] " << e.what() << "\n";
    return;
  }
  std::cerr << "[bench-harness] wrote " << path << "\n";
}

/// See the header comment: reports wall time + peak RSS at process exit
/// and dumps obs data when HEC_TRACE_OUT / HEC_METRICS_OUT are set.
struct HarnessReporter {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  ~HarnessReporter() {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    export_to_env_path("HEC_TRACE_OUT", [](std::ostream& out) {
      hec::obs::write_chrome_trace(out, hec::obs::tracer(),
                                   &hec::obs::registry());
    });
    export_to_env_path("HEC_METRICS_OUT", [](std::ostream& out) {
      hec::obs::write_prometheus(out, hec::obs::registry(),
                                 &hec::obs::tracer());
    });
    export_to_env_path("HEC_PROFILE_OUT", [](std::ostream& out) {
      hec::obs::ProfileTree tree;
      tree.add(hec::obs::tracer());
      tree.write_json(out);
    });
    // stderr, not stdout: bench stdout is the paper tables and may be
    // diffed or parsed by scripts.
    std::fprintf(stderr, "[bench-harness] wall_s=%.3f peak_rss_mb=%.1f\n",
                 wall.count(), peak_rss_mib());
  }
};

const HarnessReporter harness_reporter;

}  // namespace

CharacterizeOptions bench_characterize_options() {
  CharacterizeOptions opts;
  opts.baseline_units = 10000.0;
  opts.seed = 42;  // fixed: bench output is reproducible run to run
  return opts;
}

WorkloadModels build_models(const Workload& workload,
                            EnergyAccounting accounting) {
  const NodeSpec arm_spec = arm_cortex_a9();
  const NodeSpec amd_spec = amd_opteron_k10();
  const CharacterizeOptions opts = bench_characterize_options();
  return WorkloadModels{
      workload, arm_spec, amd_spec,
      build_node_model(arm_spec, workload, opts, accounting),
      build_node_model(amd_spec, workload, opts, accounting)};
}

std::vector<TimeEnergyPoint> to_points(
    const std::vector<ConfigOutcome>& outcomes) {
  std::vector<TimeEnergyPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  return points;
}

std::vector<ConfigOutcome> evaluate_space(const WorkloadModels& models,
                                          int max_arm, int max_amd,
                                          double work_units) {
  const auto configs = enumerate_configs(models.arm_spec, models.amd_spec,
                                         EnumerationLimits{max_arm, max_amd});
  const ConfigEvaluator eval(models.arm, models.amd);
  return eval.evaluate_all(configs, work_units);
}

std::vector<TimeEnergyPoint> filtered_frontier(
    const std::vector<ConfigOutcome>& outcomes, SideFilter filter) {
  std::vector<TimeEnergyPoint> points;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ClusterConfig& c = outcomes[i].config;
    const bool keep = filter == SideFilter::kAll ||
                      (filter == SideFilter::kHeterogeneous &&
                       c.heterogeneous()) ||
                      (filter == SideFilter::kArmOnly && c.uses_arm() &&
                       !c.uses_amd()) ||
                      (filter == SideFilter::kAmdOnly && c.uses_amd() &&
                       !c.uses_arm());
    if (keep) points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  return pareto_frontier(points);
}

std::string describe(const ClusterConfig& config) {
  std::ostringstream out;
  bool first = true;
  if (config.uses_arm()) {
    out << "ARM " << config.arm.nodes << "(" << config.arm.cores << "c@"
        << config.arm.f_ghz << "GHz)";
    first = false;
  }
  if (config.uses_amd()) {
    if (!first) out << " + ";
    out << "AMD " << config.amd.nodes << "(" << config.amd.cores << "c@"
        << config.amd.f_ghz << "GHz)";
  }
  return out.str();
}

CsvFile::CsvFile(const std::string& name)
    : path_(name + ".csv"), writer_(out_) {}

CsvFile::~CsvFile() {
  try {
    hec::util::atomic_write_file(path_, out_.str());
  } catch (const std::exception& e) {
    std::cerr << "[csv] " << e.what() << "\n";
    std::exit(hec::util::kExitIoError);
  }
  std::cout << "\n[csv] wrote " << path_ << " (" << writer_.rows_written()
            << " rows)\n";
}

void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n==================================================\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "==================================================\n\n";
}

void pareto_experiment(const Workload& workload, double work_units,
                       const std::string& fig_name,
                       const std::string& paper_ref) {
  banner("Energy-deadline Pareto frontier: " + workload.name, paper_ref);
  const WorkloadModels models = build_models(workload);
  const auto outcomes = evaluate_space(models, 10, 10, work_units);
  std::cout << "Evaluated " << outcomes.size()
            << " configurations (paper footnote 2: 36,380)\n";

  const auto frontier = pareto_frontier(to_points(outcomes));
  const auto arm_curve = filtered_frontier(outcomes, SideFilter::kArmOnly);
  const auto amd_curve = filtered_frontier(outcomes, SideFilter::kAmdOnly);

  auto hetero = [&](std::size_t tag) {
    return outcomes[tag].config.heterogeneous();
  };
  const auto sweet = find_sweet_region(frontier, hetero);
  const auto overlap = find_overlap_region(frontier, hetero);

  TablePrinter table({"Deadline [ms]", "Energy [J]", "Configuration"});
  table.set_alignment(
      {Align::kRight, Align::kRight, Align::kLeft});
  for (const auto& p : frontier) {
    table.add_row({TablePrinter::num(p.t_s * 1e3, 1),
                   TablePrinter::num(p.energy_j, 2),
                   describe(outcomes[p.tag].config)});
  }
  std::cout << "\nPareto frontier (" << frontier.size() << " points):\n";
  table.print(std::cout);

  std::cout << "\nHomogeneous minimum-energy curves:\n"
            << "  AMD-only: fastest "
            << TablePrinter::num(amd_curve.front().t_s * 1e3, 1)
            << " ms at " << TablePrinter::num(amd_curve.front().energy_j, 2)
            << " J; cheapest "
            << TablePrinter::num(amd_curve.back().energy_j, 2) << " J\n"
            << "  ARM-only: fastest "
            << TablePrinter::num(arm_curve.front().t_s * 1e3, 1)
            << " ms at " << TablePrinter::num(arm_curve.front().energy_j, 2)
            << " J; cheapest "
            << TablePrinter::num(arm_curve.back().energy_j, 2) << " J\n";

  if (sweet) {
    std::cout << "\nSweet region: " << sweet->size()
              << " heterogeneous points, energy "
              << TablePrinter::num(sweet->energy_upper_j, 2) << " J -> "
              << TablePrinter::num(sweet->energy_lower_j, 2)
              << " J, linear fit r^2 = "
              << TablePrinter::num(sweet->energy_vs_time.r_squared, 3)
              << " (slope "
              << TablePrinter::num(sweet->energy_vs_time.slope, 1)
              << " J/s)\n";
  } else {
    std::cout << "\nSweet region: ABSENT\n";
  }
  double overlap_span_pct = 0.0;
  if (overlap.size() >= 2) {
    overlap_span_pct = (frontier[overlap.begin].energy_j -
                        frontier[overlap.end - 1].energy_j) /
                       frontier[overlap.begin].energy_j * 100.0;
  }
  {
    using telemetry::MetricKind;
    using telemetry::report_metric;
    const std::string key = fig_name;  // e.g. "fig4_pareto_ep"
    report_metric(key + ".configs", static_cast<double>(outcomes.size()),
                  MetricKind::kCount);
    report_metric(key + ".frontier_points",
                  static_cast<double>(frontier.size()), MetricKind::kCount);
    report_metric(key + ".sweet_points",
                  sweet ? static_cast<double>(sweet->size()) : 0.0,
                  MetricKind::kCount);
    if (sweet) {
      report_metric(key + ".sweet_r_squared",
                    sweet->energy_vs_time.r_squared, MetricKind::kAccuracy);
    }
    report_metric(key + ".overlap_points",
                  static_cast<double>(overlap.size()), MetricKind::kCount);
  }
  std::cout << "Overlap region (homogeneous tail): " << overlap.size()
            << " points, energy span "
            << TablePrinter::num(overlap_span_pct, 1) << "%"
            << (workload.bottleneck == Bottleneck::kIo
                    ? " (paper: absent/flat for I/O-bound workloads)"
                    : " (paper: present for compute-bound workloads)")
            << "\n";

  CsvFile csv(fig_name);
  csv.writer().header(
      {"t_ms", "energy_j", "arm_nodes", "arm_cores", "arm_f_ghz",
       "amd_nodes", "amd_cores", "amd_f_ghz", "on_frontier"});
  std::vector<bool> on_frontier(outcomes.size(), false);
  for (const auto& p : frontier) on_frontier[p.tag] = true;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ClusterConfig& c = outcomes[i].config;
    csv.writer().row({format_double(outcomes[i].t_s * 1e3),
                      format_double(outcomes[i].energy_j),
                      std::to_string(c.arm.nodes),
                      std::to_string(c.arm.cores),
                      format_double(c.arm.f_ghz),
                      std::to_string(c.amd.nodes),
                      std::to_string(c.amd.cores),
                      format_double(c.amd.f_ghz),
                      on_frontier[i] ? "1" : "0"});
  }

  // Matching gnuplot script: the paper's scatter + frontier rendering.
  GnuplotFigure fig;
  fig.output_png = fig_name + ".png";
  fig.title = "Energy-deadline Pareto frontier: " + workload.name + " (" +
              paper_ref + ")";
  fig.x_label = "Deadline [ms]";
  fig.y_label = "Energy required for deadline [J]";
  fig.y_max = frontier.front().energy_j * 10.0;
  const std::string gp = write_gnuplot_script(
      fig_name + ".csv", fig,
      {GnuplotSeries{"All configurations", 1, 2, "", "points pt 0"},
       GnuplotSeries{"AMD-only", 1, 2, "$3 == 0", "points pt 6"},
       GnuplotSeries{"ARM-only", 1, 2, "$6 == 0", "points pt 4"},
       GnuplotSeries{"Pareto frontier", 1, 2, "$9 == 1",
                     "linespoints lw 2"}});
  std::cout << "[gnuplot] wrote " << gp << "\n";
}

namespace {
/// Shared series driver for the budget-mix and scaling figures: for each
/// (max_arm, max_amd) pool, compute the min-energy staircase and print it
/// at the given deadlines.
void mix_series(const Workload& workload, double work_units,
                const std::vector<std::pair<int, int>>& pools,
                const std::vector<double>& deadlines_ms,
                const std::string& fig_name) {
  const WorkloadModels models = build_models(workload);
  TablePrinter table([&] {
    std::vector<std::string> cols{"Mix (ARM:AMD)", "Fastest [ms]"};
    for (double d : deadlines_ms) {
      cols.push_back("E@" + TablePrinter::num(d, 0) + "ms [J]");
    }
    return cols;
  }());
  CsvFile csv(fig_name);
  csv.writer().header({"arm_max", "amd_max", "deadline_ms", "energy_j"});

  for (const auto& [max_arm, max_amd] : pools) {
    // Streaming memoized sweep: bit-identical frontier to the legacy
    // evaluate-everything pipeline (see hec/sweep), without
    // materialising the pool's full configuration space.
    SweepResult sweep =
        sweep_frontier(models.arm, models.amd,
                       EnumerationLimits{max_arm, max_amd}, work_units);
    const EnergyDeadlineCurve curve(std::move(sweep.frontier));
    telemetry::report_metric(
        fig_name + ".arm" + std::to_string(max_arm) + "_amd" +
            std::to_string(max_amd) + ".fastest_ms",
        curve.min_time_s() * 1e3, telemetry::MetricKind::kInfo, "ms");
    std::vector<std::string> row{
        "ARM " + std::to_string(max_arm) + ":AMD " + std::to_string(max_amd),
        TablePrinter::num(curve.min_time_s() * 1e3, 1)};
    for (double d : deadlines_ms) {
      const double e = curve.min_energy_j(d * 1e-3);
      row.push_back(std::isfinite(e) ? TablePrinter::num(e, 2) : "-");
      csv.writer().row({std::to_string(max_arm), std::to_string(max_amd),
                        format_double(d),
                        std::isfinite(e) ? format_double(e) : "inf"});
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Per-mix staircase plot on a log deadline axis, like Figs. 6-9.
  GnuplotFigure fig;
  fig.output_png = fig_name + ".png";
  fig.title = workload.name + " minimum energy per mix";
  fig.x_label = "Deadline [ms]";
  fig.y_label = "Minimum energy [J]";
  fig.log_x = true;
  std::vector<GnuplotSeries> series;
  for (const auto& [max_arm, max_amd] : pools) {
    series.push_back(GnuplotSeries{
        "ARM " + std::to_string(max_arm) + ":AMD " + std::to_string(max_amd),
        3, 4,
        "$1 == " + std::to_string(max_arm) +
            " && $2 == " + std::to_string(max_amd),
        "linespoints"});
  }
  const std::string gp =
      write_gnuplot_script(fig_name + ".csv", fig, series);
  std::cout << "[gnuplot] wrote " << gp << "\n";
}
}  // namespace

void mixes_experiment(const Workload& workload, double work_units,
                      const std::string& fig_name,
                      const std::string& paper_ref) {
  banner("Heterogeneous mixes under a 1 kW budget: " + workload.name,
         paper_ref);
  std::cout << "Substitution ratio 8:1 (footnote 5); each mix sweeps node "
               "counts (unused off), cores and P-states.\n\n";
  const std::vector<std::pair<int, int>> pools{
      {0, 16}, {16, 14}, {32, 12}, {48, 10}, {88, 5}, {112, 2}, {128, 0}};
  mix_series(workload, work_units, pools,
             {10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0}, fig_name);
  std::cout << "\nPaper Observation 2: replacing even a few "
               "high-performance nodes introduces a sweet region; larger "
               "ARM shares reach lower energy, but ARM-only cannot meet "
               "the tightest deadlines.\n";
}

void scaling_experiment(const Workload& workload, double work_units,
                        const std::string& fig_name,
                        const std::string& paper_ref) {
  banner("Cluster-size scaling at fixed 8:1 ratio: " + workload.name,
         paper_ref);
  const std::vector<std::pair<int, int>> pools{
      {8, 1}, {16, 2}, {32, 4}, {64, 8}, {128, 16}};
  mix_series(workload, work_units, pools,
             {10.0, 20.0, 41.0, 100.0, 165.0, 400.0, 1000.0}, fig_name);
  std::cout << "\nPaper Observation 3: growing the pool shifts the sweet "
               "region left (faster deadlines reachable) without changing "
               "its energy bounds.\n";
}

}  // namespace hec::bench
