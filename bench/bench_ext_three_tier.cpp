// Extension: three-tier heterogeneity. The paper evaluates two node
// types but presents its methodology as generic (Section II-A). This
// bench adds a middle tier — an ARM Cortex-A15-class node between the
// Cortex-A9 and the Opteron — and compares the 2-type and 3-type
// energy-deadline frontiers for EP: the middle tier densifies the sweet
// region and lowers energy at intermediate deadlines.
#include <cmath>
#include <iostream>
#include <limits>

#include "bench_common.h"
#include "hec/config/multi_space.h"
#include "hec/pareto/hypervolume.h"

int main() {
  HEC_BENCH_EXPERIMENT("ext_three_tier", kExtension, "three-tier mixes");
  using hec::TablePrinter;
  hec::bench::banner("Three-tier heterogeneous mixes (extension)",
                     "generalisation of Section IV-B");

  const hec::Workload ep = hec::workload_ep();
  const hec::CharacterizeOptions opts =
      hec::bench::bench_characterize_options();
  const hec::NodeSpec a9 = hec::arm_cortex_a9();
  const hec::NodeSpec a15 = hec::arm_cortex_a15();
  const hec::NodeSpec k10 = hec::amd_opteron_k10();
  const hec::NodeTypeModel m_a9 = build_node_model(a9, ep, opts);
  const hec::NodeTypeModel m_a15 = build_node_model(a15, ep, opts);
  const hec::NodeTypeModel m_k10 = build_node_model(k10, ep, opts);
  const double w = ep.analysis_units;

  auto frontier_of = [&](const std::vector<hec::NodeSpec>& specs,
                         const std::vector<int>& limits,
                         const std::vector<const hec::NodeTypeModel*>&
                             models) {
    const auto configs = enumerate_multi(specs, limits);
    const hec::MultiEvaluator eval(models);
    const auto outcomes = eval.evaluate_all(configs, w);
    std::vector<hec::TimeEnergyPoint> points;
    points.reserve(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
    }
    return std::pair{pareto_frontier(points), outcomes};
  };

  const auto [two_tier, two_out] =
      frontier_of({a9, k10}, {6, 6}, {&m_a9, &m_k10});
  const auto [three_tier, three_out] =
      frontier_of({a9, a15, k10}, {4, 4, 4}, {&m_a9, &m_a15, &m_k10});

  std::cout << "2-tier (6 A9 + 6 K10): frontier " << two_tier.size()
            << " points\n3-tier (4 A9 + 4 A15 + 4 K10): frontier "
            << three_tier.size() << " points\n\n";

  const hec::EnergyDeadlineCurve two_curve(two_tier);
  const hec::EnergyDeadlineCurve three_curve(three_tier);
  TablePrinter table({"Deadline [ms]", "2-tier [J]", "3-tier [J]",
                      "3-tier tiers used"});
  hec::bench::CsvFile csv("ext_three_tier");
  csv.writer().header({"deadline_ms", "energy_2tier_j", "energy_3tier_j"});
  int three_wins = 0, comparisons = 0;
  for (double d_ms : {60.0, 80.0, 100.0, 150.0, 200.0, 300.0, 500.0,
                      800.0}) {
    const double e2 = two_curve.min_energy_j(d_ms * 1e-3);
    const auto b3 = three_curve.best_for_deadline(d_ms * 1e-3);
    std::string used = "-";
    double e3 = std::numeric_limits<double>::infinity();
    if (b3) {
      e3 = b3->energy_j;
      const auto& cfg = three_out[b3->tag].config;
      used = std::to_string(cfg.per_type[0].nodes) + ":" +
             std::to_string(cfg.per_type[1].nodes) + ":" +
             std::to_string(cfg.per_type[2].nodes);
    }
    if (std::isfinite(e2) && std::isfinite(e3)) {
      ++comparisons;
      if (e3 <= e2 * (1.0 + 1e-9)) ++three_wins;
    }
    table.add_row({TablePrinter::num(d_ms, 0),
                   std::isfinite(e2) ? TablePrinter::num(e2, 2)
                                     : std::string("-"),
                   std::isfinite(e3) ? TablePrinter::num(e3, 2)
                                     : std::string("-"),
                   used});
    csv.writer().row({hec::format_double(d_ms), hec::format_double(e2),
                      hec::format_double(e3)});
  }
  table.print(std::cout);
  std::cout << "\n3-tier matches or beats 2-tier at " << three_wins << "/"
            << comparisons
            << " deadlines; the A15 middle tier carries the work whenever "
               "A9-only is too slow but the Opteron's idle floor is not "
               "yet worth paying.\n";

  // Frontier-quality comparison via the hypervolume indicator.
  const hec::ReferencePoint ref =
      hec::covering_reference(two_tier, three_tier);
  const double hv2 = hypervolume(two_tier, ref.time_s, ref.energy_j);
  const double hv3 = hypervolume(three_tier, ref.time_s, ref.energy_j);
  std::cout << "\nHypervolume (larger dominates more of the "
               "energy-deadline plane): 2-tier "
            << TablePrinter::num(hv2, 3) << " J*s, 3-tier "
            << TablePrinter::num(hv3, 3) << " J*s ("
            << TablePrinter::num((hv3 / hv2 - 1.0) * 100.0, 1)
            << "% improvement)\n";
  return 0;
}
