// Ablation: which tuning knob earns the Pareto frontier its shape? The
// configuration space sweeps three knobs per type — node count, active
// cores, P-state (DVFS). This bench recomputes the EP frontier with each
// knob frozen at its maximum and reports the energy penalty at several
// deadlines. The paper attributes the overlap region to core/DVFS
// scaling (Section IV-B); freezing those knobs must erase it.
#include <cmath>
#include <iostream>

#include "bench_common.h"

namespace {

/// Filters a configuration list to those with all cores and/or fmax.
std::vector<hec::ClusterConfig> freeze(
    const std::vector<hec::ClusterConfig>& configs, const hec::NodeSpec& arm,
    const hec::NodeSpec& amd, bool freeze_cores, bool freeze_freq) {
  std::vector<hec::ClusterConfig> out;
  for (const auto& c : configs) {
    bool keep = true;
    if (freeze_cores) {
      if (c.uses_arm() && c.arm.cores != arm.cores) keep = false;
      if (c.uses_amd() && c.amd.cores != amd.cores) keep = false;
    }
    if (freeze_freq) {
      if (c.uses_arm() && c.arm.f_ghz != arm.pstates.max_ghz()) keep = false;
      if (c.uses_amd() && c.amd.f_ghz != amd.pstates.max_ghz()) keep = false;
    }
    if (keep) out.push_back(c);
  }
  return out;
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("ablation_knobs", kAblation, "knob contributions");
  using hec::TablePrinter;
  hec::bench::banner("Knob ablation: nodes vs cores vs DVFS",
                     "Section IV-B's configuration space");

  const hec::Workload ep = hec::workload_ep();
  const hec::bench::WorkloadModels models = hec::bench::build_models(ep);
  const double w = ep.analysis_units;
  const auto all_configs = enumerate_configs(
      models.arm_spec, models.amd_spec, hec::EnumerationLimits{10, 10});
  const hec::ConfigEvaluator eval(models.arm, models.amd);

  struct Variant {
    const char* name;
    bool freeze_cores, freeze_freq;
  };
  const Variant variants[] = {
      {"full space (paper)", false, false},
      {"no core scaling", true, false},
      {"no DVFS", false, true},
      {"nodes only", true, true},
  };

  TablePrinter table({"Space", "Configs", "E@100ms [J]", "E@200ms [J]",
                      "E@300ms [J]", "E@600ms [J]"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight});
  for (const Variant& v : variants) {
    const auto configs = freeze(all_configs, models.arm_spec,
                                models.amd_spec, v.freeze_cores,
                                v.freeze_freq);
    const auto outcomes = eval.evaluate_all(configs, w);
    const hec::EnergyDeadlineCurve curve(
        pareto_frontier(hec::bench::to_points(outcomes)));
    std::vector<std::string> row{v.name, std::to_string(configs.size())};
    for (double d_ms : {100.0, 200.0, 300.0, 600.0}) {
      const double e = curve.min_energy_j(d_ms * 1e-3);
      row.push_back(std::isfinite(e) ? TablePrinter::num(e, 2)
                                     : std::string("-"));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nFreezing DVFS+cores removes the overlap region's energy "
               "decline at relaxed deadlines (the nodes-only row goes "
               "flat once ARM-only takes over), while the sweet region — "
               "driven by the node mix — survives in every variant.\n";
  return 0;
}
