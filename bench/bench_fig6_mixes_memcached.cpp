// Fig. 6: heterogeneous mixes for memcached under a 1 kW peak-power
// budget, substitution ratio 8:1 (ARM 0:AMD 16 ... ARM 128:AMD 0).
#include "bench_common.h"

int main() {
  HEC_BENCH_EXPERIMENT("fig6_mixes_memcached", kFigure, "Fig. 6");
  hec::bench::mixes_experiment(hec::workload_memcached(),
                               hec::workload_memcached().analysis_units,
                               "fig6_mixes_memcached", "Fig. 6");
  return 0;
}
