// Headline numbers (Abstract / Conclusions): switching from a
// homogeneous AMD cluster to a heterogeneous ARM+AMD cluster reduces
// energy by up to 44% for memcached and 58% for EP while meeting the
// same deadline — the paper quotes the 16 ARM : 14 AMD budget mix.
// Also validates footnote 2's 36,380-configuration count.
#include <cmath>
#include <iostream>

#include "bench_common.h"

namespace {

/// Maximum relative energy reduction of the heterogeneous pool over the
/// AMD-only pool across deadlines both can meet, restricted to
/// AMD-bearing heterogeneous frontier points (an ARM-only point is a
/// different claim — full replacement — which the paper reports too).
struct Reduction {
  double best_pct = 0.0;
  double at_deadline_ms = 0.0;
  double full_replacement_pct = 0.0;
};

Reduction headline(const hec::Workload& workload, double work_units) {
  const hec::bench::WorkloadModels models =
      hec::bench::build_models(workload);
  const auto amd_pool = hec::bench::evaluate_space(models, 0, 16, work_units);
  const auto het_pool = hec::bench::evaluate_space(models, 16, 14, work_units);

  const hec::EnergyDeadlineCurve amd_curve(
      pareto_frontier(hec::bench::to_points(amd_pool)));

  // Heterogeneous curve, AMD-bearing points only.
  std::vector<hec::TimeEnergyPoint> het_points;
  std::vector<hec::TimeEnergyPoint> all_points;
  for (std::size_t i = 0; i < het_pool.size(); ++i) {
    const hec::TimeEnergyPoint p{het_pool[i].t_s, het_pool[i].energy_j, i};
    all_points.push_back(p);
    if (het_pool[i].config.heterogeneous()) het_points.push_back(p);
  }
  const hec::EnergyDeadlineCurve het_curve(pareto_frontier(het_points));
  const hec::EnergyDeadlineCurve full_curve(pareto_frontier(all_points));

  Reduction out;
  const double lo = std::max(amd_curve.min_time_s(), het_curve.min_time_s());
  for (double d = lo; d < lo * 200.0; d *= 1.05) {
    const double e_amd = amd_curve.min_energy_j(d);
    const double e_het = het_curve.min_energy_j(d);
    const double e_full = full_curve.min_energy_j(d);
    if (!std::isfinite(e_amd) || !std::isfinite(e_het)) continue;
    const double pct = (1.0 - e_het / e_amd) * 100.0;
    if (pct > out.best_pct) {
      out.best_pct = pct;
      out.at_deadline_ms = d * 1e3;
    }
    out.full_replacement_pct = std::max(
        out.full_replacement_pct, (1.0 - e_full / e_amd) * 100.0);
  }
  return out;
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("headline_reductions", kTable, "Abstract / Sec. 6");
  using hec::TablePrinter;
  hec::bench::banner("Headline energy reductions (16 ARM : 14 AMD vs AMD-only)",
                     "Abstract / Section VI");

  const std::size_t count = hec::expected_config_count(
      hec::arm_cortex_a9(), hec::amd_opteron_k10(),
      hec::EnumerationLimits{10, 10});
  std::cout << "Configuration count for 10+10 nodes: " << count
            << " (paper footnote 2: 36,380) -> "
            << (count == 36380 ? "EXACT" : "MISMATCH") << "\n\n";

  TablePrinter table({"Workload", "Max reduction (het mix)", "At deadline",
                      "Max reduction (incl. full replacement)", "Paper"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  hec::bench::telemetry::report_metric(
      "headline.config_count", static_cast<double>(count),
      hec::bench::telemetry::MetricKind::kCount);
  const Reduction mc =
      headline(hec::workload_memcached(),
               hec::workload_memcached().analysis_units);
  table.add_row({"memcached", TablePrinter::num(mc.best_pct, 1) + "%",
                 TablePrinter::num(mc.at_deadline_ms, 1) + " ms",
                 TablePrinter::num(mc.full_replacement_pct, 1) + "%",
                 "up to 44%"});
  const Reduction ep =
      headline(hec::workload_ep(), hec::workload_ep().analysis_units);
  table.add_row({"EP", TablePrinter::num(ep.best_pct, 1) + "%",
                 TablePrinter::num(ep.at_deadline_ms, 1) + " ms",
                 TablePrinter::num(ep.full_replacement_pct, 1) + "%",
                 "up to 58%"});
  using hec::bench::telemetry::MetricKind;
  using hec::bench::telemetry::report_metric;
  report_metric("headline.memcached.reduction_pct", mc.best_pct,
                MetricKind::kAccuracy, "%");
  report_metric("headline.ep.reduction_pct", ep.best_pct,
                MetricKind::kAccuracy, "%");
  report_metric("headline.memcached.full_replacement_pct",
                mc.full_replacement_pct, MetricKind::kAccuracy, "%");
  report_metric("headline.ep.full_replacement_pct",
                ep.full_replacement_pct, MetricKind::kAccuracy, "%");
  table.print(std::cout);
  std::cout << "\nShape check: heterogeneous mixes reduce energy "
               "substantially vs AMD-only at matched deadlines -> "
            << (mc.best_pct > 20.0 && ep.best_pct > 20.0 ? "REPRODUCED"
                                                         : "NOT reproduced")
            << "\n";
  return 0;
}
