// Extension: sensitivity of Fig. 10 to the queueing model. The paper
// assumes M/D/1 (Poisson arrivals, deterministic matched service). This
// bench recomputes the minimum-energy configuration for a response-time
// SLA under burstier arrivals and noisier service (Kingman G/G/1) and
// reports how the chosen configuration and energy shift — i.e., how much
// the conclusions depend on the M/D/1 idealisation.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "hec/queueing/variants.h"

namespace {

struct Choice {
  double energy_j = std::numeric_limits<double>::infinity();
  std::string config = "-";
  double service_ms = 0.0;
};

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("ext_queueing_sensitivity", kExtension, "queueing sensitivity");
  using hec::TablePrinter;
  hec::bench::banner("Queueing-model sensitivity (extension)",
                     "Fig. 10's M/D/1 assumption, stress-tested");

  const hec::bench::WorkloadModels models =
      hec::bench::build_models(hec::workload_memcached());
  const double w = hec::workload_memcached().analysis_units;
  const auto outcomes = hec::bench::evaluate_space(models, 16, 14, w);
  const hec::ConfigEvaluator eval(models.arm, models.amd);

  const double window_s = 20.0;
  const double lambda = 2.0;          // jobs/s
  const double sla_response_s = 0.3;  // 300 ms

  struct Variant {
    const char* name;
    double ca2, cs2;
  };
  const Variant variants[] = {
      {"M/D/1 (paper)", 1.0, 0.0},
      {"M/M/1", 1.0, 1.0},
      {"bursty arrivals (ca2=4)", 4.0, 0.0},
      {"bursty + noisy service", 4.0, 0.5},
  };

  TablePrinter table({"Queue model", "Best config", "Service [ms]",
                      "Response [ms]", "Energy/window [J]",
                      "vs M/D/1"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kLeft,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight});
  double baseline = 0.0;
  for (const Variant& v : variants) {
    Choice best;
    double best_response = 0.0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const double s = outcomes[i].t_s;
      if (lambda * s >= 0.95) continue;
      const hec::GG1Kingman queue(lambda, s, v.ca2, v.cs2);
      if (queue.mean_response_s() > sla_response_s) continue;
      const double jobs = lambda * window_s;
      const double energy =
          jobs * outcomes[i].energy_j +
          (window_s - jobs * s) *
              eval.powered_idle_w(outcomes[i].config);
      if (energy < best.energy_j) {
        best.energy_j = energy;
        best.config = hec::bench::describe(outcomes[i].config);
        best.service_ms = s * 1e3;
        best_response = queue.mean_response_s() * 1e3;
      }
    }
    if (baseline == 0.0) baseline = best.energy_j;
    table.add_row(
        {v.name, best.config, TablePrinter::num(best.service_ms, 1),
         TablePrinter::num(best_response, 1),
         std::isfinite(best.energy_j)
             ? TablePrinter::num(best.energy_j, 1)
             : std::string("-"),
         std::isfinite(best.energy_j)
             ? TablePrinter::num(
                   (best.energy_j / baseline - 1.0) * 100.0, 1) + "%"
             : std::string("-")});
  }
  table.print(std::cout);
  std::cout << "\nBurstier traffic forces faster service to hold the same "
               "SLA, pulling higher-power configurations in — the paper's "
               "Observation 4 mechanism, amplified beyond M/D/1.\n";
  return 0;
}
