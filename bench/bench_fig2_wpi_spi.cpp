// Fig. 2: WPI and SPIcore stay constant as the EP problem scales through
// NPB classes A -> B -> C, on both node types. The paper uses this
// constancy to extrapolate baseline measurements of Ps to the full
// program P. (Class sizes are run through the simulator substrate; the
// chunked execution makes simulated cost independent of the unit count,
// so the full 2^28..2^32 sizes are exercised directly.)
#include <iostream>

#include "bench_common.h"
#include "hec/sim/node_sim.h"
#include "hec/workloads/ep_kernel.h"

int main() {
  HEC_BENCH_EXPERIMENT("fig2_wpi_spi", kFigure, "Fig. 2");
  using hec::TablePrinter;
  hec::bench::banner("WPI and SPIcore across problem size", "Fig. 2");

  const hec::Workload ep = hec::workload_ep();
  TablePrinter table({"Node", "Class", "Random numbers", "WPI", "SPIcore"});
  hec::bench::CsvFile csv("fig2_wpi_spi");
  csv.writer().header({"node", "class", "units", "wpi", "spi_core"});

  for (const hec::NodeSpec& spec :
       {hec::amd_opteron_k10(), hec::arm_cortex_a9()}) {
    double base_wpi = 0.0;
    std::uint64_t seed = 7;
    for (char problem_class : {'A', 'B', 'C'}) {
      const auto units =
          static_cast<double>(hec::ep_class_pairs(problem_class));
      hec::RunConfig cfg;
      cfg.cores_used = spec.cores;
      cfg.f_ghz = spec.pstates.max_ghz();
      cfg.work_units = units;
      cfg.seed = seed++;
      const hec::RunResult r =
          simulate_node(spec, ep.demand_for(spec.isa), cfg);
      table.add_row({spec.name, std::string(1, problem_class),
                     TablePrinter::num(units, 0),
                     TablePrinter::num(r.counters.wpi(), 3),
                     TablePrinter::num(r.counters.spi_core(), 3)});
      csv.writer().row({spec.name, std::string(1, problem_class),
                        hec::format_double(units),
                        hec::format_double(r.counters.wpi()),
                        hec::format_double(r.counters.spi_core())});
      if (problem_class == 'A') {
        base_wpi = r.counters.wpi();
      } else {
        const double drift =
            std::abs(r.counters.wpi() - base_wpi) / base_wpi * 100.0;
        if (drift > 5.0) {
          std::cout << "WARNING: WPI drift " << drift << "% on "
                    << spec.name << " class " << problem_class << "\n";
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper bands: AMD WPI ~0.75, ARM WPI ~0.9; both constant "
               "across classes (hypothesis of Section II-B1).\n";
  return 0;
}
