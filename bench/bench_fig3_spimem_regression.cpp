// Fig. 3: SPImem grows linearly with core clock frequency, with Pearson
// r^2 >= 0.94, for 1 core and for all cores of each node type. Measured
// with the memory-bound x264 workload exactly as the characterisation
// pipeline does, then regressed per active-core count.
#include <iostream>

#include "bench_common.h"
#include "hec/sim/node_sim.h"

int main() {
  HEC_BENCH_EXPERIMENT("fig3_spimem_regression", kFigure, "Fig. 3");
  using hec::TablePrinter;
  hec::bench::banner("SPImem regression over core frequency", "Fig. 3");

  const hec::Workload x264 = hec::workload_x264();
  const hec::CharacterizeOptions opts =
      hec::bench::bench_characterize_options();

  TablePrinter table(
      {"Node", "Cores", "Fit: SPImem(f)", "r^2", "r^2 >= 0.94"});
  hec::bench::CsvFile csv("fig3_spimem");
  csv.writer().header({"node", "cores", "f_ghz", "spi_mem"});

  bool all_linear = true;
  for (const hec::NodeSpec& spec :
       {hec::amd_opteron_k10(), hec::arm_cortex_a9()}) {
    const hec::WorkloadInputs inputs =
        characterize_workload(spec, x264.demand_for(spec.isa), opts);
    // Raw grid for the CSV (re-derived from the per-core fits' inputs is
    // not stored, so re-measure the two core counts Fig. 3 plots).
    for (int cores : {1, spec.cores}) {
      std::uint64_t seed = 1000 + static_cast<std::uint64_t>(cores);
      for (double f : spec.pstates.frequencies_ghz()) {
        hec::RunConfig rc;
        rc.cores_used = cores;
        rc.f_ghz = f;
        rc.work_units = opts.baseline_units;
        rc.seed = seed++;
        const hec::RunResult r =
            simulate_node(spec, x264.demand_for(spec.isa), rc);
        csv.writer().row({spec.name, std::to_string(cores),
                          hec::format_double(f),
                          hec::format_double(r.counters.spi_mem())});
      }
      const hec::LinearFit& fit =
          inputs.spi_mem_by_cores[static_cast<std::size_t>(cores - 1)];
      all_linear = all_linear && fit.r_squared >= 0.94;
      hec::bench::telemetry::report_metric(
          "fig3." + std::string(spec.name) + ".cores" +
              std::to_string(cores) + ".r_squared",
          fit.r_squared, hec::bench::telemetry::MetricKind::kAccuracy);
      table.add_row(
          {spec.name, std::to_string(cores),
           TablePrinter::num(fit.intercept, 3) + " + " +
               TablePrinter::num(fit.slope, 3) + "*f",
           TablePrinter::num(fit.r_squared, 4),
           fit.r_squared >= 0.94 ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: r^2 >= 0.94 everywhere -> "
            << (all_linear ? "REPRODUCED" : "NOT reproduced") << "\n";
  return 0;
}
