// Fig. 4: Pareto frontier for EP (50 million random numbers) over all
// 36,380 configurations of up to 10 ARM + 10 AMD nodes. Compute-bound,
// so the frontier shows both a heterogeneous sweet region and an
// ARM-only overlap region.
#include "bench_common.h"

int main() {
  HEC_BENCH_EXPERIMENT("fig4_pareto_ep", kFigure, "Fig. 4");
  hec::bench::pareto_experiment(hec::workload_ep(),
                                hec::workload_ep().analysis_units,
                                "fig4_pareto_ep", "Fig. 4");
  return 0;
}
