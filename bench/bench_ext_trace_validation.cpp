// Extension: multi-phase trace validation. The paper's model assumes the
// workload is many repetitions of ONE representative phase (Section II-A).
// Real programs interleave phase variants (memcached GET/SET/DELETE, x264
// I/P frames, Julius speech/silence). This bench characterises the model
// from the blended baseline as usual, then validates it against
// *multi-phase* trace executions — quantifying how much the repeating-
// phase assumption costs on non-uniform jobs.
#include <iostream>

#include "bench_common.h"
#include "hec/stats/summary.h"
#include "hec/trace/trace.h"
#include "hec/workloads/trace_builders.h"

int main() {
  HEC_BENCH_EXPERIMENT("ext_trace_validation", kExtension, "trace-driven validation");
  using hec::TablePrinter;
  hec::bench::banner(
      "Multi-phase trace validation (extension)",
      "Section II-A's repeating-phase assumption, stress-tested");

  TablePrinter table({"Workload", "Node", "Phases", "Time err[%]",
                      "Energy err[%]"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kLeft,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  double worst = 0.0;
  std::uint64_t seed = 31337;
  for (const hec::Workload& w : hec::all_workloads()) {
    const hec::bench::WorkloadModels models = hec::bench::build_models(w);
    const double units = std::min(w.validation_units, 200000.0);
    for (const hec::NodeSpec* spec : {&models.amd_spec, &models.arm_spec}) {
      const hec::NodeTypeModel& model =
          spec->isa == hec::Isa::kArmV7a ? models.arm : models.amd;
      const hec::WorkloadTrace trace =
          make_workload_trace(w, spec->isa, units);
      hec::RelativeError time_err, energy_err;
      for (int c : {1, spec->cores}) {
        for (double f : spec->pstates.frequencies_ghz()) {
          const hec::Prediction pred =
              model.predict(units, hec::NodeConfig{1, c, f});
          hec::RunConfig rc;
          rc.cores_used = c;
          rc.f_ghz = f;
          rc.seed = seed++;
          const hec::RunResult meas = simulate_trace(*spec, trace, rc);
          time_err.add(pred.t_s, meas.wall_s);
          energy_err.add(pred.energy_j(), meas.energy.total_j());
        }
      }
      worst = std::max({worst, time_err.mean_pct(), energy_err.mean_pct()});
      table.add_row({w.name, spec->name,
                     std::to_string(trace.phase_count()),
                     TablePrinter::num(time_err.mean_pct(), 1),
                     TablePrinter::num(energy_err.mean_pct(), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nWorst error on multi-phase traces: "
            << TablePrinter::num(worst, 1)
            << "% -> the single-representative-phase model "
            << (worst < 15.0 ? "holds (within the paper's 15% envelope)"
                             : "breaks down")
            << "\n";
  return 0;
}
