// Micro-benchmark: fault-tolerant sharded sweep on the ≥1M-config space.
//
// Runs the single-process streaming sweep as the identity reference,
// then the coordinator/worker sharded sweep at 1 worker and at
// min(4, cores) workers over the same EP space, then the same scaled
// run again over loopback TCP (workers dialing a listener instead of
// being forked onto pipes), and finally a kill drill that SIGKILLs two
// worker attempts mid-shard via failpoints. Gates: the merged frontier
// must equal the single-process frontier bit for bit in every run
// (including over sockets and under kills, which must also be visible
// as reassignments), scaling the workers must actually scale the wall
// clock, and the socket transport may cost at most 10% over pipes at
// the same worker count.
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hec/bench/json.h"
#include "hec/shard/shard.h"
#include "hec/shard/telemetry.h"
#include "hec/shard/transport.h"
#include "hec/shard/worker_loop.h"
#include "hec/util/env.h"
#include "hec/util/failpoint.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Remove any stale per-shard journals/results so every run is cold: a
// leftover result file would turn a measured sweep into a reuse hit.
void reset_state_dir(const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);
  for (std::size_t id = 0; id < 64; ++id) {
    std::remove(hec::shard::shard_journal_path(dir, id).c_str());
    std::remove(hec::shard::shard_result_path(dir, id).c_str());
  }
  // Telemetry sidecars are keyed by attempt ordinal; retries push the
  // ordinal past the shard count, so sweep a wider window.
  for (std::uint64_t a = 1; a <= 128; ++a) {
    std::remove(hec::shard::shard_telemetry_path(dir, a).c_str());
  }
}

bool frontiers_identical(const std::vector<hec::TimeEnergyPoint>& a,
                         const std::vector<hec::TimeEnergyPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].t_s != b[i].t_s || a[i].energy_j != b[i].energy_j ||
        a[i].tag != b[i].tag)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  HEC_BENCH_EXPERIMENT("micro_shard", kMicro, "sharded-sweep fault tolerance");
  using namespace hec;
  using namespace hec::bench;

  // Same >1M-configuration space as bench_micro_sweep, so the two
  // benches price the same work through the two engines.
  const EnumerationLimits limits{53, 53};
  const double work_units = 50e6;
  const WorkloadModels models = build_models(workload_ep());
  banner("micro shard: coordinator/worker sweep vs single process",
         "sharded-sweep fault tolerance");

  const double cores = std::max(1.0, static_cast<double>(
                                         std::thread::hardware_concurrency()));
  const std::size_t scaled_workers =
      static_cast<std::size_t>(std::min(4.0, cores));
  const std::string state_dir = "bench_micro_shard.shards";

  const auto ref_start = std::chrono::steady_clock::now();
  const SweepResult reference =
      sweep_frontier(models.arm, models.amd, limits, work_units);
  const double ref_wall_s = seconds_since(ref_start);

  shard::ShardedSweepOptions opts;
  opts.state_dir = state_dir;

  // Serial baseline: one worker process, so the speedup below measures
  // worker scaling and not thread-pool scaling inside the reference.
  opts.workers = 1;
  reset_state_dir(state_dir);
  const auto serial_start = std::chrono::steady_clock::now();
  const shard::ShardedSweepResult serial = shard::sharded_sweep_frontier(
      models.arm, models.amd, limits, work_units, opts);
  const double serial_wall_s = seconds_since(serial_start);

  // The scaled run also exercises the live status surface: the final
  // status pass is where coverage and per-attempt throughput land.
  opts.workers = scaled_workers;
  opts.status_path = state_dir + "/status.json";
  std::remove(opts.status_path.c_str());
  reset_state_dir(state_dir);
  const auto scaled_start = std::chrono::steady_clock::now();
  const shard::ShardedSweepResult scaled = shard::sharded_sweep_frontier(
      models.arm, models.amd, limits, work_units, opts);
  const double scaled_wall_s = seconds_since(scaled_start);
  opts.status_path.clear();

  // Final coverage straight from the status document (the operator's
  // view), worker-rate spread from the run's own accounting.
  double final_coverage_pct = -1.0;
  {
    std::ifstream in(state_dir + "/status.json");
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (const auto doc = hec::bench::json::Value::parse(buffer.str())) {
      final_coverage_pct = (*doc)["coverage_pct"].as_number(-1.0);
    }
  }
  double rate_min = 0.0;
  double rate_max = 0.0;
  for (const shard::ShardedSweepResult::WorkerRate& rate :
       scaled.worker_rates) {
    if (!rate.completed || rate.superseded || rate.configs_per_s <= 0.0) {
      continue;
    }
    if (rate_min == 0.0 || rate.configs_per_s < rate_min) {
      rate_min = rate.configs_per_s;
    }
    rate_max = std::max(rate_max, rate.configs_per_s);
  }
  const double rate_spread_x = rate_min > 0.0 ? rate_max / rate_min : 0.0;

  // Two more pipe runs at the same worker count: the transport-overhead
  // gate below compares best-of-three walls on both transports, so a
  // single scheduler hiccup on a small box cannot fake (or mask) a
  // regression in a sub-100ms measurement.
  double pipe_min_wall_s = scaled_wall_s;
  for (int rep = 0; rep < 2; ++rep) {
    reset_state_dir(state_dir);
    const auto rep_start = std::chrono::steady_clock::now();
    (void)shard::sharded_sweep_frontier(models.arm, models.amd, limits,
                                        work_units, opts);
    pipe_min_wall_s = std::min(pipe_min_wall_s, seconds_since(rep_start));
  }

  // Loopback-TCP leg at the same worker count: the coordinator listens
  // on an ephemeral port and the workers dial in from forked children
  // running run_two_type_worker (exactly what tools/hecsim_worker
  // does), so this prices frame CRC + poll I/O + the wire-borne result
  // frontier against the pipe transport over the identical space. The
  // listener is closed at the end of each run, so every repetition
  // binds a fresh one and forks a fresh fleet, with fresh worker state
  // dirs (a reused dir would let result-file reuse skip the compute).
  double tcp_min_wall_s = 0.0;
  bool tcp_identical = true;
  bool tcp_workers_clean = true;
  for (int rep = 0; rep < 3; ++rep) {
    shard::Listener listener(util::Endpoint{"127.0.0.1", 0});
    std::vector<pid_t> tcp_workers;
    for (std::size_t w = 0; w < scaled_workers; ++w) {
      const std::string wdir = state_dir + ".tcp_r" + std::to_string(rep) +
                               "_w" + std::to_string(w);
      reset_state_dir(wdir);
      const pid_t pid = ::fork();
      if (pid == 0) {
        shard::WorkerLoopOptions wop;
        wop.connect = {"127.0.0.1", listener.port()};
        wop.state_dir = wdir;
        try {
          const shard::WorkerLoopResult r = shard::run_two_type_worker(
              models.arm, models.amd, limits, work_units, wop);
          ::_exit(r.served ? 0 : 1);
        } catch (...) {
          ::_exit(2);
        }
      }
      tcp_workers.push_back(pid);
    }
    // Let the workers finish characterizing their own models, dial and
    // park in the handshake (the listener's backlog holds them) before
    // the clock starts. Pipe workers inherit the coordinator's
    // evaluator by fork, so charging the TCP leg for rebuilding it
    // would price process startup, not the transport.
    ::usleep(500000);
    opts.workers = scaled_workers;
    opts.listener = &listener;
    reset_state_dir(state_dir);
    const auto tcp_start = std::chrono::steady_clock::now();
    const shard::ShardedSweepResult tcp = shard::sharded_sweep_frontier(
        models.arm, models.amd, limits, work_units, opts);
    const double tcp_wall_s = seconds_since(tcp_start);
    opts.listener = nullptr;
    for (const pid_t pid : tcp_workers) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      tcp_workers_clean =
          tcp_workers_clean && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
    tcp_identical = tcp_identical && tcp.complete &&
                    frontiers_identical(tcp.frontier, reference.frontier);
    tcp_min_wall_s =
        rep == 0 ? tcp_wall_s : std::min(tcp_min_wall_s, tcp_wall_s);
  }
  const double transport_overhead_frac =
      (tcp_min_wall_s - pipe_min_wall_s) / pipe_min_wall_s;

  // Kill drill: SIGKILL the 2nd and 3rd spawned attempts mid-shard (3rd
  // progress boundary = after ~two committed epochs). Always 4 workers
  // so both ordinals exist even on small machines; the replacements
  // resume from the shard journals and the merge must not show a scar.
  opts.workers = 4;
  reset_state_dir(state_dir);
  util::set_failpoints({{"shard.attempt.2", 3, util::FailpointMode::kCrash},
                        {"shard.attempt.3", 3, util::FailpointMode::kCrash}});
  const auto kill_start = std::chrono::steady_clock::now();
  const shard::ShardedSweepResult killed = shard::sharded_sweep_frontier(
      models.arm, models.amd, limits, work_units, opts);
  const double kill_wall_s = seconds_since(kill_start);
  util::set_failpoints({});

  const bool serial_identical =
      serial.complete && frontiers_identical(serial.frontier, reference.frontier);
  const bool scaled_identical =
      scaled.complete && frontiers_identical(scaled.frontier, reference.frontier);
  const bool kill_identical =
      killed.complete && frontiers_identical(killed.frontier, reference.frontier);
  const double speedup = serial_wall_s / scaled_wall_s;

  std::printf("configs          %zu (%zu shards)\n", scaled.configs_total,
              scaled.shards_total);
  std::printf("frontier points  %zu\n", reference.frontier.size());
  std::printf("reference        %.3f s (single process)\n", ref_wall_s);
  std::printf("1 worker         %.3f s\n", serial_wall_s);
  std::printf("%zu worker(s)     %.3f s (%.2fx vs 1 worker)\n",
              scaled_workers, scaled_wall_s, speedup);
  std::printf("loopback TCP     %.3f s best-of-3 (%+.1f%% vs pipe %.3f s, "
              "workers %s)\n",
              tcp_min_wall_s, 100.0 * transport_overhead_frac,
              pipe_min_wall_s, tcp_workers_clean ? "clean" : "UNCLEAN");
  std::printf("kill drill       %.3f s, %zu reassignments, %zu spawns\n",
              kill_wall_s, killed.reassignments, killed.spawns);
  std::printf("status coverage  %.1f%% | worker rate spread %.2fx\n",
              final_coverage_pct, rate_spread_x);
  std::printf("frontier match   serial=%s scaled=%s tcp=%s killed=%s\n",
              serial_identical ? "exact" : "MISMATCH",
              scaled_identical ? "exact" : "MISMATCH",
              tcp_identical ? "exact" : "MISMATCH",
              kill_identical ? "exact" : "MISMATCH");

  namespace tel = hec::bench::telemetry;
  tel::report_metric("micro_shard.configs",
                     static_cast<double>(scaled.configs_total),
                     tel::MetricKind::kCount, "configs");
  tel::report_metric("micro_shard.frontier_identity",
                     scaled_identical ? 1.0 : 0.0, tel::MetricKind::kAccuracy,
                     "fraction");
  tel::report_metric("micro_shard.kill_identity", kill_identical ? 1.0 : 0.0,
                     tel::MetricKind::kAccuracy, "fraction");
  tel::report_metric("micro_shard.speedup_x", speedup, tel::MetricKind::kPerf,
                     "x");
  tel::report_metric("micro_shard.serial_wall_s", serial_wall_s,
                     tel::MetricKind::kPerf, "s");
  tel::report_metric("micro_shard.scaled_wall_s", scaled_wall_s,
                     tel::MetricKind::kPerf, "s");
  tel::report_metric("micro_shard.kill_wall_s", kill_wall_s,
                     tel::MetricKind::kPerf, "s");
  tel::report_metric("micro_shard.tcp_wall_s", tcp_min_wall_s,
                     tel::MetricKind::kPerf, "s");
  tel::report_metric("micro_shard.tcp_identity", tcp_identical ? 1.0 : 0.0,
                     tel::MetricKind::kAccuracy, "fraction");
  tel::report_metric("micro_shard.transport_overhead_frac",
                     transport_overhead_frac, tel::MetricKind::kPerf,
                     "fraction");
  tel::report_metric("micro_shard.kill_reassignments",
                     static_cast<double>(killed.reassignments),
                     tel::MetricKind::kCount, "reassignments");
  tel::report_metric("micro_shard.final_coverage_pct", final_coverage_pct,
                     tel::MetricKind::kAccuracy, "pct");
  // Informational: max/min completed-attempt throughput. Wide spreads
  // flag scheduling skew; timing noise keeps this out of the gate.
  tel::report_metric("micro_shard.worker_rate_spread_x", rate_spread_x,
                     tel::MetricKind::kInfo, "x");

  if (!serial_identical || !scaled_identical || !tcp_identical ||
      !kill_identical) {
    std::fprintf(stderr, "FAIL: sharded frontier differs from reference\n");
    return 1;
  }
  if (!tcp_workers_clean) {
    std::fprintf(stderr, "FAIL: a TCP worker exited unclean\n");
    return 1;
  }
  // The socket transport must stay within 10% of pipes at the same
  // worker count — a bigger gap means the framing / poll loop /
  // wire-result path regressed. The gate carries a 20ms absolute arm
  // (the comparator's max(rel, abs) idiom, hec/bench/compare.h): both
  // walls are tens of milliseconds on a small box, where one missed
  // 20ms scheduler tick is >40% relative, so a purely relative gate
  // would flake on noise. Real transport regressions dwarf the arm —
  // losing TCP_NODELAY alone costs ~40ms per shard exchange.
  const double transport_gap_s = tcp_min_wall_s - pipe_min_wall_s;
  if (transport_gap_s > std::max(0.10 * pipe_min_wall_s, 0.020)) {
    std::fprintf(stderr,
                 "FAIL: loopback TCP costs %.1f%% (+%.0f ms) over pipes "
                 "(gate 10%% with a 20 ms noise floor)\n",
                 100.0 * transport_overhead_frac, 1e3 * transport_gap_s);
    return 1;
  }
  if (final_coverage_pct != 100.0) {
    std::fprintf(stderr,
                 "FAIL: final status coverage %.3f%% (expected exactly 100)\n",
                 final_coverage_pct);
    return 1;
  }
  if (killed.reassignments < 2) {
    std::fprintf(stderr,
                 "FAIL: kill drill shows %zu reassignments (expected >= 2)\n",
                 killed.reassignments);
    return 1;
  }
  // Scaling floor at 3/4 of the ideal worker speedup (3x at 4 workers):
  // process fan-out must pay for itself wherever cores exist. On a
  // 1-core box scaled_workers == 1 and the two timed runs are the same
  // configuration — the ratio is run-to-run noise, so the floor only
  // rejects pathological overhead there. The telemetry baseline gates
  // the precise value.
  const double speedup_floor =
      scaled_workers >= 2 ? 0.75 * static_cast<double>(scaled_workers) : 0.35;
  if (speedup < speedup_floor) {
    std::fprintf(stderr, "FAIL: speedup %.2fx (floor %.2fx at %zu workers)\n",
                 speedup, speedup_floor, scaled_workers);
    return 1;
  }
  return 0;
}
