// Multi-phase trace construction for the six workloads.
//
// Each builder decomposes the registered single-phase demand into the
// program's real phase structure — memcached's GET/SET/DELETE request
// mix, x264's intra/predicted frame cadence, Julius's speech/silence
// segments — while keeping the unit-weighted blend equal to the
// registered demand (so trace executions remain consistent with the
// Table 5 calibration). Used to validate the model's "representative
// repeating phase" assumption on non-uniform jobs.
#pragma once

#include "hec/trace/trace.h"
#include "hec/workloads/workload.h"

namespace hec {

/// Builds the phase sequence of `workload` for `units` work units on the
/// given ISA. Workloads without internal phase structure (EP, RSA-2048)
/// return a single-phase trace. Preconditions: units > 0.
WorkloadTrace make_workload_trace(const Workload& workload, Isa isa,
                                  double units);

}  // namespace hec
