// HMM Viterbi decoder (the Julius speech-recognition stand-in).
//
// Julius's computational core is frame-synchronous Viterbi decoding over
// hidden Markov models with Gaussian-mixture emission densities. This
// kernel implements exactly that: log-domain Viterbi over a left-to-right
// HMM whose emissions are diagonal-covariance Gaussians evaluated on
// synthetic cepstral feature frames. One "work unit" of the workload
// profile is one audio sample (the paper's Table 3 counts samples).
#pragma once

#include <cstdint>
#include <vector>

namespace hec {

/// Diagonal-covariance Gaussian in `dims` dimensions (log-domain eval).
struct DiagGaussian {
  std::vector<double> mean;
  std::vector<double> inv_var;   ///< 1/sigma^2 per dimension
  double log_norm = 0.0;         ///< -0.5 * (d*log(2pi) + sum(log var))

  /// Log density of `frame` (frame.size() == mean.size()).
  double log_density(const std::vector<double>& frame) const;
};

/// Left-to-right HMM with self-loops and skip transitions.
struct Hmm {
  std::vector<DiagGaussian> states;          ///< emission per state
  std::vector<double> log_self;              ///< log P(stay)
  std::vector<double> log_next;              ///< log P(advance)
};

/// Builds a deterministic synthetic acoustic model.
Hmm make_test_hmm(std::size_t n_states, std::size_t dims,
                  std::uint64_t seed);

/// Builds `n_frames` synthetic feature frames that roughly follow the
/// model's state sequence (so decoding is non-degenerate).
std::vector<std::vector<double>> make_test_frames(const Hmm& hmm,
                                                  std::size_t n_frames,
                                                  std::uint64_t seed);

/// Result of decoding one utterance.
struct DecodeResult {
  double log_likelihood = 0.0;
  std::vector<std::size_t> state_path;  ///< best state per frame
};

/// Log-domain Viterbi decode; frames must all match the model dimension.
DecodeResult viterbi_decode(const Hmm& hmm,
                            const std::vector<std::vector<double>>& frames);

/// Beam-pruned Viterbi, Julius's actual decoding mode: per frame, states
/// scoring more than `beam` below the frame's best are pruned (their
/// successors can only enter through surviving states). beam must be
/// positive; an infinite beam reproduces exact Viterbi. Returns the
/// number of state evaluations skipped via `pruned_evaluations`.
struct BeamDecodeResult {
  DecodeResult result;
  std::uint64_t pruned_evaluations = 0;
};
BeamDecodeResult viterbi_decode_beam(
    const Hmm& hmm, const std::vector<std::vector<double>>& frames,
    double beam);

}  // namespace hec
