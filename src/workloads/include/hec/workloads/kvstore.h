// In-memory key-value store (the memcached stand-in).
//
// A fixed-capacity open-addressing hash table with FNV-1a hashing and
// linear probing, serving GET/SET/DELETE requests — the representative
// phase Ps of the paper's memcached workload (Section II-D1 measures one
// GET, SET and DELETE each). RequestGenerator mirrors memslap: fixed
// key/value sizes and uniform key popularity, as the paper notes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hec/util/rng.h"
#include "hec/util/zipf.h"

namespace hec {

/// Request types served by the store.
enum class KvOp { kGet, kSet, kDelete };

/// One client request.
struct KvRequest {
  KvOp op = KvOp::kGet;
  std::string key;
  std::string value;  ///< payload for SET; empty otherwise
};

/// Open-addressing hash table with linear probing and tombstone deletes.
class KvStore {
 public:
  /// Capacity is rounded up to a power of two; must be >= 2.
  explicit KvStore(std::size_t capacity);

  /// Inserts or updates; returns false when the table is full.
  bool set(const std::string& key, std::string value);
  /// Returns the stored value, or nullopt on miss.
  std::optional<std::string> get(const std::string& key) const;
  /// Removes the key; returns true when it existed.
  bool remove(const std::string& key);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Serves one request; returns the response payload size in bytes
  /// (value length for hits, 0 for misses/deletes).
  std::size_t serve(const KvRequest& req);

 private:
  enum class SlotState : std::uint8_t { kEmpty, kUsed, kTombstone };
  struct Slot {
    SlotState state = SlotState::kEmpty;
    std::string key;
    std::string value;
  };

  std::size_t probe_start(const std::string& key) const;

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

/// FNV-1a 64-bit hash.
std::uint64_t fnv1a(const std::string& data);

/// memslap-style driver: fixed key/value sizes; key popularity is
/// uniform by default (as the paper notes memslap generates) or Zipfian
/// with exponent `zipf_s` (realistic traffic per Atikoglu et al. [5]).
class RequestGenerator {
 public:
  /// get_fraction in [0,1]; the remainder splits 9:1 into SET:DELETE.
  /// zipf_s = 0 selects uniform popularity.
  RequestGenerator(std::size_t key_space, std::size_t key_bytes,
                   std::size_t value_bytes, double get_fraction,
                   std::uint64_t seed, double zipf_s = 0.0);

  KvRequest next();

 private:
  std::string make_key(std::uint64_t id) const;

  std::size_t key_space_;
  std::size_t key_bytes_;
  std::size_t value_bytes_;
  double get_fraction_;
  Rng rng_;
  std::optional<ZipfGenerator> popularity_;  ///< engaged when zipf_s > 0
};

}  // namespace hec
