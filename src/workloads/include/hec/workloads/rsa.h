// RSA-2048 verification kernel (the openssl speed stand-in).
//
// The paper's web-security workload is the RSA-2048 key verification step
// of TLS: computing s^e mod n with the public exponent e = 65537. This
// kernel implements it from scratch: fixed-width 2048-bit unsigned
// integers and CIOS Montgomery multiplication, with the 16-squarings-plus-
// one-multiply exponentiation ladder for e = 2^16 + 1. One "work unit" of
// the workload profile is one verification.
#pragma once

#include <array>
#include <cstdint>

#include "hec/util/rng.h"

namespace hec {

/// Fixed-width 2048-bit unsigned integer, little-endian 64-bit limbs.
struct BigUInt {
  static constexpr int kLimbs = 32;  // 32 x 64 = 2048 bits
  std::array<std::uint64_t, kLimbs> limb{};

  static BigUInt from_u64(std::uint64_t value);
  static BigUInt zero() { return BigUInt{}; }
  static BigUInt one() { return from_u64(1); }

  bool is_zero() const;
  bool bit(int index) const;  ///< index in [0, 2048)

  friend bool operator==(const BigUInt&, const BigUInt&) = default;
};

/// Three-way compare: -1, 0, +1.
int compare(const BigUInt& a, const BigUInt& b);

/// a + b; returns the carry out (0 or 1).
std::uint64_t add(BigUInt& a, const BigUInt& b);
/// a - b; returns the borrow out (0 or 1).
std::uint64_t sub(BigUInt& a, const BigUInt& b);

/// Adds b modulo m. Preconditions: a < m, b < m.
void mod_add(BigUInt& a, const BigUInt& b, const BigUInt& m);

/// Montgomery arithmetic context for an odd modulus.
class MontgomeryCtx {
 public:
  /// Precondition: modulus odd and greater than 1.
  explicit MontgomeryCtx(const BigUInt& modulus);

  const BigUInt& modulus() const { return n_; }

  /// Montgomery product: a * b * R^-1 mod n (R = 2^2048).
  BigUInt mul(const BigUInt& a, const BigUInt& b) const;

  /// Converts into / out of the Montgomery domain.
  BigUInt to_mont(const BigUInt& a) const;
  BigUInt from_mont(const BigUInt& a) const;

  /// base^65537 mod n — the RSA public-key verification operation.
  BigUInt pow65537(const BigUInt& base) const;

  /// General modular exponentiation (square-and-multiply, MSB first).
  BigUInt pow(const BigUInt& base, const BigUInt& exponent) const;

 private:
  BigUInt n_;
  std::uint64_t n0_inv_ = 0;  ///< -n^-1 mod 2^64
  BigUInt rr_;                ///< R^2 mod n
};

/// Deterministic odd 2048-bit test modulus with the top bit set. (A random
/// odd modulus exercises the same arithmetic as a real RSA key product.)
BigUInt rsa_test_modulus(std::uint64_t seed);

/// Uniformly random value below `modulus`.
BigUInt rsa_random_below(const BigUInt& modulus, Rng& rng);

}  // namespace hec
