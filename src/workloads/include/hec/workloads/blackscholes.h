// Black-Scholes option-pricing kernel (PARSEC blackscholes stand-in).
//
// Closed-form European option pricing with the same polynomial cumulative
// normal distribution approximation the PARSEC benchmark uses. One "work
// unit" of the workload profile is one priced option (the paper's
// representative phase for the financial workload).
#pragma once

#include <cstdint>
#include <vector>

namespace hec {

/// European option contract parameters.
struct OptionData {
  double spot = 0.0;       ///< current underlying price S
  double strike = 0.0;     ///< strike price K
  double rate = 0.0;       ///< risk-free rate r
  double volatility = 0.0; ///< sigma
  double time = 0.0;       ///< time to expiry in years
  bool is_call = true;
};

/// Cumulative standard normal distribution, Abramowitz & Stegun 26.2.17
/// polynomial approximation (PARSEC's CNDF).
double cndf(double x);

/// Black-Scholes price of one option.
double black_scholes_price(const OptionData& option);

/// Deterministic synthetic portfolio of `n` options.
std::vector<OptionData> make_portfolio(std::size_t n, std::uint64_t seed);

/// Prices a portfolio; returns the sum of prices (a checksum for tests).
double price_portfolio(const std::vector<OptionData>& options);

}  // namespace hec
