// Workload catalogue: the six datacenter programs of the paper.
//
// Each workload couples (a) a real computational kernel (see the sibling
// headers) that implements the program's representative phase Ps, and
// (b) per-ISA service-demand profiles (PhaseDemand) describing what one
// work unit asks of cores, memory and the NIC on each node type.
//
// The profiles are calibrated so the reproduction matches the paper's
// published characterisation: bottleneck classes of Table 3 (EP,
// blackscholes, Julius, RSA-2048 CPU-bound; x264 memory-bound; memcached
// I/O-bound) and the performance-to-power structure of Table 5 (ARM ahead
// everywhere except RSA-2048 — AMD's crypto-friendly instructions — and
// x264 — AMD's much higher memory bandwidth and large L3).
#pragma once

#include <string>
#include <vector>

#include "hec/hw/node_spec.h"
#include "hec/sim/phase.h"

namespace hec {

/// Dominant resource of a workload (Table 3's "Bottleneck" column).
enum class Bottleneck { kCpu, kMemory, kIo };

std::string to_string(Bottleneck b);

/// One datacenter program with per-ISA service demands.
struct Workload {
  std::string name;      ///< e.g. "EP"
  std::string domain;    ///< e.g. "HPC" (Table 3's Domain column)
  std::string unit;      ///< work-unit name, e.g. "random numbers"
  Bottleneck bottleneck = Bottleneck::kCpu;

  /// Problem size used for the paper's validation runs (Table 3).
  double validation_units = 0.0;
  /// Job size used for the paper's energy-efficiency analysis
  /// (Section IV-B: 50,000 memcached requests, 50 million EP randoms).
  double analysis_units = 0.0;

  PhaseDemand demand_arm;  ///< per-unit demands on ARMv7-A nodes
  PhaseDemand demand_amd;  ///< per-unit demands on x86-64 nodes

  /// PPR reporting (Table 5): PPR = throughput * ppr_scale / power.
  std::string ppr_unit;    ///< e.g. "(random no./s)/W"
  double ppr_scale = 1.0;  ///< converts units/s into the PPR numerator

  /// Demand profile for a node's ISA.
  const PhaseDemand& demand_for(Isa isa) const {
    return isa == Isa::kArmV7a ? demand_arm : demand_amd;
  }
};

/// Factory per program (profiles documented in each implementation file).
Workload workload_ep();
Workload workload_memcached();
Workload workload_x264();
Workload workload_blackscholes();
Workload workload_julius();
Workload workload_rsa2048();

/// All six programs in the paper's Table 3 order.
std::vector<Workload> all_workloads();

/// Extension workload (not part of the paper's evaluation): a web-search
/// leaf node in the spirit of [18] (Reddi et al.), with comparable CPU
/// and network demands so its bottleneck *crosses over* between CPU and
/// I/O as the clock scales — exercising the max() structure of Eqs. 2-3
/// in the regime the paper's six workloads never enter.
Workload workload_websearch_ext();

/// Extension workloads (currently just web search).
std::vector<Workload> extension_workloads();

/// Finds a workload by name (paper set plus extensions); throws
/// std::out_of_range when unknown.
Workload find_workload(const std::string& name);

}  // namespace hec
