// NPB EP (Embarrassingly Parallel) kernel.
//
// Generates pseudo-random pairs with the NAS linear congruential generator
// (a = 5^13, modulus 2^46), applies the Marsaglia polar acceptance test and
// tallies accepted Gaussian deviates into concentric square annuli — the
// exact computation of the NAS Parallel Benchmarks EP kernel the paper uses
// as its HPC workload. One "work unit" in the workload profile is one
// generated random number.
#pragma once

#include <array>
#include <cstdint>

namespace hec {

/// Tallies produced by an EP run.
struct EpResult {
  std::array<std::uint64_t, 10> annulus_counts{};  ///< |max(x,y)| bins
  double sum_x = 0.0;                               ///< sum of X deviates
  double sum_y = 0.0;                               ///< sum of Y deviates
  std::uint64_t pairs_accepted = 0;
};

/// NAS LCG: x_{k+1} = a * x_k mod 2^46, returning x/2^46 in (0,1).
class NasRandom {
 public:
  explicit NasRandom(double seed = 271828183.0);
  /// Next uniform deviate in (0, 1).
  double next();

  /// Jumps the stream forward by `count` draws in O(log count) — the
  /// NPB jump-ahead that makes EP embarrassingly parallel: worker w
  /// skips to its block's offset instead of replaying the prefix.
  void skip(std::uint64_t count);

 private:
  double x_;
};

/// Runs EP over `pairs` candidate pairs. Deterministic in `seed`.
EpResult ep_generate(std::uint64_t pairs, double seed = 271828183.0);

/// Parallel EP: partitions the pair range across the library thread pool
/// using jump-ahead seeding; bitwise-identical annulus counts to the
/// serial run (floating-point sums may differ only in addition order).
EpResult ep_generate_parallel(std::uint64_t pairs,
                              double seed = 271828183.0);

/// NPB problem classes used in the paper's Fig. 2 (2^k random numbers).
std::uint64_t ep_class_pairs(char problem_class);  // 'A' | 'B' | 'C'

}  // namespace hec
