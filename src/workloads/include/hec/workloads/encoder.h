// Video-encoder kernel (the x264 stand-in).
//
// Implements the memory-heavy inner loops of a block-based encoder: full-
// search SAD motion estimation against the previous frame, an 8x8 integer
// DCT on the residual, and dead-zone quantisation. One "work unit" of the
// workload profile is one encoded frame (the paper's representative phase
// for streaming video). Frames are synthetic moving gradients so runs are
// deterministic and self-contained.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace hec {

/// A grayscale frame in row-major order.
class Frame {
 public:
  Frame(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  std::uint8_t at(int x, int y) const;
  std::uint8_t& at(int x, int y);

  /// Fills with a gradient translated by (shift_x, shift_y) — consecutive
  /// synthetic frames look like a panning camera.
  void fill_synthetic(int shift_x, int shift_y);

 private:
  int width_;
  int height_;
  std::vector<std::uint8_t> pixels_;
};

/// Best motion vector and its SAD cost for one block.
struct MotionVector {
  int dx = 0;
  int dy = 0;
  std::uint64_t sad = 0;
};

/// Sum of absolute differences between a block in `cur` at (bx, by) and a
/// block in `ref` at (bx+dx, by+dy); out-of-frame pixels clamp to the edge.
std::uint64_t block_sad(const Frame& cur, const Frame& ref, int bx, int by,
                        int block, int dx, int dy);

/// Exhaustive-search motion estimation within +/- `range` pixels.
MotionVector motion_search(const Frame& cur, const Frame& ref, int bx,
                           int by, int block, int range);

/// One 8x8 coefficient tile.
struct Tile8x8 {
  std::int32_t v[8][8] = {};
};

/// Forward 8x8 DCT-II (floating-free integer approximation).
Tile8x8 dct8(const Tile8x8& in);

/// Dead-zone quantisation by `qp` (power-of-two style divisor, qp >= 1).
/// Returns the count of nonzero coefficients (a proxy for encoded bits).
int quantize8(Tile8x8& tile, int qp);

/// Zigzag scan order of an 8x8 tile (low frequencies first), as used by
/// JPEG/H.26x entropy stages.
std::array<std::pair<int, int>, 64> zigzag_order();

/// Entropy-codes one quantised tile: zigzag scan, (run, level) pairs with
/// signed-varint levels. Returns the encoded bytes.
std::vector<std::uint8_t> entropy_encode(const Tile8x8& tile);

/// Inverse of entropy_encode; throws std::invalid_argument on malformed
/// input.
Tile8x8 entropy_decode(const std::vector<std::uint8_t>& bytes);

/// Encoded-frame statistics.
struct EncodeStats {
  std::uint64_t total_sad = 0;      ///< motion-compensation residual energy
  std::uint64_t nonzero_coeffs = 0; ///< post-quantisation coefficient count
  std::uint64_t encoded_bytes = 0;  ///< entropy-coded payload size
  int blocks = 0;
};

/// Encodes `cur` against `ref`: motion search per 16x16 macroblock, then
/// DCT + quantisation + entropy coding of each 8x8 residual sub-block.
EncodeStats encode_frame(const Frame& cur, const Frame& ref, int qp = 8,
                         int search_range = 8);

}  // namespace hec
