#include "hec/workloads/blackscholes.h"

#include <cmath>

#include "hec/util/expect.h"
#include "hec/util/rng.h"

namespace hec {

double cndf(double x) {
  // Abramowitz & Stegun 26.2.17 with the PARSEC constants.
  const bool negative = x < 0.0;
  if (negative) x = -x;
  const double k = 1.0 / (1.0 + 0.2316419 * x);
  const double poly =
      k * (0.319381530 +
           k * (-0.356563782 +
                k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
  const double pdf = std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
  const double cdf = 1.0 - pdf * poly;
  return negative ? 1.0 - cdf : cdf;
}

double black_scholes_price(const OptionData& o) {
  HEC_EXPECTS(o.spot > 0.0 && o.strike > 0.0);
  HEC_EXPECTS(o.volatility > 0.0 && o.time > 0.0);
  const double sigma_sqrt_t = o.volatility * std::sqrt(o.time);
  const double d1 =
      (std::log(o.spot / o.strike) +
       (o.rate + 0.5 * o.volatility * o.volatility) * o.time) /
      sigma_sqrt_t;
  const double d2 = d1 - sigma_sqrt_t;
  const double discounted_strike = o.strike * std::exp(-o.rate * o.time);
  if (o.is_call) {
    return o.spot * cndf(d1) - discounted_strike * cndf(d2);
  }
  return discounted_strike * cndf(-d2) - o.spot * cndf(-d1);
}

std::vector<OptionData> make_portfolio(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<OptionData> options;
  options.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    OptionData o;
    o.spot = rng.uniform(10.0, 200.0);
    o.strike = o.spot * rng.uniform(0.7, 1.3);
    o.rate = rng.uniform(0.005, 0.06);
    o.volatility = rng.uniform(0.1, 0.6);
    o.time = rng.uniform(0.1, 2.0);
    o.is_call = rng.uniform() < 0.5;
    options.push_back(o);
  }
  return options;
}

double price_portfolio(const std::vector<OptionData>& options) {
  double total = 0.0;
  for (const auto& o : options) total += black_scholes_price(o);
  return total;
}

}  // namespace hec
