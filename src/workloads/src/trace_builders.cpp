#include "hec/workloads/trace_builders.h"

#include "hec/util/expect.h"

namespace hec {

namespace {

/// A phase variant: fraction of the units with scale factors applied to
/// the base demand. Factors are chosen so the unit-weighted blend of all
/// variants reproduces the base demand exactly (validated by tests).
struct Variant {
  const char* label;
  double unit_fraction;
  double inst_factor = 1.0;
  double miss_factor = 1.0;
  double bytes_factor = 1.0;
};

PhaseDemand scaled(const PhaseDemand& base, const Variant& v) {
  PhaseDemand d = base;
  d.instructions_per_unit *= v.inst_factor;
  d.mem_misses_per_kinst *= v.miss_factor;
  d.io_bytes_per_unit *= v.bytes_factor;
  return d;
}

WorkloadTrace from_variants(const PhaseDemand& base, double units,
                            std::initializer_list<Variant> variants) {
  WorkloadTrace trace;
  double fraction_total = 0.0;
  for (const Variant& v : variants) {
    fraction_total += v.unit_fraction;
    trace.append(PhaseRecord{v.label, scaled(base, v),
                             units * v.unit_fraction});
  }
  HEC_ENSURES(std::abs(fraction_total - 1.0) < 1e-9);
  return trace;
}

}  // namespace

WorkloadTrace make_workload_trace(const Workload& workload, Isa isa,
                                  double units) {
  HEC_EXPECTS(units > 0.0);
  const PhaseDemand& base = workload.demand_for(isa);

  if (workload.name == "memcached") {
    // memslap mix: 90% GETs (small requests, value-sized responses), 9%
    // SETs (value-sized requests, heavier store path), 1% DELETEs.
    // Unit-weighted factor means are 1 in every column.
    return from_variants(
        base, units,
        {Variant{"GET", 0.90, 0.90, 0.95, 1.05},
         Variant{"SET", 0.09, 1.90, 1.45, 0.55},
         Variant{"DELETE", 0.01, 1.90, 1.45, 0.55}});
  }
  if (workload.name == "x264") {
    // One intra frame per 12-frame GOP: ~2.2x the instructions (full
    // spatial prediction) but half the miss rate (no motion search over
    // the reference frame); P-frames carry the remainder.
    return from_variants(base, units,
                         {Variant{"I-frame", 1.0 / 12.0, 2.20, 0.50},
                          Variant{"P-frame", 11.0 / 12.0,
                                  (12.0 - 2.2) / 11.0,
                                  (12.0 - 0.5) / 11.0}});
  }
  if (workload.name == "Julius") {
    // Frame-synchronous decoding alternates voiced segments (wide beam,
    // more Gaussians evaluated) with silence (narrow beam).
    return from_variants(base, units,
                         {Variant{"speech", 0.70, 1.20, 1.10},
                          Variant{"silence", 0.30, 16.0 / 30.0, 23.0 / 30.0}});
  }
  if (workload.name == "blackscholes") {
    // Calls and puts differ only marginally (one extra negation chain).
    return from_variants(base, units,
                         {Variant{"call", 0.50, 1.02},
                          Variant{"put", 0.50, 0.98}});
  }
  // EP and RSA-2048 repeat one uniform phase.
  WorkloadTrace trace;
  trace.append(PhaseRecord{workload.unit, base, units});
  return trace;
}

}  // namespace hec
