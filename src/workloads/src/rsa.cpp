#include "hec/workloads/rsa.h"

#include "hec/util/expect.h"

namespace hec {

namespace {
using u64 = std::uint64_t;
__extension__ typedef unsigned __int128 u128;
}  // namespace

BigUInt BigUInt::from_u64(u64 value) {
  BigUInt x;
  x.limb[0] = value;
  return x;
}

bool BigUInt::is_zero() const {
  for (u64 l : limb) {
    if (l != 0) return false;
  }
  return true;
}

bool BigUInt::bit(int index) const {
  HEC_EXPECTS(index >= 0 && index < kLimbs * 64);
  return (limb[static_cast<std::size_t>(index / 64)] >>
          (index % 64)) & 1;
}

int compare(const BigUInt& a, const BigUInt& b) {
  for (int i = BigUInt::kLimbs - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (a.limb[idx] != b.limb[idx]) {
      return a.limb[idx] < b.limb[idx] ? -1 : 1;
    }
  }
  return 0;
}

u64 add(BigUInt& a, const BigUInt& b) {
  u64 carry = 0;
  for (int i = 0; i < BigUInt::kLimbs; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const u128 sum =
        static_cast<u128>(a.limb[idx]) + b.limb[idx] + carry;
    a.limb[idx] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  return carry;
}

u64 sub(BigUInt& a, const BigUInt& b) {
  u64 borrow = 0;
  for (int i = 0; i < BigUInt::kLimbs; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const u128 diff = static_cast<u128>(a.limb[idx]) -
                      static_cast<u128>(b.limb[idx]) - borrow;
    a.limb[idx] = static_cast<u64>(diff);
    borrow = static_cast<u64>((diff >> 64) & 1);
  }
  return borrow;
}

void mod_add(BigUInt& a, const BigUInt& b, const BigUInt& m) {
  HEC_EXPECTS(compare(a, m) < 0 && compare(b, m) < 0);
  const u64 carry = add(a, b);
  if (carry != 0 || compare(a, m) >= 0) {
    sub(a, m);
  }
}

MontgomeryCtx::MontgomeryCtx(const BigUInt& modulus) : n_(modulus) {
  HEC_EXPECTS((modulus.limb[0] & 1) != 0);
  HEC_EXPECTS(compare(modulus, BigUInt::one()) > 0);

  // n0_inv = -n^-1 mod 2^64 by Newton iteration on the low limb:
  // each step doubles the number of correct bits.
  const u64 n0 = n_.limb[0];
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - n0 * inv;
  }
  n0_inv_ = ~inv + 1;  // negate mod 2^64
  HEC_ENSURES(n0 * inv == 1);

  // R^2 mod n: start from R mod n (shift 1 left by 2048 via repeated
  // modular doubling), then double 2048 more times.
  BigUInt r = BigUInt::one();
  for (int i = 0; i < 2 * BigUInt::kLimbs * 64; ++i) {
    BigUInt doubled = r;
    mod_add(doubled, r, n_);
    r = doubled;
  }
  rr_ = r;
}

BigUInt MontgomeryCtx::mul(const BigUInt& a, const BigUInt& b) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  constexpr int kLimbs = BigUInt::kLimbs;
  u64 t[kLimbs + 2] = {};

  for (int i = 0; i < kLimbs; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    // t += a[i] * b
    u64 carry = 0;
    for (int j = 0; j < kLimbs; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      const u128 acc = static_cast<u128>(a.limb[ii]) * b.limb[jj] +
                       t[jj] + carry;
      t[jj] = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> 64);
    }
    {
      const u128 acc = static_cast<u128>(t[kLimbs]) + carry;
      t[kLimbs] = static_cast<u64>(acc);
      t[kLimbs + 1] = static_cast<u64>(acc >> 64);
    }

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const u64 m = t[0] * n0_inv_;
    carry = 0;
    {
      const u128 acc = static_cast<u128>(m) * n_.limb[0] + t[0];
      carry = static_cast<u64>(acc >> 64);
    }
    for (int j = 1; j < kLimbs; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      const u128 acc = static_cast<u128>(m) * n_.limb[jj] + t[jj] + carry;
      t[jj - 1] = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> 64);
    }
    {
      const u128 acc = static_cast<u128>(t[kLimbs]) + carry;
      t[kLimbs - 1] = static_cast<u64>(acc);
      t[kLimbs] = t[kLimbs + 1] + static_cast<u64>(acc >> 64);
      t[kLimbs + 1] = 0;
    }
  }

  BigUInt result;
  for (int j = 0; j < kLimbs; ++j) {
    const auto jj = static_cast<std::size_t>(j);
    result.limb[jj] = t[jj];
  }
  // Final conditional subtraction: result may be in [0, 2n).
  if (t[kLimbs] != 0 || compare(result, n_) >= 0) {
    sub(result, n_);
  }
  return result;
}

BigUInt MontgomeryCtx::to_mont(const BigUInt& a) const {
  return mul(a, rr_);
}

BigUInt MontgomeryCtx::from_mont(const BigUInt& a) const {
  return mul(a, BigUInt::one());
}

BigUInt MontgomeryCtx::pow65537(const BigUInt& base) const {
  // e = 2^16 + 1: sixteen squarings then one multiply by the base.
  const BigUInt base_m = to_mont(base);
  BigUInt x = base_m;
  for (int i = 0; i < 16; ++i) {
    x = mul(x, x);
  }
  x = mul(x, base_m);
  return from_mont(x);
}

BigUInt MontgomeryCtx::pow(const BigUInt& base,
                           const BigUInt& exponent) const {
  const BigUInt base_m = to_mont(base);
  BigUInt x = to_mont(BigUInt::one());
  bool seen_top_bit = false;
  for (int i = BigUInt::kLimbs * 64 - 1; i >= 0; --i) {
    if (seen_top_bit) {
      x = mul(x, x);
    }
    if (exponent.bit(i)) {
      x = mul(x, base_m);
      seen_top_bit = true;
    }
  }
  if (!seen_top_bit) {
    // exponent == 0
    return from_mont(to_mont(BigUInt::one()));
  }
  return from_mont(x);
}

BigUInt rsa_test_modulus(std::uint64_t seed) {
  Rng rng(seed);
  BigUInt n;
  for (auto& l : n.limb) l = rng();
  n.limb[0] |= 1;                              // odd
  n.limb[BigUInt::kLimbs - 1] |= 1ULL << 63;   // full 2048-bit width
  return n;
}

BigUInt rsa_random_below(const BigUInt& modulus, Rng& rng) {
  HEC_EXPECTS(!modulus.is_zero());
  // Rejection sampling from the full width.
  for (;;) {
    BigUInt x;
    for (auto& l : x.limb) l = rng();
    // Cheap range reduction: clear the top limb's high bits first.
    x.limb[BigUInt::kLimbs - 1] &=
        modulus.limb[BigUInt::kLimbs - 1] | (modulus.limb[BigUInt::kLimbs - 1] - 1);
    if (compare(x, modulus) < 0) return x;
  }
}

}  // namespace hec
