#include "hec/workloads/julius_decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hec/util/expect.h"
#include "hec/util/rng.h"

namespace hec {

double DiagGaussian::log_density(const std::vector<double>& frame) const {
  HEC_EXPECTS(frame.size() == mean.size());
  double acc = 0.0;
  for (std::size_t d = 0; d < mean.size(); ++d) {
    const double diff = frame[d] - mean[d];
    acc += diff * diff * inv_var[d];
  }
  return log_norm - 0.5 * acc;
}

Hmm make_test_hmm(std::size_t n_states, std::size_t dims,
                  std::uint64_t seed) {
  HEC_EXPECTS(n_states >= 2);
  HEC_EXPECTS(dims >= 1);
  Rng rng(seed);
  Hmm hmm;
  hmm.states.reserve(n_states);
  for (std::size_t s = 0; s < n_states; ++s) {
    DiagGaussian g;
    g.mean.resize(dims);
    g.inv_var.resize(dims);
    double log_var_sum = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
      // Means drift per state so frames can discriminate states.
      g.mean[d] = static_cast<double>(s) * 0.8 + rng.normal(0.0, 0.3);
      const double var = rng.uniform(0.5, 1.5);
      g.inv_var[d] = 1.0 / var;
      log_var_sum += std::log(var);
    }
    g.log_norm = -0.5 * (static_cast<double>(dims) *
                             std::log(2.0 * M_PI) +
                         log_var_sum);
    hmm.states.push_back(std::move(g));
    const double p_stay = rng.uniform(0.5, 0.8);
    hmm.log_self.push_back(std::log(p_stay));
    hmm.log_next.push_back(std::log(1.0 - p_stay));
  }
  return hmm;
}

std::vector<std::vector<double>> make_test_frames(const Hmm& hmm,
                                                  std::size_t n_frames,
                                                  std::uint64_t seed) {
  HEC_EXPECTS(n_frames >= 1);
  Rng rng(seed);
  const std::size_t dims = hmm.states.front().mean.size();
  std::vector<std::vector<double>> frames;
  frames.reserve(n_frames);
  // Walk through the states roughly uniformly over the utterance.
  for (std::size_t t = 0; t < n_frames; ++t) {
    const std::size_t state =
        t * hmm.states.size() / n_frames;  // monotone left-to-right
    std::vector<double> frame(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      frame[d] = hmm.states[state].mean[d] + rng.normal(0.0, 0.8);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

namespace {
/// Shared Viterbi trellis walk; `beam` <= 0 disables pruning.
BeamDecodeResult viterbi_impl(
    const Hmm& hmm, const std::vector<std::vector<double>>& frames,
    double beam) {
  HEC_EXPECTS(!frames.empty());
  const std::size_t n_states = hmm.states.size();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  std::vector<double> prev(n_states, kNegInf);
  std::vector<double> cur(n_states, kNegInf);
  std::vector<std::vector<std::uint32_t>> backptr(
      frames.size(), std::vector<std::uint32_t>(n_states, 0));

  BeamDecodeResult out;
  // Must start in state 0 (left-to-right model).
  prev[0] = hmm.states[0].log_density(frames[0]);
  double frame_best = prev[0];

  for (std::size_t t = 1; t < frames.size(); ++t) {
    const double threshold =
        beam > 0.0 ? frame_best - beam : kNegInf;
    double new_best = kNegInf;
    for (std::size_t s = 0; s < n_states; ++s) {
      double best = kNegInf;
      std::uint32_t best_from = static_cast<std::uint32_t>(s);
      if (prev[s] >= threshold) {
        best = prev[s] + hmm.log_self[s];
      }
      if (s > 0 && prev[s - 1] >= threshold) {
        const double from_prev = prev[s - 1] + hmm.log_next[s - 1];
        if (from_prev > best) {
          best = from_prev;
          best_from = static_cast<std::uint32_t>(s - 1);
        }
      }
      if (best == kNegInf) {
        // Both predecessors pruned: the emission is never evaluated.
        cur[s] = kNegInf;
        ++out.pruned_evaluations;
      } else {
        cur[s] = best + hmm.states[s].log_density(frames[t]);
      }
      backptr[t][s] = best_from;
      new_best = std::max(new_best, cur[s]);
    }
    frame_best = new_best;
    std::swap(prev, cur);
  }

  // Best final state and backtrace.
  std::size_t best_state = 0;
  for (std::size_t s = 1; s < n_states; ++s) {
    if (prev[s] > prev[best_state]) best_state = s;
  }
  out.result.log_likelihood = prev[best_state];
  out.result.state_path.resize(frames.size());
  std::size_t state = best_state;
  for (std::size_t t = frames.size(); t-- > 0;) {
    out.result.state_path[t] = state;
    if (t > 0) state = backptr[t][state];
  }
  return out;
}
}  // namespace

DecodeResult viterbi_decode(
    const Hmm& hmm, const std::vector<std::vector<double>>& frames) {
  return viterbi_impl(hmm, frames, 0.0).result;
}

BeamDecodeResult viterbi_decode_beam(
    const Hmm& hmm, const std::vector<std::vector<double>>& frames,
    double beam) {
  HEC_EXPECTS(beam > 0.0);
  return viterbi_impl(hmm, frames, beam);
}

}  // namespace hec
