#include "hec/workloads/kvstore.h"

#include <bit>

#include "hec/util/expect.h"

namespace hec {

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

KvStore::KvStore(std::size_t capacity) {
  HEC_EXPECTS(capacity >= 2);
  slots_.resize(std::bit_ceil(capacity));
}

std::size_t KvStore::probe_start(const std::string& key) const {
  return fnv1a(key) & (slots_.size() - 1);
}

bool KvStore::set(const std::string& key, std::string value) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = probe_start(key);
  std::size_t first_tombstone = slots_.size();  // sentinel: none seen
  for (std::size_t probes = 0; probes < slots_.size(); ++probes) {
    Slot& slot = slots_[idx];
    if (slot.state == SlotState::kUsed && slot.key == key) {
      slot.value = std::move(value);
      return true;
    }
    if (slot.state == SlotState::kTombstone &&
        first_tombstone == slots_.size()) {
      first_tombstone = idx;
    }
    if (slot.state == SlotState::kEmpty) {
      Slot& target =
          first_tombstone != slots_.size() ? slots_[first_tombstone] : slot;
      target.state = SlotState::kUsed;
      target.key = key;
      target.value = std::move(value);
      ++size_;
      return true;
    }
    idx = (idx + 1) & mask;
  }
  // Probed the whole table: insert into a tombstone if we found one.
  if (first_tombstone != slots_.size()) {
    Slot& target = slots_[first_tombstone];
    target.state = SlotState::kUsed;
    target.key = key;
    target.value = std::move(value);
    ++size_;
    return true;
  }
  return false;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = probe_start(key);
  for (std::size_t probes = 0; probes < slots_.size(); ++probes) {
    const Slot& slot = slots_[idx];
    if (slot.state == SlotState::kEmpty) return std::nullopt;
    if (slot.state == SlotState::kUsed && slot.key == key) return slot.value;
    idx = (idx + 1) & mask;
  }
  return std::nullopt;
}

bool KvStore::remove(const std::string& key) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = probe_start(key);
  for (std::size_t probes = 0; probes < slots_.size(); ++probes) {
    Slot& slot = slots_[idx];
    if (slot.state == SlotState::kEmpty) return false;
    if (slot.state == SlotState::kUsed && slot.key == key) {
      slot.state = SlotState::kTombstone;
      slot.key.clear();
      slot.value.clear();
      --size_;
      return true;
    }
    idx = (idx + 1) & mask;
  }
  return false;
}

std::size_t KvStore::serve(const KvRequest& req) {
  switch (req.op) {
    case KvOp::kGet: {
      auto value = get(req.key);
      return value ? value->size() : 0;
    }
    case KvOp::kSet:
      set(req.key, req.value);
      return 0;
    case KvOp::kDelete:
      remove(req.key);
      return 0;
  }
  return 0;
}

RequestGenerator::RequestGenerator(std::size_t key_space,
                                   std::size_t key_bytes,
                                   std::size_t value_bytes,
                                   double get_fraction, std::uint64_t seed,
                                   double zipf_s)
    : key_space_(key_space),
      key_bytes_(key_bytes),
      value_bytes_(value_bytes),
      get_fraction_(get_fraction),
      rng_(seed) {
  HEC_EXPECTS(key_space >= 1);
  HEC_EXPECTS(key_bytes >= 4);
  HEC_EXPECTS(get_fraction >= 0.0 && get_fraction <= 1.0);
  HEC_EXPECTS(zipf_s >= 0.0);
  if (zipf_s > 0.0) popularity_.emplace(key_space, zipf_s);
}

std::string RequestGenerator::make_key(std::uint64_t id) const {
  // Fixed-size keys, memslap-style: "k<id>" padded with 'x'.
  std::string key;
  key.reserve(key_bytes_);
  key += 'k';
  key += std::to_string(id);
  if (key.size() > key_bytes_) {
    key.erase(key_bytes_);
  } else {
    key.append(key_bytes_ - key.size(), 'x');
  }
  return key;
}

KvRequest RequestGenerator::next() {
  KvRequest req;
  const std::uint64_t id = popularity_
                               ? popularity_->next(rng_)
                               : rng_.uniform_index(key_space_);
  req.key = make_key(id);
  const double pick = rng_.uniform();
  if (pick < get_fraction_) {
    req.op = KvOp::kGet;
  } else if (pick < get_fraction_ + (1.0 - get_fraction_) * 0.9) {
    req.op = KvOp::kSet;
    req.value.assign(value_bytes_, 'v');
  } else {
    req.op = KvOp::kDelete;
  }
  return req;
}

}  // namespace hec
