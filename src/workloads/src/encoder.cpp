#include "hec/workloads/encoder.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "hec/util/expect.h"

namespace hec {

Frame::Frame(int width, int height) : width_(width), height_(height) {
  HEC_EXPECTS(width > 0 && height > 0);
  pixels_.resize(static_cast<std::size_t>(width) *
                 static_cast<std::size_t>(height));
}

std::uint8_t Frame::at(int x, int y) const {
  // Edge clamping: motion vectors may point outside the frame.
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return pixels_[static_cast<std::size_t>(y) *
                     static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

std::uint8_t& Frame::at(int x, int y) {
  HEC_EXPECTS(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<std::size_t>(y) *
                     static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

void Frame::fill_synthetic(int shift_x, int shift_y) {
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      // A diagonal gradient plus a coarse checkerboard gives the motion
      // search distinctive structure to lock onto.
      const int sx = x + shift_x;
      const int sy = y + shift_y;
      const int gradient = (sx * 3 + sy * 5) & 0xff;
      const int checker = (((sx >> 4) ^ (sy >> 4)) & 1) * 32;
      at(x, y) = static_cast<std::uint8_t>((gradient + checker) & 0xff);
    }
  }
}

std::uint64_t block_sad(const Frame& cur, const Frame& ref, int bx, int by,
                        int block, int dx, int dy) {
  HEC_EXPECTS(block > 0);
  std::uint64_t sad = 0;
  for (int y = 0; y < block; ++y) {
    for (int x = 0; x < block; ++x) {
      const int a = cur.at(bx + x, by + y);
      const int b = ref.at(bx + x + dx, by + y + dy);
      sad += static_cast<std::uint64_t>(std::abs(a - b));
    }
  }
  return sad;
}

MotionVector motion_search(const Frame& cur, const Frame& ref, int bx,
                           int by, int block, int range) {
  HEC_EXPECTS(range >= 0);
  MotionVector best;
  best.sad = block_sad(cur, ref, bx, by, block, 0, 0);
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const std::uint64_t sad = block_sad(cur, ref, bx, by, block, dx, dy);
      if (sad < best.sad) {
        best = MotionVector{dx, dy, sad};
      }
    }
  }
  return best;
}

namespace {
// One-dimensional 8-point DCT-II on integers, scaled by 4 to keep
// precision (the inverse would divide back out; we only need forward).
void dct8_1d(const std::int32_t in[8], std::int32_t out[8]) {
  // Cosine table in Q8 fixed point: cos((2i+1) * k * pi / 16) * 256.
  static constexpr std::int32_t kCos[8][8] = {
      {256, 256, 256, 256, 256, 256, 256, 256},
      {251, 213, 142, 50, -50, -142, -213, -251},
      {237, 98, -98, -237, -237, -98, 98, 237},
      {213, -50, -251, -142, 142, 251, 50, -213},
      {181, -181, -181, 181, 181, -181, -181, 181},
      {142, -251, 50, 213, -213, -50, 251, -142},
      {98, -237, 237, -98, -98, 237, -237, 98},
      {50, -142, 213, -251, 251, -213, 142, -50},
  };
  for (int k = 0; k < 8; ++k) {
    std::int64_t acc = 0;
    for (int i = 0; i < 8; ++i) {
      acc += static_cast<std::int64_t>(kCos[k][i]) * in[i];
    }
    out[k] = static_cast<std::int32_t>(acc >> 7);  // keep 2 guard bits
  }
}
}  // namespace

Tile8x8 dct8(const Tile8x8& in) {
  Tile8x8 rows, out;
  for (int r = 0; r < 8; ++r) dct8_1d(in.v[r], rows.v[r]);
  for (int c = 0; c < 8; ++c) {
    std::int32_t col[8], tcol[8];
    for (int r = 0; r < 8; ++r) col[r] = rows.v[r][c];
    dct8_1d(col, tcol);
    for (int r = 0; r < 8; ++r) out.v[r][c] = tcol[r];
  }
  return out;
}

int quantize8(Tile8x8& tile, int qp) {
  HEC_EXPECTS(qp >= 1);
  int nonzero = 0;
  const std::int32_t deadzone = qp / 2;
  for (auto& row : tile.v) {
    for (auto& coeff : row) {
      if (std::abs(coeff) <= deadzone) {
        coeff = 0;
      } else {
        coeff /= qp;
        if (coeff != 0) ++nonzero;
      }
    }
  }
  return nonzero;
}

std::array<std::pair<int, int>, 64> zigzag_order() {
  // Walk anti-diagonals, alternating direction (the JPEG scan).
  std::array<std::pair<int, int>, 64> order;
  std::size_t idx = 0;
  for (int sum = 0; sum <= 14; ++sum) {
    if (sum % 2 == 0) {
      // Up-right: row decreasing.
      for (int r = std::min(sum, 7); r >= std::max(0, sum - 7); --r) {
        order[idx++] = {r, sum - r};
      }
    } else {
      // Down-left: row increasing.
      for (int r = std::max(0, sum - 7); r <= std::min(sum, 7); ++r) {
        order[idx++] = {r, sum - r};
      }
    }
  }
  return order;
}

namespace {
void put_varint(std::vector<std::uint8_t>& out, std::uint32_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t get_varint(const std::vector<std::uint8_t>& in,
                         std::size_t& pos) {
  std::uint32_t value = 0;
  int shift = 0;
  for (;;) {
    if (pos >= in.size() || shift > 28) {
      throw std::invalid_argument("truncated or oversized varint");
    }
    const std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::uint32_t zigzag_signed(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

std::int32_t unzigzag_signed(std::uint32_t v) {
  return static_cast<std::int32_t>(v >> 1) ^
         -static_cast<std::int32_t>(v & 1);
}

constexpr std::uint32_t kEndOfBlockRun = 64;
}  // namespace

std::vector<std::uint8_t> entropy_encode(const Tile8x8& tile) {
  static const auto kOrder = zigzag_order();
  std::vector<std::uint8_t> out;
  std::uint32_t run = 0;
  for (const auto& [r, c] : kOrder) {
    const std::int32_t coeff = tile.v[r][c];
    if (coeff == 0) {
      ++run;
      continue;
    }
    put_varint(out, run);
    put_varint(out, zigzag_signed(coeff));
    run = 0;
  }
  put_varint(out, kEndOfBlockRun);  // end-of-block marker
  return out;
}

Tile8x8 entropy_decode(const std::vector<std::uint8_t>& bytes) {
  static const auto kOrder = zigzag_order();
  Tile8x8 tile;
  std::size_t pos = 0;
  std::size_t scan = 0;
  for (;;) {
    const std::uint32_t run = get_varint(bytes, pos);
    if (run == kEndOfBlockRun) break;
    if (run > kEndOfBlockRun) {
      throw std::invalid_argument("invalid run length");
    }
    scan += run;
    if (scan >= kOrder.size()) {
      throw std::invalid_argument("zigzag overrun");
    }
    const std::int32_t level = unzigzag_signed(get_varint(bytes, pos));
    if (level == 0) throw std::invalid_argument("zero level encoded");
    const auto& [r, c] = kOrder[scan];
    tile.v[r][c] = level;
    ++scan;
  }
  if (pos != bytes.size()) {
    throw std::invalid_argument("trailing bytes after end-of-block");
  }
  return tile;
}

EncodeStats encode_frame(const Frame& cur, const Frame& ref, int qp,
                         int search_range) {
  HEC_EXPECTS(cur.width() == ref.width() && cur.height() == ref.height());
  constexpr int kMacroblock = 16;
  EncodeStats stats;
  for (int by = 0; by + kMacroblock <= cur.height(); by += kMacroblock) {
    for (int bx = 0; bx + kMacroblock <= cur.width(); bx += kMacroblock) {
      const MotionVector mv =
          motion_search(cur, ref, bx, by, kMacroblock, search_range);
      stats.total_sad += mv.sad;
      ++stats.blocks;
      // Transform each 8x8 sub-block of the motion-compensated residual.
      for (int sy = 0; sy < kMacroblock; sy += 8) {
        for (int sx = 0; sx < kMacroblock; sx += 8) {
          Tile8x8 residual;
          for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 8; ++x) {
              residual.v[y][x] =
                  cur.at(bx + sx + x, by + sy + y) -
                  ref.at(bx + sx + x + mv.dx, by + sy + y + mv.dy);
            }
          }
          Tile8x8 coeffs = dct8(residual);
          stats.nonzero_coeffs +=
              static_cast<std::uint64_t>(quantize8(coeffs, qp));
          stats.encoded_bytes += entropy_encode(coeffs).size();
        }
      }
    }
  }
  return stats;
}

}  // namespace hec
