#include "hec/workloads/ep_kernel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "hec/parallel/thread_pool.h"
#include "hec/util/expect.h"

namespace hec {

namespace {
// NAS pseudorandom generator constants: a = 5^13, modulus 2^46, split into
// 23-bit halves so the double-precision multiply is exact (the classic
// randlc scheme of the NPB reference implementation).
constexpr double kR23 = 0x1p-23;
constexpr double kT23 = 0x1p23;
constexpr double kR46 = 0x1p-46;
constexpr double kT46 = 0x1p46;
constexpr double kA = 1220703125.0;  // 5^13
}  // namespace

namespace {
/// (a * x) mod 2^46 with exact 23-bit limb arithmetic (NPB randlc).
double mul46(double a, double x) {
  const double a1 = std::floor(kR23 * a);
  const double a2 = a - kT23 * a1;
  const double x1 = std::floor(kR23 * x);
  const double x2 = x - kT23 * x1;
  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = std::floor(kR23 * t1);
  const double z = t1 - kT23 * t2;
  const double t3 = kT23 * z + a2 * x2;
  const double t4 = std::floor(kR46 * t3);
  return t3 - kT46 * t4;
}

/// a^n mod 2^46 by binary exponentiation over mul46.
double pow46(double a, std::uint64_t n) {
  double result = 1.0;
  double base = a;
  while (n != 0) {
    if (n & 1) result = mul46(result, base);
    base = mul46(base, base);
    n >>= 1;
  }
  return result;
}
}  // namespace

NasRandom::NasRandom(double seed) : x_(seed) {
  HEC_EXPECTS(seed > 0.0 && seed < kT46);
}

double NasRandom::next() {
  x_ = mul46(kA, x_);
  return kR46 * x_;
}

void NasRandom::skip(std::uint64_t count) {
  // x_{k+count} = a^count * x_k mod 2^46.
  x_ = mul46(pow46(kA, count), x_);
}

namespace {
/// EP over pairs [first, first + count) of the stream seeded by `seed`.
EpResult ep_generate_range(std::uint64_t first, std::uint64_t count,
                           double seed) {
  EpResult result;
  NasRandom rng(seed);
  rng.skip(2 * first);  // two draws per candidate pair
  for (std::uint64_t i = 0; i < count; ++i) {
    const double u1 = 2.0 * rng.next() - 1.0;
    const double u2 = 2.0 * rng.next() - 1.0;
    const double t = u1 * u1 + u2 * u2;
    if (t > 1.0) continue;  // Marsaglia rejection
    const double factor = std::sqrt(-2.0 * std::log(t) / t);
    const double x = u1 * factor;
    const double y = u2 * factor;
    const auto bin = static_cast<std::size_t>(
        std::fmax(std::fabs(x), std::fabs(y)));
    if (bin < result.annulus_counts.size()) {
      ++result.annulus_counts[bin];
    }
    result.sum_x += x;
    result.sum_y += y;
    ++result.pairs_accepted;
  }
  return result;
}
}  // namespace

EpResult ep_generate(std::uint64_t pairs, double seed) {
  EpResult result;
  NasRandom rng(seed);
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const double u1 = 2.0 * rng.next() - 1.0;
    const double u2 = 2.0 * rng.next() - 1.0;
    const double t = u1 * u1 + u2 * u2;
    if (t > 1.0) continue;  // Marsaglia rejection
    const double factor = std::sqrt(-2.0 * std::log(t) / t);
    const double x = u1 * factor;
    const double y = u2 * factor;
    const auto bin = static_cast<std::size_t>(
        std::fmax(std::fabs(x), std::fabs(y)));
    if (bin < result.annulus_counts.size()) {
      ++result.annulus_counts[bin];
    }
    result.sum_x += x;
    result.sum_y += y;
    ++result.pairs_accepted;
  }
  return result;
}

EpResult ep_generate_parallel(std::uint64_t pairs, double seed) {
  if (pairs == 0) return EpResult{};
  const std::size_t workers = global_pool().thread_count();
  const std::uint64_t chunks =
      std::min<std::uint64_t>(pairs, workers * 4);
  const std::uint64_t chunk_size = (pairs + chunks - 1) / chunks;
  std::vector<EpResult> partials(static_cast<std::size_t>(chunks));
  parallel_for(0, static_cast<std::size_t>(chunks), [&](std::size_t c) {
    const std::uint64_t first = static_cast<std::uint64_t>(c) * chunk_size;
    if (first >= pairs) return;
    const std::uint64_t count = std::min(chunk_size, pairs - first);
    partials[c] = ep_generate_range(first, count, seed);
  });
  EpResult total;
  for (const EpResult& p : partials) {
    for (std::size_t bin = 0; bin < total.annulus_counts.size(); ++bin) {
      total.annulus_counts[bin] += p.annulus_counts[bin];
    }
    total.sum_x += p.sum_x;
    total.sum_y += p.sum_y;
    total.pairs_accepted += p.pairs_accepted;
  }
  return total;
}

std::uint64_t ep_class_pairs(char problem_class) {
  switch (problem_class) {
    case 'A':
      return 1ULL << 28;
    case 'B':
      return 1ULL << 30;
    case 'C':
      return 1ULL << 32;
    default:
      throw std::invalid_argument("EP problem class must be A, B or C");
  }
}

}  // namespace hec
