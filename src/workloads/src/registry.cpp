// Workload profile calibration.
//
// The per-ISA PhaseDemand numbers below are the trace-driven inputs the
// paper obtains from perf counters on its physical testbed. They are
// calibrated against the paper's published characterisation:
//  * instruction-count ratios reflect ISA differences (x86-64 needs fewer
//    instructions than ARMv7 except where ARM lacks an accelerator:
//    RSA-2048 needs ~5x more ARM instructions — AMD has crypto-friendly
//    wide multipliers; x264 needs ~2.7x — NEON vs wider SSE);
//  * WPI/SPIcore bands match Fig. 2 (AMD WPI ~0.75, ARM WPI ~0.9);
//  * miss rates produce the Table 3 bottleneck classes (x264
//    memory-bound — much worse on the L3-less ARM; the rest CPU-bound
//    except memcached, which is NIC-bound at every configuration);
//  * the resulting performance-to-power ratios reproduce Table 5 within
//    ~10% (checked by bench_table5_ppr).
#include "hec/workloads/workload.h"

#include <stdexcept>

namespace hec {

std::string to_string(Bottleneck b) {
  switch (b) {
    case Bottleneck::kCpu:
      return "CPU";
    case Bottleneck::kMemory:
      return "Memory";
    case Bottleneck::kIo:
      return "I/O";
  }
  return "unknown";
}

Workload workload_ep() {
  Workload w;
  w.name = "EP";
  w.domain = "HPC";
  w.unit = "random numbers";
  w.bottleneck = Bottleneck::kCpu;
  w.validation_units = 2147483648.0;  // 2^31 (Table 3)
  w.analysis_units = 50e6;            // Section IV-B
  w.demand_arm = {160.0, 0.88, 0.52, 0.5, 0.0, 0.0, 0.35};
  w.demand_amd = {118.0, 0.74, 0.54, 0.4, 0.0, 0.0, 0.35};
  w.ppr_unit = "(random no./s)/W";
  return w;
}

Workload workload_memcached() {
  Workload w;
  w.name = "memcached";
  w.domain = "Web Server";
  w.unit = "GET/SET operations";
  w.bottleneck = Bottleneck::kIo;
  w.validation_units = 600000.0;
  w.analysis_units = 50000.0;
  // 800 wire bytes per request (key + value + protocol), 5 us protocol
  // floor; ~0.75 KiB useful payload counted by the PPR metric.
  w.demand_arm = {3000.0, 1.00, 0.50, 8.0, 800.0, 5e-6, 0.0};
  w.demand_amd = {2200.0, 0.80, 0.45, 8.0, 800.0, 5e-6, 0.0};
  w.ppr_unit = "(kbytes/s)/W";
  w.ppr_scale = 0.75;
  return w;
}

Workload workload_x264() {
  Workload w;
  w.name = "x264";
  w.domain = "Streaming video";
  w.unit = "frames";
  w.bottleneck = Bottleneck::kMemory;
  w.validation_units = 600.0;  // 600 frames 704x576 (Table 3)
  w.analysis_units = 100.0;
  w.demand_arm = {1.8e8, 0.90, 0.60, 40.0, 0.0, 0.0, 0.05};
  w.demand_amd = {6.6e7, 0.70, 0.30, 12.0, 0.0, 0.0, 0.05};
  w.ppr_unit = "(frames/s)/W";
  return w;
}

Workload workload_blackscholes() {
  Workload w;
  w.name = "blackscholes";
  w.domain = "Financial";
  w.unit = "stock options";
  w.bottleneck = Bottleneck::kCpu;
  w.validation_units = 500000.0;
  w.analysis_units = 200000.0;
  w.demand_arm = {75000.0, 0.90, 0.60, 1.0, 0.0, 0.0, 0.60};
  w.demand_amd = {60000.0, 0.70, 0.50, 0.8, 0.0, 0.0, 0.60};
  w.ppr_unit = "(options/s)/W";
  return w;
}

Workload workload_julius() {
  Workload w;
  w.name = "Julius";
  w.domain = "Speech recognition";
  w.unit = "samples";
  w.bottleneck = Bottleneck::kCpu;
  w.validation_units = 2310559.0;
  w.analysis_units = 1e6;
  w.demand_arm = {12800.0, 0.92, 0.55, 1.5, 0.0, 0.0, 0.50};
  w.demand_amd = {8100.0, 0.72, 0.45, 1.2, 0.0, 0.0, 0.50};
  w.ppr_unit = "(samples/s)/W";
  return w;
}

Workload workload_rsa2048() {
  Workload w;
  w.name = "RSA-2048";
  w.domain = "Web security";
  w.unit = "keys verifications";
  w.bottleneck = Bottleneck::kCpu;
  w.validation_units = 5000.0;
  w.analysis_units = 5000.0;
  w.demand_arm = {140000.0, 0.95, 0.55, 0.3, 0.0, 0.0, 0.0};
  w.demand_amd = {25800.0, 0.62, 0.28, 0.3, 0.0, 0.0, 0.0};
  w.ppr_unit = "(verify/s)/W";
  return w;
}

Workload workload_websearch_ext() {
  Workload w;
  w.name = "websearch";
  w.domain = "Web search (extension)";
  w.unit = "queries";
  w.bottleneck = Bottleneck::kCpu;  // at low clocks; I/O at high clocks
  w.validation_units = 100000.0;
  w.analysis_units = 20000.0;
  // Index-scan compute comparable to the NIC's per-query cost: 300-byte
  // result payloads plus a 20 us protocol floor make the bottleneck flip
  // with the P-state (CPU-bound at fmin, NIC-bound at fmax).
  w.demand_arm = {60000.0, 0.92, 0.55, 2.0, 300.0, 2e-5, 0.1};
  w.demand_amd = {45000.0, 0.72, 0.45, 1.5, 300.0, 2e-5, 0.1};
  w.ppr_unit = "(queries/s)/W";
  return w;
}

std::vector<Workload> all_workloads() {
  return {workload_ep(),           workload_memcached(),
          workload_x264(),         workload_blackscholes(),
          workload_julius(),       workload_rsa2048()};
}

std::vector<Workload> extension_workloads() {
  return {workload_websearch_ext()};
}

Workload find_workload(const std::string& name) {
  for (const auto& w : all_workloads()) {
    if (w.name == name) return w;
  }
  for (const auto& w : extension_workloads()) {
    if (w.name == name) return w;
  }
  throw std::out_of_range("unknown workload: " + name);
}

}  // namespace hec
