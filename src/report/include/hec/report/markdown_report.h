// Markdown analysis reports.
//
// Packages a full workload analysis — characterisation, PPR, Pareto
// frontier with regions, deadline-indexed recommendations — as a
// Markdown document. The hecsim_report tool is a thin wrapper; keeping
// the generator in the library makes the content unit-testable and
// reusable (e.g. CI artefacts, dashboards).
#pragma once

#include <string>
#include <vector>

#include "hec/model/node_model.h"
#include "hec/workloads/workload.h"

namespace hec {

/// Report knobs.
struct ReportOptions {
  double work_units = 0.0;  ///< 0 = the workload's analysis size
  int max_arm_nodes = 10;
  int max_amd_nodes = 10;
  /// Deadline factors (x fastest) for the recommendation table.
  std::vector<double> deadline_factors{1.0, 2.0, 5.0};
  /// Electricity price used for the operating-cost estimate.
  double usd_per_kwh = 0.12;
};

/// Generates the full Markdown report for one workload on the paper's
/// node pair, given already-characterised models (so callers control
/// measurement cost and seeding). Preconditions: models characterised
/// for `workload`'s demands; options valid (positive pools, factors
/// >= 1).
std::string markdown_report(const Workload& workload,
                            const NodeTypeModel& arm_model,
                            const NodeTypeModel& amd_model,
                            const ReportOptions& options = {});

}  // namespace hec
