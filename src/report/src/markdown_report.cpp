#include "hec/report/markdown_report.h"

#include <algorithm>
#include <sstream>

#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/io/table.h"
#include "hec/model/bottleneck.h"
#include "hec/pareto/sweet_region.h"
#include "hec/util/expect.h"

namespace hec {

namespace {

std::string fmt(double v, int precision = 2) {
  return TablePrinter::num(v, precision);
}

std::string describe_config(const ClusterConfig& c) {
  std::ostringstream out;
  if (c.uses_arm()) {
    out << c.arm.nodes << " ARM (" << c.arm.cores << "c @ " << c.arm.f_ghz
        << " GHz)";
  }
  if (c.uses_amd()) {
    if (c.uses_arm()) out << " + ";
    out << c.amd.nodes << " AMD (" << c.amd.cores << "c @ " << c.amd.f_ghz
        << " GHz)";
  }
  return out.str();
}

void characterisation_table(std::ostringstream& md, const NodeSpec& spec,
                            const NodeTypeModel& model,
                            double probe_units) {
  md << "### " << spec.name << "\n\n";
  TablePrinter table({"Input", "Value"});
  table.set_alignment({Align::kLeft, Align::kLeft});
  const WorkloadInputs& in = model.workload();
  table.add_row({"Instructions per work unit (IPs)",
                 fmt(in.inst_per_unit, 1)});
  table.add_row({"Work cycles per instruction (WPI)", fmt(in.wpi, 3)});
  table.add_row({"Non-memory stall CPI (SPIcore)", fmt(in.spi_core, 3)});
  table.add_row({"CPU utilisation at baseline (UCPU)", fmt(in.ucpu, 3)});
  const LinearFit& fit = in.spi_mem_by_cores.back();
  table.add_row({"SPImem(f) at max cores",
                 fmt(fit.intercept, 3) + " + " + fmt(fit.slope, 3) +
                     "*f  (r^2 = " + fmt(fit.r_squared, 3) + ")"});
  table.add_row({"Idle power [W]", fmt(model.power().idle_w, 1)});
  const Prediction full = model.predict(
      probe_units, NodeConfig{1, spec.cores, spec.pstates.max_ghz()});
  table.add_row(
      {"Single-node service time (full tilt) [ms]", fmt(full.t_s * 1e3, 1)});
  table.add_row({"Classification", explain_bottleneck(full)});
  table.print_markdown(md);
  md << "\n";
}

}  // namespace

std::string markdown_report(const Workload& workload,
                            const NodeTypeModel& arm_model,
                            const NodeTypeModel& amd_model,
                            const ReportOptions& options) {
  HEC_EXPECTS(options.max_arm_nodes >= 0 && options.max_amd_nodes >= 0);
  HEC_EXPECTS(options.max_arm_nodes + options.max_amd_nodes >= 1);
  HEC_EXPECTS(options.usd_per_kwh >= 0.0);
  for (double f : options.deadline_factors) {
    HEC_EXPECTS(f >= 1.0);
  }
  const double units = options.work_units > 0.0 ? options.work_units
                                                : workload.analysis_units;
  const NodeSpec& arm = arm_model.spec();
  const NodeSpec& amd = amd_model.spec();

  const ConfigEvaluator evaluator(arm_model, amd_model);
  const auto configs = enumerate_configs(
      arm, amd,
      EnumerationLimits{options.max_arm_nodes, options.max_amd_nodes});
  const auto outcomes = evaluator.evaluate_all(configs, units);
  std::vector<TimeEnergyPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  const auto frontier = pareto_frontier(points);
  auto hetero = [&](std::size_t tag) {
    return outcomes[tag].config.heterogeneous();
  };
  const auto sweet = find_sweet_region(frontier, hetero);
  const auto overlap = find_overlap_region(frontier, hetero);

  std::ostringstream md;
  md << "# " << workload.name << " — heterogeneous cluster analysis\n\n"
     << "Job: " << fmt(units, 0) << " " << workload.unit << " ("
     << workload.domain << "); pool: up to " << options.max_arm_nodes
     << " " << arm.name << " + " << options.max_amd_nodes << " "
     << amd.name << " nodes; " << outcomes.size()
     << " configurations evaluated.\n\n";

  md << "## Node characterisation (trace-driven model inputs)\n\n";
  const double probe = std::min(units, 100000.0);
  characterisation_table(md, arm, arm_model, probe);
  characterisation_table(md, amd, amd_model, probe);

  md << "## Energy-deadline Pareto frontier\n\n";
  {
    TablePrinter table({"Deadline [ms]", "Energy [J]", "Configuration"});
    table.set_alignment({Align::kRight, Align::kRight, Align::kLeft});
    for (const auto& p : frontier) {
      table.add_row({fmt(p.t_s * 1e3, 1), fmt(p.energy_j, 2),
                     describe_config(outcomes[p.tag].config)});
    }
    table.print_markdown(md);
  }
  md << "\n";
  if (sweet) {
    md << "**Sweet region**: " << sweet->size()
       << " heterogeneous points; energy falls linearly from "
       << fmt(sweet->energy_upper_j, 2) << " J to "
       << fmt(sweet->energy_lower_j, 2) << " J (fit r^2 = "
       << fmt(sweet->energy_vs_time.r_squared, 3) << ").\n\n";
  } else {
    md << "**Sweet region**: absent for this pool.\n\n";
  }
  md << "**Overlap region**: " << overlap.size()
     << " homogeneous trailing point(s).\n\n";

  md << "## Recommendations\n\n";
  {
    TablePrinter table({"Deadline [ms]", "Configuration", "Energy [J]",
                        "Cost per 1M jobs [USD]", "Bottleneck"});
    table.set_alignment({Align::kRight, Align::kLeft, Align::kRight,
                         Align::kRight, Align::kLeft});
    const EnergyDeadlineCurve curve(frontier);
    for (double factor : options.deadline_factors) {
      const double deadline = curve.min_time_s() * factor;
      const auto best = curve.best_for_deadline(deadline);
      if (!best) continue;
      const ConfigOutcome& o = outcomes[best->tag];
      const Prediction detail =
          o.units_amd > o.units_arm
              ? amd_model.predict(std::max(o.units_amd, 1.0), o.config.amd)
              : arm_model.predict(std::max(o.units_arm, 1.0), o.config.arm);
      // 1e6 jobs at energy_j joules each -> kWh -> USD.
      const double cost_usd =
          o.energy_j * 1e6 / 3.6e6 * options.usd_per_kwh;
      table.add_row({fmt(deadline * 1e3, 1), describe_config(o.config),
                     fmt(o.energy_j, 2), fmt(cost_usd, 2),
                     explain_bottleneck(detail)});
    }
    table.print_markdown(md);
  }
  md << "\nGenerated by hecsim (mix-and-match heterogeneous cluster "
        "model).\n";
  return md.str();
}

}  // namespace hec
