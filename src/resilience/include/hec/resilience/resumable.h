// Crash-safe, deadline-bounded sweeps: the resumable twin of
// hec/sweep/sweep.h.
//
// The resumable engine runs the same claim-loop reduction as the plain
// sweeps (hec/sweep/reduction.h), but structures the index space into
// epochs of `checkpoint_blocks` blocks. At each epoch boundary it
//
//   * merges the epoch's per-worker partial frontiers into the carry
//     frontier (exact, by the compaction identity),
//   * commits {cursor, carry frontier} to the SweepJournal when the
//     checkpoint interval elapsed (atomic write → a crash at any
//     instant leaves the previous durable checkpoint intact),
//   * checks the wall-clock deadline and, when exceeded, stops cleanly
//     at the block boundary and returns the partial frontier with
//     coverage metadata instead of nothing.
//
// resume semantics: when the journal holds a checkpoint for the same
// space fingerprint, enumeration restarts at its cursor with the carry
// frontier seeded from it; the final frontier is bit-identical — same
// times, energies, tags, order — to an uninterrupted run. A corrupt or
// mismatched journal is reported (stderr warning + obs counter) and the
// sweep restarts from scratch: never a wrong frontier.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <string>

#include "hec/pareto/streaming.h"
#include "hec/sweep/slices.h"
#include "hec/sweep/sweep.h"

namespace hec::resilience {

/// Exit code for a deadline-stopped partial result, after sysexits.h
/// EX_TEMPFAIL ("try again later" — resume finishes the job).
inline constexpr int kExitPartial = 75;

/// Knobs of the checkpoint/deadline layer. The defaults checkpoint
/// roughly once per second of sweep and never stop early.
struct ResilienceOptions {
  /// Journal file; empty disables checkpointing (deadline still works).
  std::string journal_path;
  /// Blocks per epoch — the granularity of checkpoint decisions. This is
  /// a cap: spaces smaller than ~16 epochs shrink the epoch so short
  /// sweeps still reach checkpoint boundaries.
  std::size_t checkpoint_blocks = 64;
  /// Minimum wall seconds between journal commits (commits happen at
  /// the first epoch boundary after the interval; 0 commits every
  /// epoch). Correctness never depends on the cadence.
  double checkpoint_interval_s = 1.0;
  /// Wall-clock budget for enumeration; infinity = run to completion.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// False ignores an existing journal (always start from scratch).
  bool resume = true;
  /// Restricts the sweep to the index slice [range->first, range->last)
  /// of the space — the shard of a distributed sweep. nullopt sweeps the
  /// whole space. The slice bounds are folded into the journal's space
  /// fingerprint, so a journal written for one shard can never resume
  /// into another shard's slice: the mismatch is reported and that
  /// shard restarts from scratch (hec/shard relies on this).
  std::optional<IndexRange> range;
  /// Called with the absolute enumeration cursor after the resume load
  /// and at every epoch boundary. The shard worker uses it to renew its
  /// progress lease; correctness never depends on it being set.
  std::function<void(std::size_t cursor)> on_progress;
  /// Already-evaluated points of the space (genuine (t, e, tag) triples —
  /// e.g. two_type_incumbents, or another worker's merged partial) folded
  /// into the initial carry frontier so bound-and-prune fires from the
  /// first chunk. Because the points belong to the space, the completed
  /// frontier is unchanged; a partial frontier is exactly the frontier of
  /// the visited prefix ∪ the seed. The seed is fingerprinted into the
  /// journal signature, so seeded and unseeded runs (or runs with
  /// different seeds) never resume each other's journals.
  std::vector<TimeEnergyPoint> seed_frontier;
  /// Called right after every durable journal commit — the interval-gated
  /// mid-sweep commits *and* the final deadline-stop commit. Everything
  /// the hook observes (counters, spans) is therefore at least as fresh
  /// as the durable cursor; the shard worker flushes its telemetry
  /// sidecar here so telemetry durability tracks sweep durability.
  std::function<void()> on_flush;
};

/// Reads HEC_DEADLINE_S (wall seconds, > 0) from the environment;
/// returns infinity when unset or empty. Throws hec::util::EnvParseError
/// (tools map it to exit 64) on a negative, zero, NaN or
/// trailing-garbage value — a malformed deadline must never silently
/// become "no deadline".
double deadline_from_env();

/// A resumable sweep's product: the (possibly partial) frontier plus
/// coverage and checkpoint accounting.
struct ResumableSweepResult {
  std::vector<TimeEnergyPoint> frontier;
  SweepStats stats;
  std::size_t configs_visited = 0;  ///< indices evaluated (this run + resumed)
  std::size_t configs_total = 0;
  bool complete = true;             ///< false: deadline stopped the sweep
  bool resumed = false;             ///< a journal checkpoint was loaded
  std::size_t resume_cursor = 0;    ///< cursor restored from the journal
  std::size_t checkpoints = 0;      ///< journal commits this run
};

/// Two-type sweep (sweep_frontier's space). When run to completion the
/// frontier is bit-identical to sweep_frontier / the naive reference,
/// whether or not the run was interrupted and resumed any number of
/// times. A partial (deadline) result's frontier is exactly the
/// frontier of configurations [0, configs_visited).
ResumableSweepResult resumable_sweep_frontier(
    const NodeTypeModel& arm_model, const NodeTypeModel& amd_model,
    const EnumerationLimits& limits, double work_units,
    const SweepOptions& opts = {}, const ResilienceOptions& resilience = {});

/// Robust (Monte Carlo fault-model) sweep; resumable twin of
/// sweep_robust_frontier.
ResumableSweepResult resumable_sweep_robust_frontier(
    const RobustConfigEvaluator& evaluator, const EnumerationLimits& limits,
    double work_units, double deadline_s, double max_miss_prob,
    const SweepOptions& opts = {}, const ResilienceOptions& resilience = {});

/// N-type sweep; resumable twin of sweep_multi_frontier.
ResumableSweepResult resumable_sweep_multi_frontier(
    std::vector<const NodeTypeModel*> models, std::span<const int> limits,
    double work_units, const SweepOptions& opts = {},
    const ResilienceOptions& resilience = {});

/// Generic entry to the epoch-structured engine: resumable reduction of
/// an opaque index space. `consume_block(first, count, acc)` evaluates
/// indices [first, first+count) into the accumulator; `signature` must
/// fingerprint everything that shapes per-index outcomes (the model
/// sweeps above show the discipline). `claim` is the block size workers
/// claim at a time. This is how hec/shard runs a caller-supplied sweep
/// body inside each worker process with full journal/resume semantics.
ResumableSweepResult resumable_sweep_indexed(
    const std::string& signature, std::size_t total, std::size_t claim,
    double work_units,
    const std::function<void(std::size_t first, std::size_t count,
                             ParetoAccumulator& acc)>& consume_block,
    const SweepOptions& opts = {}, const ResilienceOptions& resilience = {});

}  // namespace hec::resilience
