// Sweep checkpoint journal: durable snapshots of a streaming sweep.
//
// A million-config sweep_frontier run that dies mid-way (OOM kill,
// preemption, ENOSPC, ctrl-C) used to lose everything. The journal
// periodically persists the sweep's progress — the atomic block cursor
// plus the compacted partial frontier of every configuration below it —
// and resume_sweep (hec/resilience/resumable.h) restarts from the last
// durable checkpoint with a bit-identical final frontier, guaranteed by
// the compaction identity frontier(frontier(A) ∪ B) == frontier(A ∪ B)
// (hec/pareto/streaming.h).
//
// Format: hec-sweep-journal/v1, a two-line JSONL file replaced
// atomically (write-temp → fsync → rename) on every commit:
//
//   {"schema":"hec-sweep-journal/v1","space":"<layout describe()>",
//    "total":N,"work_units":W}
//   {"checkpoint":{"cursor":C,"seq":K,"frontier":[[t,e,tag],...]},
//    "crc64":"<hex FNV-1a of the checkpoint's compact serialisation>"}
//
// Numbers use shortest-round-trip rendering (hec/bench/json.h), so
// times and energies reload to the last bit. A journal that fails to
// parse, fails its CRC, or fingerprints a different space is reported
// as corrupt/mismatched — the caller restarts from scratch with a
// warning; a wrong frontier is never produced.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hec/pareto/frontier.h"

namespace hec::resilience {

inline constexpr std::string_view kJournalSchema = "hec-sweep-journal/v1";

/// One durable snapshot: every configuration index < cursor has been
/// evaluated and `frontier` is exactly the Pareto frontier over them.
struct JournalCheckpoint {
  std::size_t cursor = 0;
  std::uint64_t seq = 0;  ///< commit ordinal (for logs/tests)
  std::vector<TimeEnergyPoint> frontier;
};

/// Why a journal load produced no usable checkpoint, or kOk.
enum class JournalLoadStatus {
  kNone,      ///< no journal file: fresh start
  kOk,        ///< checkpoint loaded
  kCorrupt,   ///< unparseable / truncated / CRC mismatch: restart, warn
  kMismatch,  ///< valid journal for a *different* space: restart, warn
};
const char* to_string(JournalLoadStatus status);

struct JournalLoadResult {
  JournalLoadStatus status = JournalLoadStatus::kNone;
  JournalCheckpoint checkpoint;  ///< valid only when status == kOk
  std::string detail;            ///< human-readable reason for non-kOk
};

/// FNV-1a 64-bit, the journal's line checksum (also exposed for tests).
std::uint64_t fnv1a64(std::string_view text);

/// Owns one journal file for one sweep space. The space signature
/// (ConfigSpaceLayout::describe() plus the work parameters) fingerprints
/// the enumeration so indices never replay into a different space.
class SweepJournal {
 public:
  /// `total` is the space size; `space_signature` must be identical
  /// across the runs that are allowed to resume each other.
  SweepJournal(std::string path, std::string space_signature,
               std::size_t total, double work_units);

  const std::string& path() const { return path_; }

  /// Loads the last durable checkpoint. Never throws on bad content —
  /// corruption is a load *status*, not an error, because the correct
  /// response (restart from scratch) is always available.
  JournalLoadResult load() const;

  /// Durably commits a checkpoint (atomic whole-file replace + fsync).
  /// Throws hec::IoError on write failure. Failpoint: journal.commit.
  void commit(const JournalCheckpoint& checkpoint);

  /// Removes the journal file (sweep completed; nothing to resume).
  void remove() const;

 private:
  std::string path_;
  std::string signature_;
  std::size_t total_;
  double work_units_;
};

}  // namespace hec::resilience
