// Deterministic failpoint harness — re-export.
//
// The implementation lives in hec/util/failpoint.h so the lowest layers
// (file I/O, thread-pool workers, block claims) can hook sites without
// depending on this library; resilience is the subsystem that *drives*
// them (HEC_FAILPOINT=<site>:<nth>[:crash|error|delay] in the
// crash-restart tests and CI canaries), so the harness is also part of
// its public surface.
#pragma once

#include "hec/util/failpoint.h"  // IWYU pragma: export
