#include "hec/resilience/journal.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "hec/bench/json.h"
#include "hec/obs/obs.h"
#include "hec/util/atomic_file.h"
#include "hec/util/failpoint.h"

namespace hec::resilience {

namespace json = hec::bench::json;

const char* to_string(JournalLoadStatus status) {
  switch (status) {
    case JournalLoadStatus::kNone: return "none";
    case JournalLoadStatus::kOk: return "ok";
    case JournalLoadStatus::kCorrupt: return "corrupt";
    case JournalLoadStatus::kMismatch: return "mismatch";
  }
  return "?";
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

json::Value checkpoint_payload(const JournalCheckpoint& cp) {
  json::Value payload;
  payload["cursor"] = static_cast<double>(cp.cursor);
  payload["seq"] = static_cast<double>(cp.seq);
  json::Value::Array frontier;
  frontier.reserve(cp.frontier.size());
  for (const TimeEnergyPoint& p : cp.frontier) {
    json::Value::Array point;
    point.emplace_back(p.t_s);
    point.emplace_back(p.energy_j);
    point.emplace_back(static_cast<double>(p.tag));
    frontier.emplace_back(std::move(point));
  }
  payload["frontier"] = json::Value(std::move(frontier));
  return payload;
}

}  // namespace

SweepJournal::SweepJournal(std::string path, std::string space_signature,
                           std::size_t total, double work_units)
    : path_(std::move(path)),
      signature_(std::move(space_signature)),
      total_(total),
      work_units_(work_units) {}

JournalLoadResult SweepJournal::load() const {
  JournalLoadResult result;
  std::ifstream in(path_);
  if (!in) {
    result.status = JournalLoadStatus::kNone;
    return result;
  }
  const auto corrupt = [&](const std::string& why) {
    result.status = JournalLoadStatus::kCorrupt;
    result.detail = why;
    result.checkpoint = {};
    return result;
  };

  std::string header_line;
  if (!std::getline(in, header_line)) {
    return corrupt("empty journal file");
  }
  std::string error;
  const auto header = json::Value::parse(header_line, &error);
  if (!header) return corrupt("unparseable header: " + error);
  if (header->operator[]("schema").as_string() != kJournalSchema) {
    return corrupt("unknown schema '" +
                   header->operator[]("schema").as_string() + "'");
  }
  if (header->operator[]("space").as_string() != signature_ ||
      header->operator[]("total").as_number() !=
          static_cast<double>(total_) ||
      header->operator[]("work_units").as_number() != work_units_) {
    result.status = JournalLoadStatus::kMismatch;
    result.detail = "journal is for space '" +
                    header->operator[]("space").as_string() +
                    "', this sweep is '" + signature_ + "'";
    return result;
  }

  std::string checkpoint_line;
  if (!std::getline(in, checkpoint_line) || checkpoint_line.empty()) {
    return corrupt("missing checkpoint line");
  }
  const auto record = json::Value::parse(checkpoint_line, &error);
  if (!record) return corrupt("unparseable checkpoint: " + error);
  const json::Value& payload = record->operator[]("checkpoint");
  if (!payload.is_object()) return corrupt("checkpoint is not an object");
  const std::string want_crc = record->operator[]("crc64").as_string();
  const std::string got_crc = hex64(fnv1a64(payload.dump(/*pretty=*/false)));
  if (want_crc != got_crc) {
    return corrupt("checkpoint CRC mismatch (want " + want_crc + ", got " +
                   got_crc + ")");
  }

  JournalCheckpoint cp;
  cp.cursor = static_cast<std::size_t>(payload["cursor"].as_number());
  cp.seq = static_cast<std::uint64_t>(payload["seq"].as_number());
  if (cp.cursor > total_) return corrupt("cursor beyond space size");
  double prev_t = -1.0;
  for (const json::Value& pv : payload["frontier"].as_array()) {
    const json::Value::Array& triple = pv.as_array();
    if (triple.size() != 3) return corrupt("frontier point is not [t,e,tag]");
    TimeEnergyPoint p;
    p.t_s = triple[0].as_number();
    p.energy_j = triple[1].as_number();
    p.tag = static_cast<std::size_t>(triple[2].as_number());
    // Frontier invariant: strictly increasing time. A journal that
    // breaks it would poison the seed accumulator; reject it instead.
    if (p.t_s <= prev_t) return corrupt("frontier not strictly sorted");
    prev_t = p.t_s;
    cp.frontier.push_back(p);
  }
  result.status = JournalLoadStatus::kOk;
  result.checkpoint = std::move(cp);
  return result;
}

void SweepJournal::commit(const JournalCheckpoint& checkpoint) {
  HEC_SPAN("resilience.checkpoint");
  HEC_FAILPOINT_HIT("journal.commit");
  json::Value header;
  header["schema"] = json::Value(std::string(kJournalSchema));
  header["space"] = signature_;
  header["total"] = static_cast<double>(total_);
  header["work_units"] = work_units_;

  const json::Value payload = checkpoint_payload(checkpoint);
  const std::string payload_text = payload.dump(/*pretty=*/false);

  std::ostringstream out;
  out << header.dump(/*pretty=*/false) << "\n"
      << "{\"checkpoint\":" << payload_text << ",\"crc64\":\""
      << hex64(fnv1a64(payload_text)) << "\"}\n";
  const std::string text = out.str();
  util::atomic_write_file(path_, text);
  HEC_COUNTER_INC("resilience.checkpoints");
  HEC_COUNTER_ADD("resilience.journal_bytes",
                  static_cast<double>(text.size()));
}

void SweepJournal::remove() const {
  std::remove(path_.c_str());
}

}  // namespace hec::resilience
