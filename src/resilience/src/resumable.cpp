#include "hec/resilience/resumable.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "hec/obs/obs.h"
#include "hec/resilience/journal.h"
#include "hec/sweep/bounds.h"
#include "hec/sweep/kernel.h"
#include "hec/sweep/reduction.h"
#include "hec/util/env.h"
#include "hec/util/expect.h"

namespace hec::resilience {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Order-sensitive fingerprint of a seed frontier (exact double bits via
/// %a), folded into the journal signature: runs whose seeds differ in
/// any point or ordering never resume each other.
std::string seed_fingerprint(const std::vector<TimeEnergyPoint>& seed) {
  std::string text;
  char buf[80];
  for (const TimeEnergyPoint& p : seed) {
    std::snprintf(buf, sizeof buf, "%a:%a:%zu;", p.t_s, p.energy_j, p.tag);
    text += buf;
  }
  std::snprintf(buf, sizeof buf, "%zu/%016llx", seed.size(),
                static_cast<unsigned long long>(fnv1a64(text)));
  return buf;
}

/// Evaluated/pruned accounting shared across sweep workers.
struct PruneCounters {
  std::atomic<std::size_t> evaluated{0};
  std::atomic<std::size_t> pruned{0};
  std::atomic<std::size_t> chunks_pruned{0};

  void store_into(SweepStats& stats) const {
    stats.evaluated = evaluated.load(std::memory_order_relaxed);
    stats.pruned = pruned.load(std::memory_order_relaxed);
    stats.blocks_pruned = chunks_pruned.load(std::memory_order_relaxed);
  }
};

/// walk_with_bounds plus counter/observability accounting (the resumable
/// twin of hec/sweep's consume_with_bounds).
template <typename EvalRange>
void consume_with_bounds(const BlockBoundTable* bounds, std::size_t first,
                         std::size_t count, ParetoAccumulator& acc,
                         PruneCounters& counters, const EvalRange& eval) {
  const BoundWalkStats walk = walk_with_bounds(bounds, first, count, acc, eval);
  counters.evaluated.fetch_add(walk.evaluated, std::memory_order_relaxed);
  counters.pruned.fetch_add(walk.pruned, std::memory_order_relaxed);
  counters.chunks_pruned.fetch_add(walk.chunks_pruned,
                                   std::memory_order_relaxed);
  if (walk.chunks_pruned > 0) {
    HEC_COUNTER_ADD("sweep.blocks_pruned",
                    static_cast<double>(walk.chunks_pruned));
  }
}

/// Epoch-structured reduction shared by the three resumable twins.
/// `signature` fingerprints the enumeration (space layout plus every
/// parameter that changes per-index outcomes), so a journal never
/// resumes into a different sweep. An options range restricts the run
/// to its slice [first, last) of the space and extends the fingerprint
/// with the slice bounds — per-shard journals are mutually mismatched
/// by construction.
template <typename ConsumeBlock>
ResumableSweepResult run_resumable(std::string signature, std::size_t total,
                                   std::size_t claim, double work_units,
                                   const SweepOptions& opts,
                                   const ResilienceOptions& res,
                                   const ConsumeBlock& consume_block) {
  HEC_EXPECTS(res.checkpoint_blocks >= 1);
  IndexRange range{0, total};
  if (res.range) {
    HEC_EXPECTS(res.range->first <= res.range->last);
    HEC_EXPECTS(res.range->last <= total);
    range = *res.range;
    signature += " shard=" + describe(range);
  }
  if (!res.seed_frontier.empty()) {
    signature += " seed=" + seed_fingerprint(res.seed_frontier);
  }
  const Clock::time_point start = Clock::now();
  ResumableSweepResult result;
  result.configs_total = range.size();
  result.stats.configs = range.size();

  std::optional<SweepJournal> journal;
  if (!res.journal_path.empty()) {
    journal.emplace(res.journal_path, signature, total, work_units);
  }

  std::size_t cursor = range.first;
  std::uint64_t seq = 0;
  // The seed pre-loads the carry on a fresh start; a resumed checkpoint
  // replaces it wholesale (its frontier already absorbed the seed —
  // signatures match only between runs with the identical seed).
  std::vector<TimeEnergyPoint> carry = res.seed_frontier;
  if (journal && res.resume) {
    const JournalLoadResult loaded = journal->load();
    switch (loaded.status) {
      case JournalLoadStatus::kNone:
        break;
      case JournalLoadStatus::kOk:
        if (loaded.checkpoint.cursor < range.first ||
            loaded.checkpoint.cursor > range.last) {
          std::fprintf(stderr,
                       "warning: sweep journal %s cursor %zu is outside "
                       "slice %s; restarting sweep from scratch\n",
                       journal->path().c_str(), loaded.checkpoint.cursor,
                       describe(range).c_str());
          HEC_COUNTER_INC("resilience.journal_corrupt");
          break;
        }
        cursor = loaded.checkpoint.cursor;
        seq = loaded.checkpoint.seq;
        carry = loaded.checkpoint.frontier;
        result.resumed = true;
        result.resume_cursor = cursor;
        HEC_COUNTER_INC("resilience.resumes");
        break;
      case JournalLoadStatus::kCorrupt:
      case JournalLoadStatus::kMismatch:
        // The only safe continuation is a fresh sweep: a damaged
        // checkpoint must never shape the frontier.
        std::fprintf(stderr,
                     "warning: sweep journal %s is %s (%s); restarting "
                     "sweep from scratch\n",
                     journal->path().c_str(), to_string(loaded.status),
                     loaded.detail.c_str());
        HEC_COUNTER_INC("resilience.journal_corrupt");
        break;
    }
  }
  if (res.on_progress) res.on_progress(cursor);

  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : global_pool();
  // checkpoint_blocks caps the epoch; small ranges shrink it to ~1/16 of
  // the sweep so short runs still reach checkpoint boundaries (epoch
  // sizing affects only checkpoint cadence, never the frontier).
  const std::size_t epoch_span = std::min(
      claim * res.checkpoint_blocks, std::max(claim, range.size() / 16));
  double last_commit_s = 0.0;
  result.complete = true;

  // Workers poll this before every block claim, so a deadline stops the
  // sweep within one block — not one epoch — while the consumed range
  // stays a contiguous, checkpointable prefix (see reduce_index_range).
  const bool bounded = res.deadline_s < std::numeric_limits<double>::infinity();
  const std::function<bool()> past_deadline = [&] {
    return seconds_since(start) >= res.deadline_s;
  };

  while (cursor < range.last) {
    const std::size_t epoch_end = std::min(range.last, cursor + epoch_span);
    // The epoch gets its own span (closed before the commit below) so a
    // worker killed mid-shard still has every completed epoch visible in
    // the telemetry it flushed at the last checkpoint — an open
    // enclosing span would die with the process.
    RangeReduction reduction = [&] {
      HEC_SPAN("resilience.epoch");
      return reduce_index_range(pool, opts.parallel, cursor, epoch_end, claim,
                                opts.compact_limit, std::move(carry),
                                consume_block,
                                bounded ? &past_deadline : nullptr);
    }();
    result.stats.blocks += reduction.blocks;
    result.stats.workers = std::max(result.stats.workers, reduction.workers);
    carry = merge_frontiers(reduction.partials);
    cursor = reduction.end;
    if (res.on_progress) res.on_progress(cursor);
    if (cursor < epoch_end) {  // the deadline stopped the claim loop
      result.complete = false;
      break;
    }
    if (journal) {
      const double elapsed = seconds_since(start);
      if (cursor < range.last &&
          elapsed - last_commit_s >= res.checkpoint_interval_s) {
        journal->commit({cursor, ++seq, carry});
        ++result.checkpoints;
        last_commit_s = elapsed;
        if (res.on_flush) res.on_flush();
      }
    }
  }

  result.configs_visited = cursor - range.first;
  result.frontier = std::move(carry);
  HEC_GAUGE_SET("resilience.configs_visited",
                static_cast<double>(result.configs_visited));
  // Mirror the plain sweeps' finish() accounting so dashboards see one
  // metric surface regardless of which engine ran.
  HEC_GAUGE_SET("sweep.frontier_size",
                static_cast<double>(result.frontier.size()));
  HEC_COUNTER_ADD("sweep.configs",
                  static_cast<double>(result.configs_visited));
  if (journal) {
    if (result.complete) {
      // Finished: nothing left to resume; a stale journal would only
      // confuse the next run.
      journal->remove();
    } else {
      // Deadline-stopped: persist the boundary we reached even if the
      // interval hadn't elapsed, so a resume loses no work.
      journal->commit({cursor, ++seq, result.frontier});
      ++result.checkpoints;
      if (res.on_flush) res.on_flush();
    }
  }
  return result;
}

/// Per-type axis fingerprint for the multi-type signature (mirrors
/// ConfigSpaceLayout::describe's per-axis text).
std::string axis_signature(const NodeSpec& spec, int limit) {
  std::string text = std::to_string(spec.cores) + "c@";
  const std::vector<double> freqs = spec.pstates.frequencies_ghz();
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i != 0) text += '/';
    text += std::to_string(freqs[i]);
  }
  return text + " limit=" + std::to_string(limit);
}

}  // namespace

double deadline_from_env() {
  // env_positive rejects negative/zero/NaN/trailing-garbage values with
  // a diagnostic (EnvParseError → exit 64): a typoed deadline must never
  // silently become "no deadline".
  return util::env_positive("HEC_DEADLINE_S")
      .value_or(std::numeric_limits<double>::infinity());
}

ResumableSweepResult resumable_sweep_frontier(
    const NodeTypeModel& arm_model, const NodeTypeModel& amd_model,
    const EnumerationLimits& limits, double work_units,
    const SweepOptions& opts, const ResilienceOptions& resilience) {
  HEC_SPAN("resilience.sweep_frontier");
  const MemoizedConfigEvaluator memo(arm_model, amd_model, limits);
  // Kernel-backed body: bound-and-prune against the accumulator's own
  // carry-seeded frontier plus the SoA inner loops. Pruning is a batched
  // prefilter, so partial frontiers keep the exact visited-prefix
  // semantics and resumed runs stay bit-identical. (The resumable path
  // never self-seeds incumbents — that would fold unvisited points into
  // a partial frontier; callers that want seeding pass
  // resilience.seed_frontier explicitly, as the shard coordinator does.)
  const TwoTypeSweepKernel kernel(memo, work_units,
                                  {opts.prune, opts.simd, opts.prune_chunk});
  ResumableSweepResult result = run_resumable(
      memo.layout().describe(), memo.size(), opts.block, work_units, opts,
      resilience,
      [&](std::size_t first, std::size_t count, ParetoAccumulator& acc) {
        kernel.consume(first, count, acc);
      });
  const KernelStats ks = kernel.stats();
  result.stats.evaluated = ks.evaluated;
  result.stats.pruned = ks.pruned;
  result.stats.blocks_pruned = ks.chunks_pruned;
  return result;
}

ResumableSweepResult resumable_sweep_robust_frontier(
    const RobustConfigEvaluator& evaluator, const EnumerationLimits& limits,
    double work_units, double deadline_s, double max_miss_prob,
    const SweepOptions& opts, const ResilienceOptions& resilience) {
  HEC_EXPECTS(max_miss_prob >= 0.0 && max_miss_prob <= 1.0);
  HEC_SPAN("resilience.sweep_robust_frontier");
  const ConfigSpaceLayout layout(evaluator.arm_model().spec(),
                                 evaluator.amd_model().spec(), limits);
  // The robust sweep's outcome at an index also depends on the job
  // deadline and admissibility threshold; fold them into the space
  // fingerprint so those runs never resume each other.
  const std::string signature =
      "robust " + layout.describe() +
      " deadline=" + std::to_string(deadline_s) +
      " max_miss=" + std::to_string(max_miss_prob);
  // Nominal lower bounds stay sound only with an inert fault model (see
  // sweep_robust_frontier); otherwise pruning disables itself.
  const bool prune =
      opts.prune && !evaluator.faults().enabled() && work_units > 0.0;
  std::optional<MemoizedConfigEvaluator> nominal;
  std::optional<BlockBoundTable> bounds;
  if (prune) {
    nominal.emplace(evaluator.arm_model(), evaluator.amd_model(), limits);
    bounds.emplace(BlockBoundTable::for_two_type(*nominal, work_units,
                                                 opts.prune_chunk));
  }
  PruneCounters counters;
  ResumableSweepResult result = run_resumable(
      signature, layout.size(), opts.robust_block, work_units, opts,
      resilience,
      [&](std::size_t first, std::size_t count, ParetoAccumulator& acc) {
        consume_with_bounds(
            bounds.has_value() ? &*bounds : nullptr, first, count, acc,
            counters,
            [&](std::size_t s, std::size_t e, ParetoAccumulator& a) {
              for (std::size_t i = s; i < e; ++i) {
                const RobustOutcome o =
                    evaluator.evaluate(layout.config(i), work_units,
                                       deadline_s, /*parallel=*/false);
                if (o.miss_prob <= max_miss_prob) {
                  a.add({o.mean_t_s, o.mean_energy_j, i});
                }
              }
            });
      });
  counters.store_into(result.stats);
  return result;
}

ResumableSweepResult resumable_sweep_indexed(
    const std::string& signature, std::size_t total, std::size_t claim,
    double work_units,
    const std::function<void(std::size_t first, std::size_t count,
                             ParetoAccumulator& acc)>& consume_block,
    const SweepOptions& opts, const ResilienceOptions& resilience) {
  HEC_EXPECTS(claim >= 1);
  HEC_EXPECTS(consume_block != nullptr);
  return run_resumable(signature, total, claim, work_units, opts, resilience,
                       consume_block);
}

ResumableSweepResult resumable_sweep_multi_frontier(
    std::vector<const NodeTypeModel*> models, std::span<const int> limits,
    double work_units, const SweepOptions& opts,
    const ResilienceOptions& resilience) {
  HEC_SPAN("resilience.sweep_multi_frontier");
  std::string signature = "multi types=" + std::to_string(models.size());
  for (std::size_t t = 0; t < models.size(); ++t) {
    HEC_EXPECTS(models[t] != nullptr);
    signature += " [" + axis_signature(models[t]->spec(), limits[t]) + "]";
  }
  const MemoizedMultiEvaluator memo(std::move(models), limits);
  signature += " total=" + std::to_string(memo.size());
  std::optional<BlockBoundTable> bounds;
  if (opts.prune && work_units > 0.0) {
    bounds.emplace(
        BlockBoundTable::for_multi(memo, work_units, opts.prune_chunk));
  }
  PruneCounters counters;
  ResumableSweepResult result = run_resumable(
      signature, memo.size(), opts.block, work_units, opts, resilience,
      [&](std::size_t first, std::size_t count, ParetoAccumulator& acc) {
        consume_with_bounds(
            bounds.has_value() ? &*bounds : nullptr, first, count, acc,
            counters,
            [&](std::size_t s, std::size_t e, ParetoAccumulator& a) {
              for (std::size_t i = s; i < e; ++i) {
                const MultiOutcome o = memo.evaluate_at(i, work_units);
                a.add({o.t_s, o.energy_j, i});
              }
              HEC_COUNTER_ADD("config.evaluations",
                              static_cast<double>(e - s));
            });
      });
  counters.store_into(result.stats);
  return result;
}

}  // namespace hec::resilience
