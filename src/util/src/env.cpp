#include "hec/util/env.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string_view>

namespace hec::util {

namespace {

/// One strict scalar parse shared by every env accessor: the whole
/// value must be consumed and the result must be finite. from_chars
/// rejects leading whitespace, "nan", "inf" and locale surprises, which
/// is exactly the strictness user-facing diagnostics need.
double parse_env_double(const char* name, std::string_view text) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value)) {
    throw EnvParseError(std::string(name) + "='" + std::string(text) +
                        "' is not a finite number");
  }
  return value;
}

const char* raw_env(const char* name) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? nullptr : raw;
}

}  // namespace

std::optional<double> env_number(const char* name) {
  const char* raw = raw_env(name);
  if (raw == nullptr) return std::nullopt;
  return parse_env_double(name, raw);
}

std::optional<double> env_positive(const char* name) {
  const char* raw = raw_env(name);
  if (raw == nullptr) return std::nullopt;
  const double value = parse_env_double(name, raw);
  if (!(value > 0.0)) {
    throw EnvParseError(std::string(name) + "='" + raw +
                        "' must be a positive number");
  }
  return value;
}

std::optional<std::size_t> env_count(const char* name) {
  const char* raw = raw_env(name);
  if (raw == nullptr) return std::nullopt;
  const double value = parse_env_double(name, raw);
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<unsigned long long>(value))) {
    throw EnvParseError(std::string(name) + "='" + raw +
                        "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace hec::util
