#include "hec/util/env.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string_view>

namespace hec::util {

namespace {

/// One strict scalar parse shared by every env accessor: the whole
/// value must be consumed and the result must be finite. from_chars
/// rejects leading whitespace, "nan", "inf" and locale surprises, which
/// is exactly the strictness user-facing diagnostics need.
double parse_env_double(const char* name, std::string_view text) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value)) {
    throw EnvParseError(std::string(name) + "='" + std::string(text) +
                        "' is not a finite number");
  }
  return value;
}

const char* raw_env(const char* name) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? nullptr : raw;
}

}  // namespace

std::optional<double> env_number(const char* name) {
  const char* raw = raw_env(name);
  if (raw == nullptr) return std::nullopt;
  return parse_env_double(name, raw);
}

std::optional<double> env_positive(const char* name) {
  const char* raw = raw_env(name);
  if (raw == nullptr) return std::nullopt;
  const double value = parse_env_double(name, raw);
  if (!(value > 0.0)) {
    throw EnvParseError(std::string(name) + "='" + raw +
                        "' must be a positive number");
  }
  return value;
}

std::optional<std::size_t> env_count(const char* name) {
  const char* raw = raw_env(name);
  if (raw == nullptr) return std::nullopt;
  const double value = parse_env_double(name, raw);
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<unsigned long long>(value))) {
    throw EnvParseError(std::string(name) + "='" + raw +
                        "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

Endpoint parse_endpoint(const std::string& text, const std::string& what,
                        bool allow_port_zero) {
  if (text.empty()) {
    throw EnvParseError(what + " must be host:port, :port or port");
  }
  Endpoint ep;
  // The port is everything after the LAST colon, so a future bracketed
  // IPv6 host with embedded colons still splits at the right place; a
  // bare "port" has no colon at all.
  const std::size_t colon = text.rfind(':');
  std::string_view port_text = text;
  if (colon != std::string::npos) {
    ep.host = text.substr(0, colon);
    port_text = std::string_view(text).substr(colon + 1);
  }
  unsigned long port = 0;
  const char* begin = port_text.data();
  const char* end = begin + port_text.size();
  auto [ptr, ec] = std::from_chars(begin, end, port);
  if (ec != std::errc{} || ptr != end || port_text.empty() || port > 65535) {
    throw EnvParseError(what + "='" + text +
                        "' has a malformed port (want host:port with port "
                        "in [0, 65535])");
  }
  if (port == 0 && !allow_port_zero) {
    throw EnvParseError(what + "='" + text +
                        "' names port 0 (only a listen endpoint may bind "
                        "an ephemeral port)");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::optional<Endpoint> env_endpoint(const char* name, bool allow_port_zero) {
  const char* raw = raw_env(name);
  if (raw == nullptr) return std::nullopt;
  return parse_endpoint(raw, name, allow_port_zero);
}

}  // namespace hec::util
