#include "hec/util/zipf.h"

#include <algorithm>
#include <cmath>

#include "hec/util/expect.h"

namespace hec {

ZipfGenerator::ZipfGenerator(std::size_t n, double s) : s_(s) {
  HEC_EXPECTS(n >= 1);
  HEC_EXPECTS(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding shortfall
}

std::size_t ZipfGenerator::next(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfGenerator::pmf(std::size_t rank) const {
  HEC_EXPECTS(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace hec
