#include "hec/util/build_info.h"

#ifndef HEC_GIT_SHA
#define HEC_GIT_SHA "unknown"
#endif
#ifndef HEC_BUILD_TYPE
#define HEC_BUILD_TYPE "unknown"
#endif
#ifndef HEC_VERSION
#define HEC_VERSION "0.0.0"
#endif

namespace hec::util {

const BuildInfo& build_info() {
  static const BuildInfo info{
      HEC_VERSION, HEC_GIT_SHA, HEC_BUILD_TYPE,
#ifdef HEC_OBS_DISABLE
      false,
#else
      true,
#endif
  };
  return info;
}

std::string describe(const BuildInfo& info) {
  return info.version + " (git " + info.git_sha + ", " + info.build_type +
         ", obs " + (info.obs_enabled ? "on" : "off") + ")";
}

}  // namespace hec::util
