#include "hec/util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "hec/util/failpoint.h"

namespace hec::util {

namespace {

std::string errno_text() { return std::strerror(errno); }

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// True when `path` exists and is not a regular file (/dev/null, fifo,
/// socket): rename-over is wrong for those, write through directly.
bool is_special_target(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return false;
  return !S_ISREG(st.st_mode);
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("write failed for " + path + ": " + errno_text());
    }
    written += static_cast<std::size_t>(n);
  }
}

void direct_write(const std::string& path, std::string_view contents) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_TRUNC);
  if (fd < 0) {
    throw IoError("cannot open " + path + ": " + errno_text());
  }
  try {
    write_all(fd, contents.data(), contents.size(), path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  HEC_FAILPOINT_HIT("io.atomic_write.open");
  if (is_special_target(path)) {
    direct_write(path, contents);
    return;
  }
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw IoError("cannot open " + tmp + ": " + errno_text());
  }
  try {
    HEC_FAILPOINT_HIT("io.atomic_write.write");
    write_all(fd, contents.data(), contents.size(), tmp);
    HEC_FAILPOINT_HIT("io.atomic_write.fsync");
    if (::fsync(fd) != 0) {
      throw IoError("fsync failed for " + tmp + ": " + errno_text());
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw IoError("close failed for " + tmp + ": " + errno_text());
  }
  try {
    HEC_FAILPOINT_HIT("io.atomic_write.rename");
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("rename " + tmp + " -> " + path + " failed: " +
                    errno_text());
    }
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
  // Make the rename itself durable. Failure here is not fatal to
  // correctness (the file content is complete either way), but surface
  // it: a journal whose rename never reaches disk can resurrect an old
  // checkpoint after power loss, which resume handles, at the cost of
  // redone work.
  const int dirfd = ::open(dir_of(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)) {}

void AtomicFileWriter::commit() {
  if (committed_) {
    throw IoError("double commit of " + path_);
  }
  committed_ = true;
  atomic_write_file(path_, buffer_.str());
}

}  // namespace hec::util
