#include "hec/util/failpoint.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

namespace hec::util {

namespace {

/// One armed site: its shared hit counter plus every spec targeting it.
/// Multiple entries for the same site in one HEC_FAILPOINT value (e.g.
/// "shard.heartbeat:1:crash,shard.heartbeat:5:crash" to kill two
/// workers in one scenario) count against the same counter, each firing
/// at its own nth. The vector is replaced wholesale under the mutex by
/// set_failpoints; failpoint_hit takes the mutex only to find its site
/// (hits are rare, fault-prone sites — file I/O, journal commits —
/// never hot loops).
// (A deque because the atomic counter makes the element immovable, and
// deque::emplace_back never relocates.)
struct ArmedSite {
  std::string site;
  std::vector<FailpointSpec> specs;
  std::atomic<std::uint64_t> hits{0};
};

std::mutex g_mutex;
std::deque<ArmedSite>* g_sites = nullptr;  // leaked: process-lifetime
std::atomic<bool> g_armed{false};

FailpointMode parse_mode(const std::string& text) {
  if (text == "crash") return FailpointMode::kCrash;
  if (text == "error") return FailpointMode::kError;
  if (text == "delay") return FailpointMode::kDelay;
  throw FailpointParseError("unknown failpoint mode '" + text +
                            "' (want crash|error|delay)");
}

[[noreturn]] void crash_now(const std::string& site) {
  // SIGKILL cannot be caught or cleaned up after: no destructors run, no
  // streams flush, exactly like the OOM killer or a preemption. _Exit is
  // the (unreachable in practice) fallback.
  std::fprintf(stderr, "[failpoint] crash at %s\n", site.c_str());
  ::kill(::getpid(), SIGKILL);
  std::_Exit(137);
}

}  // namespace

std::vector<FailpointSpec> parse_failpoints(const std::string& text) {
  std::vector<FailpointSpec> specs;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) {
      if (text.empty()) break;
      throw FailpointParseError("empty failpoint entry in '" + text + "'");
    }
    FailpointSpec spec;
    const std::size_t c1 = entry.find(':');
    if (c1 == std::string::npos || c1 == 0) {
      throw FailpointParseError("failpoint entry '" + entry +
                                "' wants <site>:<nth>[:mode]");
    }
    spec.site = entry.substr(0, c1);
    const std::size_t c2 = entry.find(':', c1 + 1);
    const std::string nth_text =
        entry.substr(c1 + 1, (c2 == std::string::npos ? entry.size() : c2) -
                                 c1 - 1);
    if (nth_text.empty() ||
        nth_text.find_first_not_of("0123456789") != std::string::npos) {
      throw FailpointParseError("bad failpoint count '" + nth_text +
                                "' in '" + entry + "'");
    }
    spec.nth = std::strtoull(nth_text.c_str(), nullptr, 10);
    if (spec.nth == 0) {
      throw FailpointParseError("failpoint count must be >= 1 in '" + entry +
                                "'");
    }
    if (c2 != std::string::npos) spec.mode = parse_mode(entry.substr(c2 + 1));
    specs.push_back(std::move(spec));
    if (end == text.size()) break;
  }
  return specs;
}

void set_failpoints(std::vector<FailpointSpec> specs) {
  // Group specs by site so every spec for a site shares one counter.
  std::deque<ArmedSite>* sites = new std::deque<ArmedSite>();
  for (FailpointSpec& spec : specs) {
    ArmedSite* slot = nullptr;
    for (ArmedSite& armed : *sites) {
      if (armed.site == spec.site) {
        slot = &armed;
        break;
      }
    }
    if (slot == nullptr) {
      slot = &sites->emplace_back();
      slot->site = spec.site;
    }
    slot->specs.push_back(std::move(spec));
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  delete g_sites;
  g_sites = sites;
  g_armed.store(!g_sites->empty(), std::memory_order_release);
}

std::size_t arm_failpoints_from_env() {
  const char* env = std::getenv("HEC_FAILPOINT");
  if (env == nullptr || *env == '\0') return 0;
  std::vector<FailpointSpec> specs = parse_failpoints(env);
  const std::size_t n = specs.size();
  set_failpoints(std::move(specs));
  return n;
}

void failpoint_hit(const char* site) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  FailpointSpec fire;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_sites == nullptr) return;
    for (ArmedSite& armed : *g_sites) {
      if (armed.site != site) continue;
      const std::uint64_t hit =
          armed.hits.fetch_add(1, std::memory_order_relaxed) + 1;
      for (const FailpointSpec& spec : armed.specs) {
        if (hit == spec.nth) {
          fire = spec;
          fired = true;
          break;
        }
      }
      break;
    }
  }
  if (!fired) return;
  switch (fire.mode) {
    case FailpointMode::kCrash:
      crash_now(fire.site);
    case FailpointMode::kError:
      throw InjectedFault("injected fault at failpoint '" + fire.site +
                          "' (hit " + std::to_string(fire.nth) + ")");
    case FailpointMode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      return;
  }
}

std::uint64_t failpoint_hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sites == nullptr) return 0;
  for (const ArmedSite& armed : *g_sites) {
    if (armed.site == site) {
      return armed.hits.load(std::memory_order_relaxed);
    }
  }
  return 0;
}

bool failpoints_armed() {
  return g_armed.load(std::memory_order_acquire);
}

}  // namespace hec::util
