#include "hec/util/rng.h"

#include <cmath>

#include "hec/util/expect.h"

namespace hec {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HEC_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  HEC_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) {
  HEC_EXPECTS(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::lognormal_unit(double sigma) {
  HEC_EXPECTS(sigma >= 0.0);
  // exp(N(-sigma^2/2, sigma)) has expectation exactly 1.
  return std::exp(normal(-0.5 * sigma * sigma, sigma));
}

double Rng::exponential(double rate) {
  HEC_EXPECTS(rate > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::split(std::uint64_t salt) {
  std::uint64_t seed = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(seed);
}

}  // namespace hec
