// Deterministic failpoint framework for crash-crash testing.
//
// Production code marks fault-prone sites with HEC_FAILPOINT_HIT("name");
// tests and CI arm them through the HEC_FAILPOINT environment variable:
//
//   HEC_FAILPOINT=<site>:<nth>[:crash|error|delay][,<site>:<nth>[:<mode>]...]
//
// Entries are comma-separated; several entries may name the SAME site —
// they share one hit counter and each fires at its own <nth>, which is
// how one scenario kills k of n workers at the same site (e.g.
// "shard.heartbeat:3:crash,shard.heartbeat:9:crash") or a coordinator
// and a worker in a single run.
//
// The <nth> hit (1-based) of the named site triggers its mode:
//   crash  — die immediately via SIGKILL (no destructors, no stream
//            flushes): the honest simulation of OOM-kill / preemption
//            that journaled-storage crash tests are built on. Default.
//   error  — throw hec::util::InjectedFault, exercising the error paths
//            a real EIO / ENOSPC would take.
//   delay  — sleep ~100 ms and continue, widening race windows.
//
// Hits count per site across all threads; sites that are not armed cost
// one relaxed atomic load (a global "any failpoint armed?" gate), so the
// instrumentation is free in production.
//
// This lives in hec::util (not hec::resilience) because the lowest
// layers — file I/O, the sweep engine — need the hooks, and util is the
// dependency-free base of the library. hec/resilience/failpoint.h
// re-exports it under the subsystem that owns the testing story.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hec::util {

/// Thrown by an armed `error`-mode failpoint. Derives from runtime_error
/// so ordinary error handling (and the CLI's exit-code mapping) treats
/// injected faults exactly like real ones.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when the HEC_FAILPOINT grammar is malformed; the CLI maps it
/// to exit 64 (usage error), since the environment is user input.
class FailpointParseError : public std::runtime_error {
 public:
  explicit FailpointParseError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class FailpointMode { kCrash, kError, kDelay };

struct FailpointSpec {
  std::string site;
  std::uint64_t nth = 1;  ///< 1-based hit that triggers
  FailpointMode mode = FailpointMode::kCrash;
};

/// Parses the HEC_FAILPOINT grammar. Throws FailpointParseError on an
/// empty site, a non-positive or malformed <nth>, or an unknown mode.
std::vector<FailpointSpec> parse_failpoints(const std::string& text);

/// Installs `specs` as the process's armed failpoints, replacing any
/// previous set and zeroing all hit counters. Tests use this directly;
/// production arms via HEC_FAILPOINT (see failpoints_from_env).
void set_failpoints(std::vector<FailpointSpec> specs);

/// Parses and installs HEC_FAILPOINT from the environment. Returns the
/// number of armed sites (0 when unset). Throws FailpointParseError on
/// bad grammar. Idempotent; the CLI calls it once at startup.
std::size_t arm_failpoints_from_env();

/// Reports a hit at `site`. No-op unless a spec for `site` is armed and
/// this is its nth hit, in which case the spec's mode fires (see file
/// comment). Thread-safe.
void failpoint_hit(const char* site);

/// Hits observed at `site` since the last set_failpoints call.
std::uint64_t failpoint_hits(const std::string& site);

/// True when any failpoint is armed (the fast-path gate, exposed for
/// tests).
bool failpoints_armed();

}  // namespace hec::util

/// Marks a fault-prone site. Compiles to one relaxed load when nothing
/// is armed.
#define HEC_FAILPOINT_HIT(site)                       \
  do {                                                \
    if (::hec::util::failpoints_armed()) {            \
      ::hec::util::failpoint_hit(site);               \
    }                                                 \
  } while (false)
