// Strict parsing for numeric environment variables.
//
// Environment variables are user input exactly like command-line flags,
// so a malformed value must produce a usage diagnostic (tools map
// EnvParseError to exit 64, sysexits.h EX_USAGE) — never a silent
// fallback. The historical behaviour of warning-and-ignoring a bad
// HEC_DEADLINE_S turned a typo ("30s", "-5", "nan") into an unbounded
// sweep, which is the opposite of what the operator asked for.
//
// Unset or empty variables are not errors: they mean "feature off" and
// return the caller's fallback.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>

namespace hec::util {

/// Thrown when a numeric environment variable holds a value that does
/// not parse cleanly (trailing garbage, NaN/inf, empty after sign) or
/// violates the caller's stated range. Tools map it to exit 64.
class EnvParseError : public std::runtime_error {
 public:
  explicit EnvParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Reads `name` as a finite double. Returns nullopt when the variable is
/// unset or empty. Throws EnvParseError on trailing garbage ("1.5x"),
/// NaN, infinity, or anything std::from_chars rejects.
std::optional<double> env_number(const char* name);

/// Like env_number but additionally requires value > 0; the diagnostic
/// names the variable and the constraint ("must be a positive number").
std::optional<double> env_positive(const char* name);

/// Like env_number but requires a non-negative integer (a count);
/// returns it as std::size_t.
std::optional<std::size_t> env_count(const char* name);

}  // namespace hec::util
