// Strict parsing for numeric environment variables.
//
// Environment variables are user input exactly like command-line flags,
// so a malformed value must produce a usage diagnostic (tools map
// EnvParseError to exit 64, sysexits.h EX_USAGE) — never a silent
// fallback. The historical behaviour of warning-and-ignoring a bad
// HEC_DEADLINE_S turned a typo ("30s", "-5", "nan") into an unbounded
// sweep, which is the opposite of what the operator asked for.
//
// Unset or empty variables are not errors: they mean "feature off" and
// return the caller's fallback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace hec::util {

/// Thrown when a numeric environment variable holds a value that does
/// not parse cleanly (trailing garbage, NaN/inf, empty after sign) or
/// violates the caller's stated range. Tools map it to exit 64.
class EnvParseError : public std::runtime_error {
 public:
  explicit EnvParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Reads `name` as a finite double. Returns nullopt when the variable is
/// unset or empty. Throws EnvParseError on trailing garbage ("1.5x"),
/// NaN, infinity, or anything std::from_chars rejects.
std::optional<double> env_number(const char* name);

/// Like env_number but additionally requires value > 0; the diagnostic
/// names the variable and the constraint ("must be a positive number").
std::optional<double> env_positive(const char* name);

/// Like env_number but requires a non-negative integer (a count);
/// returns it as std::size_t.
std::optional<std::size_t> env_count(const char* name);

/// A TCP endpoint as the shard transport flags/env understand it.
/// `host` is a hostname or numeric address; an empty host means "all
/// interfaces" on the listen side and "localhost" on the connect side.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Parses "host:port", ":port" or a bare "port" into an Endpoint.
/// Throws EnvParseError on an empty string, a missing/zero/overflowing
/// port, or trailing garbage — `what` names the flag or variable for
/// the diagnostic. Port 0 is accepted only when `allow_port_zero` (the
/// listen side binds an ephemeral port with it; dialing port 0 is
/// always a mistake).
Endpoint parse_endpoint(const std::string& text, const std::string& what,
                        bool allow_port_zero = false);

/// Reads `name` as an Endpoint via parse_endpoint. Returns nullopt when
/// the variable is unset or empty; throws EnvParseError on a malformed
/// value (tools map it to exit 64, like every other env knob).
std::optional<Endpoint> env_endpoint(const char* name,
                                     bool allow_port_zero = false);

}  // namespace hec::util
