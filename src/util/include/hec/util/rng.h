// Deterministic, fast pseudo-random number generation.
//
// The simulator and workload generators need reproducible randomness that is
// cheap to seed and split. xoshiro256** (Blackman & Vigna) is used as the
// engine, seeded through SplitMix64 so that small integer seeds give
// well-distributed state. Streams derived with split() are statistically
// independent, which lets each simulated core/node own its own stream.
#pragma once

#include <cstdint>

namespace hec {

/// SplitMix64 step: used for seeding and for deriving child streams.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single word via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);
  /// Log-normal multiplicative noise factor with E[X] = 1.
  /// sigma is the standard deviation of the underlying normal.
  double lognormal_unit(double sigma);
  /// Exponential with given rate (rate > 0); used for Poisson arrivals.
  double exponential(double rate);

  /// Derives an independent child stream; deterministic in (parent state, salt).
  Rng split(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace hec
