// Crash-safe file output: write-temp → fsync → rename.
//
// Every durable sink in the library (gnuplot scripts, CSV dumps, obs
// trace/metrics exports, benchkit records, sweep journals) funnels
// through atomic_write_file, which guarantees that a reader — including
// this process restarted after a crash — sees either the previous
// complete file or the new complete file, never a truncation, and that
// every write error (ENOSPC, EPERM, EIO) is surfaced as hec::IoError
// instead of a silently short file. Tools map IoError to exit code 74
// (sysexits.h EX_IOERR).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hec {

/// A file write failed (open, write, fsync or rename). The path and the
/// failing step are in what(); tools exit 74 (EX_IOERR) on it.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

namespace util {

/// Exit code tools use for IoError, after sysexits.h EX_IOERR.
inline constexpr int kExitIoError = 74;

/// Durably replaces `path` with `contents`: writes <path>.tmp.<pid> in
/// the same directory, fsyncs it, renames it over `path` and fsyncs the
/// directory. Throws IoError on any failure, leaving `path` untouched
/// (the temp file is unlinked best-effort). Non-regular targets that
/// already exist (/dev/null, pipes) are written directly — atomicity is
/// meaningless for them and a temp file beside /dev/null is not
/// creatable anyway.
///
/// Failpoint sites (hec/util/failpoint.h): io.atomic_write.open,
/// io.atomic_write.write, io.atomic_write.fsync, io.atomic_write.rename.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Ostream adapter over atomic_write_file for writers that stream
/// (obs exporters, CSV): accumulate via stream(), then commit() performs
/// the atomic replace. Destruction without commit() discards the output
/// (nothing was ever on disk). commit() throws IoError and is
/// single-shot.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);

  std::ostream& stream() { return buffer_; }
  const std::string& path() const { return path_; }

  /// Atomically publishes everything streamed so far. Throws IoError on
  /// failure or if already committed.
  void commit();

 private:
  std::string path_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

}  // namespace util
}  // namespace hec
