// Contract checking in the spirit of the C++ Core Guidelines' Expects/Ensures.
//
// Violations throw hec::ContractViolation so tests can assert on misuse and
// callers can distinguish precondition bugs from ordinary runtime errors.
#pragma once

#include <stdexcept>
#include <string>

namespace hec {

/// Thrown when a precondition (HEC_EXPECTS) or postcondition (HEC_ENSURES)
/// is violated. Indicates a programming error at the call site.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace hec

#define HEC_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::hec::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define HEC_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::hec::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)
