// Build provenance: one struct answering "which binary produced this?".
//
// The git sha and build type are baked in at configure time (see the
// top-level CMakeLists); the obs flag reflects HEC_OBS_DISABLE as seen
// by this library. Every provenance surface — `hecsim_cli --version`,
// run-ledger records, bench suite documents — reads the same struct so
// they can never disagree.
#pragma once

#include <string>

namespace hec::util {

struct BuildInfo {
  std::string version;     ///< project version (CMake PROJECT_VERSION)
  std::string git_sha;     ///< short sha at configure time, or "unknown"
  std::string build_type;  ///< CMAKE_BUILD_TYPE ("Release", "Debug", ...)
  bool obs_enabled = true;  ///< false when built with HEC_OBS_DISABLE
};

/// The process's build info (values fixed at compile time).
const BuildInfo& build_info();

/// One-line human rendering: "1.0.0 (git abc123def456, Release, obs on)".
std::string describe(const BuildInfo& info);

}  // namespace hec::util
