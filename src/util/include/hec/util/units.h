// Unit conventions used across the library.
//
// All quantities are plain doubles with the unit encoded in the variable
// name suffix; the constants here convert between the conventional units of
// the paper (GHz clock rates, Mbps link bandwidths, milliseconds deadlines)
// and the base SI units used internally (seconds, joules, watts, hertz).
#pragma once

namespace hec::units {

inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;

/// Clock frequency: GHz -> Hz.
inline constexpr double ghz_to_hz(double f_ghz) { return f_ghz * kGiga; }
/// Clock frequency: Hz -> GHz.
inline constexpr double hz_to_ghz(double f_hz) { return f_hz / kGiga; }

/// Link bandwidth: Mbit/s -> bytes/s.
inline constexpr double mbps_to_bytes_per_s(double mbps) {
  return mbps * kMega / 8.0;
}

/// Time: milliseconds -> seconds.
inline constexpr double ms_to_s(double ms) { return ms * kMilli; }
/// Time: seconds -> milliseconds.
inline constexpr double s_to_ms(double s) { return s / kMilli; }

/// Storage: kibibytes -> bytes (cache sizes in Table 1 are binary units).
inline constexpr double kib_to_bytes(double kib) { return kib * 1024.0; }

}  // namespace hec::units
