// Zipfian rank sampling.
//
// The paper's memslap driver uses uniform key popularity and notes that
// realistic memcached traffic is skewed (citing Atikoglu et al. [5]).
// ZipfGenerator provides that skew: rank r is drawn with probability
// proportional to 1/r^s. Exponent 0 degenerates to uniform.
#pragma once

#include <cstddef>
#include <vector>

#include "hec/util/rng.h"

namespace hec {

/// Samples zero-based ranks in [0, n) with P(r) ~ 1/(r+1)^s via inverse
/// CDF lookup (O(log n) per draw after O(n) setup).
class ZipfGenerator {
 public:
  /// Preconditions: n >= 1, s >= 0.
  ZipfGenerator(std::size_t n, double s);

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

  /// Next rank, using the caller's RNG stream.
  std::size_t next(Rng& rng) const;

  /// Probability mass of one rank (for tests and reporting).
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  ///< cumulative, cdf_.back() == 1
  double s_;
};

}  // namespace hec
