// Umbrella header: the whole public API in one include.
//
//   #include "hec.h"
//
// Fine-grained headers remain available (and are what the library itself
// uses); this exists for quick experiments and downstream prototypes.
#pragma once

#include "hec/cluster/cluster_sim.h"       // IWYU pragma: export
#include "hec/cluster/coscheduler.h"       // IWYU pragma: export
#include "hec/cluster/datacenter_sim.h"    // IWYU pragma: export
#include "hec/cluster/schedulers.h"        // IWYU pragma: export
#include "hec/config/budget.h"             // IWYU pragma: export
#include "hec/config/deployment_table.h"   // IWYU pragma: export
#include "hec/config/enumerate.h"          // IWYU pragma: export
#include "hec/config/evaluate.h"           // IWYU pragma: export
#include "hec/config/multi_space.h"        // IWYU pragma: export
#include "hec/config/robust_evaluate.h"    // IWYU pragma: export
#include "hec/fault/fault_model.h"         // IWYU pragma: export
#include "hec/fault/recovery.h"            // IWYU pragma: export
#include "hec/hw/catalog.h"                // IWYU pragma: export
#include "hec/hw/node_spec.h"              // IWYU pragma: export
#include "hec/io/csv.h"                    // IWYU pragma: export
#include "hec/io/gnuplot.h"                // IWYU pragma: export
#include "hec/io/table.h"                  // IWYU pragma: export
#include "hec/model/bottleneck.h"          // IWYU pragma: export
#include "hec/model/characterize.h"        // IWYU pragma: export
#include "hec/model/inputs_io.h"           // IWYU pragma: export
#include "hec/model/matching.h"            // IWYU pragma: export
#include "hec/model/multi_matching.h"      // IWYU pragma: export
#include "hec/model/node_model.h"          // IWYU pragma: export
#include "hec/obs/export.h"                // IWYU pragma: export
#include "hec/obs/obs.h"                   // IWYU pragma: export
#include "hec/pareto/frontier.h"           // IWYU pragma: export
#include "hec/pareto/hypervolume.h"        // IWYU pragma: export
#include "hec/pareto/robust_frontier.h"    // IWYU pragma: export
#include "hec/pareto/streaming.h"          // IWYU pragma: export
#include "hec/pareto/sweet_region.h"       // IWYU pragma: export
#include "hec/queueing/md1.h"              // IWYU pragma: export
#include "hec/report/markdown_report.h"    // IWYU pragma: export
#include "hec/resilience/failpoint.h"      // IWYU pragma: export
#include "hec/resilience/journal.h"        // IWYU pragma: export
#include "hec/resilience/resumable.h"      // IWYU pragma: export
#include "hec/queueing/queue_sim.h"        // IWYU pragma: export
#include "hec/queueing/variants.h"         // IWYU pragma: export
#include "hec/queueing/window_analysis.h"  // IWYU pragma: export
#include "hec/search/optimizer.h"          // IWYU pragma: export
#include "hec/shard/lease.h"               // IWYU pragma: export
#include "hec/shard/protocol.h"            // IWYU pragma: export
#include "hec/shard/result_file.h"         // IWYU pragma: export
#include "hec/shard/shard.h"               // IWYU pragma: export
#include "hec/sim/node_sim.h"              // IWYU pragma: export
#include "hec/stats/regression.h"          // IWYU pragma: export
#include "hec/sweep/sweep.h"               // IWYU pragma: export
#include "hec/stats/summary.h"             // IWYU pragma: export
#include "hec/trace/trace.h"               // IWYU pragma: export
#include "hec/util/rng.h"                  // IWYU pragma: export
#include "hec/util/units.h"                // IWYU pragma: export
#include "hec/util/zipf.h"                 // IWYU pragma: export
#include "hec/workloads/trace_builders.h"  // IWYU pragma: export
#include "hec/workloads/workload.h"        // IWYU pragma: export
