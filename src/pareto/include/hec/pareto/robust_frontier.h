// Robust Pareto frontier: expected time vs expected energy under a
// deadline-miss-probability constraint.
//
// Under faults each configuration becomes a triple (E[time], E[energy],
// miss probability). The robust frontier first discards every point whose
// miss probability exceeds the caller's reliability budget, then takes
// the ordinary time-energy frontier over the survivors. Comparing it with
// the nominal frontier shows how much the fault model shifts the sweet
// region — fragile nominal winners drop out or move up in energy.
#pragma once

#include <span>
#include <vector>

#include "hec/pareto/frontier.h"

namespace hec {

/// A robust observation: Monte Carlo expectations plus the probability of
/// missing the deadline, tagged with the source configuration's index.
struct RobustPoint {
  double t_s = 0.0;        ///< expected completion time
  double energy_j = 0.0;   ///< expected energy (waste + overhead included)
  double miss_prob = 0.0;  ///< P(deadline missed or job abandoned)
  std::size_t tag = 0;

  friend bool operator==(const RobustPoint&, const RobustPoint&) = default;
};

/// Pareto-optimal subset over (expected time, expected energy) among the
/// points with miss_prob <= max_miss_prob. Tags refer to the caller's
/// original array. Empty when no point meets the reliability budget.
std::vector<TimeEnergyPoint> robust_pareto_frontier(
    std::span<const RobustPoint> points, double max_miss_prob);

}  // namespace hec
