// Energy-deadline Pareto frontier (Section IV-B, step two of Fig. 1).
//
// Each evaluated configuration is a point (service time, energy). A point
// is Pareto optimal when no other point is both at least as fast and uses
// no more energy. The frontier, ordered by increasing time, has strictly
// decreasing energy; querying it with a deadline returns the minimum
// energy needed to meet that deadline (the curves of Figs. 4-9).
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace hec {

/// A (time, energy) observation tagged with its source configuration's
/// index in the caller's array.
struct TimeEnergyPoint {
  double t_s = 0.0;
  double energy_j = 0.0;
  std::size_t tag = 0;

  friend bool operator==(const TimeEnergyPoint&,
                         const TimeEnergyPoint&) = default;
};

/// Pareto-optimal subset, sorted by ascending time (and thus strictly
/// descending energy). Ties in time keep the lowest-energy point; exact
/// duplicates keep the first tag.
std::vector<TimeEnergyPoint> pareto_frontier(
    std::span<const TimeEnergyPoint> points);

/// Minimum-energy-for-deadline query structure over a frontier.
class EnergyDeadlineCurve {
 public:
  /// `frontier` must come from pareto_frontier (sorted, strictly
  /// decreasing energy); validated on construction.
  explicit EnergyDeadlineCurve(std::vector<TimeEnergyPoint> frontier);

  /// The cheapest point with t_s <= deadline; nullopt when the deadline
  /// is tighter than the fastest configuration.
  std::optional<TimeEnergyPoint> best_for_deadline(double deadline_s) const;

  /// Minimum energy to meet the deadline (infinity when unmeetable).
  double min_energy_j(double deadline_s) const;

  const std::vector<TimeEnergyPoint>& points() const { return frontier_; }
  /// Fastest achievable service time.
  double min_time_s() const;

 private:
  std::vector<TimeEnergyPoint> frontier_;
};

}  // namespace hec
