// Energy-deadline Pareto frontier (Section IV-B, step two of Fig. 1).
//
// Each evaluated configuration is a point (service time, energy). A point
// is Pareto optimal when no other point is both at least as fast and uses
// no more energy. The frontier, ordered by increasing time, has strictly
// decreasing energy; querying it with a deadline returns the minimum
// energy needed to meet that deadline (the curves of Figs. 4-9).
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace hec {

/// A (time, energy) observation tagged with its source configuration's
/// index in the caller's array.
struct TimeEnergyPoint {
  double t_s = 0.0;
  double energy_j = 0.0;
  std::size_t tag = 0;

  friend bool operator==(const TimeEnergyPoint&,
                         const TimeEnergyPoint&) = default;
};

/// Relative epsilon for the dominance scan: energy "improvements" at
/// floating-point rounding scale (e.g. the same configuration computed
/// with a different node count but identical per-unit cost) do not
/// create spurious frontier points.
inline constexpr double kParetoRelEps = 1e-9;

/// Total order used by the frontier scan: ascending time, then ascending
/// energy, then ascending tag. Sorting any point set with this comparator
/// and running pareto_scan_sorted over it yields the frontier.
bool time_energy_less(const TimeEnergyPoint& a, const TimeEnergyPoint& b);

/// Dominance scan over points already sorted with time_energy_less:
/// keeps a point when its energy beats the best seen so far by more than
/// kParetoRelEps (relative). Compacts in place and returns the frontier.
/// This is the single scan every frontier construction in the library
/// funnels through — the streaming accumulators (streaming.h) reuse it,
/// which is what makes their results bit-identical to pareto_frontier.
std::vector<TimeEnergyPoint> pareto_scan_sorted(
    std::vector<TimeEnergyPoint> sorted);

/// Pareto-optimal subset, sorted by ascending time (and thus strictly
/// descending energy). Ties in time keep the lowest-energy point; exact
/// duplicates keep the first tag. Sorts the argument in place — pass with
/// std::move when the caller no longer needs the point set.
std::vector<TimeEnergyPoint> pareto_frontier(
    std::vector<TimeEnergyPoint> points);

/// Convenience overload for borrowed storage; copies, then delegates.
std::vector<TimeEnergyPoint> pareto_frontier(
    std::span<const TimeEnergyPoint> points);

/// Minimum-energy-for-deadline query structure over a frontier.
class EnergyDeadlineCurve {
 public:
  /// `frontier` must come from pareto_frontier (sorted, strictly
  /// decreasing energy); validated on construction.
  explicit EnergyDeadlineCurve(std::vector<TimeEnergyPoint> frontier);

  /// The cheapest point with t_s <= deadline; nullopt when the deadline
  /// is tighter than the fastest configuration.
  std::optional<TimeEnergyPoint> best_for_deadline(double deadline_s) const;

  /// Minimum energy to meet the deadline (infinity when unmeetable).
  double min_energy_j(double deadline_s) const;

  const std::vector<TimeEnergyPoint>& points() const { return frontier_; }
  /// Fastest achievable service time.
  double min_time_s() const;

 private:
  std::vector<TimeEnergyPoint> frontier_;
};

}  // namespace hec
