// Hypervolume indicator for energy-deadline frontiers.
//
// Comparing two frontiers point-by-point is awkward when their point
// sets differ (e.g. the 2-tier vs 3-tier study): the standard
// multi-objective quality measure is the hypervolume — the area of the
// (time, energy) region dominated by the frontier, bounded by a
// reference point that is worse than every frontier point in both
// objectives. Larger is better; a frontier that dominates another has
// strictly larger hypervolume against the same reference.
#pragma once

#include <span>

#include "hec/pareto/frontier.h"

namespace hec {

/// Dominated area between `frontier` (sorted, strictly improving —
/// pareto_frontier's output) and the reference point
/// (ref_time_s, ref_energy_j). Points beyond the reference in either
/// objective contribute only their clipped part. Preconditions:
/// frontier non-empty and valid, reference worse than at least the
/// frontier's best point in each objective.
double hypervolume(std::span<const TimeEnergyPoint> frontier,
                   double ref_time_s, double ref_energy_j);

/// Reference point that covers both frontiers (component-wise max plus a
/// 5% margin) — the conventional choice when comparing two frontiers.
struct ReferencePoint {
  double time_s = 0.0;
  double energy_j = 0.0;
};
ReferencePoint covering_reference(std::span<const TimeEnergyPoint> a,
                                  std::span<const TimeEnergyPoint> b);

}  // namespace hec
