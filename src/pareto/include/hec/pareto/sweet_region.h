// Sweet-region and overlap-region analysis (Section IV-B).
//
// The paper observes that heterogeneous frontiers divide into a "sweet
// region" — a prefix of heterogeneous mixes where energy falls linearly as
// the deadline relaxes — optionally followed by an "overlap region" of
// homogeneous low-power configurations (present only for compute-bound
// workloads, where lowering cores/frequency still trades time for energy).
// These helpers locate both regions and quantify the sweet region's
// linearity with a least-squares fit.
#pragma once

#include <functional>
#include <optional>
#include <span>

#include "hec/pareto/frontier.h"
#include "hec/stats/regression.h"

namespace hec {

/// Classification callback: is the configuration behind a frontier point
/// heterogeneous (receives the point's tag)?
using HeterogeneousPredicate = std::function<bool(std::size_t)>;

/// A contiguous frontier segment [begin, end) of heterogeneous mixes.
struct SweetRegion {
  std::size_t begin = 0;  ///< first frontier index in the region
  std::size_t end = 0;    ///< one past the last index
  LinearFit energy_vs_time;  ///< energy (J) regressed on time (s)
  double energy_upper_j = 0.0;  ///< energy at the region's fastest point
  double energy_lower_j = 0.0;  ///< energy at the region's slowest point

  std::size_t size() const { return end - begin; }
};

/// The longest prefix run of heterogeneous points on the frontier (the
/// paper's sweet region starts at the fastest configurations). Returns
/// nullopt when fewer than `min_points` heterogeneous points lead the
/// frontier.
std::optional<SweetRegion> find_sweet_region(
    std::span<const TimeEnergyPoint> frontier,
    const HeterogeneousPredicate& is_heterogeneous,
    std::size_t min_points = 3);

/// The homogeneous suffix following the sweet region (empty when the
/// frontier ends heterogeneous — the paper's I/O-bound case).
struct OverlapRegion {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Locates the overlap region: the maximal homogeneous suffix.
OverlapRegion find_overlap_region(
    std::span<const TimeEnergyPoint> frontier,
    const HeterogeneousPredicate& is_heterogeneous);

}  // namespace hec
