// Streaming Pareto reduction for the blocked configuration sweeps.
//
// The full sweep over a large heterogeneous space produces millions of
// (time, energy) points of which only a few hundred survive dominance.
// Materialising every point just to sort and scan once costs O(A·B)
// memory and an O(N log N) sort dominated by doomed points. Instead each
// sweep worker feeds its points into a ParetoAccumulator, which keeps a
// small buffer and periodically compacts it against the partial frontier
// it maintains; the per-worker partials are then combined with
// merge_frontiers.
//
// Exactness (not an approximation): the dominance scan in
// pareto_scan_sorted depends only on the sorted order of its input, and
// it satisfies the compaction identity
//
//   frontier(A ∪ B) == frontier(frontier(A) ∪ B)
//
// because every point the union's scan keeps also survives the scan of
// any subset containing it (the running best-energy bound can only be
// weaker on a subset). Repeated compaction and the final merge therefore
// produce exactly the frontier pareto_frontier would compute over the
// concatenation of all points — bit-identical, same tags, same order.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "hec/pareto/frontier.h"

namespace hec {

/// Online partial-frontier accumulator. Feed points with add(); take()
/// returns the Pareto frontier of everything added, identical to
/// pareto_frontier over the same multiset. Peak memory is
/// O(frontier size + compact_limit) regardless of how many points pass
/// through. Not thread-safe: use one accumulator per worker.
class ParetoAccumulator {
 public:
  /// `compact_limit` bounds the unsorted buffer; larger values amortise
  /// the sort better, smaller values cap memory tighter.
  explicit ParetoAccumulator(std::size_t compact_limit = 16384);

  /// Inline hot path: almost every point of a large sweep is dominated,
  /// and the prefilter rejects those in O(log frontier) without touching
  /// the buffer, so compaction runs only when genuinely new candidates
  /// accumulate.
  void add(const TimeEnergyPoint& p) {
    ++points_seen_;
    if (!frontier_.empty() && provably_dominated(p)) return;
    buffer_.push_back(p);
    if (buffer_.size() >= compact_limit_) compact();
  }

  /// Points accepted so far (including ones later found dominated).
  std::size_t points_seen() const { return points_seen_; }

  /// Preloads a compacted partial frontier (as produced by take(),
  /// pareto_frontier or merge_frontiers) into an empty accumulator, as
  /// if every one of its points had been add()ed. The checkpoint-resume
  /// path uses this to seed a fresh accumulator with the journaled
  /// carry frontier; by the compaction identity, the final take() is
  /// bit-identical to one uninterrupted accumulation. Validated (sorted,
  /// strictly decreasing energy) on entry.
  void seed(std::vector<TimeEnergyPoint> frontier);

  /// Compacts and returns the frontier of all added points, sorted by
  /// ascending time. The accumulator is left empty and reusable.
  std::vector<TimeEnergyPoint> take();

  /// Compacts now if at least `pending` buffered points await dominance
  /// scanning. corner_dominated consults only the compacted frontier, so
  /// a pruning sweep calls this at block boundaries to keep the bound
  /// fresh instead of waiting for the compact_limit high-water mark.
  /// Result-identical by the compaction identity; purely a scheduling
  /// knob.
  void refresh(std::size_t pending = 512) {
    if (buffer_.size() >= pending) compact();
  }

  /// True when some compacted-frontier point q beats the optimistic
  /// corner (t_lo, e_lo) outright: q.t_s < t_lo and q.energy_j <= e_lo.
  /// Every point p with p.t_s >= t_lo and p.energy_j >= e_lo then
  /// satisfies provably_dominated's condition with margin (its witness w
  /// at p's position has w.t_s <= q.t_s < p.t_s or sorts before p via
  /// strictly lower energy, and p.energy_j >= e_lo >= q.energy_j >=
  /// w.energy_j * (1 - eps)), so an entire block of such points can be
  /// skipped result-identically without evaluating it. This is the
  /// dominance test behind hec/sweep's bound-and-prune layer; a false
  /// return is always safe — the block is merely evaluated normally.
  bool corner_dominated(double t_lo, double e_lo) const {
    const auto it = std::lower_bound(
        frontier_.begin(), frontier_.end(), t_lo,
        [](const TimeEnergyPoint& q, double t) { return q.t_s < t; });
    if (it == frontier_.begin()) return false;
    return (it - 1)->energy_j <= e_lo;
  }

 private:
  /// True when some compacted-frontier point q sorts before p (in
  /// time_energy_less order) with p.energy_j >= q.energy_j * (1 - eps).
  /// The final dominance scan's running best-energy at p's position is
  /// then at most q.energy_j whatever else arrives, so it drops p —
  /// skipping the buffer is result-identical, not an approximation.
  /// frontier_ has strictly increasing t_s and strictly decreasing
  /// energy_j, so the last entry with t_s <= p.t_s is the strongest
  /// witness.
  bool provably_dominated(const TimeEnergyPoint& p) const {
    const auto it = std::upper_bound(
        frontier_.begin(), frontier_.end(), p.t_s,
        [](double t, const TimeEnergyPoint& q) { return t < q.t_s; });
    if (it == frontier_.begin()) return false;
    const TimeEnergyPoint& q = *(it - 1);
    const bool sorts_before = q.t_s < p.t_s || q.energy_j < p.energy_j;
    return sorts_before &&
           p.energy_j >= q.energy_j * (1.0 - kParetoRelEps);
  }

  void compact();

  std::vector<TimeEnergyPoint> frontier_;  // sorted, dominance-scanned
  std::vector<TimeEnergyPoint> buffer_;    // unsorted recent points
  std::size_t compact_limit_;
  std::size_t points_seen_ = 0;
};

/// Combines per-worker partial frontiers (each sorted with
/// time_energy_less, as produced by ParetoAccumulator::take or
/// pareto_frontier) via a k-way merge followed by a single dominance
/// scan. Returns exactly the frontier of the union of all inputs.
std::vector<TimeEnergyPoint> merge_frontiers(
    std::span<const std::vector<TimeEnergyPoint>> partials);

}  // namespace hec
