#include "hec/pareto/sweet_region.h"

#include <vector>

#include "hec/util/expect.h"

namespace hec {

std::optional<SweetRegion> find_sweet_region(
    std::span<const TimeEnergyPoint> frontier,
    const HeterogeneousPredicate& is_heterogeneous,
    std::size_t min_points) {
  HEC_EXPECTS(min_points >= 2);
  std::size_t end = 0;
  while (end < frontier.size() && is_heterogeneous(frontier[end].tag)) {
    ++end;
  }
  if (end < min_points) return std::nullopt;

  SweetRegion region;
  region.begin = 0;
  region.end = end;
  std::vector<double> xs, ys;
  xs.reserve(end);
  ys.reserve(end);
  for (std::size_t i = 0; i < end; ++i) {
    xs.push_back(frontier[i].t_s);
    ys.push_back(frontier[i].energy_j);
  }
  region.energy_vs_time = fit_line(xs, ys);
  region.energy_upper_j = frontier.front().energy_j;
  region.energy_lower_j = frontier[end - 1].energy_j;
  return region;
}

OverlapRegion find_overlap_region(
    std::span<const TimeEnergyPoint> frontier,
    const HeterogeneousPredicate& is_heterogeneous) {
  OverlapRegion region;
  region.end = frontier.size();
  std::size_t begin = frontier.size();
  while (begin > 0 && !is_heterogeneous(frontier[begin - 1].tag)) {
    --begin;
  }
  region.begin = begin;
  return region;
}

}  // namespace hec
