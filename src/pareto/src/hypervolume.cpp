#include "hec/pareto/hypervolume.h"

#include <algorithm>

#include "hec/util/expect.h"

namespace hec {

double hypervolume(std::span<const TimeEnergyPoint> frontier,
                   double ref_time_s, double ref_energy_j) {
  HEC_EXPECTS(!frontier.empty());
  // Validate ordering (as produced by pareto_frontier).
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    HEC_EXPECTS(frontier[i].t_s > frontier[i - 1].t_s);
    HEC_EXPECTS(frontier[i].energy_j < frontier[i - 1].energy_j);
  }
  HEC_EXPECTS(ref_time_s > frontier.front().t_s);
  HEC_EXPECTS(ref_energy_j > frontier.back().energy_j);

  // Sweep left to right: each point dominates the rectangle from its
  // time to the next point's time (or the reference), at the energy gap
  // below the reference.
  double volume = 0.0;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const TimeEnergyPoint& p = frontier[i];
    if (p.t_s >= ref_time_s || p.energy_j >= ref_energy_j) continue;
    const double next_time = i + 1 < frontier.size()
                                 ? std::min(frontier[i + 1].t_s, ref_time_s)
                                 : ref_time_s;
    const double width = next_time - std::max(p.t_s, 0.0);
    if (width <= 0.0) continue;
    volume += width * (ref_energy_j - p.energy_j);
  }
  return volume;
}

ReferencePoint covering_reference(std::span<const TimeEnergyPoint> a,
                                  std::span<const TimeEnergyPoint> b) {
  HEC_EXPECTS(!a.empty() && !b.empty());
  ReferencePoint ref;
  for (const auto& frontier : {a, b}) {
    for (const auto& p : frontier) {
      ref.time_s = std::max(ref.time_s, p.t_s);
      ref.energy_j = std::max(ref.energy_j, p.energy_j);
    }
  }
  ref.time_s *= 1.05;
  ref.energy_j *= 1.05;
  return ref;
}

}  // namespace hec
