#include "hec/pareto/robust_frontier.h"

#include <utility>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

std::vector<TimeEnergyPoint> robust_pareto_frontier(
    std::span<const RobustPoint> points, double max_miss_prob) {
  HEC_EXPECTS(max_miss_prob >= 0.0 && max_miss_prob <= 1.0);
  HEC_SPAN("pareto.robust_frontier");
  std::vector<TimeEnergyPoint> admissible;
  admissible.reserve(points.size());
  for (const RobustPoint& p : points) {
    HEC_EXPECTS(p.miss_prob >= 0.0 && p.miss_prob <= 1.0);
    if (p.miss_prob <= max_miss_prob) {
      admissible.push_back({p.t_s, p.energy_j, p.tag});
    }
  }
  return pareto_frontier(std::move(admissible));
}

}  // namespace hec
