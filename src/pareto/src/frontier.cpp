#include "hec/pareto/frontier.h"

#include <algorithm>
#include <limits>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

bool time_energy_less(const TimeEnergyPoint& a, const TimeEnergyPoint& b) {
  if (a.t_s != b.t_s) return a.t_s < b.t_s;
  if (a.energy_j != b.energy_j) return a.energy_j < b.energy_j;
  return a.tag < b.tag;
}

std::vector<TimeEnergyPoint> pareto_scan_sorted(
    std::vector<TimeEnergyPoint> sorted) {
  double best_energy = std::numeric_limits<double>::infinity();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].energy_j < best_energy * (1.0 - kParetoRelEps)) {
      best_energy = sorted[i].energy_j;
      sorted[kept++] = sorted[i];
    }
  }
  sorted.resize(kept);
  return sorted;
}

std::vector<TimeEnergyPoint> pareto_frontier(
    std::vector<TimeEnergyPoint> points) {
  HEC_SPAN("pareto.frontier");
  HEC_COUNTER_INC("pareto.frontier_calls");
  std::sort(points.begin(), points.end(), time_energy_less);
  std::vector<TimeEnergyPoint> frontier =
      pareto_scan_sorted(std::move(points));
  HEC_GAUGE_SET("pareto.frontier_size", static_cast<double>(frontier.size()));
  return frontier;
}

std::vector<TimeEnergyPoint> pareto_frontier(
    std::span<const TimeEnergyPoint> points) {
  return pareto_frontier(
      std::vector<TimeEnergyPoint>(points.begin(), points.end()));
}

EnergyDeadlineCurve::EnergyDeadlineCurve(
    std::vector<TimeEnergyPoint> frontier)
    : frontier_(std::move(frontier)) {
  HEC_EXPECTS(!frontier_.empty());
  for (std::size_t i = 1; i < frontier_.size(); ++i) {
    HEC_EXPECTS(frontier_[i].t_s > frontier_[i - 1].t_s);
    HEC_EXPECTS(frontier_[i].energy_j < frontier_[i - 1].energy_j);
  }
}

std::optional<TimeEnergyPoint> EnergyDeadlineCurve::best_for_deadline(
    double deadline_s) const {
  // Frontier energy decreases with time, so the cheapest feasible point is
  // the slowest one still within the deadline.
  const auto it = std::upper_bound(
      frontier_.begin(), frontier_.end(), deadline_s,
      [](double d, const TimeEnergyPoint& p) { return d < p.t_s; });
  if (it == frontier_.begin()) return std::nullopt;
  return *(it - 1);
}

double EnergyDeadlineCurve::min_energy_j(double deadline_s) const {
  const auto best = best_for_deadline(deadline_s);
  return best ? best->energy_j : std::numeric_limits<double>::infinity();
}

double EnergyDeadlineCurve::min_time_s() const {
  return frontier_.front().t_s;
}

}  // namespace hec
