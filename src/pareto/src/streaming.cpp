#include "hec/pareto/streaming.h"

#include <algorithm>
#include <iterator>
#include <queue>
#include <utility>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

ParetoAccumulator::ParetoAccumulator(std::size_t compact_limit)
    : compact_limit_(compact_limit) {
  HEC_EXPECTS(compact_limit_ >= 1);
  buffer_.reserve(compact_limit_);
}

void ParetoAccumulator::compact() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end(), time_energy_less);
  std::vector<TimeEnergyPoint> merged;
  merged.reserve(frontier_.size() + buffer_.size());
  std::merge(frontier_.begin(), frontier_.end(), buffer_.begin(),
             buffer_.end(), std::back_inserter(merged), time_energy_less);
  buffer_.clear();
  frontier_ = pareto_scan_sorted(std::move(merged));
}

void ParetoAccumulator::seed(std::vector<TimeEnergyPoint> frontier) {
  HEC_EXPECTS(frontier_.empty() && buffer_.empty());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    HEC_EXPECTS(frontier[i - 1].t_s < frontier[i].t_s);
    HEC_EXPECTS(frontier[i - 1].energy_j > frontier[i].energy_j);
  }
  frontier_ = std::move(frontier);
}

std::vector<TimeEnergyPoint> ParetoAccumulator::take() {
  compact();
  points_seen_ = 0;
  return std::exchange(frontier_, {});
}

std::vector<TimeEnergyPoint> merge_frontiers(
    std::span<const std::vector<TimeEnergyPoint>> partials) {
  HEC_SPAN("pareto.merge_frontiers");
  std::size_t total = 0;
  for (const auto& part : partials) total += part.size();
  std::vector<TimeEnergyPoint> merged;
  merged.reserve(total);
  // K-way merge via a min-heap of (cursor into partial) — partials are
  // individually sorted, so popping the least head yields global order.
  struct Cursor {
    const std::vector<TimeEnergyPoint>* part;
    std::size_t pos;
  };
  const auto cursor_greater = [](const Cursor& a, const Cursor& b) {
    return time_energy_less((*b.part)[b.pos], (*a.part)[a.pos]);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cursor_greater)>
      heap(cursor_greater);
  for (const auto& part : partials) {
    if (!part.empty()) heap.push({&part, 0});
  }
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    merged.push_back((*c.part)[c.pos]);
    if (++c.pos < c.part->size()) heap.push(c);
  }
  return pareto_scan_sorted(std::move(merged));
}

}  // namespace hec
