// Bottleneck classification of a prediction.
//
// The paper labels each workload CPU-, memory- or I/O-bound (Table 3);
// with the model in hand the label is per *operating point*, not per
// workload — the extension workload even flips class with the P-state.
// This helper reads a Prediction's response-time components and reports
// which resource binds, plus how close the runner-up is (the "slack"
// that tells an operator whether a knob change would shift the regime).
#pragma once

#include <string>

#include "hec/model/node_model.h"
#include "hec/workloads/workload.h"

namespace hec {

/// The binding resource of one predicted execution.
struct BottleneckReport {
  Bottleneck binding = Bottleneck::kCpu;
  /// Ratio of the binding response time to the runner-up's (>= 1); close
  /// to 1 means the operating point sits near a regime boundary.
  double dominance = 1.0;
  /// Fraction of the service time the binding resource accounts for.
  double share = 1.0;
};

/// Classifies a prediction. The CPU class splits per Eq. 3: memory-bound
/// when T_mem exceeds T_core. Precondition: p.t_s > 0.
BottleneckReport classify_bottleneck(const Prediction& p);

/// One-line human-readable explanation, e.g.
/// "I/O-bound (NIC busy 97% of service time; 2.3x over CPU)".
std::string explain_bottleneck(const Prediction& p);

}  // namespace hec
