// Generic N-type mix-and-match.
//
// The paper's methodology "is used to determine a generic mix of
// heterogeneous nodes" (Section II-A) but its evaluation stops at two
// types. This generalises the matching technique: a job is split across
// any number of typed deployments so all finish simultaneously. With
// T_i(w) = k_i * w linear per deployment, the matched shares are
// rate-proportional: w_i = W * r_i / sum(r), r_i = 1 / k_i.
#pragma once

#include <span>
#include <vector>

#include "hec/model/node_model.h"

namespace hec {

/// One node type's deployment in a multi-type cluster. The model pointer
/// is non-owning and must outlive the computation.
struct TypedDeployment {
  const NodeTypeModel* model = nullptr;
  NodeConfig config;
};

/// Matched work shares across all deployments (sum equals work_units).
/// Preconditions: non-empty, every model non-null, work_units > 0.
std::vector<double> match_split_multi(
    std::span<const TypedDeployment> deployments, double work_units);

/// The same rate-proportional shares over already-known per-unit service
/// times (k_i = time_per_unit of deployment i). The deployment-based
/// overload routes through this, so shares computed from cached per-type
/// tables are bit-identical to the uncached ones.
/// Preconditions: non-empty, every k strictly positive, work_units > 0.
std::vector<double> match_split_multi(std::span<const double> time_per_unit,
                                      double work_units);

/// Joint prediction for a matched multi-type execution.
struct MultiPrediction {
  std::vector<double> shares;      ///< per-deployment work units
  std::vector<Prediction> parts;   ///< per-deployment predictions
  double t_s = 0.0;                ///< common completion time
  double energy_j = 0.0;           ///< total energy (Eq. 12 generalised)
};

/// Predicts a matched execution of `work_units` across all deployments.
MultiPrediction predict_multi(std::span<const TypedDeployment> deployments,
                              double work_units);

}  // namespace hec
