// Mix-and-match workload splitting (the paper's core technique).
//
// A job of W work units is split across the low-power and high-performance
// sub-clusters so that both finish at the same time (Eq. 1,
// T = T_ARM = T_AMD), which eliminates the idle tail energy that a naive
// split would leave on the faster side. Because T is linear in the work
// share for a fixed configuration, the matched split is simply
// rate-proportional; a bisection solver is also provided and used by the
// tests to verify the closed form.
#pragma once

#include "hec/model/node_model.h"

namespace hec {

/// A matched division of work between two node types.
struct MatchedSplit {
  double units_a = 0.0;  ///< work units for the first type
  double units_b = 0.0;  ///< work units for the second type
  double t_s = 0.0;      ///< common completion time
};

/// Closed-form matched split: work shares proportional to execution rate.
/// Preconditions: work_units > 0 and both configurations valid.
MatchedSplit match_split(const NodeTypeModel& a, const NodeConfig& cfg_a,
                         const NodeTypeModel& b, const NodeConfig& cfg_b,
                         double work_units);

/// The same closed form over already-known per-unit service times
/// (k = time_per_unit). The model-based overload routes through this,
/// so splits computed from cached per-type tables (hec/config
/// DeploymentTable) are bit-identical to the uncached ones.
/// Preconditions: work_units > 0, both k strictly positive.
MatchedSplit match_split(double time_per_unit_a, double time_per_unit_b,
                         double work_units);

/// Bisection on T_a(w) - T_b(W - w); tolerance is relative on time.
/// Exists to validate the linearity assumption behind match_split.
MatchedSplit match_split_bisect(const NodeTypeModel& a,
                                const NodeConfig& cfg_a,
                                const NodeTypeModel& b,
                                const NodeConfig& cfg_b, double work_units,
                                double rel_tolerance = 1e-9);

/// Joint prediction for a heterogeneous deployment with a matched split.
struct MixedPrediction {
  MatchedSplit split;
  Prediction a;        ///< first type's share
  Prediction b;        ///< second type's share
  double t_s = 0.0;    ///< job service time (max of the two, ~equal)
  double energy_j = 0.0;  ///< total energy, both types (Eq. 12)
};

/// Predicts a matched heterogeneous execution of `work_units`.
MixedPrediction predict_mixed(const NodeTypeModel& a, const NodeConfig& cfg_a,
                              const NodeTypeModel& b, const NodeConfig& cfg_b,
                              double work_units);

}  // namespace hec
