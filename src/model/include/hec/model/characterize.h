// Baseline measurement runners (Section II-D).
//
// These reproduce the paper's input-gathering procedure: execute a small
// representative subset Ps of the workload — and the CPU-max / stall-stream
// power micro-benchmarks — on a single node of each type, read the
// perf-equivalent counters and power-meter-equivalent energies, and distil
// them into the trace-driven inputs the analytical model consumes. WPI and
// SPIcore are taken from one full-node baseline run (they are constant as
// the program scales, Fig. 2); SPImem is measured across every
// (cores, frequency) point and regressed linearly over frequency (Fig. 3).
#pragma once

#include <cstdint>

#include "hec/hw/node_spec.h"
#include "hec/model/inputs.h"
#include "hec/model/node_model.h"
#include "hec/sim/phase.h"
#include "hec/workloads/workload.h"

namespace hec {

/// Knobs for the baseline measurement runs.
struct CharacterizeOptions {
  double baseline_units = 20000.0;  ///< Ps repetitions per baseline run
  std::uint64_t seed = 42;          ///< measurement-noise stream
  double noise_sigma = 0.03;        ///< per-chunk jitter of the substrate
  double run_bias_sigma = 0.02;     ///< run-to-run systematic factor
};

/// Measures IPs, WPI, SPIcore, UCPU, I/O demands and the SPImem-vs-f
/// regression for one workload on one node type.
WorkloadInputs characterize_workload(const NodeSpec& spec,
                                     const PhaseDemand& demand,
                                     const CharacterizeOptions& opts = {});

/// Measures Pidle and the per-P-state core active/stall power plus memory
/// and I/O active increments, using micro-benchmarks (Section II-D2).
PowerParams characterize_power(const NodeSpec& spec,
                               const CharacterizeOptions& opts = {});

/// Convenience: full characterisation pipeline for one (node type,
/// workload) pair, returning a ready-to-use analytical model.
NodeTypeModel build_node_model(
    const NodeSpec& spec, const Workload& workload,
    const CharacterizeOptions& opts = {},
    EnergyAccounting accounting = EnergyAccounting::kOverlapAware);

}  // namespace hec
