// Trace-driven model inputs (the "+" measured quantities of Table 2).
//
// Everything here is *measured* — from perf-counter-equivalent CounterSet
// observations and power-meter-equivalent PowerMeter readings of baseline
// runs on a single node of each type (Section II-D). The analytical model
// consumes only these structs; it never reads the simulator's internal
// parameters. This mirrors the paper's methodology, where model inputs
// come from baseline runs of a representative subset Ps of the workload.
#pragma once

#include <vector>

#include "hec/stats/regression.h"

namespace hec {

/// Power characterisation of one node type (Section II-D2), from the
/// CPU-max and stall micro-benchmarks plus an idle measurement. All core /
/// memory / I/O values are increments above the idle floor.
struct PowerParams {
  std::vector<double> freqs_ghz;       ///< P-states, ascending
  std::vector<double> core_active_w;   ///< per-core work-cycle power by P-state
  std::vector<double> core_stall_w;    ///< per-core stall-cycle power by P-state
  double mem_active_w = 0.0;           ///< memory busy increment
  double io_active_w = 0.0;            ///< NIC busy increment (incl. DMA DRAM)
  double idle_w = 0.0;                 ///< Pidle of the whole node

  /// Linear interpolation of per-core active power at frequency f.
  double core_active_at(double f_ghz) const;
  /// Linear interpolation of per-core stall power at frequency f.
  double core_stall_at(double f_ghz) const;
};

/// Workload characterisation on one node type (Section II-D1).
struct WorkloadInputs {
  double inst_per_unit = 0.0;  ///< IPs: machine instructions per work unit
  double wpi = 0.0;            ///< work cycles per instruction (constant)
  double spi_core = 0.0;       ///< non-memory stall cycles per instruction
  /// SPImem regressed linearly over core frequency, one fit per active
  /// core count (index = cores - 1). The paper validates r^2 >= 0.94.
  std::vector<LinearFit> spi_mem_by_cores;
  double ucpu = 1.0;           ///< measured CPU utilisation (drives cact)
  double io_bytes_per_unit = 0.0;   ///< NIC bytes per work unit
  double io_s_per_unit = 0.0;  ///< effective per-unit I/O service time:
                               ///< max(transfer, 1/lambda) of Eq. 11

  /// SPImem at frequency f with `cores` active (clamped to the fit range).
  double spi_mem(double f_ghz, int cores) const;
};

}  // namespace hec
