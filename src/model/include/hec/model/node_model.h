// The paper's analytical execution-time and energy model (Section II).
//
// Given trace-driven inputs for one (node type, workload) pair, predicts
// the service time and energy of executing W work units on n nodes with c
// cores per node at clock frequency f:
//
//   T      = max(T_CPU, T_I/O)                      (Eq. 2)
//   T_CPU  = max(T_core, T_mem)                     (Eq. 3)
//   T_core = I_core (WPI + SPI_core) / f            (Eqs. 7-8)
//   T_mem  = I_core (WPI + SPI_mem(f, c)) / f       (Eqs. 9-10)
//   I_core = W * IPs / (n * c_act)                  (Eqs. 5-6)
//   T_I/O  = W * max(transfer, 1/lambda) / n        (Eq. 11)
//
// and the energy decomposition of Eqs. 12-19. Two energy-accounting
// variants are provided: the paper's literal Eq. 17 (stall time counts
// only non-memory stalls) and an overlap-aware variant that charges stall
// power for the full stalled portion of T_CPU — a design-choice ablation
// measured by bench_ablation_accounting.
//
// Every quantity above except the final scaling by W is independent of
// the work amount, so prediction factors into an expensive
// configuration-dependent step (interpolating the power curves, resolving
// memory contention, computing c_act) and a cheap work-dependent step
// (~20 flops). compile() materialises the first step as a
// CompiledOperatingPoint whose predict(W) replays the second — predict()
// itself routes through it, so the two are bit-identical by construction.
// The configuration sweeps (hec/config DeploymentTable) cache one
// compiled point per deployment and amortise the expensive step across
// millions of evaluations.
#pragma once

#include "hec/hw/node_spec.h"
#include "hec/model/inputs.h"
#include "hec/sim/power_meter.h"

namespace hec {

/// How Ecore/Emem treat the stall-time overlap (see file comment).
enum class EnergyAccounting {
  kPaperEq17,     ///< T_stall = I_core * SPI_core / f, E_mem = P_mem * T_mem
  kOverlapAware,  ///< T_stall = T_CPU - T_act, memory busy time capped by T
};

/// Per-type node configuration knob: how many nodes, cores and what clock.
struct NodeConfig {
  int nodes = 1;
  int cores = 1;
  double f_ghz = 0.0;
};

/// Model outputs for one node type servicing its workload share.
struct Prediction {
  double t_s = 0.0;        ///< job service time T on this type
  double t_cpu_s = 0.0;    ///< CPU response time (per core)
  double t_core_s = 0.0;   ///< core compute + non-memory stalls
  double t_mem_s = 0.0;    ///< memory response time
  double t_io_s = 0.0;     ///< I/O response time (per node)
  EnergyBreakdown energy;  ///< for ALL nodes of this type
  double energy_j() const { return energy.total_j(); }
};

/// All work-independent intermediates of one (node type, configuration)
/// pair, ready to predict any work amount. predict(W) performs exactly
/// the arithmetic NodeTypeModel::predict would — same operations, same
/// order — so results are bit-identical whether or not the compiled
/// point is cached and reused.
class CompiledOperatingPoint {
 public:
  /// Predicts time and energy for `work_units` on the compiled
  /// configuration. Precondition: work_units >= 0.
  Prediction predict(double work_units) const;

  /// Service time per work unit (T is linear in W); equals
  /// NodeTypeModel::time_per_unit on the compiled configuration.
  double time_per_unit() const { return time_per_unit_; }
  /// Energy per work unit at the compiled configuration.
  double energy_per_unit() const { return energy_per_unit_; }

  const NodeConfig& config() const { return config_; }

  /// The work-independent intermediates behind predict(), exposed
  /// read-only so batch evaluators (hec/sweep's SoA kernel) can replay
  /// predict()'s arithmetic lane-parallel across many compiled points.
  /// Field names mirror the members; values are exactly what predict()
  /// reads, so a replay in the same operation order is bit-identical.
  struct Scalars {
    double n = 1.0;
    double f_hz = 0.0;
    double cact = 0.0;
    double n_cact = 0.0;
    double inst_per_unit = 0.0;
    double wpi = 0.0;
    double spi_core = 0.0;
    double spi_mem = 0.0;
    double io_s_per_unit = 0.0;
    double io_bytes_per_unit = 0.0;
    double bandwidth_bytes_s = 0.0;
    double p_act_w = 0.0;
    double p_stall_w = 0.0;
    double mem_active_w = 0.0;
    double io_active_w = 0.0;
    double idle_w = 0.0;
    EnergyAccounting accounting = EnergyAccounting::kOverlapAware;
  };
  Scalars scalars() const {
    return {n_,     f_hz_,          cact_,          n_cact_,
            inst_per_unit_, wpi_,   spi_core_,      spi_mem_,
            io_s_per_unit_, io_bytes_per_unit_,     bandwidth_bytes_s_,
            p_act_w_,       p_stall_w_,             mem_active_w_,
            io_active_w_,   idle_w_,                accounting_};
  }

 private:
  friend class NodeTypeModel;
  CompiledOperatingPoint() = default;

  NodeConfig config_;
  EnergyAccounting accounting_ = EnergyAccounting::kOverlapAware;
  // Work-independent model intermediates, named as in predict()'s
  // derivation (see node_model.cpp).
  double n_ = 1.0;                ///< node count, as double
  double f_hz_ = 0.0;
  double cact_ = 0.0;             ///< active cores (Eqs. 5-6)
  double n_cact_ = 0.0;           ///< n * cact, the I_core denominator
  double inst_per_unit_ = 0.0;
  double wpi_ = 0.0;
  double spi_core_ = 0.0;
  double spi_mem_ = 0.0;          ///< at the resolved contention level
  double io_s_per_unit_ = 0.0;
  double io_bytes_per_unit_ = 0.0;
  double bandwidth_bytes_s_ = 0.0;
  double p_act_w_ = 0.0;          ///< interpolated core active power
  double p_stall_w_ = 0.0;        ///< interpolated core stall power
  double mem_active_w_ = 0.0;
  double io_active_w_ = 0.0;
  double idle_w_ = 0.0;
  double time_per_unit_ = 0.0;
  double energy_per_unit_ = 0.0;
};

/// Analytical model of one node type running one workload.
class NodeTypeModel {
 public:
  NodeTypeModel(NodeSpec spec, WorkloadInputs workload, PowerParams power,
                EnergyAccounting accounting = EnergyAccounting::kOverlapAware);

  const NodeSpec& spec() const { return spec_; }
  const WorkloadInputs& workload() const { return workload_; }
  const PowerParams& power() const { return power_; }

  /// Predicts time and energy for `work_units` on the given configuration.
  /// Preconditions: work_units >= 0, cfg valid for the node type.
  Prediction predict(double work_units, const NodeConfig& cfg) const;

  /// Resolves every work-independent intermediate of `cfg` once, for
  /// reuse across many work amounts. Precondition: cfg valid.
  CompiledOperatingPoint compile(const NodeConfig& cfg) const;

  /// Service time per work unit (T is linear in W for fixed cfg); this is
  /// the execution-rate inverse used by the matching split.
  double time_per_unit(const NodeConfig& cfg) const;

  /// Energy per work unit at the given configuration.
  double energy_per_unit(const NodeConfig& cfg) const;

 private:
  void validate_config(const NodeConfig& cfg) const;

  NodeSpec spec_;
  WorkloadInputs workload_;
  PowerParams power_;
  EnergyAccounting accounting_;
};

}  // namespace hec
