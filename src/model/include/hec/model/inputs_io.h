// Persistence of trace-driven model inputs.
//
// Characterisation is the expensive step of the pipeline (it runs
// baseline measurements per (cores, P-state) point); a deployment tool
// characterises each node type once and reuses the results. This module
// serialises WorkloadInputs and PowerParams to a line-oriented
// `key value...` text format that is diffable, versioned and
// hand-editable, and parses it back with strict validation.
#pragma once

#include <stdexcept>
#include <string>

#include "hec/model/inputs.h"

namespace hec {

/// Thrown when parsing malformed input text.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Serialises to the text format (round-trip safe via format_double).
std::string serialize_workload_inputs(const WorkloadInputs& inputs);
std::string serialize_power_params(const PowerParams& params);

/// Parses the text format; throws ParseError on unknown keys, missing
/// required fields, or malformed numbers.
WorkloadInputs parse_workload_inputs(const std::string& text);
PowerParams parse_power_params(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_workload_inputs(const WorkloadInputs& inputs,
                          const std::string& path);
WorkloadInputs load_workload_inputs(const std::string& path);
void save_power_params(const PowerParams& params, const std::string& path);
PowerParams load_power_params(const std::string& path);

}  // namespace hec
