#include "hec/model/matching.h"

#include <algorithm>
#include <cmath>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

MatchedSplit match_split(const NodeTypeModel& a, const NodeConfig& cfg_a,
                         const NodeTypeModel& b, const NodeConfig& cfg_b,
                         double work_units) {
  return match_split(a.time_per_unit(cfg_a), b.time_per_unit(cfg_b),
                     work_units);
}

MatchedSplit match_split(double time_per_unit_a, double time_per_unit_b,
                         double work_units) {
  HEC_EXPECTS(work_units > 0.0);
  const double k_a = time_per_unit_a;
  const double k_b = time_per_unit_b;
  HEC_EXPECTS(k_a > 0.0 && k_b > 0.0);
  // T_a(w) = k_a w and T_b(W - w) = k_b (W - w) meet at
  // w = W k_b / (k_a + k_b): shares proportional to execution rates.
  MatchedSplit split;
  split.units_a = work_units * k_b / (k_a + k_b);
  split.units_b = work_units - split.units_a;
  split.t_s = k_a * split.units_a;
  return split;
}

MatchedSplit match_split_bisect(const NodeTypeModel& a,
                                const NodeConfig& cfg_a,
                                const NodeTypeModel& b,
                                const NodeConfig& cfg_b, double work_units,
                                double rel_tolerance) {
  HEC_EXPECTS(work_units > 0.0);
  HEC_EXPECTS(rel_tolerance > 0.0);
  double lo = 0.0;
  double hi = work_units;
  // g(w) = T_a(w) - T_b(W - w) is strictly increasing in w, with
  // g(0) <= 0 <= g(W), so bisection converges unconditionally.
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double t_a = a.predict(mid, cfg_a).t_s;
    const double t_b = b.predict(work_units - mid, cfg_b).t_s;
    if (std::abs(t_a - t_b) <=
        rel_tolerance * std::max({t_a, t_b, 1e-300})) {
      MatchedSplit split;
      split.units_a = mid;
      split.units_b = work_units - mid;
      split.t_s = std::max(t_a, t_b);
      return split;
    }
    if (t_a < t_b) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  MatchedSplit split;
  split.units_a = 0.5 * (lo + hi);
  split.units_b = work_units - split.units_a;
  split.t_s = a.predict(split.units_a, cfg_a).t_s;
  return split;
}

MixedPrediction predict_mixed(const NodeTypeModel& a, const NodeConfig& cfg_a,
                              const NodeTypeModel& b, const NodeConfig& cfg_b,
                              double work_units) {
  MixedPrediction mixed;
  mixed.split = match_split(a, cfg_a, b, cfg_b, work_units);
  mixed.a = a.predict(mixed.split.units_a, cfg_a);
  mixed.b = b.predict(mixed.split.units_b, cfg_b);
  mixed.t_s = std::max(mixed.a.t_s, mixed.b.t_s);
  mixed.energy_j = mixed.a.energy_j() + mixed.b.energy_j();
  return mixed;
}

}  // namespace hec
