#include "hec/model/node_model.h"

#include <algorithm>
#include <cmath>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"
#include "hec/util/units.h"

namespace hec {

namespace {
/// Piecewise-linear interpolation of y over ascending xs; clamps outside.
double interp(const std::vector<double>& xs, const std::vector<double>& ys,
              double x) {
  HEC_EXPECTS(xs.size() == ys.size());
  HEC_EXPECTS(!xs.empty());
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (x <= xs[i]) {
      const double frac = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
      return ys[i - 1] + frac * (ys[i] - ys[i - 1]);
    }
  }
  return ys.back();
}
}  // namespace

double PowerParams::core_active_at(double f_ghz) const {
  return interp(freqs_ghz, core_active_w, f_ghz);
}

double PowerParams::core_stall_at(double f_ghz) const {
  return interp(freqs_ghz, core_stall_w, f_ghz);
}

double WorkloadInputs::spi_mem(double f_ghz, int cores) const {
  HEC_EXPECTS(cores >= 1);
  HEC_EXPECTS(!spi_mem_by_cores.empty());
  const std::size_t idx = std::min(
      static_cast<std::size_t>(cores - 1), spi_mem_by_cores.size() - 1);
  return std::max(0.0, spi_mem_by_cores[idx].at(f_ghz));
}

NodeTypeModel::NodeTypeModel(NodeSpec spec, WorkloadInputs workload,
                             PowerParams power, EnergyAccounting accounting)
    : spec_(std::move(spec)),
      workload_(std::move(workload)),
      power_(std::move(power)),
      accounting_(accounting) {}

void NodeTypeModel::validate_config(const NodeConfig& cfg) const {
  HEC_EXPECTS(cfg.nodes >= 1);
  HEC_EXPECTS(cfg.cores >= 1 && cfg.cores <= spec_.cores);
  HEC_EXPECTS(spec_.pstates.supports(cfg.f_ghz));
}

CompiledOperatingPoint NodeTypeModel::compile(const NodeConfig& cfg) const {
  validate_config(cfg);
  CompiledOperatingPoint op;
  op.config_ = cfg;
  op.accounting_ = accounting_;
  op.n_ = static_cast<double>(cfg.nodes);
  op.f_hz_ = units::ghz_to_hz(cfg.f_ghz);

  // Eqs. 5-6: active cores, with cact = UCPU * c. For batch workloads
  // UCPU is the measured baseline utilisation (~1 for compute-bound
  // programs). For served workloads the cores are starved behind the
  // NIC, and the starvation depends on the operating point: at a
  // config-independent delivery rate of 1/io_s_per_unit units/s, the
  // busy core-seconds per second are cpu_s_per_unit / io_s_per_unit —
  // which is exactly what UCPU * c measures at the baseline point
  // (Section II-B1: "due to serialization of the requests on the I/O
  // device"), generalised across (c, f).
  const int contending_guess = std::max(
      1, std::min(cfg.cores,
                  static_cast<int>(std::lround(workload_.ucpu *
                                               static_cast<double>(cfg.cores)))));
  const double spi_mem_guess = workload_.spi_mem(cfg.f_ghz, contending_guess);
  const double cpu_s_per_unit =
      workload_.inst_per_unit *
      (workload_.wpi + std::max(workload_.spi_core, spi_mem_guess)) / op.f_hz_;
  double cact;
  if (workload_.io_s_per_unit > 0.0) {
    cact = std::min(static_cast<double>(cfg.cores),
                    cpu_s_per_unit / workload_.io_s_per_unit);
  } else {
    cact = workload_.ucpu * static_cast<double>(cfg.cores);
  }
  op.cact_ = std::max(cact, 1e-9);
  op.n_cact_ = op.n_ * op.cact_;

  // Eqs. 9-10: memory contention is driven by the number of cores
  // concurrently issuing requests.
  const int contending = std::max(
      1, std::min(cfg.cores, static_cast<int>(std::lround(op.cact_))));
  op.spi_mem_ = workload_.spi_mem(cfg.f_ghz, contending);
  op.inst_per_unit_ = workload_.inst_per_unit;
  op.wpi_ = workload_.wpi;
  op.spi_core_ = workload_.spi_core;
  op.io_s_per_unit_ = workload_.io_s_per_unit;
  op.io_bytes_per_unit_ = workload_.io_bytes_per_unit;
  op.bandwidth_bytes_s_ =
      units::mbps_to_bytes_per_s(spec_.io_bandwidth_mbps);

  op.p_act_w_ = power_.core_active_at(cfg.f_ghz);
  op.p_stall_w_ = power_.core_stall_at(cfg.f_ghz);
  op.mem_active_w_ = power_.mem_active_w;
  op.io_active_w_ = power_.io_active_w;
  op.idle_w_ = power_.idle_w;

  const Prediction per_unit = op.predict(1.0);
  op.time_per_unit_ = per_unit.t_s;
  op.energy_per_unit_ = per_unit.energy_j();
  return op;
}

Prediction CompiledOperatingPoint::predict(double work_units) const {
  HEC_EXPECTS(work_units >= 0.0);
  Prediction p;
  if (work_units == 0.0) return p;

  // Eqs. 5-6: instructions per active core.
  const double total_instructions = work_units * inst_per_unit_;
  const double i_core = total_instructions / n_cact_;

  // Eqs. 7-10: core and memory response times.
  p.t_core_s = i_core * (wpi_ + spi_core_) / f_hz_;
  p.t_mem_s = i_core * (wpi_ + spi_mem_) / f_hz_;
  // Eq. 3: out-of-order cores overlap compute with memory waits.
  p.t_cpu_s = std::max(p.t_core_s, p.t_mem_s);

  // Eq. 11: I/O response time per node; transfers and arrival waits
  // overlap, so the per-unit cost is their max (io_s_per_unit).
  p.t_io_s = work_units * io_s_per_unit_ / n_;

  // Eq. 2: CPU and I/O activity overlap completely (DMA).
  p.t_s = std::max(p.t_cpu_s, p.t_io_s);

  // ---- Energy (Eqs. 12-19), per node, then scaled by n. ----
  const double t_act = i_core * wpi_ / f_hz_;  // Eq. 16

  double t_stall;     // Eq. 17 or overlap-aware variant
  double mem_busy_s;  // memory device active time
  if (accounting_ == EnergyAccounting::kPaperEq17) {
    t_stall = i_core * spi_core_ / f_hz_;
    mem_busy_s = p.t_mem_s;
  } else {
    t_stall = std::max(0.0, p.t_cpu_s - t_act);
    // Per-core memory stall time, summed over active cores, capped by the
    // job duration (the device cannot be active longer than the run).
    const double per_core_mem_stall = i_core * spi_mem_ / f_hz_;
    mem_busy_s = std::min(p.t_s, cact_ * per_core_mem_stall);
  }

  // Eq. 15: core energy for all active cores of one node.
  const double e_core_node = (p_act_w_ * t_act + p_stall_w_ * t_stall) * cact_;
  // Eq. 18: memory energy.
  const double e_mem_node = mem_active_w_ * mem_busy_s;
  // Eq. 19: I/O energy; the NIC is busy only while actually transferring.
  const double transfer_s =
      work_units * io_bytes_per_unit_ / bandwidth_bytes_s_ / n_;
  const double e_io_node =
      io_active_w_ *
      (accounting_ == EnergyAccounting::kPaperEq17 ? p.t_io_s : transfer_s);
  // Eq. 14: idle floor over the whole service time.
  const double e_idle_node = idle_w_ * p.t_s;

  p.energy.core_j = e_core_node * n_;
  p.energy.mem_j = e_mem_node * n_;
  p.energy.io_j = e_io_node * n_;
  p.energy.idle_j = e_idle_node * n_;
  return p;
}

Prediction NodeTypeModel::predict(double work_units,
                                  const NodeConfig& cfg) const {
  // One code path for every prediction: the sweep caches compiled points
  // and replays the same arithmetic, so cached and uncached results are
  // bit-identical.
  return compile(cfg).predict(work_units);
}

double NodeTypeModel::time_per_unit(const NodeConfig& cfg) const {
  return predict(1.0, cfg).t_s;
}

double NodeTypeModel::energy_per_unit(const NodeConfig& cfg) const {
  return predict(1.0, cfg).energy_j();
}

}  // namespace hec
