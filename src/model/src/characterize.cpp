#include "hec/model/characterize.h"

#include <algorithm>

#include "hec/obs/obs.h"
#include "hec/sim/node_sim.h"
#include "hec/sim/power_meter.h"
#include "hec/util/expect.h"

namespace hec {

namespace {
RunConfig baseline_config(const NodeSpec& spec,
                          const CharacterizeOptions& opts, int cores,
                          double f_ghz, std::uint64_t salt) {
  RunConfig cfg;
  cfg.cores_used = cores;
  cfg.f_ghz = f_ghz;
  cfg.work_units = opts.baseline_units;
  cfg.seed = opts.seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  cfg.noise_sigma = opts.noise_sigma;
  cfg.run_bias_sigma = opts.run_bias_sigma;
  (void)spec;
  return cfg;
}
}  // namespace

WorkloadInputs characterize_workload(const NodeSpec& spec,
                                     const PhaseDemand& demand,
                                     const CharacterizeOptions& opts) {
  HEC_EXPECTS(opts.baseline_units > 0.0);
  HEC_SPAN("model.characterize_workload");
  HEC_COUNTER_INC("model.characterizations");
  WorkloadInputs inputs;

  // One full-node baseline run at fmax: IPs, WPI, SPIcore, UCPU, I/O.
  const double fmax = spec.pstates.max_ghz();
  const RunResult base = simulate_node(
      spec, demand, baseline_config(spec, opts, spec.cores, fmax, 1));
  inputs.inst_per_unit = base.counters.instructions_per_unit();
  inputs.wpi = base.counters.wpi();
  inputs.spi_core = base.counters.spi_core();
  inputs.ucpu = std::clamp(base.ucpu(), 0.0, 1.0);
  inputs.io_bytes_per_unit =
      base.counters.io_bytes / base.counters.work_units;
  inputs.io_s_per_unit = base.io_complete_s / base.counters.work_units;

  // SPImem across every (cores, frequency) point, regressed over f per
  // active-core count (the paper's Fig. 3 procedure).
  const auto& freqs = spec.pstates.frequencies_ghz();
  inputs.spi_mem_by_cores.reserve(static_cast<std::size_t>(spec.cores));
  std::uint64_t salt = 100;
  for (int c = 1; c <= spec.cores; ++c) {
    std::vector<double> xs, ys;
    xs.reserve(freqs.size());
    ys.reserve(freqs.size());
    for (double f : freqs) {
      const RunResult r = simulate_node(
          spec, demand, baseline_config(spec, opts, c, f, salt++));
      xs.push_back(f);
      ys.push_back(r.counters.spi_mem());
    }
    inputs.spi_mem_by_cores.push_back(fit_line(xs, ys));
  }
  return inputs;
}

PowerParams characterize_power(const NodeSpec& spec,
                               const CharacterizeOptions& opts) {
  HEC_SPAN("model.characterize_power");
  PowerParams params;
  params.freqs_ghz = spec.pstates.frequencies_ghz();

  // Idle: meter a workload-free interval (Pidle of Eq. 14).
  {
    PowerMeter meter(spec.idle_node_w(), spec.cores);
    const EnergyBreakdown idle = meter.finish(1.0);
    params.idle_w = idle.total_j() / 1.0;
  }

  // Per-P-state core power from the CPU-max and stall micro-benchmarks.
  const PhaseDemand cpu_max = cpu_max_demand();
  const PhaseDemand stall = stall_stream_demand();
  std::uint64_t salt = 1000;
  for (double f : params.freqs_ghz) {
    // CPU-max on a single core: all busy time is work cycles, so the core
    // energy divided by busy time is the active power directly.
    const RunResult act =
        simulate_node(spec, cpu_max, baseline_config(spec, opts, 1, f, salt++));
    HEC_ENSURES(act.cpu_busy_s > 0.0);
    const double p_act = act.energy.core_j / act.cpu_busy_s;
    params.core_active_w.push_back(p_act);

    // Stall stream: busy time mixes work and stall cycles; separate them
    // with the measured work fraction.
    const RunResult st =
        simulate_node(spec, stall, baseline_config(spec, opts, 1, f, salt++));
    const double cycles = st.counters.work_cycles +
                          std::max(st.counters.core_stall_cycles,
                                   st.counters.mem_stall_cycles);
    HEC_ENSURES(cycles > 0.0);
    const double work_frac = st.counters.work_cycles / cycles;
    const double mixed = st.energy.core_j / st.cpu_busy_s;
    const double p_stall =
        work_frac < 1.0 ? (mixed - work_frac * p_act) / (1.0 - work_frac)
                        : mixed;
    params.core_stall_w.push_back(std::max(0.0, p_stall));
  }

  // Memory active increment: stall stream on every core keeps the memory
  // device busy for the whole run.
  {
    const RunResult st = simulate_node(
        spec, stall,
        baseline_config(spec, opts, spec.cores, spec.pstates.max_ghz(),
                        salt++));
    HEC_ENSURES(st.wall_s > 0.0);
    params.mem_active_w = st.energy.mem_j / st.wall_s;
  }

  // I/O active increment (including the DRAM activity of DMA): a pure
  // transfer workload keeps the NIC saturated.
  {
    PhaseDemand io;
    io.instructions_per_unit = 100.0;  // negligible compute per unit
    io.wpi = 1.0;
    io.io_bytes_per_unit = 64.0 * 1024.0;
    io.io_interarrival_s = 0.0;
    const RunResult r = simulate_node(
        spec, io,
        baseline_config(spec, opts, 1, spec.pstates.min_ghz(), salt++));
    HEC_ENSURES(r.wall_s > 0.0);
    params.io_active_w = (r.energy.io_j + r.energy.mem_j) / r.wall_s;
  }
  return params;
}

NodeTypeModel build_node_model(const NodeSpec& spec, const Workload& workload,
                               const CharacterizeOptions& opts,
                               EnergyAccounting accounting) {
  WorkloadInputs inputs =
      characterize_workload(spec, workload.demand_for(spec.isa), opts);
  PowerParams power = characterize_power(spec, opts);
  return NodeTypeModel(spec, std::move(inputs), std::move(power),
                       accounting);
}

}  // namespace hec
