#include "hec/model/inputs_io.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "hec/util/atomic_file.h"
#include "hec/util/expect.h"

namespace hec {

namespace {

std::string fmt(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  HEC_ENSURES(ec == std::errc{});
  return std::string(buf, ptr);
}

double parse_double(const std::string& token, const std::string& context) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw ParseError("malformed number '" + token + "' in " + context);
  }
  // from_chars happily parses "inf" and "nan"; neither is a meaningful
  // model input and both poison every downstream prediction.
  if (!std::isfinite(value)) {
    throw ParseError("non-finite value '" + token + "' for key '" +
                     context + "'");
  }
  return value;
}

/// parse_double plus a half-open range check, naming the offending key.
double parse_in_range(const std::string& token, const std::string& key,
                      double lo, double hi, bool lo_exclusive = false) {
  const double value = parse_double(token, key);
  const bool too_low = lo_exclusive ? value <= lo : value < lo;
  if (too_low || value > hi) {
    throw ParseError("value " + token + " for key '" + key +
                     "' outside allowed range " +
                     (lo_exclusive ? "(" : "[") + fmt(lo) + ", " + fmt(hi) +
                     "]");
  }
  return value;
}

constexpr double kHuge = 1e30;  // upper sanity bound for open-ended keys

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

std::string serialize_workload_inputs(const WorkloadInputs& inputs) {
  std::ostringstream out;
  out << "format hec-workload-inputs 1\n";
  out << "inst_per_unit " << fmt(inputs.inst_per_unit) << "\n";
  out << "wpi " << fmt(inputs.wpi) << "\n";
  out << "spi_core " << fmt(inputs.spi_core) << "\n";
  out << "ucpu " << fmt(inputs.ucpu) << "\n";
  out << "io_bytes_per_unit " << fmt(inputs.io_bytes_per_unit) << "\n";
  out << "io_s_per_unit " << fmt(inputs.io_s_per_unit) << "\n";
  for (std::size_t c = 0; c < inputs.spi_mem_by_cores.size(); ++c) {
    const LinearFit& fit = inputs.spi_mem_by_cores[c];
    out << "spi_mem_fit " << (c + 1) << " " << fmt(fit.intercept) << " "
        << fmt(fit.slope) << " " << fmt(fit.r_squared) << " " << fit.n
        << "\n";
  }
  return out.str();
}

WorkloadInputs parse_workload_inputs(const std::string& text) {
  WorkloadInputs inputs;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false, saw_inst = false, saw_wpi = false;
  while (std::getline(in, line)) {
    const auto tokens = tokens_of(line);
    if (tokens.empty() || tokens[0].starts_with('#')) continue;
    const std::string& key = tokens[0];
    auto require = [&](std::size_t n) {
      if (tokens.size() != n) {
        throw ParseError("expected " + std::to_string(n - 1) +
                         " values for key '" + key + "'");
      }
    };
    if (key == "format") {
      require(3);
      if (tokens[1] != "hec-workload-inputs") {
        throw ParseError("unexpected format '" + tokens[1] + "'");
      }
      saw_header = true;
    } else if (key == "inst_per_unit") {
      require(2);
      inputs.inst_per_unit =
          parse_in_range(tokens[1], key, 0.0, kHuge, /*lo_exclusive=*/true);
      saw_inst = true;
    } else if (key == "wpi") {
      require(2);
      inputs.wpi = parse_in_range(tokens[1], key, 0.0, kHuge);
      saw_wpi = true;
    } else if (key == "spi_core") {
      require(2);
      inputs.spi_core = parse_in_range(tokens[1], key, 0.0, kHuge);
    } else if (key == "ucpu") {
      require(2);
      inputs.ucpu =
          parse_in_range(tokens[1], key, 0.0, 1.0, /*lo_exclusive=*/true);
    } else if (key == "io_bytes_per_unit") {
      require(2);
      inputs.io_bytes_per_unit = parse_in_range(tokens[1], key, 0.0, kHuge);
    } else if (key == "io_s_per_unit") {
      require(2);
      inputs.io_s_per_unit = parse_in_range(tokens[1], key, 0.0, kHuge);
    } else if (key == "spi_mem_fit") {
      require(6);
      const auto cores =
          static_cast<std::size_t>(parse_in_range(tokens[1], key, 1.0, 1e6));
      if (cores != inputs.spi_mem_by_cores.size() + 1) {
        throw ParseError("spi_mem_fit rows must be consecutive from 1");
      }
      LinearFit fit;
      fit.intercept = parse_in_range(tokens[2], key, -kHuge, kHuge);
      fit.slope = parse_in_range(tokens[3], key, -kHuge, kHuge);
      fit.r_squared = parse_in_range(tokens[4], key, 0.0, 1.0);
      fit.n = static_cast<std::size_t>(
          parse_in_range(tokens[5], key, 0.0, kHuge));
      inputs.spi_mem_by_cores.push_back(fit);
    } else {
      throw ParseError("unknown key '" + key + "'");
    }
  }
  if (!saw_header) throw ParseError("missing format header");
  if (!saw_inst || !saw_wpi) {
    throw ParseError("missing required fields (inst_per_unit, wpi)");
  }
  return inputs;
}

std::string serialize_power_params(const PowerParams& params) {
  HEC_EXPECTS(params.freqs_ghz.size() == params.core_active_w.size());
  HEC_EXPECTS(params.freqs_ghz.size() == params.core_stall_w.size());
  std::ostringstream out;
  out << "format hec-power-params 1\n";
  out << "idle_w " << fmt(params.idle_w) << "\n";
  out << "mem_active_w " << fmt(params.mem_active_w) << "\n";
  out << "io_active_w " << fmt(params.io_active_w) << "\n";
  for (std::size_t i = 0; i < params.freqs_ghz.size(); ++i) {
    out << "pstate " << fmt(params.freqs_ghz[i]) << " "
        << fmt(params.core_active_w[i]) << " "
        << fmt(params.core_stall_w[i]) << "\n";
  }
  return out.str();
}

PowerParams parse_power_params(const std::string& text) {
  PowerParams params;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    const auto tokens = tokens_of(line);
    if (tokens.empty() || tokens[0].starts_with('#')) continue;
    const std::string& key = tokens[0];
    auto require = [&](std::size_t n) {
      if (tokens.size() != n) {
        throw ParseError("expected " + std::to_string(n - 1) +
                         " values for key '" + key + "'");
      }
    };
    if (key == "format") {
      require(3);
      if (tokens[1] != "hec-power-params") {
        throw ParseError("unexpected format '" + tokens[1] + "'");
      }
      saw_header = true;
    } else if (key == "idle_w") {
      require(2);
      params.idle_w = parse_in_range(tokens[1], key, 0.0, kHuge);
    } else if (key == "mem_active_w") {
      require(2);
      params.mem_active_w = parse_in_range(tokens[1], key, 0.0, kHuge);
    } else if (key == "io_active_w") {
      require(2);
      params.io_active_w = parse_in_range(tokens[1], key, 0.0, kHuge);
    } else if (key == "pstate") {
      require(4);
      const double f =
          parse_in_range(tokens[1], key, 0.0, kHuge, /*lo_exclusive=*/true);
      if (!params.freqs_ghz.empty() && f <= params.freqs_ghz.back()) {
        throw ParseError("pstate rows must be ascending in frequency");
      }
      params.freqs_ghz.push_back(f);
      params.core_active_w.push_back(
          parse_in_range(tokens[2], key, 0.0, kHuge));
      params.core_stall_w.push_back(
          parse_in_range(tokens[3], key, 0.0, kHuge));
    } else {
      throw ParseError("unknown key '" + key + "'");
    }
  }
  if (!saw_header) throw ParseError("missing format header");
  if (params.freqs_ghz.empty()) throw ParseError("no pstate rows");
  return params;
}

namespace {
std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  // Atomic replace (hec::IoError on failure): a crash mid-save never
  // truncates a previously good inputs file.
  util::atomic_write_file(path, text);
}
}  // namespace

void save_workload_inputs(const WorkloadInputs& inputs,
                          const std::string& path) {
  write_file(path, serialize_workload_inputs(inputs));
}

WorkloadInputs load_workload_inputs(const std::string& path) {
  return parse_workload_inputs(read_file(path));
}

void save_power_params(const PowerParams& params, const std::string& path) {
  write_file(path, serialize_power_params(params));
}

PowerParams load_power_params(const std::string& path) {
  return parse_power_params(read_file(path));
}

}  // namespace hec
