#include "hec/model/multi_matching.h"

#include <algorithm>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

std::vector<double> match_split_multi(
    std::span<const TypedDeployment> deployments, double work_units) {
  HEC_EXPECTS(!deployments.empty());
  std::vector<double> ks;
  ks.reserve(deployments.size());
  for (const TypedDeployment& d : deployments) {
    HEC_EXPECTS(d.model != nullptr);
    ks.push_back(d.model->time_per_unit(d.config));
  }
  return match_split_multi(ks, work_units);
}

std::vector<double> match_split_multi(std::span<const double> time_per_unit,
                                      double work_units) {
  HEC_EXPECTS(!time_per_unit.empty());
  HEC_EXPECTS(work_units > 0.0);
  std::vector<double> rates;
  rates.reserve(time_per_unit.size());
  double total_rate = 0.0;
  for (const double k : time_per_unit) {
    HEC_EXPECTS(k > 0.0);
    rates.push_back(1.0 / k);
    total_rate += rates.back();
  }
  std::vector<double> shares(time_per_unit.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    shares[i] = work_units * rates[i] / total_rate;
  }
  return shares;
}

MultiPrediction predict_multi(std::span<const TypedDeployment> deployments,
                              double work_units) {
  MultiPrediction out;
  HEC_COUNTER_INC("model.match_splits");
  HEC_COUNTER_ADD("model.predictions",
                  static_cast<double>(deployments.size()));
  out.shares = match_split_multi(deployments, work_units);
  out.parts.reserve(deployments.size());
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    out.parts.push_back(
        deployments[i].model->predict(out.shares[i], deployments[i].config));
    out.t_s = std::max(out.t_s, out.parts.back().t_s);
    out.energy_j += out.parts.back().energy_j();
  }
  return out;
}

}  // namespace hec
