#include "hec/model/bottleneck.h"

#include <algorithm>
#include <sstream>

#include "hec/util/expect.h"

namespace hec {

BottleneckReport classify_bottleneck(const Prediction& p) {
  HEC_EXPECTS(p.t_s > 0.0);
  BottleneckReport report;
  // Eq. 2 first: CPU time vs I/O time.
  if (p.t_io_s > p.t_cpu_s) {
    report.binding = Bottleneck::kIo;
    report.dominance = p.t_cpu_s > 0.0 ? p.t_io_s / p.t_cpu_s : 1e9;
    report.share = p.t_io_s / p.t_s;
    return report;
  }
  // Eq. 3 inside the CPU: memory vs core.
  if (p.t_mem_s > p.t_core_s) {
    report.binding = Bottleneck::kMemory;
    const double runner_up = std::max(p.t_core_s, p.t_io_s);
    report.dominance = runner_up > 0.0 ? p.t_mem_s / runner_up : 1e9;
    report.share = p.t_mem_s / p.t_s;
    return report;
  }
  report.binding = Bottleneck::kCpu;
  const double runner_up = std::max(p.t_mem_s, p.t_io_s);
  report.dominance = runner_up > 0.0 ? p.t_core_s / runner_up : 1e9;
  report.share = p.t_core_s / p.t_s;
  return report;
}

std::string explain_bottleneck(const Prediction& p) {
  const BottleneckReport report = classify_bottleneck(p);
  std::ostringstream out;
  out.precision(2);
  out << std::fixed;
  switch (report.binding) {
    case Bottleneck::kIo:
      out << "I/O-bound (NIC accounts for "
          << report.share * 100.0 << "% of service time; "
          << report.dominance << "x over CPU)";
      break;
    case Bottleneck::kMemory:
      out << "memory-bound (memory waits are " << report.dominance
          << "x the core demand)";
      break;
    case Bottleneck::kCpu:
      out << "CPU-bound (cores lead the runner-up by "
          << report.dominance << "x)";
      break;
  }
  return out.str();
}

}  // namespace hec
