#include "hec/trace/trace.h"

#include "hec/util/expect.h"

namespace hec {

WorkloadTrace::WorkloadTrace(std::vector<PhaseRecord> phases)
    : phases_(std::move(phases)) {
  for (const PhaseRecord& p : phases_) {
    HEC_EXPECTS(p.units > 0.0);
  }
}

void WorkloadTrace::append(PhaseRecord phase) {
  HEC_EXPECTS(phase.units > 0.0);
  phases_.push_back(std::move(phase));
}

double WorkloadTrace::total_units() const {
  double total = 0.0;
  for (const PhaseRecord& p : phases_) total += p.units;
  return total;
}

PhaseDemand WorkloadTrace::blended_demand() const {
  HEC_EXPECTS(!phases_.empty());
  const double units = total_units();
  double instructions = 0.0;
  double work_cycles = 0.0, core_stalls = 0.0, misses = 0.0, fp_inst = 0.0;
  double io_bytes = 0.0, io_floor_weighted = 0.0;
  for (const PhaseRecord& p : phases_) {
    const double phase_inst = p.units * p.demand.instructions_per_unit;
    instructions += phase_inst;
    work_cycles += phase_inst * p.demand.wpi;
    core_stalls += phase_inst * p.demand.spi_core;
    misses += phase_inst * p.demand.mem_misses_per_kinst;
    fp_inst += phase_inst * p.demand.fp_fraction;
    io_bytes += p.units * p.demand.io_bytes_per_unit;
    io_floor_weighted += p.units * p.demand.io_interarrival_s;
  }
  HEC_EXPECTS(instructions > 0.0);
  PhaseDemand blend;
  blend.instructions_per_unit = instructions / units;
  blend.wpi = work_cycles / instructions;
  blend.spi_core = core_stalls / instructions;
  blend.mem_misses_per_kinst = misses / instructions;
  blend.fp_fraction = fp_inst / instructions;
  blend.io_bytes_per_unit = io_bytes / units;
  blend.io_interarrival_s = io_floor_weighted / units;
  return blend;
}

RunResult simulate_trace(const NodeSpec& spec, const WorkloadTrace& trace,
                         const RunConfig& cfg) {
  HEC_EXPECTS(!trace.empty());
  RunResult total;
  total.cores_used = cfg.cores_used;
  std::uint64_t phase_index = 0;
  for (const PhaseRecord& phase : trace.phases()) {
    RunConfig phase_cfg = cfg;
    phase_cfg.work_units = phase.units;
    phase_cfg.seed =
        cfg.seed ^ ((phase_index + 1) * 0x9e3779b97f4a7c15ULL);
    ++phase_index;
    const RunResult r = simulate_node(spec, phase.demand, phase_cfg);
    total.wall_s += r.wall_s;
    total.counters += r.counters;
    total.energy += r.energy;
    total.cpu_busy_s += r.cpu_busy_s;
    total.io_busy_s += r.io_busy_s;
    total.io_complete_s += r.io_complete_s;
  }
  return total;
}

}  // namespace hec
