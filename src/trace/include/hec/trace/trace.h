// Multi-phase workload traces.
//
// The paper's workloads are not perfectly uniform: memcached interleaves
// GET, SET and DELETE requests with different service demands
// (Section II-D1 measures each separately); x264 alternates intra- and
// predicted frames. A WorkloadTrace is the sequence of such phases. The
// analytical model still consumes ONE representative demand — the
// unit-weighted blend — and its accuracy on multi-phase traces is what
// validates the paper's "repeating parallel phase" assumption
// (exercised by test_trace and bench_ext_trace_validation).
#pragma once

#include <string>
#include <vector>

#include "hec/hw/node_spec.h"
#include "hec/sim/node_sim.h"
#include "hec/sim/phase.h"

namespace hec {

/// One homogeneous stretch of a workload: `units` repetitions of a phase.
struct PhaseRecord {
  std::string label;   ///< e.g. "GET", "I-frame"
  PhaseDemand demand;  ///< per-unit service demands
  double units = 0.0;  ///< repetitions of this phase
};

/// An ordered sequence of phases making up one job.
class WorkloadTrace {
 public:
  WorkloadTrace() = default;
  explicit WorkloadTrace(std::vector<PhaseRecord> phases);

  const std::vector<PhaseRecord>& phases() const { return phases_; }
  bool empty() const { return phases_.empty(); }
  std::size_t phase_count() const { return phases_.size(); }

  /// Total work units across all phases.
  double total_units() const;

  /// The single representative demand the model consumes: instruction
  /// counts and I/O bytes are unit-weighted means; cycle ratios (WPI,
  /// SPIcore) and the miss rate are instruction-weighted means, since
  /// they are per-instruction quantities. Precondition: !empty().
  PhaseDemand blended_demand() const;

  /// Appends a phase (units > 0).
  void append(PhaseRecord phase);

 private:
  std::vector<PhaseRecord> phases_;
};

/// Executes the trace phase by phase on one node and stitches the
/// observables: wall times and energies add, counters accumulate.
/// cfg.work_units is ignored (the trace defines the work).
RunResult simulate_trace(const NodeSpec& spec, const WorkloadTrace& trace,
                         const RunConfig& cfg);

}  // namespace hec
