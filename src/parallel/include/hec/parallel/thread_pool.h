// Fixed-size worker pool for the configuration-space sweeps.
//
// The heterogeneous configuration space grows multiplicatively (36,380
// points for a 10+10-node cluster, millions for the budget studies), and
// evaluating each point is an independent pure computation — an
// embarrassingly parallel map. This pool provides the classic
// submit/wait interface plus two loop schedulers that mirror OpenMP
// "parallel for" without the dependency:
//
//   * parallel_for          — static chunking; uniform-cost bodies.
//   * parallel_for_dynamic  — an atomic cursor hands out grain-sized
//     chunks to whichever worker finishes first; variable-cost bodies
//     (the Monte Carlo robust evaluator, whose per-config cost depends
//     on how many faults the trial draws).
//
// Both run the body inline when the range is at most one grain or the
// pool has a single worker, so tiny loops never pay submit overhead.
//
// The shared pool size can be pinned with the HEC_THREADS environment
// variable (HEC_THREADS=0 or 1 means fully serial, deterministic
// execution — useful for CI and sanitizer jobs); unset or invalid values
// fall back to the hardware concurrency.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "hec/util/expect.h"

namespace hec {

/// Fixed-size FIFO thread pool. Threads are joined in the destructor;
/// tasks submitted after shutdown() throw.
class ThreadPool {
 public:
  /// Creates `threads` workers (default: hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future observes its result/exception.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      HEC_EXPECTS(!stopping_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t thread_count() const { return workers_.size(); }

  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Worker count requested by an HEC_THREADS-style value: a decimal
/// count, with 0 meaning "serial" (one worker — parallel_for then runs
/// inline). nullptr, empty or unparseable values return `fallback`.
/// Pure so tests can pin the parsing without re-initialising the pool.
std::size_t thread_count_from_env(const char* value, std::size_t fallback);

/// Shared pool for library-internal parallelism (lazily constructed).
/// Sized by HEC_THREADS when set (see thread_count_from_env), else by
/// the hardware concurrency.
ThreadPool& global_pool();

/// Ranges of at most this many indices run inline: a pool submit costs
/// on the order of a microsecond, which dwarfs tiny loops' useful work.
inline constexpr std::size_t kParallelInlineGrain = 32;

/// Runs body(i) for i in [begin, end) across the pool with static
/// chunking. Ranges of at most `grain` indices run inline on the calling
/// thread. Rethrows the first exception thrown by any chunk. body must
/// be safe to invoke concurrently for distinct indices.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  ThreadPool& pool = global_pool(),
                  std::size_t grain = kParallelInlineGrain) {
  HEC_EXPECTS(begin <= end);
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t workers = pool.thread_count();
  // Small ranges: not worth the dispatch overhead.
  if (n <= grain || workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs body(i) for i in [begin, end) with dynamic scheduling: an atomic
/// cursor hands out `grain`-sized chunks to whichever worker is free, so
/// variable-cost bodies (Monte Carlo trials, pruned searches) load-balance
/// instead of convoying behind the slowest static chunk. Ranges of at
/// most `grain` indices run inline. Rethrows the first exception; the
/// cursor is driven to the end first so no chunk runs after an error
/// escapes. body must be safe to invoke concurrently for distinct indices.
template <typename Body>
void parallel_for_dynamic(std::size_t begin, std::size_t end,
                          std::size_t grain, const Body& body,
                          ThreadPool& pool = global_pool()) {
  HEC_EXPECTS(begin <= end);
  HEC_EXPECTS(grain >= 1);
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t workers = pool.thread_count();
  if (n <= grain || workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t tasks =
      std::min(workers, (n + grain - 1) / grain);
  std::atomic<std::size_t> cursor{begin};
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(pool.submit([&cursor, end, grain, &body] {
      for (;;) {
        const std::size_t lo = cursor.fetch_add(grain);
        if (lo >= end) return;
        const std::size_t hi = std::min(end, lo + grain);
        try {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        } catch (...) {
          // Park the cursor past the end so sibling tasks drain quickly,
          // then let the exception surface through the future.
          cursor.store(end);
          throw;
        }
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Parallel map: out[i] = fn(i) for i in [0, n). Returns the vector.
template <typename R, typename Fn>
std::vector<R> parallel_map(std::size_t n, const Fn& fn,
                            ThreadPool& pool = global_pool()) {
  std::vector<R> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = fn(i); }, pool);
  return out;
}

}  // namespace hec
