// Fixed-size worker pool for the configuration-space sweeps.
//
// The heterogeneous configuration space grows multiplicatively (36,380
// points for a 10+10-node cluster, millions for the budget studies), and
// evaluating each point is an independent pure computation — an
// embarrassingly parallel map. This pool provides the classic
// submit/wait interface plus a static-chunked parallel_for that mirrors an
// OpenMP "parallel for schedule(static)" without the dependency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "hec/util/expect.h"

namespace hec {

/// Fixed-size FIFO thread pool. Threads are joined in the destructor;
/// tasks submitted after shutdown() throw.
class ThreadPool {
 public:
  /// Creates `threads` workers (default: hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future observes its result/exception.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      HEC_EXPECTS(!stopping_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t thread_count() const { return workers_.size(); }

  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Shared pool for library-internal parallelism (lazily constructed).
ThreadPool& global_pool();

/// Runs body(i) for i in [begin, end) across the pool with static chunking.
/// Rethrows the first exception thrown by any chunk. body must be safe to
/// invoke concurrently for distinct indices.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  ThreadPool& pool = global_pool()) {
  HEC_EXPECTS(begin <= end);
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t workers = pool.thread_count();
  // Small ranges: not worth the dispatch overhead.
  if (n == 1 || workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Parallel map: out[i] = fn(i) for i in [0, n). Returns the vector.
template <typename R, typename Fn>
std::vector<R> parallel_map(std::size_t n, const Fn& fn,
                            ThreadPool& pool = global_pool()) {
  std::vector<R> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = fn(i); }, pool);
  return out;
}

}  // namespace hec
