// Periodic background task: run a callback every interval until stopped.
//
// The sharded sweep substrate (hec/shard) needs two tiny recurring
// jobs — a worker's heartbeat sender and the coordinator's lease
// monitor — that must keep firing while the main thread is busy or
// blocked. This is the minimal primitive for both: one thread, a
// condvar-timed wait (so stop() takes effect immediately, not after a
// sleep expires), first fire one interval after construction.
//
// Fork-safety contract: the callback runs on the task's own thread. A
// process that intends to fork() while a PeriodicTask is live must make
// the callback take the same lock the forking thread holds around
// fork(), so the child is never created while the callback is mid-heap
// operation (see hec/shard/coordinator.cpp for the pattern).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace hec {

/// Runs `fn` every `interval_s` seconds on a dedicated thread until
/// stop() or destruction. Exceptions escaping `fn` terminate the
/// process (they indicate a programming error in a monitor/heartbeat
/// body, which must be fail-safe by design).
class PeriodicTask {
 public:
  PeriodicTask(double interval_s, std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Stops the cadence and joins the thread. Idempotent; after stop()
  /// returns, `fn` is guaranteed not to be running and never runs again.
  void stop();

  /// Completed invocations of `fn` so far (for tests and accounting).
  std::uint64_t ticks() const;

 private:
  void loop(double interval_s, const std::function<void()>& fn);

  mutable std::mutex mutex_;
  std::mutex join_mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t ticks_ = 0;
  std::thread thread_;
};

}  // namespace hec
