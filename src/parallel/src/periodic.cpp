#include "hec/parallel/periodic.h"

#include <chrono>
#include <utility>

namespace hec {

PeriodicTask::PeriodicTask(double interval_s, std::function<void()> fn)
    : thread_([this, interval_s, fn = std::move(fn)] {
        loop(interval_s, fn);
      }) {}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Serialise the join so concurrent stop() calls are safe.
  std::lock_guard join_lock(join_mutex_);
  if (thread_.joinable()) thread_.join();
}

std::uint64_t PeriodicTask::ticks() const {
  std::lock_guard lock(mutex_);
  return ticks_;
}

void PeriodicTask::loop(double interval_s, const std::function<void()>& fn) {
  const auto interval = std::chrono::duration<double>(interval_s);
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [&] { return stopping_; })) break;
    // Run the body unlocked so stop() and ticks() never wait on it.
    lock.unlock();
    fn();
    lock.lock();
    ++ticks_;
  }
}

}  // namespace hec
