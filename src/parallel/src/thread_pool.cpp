#include "hec/parallel/thread_pool.h"

namespace hec {

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  HEC_EXPECTS(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hec
