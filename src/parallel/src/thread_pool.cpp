#include "hec/parallel/thread_pool.h"

#include <cctype>
#include <cstdlib>

namespace hec {

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  HEC_EXPECTS(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t thread_count_from_env(const char* value, std::size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  // Reject trailing garbage ("4x"), signs and empty parses; strtoul
  // accepts leading whitespace, which is fine.
  if (end == value) return fallback;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return fallback;
    ++end;
  }
  if (value[0] == '-' || value[0] == '+') return fallback;
  // 0 means "serial": one worker, so parallel_for runs inline.
  if (parsed == 0) return 1;
  // Cap absurd requests; a pool of thousands of threads is never useful.
  constexpr unsigned long kMaxThreads = 1024;
  return static_cast<std::size_t>(std::min(parsed, kMaxThreads));
}

ThreadPool& global_pool() {
  static ThreadPool pool(thread_count_from_env(
      std::getenv("HEC_THREADS"), ThreadPool::default_thread_count()));
  return pool;
}

}  // namespace hec
