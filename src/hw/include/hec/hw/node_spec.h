// Hardware description of a cluster node type.
//
// Mirrors Table 1 of the paper plus the power decomposition of Section II-A:
// a node's power splits into cores (per P-state, active/stall/idle), memory
// (idle/active), network I/O device (idle/active) and a fixed
// rest-of-the-system component. Cores stay in C-state 0 (never sleep) and
// only change P-state, exactly as the paper assumes for datacenter nodes.
#pragma once

#include <string>
#include <vector>

namespace hec {

/// Instruction set architecture of a node type. The same work unit
/// translates into a different machine instruction count per ISA.
enum class Isa {
  kArmV7a,   ///< 32-bit ARMv7-A (e.g. Cortex-A9)
  kX86_64,   ///< x86-64 (e.g. AMD Opteron K10)
};

/// Human-readable ISA name ("armv7-a" / "x86_64").
std::string to_string(Isa isa);

/// Discrete P-state table: the core clock frequencies a node supports,
/// sorted ascending, in GHz. All cores of a node share one frequency.
class PStateTable {
 public:
  PStateTable() = default;
  /// Preconditions: non-empty, strictly ascending, all positive.
  explicit PStateTable(std::vector<double> freqs_ghz);

  const std::vector<double>& frequencies_ghz() const { return freqs_ghz_; }
  double min_ghz() const { return freqs_ghz_.front(); }
  double max_ghz() const { return freqs_ghz_.back(); }
  std::size_t size() const { return freqs_ghz_.size(); }

  /// True if f_ghz matches a supported P-state (within 1e-9 tolerance).
  bool supports(double f_ghz) const;
  /// Smallest supported frequency >= f_ghz; throws std::out_of_range if none.
  double ceil(double f_ghz) const;

 private:
  std::vector<double> freqs_ghz_;
};

/// Per-core power as a function of clock frequency:
///   P(f) = base + lin*f + cub*f^3   [watts, f in GHz]
///
/// The cubic term captures dynamic power ~ C*V^2*f with voltage roughly
/// proportional to frequency along the DVFS curve; the base term is the
/// C-state-0 leakage floor that remains even when a core only idles.
struct CorePowerCurve {
  double base_w = 0.0;
  double lin_w_per_ghz = 0.0;
  double cub_w_per_ghz3 = 0.0;

  double at(double f_ghz) const {
    return base_w + lin_w_per_ghz * f_ghz +
           cub_w_per_ghz3 * f_ghz * f_ghz * f_ghz;
  }
};

/// Two-state device power (memory or network I/O): idle vs active draw.
struct DevicePower {
  double idle_w = 0.0;
  double active_w = 0.0;
};

/// Full description of one node type (Table 1 + power characterisation).
struct NodeSpec {
  std::string name;
  Isa isa = Isa::kX86_64;

  int cores = 1;
  PStateTable pstates;

  // Cache/memory geometry (informational; the simulator derives miss costs
  // from the memory timing fields below, not from these sizes).
  double l1d_kib_per_core = 0.0;
  double l2_kib = 0.0;        ///< total L2 (per-core x cores for AMD, shared for ARM)
  double l3_kib = 0.0;        ///< 0 when absent (ARM Cortex-A9 has no L3)
  double memory_gib = 0.0;

  double io_bandwidth_mbps = 0.0;  ///< network link speed

  // Memory subsystem timing: cost of one last-level-cache miss, split into a
  // frequency-independent part (cycles spent in on-chip queues/L2) and a
  // DRAM part fixed in wall-clock time. In core cycles a miss costs
  //   fixed_cycles + dram_latency_ns * f
  // which makes memory stalls-per-instruction linear in f (paper Fig. 3).
  double miss_fixed_cycles = 0.0;
  double dram_latency_ns = 0.0;
  /// Relative latency growth per additional active core contending for the
  /// single shared memory controller (paper Section II-B2, citing [36]).
  double mem_contention_per_core = 0.0;

  // Power decomposition.
  CorePowerCurve core_active;   ///< executing work cycles
  CorePowerCurve core_stall;    ///< stalled (memory or pipeline)
  double core_idle_w = 0.0;     ///< C0 idle floor per core, frequency-independent
  DevicePower memory_power;
  DevicePower io_power;
  double rest_of_system_w = 0.0;  ///< disks, PSU losses, board circuitry

  /// Pidle: whole node powered on, no workload (Eq. 14 input).
  double idle_node_w() const;
  /// Peak draw: all cores active at fmax, memory and I/O active.
  /// This is the quantity the power-substitution ratio is based on.
  double peak_node_w() const;
};

}  // namespace hec
