// Node-type catalogue.
//
// arm_cortex_a9() and amd_opteron_k10() reproduce Table 1 of the paper with
// power characterisation calibrated to the paper's reported figures: ARM
// peak ~5 W / idle <2 W, AMD peak ~60 W / idle 45 W (Sections IV-C, IV-E).
// The remaining types model the other architectures the paper lists as
// covered by its execution model (Section II-A) and support extension
// studies beyond the paper's two-type evaluation.
#pragma once

#include "hec/hw/node_spec.h"

namespace hec {

/// Low-power node: ARM Cortex-A9, 4 cores @ 0.2-1.4 GHz (5 P-states),
/// 1 GiB LP-DDR2, 100 Mbps NIC. Peak ~5 W, idle <2 W.
NodeSpec arm_cortex_a9();

/// High-performance node: AMD Opteron K10, 6 cores @ 0.8-2.1 GHz
/// (3 P-states), 8 GiB DDR3, 1 Gbps NIC. Peak ~60 W, idle 45 W.
NodeSpec amd_opteron_k10();

/// Extension type: ARM Cortex-A15 class (faster low-power node).
NodeSpec arm_cortex_a15();

/// Extension type: Intel Xeon class (alternative high-performance node).
NodeSpec intel_xeon_class();

/// Top-of-rack switch that aggregates low-power nodes. The paper charges
/// 20 W of switch power against ARM-side deployments when deriving the
/// 8:1 power substitution ratio (footnote 5, citing a Cisco 2960-S).
struct SwitchSpec {
  double power_w = 20.0;
  int ports = 24;
};

/// Switch model used throughout the paper's budget analysis.
SwitchSpec rack_switch();

/// Number of switches needed to connect n low-power nodes (ceil division).
int switches_needed(int n_nodes, const SwitchSpec& sw = rack_switch());

}  // namespace hec
