#include "hec/hw/catalog.h"

#include "hec/util/expect.h"

namespace hec {

NodeSpec arm_cortex_a9() {
  NodeSpec s;
  s.name = "ARM Cortex-A9";
  s.isa = Isa::kArmV7a;
  s.cores = 4;
  s.pstates = PStateTable({0.2, 0.5, 0.8, 1.1, 1.4});
  s.l1d_kib_per_core = 32.0;
  s.l2_kib = 1024.0;  // 1 MiB shared per node
  s.l3_kib = 0.0;
  s.memory_gib = 1.0;  // LP-DDR2
  s.io_bandwidth_mbps = 100.0;

  s.miss_fixed_cycles = 20.0;
  s.dram_latency_ns = 110.0;  // LP-DDR2 is slow but low-power
  s.mem_contention_per_core = 0.25;

  s.core_active = {0.05, 0.20, 0.15};  // ~0.74 W/core at 1.4 GHz
  s.core_stall = {0.05, 0.12, 0.08};   // ~0.44 W/core at 1.4 GHz
  s.core_idle_w = 0.05;
  s.memory_power = {0.10, 0.55};
  s.io_power = {0.08, 0.35};
  s.rest_of_system_w = 1.0;
  // => idle 1.38 W (<2 W), peak ~4.9 W (~5 W): matches the paper.
  return s;
}

NodeSpec amd_opteron_k10() {
  NodeSpec s;
  s.name = "AMD Opteron K10";
  s.isa = Isa::kX86_64;
  s.cores = 6;
  s.pstates = PStateTable({0.8, 1.5, 2.1});
  s.l1d_kib_per_core = 64.0;
  s.l2_kib = 6.0 * 512.0;  // 512 KiB per core
  s.l3_kib = 6144.0;       // 6 MiB shared
  s.memory_gib = 8.0;      // DDR3
  s.io_bandwidth_mbps = 1000.0;

  s.miss_fixed_cycles = 30.0;
  s.dram_latency_ns = 55.0;  // DDR3 with deeper MC queues
  s.mem_contention_per_core = 0.12;

  s.core_active = {1.50, 0.30, 0.15};  // ~3.5 W/core at 2.1 GHz
  s.core_stall = {1.50, 0.18, 0.08};   // ~2.6 W/core at 2.1 GHz
  s.core_idle_w = 1.50;
  s.memory_power = {4.0, 6.0};
  s.io_power = {2.0, 3.0};
  s.rest_of_system_w = 30.0;
  // => idle 45 W, peak ~60 W: matches the paper.
  return s;
}

NodeSpec arm_cortex_a15() {
  NodeSpec s = arm_cortex_a9();
  s.name = "ARM Cortex-A15";
  s.pstates = PStateTable({0.6, 1.0, 1.4, 1.8});
  s.l1d_kib_per_core = 32.0;
  s.l2_kib = 2048.0;
  s.memory_gib = 2.0;
  s.io_bandwidth_mbps = 1000.0;
  s.miss_fixed_cycles = 25.0;
  s.dram_latency_ns = 80.0;
  s.mem_contention_per_core = 0.18;
  s.core_active = {0.12, 0.35, 0.28};  // ~1.4 W/core at 1.8 GHz
  s.core_stall = {0.12, 0.20, 0.15};
  s.core_idle_w = 0.12;
  s.memory_power = {0.15, 0.80};
  s.io_power = {0.20, 0.60};
  s.rest_of_system_w = 1.5;
  return s;
}

NodeSpec intel_xeon_class() {
  NodeSpec s = amd_opteron_k10();
  s.name = "Intel Xeon class";
  s.cores = 8;
  s.pstates = PStateTable({1.2, 1.8, 2.4, 3.0});
  s.l1d_kib_per_core = 32.0;
  s.l2_kib = 8.0 * 256.0;
  s.l3_kib = 20.0 * 1024.0;
  s.memory_gib = 32.0;
  s.io_bandwidth_mbps = 10000.0;
  s.miss_fixed_cycles = 35.0;
  s.dram_latency_ns = 50.0;
  s.mem_contention_per_core = 0.08;
  s.core_active = {1.8, 0.4, 0.12};
  s.core_stall = {1.8, 0.22, 0.06};
  s.core_idle_w = 1.8;
  s.memory_power = {6.0, 10.0};
  s.io_power = {3.0, 5.0};
  s.rest_of_system_w = 40.0;
  return s;
}

SwitchSpec rack_switch() { return SwitchSpec{}; }

int switches_needed(int n_nodes, const SwitchSpec& sw) {
  HEC_EXPECTS(n_nodes >= 0);
  HEC_EXPECTS(sw.ports > 0);
  return (n_nodes + sw.ports - 1) / sw.ports;
}

}  // namespace hec
