#include "hec/hw/node_spec.h"

#include <cmath>
#include <stdexcept>

#include "hec/util/expect.h"

namespace hec {

std::string to_string(Isa isa) {
  switch (isa) {
    case Isa::kArmV7a:
      return "armv7-a";
    case Isa::kX86_64:
      return "x86_64";
  }
  return "unknown";
}

PStateTable::PStateTable(std::vector<double> freqs_ghz)
    : freqs_ghz_(std::move(freqs_ghz)) {
  HEC_EXPECTS(!freqs_ghz_.empty());
  HEC_EXPECTS(freqs_ghz_.front() > 0.0);
  for (std::size_t i = 1; i < freqs_ghz_.size(); ++i) {
    HEC_EXPECTS(freqs_ghz_[i] > freqs_ghz_[i - 1]);
  }
}

bool PStateTable::supports(double f_ghz) const {
  for (double f : freqs_ghz_) {
    if (std::abs(f - f_ghz) < 1e-9) return true;
  }
  return false;
}

double PStateTable::ceil(double f_ghz) const {
  for (double f : freqs_ghz_) {
    if (f >= f_ghz - 1e-9) return f;
  }
  throw std::out_of_range("no P-state at or above requested frequency");
}

double NodeSpec::idle_node_w() const {
  return rest_of_system_w + memory_power.idle_w + io_power.idle_w +
         static_cast<double>(cores) * core_idle_w;
}

double NodeSpec::peak_node_w() const {
  return rest_of_system_w + memory_power.active_w + io_power.active_w +
         static_cast<double>(cores) * core_active.at(pstates.max_ghz());
}

}  // namespace hec
