#include "hec/io/table.h"

#include <algorithm>
#include <cstdio>

#include "hec/util/expect.h"

namespace hec {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)),
      align_(columns_.size(), Align::kRight) {
  HEC_EXPECTS(!columns_.empty());
  if (!align_.empty()) align_.front() = Align::kLeft;
}

void TablePrinter::set_alignment(std::vector<Align> align) {
  HEC_EXPECTS(align.size() == columns_.size());
  align_ = std::move(align);
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  HEC_EXPECTS(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  HEC_EXPECTS(precision >= 0 && precision <= 17);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::print_markdown(std::ostream& out) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (const auto& cell : row) {
      out << ' ';
      // Escape pipes so cells cannot break the table structure.
      for (char c : cell) {
        if (c == '|') out << '\\';
        out << c;
      }
      out << " |";
    }
    out << '\n';
  };
  emit_row(columns_);
  out << '|';
  for (Align a : align_) {
    out << (a == Align::kRight ? "---:|" : "---|");
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      const auto pad = widths[c] - row[c].size();
      if (align_[c] == Align::kRight) out << std::string(pad, ' ');
      out << row[c];
      if (align_[c] == Align::kLeft && c + 1 != row.size()) {
        out << std::string(pad, ' ');
      }
    }
    out << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace hec
