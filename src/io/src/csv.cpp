#include "hec/io/csv.h"

#include <charconv>

#include "hec/util/expect.h"

namespace hec {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string format_double(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  HEC_ENSURES(ec == std::errc{});
  return std::string(buf, ptr);
}

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void CsvWriter::header(const std::vector<std::string>& columns) {
  HEC_EXPECTS(!header_written_);
  HEC_EXPECTS(rows_ == 0);
  HEC_EXPECTS(!columns.empty());
  columns_ = columns.size();
  header_written_ = true;
  write_cells(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (header_written_) HEC_EXPECTS(cells.size() == columns_);
  write_cells(cells);
  ++rows_;
}

void CsvWriter::row_values(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format_double(v));
  row(formatted);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace hec
