// Aligned console tables.
//
// The table benches print the same rows the paper's tables report; this
// formatter keeps them readable in a terminal without external tooling.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hec {

/// Column alignment within a TablePrinter.
enum class Align { kLeft, kRight };

/// Accumulates rows, then prints them with per-column width alignment,
/// a header underline, and two-space column separation.
class TablePrinter {
 public:
  /// Creates a table with the given column titles (non-empty).
  explicit TablePrinter(std::vector<std::string> columns);

  /// Sets per-column alignment; size must match the column count.
  void set_alignment(std::vector<Align> align);

  /// Adds a row; cell count must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: mixed text/number rows. Numbers formatted with
  /// `precision` digits after the decimal point.
  static std::string num(double v, int precision = 2);

  /// Renders the table to `out`.
  void print(std::ostream& out) const;

  /// Renders as a GitHub-flavoured Markdown table (used by the report
  /// generator); alignment maps to the `---`/`---:` separator syntax.
  void print_markdown(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hec
