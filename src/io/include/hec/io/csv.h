// CSV emission for figure regeneration.
//
// Every figure bench dumps its series as CSV next to the binary so the
// plots can be regenerated with any plotting tool; this replaces the
// gnuplot pipelines used for the paper's figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hec {

/// Row-oriented CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Writes to an externally owned stream (kept for the writer's lifetime).
  explicit CsvWriter(std::ostream& out);

  /// Writes the header row. Must be called before any data row, once.
  void header(const std::vector<std::string>& columns);

  /// Writes a data row; cell count must match the header (if one was set).
  void row(const std::vector<std::string>& cells);
  /// Convenience: formats doubles with full round-trip precision.
  void row_values(const std::vector<double>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ostream& out_;
  std::size_t columns_ = 0;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

/// Quotes a cell per RFC 4180 when it contains commas, quotes or newlines.
std::string csv_escape(const std::string& cell);

/// Formats a double with shortest round-trip representation.
std::string format_double(double v);

}  // namespace hec
