// Gnuplot script generation.
//
// The figure benches dump CSV series; these helpers also emit a matching
// gnuplot script so each figure regenerates with a single
// `gnuplot <fig>.gp` — restoring the plotting convenience the original
// analysis pipeline had. Scripts reference the CSV by relative path and
// render to PNG.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace hec {

/// One plotted series: rows of `csv_file` filtered/selected by gnuplot
/// `using` syntax (1-based column indices).
struct GnuplotSeries {
  std::string title;
  int x_column = 1;
  int y_column = 2;
  /// Optional row filter, e.g. "$3 == 1" (gnuplot ternary filter).
  std::string row_filter;
  std::string style = "linespoints";
};

/// Figure-level options.
struct GnuplotFigure {
  std::string output_png;  ///< e.g. "fig4_pareto_ep.png"
  std::string title;
  std::string x_label;
  std::string y_label;
  bool log_x = false;      ///< the paper's Figs. 6-10 use log deadlines
  bool log_y = false;
  std::optional<double> y_min;
  std::optional<double> y_max;
};

/// Renders a gnuplot script plotting `series` from `csv_file` (which must
/// have a header row; the script skips it). Preconditions: non-empty
/// series, valid 1-based columns.
std::string gnuplot_script(const std::string& csv_file,
                           const GnuplotFigure& figure,
                           const std::vector<GnuplotSeries>& series);

/// Writes the script next to the CSV as `<stem>.gp`; returns the path.
/// Throws std::runtime_error on I/O failure.
std::string write_gnuplot_script(const std::string& csv_file,
                                 const GnuplotFigure& figure,
                                 const std::vector<GnuplotSeries>& series);

}  // namespace hec
