#include "hec/sim/nic_model.h"

#include <algorithm>

namespace hec {

NicModel::NicModel(double bandwidth_bytes_per_s)
    : bandwidth_(bandwidth_bytes_per_s) {
  HEC_EXPECTS(bandwidth_bytes_per_s > 0.0);
}

double NicModel::admit(double earliest_start, double bytes) {
  HEC_EXPECTS(earliest_start >= 0.0);
  HEC_EXPECTS(bytes >= 0.0);
  const double start = std::max(earliest_start, next_free_);
  const double duration = bytes / bandwidth_;
  next_free_ = start + duration;
  busy_s_ += duration;
  total_bytes_ += bytes;
  return next_free_;
}

}  // namespace hec
