#include "hec/sim/power_meter.h"

#include <numeric>

#include "hec/util/expect.h"

namespace hec {

PowerMeter::PowerMeter(double idle_floor_w, int n_cores)
    : idle_floor_w_(idle_floor_w),
      core_w_(static_cast<std::size_t>(n_cores), 0.0) {
  HEC_EXPECTS(idle_floor_w >= 0.0);
  HEC_EXPECTS(n_cores >= 1);
}

void PowerMeter::advance(double t) {
  HEC_EXPECTS(t >= last_t_);
  const double dt = t - last_t_;
  if (dt > 0.0) {
    acc_.idle_j += idle_floor_w_ * dt;
    acc_.core_j +=
        std::accumulate(core_w_.begin(), core_w_.end(), 0.0) * dt;
    acc_.mem_j += mem_w_ * dt;
    acc_.io_j += io_w_ * dt;
    last_t_ = t;
  }
}

void PowerMeter::set_core_power(int i, double watts, double t) {
  HEC_EXPECTS(i >= 0 && static_cast<std::size_t>(i) < core_w_.size());
  HEC_EXPECTS(watts >= 0.0);
  advance(t);
  core_w_[static_cast<std::size_t>(i)] = watts;
}

void PowerMeter::set_mem_power(double watts, double t) {
  HEC_EXPECTS(watts >= 0.0);
  advance(t);
  mem_w_ = watts;
}

void PowerMeter::set_io_power(double watts, double t) {
  HEC_EXPECTS(watts >= 0.0);
  advance(t);
  io_w_ = watts;
}

EnergyBreakdown PowerMeter::finish(double t) {
  advance(t);
  return acc_;
}

double PowerMeter::current_power_w() const {
  return idle_floor_w_ +
         std::accumulate(core_w_.begin(), core_w_.end(), 0.0) + mem_w_ +
         io_w_;
}

}  // namespace hec
