#include "hec/sim/memory_model.h"

#include "hec/util/expect.h"

namespace hec {

double MemoryModel::miss_cycles(double f_ghz, int active_cores) const {
  HEC_EXPECTS(f_ghz > 0.0);
  HEC_EXPECTS(active_cores >= 1 && active_cores <= cores_);
  const double contention =
      1.0 + contention_per_core_ * static_cast<double>(active_cores - 1);
  // On-chip cycles are paid as-is; DRAM nanoseconds convert to core cycles
  // at f (GHz == cycles/ns), inflated by controller contention.
  return miss_fixed_cycles_ + dram_latency_ns_ * contention * f_ghz;
}

double MemoryModel::spi_mem(const PhaseDemand& d, double f_ghz,
                            int active_cores) const {
  HEC_EXPECTS(d.mem_misses_per_kinst >= 0.0);
  return d.mem_misses_per_kinst / 1000.0 * miss_cycles(f_ghz, active_cores);
}

}  // namespace hec
