#include "hec/sim/node_sim.h"

#include <algorithm>
#include <vector>

#include "hec/sim/event_queue.h"
#include "hec/sim/memory_model.h"
#include "hec/sim/nic_model.h"
#include "hec/util/expect.h"
#include "hec/util/rng.h"
#include "hec/util/units.h"

namespace hec {

namespace {

/// Mutable state of one simulated run, shared by the event callbacks.
class NodeRun {
 public:
  NodeRun(const NodeSpec& spec, const PhaseDemand& demand,
          const RunConfig& cfg)
      : spec_(spec),
        demand_(demand),
        cfg_(cfg),
        mem_model_(spec),
        meter_(spec.idle_node_w(), spec.cores),
        rng_(cfg.seed) {
    HEC_EXPECTS(cfg.cores_used >= 1 && cfg.cores_used <= spec.cores);
    HEC_EXPECTS(spec.pstates.supports(cfg.f_ghz));
    HEC_EXPECTS(cfg.work_units > 0.0);
    HEC_EXPECTS(cfg.chunks_per_core >= 1);
    run_bias_ = rng_.lognormal_unit(cfg.run_bias_sigma);
    power_bias_ = rng_.lognormal_unit(cfg.run_bias_sigma * 0.75);
    mem_duty_.assign(static_cast<std::size_t>(spec.cores), 0.0);
  }

  RunResult run() {
    const int total_chunks =
        std::max(cfg_.cores_used, cfg_.chunks_per_core * cfg_.cores_used);
    units_per_chunk_ = cfg_.work_units / total_chunks;
    chunks_remaining_to_dispatch_ = total_chunks;
    chunks_outstanding_ = total_chunks;

    for (int c = 0; c < cfg_.cores_used; ++c) idle_cores_.push_back(c);

    if (demand_.io_bytes_per_unit > 0.0) {
      schedule_deliveries(total_chunks);
    } else {
      // Batch workload: everything is resident; all chunks ready at t=0.
      ready_chunks_ = total_chunks;
      queue_.schedule_at(0.0, [this] { dispatch_ready(); });
    }

    queue_.run();

    RunResult result;
    result.wall_s = std::max(finish_time_, nic_last_completion_);
    result.counters = counters_;
    result.counters.work_units = cfg_.work_units;
    result.counters.io_bytes =
        demand_.io_bytes_per_unit * cfg_.work_units;
    result.energy = meter_.finish(result.wall_s);
    result.cpu_busy_s = cpu_busy_s_;
    result.io_busy_s = io_busy_s_;
    result.io_complete_s = nic_last_completion_;
    result.cores_used = cfg_.cores_used;
    return result;
  }

 private:
  /// Pre-computes the NIC delivery schedule for request-driven workloads.
  /// Request data arrives with the per-unit spacing 1/lambda_io (the
  /// protocol floor of Eq. 11) and is transferred FIFO by the DMA NIC, so
  /// the steady-state delivery rate is max(transfer time, 1/lambda) per
  /// unit — whichever of bandwidth or request rate is the bottleneck.
  void schedule_deliveries(int total_chunks) {
    const double bandwidth =
        units::mbps_to_bytes_per_s(spec_.io_bandwidth_mbps);
    NicModel nic(bandwidth);
    double arrival = 0.0;
    for (int k = 0; k < total_chunks; ++k) {
      const double bytes = demand_.io_bytes_per_unit * units_per_chunk_;
      const double noise = rng_.lognormal_unit(cfg_.noise_sigma);
      arrival += demand_.io_interarrival_s * units_per_chunk_ * noise;
      const double completion = nic.admit(arrival, bytes);
      const double start = completion - bytes / bandwidth;
      // Power: NIC active during the transfer window; ready on completion.
      queue_.schedule_at(start, [this] { nic_active(true); });
      queue_.schedule_at(completion, [this] {
        nic_active(false);
        ++ready_chunks_;
        dispatch_ready();
      });
    }
    nic_last_completion_ = nic.last_completion_s();
    io_busy_s_ = nic.busy_s();
  }

  void nic_active(bool on) {
    nic_active_count_ += on ? 1 : -1;
    const double inc = spec_.io_power.active_w - spec_.io_power.idle_w;
    meter_.set_io_power(nic_active_count_ > 0 ? inc * power_bias_ : 0.0,
                        queue_.now());
    // DMA transfers write through the memory controller, keeping DRAM
    // ranks active while the NIC is busy.
    update_mem_power();
  }

  /// Assigns ready chunks to idle cores.
  void dispatch_ready() {
    while (ready_chunks_ > 0 && !idle_cores_.empty() &&
           chunks_remaining_to_dispatch_ > 0) {
      const int core = idle_cores_.back();
      idle_cores_.pop_back();
      --ready_chunks_;
      --chunks_remaining_to_dispatch_;
      start_chunk(core);
    }
  }

  /// Runs one chunk on `core`: computes its duration from the cycle model,
  /// sets power state, and schedules the completion event.
  void start_chunk(int core) {
    ++busy_cores_;
    const double inst = demand_.instructions_per_unit * units_per_chunk_;
    const double spi_mem =
        mem_model_.spi_mem(demand_, cfg_.f_ghz, busy_cores_);
    const double stall_spi = std::max(demand_.spi_core, spi_mem);
    const double cycles_per_inst = demand_.wpi + stall_spi;
    const double cycles = inst * cycles_per_inst;
    const double noise =
        run_bias_ * rng_.lognormal_unit(cfg_.noise_sigma);
    const double duration =
        cycles / units::ghz_to_hz(cfg_.f_ghz) * noise;

    // Counters record raw totals; overlap only affects wall time.
    // Instruction counts are architecturally exact, but cycle counters
    // carry mild per-sample jitter (interrupts, sampling skid) — much
    // smaller than wall-time variation, as on real PMUs.
    const double counter_noise =
        rng_.lognormal_unit(cfg_.noise_sigma * 0.3);
    counters_.instructions += inst;
    counters_.work_cycles += inst * demand_.wpi * counter_noise;
    counters_.core_stall_cycles +=
        inst * demand_.spi_core * counter_noise;
    counters_.mem_stall_cycles += inst * spi_mem * counter_noise;

    // Core power: time-weighted mix of active and stall draws above idle.
    const double work_frac =
        cycles_per_inst > 0.0 ? demand_.wpi / cycles_per_inst : 1.0;
    const double act_inc =
        spec_.core_active.at(cfg_.f_ghz) - spec_.core_idle_w;
    const double stall_inc =
        spec_.core_stall.at(cfg_.f_ghz) - spec_.core_idle_w;
    const double avg_inc =
        (work_frac * act_inc + (1.0 - work_frac) * stall_inc) * power_bias_;
    meter_.set_core_power(core, std::max(0.0, avg_inc), queue_.now());

    // Memory device activity: the fraction of this chunk the core spends
    // waiting on memory keeps the DRAM ranks active.
    const double mem_frac =
        cycles_per_inst > 0.0 ? spi_mem / cycles_per_inst : 0.0;
    set_mem_duty(core, mem_frac);

    cpu_busy_s_ += duration;
    queue_.schedule_in(duration, [this, core] { finish_chunk(core); });
  }

  void finish_chunk(int core) {
    --busy_cores_;
    meter_.set_core_power(core, 0.0, queue_.now());
    set_mem_duty(core, 0.0);
    idle_cores_.push_back(core);
    --chunks_outstanding_;
    if (chunks_outstanding_ == 0) {
      finish_time_ = queue_.now();
      return;
    }
    dispatch_ready();
  }

  void set_mem_duty(int core, double duty) {
    mem_duty_[static_cast<std::size_t>(core)] = duty;
    update_mem_power();
  }

  void update_mem_power() {
    double total = nic_active_count_ > 0 ? 1.0 : 0.0;
    for (double d : mem_duty_) total += d;
    const double inc =
        spec_.memory_power.active_w - spec_.memory_power.idle_w;
    meter_.set_mem_power(std::min(1.0, total) * inc * power_bias_,
                         queue_.now());
  }

  const NodeSpec& spec_;
  const PhaseDemand& demand_;
  const RunConfig& cfg_;
  MemoryModel mem_model_;
  EventQueue queue_;
  PowerMeter meter_;
  Rng rng_;

  double units_per_chunk_ = 0.0;
  int chunks_remaining_to_dispatch_ = 0;
  int chunks_outstanding_ = 0;
  int ready_chunks_ = 0;
  int busy_cores_ = 0;
  int nic_active_count_ = 0;
  std::vector<int> idle_cores_;
  std::vector<double> mem_duty_;

  CounterSet counters_;
  double cpu_busy_s_ = 0.0;
  double io_busy_s_ = 0.0;
  double finish_time_ = 0.0;
  double nic_last_completion_ = 0.0;
  double run_bias_ = 1.0;
  double power_bias_ = 1.0;
};

}  // namespace

RunResult simulate_node(const NodeSpec& spec, const PhaseDemand& demand,
                        const RunConfig& cfg) {
  NodeRun run(spec, demand, cfg);
  return run.run();
}

PhaseDemand cpu_max_demand() {
  PhaseDemand d;
  d.instructions_per_unit = 1e6;
  d.wpi = 1.0;
  d.spi_core = 0.0;
  d.mem_misses_per_kinst = 0.0;
  d.fp_fraction = 0.5;
  return d;
}

PhaseDemand stall_stream_demand() {
  PhaseDemand d;
  d.instructions_per_unit = 1e6;
  d.wpi = 0.3;
  d.spi_core = 0.0;
  d.mem_misses_per_kinst = 40.0;  // pointer-chasing miss stream
  d.fp_fraction = 0.0;
  return d;
}

}  // namespace hec
