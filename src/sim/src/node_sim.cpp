#include "hec/sim/node_sim.h"

#include <algorithm>
#include <vector>

#include "hec/obs/obs.h"
#include "hec/sim/event_queue.h"
#include "hec/sim/memory_model.h"
#include "hec/sim/nic_model.h"
#include "hec/util/expect.h"
#include "hec/util/rng.h"
#include "hec/util/units.h"

namespace hec {

namespace {

/// Mutable state of one simulated run, shared by the event callbacks.
///
/// Fault injection (NodeFaultPlan) rides on the same event queue: a crash
/// is one more event that cancels every pending completion/delivery. All
/// fault bookkeeping is gated on `fault_mode_` so that a run without a
/// plan executes exactly the historical instruction sequence — the
/// zero-overhead default path the regression tests pin down bit-for-bit.
class NodeRun {
 public:
  NodeRun(const NodeSpec& spec, const PhaseDemand& demand,
          const RunConfig& cfg, const NodeFaultPlan& plan)
      : spec_(spec),
        demand_(demand),
        cfg_(cfg),
        plan_(plan),
        fault_mode_(plan.enabled()),
        mem_model_(spec),
        meter_(spec.idle_node_w(), spec.cores),
        rng_(cfg.seed) {
    HEC_EXPECTS(cfg.cores_used >= 1 && cfg.cores_used <= spec.cores);
    HEC_EXPECTS(spec.pstates.supports(cfg.f_ghz));
    HEC_EXPECTS(cfg.work_units > 0.0);
    HEC_EXPECTS(cfg.chunks_per_core >= 1);
    if (fault_mode_) {
      HEC_EXPECTS(plan.crash_time_s >= 0.0);
      HEC_EXPECTS(plan.straggler_slowdown > 0.0);
      if (plan.has_thermal_cap()) {
        HEC_EXPECTS(plan.thermal_cap_f_ghz > 0.0);
      }
    }
    run_bias_ = rng_.lognormal_unit(cfg.run_bias_sigma);
    power_bias_ = rng_.lognormal_unit(cfg.run_bias_sigma * 0.75);
    mem_duty_.assign(static_cast<std::size_t>(spec.cores), 0.0);
  }

  RunResult run() {
    HEC_SPAN_NAMED(span, "sim.node_run");
    const int total_chunks =
        std::max(cfg_.cores_used, cfg_.chunks_per_core * cfg_.cores_used);
    units_per_chunk_ = cfg_.work_units / total_chunks;
    chunks_remaining_to_dispatch_ = total_chunks;
    chunks_outstanding_ = total_chunks;

    for (int c = 0; c < cfg_.cores_used; ++c) idle_cores_.push_back(c);
    if (fault_mode_) {
      inflight_.assign(static_cast<std::size_t>(cfg_.cores_used),
                       Inflight{});
    }

    if (demand_.io_bytes_per_unit > 0.0) {
      schedule_deliveries(total_chunks);
    } else {
      // Batch workload: everything is resident; all chunks ready at t=0.
      ready_chunks_ = total_chunks;
      queue_.schedule_at(0.0, [this] { dispatch_ready(); });
    }

    if (fault_mode_ && plan_.has_crash()) {
      queue_.schedule_at(plan_.crash_time_s, [this] { crash(); });
    }

    queue_.run();

    RunResult result;
    if (crashed_) {
      result.wall_s = plan_.crash_time_s;
      result.crashed = true;
      result.crash_time_s = plan_.crash_time_s;
      result.completed_units = completed_chunks_ * units_per_chunk_;
      result.counters = counters_;
      result.counters.work_units = result.completed_units;
      result.counters.io_bytes = bytes_delivered_;
      result.io_busy_s = io_busy_s_;
      result.io_complete_s = last_delivery_s_;
    } else {
      result.wall_s = std::max(finish_time_, nic_last_completion_);
      result.completed_units = cfg_.work_units;
      result.counters = counters_;
      result.counters.work_units = cfg_.work_units;
      result.counters.io_bytes =
          demand_.io_bytes_per_unit * cfg_.work_units;
      result.io_busy_s = io_busy_s_;
      result.io_complete_s = nic_last_completion_;
    }
    result.energy = meter_.finish(result.wall_s);
    result.cpu_busy_s = cpu_busy_s_;
    result.cores_used = cfg_.cores_used;
    span.sim_window(0.0, result.wall_s);
    HEC_COUNTER_INC("sim.node_runs");
    HEC_COUNTER_ADD("sim.work_units", result.completed_units);
    HEC_COUNTER_ADD("sim.core_busy_s", result.cpu_busy_s);
    HEC_COUNTER_ADD("sim.nic_busy_s", result.io_busy_s);
    HEC_COUNTER_ADD("sim.mem_stall_cycles", result.counters.mem_stall_cycles);
    return result;
  }

 private:
  /// A chunk currently executing on a core (fault mode only): everything
  /// needed to prorate its contribution if a crash kills it mid-flight.
  struct Inflight {
    bool active = false;
    double start_s = 0.0;
    double duration_s = 0.0;
    EventQueue::EventId completion_id = 0;
    double inst = 0.0;
    double work_cycles = 0.0;
    double core_stall_cycles = 0.0;
    double mem_stall_cycles = 0.0;
  };

  /// Pre-computes the NIC delivery schedule for request-driven workloads.
  /// Request data arrives with the per-unit spacing 1/lambda_io (the
  /// protocol floor of Eq. 11) and is transferred FIFO by the DMA NIC, so
  /// the steady-state delivery rate is max(transfer time, 1/lambda) per
  /// unit — whichever of bandwidth or request rate is the bottleneck.
  void schedule_deliveries(int total_chunks) {
    const double bandwidth =
        units::mbps_to_bytes_per_s(spec_.io_bandwidth_mbps);
    NicModel nic(bandwidth);
    double arrival = 0.0;
    for (int k = 0; k < total_chunks; ++k) {
      const double bytes = demand_.io_bytes_per_unit * units_per_chunk_;
      const double noise = rng_.lognormal_unit(cfg_.noise_sigma);
      arrival += demand_.io_interarrival_s * units_per_chunk_ * noise;
      const double completion = nic.admit(arrival, bytes);
      const double start = completion - bytes / bandwidth;
      // Power: NIC active during the transfer window; ready on completion.
      const auto on_id =
          queue_.schedule_at(start, [this] { nic_active(true); });
      const auto off_id = queue_.schedule_at(completion, [this, bytes] {
        nic_active(false);
        if (fault_mode_) {
          bytes_delivered_ += bytes;
          last_delivery_s_ = queue_.now();
        }
        ++ready_chunks_;
        dispatch_ready();
      });
      if (fault_mode_) {
        nic_event_ids_.push_back(on_id);
        nic_event_ids_.push_back(off_id);
      }
    }
    nic_last_completion_ = nic.last_completion_s();
    io_busy_s_ = nic.busy_s();
    if (fault_mode_) {
      // A crash truncates the NIC timeline mid-schedule; the precomputed
      // whole-run totals no longer apply, so accumulate busy time from the
      // on/off events instead.
      io_busy_s_ = 0.0;
    }
  }

  void nic_active(bool on) {
    if (fault_mode_) {
      if (on) {
        nic_on_since_ = queue_.now();
      } else {
        io_busy_s_ += queue_.now() - nic_on_since_;
      }
    }
    nic_active_count_ += on ? 1 : -1;
    const double inc = spec_.io_power.active_w - spec_.io_power.idle_w;
    meter_.set_io_power(nic_active_count_ > 0 ? inc * power_bias_ : 0.0,
                        queue_.now());
    // DMA transfers write through the memory controller, keeping DRAM
    // ranks active while the NIC is busy.
    update_mem_power();
  }

  /// Assigns ready chunks to idle cores.
  void dispatch_ready() {
    if (crashed_) return;
    while (ready_chunks_ > 0 && !idle_cores_.empty() &&
           chunks_remaining_to_dispatch_ > 0) {
      const int core = idle_cores_.back();
      idle_cores_.pop_back();
      --ready_chunks_;
      --chunks_remaining_to_dispatch_;
      start_chunk(core);
    }
  }

  /// Effective core clock for a chunk starting now: the configured
  /// P-state, possibly lowered by a thermal cap that has set in.
  double effective_f_ghz() const {
    if (fault_mode_ && plan_.has_thermal_cap() &&
        queue_.now() >= plan_.thermal_cap_time_s) {
      return std::min(cfg_.f_ghz, plan_.thermal_cap_f_ghz);
    }
    return cfg_.f_ghz;
  }

  /// Runs one chunk on `core`: computes its duration from the cycle model,
  /// sets power state, and schedules the completion event.
  void start_chunk(int core) {
    ++busy_cores_;
    const double f_ghz = fault_mode_ ? effective_f_ghz() : cfg_.f_ghz;
    const double inst = demand_.instructions_per_unit * units_per_chunk_;
    const double spi_mem = mem_model_.spi_mem(demand_, f_ghz, busy_cores_);
    const double stall_spi = std::max(demand_.spi_core, spi_mem);
    const double cycles_per_inst = demand_.wpi + stall_spi;
    const double cycles = inst * cycles_per_inst;
    const double noise =
        run_bias_ * rng_.lognormal_unit(cfg_.noise_sigma);
    double duration = cycles / units::ghz_to_hz(f_ghz) * noise;
    if (fault_mode_ && plan_.has_straggler() &&
        queue_.now() >= plan_.straggler_start_s &&
        queue_.now() < plan_.straggler_end_s) {
      duration *= plan_.straggler_slowdown;
    }

    // Counters record raw totals; overlap only affects wall time.
    // Instruction counts are architecturally exact, but cycle counters
    // carry mild per-sample jitter (interrupts, sampling skid) — much
    // smaller than wall-time variation, as on real PMUs.
    const double counter_noise =
        rng_.lognormal_unit(cfg_.noise_sigma * 0.3);
    if (!fault_mode_) {
      counters_.instructions += inst;
      counters_.work_cycles += inst * demand_.wpi * counter_noise;
      counters_.core_stall_cycles +=
          inst * demand_.spi_core * counter_noise;
      counters_.mem_stall_cycles += inst * spi_mem * counter_noise;
      cpu_busy_s_ += duration;
    }

    // Core power: time-weighted mix of active and stall draws above idle.
    const double work_frac =
        cycles_per_inst > 0.0 ? demand_.wpi / cycles_per_inst : 1.0;
    const double act_inc =
        spec_.core_active.at(f_ghz) - spec_.core_idle_w;
    const double stall_inc =
        spec_.core_stall.at(f_ghz) - spec_.core_idle_w;
    const double avg_inc =
        (work_frac * act_inc + (1.0 - work_frac) * stall_inc) * power_bias_;
    meter_.set_core_power(core, std::max(0.0, avg_inc), queue_.now());

    // Memory device activity: the fraction of this chunk the core spends
    // waiting on memory keeps the DRAM ranks active.
    const double mem_frac =
        cycles_per_inst > 0.0 ? spi_mem / cycles_per_inst : 0.0;
    set_mem_duty(core, mem_frac);

    const auto completion_id =
        queue_.schedule_in(duration, [this, core] { finish_chunk(core); });
    if (fault_mode_) {
      // Counter/busy-time accounting moves to chunk completion so that a
      // crash can charge exactly the executed fraction of killed chunks.
      Inflight& fl = inflight_[static_cast<std::size_t>(core)];
      fl.active = true;
      fl.start_s = queue_.now();
      fl.duration_s = duration;
      fl.completion_id = completion_id;
      fl.inst = inst;
      fl.work_cycles = inst * demand_.wpi * counter_noise;
      fl.core_stall_cycles = inst * demand_.spi_core * counter_noise;
      fl.mem_stall_cycles = inst * spi_mem * counter_noise;
    }
  }

  void finish_chunk(int core) {
    --busy_cores_;
    meter_.set_core_power(core, 0.0, queue_.now());
    set_mem_duty(core, 0.0);
    idle_cores_.push_back(core);
    --chunks_outstanding_;
    if (fault_mode_) {
      Inflight& fl = inflight_[static_cast<std::size_t>(core)];
      counters_.instructions += fl.inst;
      counters_.work_cycles += fl.work_cycles;
      counters_.core_stall_cycles += fl.core_stall_cycles;
      counters_.mem_stall_cycles += fl.mem_stall_cycles;
      cpu_busy_s_ += fl.duration_s;
      fl.active = false;
      ++completed_chunks_;
    }
    if (chunks_outstanding_ == 0) {
      finish_time_ = queue_.now();
      return;
    }
    dispatch_ready();
  }

  /// Fail-stop: the node halts. Work scheduled after this instant is
  /// killed — in-flight chunks are cancelled and charged only for their
  /// executed fraction, queued NIC deliveries never arrive, and every
  /// power channel drops so the meter integrates nothing past the crash.
  void crash() {
    if (chunks_outstanding_ == 0) return;  // job already finished
    crashed_ = true;
    const double t = queue_.now();
    for (int core = 0; core < cfg_.cores_used; ++core) {
      Inflight& fl = inflight_[static_cast<std::size_t>(core)];
      if (!fl.active) continue;
      queue_.cancel(fl.completion_id);
      const double frac =
          fl.duration_s > 0.0
              ? std::clamp((t - fl.start_s) / fl.duration_s, 0.0, 1.0)
              : 1.0;
      counters_.instructions += frac * fl.inst;
      counters_.work_cycles += frac * fl.work_cycles;
      counters_.core_stall_cycles += frac * fl.core_stall_cycles;
      counters_.mem_stall_cycles += frac * fl.mem_stall_cycles;
      cpu_busy_s_ += frac * fl.duration_s;
      fl.active = false;
      meter_.set_core_power(core, 0.0, t);
      mem_duty_[static_cast<std::size_t>(core)] = 0.0;
    }
    for (const auto id : nic_event_ids_) queue_.cancel(id);
    if (nic_active_count_ > 0) {
      io_busy_s_ += t - nic_on_since_;
      nic_active_count_ = 0;
    }
    meter_.set_io_power(0.0, t);
    update_mem_power();
  }

  void set_mem_duty(int core, double duty) {
    mem_duty_[static_cast<std::size_t>(core)] = duty;
    update_mem_power();
  }

  void update_mem_power() {
    double total = nic_active_count_ > 0 ? 1.0 : 0.0;
    for (double d : mem_duty_) total += d;
    const double inc =
        spec_.memory_power.active_w - spec_.memory_power.idle_w;
    meter_.set_mem_power(std::min(1.0, total) * inc * power_bias_,
                         queue_.now());
  }

  const NodeSpec& spec_;
  const PhaseDemand& demand_;
  const RunConfig& cfg_;
  const NodeFaultPlan& plan_;
  const bool fault_mode_;
  MemoryModel mem_model_;
  EventQueue queue_;
  PowerMeter meter_;
  Rng rng_;

  double units_per_chunk_ = 0.0;
  int chunks_remaining_to_dispatch_ = 0;
  int chunks_outstanding_ = 0;
  int ready_chunks_ = 0;
  int busy_cores_ = 0;
  int nic_active_count_ = 0;
  std::vector<int> idle_cores_;
  std::vector<double> mem_duty_;

  CounterSet counters_;
  double cpu_busy_s_ = 0.0;
  double io_busy_s_ = 0.0;
  double finish_time_ = 0.0;
  double nic_last_completion_ = 0.0;
  double run_bias_ = 1.0;
  double power_bias_ = 1.0;

  // Fault-mode state (untouched on the default path).
  bool crashed_ = false;
  int completed_chunks_ = 0;
  double bytes_delivered_ = 0.0;
  double last_delivery_s_ = 0.0;
  double nic_on_since_ = 0.0;
  std::vector<Inflight> inflight_;
  std::vector<EventQueue::EventId> nic_event_ids_;
};

}  // namespace

RunResult simulate_node(const NodeSpec& spec, const PhaseDemand& demand,
                        const RunConfig& cfg) {
  const NodeFaultPlan no_faults;
  NodeRun run(spec, demand, cfg, no_faults);
  return run.run();
}

RunResult simulate_node(const NodeSpec& spec, const PhaseDemand& demand,
                        const RunConfig& cfg, const NodeFaultPlan& plan) {
  NodeRun run(spec, demand, cfg, plan);
  return run.run();
}

PhaseDemand cpu_max_demand() {
  PhaseDemand d;
  d.instructions_per_unit = 1e6;
  d.wpi = 1.0;
  d.spi_core = 0.0;
  d.mem_misses_per_kinst = 0.0;
  d.fp_fraction = 0.5;
  return d;
}

PhaseDemand stall_stream_demand() {
  PhaseDemand d;
  d.instructions_per_unit = 1e6;
  d.wpi = 0.3;
  d.spi_core = 0.0;
  d.mem_misses_per_kinst = 40.0;  // pointer-chasing miss stream
  d.fp_fraction = 0.0;
  return d;
}

}  // namespace hec
