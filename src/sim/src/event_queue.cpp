#include "hec/sim/event_queue.h"

#include <stdexcept>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

EventQueue::EventId EventQueue::schedule_at(double when, Callback cb) {
  HEC_EXPECTS(when >= now_);
  HEC_EXPECTS(cb != nullptr);
  const EventId id = next_seq_++;
  heap_.push(Entry{when, id, std::move(cb)});
  live_.insert(id);
  return id;
}

EventQueue::EventId EventQueue::schedule_in(double delay, Callback cb) {
  HEC_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventId id) {
  // Lazy deletion: the heap entry stays until it surfaces in step(),
  // which discards it without running or advancing the clock.
  return live_.erase(id) > 0;
}

void EventQueue::step() {
  HEC_EXPECTS(!empty());
  // Drop cancelled entries silently; the first live one executes.
  while (!live_.contains(heap_.top().seq)) heap_.pop();
  // priority_queue::top() is const; move out via const_cast is UB-prone, so
  // copy the callback handle (shared state inside std::function is cheap
  // relative to event work) and pop first in case the callback schedules.
  Entry entry = heap_.top();
  heap_.pop();
  live_.erase(entry.seq);
  now_ = entry.time;
  entry.cb();
  HEC_COUNTER_INC("sim.events_processed");
  HEC_GAUGE_SET("sim.queue_depth", static_cast<double>(live_.size()));
}

void EventQueue::run(std::uint64_t max_events) {
  HEC_SPAN_NAMED(span, "sim.event_loop");
  const double sim_begin_s = now_;
  std::uint64_t executed = 0;
  while (!empty()) {
    if (executed++ >= max_events) {
      throw std::runtime_error("EventQueue::run exceeded max_events");
    }
    step();
  }
  span.sim_window(sim_begin_s, now_);
}

}  // namespace hec
