#include "hec/sim/event_queue.h"

#include <stdexcept>

#include "hec/util/expect.h"

namespace hec {

void EventQueue::schedule_at(double when, Callback cb) {
  HEC_EXPECTS(when >= now_);
  HEC_EXPECTS(cb != nullptr);
  heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_in(double delay, Callback cb) {
  HEC_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(cb));
}

void EventQueue::step() {
  HEC_EXPECTS(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast is UB-prone, so
  // copy the callback handle (shared state inside std::function is cheap
  // relative to event work) and pop first in case the callback schedules.
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.time;
  entry.cb();
}

void EventQueue::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (!heap_.empty()) {
    if (executed++ >= max_events) {
      throw std::runtime_error("EventQueue::run exceeded max_events");
    }
    step();
  }
}

}  // namespace hec
