// Service-demand description of a workload's repeating parallel phase.
//
// Scale-out workloads consist of many repetitions of a representative phase
// Ps (one memcached GET, one encoded frame, one priced option ...); the
// paper's whole methodology rests on characterising Ps per ISA and scaling
// it to the full program P (Section II-B). PhaseDemand is that per-work-unit
// service-demand vector: what one unit asks of the cores, the memory system
// and the network I/O device of one node type.
#pragma once

namespace hec {

/// Per-work-unit service demands on one node type (ISA-specific).
struct PhaseDemand {
  /// Machine instructions to execute one work unit (IPs of the paper).
  double instructions_per_unit = 0.0;
  /// Work cycles per instruction (WPI) — ISA/micro-architecture property.
  double wpi = 1.0;
  /// Non-memory stall cycles per instruction (SPIcore): branch mispredicts,
  /// pipeline hazards, FP latency chains.
  double spi_core = 0.0;
  /// Last-level-cache misses per 1000 instructions. Memory stall cycles are
  /// derived from this by the memory model as a function of frequency and
  /// active core count.
  double mem_misses_per_kinst = 0.0;
  /// Bytes moved over the NIC per work unit (request + response payloads).
  double io_bytes_per_unit = 0.0;
  /// Mean spacing between work-unit arrivals for served (open-loop)
  /// workloads, in seconds; 0 means the whole batch is available at t=0.
  /// This is 1/lambda_io of Eq. 11.
  double io_interarrival_s = 0.0;
  /// Fraction of instructions that are floating point (power flavour and
  /// characterisation reporting only).
  double fp_fraction = 0.0;
};

}  // namespace hec
