// Power-meter equivalent (the paper used a Yokogawa WT210).
//
// Integrates piecewise-constant component power over simulated time into a
// per-component energy breakdown matching the paper's decomposition
// (Eq. 13): cores, memory, network I/O, and the always-on idle floor
// (rest-of-system plus every component's idle draw). Channel values are
// *increments above idle*, so the breakdown never double-counts the floor.
#pragma once

#include <vector>

namespace hec {

/// Energy split per Eq. 13 of the paper, in joules.
struct EnergyBreakdown {
  double core_j = 0.0;  ///< active/stall increments of all cores
  double mem_j = 0.0;   ///< memory active increment
  double io_j = 0.0;    ///< NIC active increment
  double idle_j = 0.0;  ///< idle floor integrated over the whole run

  double total_j() const { return core_j + mem_j + io_j + idle_j; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o) {
    core_j += o.core_j;
    mem_j += o.mem_j;
    io_j += o.io_j;
    idle_j += o.idle_j;
    return *this;
  }
};

/// Piecewise-constant power integrator.
class PowerMeter {
 public:
  /// idle_floor_w: the node's constant baseline draw (Pidle).
  /// n_cores: number of per-core increment channels.
  PowerMeter(double idle_floor_w, int n_cores);

  /// Sets core `i`'s increment above idle (>= 0) effective at time t.
  void set_core_power(int i, double watts, double t);
  /// Sets the memory active increment effective at time t.
  void set_mem_power(double watts, double t);
  /// Sets the NIC active increment effective at time t.
  void set_io_power(double watts, double t);

  /// Integrates up to `t` and returns the breakdown so far.
  EnergyBreakdown finish(double t);

  /// Instantaneous total power right now.
  double current_power_w() const;

 private:
  void advance(double t);

  double idle_floor_w_;
  std::vector<double> core_w_;
  double mem_w_ = 0.0;
  double io_w_ = 0.0;
  double last_t_ = 0.0;
  EnergyBreakdown acc_;
};

}  // namespace hec
