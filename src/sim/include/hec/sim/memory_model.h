// Shared-memory-controller timing model.
//
// All cores of a node share one memory controller (UMA, Section II-A).
// One last-level-cache miss costs a frequency-independent on-chip portion
// (queues, L2/L3 lookup — paid in core cycles) plus a DRAM portion fixed in
// wall-clock time; expressed in core cycles the DRAM portion scales with f,
// which is exactly why the paper observes SPImem growing linearly with core
// frequency (Fig. 3). Contention from additional active cores lengthens the
// DRAM portion (Section II-B2, citing Tudor et al. [36]).
#pragma once

#include "hec/hw/node_spec.h"
#include "hec/sim/phase.h"

namespace hec {

/// Computes memory-stall costs for a node type. Copies the timing fields
/// it needs, so it stays valid independent of the NodeSpec's lifetime.
class MemoryModel {
 public:
  explicit MemoryModel(const NodeSpec& spec)
      : miss_fixed_cycles_(spec.miss_fixed_cycles),
        dram_latency_ns_(spec.dram_latency_ns),
        contention_per_core_(spec.mem_contention_per_core),
        cores_(spec.cores) {}

  /// Core cycles one LLC miss costs at frequency f with `active_cores`
  /// cores contending. active_cores >= 1, f within the node's P-states.
  double miss_cycles(double f_ghz, int active_cores) const;

  /// Memory stall cycles per instruction for a phase: misses/inst times
  /// per-miss cost. This is SPImem of the model.
  double spi_mem(const PhaseDemand& d, double f_ghz, int active_cores) const;

 private:
  double miss_fixed_cycles_;
  double dram_latency_ns_;
  double contention_per_core_;
  int cores_;
};

}  // namespace hec
