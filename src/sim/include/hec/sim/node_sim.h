// Event-driven simulation of one multicore node executing a scale-out job.
//
// This is the measurement substrate that stands in for the paper's physical
// ARM Cortex-A9 / AMD Opteron testbed. A run executes `work_units`
// repetitions of the workload's representative phase on `cores_used` cores
// at one P-state, with:
//   * out-of-order overlap: per-chunk time is work + max(core-stall,
//     memory-stall) cycles (Eqs. 3, 7-10), while the counters still record
//     the raw stall totals exactly as perf would;
//   * a shared memory controller whose per-miss cost grows with active
//     cores and with frequency (MemoryModel);
//   * a DMA NIC that delivers request-driven work and overlaps fully with
//     compute (NicModel) — for served workloads cores can only process
//     delivered chunks, so CPU utilisation below 1 emerges naturally;
//   * a power meter integrating per-component draws (PowerMeter);
//   * seeded multiplicative noise reproducing the paper's "irregularities
//     among different runs of the same program".
#pragma once

#include <cstdint>

#include "hec/hw/node_spec.h"
#include "hec/sim/counters.h"
#include "hec/sim/phase.h"
#include "hec/sim/power_meter.h"

namespace hec {

/// One simulated execution's configuration.
struct RunConfig {
  int cores_used = 1;        ///< active cores (1..spec.cores)
  double f_ghz = 0.0;        ///< P-state; must be supported by the node
  double work_units = 1.0;   ///< repetitions of the representative phase
  std::uint64_t seed = 1;    ///< noise stream seed
  double noise_sigma = 0.03;      ///< per-chunk multiplicative jitter
  double run_bias_sigma = 0.02;   ///< whole-run systematic factor
  int chunks_per_core = 64;       ///< scheduling granularity
};

/// Observables of one simulated run: everything the paper measures with
/// perf + the Yokogawa power monitor, and nothing else.
struct RunResult {
  double wall_s = 0.0;        ///< job service time on this node
  CounterSet counters;        ///< perf-equivalent event counts
  EnergyBreakdown energy;     ///< WT210-equivalent energy split
  double cpu_busy_s = 0.0;    ///< summed busy time of all used cores
  double io_busy_s = 0.0;     ///< NIC transferring time
  double io_complete_s = 0.0; ///< completion time of the last NIC delivery
  int cores_used = 0;

  /// Average node power over the run.
  double avg_power_w() const {
    return wall_s > 0.0 ? energy.total_j() / wall_s : 0.0;
  }
  /// UCPU: average fraction of used cores kept busy (drives cact).
  double ucpu() const {
    return (wall_s > 0.0 && cores_used > 0)
               ? cpu_busy_s / (wall_s * static_cast<double>(cores_used))
               : 0.0;
  }
  /// Work-unit throughput (units per second).
  double throughput() const {
    return wall_s > 0.0 ? counters.work_units / wall_s : 0.0;
  }
};

/// Simulates `demand` x `cfg.work_units` on one node of type `spec`.
///
/// Preconditions: cores_used in [1, spec.cores], f_ghz a supported P-state,
/// work_units > 0.
RunResult simulate_node(const NodeSpec& spec, const PhaseDemand& demand,
                        const RunConfig& cfg);

/// Micro-benchmark demand that maximises useful work cycles (the paper's
/// CPU-max power characterisation benchmark, Section II-D2).
PhaseDemand cpu_max_demand();

/// Micro-benchmark demand that streams cache misses to maximise stall
/// cycles (the paper's stall benchmark).
PhaseDemand stall_stream_demand();

}  // namespace hec
