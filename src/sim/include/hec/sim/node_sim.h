// Event-driven simulation of one multicore node executing a scale-out job.
//
// This is the measurement substrate that stands in for the paper's physical
// ARM Cortex-A9 / AMD Opteron testbed. A run executes `work_units`
// repetitions of the workload's representative phase on `cores_used` cores
// at one P-state, with:
//   * out-of-order overlap: per-chunk time is work + max(core-stall,
//     memory-stall) cycles (Eqs. 3, 7-10), while the counters still record
//     the raw stall totals exactly as perf would;
//   * a shared memory controller whose per-miss cost grows with active
//     cores and with frequency (MemoryModel);
//   * a DMA NIC that delivers request-driven work and overlaps fully with
//     compute (NicModel) — for served workloads cores can only process
//     delivered chunks, so CPU utilisation below 1 emerges naturally;
//   * a power meter integrating per-component draws (PowerMeter);
//   * seeded multiplicative noise reproducing the paper's "irregularities
//     among different runs of the same program".
#pragma once

#include <cstdint>
#include <limits>

#include "hec/hw/node_spec.h"
#include "hec/sim/counters.h"
#include "hec/sim/phase.h"
#include "hec/sim/power_meter.h"

namespace hec {

/// Deterministic fault schedule for one simulated run (already sampled;
/// see hec/fault/fault_model.h for the stochastic models that produce
/// one). All times are simulation seconds. The default-constructed plan
/// is inert: enabled() is false and simulate_node takes the exact
/// fault-free code path, bit-identical to a run without a plan.
struct NodeFaultPlan {
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  /// Fail-stop crash: the node halts at this instant. In-flight chunks
  /// are killed (their scheduled completions cancelled), counters are
  /// prorated to the executed fraction, and the run ends at crash time.
  double crash_time_s = kNever;

  /// Transient straggler: chunks started inside [start, end) take
  /// `slowdown` times longer (thermal throttling recovers, interfering
  /// tenants leave — a bounded window).
  double straggler_start_s = kNever;
  double straggler_end_s = kNever;
  double straggler_slowdown = 1.0;

  /// Thermal frequency capping: chunks started at or after this instant
  /// execute at min(f, cap) with the matching (lower) core power draw.
  /// Unlike a straggler window, capping persists to the end of the run.
  double thermal_cap_time_s = kNever;
  double thermal_cap_f_ghz = 0.0;

  bool has_crash() const { return crash_time_s < kNever; }
  bool has_straggler() const {
    return straggler_start_s < kNever && straggler_slowdown != 1.0;
  }
  bool has_thermal_cap() const {
    return thermal_cap_time_s < kNever && thermal_cap_f_ghz > 0.0;
  }
  bool enabled() const {
    return has_crash() || has_straggler() || has_thermal_cap();
  }
};

/// One simulated execution's configuration.
struct RunConfig {
  int cores_used = 1;        ///< active cores (1..spec.cores)
  double f_ghz = 0.0;        ///< P-state; must be supported by the node
  double work_units = 1.0;   ///< repetitions of the representative phase
  std::uint64_t seed = 1;    ///< noise stream seed
  double noise_sigma = 0.03;      ///< per-chunk multiplicative jitter
  double run_bias_sigma = 0.02;   ///< whole-run systematic factor
  int chunks_per_core = 64;       ///< scheduling granularity
};

/// Observables of one simulated run: everything the paper measures with
/// perf + the Yokogawa power monitor, and nothing else.
struct RunResult {
  double wall_s = 0.0;        ///< job service time on this node
  CounterSet counters;        ///< perf-equivalent event counts
  EnergyBreakdown energy;     ///< WT210-equivalent energy split
  double cpu_busy_s = 0.0;    ///< summed busy time of all used cores
  double io_busy_s = 0.0;     ///< NIC transferring time
  double io_complete_s = 0.0; ///< completion time of the last NIC delivery
  int cores_used = 0;

  // Degraded-run observables (untouched by fault-free runs).
  bool crashed = false;          ///< run ended by a fail-stop fault
  double crash_time_s = 0.0;     ///< instant of the crash (when crashed)
  double completed_units = 0.0;  ///< work units fully finished before the
                                 ///< end of the run (== work_units when
                                 ///< the run completes normally)

  /// Average node power over the run.
  double avg_power_w() const {
    return wall_s > 0.0 ? energy.total_j() / wall_s : 0.0;
  }
  /// UCPU: average fraction of used cores kept busy (drives cact).
  double ucpu() const {
    return (wall_s > 0.0 && cores_used > 0)
               ? cpu_busy_s / (wall_s * static_cast<double>(cores_used))
               : 0.0;
  }
  /// Work-unit throughput (units per second).
  double throughput() const {
    return wall_s > 0.0 ? counters.work_units / wall_s : 0.0;
  }
};

/// Simulates `demand` x `cfg.work_units` on one node of type `spec`.
///
/// Preconditions: cores_used in [1, spec.cores], f_ghz a supported P-state,
/// work_units > 0.
RunResult simulate_node(const NodeSpec& spec, const PhaseDemand& demand,
                        const RunConfig& cfg);

/// Simulates the same run under a fault schedule: crashes end the run at
/// the crash instant (killing exactly the work scheduled after it),
/// straggler windows stretch chunk durations, and thermal capping lowers
/// the effective clock. With plan.enabled() == false this is bit-identical
/// to the overload above.
RunResult simulate_node(const NodeSpec& spec, const PhaseDemand& demand,
                        const RunConfig& cfg, const NodeFaultPlan& plan);

/// Micro-benchmark demand that maximises useful work cycles (the paper's
/// CPU-max power characterisation benchmark, Section II-D2).
PhaseDemand cpu_max_demand();

/// Micro-benchmark demand that streams cache misses to maximise stall
/// cycles (the paper's stall benchmark).
PhaseDemand stall_stream_demand();

}  // namespace hec
